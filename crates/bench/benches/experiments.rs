//! Criterion benches exercising every table/figure generator at bench
//! scale (reduced frame count and a fast search so wall time stays
//! reasonable). Run `cargo run --release --bin repro -- all` for the
//! paper-scale reproduction; these benches track the *cost* of each
//! experiment generator and keep them exercised by `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use m4ps_bench::{run_experiment, Options, ALL_EXPERIMENTS};
use m4ps_codec::SearchStrategy;
use std::time::Duration;

fn bench_opts() -> Options {
    Options {
        frames: 1,
        search_range: 4,
        search: SearchStrategy::Diamond,
        seed: 7,
    }
}

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let opts = bench_opts();
    for e in ALL_EXPERIMENTS {
        group.bench_function(e.name, |b| {
            b.iter(|| {
                let out = run_experiment(e.name, &opts).expect("known experiment");
                assert!(!out.is_empty());
                out.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
