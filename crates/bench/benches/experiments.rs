//! Benchmarks exercising every table/figure generator at bench scale
//! (reduced frame count and a fast search so wall time stays
//! reasonable). Run `cargo run --release --bin repro -- all` for the
//! paper-scale reproduction; these benches track the *cost* of each
//! experiment generator and keep them exercised by `cargo bench`.
//!
//! Runs on the in-tree [`m4ps_testkit::bench`] runner (`harness =
//! false`); results are written to `BENCH_experiments.json`.

use m4ps_bench::{run_experiment, Options, ALL_EXPERIMENTS};
use m4ps_codec::SearchStrategy;
use m4ps_testkit::bench::{BenchOptions, BenchRunner};

fn bench_opts() -> Options {
    Options {
        frames: 1,
        search_range: 4,
        search: SearchStrategy::Diamond,
        seed: 7,
    }
}

fn main() {
    // Experiment generators run for hundreds of milliseconds each, so
    // cap the sample budget well below the kernel defaults.
    let mut opts = BenchOptions::parse(std::env::args().skip(1));
    opts.samples = opts.samples.min(10);
    opts.target_sample_ns = opts.target_sample_ns.min(2_000_000);
    let mut r = BenchRunner::with_options("experiments", opts);
    let run_opts = bench_opts();
    for e in ALL_EXPERIMENTS {
        r.bench(&format!("experiments/{}", e.name), || {
            let out = run_experiment(e.name, &run_opts).expect("known experiment");
            assert!(!out.is_empty());
            out.len()
        });
    }
    r.finish();
}
