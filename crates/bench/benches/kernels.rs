//! Criterion micro-benchmarks of the computational and simulation
//! kernels: DCT, SAD, quantization, interpolation, arithmetic coding,
//! bitstream I/O, and the cache-hierarchy probe itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use m4ps_bitstream::{BitReader, BitWriter};
use m4ps_codec::{ArithDecoder, ArithEncoder, ContextModel};
use m4ps_dsp::{
    forward_dct, forward_dct_int, inverse_dct, inverse_dct_int, quantize_intra, sad_16x16,
    sad_16x16_with_cutoff, scan_zigzag, Block,
};
use m4ps_memsim::{AccessKind, AddressSpace, Hierarchy, MachineSpec, MemModel, SimBuf};

fn bench_dct(c: &mut Criterion) {
    let mut b = Block::default();
    for (i, v) in b.data.iter_mut().enumerate() {
        *v = ((i * 37) % 256) as i16;
    }
    c.bench_function("dct/forward_8x8", |bench| {
        bench.iter(|| forward_dct(black_box(&b)))
    });
    let coefs = forward_dct(&b);
    c.bench_function("dct/inverse_8x8", |bench| {
        bench.iter(|| inverse_dct(black_box(&coefs)))
    });
    c.bench_function("dct/forward_8x8_int", |bench| {
        bench.iter(|| forward_dct_int(black_box(&b)))
    });
    c.bench_function("dct/inverse_8x8_int", |bench| {
        bench.iter(|| inverse_dct_int(black_box(&coefs)))
    });
    c.bench_function("dct/quantize_intra", |bench| {
        bench.iter(|| quantize_intra(black_box(&coefs), 8))
    });
    let q = quantize_intra(&coefs, 8);
    c.bench_function("dct/zigzag_scan", |bench| {
        bench.iter(|| scan_zigzag(black_box(&q)))
    });
}

fn bench_sad(c: &mut Criterion) {
    let a: Vec<u8> = (0..64 * 64).map(|i| (i % 251) as u8).collect();
    let b: Vec<u8> = (0..64 * 64).map(|i| ((i * 7) % 253) as u8).collect();
    c.bench_function("sad/16x16_full", |bench| {
        bench.iter(|| sad_16x16(black_box(&a), 64, 8, 8, black_box(&b), 64, 9, 8))
    });
    c.bench_function("sad/16x16_cutoff", |bench| {
        bench.iter(|| {
            sad_16x16_with_cutoff(black_box(&a), 64, 8, 8, black_box(&b), 64, 9, 8, 500)
        })
    });
}

fn bench_bitstream(c: &mut Criterion) {
    c.bench_function("bitstream/write_1k_fields", |bench| {
        bench.iter(|| {
            let mut w = BitWriter::with_capacity(1024);
            for i in 0..1000u32 {
                w.put_bits(i & 0x3f, 7);
            }
            w.into_bytes()
        })
    });
    let mut w = BitWriter::new();
    for i in 0..1000u32 {
        w.put_bits(i & 0x3f, 7);
    }
    let bytes = w.into_bytes();
    c.bench_function("bitstream/read_1k_fields", |bench| {
        bench.iter(|| {
            let mut r = BitReader::new(black_box(&bytes));
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc += u64::from(r.get_bits(7).unwrap());
            }
            acc
        })
    });
}

fn bench_arith(c: &mut Criterion) {
    let bits: Vec<bool> = (0..2048).map(|i| i % 9 == 0).collect();
    c.bench_function("arith/encode_2k_bits_adaptive", |bench| {
        bench.iter(|| {
            let mut model = ContextModel::new(4);
            let mut enc = ArithEncoder::new();
            for (i, &b) in bits.iter().enumerate() {
                let ctx = i & 3;
                enc.encode(b, model.p0(ctx));
                model.update(ctx, b);
            }
            enc.finish()
        })
    });
    let (payload, n) = {
        let mut model = ContextModel::new(4);
        let mut enc = ArithEncoder::new();
        for (i, &b) in bits.iter().enumerate() {
            let ctx = i & 3;
            enc.encode(b, model.p0(ctx));
            model.update(ctx, b);
        }
        enc.finish()
    };
    c.bench_function("arith/decode_2k_bits_adaptive", |bench| {
        bench.iter(|| {
            let mut model = ContextModel::new(4);
            let mut dec = ArithDecoder::new(black_box(&payload), n);
            let mut acc = 0u32;
            for i in 0..bits.len() {
                let ctx = i & 3;
                let b = dec.decode(model.p0(ctx));
                model.update(ctx, b);
                acc += u32::from(b);
            }
            acc
        })
    });
}

fn bench_memsim(c: &mut Criterion) {
    c.bench_function("memsim/l1_hit_probe", |bench| {
        let mut h = Hierarchy::new(MachineSpec::o2());
        h.access_range(0, 64, AccessKind::Load, 8);
        bench.iter(|| {
            h.access_range(black_box(0), 8, AccessKind::Load, 1);
        })
    });
    c.bench_function("memsim/streaming_4kb", |bench| {
        let mut h = Hierarchy::new(MachineSpec::o2());
        let mut base = 0u64;
        bench.iter(|| {
            h.access_range(black_box(base), 4096, AccessKind::Load, 512);
            base = base.wrapping_add(4096);
        })
    });
    c.bench_function("memsim/simbuf_row_load", |bench| {
        let mut space = AddressSpace::new();
        let buf = SimBuf::<u8>::zeroed(&mut space, 1 << 20);
        let mut h = Hierarchy::new(MachineSpec::onyx2());
        let mut off = 0usize;
        bench.iter(|| {
            let r = buf.load_run(&mut h, off & 0xf_ffff, 16);
            off += 720;
            black_box(r[0])
        })
    });
}

criterion_group!(
    benches,
    bench_dct,
    bench_sad,
    bench_bitstream,
    bench_arith,
    bench_memsim
);
criterion_main!(benches);
