//! Micro-benchmarks of the computational and simulation kernels: DCT,
//! SAD, quantization, arithmetic coding, bitstream I/O, and the
//! cache-hierarchy probe itself.
//!
//! Runs on the in-tree [`m4ps_testkit::bench`] runner (`harness =
//! false`); results are written to `BENCH_kernels.json`. Pass `--smoke`
//! for a minimal CI budget, or a substring to filter benchmarks.

use m4ps_bitstream::{BitReader, BitWriter};
use m4ps_codec::{
    ArithDecoder, ArithEncoder, ContextModel, EncoderConfig, FrameView, VideoObjectCoder,
};
use m4ps_dsp::{
    forward_dct, forward_dct_int, inverse_dct, inverse_dct_int, quantize_intra, sad_16x16,
    sad_16x16_with_cutoff, scan_zigzag, Block, HalfPel, Kernels,
};
use m4ps_memsim::{AccessKind, AddressSpace, Hierarchy, MachineSpec, MemModel, SimBuf};
use m4ps_testkit::bench::{black_box, BenchRunner};

fn bench_dct(r: &mut BenchRunner) {
    let mut b = Block::default();
    for (i, v) in b.data.iter_mut().enumerate() {
        *v = ((i * 37) % 256) as i16;
    }
    r.bench("dct/forward_8x8", || forward_dct(black_box(&b)));
    let coefs = forward_dct(&b);
    r.bench("dct/inverse_8x8", || inverse_dct(black_box(&coefs)));
    r.bench("dct/forward_8x8_int", || forward_dct_int(black_box(&b)));
    r.bench("dct/inverse_8x8_int", || inverse_dct_int(black_box(&coefs)));
    r.bench("dct/quantize_intra", || {
        quantize_intra(black_box(&coefs), 8)
    });
    let q = quantize_intra(&coefs, 8);
    r.bench("dct/zigzag_scan", || scan_zigzag(black_box(&q)));
}

fn bench_sad(r: &mut BenchRunner) {
    let a: Vec<u8> = (0..64 * 64).map(|i| (i % 251) as u8).collect();
    let b: Vec<u8> = (0..64 * 64).map(|i| ((i * 7) % 253) as u8).collect();
    // A 16x16 SAD touches 2 x 256 pixels per call.
    r.bench_bytes("sad/16x16_full", 512, || {
        sad_16x16(black_box(&a), 64, 8, 8, black_box(&b), 64, 9, 8)
    });
    r.bench_bytes("sad/16x16_cutoff", 512, || {
        sad_16x16_with_cutoff(black_box(&a), 64, 8, 8, black_box(&b), 64, 9, 8, 500)
    });
}

fn bench_simd_tiers(r: &mut BenchRunner) {
    // Every dispatched kernel, once per tier the CPU supports, so the
    // report tracks the scalar/SSE2/AVX2 cycle ratios the paper's
    // "non-SIMD is enough" argument turns on. The entries are
    // bit-identical in output (pinned by the differential suites);
    // only the ns/iter differ.
    let cur: Vec<u8> = (0..64 * 64).map(|i| (i % 251) as u8).collect();
    let reference: Vec<u8> = (0..64 * 64).map(|i| ((i * 7) % 253) as u8).collect();
    let mut b = Block::default();
    for (i, v) in b.data.iter_mut().enumerate() {
        *v = ((i * 37) % 256) as i16;
    }
    let coefs = forward_dct(&b);
    let levels = quantize_intra(&coefs, 8);
    for tier in m4ps_dsp::supported_tiers() {
        let k = Kernels::for_tier(tier).expect("supported tier has a table");
        let t = tier.name();
        r.bench_bytes(&format!("simd/sad_16x16/tier={t}"), 512, || {
            (k.sad16)(black_box(&cur), 64, 8, 8, black_box(&reference), 64, 9, 8)
        });
        r.bench_bytes(&format!("simd/sad_8x8/tier={t}"), 128, || {
            (k.sad8)(black_box(&cur), 64, 8, 8, black_box(&reference), 64, 9, 8)
        });
        r.bench_bytes(&format!("simd/sad_16x16_half_diag/tier={t}"), 512, || {
            (k.sad16_half_pel)(
                black_box(&cur),
                64,
                8,
                8,
                black_box(&reference),
                64,
                9,
                8,
                true,
                true,
                u32::MAX,
            )
        });
        {
            let mut out = vec![0u8; 256];
            r.bench_bytes(&format!("simd/interp_diag_16x16/tier={t}"), 256, || {
                (k.interp)(
                    black_box(&reference),
                    64,
                    8,
                    8,
                    HalfPel::Diagonal,
                    16,
                    16,
                    &mut out,
                );
                out[0]
            });
        }
        {
            let mut out = vec![0u8; 256];
            r.bench_bytes(&format!("simd/avg_256/tier={t}"), 512, || {
                (k.avg)(
                    black_box(&cur[..256]),
                    black_box(&reference[..256]),
                    &mut out,
                );
                out[0]
            });
        }
        {
            let mut out = vec![0u8; 256];
            r.bench_bytes(&format!("simd/copy_16x16/tier={t}"), 256, || {
                (k.copy_block)(black_box(&reference), 64, 8, 8, 16, 16, &mut out);
                out[0]
            });
        }
        r.bench(&format!("simd/quant_intra/tier={t}"), || {
            (k.quant_intra)(black_box(&coefs), 8)
        });
        r.bench(&format!("simd/quant_inter/tier={t}"), || {
            (k.quant_inter)(black_box(&coefs), 8)
        });
        r.bench(&format!("simd/dequant_intra/tier={t}"), || {
            (k.dequant_intra)(black_box(&levels), 8)
        });
        r.bench(&format!("simd/dequant_inter/tier={t}"), || {
            (k.dequant_inter)(black_box(&levels), 8)
        });
    }
}

fn bench_bitstream(r: &mut BenchRunner) {
    r.bench("bitstream/write_1k_fields", || {
        let mut w = BitWriter::with_capacity(1024);
        for i in 0..1000u32 {
            w.put_bits(i & 0x3f, 7);
        }
        w.into_bytes()
    });
    let mut w = BitWriter::new();
    for i in 0..1000u32 {
        w.put_bits(i & 0x3f, 7);
    }
    let bytes = w.into_bytes();
    r.bench("bitstream/read_1k_fields", || {
        let mut rd = BitReader::new(black_box(&bytes));
        let mut acc = 0u64;
        for _ in 0..1000 {
            acc += u64::from(rd.get_bits(7).unwrap());
        }
        acc
    });
}

fn bench_arith(r: &mut BenchRunner) {
    let bits: Vec<bool> = (0..2048).map(|i| i % 9 == 0).collect();
    r.bench("arith/encode_2k_bits_adaptive", || {
        let mut model = ContextModel::new(4);
        let mut enc = ArithEncoder::new();
        for (i, &b) in bits.iter().enumerate() {
            let ctx = i & 3;
            enc.encode(b, model.p0(ctx));
            model.update(ctx, b);
        }
        enc.finish()
    });
    let (payload, n) = {
        let mut model = ContextModel::new(4);
        let mut enc = ArithEncoder::new();
        for (i, &b) in bits.iter().enumerate() {
            let ctx = i & 3;
            enc.encode(b, model.p0(ctx));
            model.update(ctx, b);
        }
        enc.finish()
    };
    r.bench("arith/decode_2k_bits_adaptive", || {
        let mut model = ContextModel::new(4);
        let mut dec = ArithDecoder::new(black_box(&payload), n);
        let mut acc = 0u32;
        for i in 0..bits.len() {
            let ctx = i & 3;
            let b = dec.decode(model.p0(ctx));
            model.update(ctx, b);
            acc += u32::from(b);
        }
        acc
    });
}

fn bench_memsim(r: &mut BenchRunner) {
    {
        let mut h = Hierarchy::new(MachineSpec::o2());
        h.access_range(0, 64, AccessKind::Load, 8);
        r.bench("memsim/l1_hit_probe", || {
            h.access_range(black_box(0), 8, AccessKind::Load, 1);
        });
    }
    {
        let mut h = Hierarchy::new(MachineSpec::o2());
        let mut base = 0u64;
        r.bench_bytes("memsim/streaming_4kb", 4096, || {
            h.access_range(black_box(base), 4096, AccessKind::Load, 512);
            base = base.wrapping_add(4096);
        });
    }
    {
        let mut space = AddressSpace::new();
        let buf = SimBuf::<u8>::zeroed(&mut space, 1 << 20);
        let mut h = Hierarchy::new(MachineSpec::onyx2());
        let mut off = 0usize;
        r.bench("memsim/simbuf_row_load", || {
            let row = buf.load_run(&mut h, off & 0xf_ffff, 16);
            off += 720;
            black_box(row[0])
        });
    }
    // The block-charging pair: one 16×16 window (stride 720, a PAL
    // luma row) charged as 16 per-row ranges vs one rectangular
    // charge. The window slides one row per iteration, the hot
    // motion-search pattern the rect fast path exists for.
    {
        let mut h = Hierarchy::new(MachineSpec::o2());
        let mut y = 0u64;
        r.bench_bytes("memsim/access_range", 256, || {
            let base = 0x10_0000 + (y & 63) * 720;
            for row in 0..16u64 {
                h.access_range(black_box(base + row * 720), 16, AccessKind::Load, 16);
            }
            y += 1;
        });
    }
    {
        let mut h = Hierarchy::new(MachineSpec::o2());
        let mut y = 0u64;
        r.bench_bytes("memsim/access_rect", 256, || {
            h.access_rect(
                black_box(0x10_0000 + (y & 63) * 720),
                720,
                16,
                16,
                AccessKind::Load,
                16,
            );
            y += 1;
        });
    }
}

fn bench_parallel(r: &mut BenchRunner) {
    use m4ps_memsim::NullModel;
    use m4ps_vidgen::{Resolution, Scene, SceneSpec};

    // One PAL P-frame, 4 slices, scheduled onto 1/2/4 workers. The
    // output is bit-identical across the three entries (the pool is a
    // pure scheduling knob); the entries exist to track the scaling and
    // the pool's dispatch overhead.
    let res = Resolution::PAL;
    let scene = Scene::new(SceneSpec {
        resolution: res,
        objects: 0,
        seed: 11,
    });
    let frames = [scene.frame(0), scene.frame(1)];
    fn view(f: &m4ps_vidgen::YuvFrame) -> FrameView<'_> {
        FrameView {
            width: f.resolution.width,
            height: f.resolution.height,
            y: &f.y,
            u: &f.u,
            v: &f.v,
        }
    }
    let config = EncoderConfig {
        gop: m4ps_codec::GopStructure {
            intra_period: 1 << 20, // first frame I, every benched frame P
            b_frames: 0,
        },
        ..EncoderConfig::fast_test()
    }
    .with_slices(4);
    let bytes = (res.width * res.height * 3 / 2) as u64;
    for threads in [1usize, 2, 4] {
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        let mut coder = VideoObjectCoder::new(&mut space, res.width, res.height, config).unwrap();
        coder.set_threads(threads);
        // Prime the anchor so every measured frame is a P-VOP.
        coder
            .encode_frame(&mut mem, &view(&frames[0]), None)
            .unwrap();
        r.bench_bytes(
            &format!("parallel/encode_frame/threads={threads}"),
            bytes,
            || {
                coder
                    .encode_frame(&mut mem, &view(&frames[1]), None)
                    .unwrap()
                    .len()
            },
        );
    }
    // Scheduling-mode pair at the widest worker count: coarse slice
    // jobs vs wavefront row chains over the same persistent pool. The
    // bytes are identical; the delta is pure scheduler overhead (task
    // boxing, deque traffic) vs load-balance win.
    for sched in [
        m4ps_codec::Scheduling::SliceParallel,
        m4ps_codec::Scheduling::Wavefront,
    ] {
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        let mut coder = VideoObjectCoder::new(&mut space, res.width, res.height, config).unwrap();
        coder.set_threads(4);
        coder.set_scheduling(sched);
        coder
            .encode_frame(&mut mem, &view(&frames[0]), None)
            .unwrap();
        let label = match sched {
            m4ps_codec::Scheduling::SliceParallel => "slice",
            m4ps_codec::Scheduling::Wavefront => "wavefront",
        };
        r.bench_bytes(
            &format!("parallel/encode_frame/sched={label}"),
            bytes,
            || {
                coder
                    .encode_frame(&mut mem, &view(&frames[1]), None)
                    .unwrap()
                    .len()
            },
        );
    }
}

fn bench_parallel_decode(r: &mut BenchRunner) {
    use m4ps_codec::VideoObjectDecoder;
    use m4ps_memsim::NullModel;
    use m4ps_vidgen::{Resolution, Scene, SceneSpec};

    // The decode mirror of `bench_parallel`: one PAL P-VOP, 4 slices,
    // re-decoded from a fixed bit position at each worker count.
    // threads=seq is the legacy no-pool decoder (the pre-prescan code
    // path); threads=1 is the slice-parallel construction on a single
    // worker, so the seq -> 1 delta is the pure cost of the pre-scan,
    // model forks and pool dispatch, and 1 -> 4 is the scaling win.
    // The reconstruction is bit-identical across all four entries.
    let res = Resolution::PAL;
    let scene = Scene::new(SceneSpec {
        resolution: res,
        objects: 0,
        seed: 11,
    });
    let config = EncoderConfig {
        gop: m4ps_codec::GopStructure {
            intra_period: 1 << 20, // frame 0 I, frame 1 P
            b_frames: 0,
        },
        ..EncoderConfig::fast_test()
    }
    .with_slices(4);
    let stream = {
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        let mut coder = VideoObjectCoder::new(&mut space, res.width, res.height, config).unwrap();
        let mut stream = coder.header_bytes();
        for t in 0..2 {
            let f = scene.frame(t);
            let view = FrameView {
                width: f.resolution.width,
                height: f.resolution.height,
                y: &f.y,
                u: &f.u,
                v: &f.v,
            };
            for vop in coder.encode_frame(&mut mem, &view, None).unwrap() {
                stream.extend_from_slice(&vop.bytes);
            }
        }
        for vop in coder.flush(&mut mem).unwrap() {
            stream.extend_from_slice(&vop.bytes);
        }
        stream
    };
    let bytes = (res.width * res.height * 3 / 2) as u64;
    for threads in [0usize, 1, 2, 4] {
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        let mut reader = BitReader::new(&stream);
        let mut dec = VideoObjectDecoder::from_stream(&mut space, &mut mem, &mut reader).unwrap();
        dec.set_threads(threads); // 0 = legacy sequential path
                                  // Prime the anchor so every measured decode is the P-VOP.
        dec.decode_next(&mut mem, &mut reader).unwrap().unwrap();
        let pos = reader.bit_pos();
        let label = if threads == 0 {
            "seq".to_string()
        } else {
            threads.to_string()
        };
        r.bench_bytes(
            &format!("parallel/decode_frame/threads={label}"),
            bytes,
            || {
                let mut rr = BitReader::new(&stream);
                rr.seek_to(pos);
                usize::from(dec.decode_next(&mut mem, &mut rr).unwrap().is_some())
            },
        );
    }
}

fn bench_obs_overhead(r: &mut BenchRunner) {
    use m4ps_memsim::NullModel;
    use m4ps_vidgen::{Resolution, Scene, SceneSpec};

    // The same P-frame encode with and without an installed profiler
    // session. With no session, spans cost one atomic load each; with
    // one, every span snapshots the counters twice and does ~40 word
    // ops. bench_compare gates obs=on against obs=off (<5% overhead).
    let res = Resolution::PAL;
    let scene = Scene::new(SceneSpec {
        resolution: res,
        objects: 0,
        seed: 11,
    });
    let frames = [scene.frame(0), scene.frame(1)];
    fn view(f: &m4ps_vidgen::YuvFrame) -> FrameView<'_> {
        FrameView {
            width: f.resolution.width,
            height: f.resolution.height,
            y: &f.y,
            u: &f.u,
            v: &f.v,
        }
    }
    let config = EncoderConfig {
        gop: m4ps_codec::GopStructure {
            intra_period: 1 << 20,
            b_frames: 0,
        },
        ..EncoderConfig::fast_test()
    }
    .with_slices(4);
    let bytes = (res.width * res.height * 3 / 2) as u64;
    for profiled in [false, true] {
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        let mut coder = VideoObjectCoder::new(&mut space, res.width, res.height, config).unwrap();
        coder.set_threads(1);
        coder
            .encode_frame(&mut mem, &view(&frames[0]), None)
            .unwrap();
        let profiler = profiled.then(|| m4ps_obs::Profiler::new(false));
        let _guard = profiler.as_ref().map(m4ps_obs::Profiler::attach);
        let label = if profiled { "on" } else { "off" };
        r.bench_bytes(&format!("parallel/encode_frame/obs={label}"), bytes, || {
            coder
                .encode_frame(&mut mem, &view(&frames[1]), None)
                .unwrap()
                .len()
        });
    }

    // The same encode with the profiler session held constant and the
    // flight recorder toggled: with one installed, every coarse phase
    // span appends a 40-byte event to the thread's ring. bench_compare
    // gates rec=on against rec=off (<8% overhead).
    for recorded in [false, true] {
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        let mut coder = VideoObjectCoder::new(&mut space, res.width, res.height, config).unwrap();
        coder.set_threads(1);
        coder
            .encode_frame(&mut mem, &view(&frames[0]), None)
            .unwrap();
        let profiler = m4ps_obs::Profiler::new(false);
        let recorder = recorded.then(|| m4ps_obs::Recorder::new(0));
        if let Some(rec) = &recorder {
            profiler.set_recorder(rec);
        }
        let _guard = profiler.attach();
        let label = if recorded { "on" } else { "off" };
        r.bench_bytes(&format!("parallel/encode_frame/rec={label}"), bytes, || {
            coder
                .encode_frame(&mut mem, &view(&frames[1]), None)
                .unwrap()
                .len()
        });
    }
}

fn bench_serve(r: &mut BenchRunner) {
    use m4ps_memsim::NullModel;
    use m4ps_serve::{AdmissionConfig, Service, ServiceConfig, SessionSpec};

    // Multi-session service throughput: 64 concurrent tiny sessions
    // (2 frames each, 2 slices per VOP) multiplexed over one shared
    // 4-thread pool by 8 drivers. Each iteration is a full batch —
    // admit, fair-queue, encode, drain — so the median tracks the
    // whole service path, not just the codec inner loop. The meta keys
    // (sessions/sec, frame latency percentiles) come from a dedicated
    // measurement batch on the same service.
    const SESSIONS: usize = 64;
    const FRAMES: usize = 2;
    let service = Service::new(ServiceConfig {
        threads: 4,
        drivers: 8,
        sched: Some(m4ps_codec::Scheduling::SliceParallel),
        admission: AdmissionConfig::default(),
        ..ServiceConfig::default()
    });
    let specs = || -> Vec<SessionSpec> {
        (0..SESSIONS as u64)
            .map(|i| SessionSpec::tiny(i, FRAMES))
            .collect()
    };
    let report = service.run_batch(specs(), |_, _| NullModel::new(), |_, _| {});
    assert_eq!(
        report.completed, SESSIONS as u64,
        "bench batch must complete"
    );
    r.set_meta("serve_sessions", &SESSIONS.to_string());
    r.set_meta(
        "serve_sessions_per_sec",
        &format!("{:.1}", report.sessions_per_sec),
    );
    r.set_meta(
        "serve_frame_p50_ms",
        &format!("{:.3}", report.frame_latency.p50() as f64 / 1e6),
    );
    r.set_meta(
        "serve_frame_p99_ms",
        &format!("{:.3}", report.frame_latency.p99() as f64 / 1e6),
    );

    // 64×48 4:2:0 frames: the batch's input traffic.
    let bytes = (SESSIONS * FRAMES * 64 * 48 * 3 / 2) as u64;
    r.bench_bytes(&format!("serve/batch/sessions={SESSIONS}"), bytes, || {
        let rep = service.run_batch(specs(), |_, _| NullModel::new(), |_, _| {});
        assert_eq!(rep.completed, SESSIONS as u64);
        rep.frames
    });

    // The same offered load through a single driver on a single-thread
    // pool: the serialized floor. The ratio of the two medians is the
    // service's concurrency win on this machine.
    let solo = Service::new(ServiceConfig {
        threads: 1,
        drivers: 1,
        sched: Some(m4ps_codec::Scheduling::SliceParallel),
        admission: AdmissionConfig::default(),
        ..ServiceConfig::default()
    });
    r.bench_bytes("serve/batch/drivers=1", bytes, || {
        let rep = solo.run_batch(specs(), |_, _| NullModel::new(), |_, _| {});
        assert_eq!(rep.completed, SESSIONS as u64);
        rep.frames
    });
}

fn main() {
    let mut r = BenchRunner::from_args("kernels");
    // Stamp the report with the tier the dispatched entries (and the
    // codec-level benches below) actually ran, so bench_compare can
    // refuse to diff reports from different tiers.
    r.set_meta("kernel_tier", m4ps_dsp::active_tier().name());
    bench_dct(&mut r);
    bench_sad(&mut r);
    bench_simd_tiers(&mut r);
    bench_bitstream(&mut r);
    bench_arith(&mut r);
    bench_memsim(&mut r);
    bench_parallel(&mut r);
    bench_parallel_decode(&mut r);
    bench_obs_overhead(&mut r);
    bench_serve(&mut r);
    r.finish();
}
