//! One generator per table and figure of the paper.

use crate::cli::Options;
use m4ps_core::baseline::{run_resident, run_streaming, StreamingKernel};
use m4ps_core::burst::burstiness;
use m4ps_core::fallacy;
use m4ps_core::report::{render_phase_table, render_table, METRIC_ROWS};
use m4ps_core::study::{
    decode_study, encode_study, prepare_streams, RunResult, StudyConfig, Workload,
};
use m4ps_memsim::{MachineSpec, MemoryMetrics};
use m4ps_vidgen::Resolution;

/// A named, runnable experiment.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// CLI name (`table2`, `fig3`, …).
    pub name: &'static str,
    /// What it reproduces.
    pub description: &'static str,
    /// Generator returning the rendered report.
    pub run: fn(&Options) -> String,
}

/// Every experiment, in paper order.
pub const ALL_EXPERIMENTS: &[Experiment] = &[
    Experiment {
        name: "table1",
        description: "Table 1: common platform highlights",
        run: table1,
    },
    Experiment {
        name: "table2",
        description: "Table 2: video encoding, one VO, one layer",
        run: table2,
    },
    Experiment {
        name: "table3",
        description: "Table 3: video decoding, one VO, one layer",
        run: table3,
    },
    Experiment {
        name: "table4",
        description: "Table 4: video encoding, three VOs, one layer each",
        run: table4,
    },
    Experiment {
        name: "table5",
        description: "Table 5: video decoding, three VOs, one layer each",
        run: table5,
    },
    Experiment {
        name: "table6",
        description: "Table 6: video encoding, three VOs, two layers each",
        run: table6,
    },
    Experiment {
        name: "table7",
        description: "Table 7: video decoding, three VOs, two layers each",
        run: table7,
    },
    Experiment {
        name: "table8",
        description: "Table 8: burstiness of VopEncode/VopDecode (R12K 8MB)",
        run: table8,
    },
    Experiment {
        name: "fig2",
        description: "Figure 2: memory statistics vs growing image size (decode, 1MB L2)",
        run: fig2,
    },
    Experiment {
        name: "fig3",
        description: "Figure 3: L1C miss rates vs number of objects/layers (R10K 2MB)",
        run: fig3,
    },
    Experiment {
        name: "fig4",
        description: "Figure 4: L2C miss rates vs number of objects/layers (R10K 2MB)",
        run: fig4,
    },
    Experiment {
        name: "fallacies",
        description: "Section 3.2: the five fallacy verdicts",
        run: fallacies,
    },
    Experiment {
        name: "contrast",
        description: "Streaming-kernel baseline vs the codec (why 'MPEG-4 does not stream')",
        run: contrast,
    },
    Experiment {
        name: "ablation-blocking",
        description: "Ablation: search discipline vs locality (full / three-step / diamond)",
        run: ablation_blocking,
    },
    Experiment {
        name: "ablation-l2",
        description: "Ablation: L2 capacity sweep beyond the three SGI presets",
        run: ablation_l2,
    },
    Experiment {
        name: "ablation-prefetch",
        description: "Ablation: software prefetch on/off for the encoder",
        run: ablation_prefetch,
    },
    Experiment {
        name: "ablation-4mv",
        description: "Ablation: advanced prediction (four 8x8 vectors per MB) on/off",
        run: ablation_4mv,
    },
    Experiment {
        name: "ablation-resync",
        description:
            "Ablation: error-resilience resync markers on/off (bit cost vs memory behaviour)",
        run: ablation_resync,
    },
    Experiment {
        name: "misses-by-structure",
        description: "Beyond the paper: demand misses attributed to codec data structures",
        run: misses_by_structure,
    },
    Experiment {
        name: "phases",
        description: "Beyond the paper: SpeedShop-style per-phase counter attribution (R12K 1MB)",
        run: phases,
    },
    Experiment {
        name: "memwall",
        description:
            "Future work (§4): processor-to-memory ratio at which MPEG-4 becomes memory limited",
        run: memwall,
    },
    Experiment {
        name: "simd",
        description: "Future work (§4): fetch-rate vs L1-bandwidth limits under SIMD/vector ISAs",
        run: simd_projection,
    },
];

/// Runs the experiment named `name`, if it exists.
pub fn run_experiment(name: &str, opts: &Options) -> Option<String> {
    ALL_EXPERIMENTS
        .iter()
        .find(|e| e.name == name)
        .map(|e| (e.run)(opts))
}

fn config(opts: &Options) -> StudyConfig {
    StudyConfig::paper().with_search(opts.search, opts.search_range)
}

fn machines() -> Vec<MachineSpec> {
    MachineSpec::study_machines()
}

fn workload(opts: &Options, resolution: Resolution, objects: usize, layers: usize) -> Workload {
    Workload {
        resolution,
        frames: opts.frames,
        objects,
        layers,
        seed: opts.seed,
    }
}

fn run_note(opts: &Options) -> String {
    format!(
        "(frames={}, search={:?} ±{}, seed={:#x})\n",
        opts.frames, opts.search, opts.search_range, opts.seed
    )
}

/// Encoding table over both paper resolutions and all three machines.
fn encode_table(title: &str, opts: &Options, objects: usize, layers: usize) -> String {
    let cfg = config(opts);
    let mut out = run_note(opts);
    for res in [Resolution::PAL, Resolution::XGA] {
        let w = workload(opts, res, objects, layers);
        let runs: Vec<RunResult> = machines()
            .iter()
            .map(|m| encode_study(m, &w, &cfg).expect("encode run"))
            .collect();
        let cols: Vec<(String, &MemoryMetrics)> = runs
            .iter()
            .map(|r| (r.machine.column_label(), &r.metrics))
            .collect();
        let cols_ref: Vec<(&str, &MemoryMetrics)> =
            cols.iter().map(|(n, m)| (n.as_str(), *m)).collect();
        out.push_str(&render_table(
            &format!("{title} — {}x{} pixels", res.width, res.height),
            &cols_ref,
        ));
        out.push_str(&format!(
            "resident memory: {} MB; bitstream: {} bytes; candidates: {}\n\n",
            runs[0].resident_bytes / 1_000_000,
            runs[0].session.bytes,
            runs[0].session.totals.candidates
        ));
    }
    out
}

/// Decoding table over both paper resolutions and all three machines.
fn decode_table(title: &str, opts: &Options, objects: usize, layers: usize) -> String {
    let cfg = config(opts);
    let mut out = run_note(opts);
    for res in [Resolution::PAL, Resolution::XGA] {
        let w = workload(opts, res, objects, layers);
        let streams = prepare_streams(&w, &cfg).expect("stream prep");
        let runs: Vec<RunResult> = machines()
            .iter()
            .map(|m| decode_study(m, &w, &streams).expect("decode run"))
            .collect();
        let cols: Vec<(String, &MemoryMetrics)> = runs
            .iter()
            .map(|r| (r.machine.column_label(), &r.metrics))
            .collect();
        let cols_ref: Vec<(&str, &MemoryMetrics)> =
            cols.iter().map(|(n, m)| (n.as_str(), *m)).collect();
        out.push_str(&render_table(
            &format!("{title} — {}x{} pixels", res.width, res.height),
            &cols_ref,
        ));
        out.push_str(&format!(
            "resident memory: {} MB; bitstream: {} bytes\n\n",
            runs[0].resident_bytes / 1_000_000,
            runs[0].session.bytes
        ));
    }
    out
}

fn table1(_opts: &Options) -> String {
    let mut out = String::from("## Table 1: Common Platform Highlights\n\n");
    for m in machines() {
        out.push_str(&format!(
            "{:28} {} @ {} MHz, L1D {} KB {}-way/{} B lines, L2 {} MB {}-way/{} B lines\n",
            m.name,
            m.cpu.short_name(),
            m.clock_mhz,
            m.l1.size_bytes / 1024,
            m.l1.assoc,
            m.l1.line_bytes,
            m.l2.size_bytes / (1024 * 1024),
            m.l2.assoc,
            m.l2.line_bytes,
        ));
    }
    let d = machines()[0].dram;
    out.push_str(&format!(
        "system bus: {} bits, {} MHz, split transaction; {}-way interleaved SDRAM\n",
        d.bus_bits, d.bus_mhz, d.interleave
    ));
    out.push_str(&format!(
        "bandwidth: {:.0} MB/s sustained, {:.0} MB/s peak\n",
        d.sustained_mb_s,
        d.peak_mb_s()
    ));
    out
}

fn table2(opts: &Options) -> String {
    encode_table(
        "Table 2: Video Encoding, One Visual Object, One Layer",
        opts,
        0,
        1,
    )
}

fn table3(opts: &Options) -> String {
    decode_table(
        "Table 3: Video Decoding, One Visual Object, One Layer",
        opts,
        0,
        1,
    )
}

fn table4(opts: &Options) -> String {
    encode_table(
        "Table 4: Video Encoding, Three Visual Objects, One Layer Each",
        opts,
        3,
        1,
    )
}

fn table5(opts: &Options) -> String {
    decode_table(
        "Table 5: Video Decoding, Three Visual Objects, One Layer Each",
        opts,
        3,
        1,
    )
}

fn table6(opts: &Options) -> String {
    encode_table(
        "Table 6: Video Encoding, Three Visual Objects, Two Layers Each",
        opts,
        3,
        2,
    )
}

fn table7(opts: &Options) -> String {
    decode_table(
        "Table 7: Video Decoding, Three Visual Objects, Two Layers Each",
        opts,
        3,
        2,
    )
}

fn table8(opts: &Options) -> String {
    let cfg = config(opts);
    let machine = MachineSpec::onyx2();
    let mut out = run_note(opts);
    out.push_str("## Table 8: VopEncode/VopDecode vs whole program (R12K, 8MB L2)\n\n");
    for res in [Resolution::PAL, Resolution::XGA] {
        let w = workload(opts, res, 0, 1);
        let (enc, dec) = burstiness(&machine, &w, &cfg).expect("burstiness run");
        out.push_str(&format!("### {}x{} pixels\n", res.width, res.height));
        for rep in [&enc, &dec] {
            out.push_str(&format!(
                "{}: {:.0}% of memory refs inside the window\n",
                rep.function,
                rep.window_ref_share * 100.0
            ));
            for (row, label) in [
                (0usize, "L1C miss rate"),
                (3, "L2C miss rate"),
                (6, "L1-L2 b/w"),
                (7, "L2-DRAM b/w"),
            ] {
                out.push_str(&format!(
                    "  {label:18} window {:>10}   [whole program {:>10}]\n",
                    m4ps_core::report::format_cell(&rep.window, row),
                    m4ps_core::report::format_cell(&rep.whole, row),
                ));
            }
        }
        out.push('\n');
    }
    out
}

fn fig2(opts: &Options) -> String {
    let cfg = config(opts);
    let machine = MachineSpec::o2(); // the 1 MB L2 platform
    let mut out = run_note(opts);
    out.push_str("## Figure 2: Memory Statistics for Growing Image Size (Decoding, 1MB L2C)\n\n");
    out.push_str(&format!(
        "{:>12} {:>14} {:>14} {:>14} {:>14}\n",
        "size", "L1C miss rate", "L2C miss rate", "L2-DRAM MB/s", "DRAM time"
    ));
    for res in [
        Resolution::CIF,
        Resolution::PAL,
        Resolution::XGA,
        Resolution::HUGE,
    ] {
        let w = workload(opts, res, 0, 1);
        let streams = prepare_streams(&w, &cfg).expect("stream prep");
        let run = decode_study(&machine, &w, &streams).expect("decode run");
        out.push_str(&format!(
            "{:>12} {:>14} {:>14} {:>14} {:>14}\n",
            format!("{}x{}", res.width, res.height),
            format!("{:.3}%", run.metrics.l1_miss_rate * 100.0),
            format!("{:.2}%", run.metrics.l2_miss_rate * 100.0),
            format!("{:.1}", run.metrics.l2_dram_mb_s),
            format!("{:.1}%", run.metrics.dram_time * 100.0),
        ));
    }
    out
}

/// Shared driver for Figures 3 and 4: miss rates for the three
/// object/layer configurations, encode and decode, both sizes, on the
/// R10K/2MB machine.
fn fig34(opts: &Options, l2: bool) -> String {
    let cfg = config(opts);
    let machine = MachineSpec::onyx_vtx();
    let mut out = run_note(opts);
    let level = if l2 { "L2C" } else { "L1C" };
    out.push_str(&format!(
        "## Figure {}: {level} Miss Rates for Varying Numbers of Objects and Layers (R10K 2MB)\n\n",
        if l2 { 4 } else { 3 }
    ));
    for res in [Resolution::PAL, Resolution::XGA] {
        for mode in ["encoding", "decoding"] {
            out.push_str(&format!("{}x{} {mode}: ", res.width, res.height));
            let mut cells = Vec::new();
            for (objects, layers) in [(0usize, 1usize), (3, 1), (3, 2)] {
                let w = workload(opts, res, objects, layers);
                let run = if mode == "encoding" {
                    encode_study(&machine, &w, &cfg).expect("encode run")
                } else {
                    let streams = prepare_streams(&w, &cfg).expect("stream prep");
                    decode_study(&machine, &w, &streams).expect("decode run")
                };
                let rate = if l2 {
                    run.metrics.l2_miss_rate
                } else {
                    run.metrics.l1_miss_rate
                };
                cells.push(format!("{}={:.3}%", w.label(), rate * 100.0));
            }
            out.push_str(&cells.join("  "));
            out.push('\n');
        }
    }
    out
}

fn fig3(opts: &Options) -> String {
    fig34(opts, false)
}

fn fig4(opts: &Options) -> String {
    fig34(opts, true)
}

fn fallacies(opts: &Options) -> String {
    let cfg = config(opts);
    let machine = MachineSpec::o2();
    let mut out = run_note(opts);
    out.push_str("## Section 3.2: Fallacies and Paradoxes\n\n");

    // Base runs: encode + decode on the 1 MB machine at both sizes.
    let mut base_runs = Vec::new();
    for res in [Resolution::PAL, Resolution::XGA] {
        let w = workload(opts, res, 0, 1);
        base_runs.push(encode_study(&machine, &w, &cfg).expect("encode run"));
        let streams = prepare_streams(&w, &cfg).expect("stream prep");
        base_runs.push(decode_study(&machine, &w, &streams).expect("decode run"));
    }

    // Image-size series (decode, 1 MB).
    let mut size_runs = Vec::new();
    for res in [
        Resolution::CIF,
        Resolution::PAL,
        Resolution::XGA,
        Resolution::HUGE,
    ] {
        let w = workload(opts, res, 0, 1);
        let streams = prepare_streams(&w, &cfg).expect("stream prep");
        size_runs.push(decode_study(&machine, &w, &streams).expect("decode run"));
    }

    // Objects/layers series (decode, 2 MB, XGA — the paper's Figure 3/4 context).
    let vtx = MachineSpec::onyx_vtx();
    let mut obj_runs = Vec::new();
    for (objects, layers) in [(0usize, 1usize), (3, 1), (3, 2)] {
        let w = workload(opts, Resolution::XGA, objects, layers);
        let streams = prepare_streams(&w, &cfg).expect("stream prep");
        obj_runs.push(decode_study(&vtx, &w, &streams).expect("decode run"));
    }

    for verdict in [
        fallacy::streaming(&base_runs, &machine),
        fallacy::latency(&base_runs),
        fallacy::bandwidth(&base_runs, &machine),
        fallacy::image_size(&size_runs),
        fallacy::objects_layers(&obj_runs),
    ] {
        out.push_str(&format!(
            "[{}] {}\n    evidence: {}\n",
            if verdict.refuted {
                "REFUTED"
            } else {
                "NOT REFUTED"
            },
            verdict.assumption,
            verdict.evidence
        ));
    }
    out
}

fn contrast(opts: &Options) -> String {
    let cfg = config(opts);
    let machine = MachineSpec::o2();
    let mut out = run_note(opts);
    out.push_str("## Contrast: the codec vs a true streaming kernel (same hierarchy)\n\n");
    let w = workload(opts, Resolution::PAL, 0, 1);
    let codec = encode_study(&machine, &w, &cfg).expect("encode run");
    let stream = run_streaming(&machine, &StreamingKernel::default());
    let resident = run_resident(&machine, 16 * 1024, 2000);
    let cols = [
        ("MPEG-4 encode", &codec.metrics),
        ("streaming", &stream),
        ("L1-resident", &resident),
    ];
    out.push_str(&render_table("codec vs streaming vs resident", &cols));
    out.push_str(&format!(
        "\nbus utilization: codec {:.2}%, streaming {:.1}%, resident {:.3}%\n",
        codec.metrics.bus_utilization(&machine) * 100.0,
        stream.bus_utilization(&machine) * 100.0,
        resident.bus_utilization(&machine) * 100.0
    ));
    out
}

fn ablation_blocking(opts: &Options) -> String {
    use m4ps_codec::SearchStrategy;
    let machine = MachineSpec::o2();
    let mut out = run_note(opts);
    out.push_str("## Ablation: search discipline vs locality (encode, PAL, 1MB L2)\n\n");
    let w = workload(opts, Resolution::PAL, 0, 1);
    let mut cols = Vec::new();
    for (label, strat, range) in [
        ("full ±8", SearchStrategy::FullSearch, 8),
        ("full ±15", SearchStrategy::FullSearch, 15),
        ("three-step", SearchStrategy::ThreeStep, 8),
        ("diamond", SearchStrategy::Diamond, 8),
    ] {
        let cfg = StudyConfig::paper().with_search(strat, range);
        let run = encode_study(&machine, &w, &cfg).expect("encode run");
        cols.push((label, run.metrics.clone(), run.session.totals.candidates));
    }
    let table_cols: Vec<(&str, &MemoryMetrics)> = cols.iter().map(|(l, m, _)| (*l, m)).collect();
    out.push_str(&render_table("search strategies", &table_cols));
    out.push('\n');
    for (l, _, cand) in &cols {
        out.push_str(&format!("{l}: {cand} candidates\n"));
    }
    out.push_str(
        "\nThe exhaustive overlapping-window walk is what generates the paper's\n\
         locality; fast searches evaluate far fewer candidates, trading line\n\
         reuse for less total work.\n",
    );
    out
}

fn ablation_l2(opts: &Options) -> String {
    let cfg = config(opts);
    let mut out = run_note(opts);
    out.push_str("## Ablation: L2 capacity sweep (decode, PAL)\n\n");
    let w = workload(opts, Resolution::PAL, 0, 1);
    let streams = prepare_streams(&w, &cfg).expect("stream prep");
    out.push_str(&format!(
        "{:>8} {:>14} {:>14} {:>12}\n",
        "L2", "L2C miss rate", "L2-DRAM MB/s", "DRAM time"
    ));
    for mb in [1u64, 2, 4, 8, 16] {
        let machine = MachineSpec::o2().with_l2_mb(mb);
        let run = decode_study(&machine, &w, &streams).expect("decode run");
        out.push_str(&format!(
            "{:>8} {:>14} {:>14} {:>12}\n",
            format!("{mb}MB"),
            format!("{:.2}%", run.metrics.l2_miss_rate * 100.0),
            format!("{:.1}", run.metrics.l2_dram_mb_s),
            format!("{:.1}%", run.metrics.dram_time * 100.0),
        ));
    }
    out
}

fn ablation_prefetch(opts: &Options) -> String {
    let machine = MachineSpec::o2();
    let mut out = run_note(opts);
    out.push_str("## Ablation: software prefetch on/off (encode, PAL, R12K 1MB)\n\n");
    let w = workload(opts, Resolution::PAL, 0, 1);
    for (label, prefetch) in [("prefetch ON", true), ("prefetch OFF", false)] {
        let mut cfg = config(opts);
        cfg.encoder.software_prefetch = prefetch;
        let run = encode_study(&machine, &w, &cfg).expect("encode run");
        let c = &run.metrics.counters;
        out.push_str(&format!(
            "{label}: prefetches {} ({:.4}% of loads), of which {:.1}% hit L1 (wasted); L1 miss rate {:.3}%\n",
            c.prefetches,
            if c.loads > 0 {
                c.prefetches as f64 / c.loads as f64 * 100.0
            } else {
                0.0
            },
            if c.prefetches > 0 {
                c.prefetch_l1_hits as f64 / c.prefetches as f64 * 100.0
            } else {
                0.0
            },
            run.metrics.l1_miss_rate * 100.0,
        ));
    }
    out.push_str(
        "\nAs in the paper: the conservative streaming-loop prefetches are so few\n\
         and hit L1 so often that they cannot move MPEG-4 performance.\n",
    );
    out
}

fn ablation_4mv(opts: &Options) -> String {
    let machine = MachineSpec::o2();
    let mut out = run_note(opts);
    out.push_str("## Ablation: advanced prediction (4MV) on/off (encode, PAL, 1MB L2)\n\n");
    let w = workload(opts, Resolution::PAL, 0, 1);
    let mut cols = Vec::new();
    for (label, four_mv) in [("1 MV per MB", false), ("4 MVs per MB", true)] {
        let mut cfg = config(opts);
        cfg.encoder.four_mv = four_mv;
        let run = encode_study(&machine, &w, &cfg).expect("encode run");
        cols.push((
            label,
            run.metrics.clone(),
            run.session.bytes,
            run.session.totals.candidates,
        ));
    }
    let table_cols: Vec<(&str, &MemoryMetrics)> = cols.iter().map(|(l, m, _, _)| (*l, m)).collect();
    out.push_str(&render_table("advanced prediction", &table_cols));
    out.push('\n');
    for (l, _, bytes, cand) in &cols {
        out.push_str(&format!(
            "{l}: {bytes} stream bytes, {cand} search candidates\n"
        ));
    }
    out.push_str(
        "\nThe extra quadrant refinements add search work and references but the\n\
         access pattern stays window-local: the cache picture is unchanged.\n",
    );
    out
}

fn ablation_resync(opts: &Options) -> String {
    let machine = MachineSpec::o2();
    let mut out = run_note(opts);
    out.push_str("## Ablation: resynchronization markers (encode, PAL, 1MB L2)\n\n");
    let w = workload(opts, Resolution::PAL, 0, 1);
    let mut cols = Vec::new();
    for (label, interval) in [("no markers", None), ("marker per MB row", Some(45usize))] {
        let mut cfg = config(opts);
        cfg.encoder.resync_mb_interval = interval;
        let run = encode_study(&machine, &w, &cfg).expect("encode run");
        cols.push((label, run.metrics.clone(), run.session.bytes));
    }
    let table_cols: Vec<(&str, &MemoryMetrics)> = cols.iter().map(|(l, m, _)| (*l, m)).collect();
    out.push_str(&render_table("resync markers", &table_cols));
    out.push('\n');
    let (b0, b1) = (cols[0].2, cols[1].2);
    out.push_str(&format!(
        "bitstream: {b0} -> {b1} bytes (+{:.1}%); cache metrics unchanged —\n\
         resilience costs bits, not memory behaviour.\n",
        (b1 as f64 / b0 as f64 - 1.0) * 100.0
    ));
    out
}

/// SpeedShop-style per-phase attribution: where the references, misses,
/// and modelled stall cycles go, for one encode and one decode run. The
/// per-phase sums partition the aggregate counters bit-for-bit (the
/// `phase_attribution` integration test holds this for every config).
fn phases(opts: &Options) -> String {
    let machine = MachineSpec::o2();
    let cfg = config(opts);
    let mut out = run_note(opts);
    out.push_str(
        "The paper reads SpeedShop/Perfex per-function tables off the SGI\n\
         counters; the simulator attributes its counters to codec phases\n\
         directly. Phase sums equal the run totals exactly.\n\n",
    );
    let w = workload(opts, Resolution::PAL, 0, 1);
    let enc = encode_study(&machine, &w, &cfg).expect("encode run");
    out.push_str(&render_phase_table(
        &format!(
            "Per-phase attribution — video encoding ({})",
            machine.column_label()
        ),
        &enc.profile,
        &machine.timing,
    ));
    out.push('\n');
    let streams = prepare_streams(&w, &cfg).expect("stream prep");
    let dec = decode_study(&machine, &w, &streams).expect("decode run");
    out.push_str(&render_phase_table(
        &format!(
            "Per-phase attribution — video decoding ({})",
            machine.column_label()
        ),
        &dec.profile,
        &machine.timing,
    ));
    out
}

fn misses_by_structure(opts: &Options) -> String {
    let machine = MachineSpec::o2();
    let cfg = config(opts);
    let mut out = run_note(opts);
    out.push_str("## Beyond the paper: which data structures miss? (PAL, R12K 1MB)\n\n");
    out.push_str(
        "The SGI counters could only report totals; the simulator can attribute\n\
         every demand miss to the buffer it lands in.\n\n",
    );
    let w = workload(opts, Resolution::PAL, 0, 1);
    let enc = encode_study(&machine, &w, &cfg).expect("encode run");
    let streams = prepare_streams(&w, &cfg).expect("stream prep");
    let dec = decode_study(&machine, &w, &streams).expect("decode run");
    for (label, run) in [("encoding", &enc), ("decoding", &dec)] {
        let total: u64 = run.metrics.counters.l1_misses.max(1);
        out.push_str(&format!("{label}:\n"));
        for r in &run.region_misses {
            if r.l1_misses == 0 {
                continue;
            }
            out.push_str(&format!(
                "  {:24} L1 misses {:>10} ({:5.1}%)   L2 misses {:>9}\n",
                r.tag,
                r.l1_misses,
                r.l1_misses as f64 / total as f64 * 100.0,
                r.l2_misses
            ));
        }
        out.push('\n');
    }
    out.push_str(
        "Reference and input frame stores absorb nearly all misses; the texture\n\
         pipeline's scratch state is L1-resident, which is the mechanism behind\n\
         the paper's pipeline-reuse observation.\n",
    );
    out
}

fn memwall(opts: &Options) -> String {
    use m4ps_core::memwall::{crossover, sweep};
    let machine = MachineSpec::o2();
    let cfg = config(opts);
    let mut out = run_note(opts);
    out.push_str("## Future work: when does MPEG-4 become memory limited?\n\n");
    let w = workload(opts, Resolution::PAL, 0, 1);
    for (label, counters) in [
        (
            "encode",
            encode_study(&machine, &w, &cfg)
                .expect("encode run")
                .metrics
                .counters,
        ),
        ("decode", {
            let streams = prepare_streams(&w, &cfg).expect("stream prep");
            decode_study(&machine, &w, &streams)
                .expect("decode run")
                .metrics
                .counters
        }),
    ] {
        let ratios = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];
        let pts = sweep(&counters, &machine, &ratios);
        out.push_str(&format!(
            "{label}: memory-stall share vs processor/memory ratio\n"
        ));
        for p in &pts {
            out.push_str(&format!(
                "  x{:<6.0} DRAM {:5.1}%  L1-miss {:5.1}%  total {:5.1}%\n",
                p.ratio,
                p.dram_time * 100.0,
                p.l1_miss_time * 100.0,
                p.memory_stall * 100.0
            ));
        }
        match crossover(&pts) {
            Some(x) => out.push_str(&format!(
                "  -> memory limited (>=50% stall) from ~{:.0}x today's ratio\n\n",
                x.ratio
            )),
            None => out.push_str("  -> never memory limited in the swept range\n\n"),
        }
    }
    out
}

fn simd_projection(opts: &Options) -> String {
    use m4ps_core::simd::project_all;
    let machine = MachineSpec::o2();
    let cfg = config(opts);
    let mut out = run_note(opts);
    out.push_str(
        "## Future work: fetch rate vs L1 bandwidth under SIMD/vector ISAs (encode, PAL)\n\n",
    );
    let w = workload(opts, Resolution::PAL, 0, 1);
    let run = encode_study(&machine, &w, &cfg).expect("encode run");
    for p in project_all(&run.metrics.counters, &machine) {
        out.push_str(&format!(
            "{:32} issue {:>12.0} cycles | L1-bw {:>12.0} cycles | mem stalls {:>11.0} -> limited by {:?}\n",
            p.scenario.name, p.issue_cycles, p.l1_bandwidth_cycles, p.memory_stall_cycles, p.limiter
        ));
    }
    out.push_str(
        "\nAs the paper concludes: scalar and subword-SIMD MPEG-4 are fetch/issue\n\
         bound; only long-vector execution pushes the limit into L1 bandwidth.\n",
    );
    out
}

// Keep the unused METRIC_ROWS import meaningful for future rows.
#[allow(unused)]
fn _rows() -> usize {
    METRIC_ROWS.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Options {
        Options {
            frames: 2,
            search_range: 4,
            search: m4ps_codec::SearchStrategy::Diamond,
            seed: 3,
        }
    }

    #[test]
    fn all_experiments_have_unique_names() {
        let mut names: Vec<_> = ALL_EXPERIMENTS.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_EXPERIMENTS.len());
    }

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run_experiment("table99", &tiny()).is_none());
    }

    #[test]
    fn table1_prints_all_machines() {
        let out = run_experiment("table1", &tiny()).unwrap();
        assert!(out.contains("SGI O2"));
        assert!(out.contains("SGI Onyx VTX"));
        assert!(out.contains("SGI Onyx2 InfiniteReality"));
        assert!(out.contains("680 MB/s sustained"));
    }

    #[test]
    fn contrast_runs_at_tiny_scale() {
        let out = run_experiment("contrast", &tiny()).unwrap();
        assert!(out.contains("streaming"));
        assert!(out.contains("bus utilization"));
    }
}
