//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--frames N] [--search full|diamond|three-step]
//!       [--search-range N] [--seed N] <experiment>... | all | list
//! ```

use m4ps_bench::{run_experiment, Options, ALL_EXPERIMENTS};

fn main() {
    let (opts, targets) = match Options::parse(std::env::args().skip(1)) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if targets.is_empty() || targets.iter().any(|t| t == "list") {
        eprintln!("usage: repro [flags] <experiment>... | all");
        eprintln!("experiments:");
        for e in ALL_EXPERIMENTS {
            eprintln!("  {:18} {}", e.name, e.description);
        }
        std::process::exit(if targets.is_empty() { 2 } else { 0 });
    }
    let names: Vec<&str> = if targets.iter().any(|t| t == "all") {
        ALL_EXPERIMENTS.iter().map(|e| e.name).collect()
    } else {
        targets.iter().map(|s| s.as_str()).collect()
    };
    for name in names {
        match run_experiment(name, &opts) {
            Some(report) => {
                println!("{report}");
                println!("{}", "=".repeat(78));
            }
            None => {
                eprintln!("error: unknown experiment `{name}` (try `repro list`)");
                std::process::exit(2);
            }
        }
    }
}
