//! `trace_smoke` — a tiny traced encode that exercises the whole
//! observability stack end to end and validates its outputs.
//!
//! ```text
//! trace_smoke [<trace.json> [<phases.jsonl>]]
//! ```
//!
//! Runs a 2-slice/2-thread QCIF encode with Chrome-trace export on,
//! then:
//!
//! 1. checks the per-phase profile partitions the aggregate counters
//!    bit-for-bit,
//! 2. parses the emitted trace back through `testkit::json` and checks
//!    the event structure,
//! 3. writes a per-phase JSONL (one object per active phase, with
//!    modelled stall cycles) that `bench_compare --phases` consumes.
//!
//! Defaults: `TRACE_smoke.json` and `PHASES_smoke.jsonl` in the current
//! directory. Exit 0 on success, 1 on a failed check, 2 on I/O errors.

use m4ps_core::memsim::MachineSpec;
use m4ps_core::vidgen::Resolution;
use m4ps_core::{encode_study, StudyConfig, Workload};
use m4ps_testkit::json::Json;
use std::process::ExitCode;

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let trace_path = args.next().unwrap_or_else(|| "TRACE_smoke.json".into());
    let phases_path = args.next().unwrap_or_else(|| "PHASES_smoke.jsonl".into());
    if let Some(extra) = args.next() {
        return Err(format!(
            "unexpected argument {extra:?}\nusage: trace_smoke [<trace.json> [<phases.jsonl>]]"
        ));
    }

    let machine = MachineSpec::o2();
    let workload = Workload {
        resolution: Resolution::QCIF,
        frames: 3,
        objects: 0,
        layers: 1,
        seed: 11,
    };
    let cfg = StudyConfig::fast()
        .with_parallel(2, 2)
        .with_trace(&trace_path);
    let run = encode_study(&machine, &workload, &cfg).map_err(|e| format!("encode: {e:?}"))?;

    // 1. The profile must partition the run exactly.
    if run.profile.total() != run.metrics.counters {
        return Err(format!(
            "phase profile does not partition the aggregate counters:\n  profile {:?}\n  counters {:?}",
            run.profile.total(),
            run.metrics.counters
        ));
    }
    println!("profile partitions counters: ok");

    // 2. The trace must round-trip through the JSON parser.
    let text = std::fs::read_to_string(&trace_path).map_err(|e| format!("{trace_path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{trace_path}: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{trace_path}: missing traceEvents array"))?;
    let complete = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .count();
    let metadata = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
        .count();
    if complete == 0 || metadata == 0 {
        return Err(format!(
            "{trace_path}: expected both span (X) and thread-name (M) events, got {complete}/{metadata}"
        ));
    }
    println!("trace round-trips: {complete} spans, {metadata} thread records ({trace_path})");

    // 3. Emit the per-phase JSONL for bench_compare --phases.
    let mut jsonl = String::new();
    for (phase, stats) in run.profile.iter() {
        if stats.entries == 0 {
            continue;
        }
        let c = &stats.counters;
        let b = machine.timing.breakdown(c);
        let line = format!(
            "{{\"phase\":\"{}\",\"entries\":{},\"refs\":{},\"l1_misses\":{},\"l2_misses\":{},\"wall_ns\":{},\"stall_cycles\":{:.1}}}",
            phase.name(),
            stats.entries,
            c.loads + c.stores,
            c.l1_misses,
            c.l2_misses,
            stats.wall_ns,
            b.l1_stall + b.dram_stall + b.tlb_stall,
        );
        Json::parse(&line).map_err(|e| format!("phases line failed to parse back: {e}"))?;
        jsonl.push_str(&line);
        jsonl.push('\n');
    }
    std::fs::write(&phases_path, &jsonl).map_err(|e| format!("{phases_path}: {e}"))?;
    println!(
        "phase profile: {} active phases ({phases_path})",
        jsonl.lines().count()
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("trace_smoke: {msg}");
            ExitCode::from(1)
        }
    }
}
