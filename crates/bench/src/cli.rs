//! Minimal hand-rolled CLI option parsing for the experiment binary
//! (no external dependencies).

use m4ps_codec::SearchStrategy;

/// Runtime options shared by all experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Options {
    /// Frames per run (paper: 30).
    pub frames: usize,
    /// Integer-pel search range (paper-reproduction default: ±8).
    pub search_range: i16,
    /// Motion-search strategy.
    pub search: SearchStrategy,
    /// Content seed.
    pub seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            frames: 30,
            search_range: 8,
            search: SearchStrategy::FullSearch,
            seed: 0x4d50_4547,
        }
    }
}

impl Options {
    /// Parses `--frames N`, `--search-range N`, `--search full|diamond|
    /// three-step`, `--seed N` from an argument list; returns the
    /// options and the remaining positional arguments.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown flags or malformed values.
    pub fn parse<I: IntoIterator<Item = String>>(
        args: I,
    ) -> Result<(Options, Vec<String>), String> {
        let mut opts = Options::default();
        let mut rest = Vec::new();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--frames" => {
                    let v = it.next().ok_or("--frames needs a value")?;
                    opts.frames = v.parse().map_err(|_| format!("bad --frames value {v}"))?;
                    if opts.frames == 0 {
                        return Err("--frames must be positive".into());
                    }
                }
                "--search-range" => {
                    let v = it.next().ok_or("--search-range needs a value")?;
                    opts.search_range = v
                        .parse()
                        .map_err(|_| format!("bad --search-range value {v}"))?;
                    if !(1..=15).contains(&opts.search_range) {
                        return Err("--search-range must be 1..=15".into());
                    }
                }
                "--search" => {
                    let v = it.next().ok_or("--search needs a value")?;
                    opts.search = match v.as_str() {
                        "full" => SearchStrategy::FullSearch,
                        "diamond" => SearchStrategy::Diamond,
                        "three-step" => SearchStrategy::ThreeStep,
                        other => return Err(format!("unknown search strategy {other}")),
                    };
                }
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    opts.seed = v.parse().map_err(|_| format!("bad --seed value {v}"))?;
                }
                _ => rest.push(arg),
            }
        }
        Ok((opts, rest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<(Options, Vec<String>), String> {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_match_paper() {
        let (o, rest) = parse(&["table2"]).unwrap();
        assert_eq!(o.frames, 30);
        assert_eq!(o.search_range, 8);
        assert_eq!(o.search, SearchStrategy::FullSearch);
        assert_eq!(rest, vec!["table2"]);
    }

    #[test]
    fn flags_are_parsed_anywhere() {
        let (o, rest) = parse(&["--frames", "6", "fig2", "--search", "diamond"]).unwrap();
        assert_eq!(o.frames, 6);
        assert_eq!(o.search, SearchStrategy::Diamond);
        assert_eq!(rest, vec!["fig2"]);
    }

    #[test]
    fn bad_values_are_rejected() {
        assert!(parse(&["--frames", "zero"]).is_err());
        assert!(parse(&["--frames", "0"]).is_err());
        assert!(parse(&["--search-range", "16"]).is_err());
        assert!(parse(&["--search", "hexagon"]).is_err());
        assert!(parse(&["--frames"]).is_err());
    }
}
