//! Experiment-harness library: shared driver code for the `repro`
//! binary and the benches (which run on the in-tree
//! `m4ps_testkit::bench` runner).

pub mod cli;
pub mod experiments;

pub use cli::Options;
pub use experiments::{run_experiment, Experiment, ALL_EXPERIMENTS};
