//! Experiment-harness library: shared driver code for the `repro`
//! binary and the criterion benches.

pub mod cli;
pub mod experiments;

pub use cli::Options;
pub use experiments::{run_experiment, Experiment, ALL_EXPERIMENTS};
