//! Quick wall-clock probe of paper-scale simulation cost.
use m4ps_core::study::{decode_study, encode_study, prepare_streams, StudyConfig, Workload};
use m4ps_memsim::MachineSpec;
use m4ps_vidgen::Resolution;
use std::time::Instant;

fn main() {
    let frames = 9;
    let w = Workload::single(Resolution::PAL, frames);
    let cfg = StudyConfig::paper();
    let t0 = Instant::now();
    let run = encode_study(&MachineSpec::o2(), &w, &cfg).unwrap();
    let enc_t = t0.elapsed();
    println!(
        "encode PAL x{frames}: {:.2}s wall, {:.3e} loads, l1mr {:.4}%, reuse {:.0}, l2mr {:.2}%, dram {:.2}%, bw {:.1}/{:.1} MB/s",
        enc_t.as_secs_f64(),
        run.metrics.counters.loads as f64,
        run.metrics.l1_miss_rate * 100.0,
        run.metrics.l1_line_reuse,
        run.metrics.l2_miss_rate * 100.0,
        run.metrics.dram_time * 100.0,
        run.metrics.l1_l2_mb_s,
        run.metrics.l2_dram_mb_s,
    );
    let t1 = Instant::now();
    let streams = prepare_streams(&w, &cfg).unwrap();
    println!(
        "prepare (null model): {:.2}s, {} bytes",
        t1.elapsed().as_secs_f64(),
        streams.iter().map(|s| s.len()).sum::<usize>()
    );
    let t2 = Instant::now();
    let dec = decode_study(&MachineSpec::o2(), &w, &streams).unwrap();
    println!(
        "decode PAL x{frames}: {:.2}s wall, {:.3e} loads, l1mr {:.4}%, reuse {:.0}, l2mr {:.2}%, dram {:.2}%",
        t2.elapsed().as_secs_f64(),
        dec.metrics.counters.loads as f64,
        dec.metrics.l1_miss_rate * 100.0,
        dec.metrics.l1_line_reuse,
        dec.metrics.l2_miss_rate * 100.0,
        dec.metrics.dram_time * 100.0,
    );
}
