//! Property: the SpeedShop-style per-phase profile *partitions* the
//! run. For every study configuration — any slice count, any worker
//! thread count, single- or multi-object — the sum of the per-phase
//! counter deltas equals the aggregate [`m4ps_memsim::Counters`]
//! bit-for-bit, and the produced bitstream is identical at every
//! thread count (profiling is a pure observer).

use m4ps_core::memsim::MachineSpec;
use m4ps_core::vidgen::Resolution;
use m4ps_core::{decode_study, encode_study, prepare_streams, StudyConfig, Workload};

fn tiny(objects: usize) -> Workload {
    Workload {
        resolution: Resolution::QCIF,
        frames: 3,
        objects,
        layers: 1,
        seed: 11,
    }
}

#[test]
fn encode_profile_partitions_counters_at_any_parallelism() {
    let w = tiny(0);
    for (slices, threads) in [(1, 1), (2, 1), (2, 2), (4, 2), (4, 4)] {
        let cfg = StudyConfig::fast().with_parallel(slices, threads);
        let run = encode_study(&MachineSpec::o2(), &w, &cfg).unwrap();
        assert_eq!(
            run.profile.total(),
            run.metrics.counters,
            "profile does not partition the run at slices={slices} threads={threads}"
        );
        // And the attributed phases are the expected hot ones.
        let me = run
            .profile
            .iter()
            .find(|(p, _)| p.name() == "me.search")
            .unwrap()
            .1;
        assert!(me.entries > 0, "no motion-search spans recorded");
        assert!(me.counters.loads > 0);
    }
}

#[test]
fn encode_profile_partitions_counters_for_multi_object_runs() {
    let run = encode_study(&MachineSpec::onyx_vtx(), &tiny(3), &StudyConfig::fast()).unwrap();
    assert_eq!(run.profile.total(), run.metrics.counters);
    let shape = run
        .profile
        .iter()
        .find(|(p, _)| p.name() == "shape")
        .unwrap()
        .1;
    assert!(shape.entries > 0, "shaped run recorded no shape spans");
}

#[test]
fn decode_profile_partitions_counters() {
    let w = tiny(0);
    let cfg = StudyConfig::fast().with_parallel(2, 2);
    let streams = prepare_streams(&w, &cfg).unwrap();
    let run = decode_study(&MachineSpec::o2(), &w, &streams).unwrap();
    assert_eq!(run.profile.total(), run.metrics.counters);
    let dec = run
        .profile
        .iter()
        .find(|(p, _)| p.name() == "vop.decode")
        .unwrap()
        .1;
    assert_eq!(dec.entries, run.session.vops);
}

#[test]
fn bitstreams_are_identical_at_every_thread_count() {
    let w = tiny(0);
    let reference = prepare_streams(&w, &StudyConfig::fast().with_parallel(4, 1)).unwrap();
    for threads in [2, 4] {
        let streams = prepare_streams(&w, &StudyConfig::fast().with_parallel(4, threads)).unwrap();
        assert_eq!(
            streams, reference,
            "threads={threads} changed the bitstream"
        );
    }
}
