//! Tolerance-band regression tests for the headline EXPERIMENTS.md
//! metrics, at a reduced frame count so they run in test time.
//!
//! The bands are deliberately wide: they pin the *architectural story*
//! (encode lives in L1; decode's DRAM stall collapses when the working
//! set fits in L2), not exact numbers, so content-level changes to the
//! scene generator do not break them. The paper-scale numbers (30
//! frames) live in EXPERIMENTS.md; at 6 frames the cold-start misses
//! are still visible, which is why each band sits below its 30-frame
//! counterpart (0.07 % miss, 1522x reuse, 9.4 % -> 0.5 % DRAM time).

use m4ps_core::{decode_study, encode_study, prepare_streams, StudyConfig, Workload};
use m4ps_memsim::MachineSpec;
use m4ps_vidgen::Resolution;

/// Paper workload at a test-friendly frame count. PAL keeps the frame
/// working set (~0.6 MB/frame) above the O2's 1 MB L2 and far below the
/// Onyx2's 8 MB, which is what the DRAM-stall contrast needs.
fn small_paper_workload() -> Workload {
    Workload::single(Resolution::PAL, 6)
}

#[test]
fn encode_stays_in_l1() {
    let run = encode_study(
        &MachineSpec::o2(),
        &small_paper_workload(),
        &StudyConfig::paper(),
    )
    .unwrap();
    let m = &run.metrics;
    // The paper's central claim: "only 0.1 % [of references] go beyond
    // L1" and "each L1 cache line is reused about 1000 times".
    assert!(
        m.l1_miss_rate <= 0.001,
        "encode L1 miss rate {:.4}% exceeds the paper's 0.1% band",
        m.l1_miss_rate * 100.0
    );
    assert!(
        m.l1_line_reuse >= 1000.0,
        "encode L1 line reuse {:.0}x fell below the paper's ~1000x",
        m.l1_line_reuse
    );
}

#[test]
fn decode_dram_stall_collapses_with_l2_size() {
    let w = small_paper_workload();
    let streams = prepare_streams(&w, &StudyConfig::paper()).unwrap();
    let small_l2 = decode_study(&MachineSpec::o2(), &w, &streams).unwrap();
    let big_l2 = decode_study(&MachineSpec::onyx2(), &w, &streams).unwrap();
    assert_eq!(small_l2.machine.l2.size_bytes, 1024 * 1024);
    assert_eq!(big_l2.machine.l2.size_bytes, 8 * 1024 * 1024);
    let stall_1mb = small_l2.metrics.dram_time;
    let stall_8mb = big_l2.metrics.dram_time;
    // Table 5's story: the decoder's working set misses a 1 MB L2 and
    // fits an 8 MB one, so the DRAM stall share collapses (9.4 % ->
    // 0.5 % at 30 frames; cold misses keep the 8 MB share higher here).
    assert!(
        stall_1mb >= 0.04,
        "1 MB L2 decode DRAM stall {stall_1mb:.4} lost its memory-bound character"
    );
    assert!(
        stall_8mb <= 0.03,
        "8 MB L2 decode DRAM stall {stall_8mb:.4} should be mostly hidden"
    );
    assert!(
        stall_1mb >= 2.5 * stall_8mb,
        "DRAM stall no longer collapses with L2 size: {stall_1mb:.4} vs {stall_8mb:.4}"
    );
    // Identical architectural work on both machines, as in Table 5.
    assert_eq!(
        small_l2.metrics.counters.loads,
        big_l2.metrics.counters.loads
    );
}
