//! Study-level decoder robustness: damaged elementary streams driven
//! through the full [`decode_study`] pipeline (scene decoder, memory
//! hierarchy, profiler attach) must surface as `Err` or a degraded
//! run — never as a panic that tears down the whole study.

use std::panic::{catch_unwind, AssertUnwindSafe};

use m4ps_core::memsim::MachineSpec;
use m4ps_core::vidgen::Resolution;
use m4ps_core::{decode_study, prepare_streams, StudyConfig, Workload};
use m4ps_testkit::Rng;

fn workload() -> Workload {
    Workload {
        resolution: Resolution::QCIF,
        frames: 3,
        objects: 0,
        layers: 1,
        seed: 7,
    }
}

#[test]
fn truncated_streams_fail_the_study_cleanly() {
    let w = workload();
    let streams = prepare_streams(&w, &StudyConfig::fast()).unwrap();
    let mut rng = Rng::new(0x7241c);
    let mut cuts: Vec<usize> = (0..12)
        .map(|_| rng.gen_range(0..streams[0].len()))
        .collect();
    cuts.extend([0, 1]);
    for cut in cuts {
        let damaged: Vec<Vec<u8>> = streams
            .iter()
            .map(|s| s[..cut.min(s.len())].to_vec())
            .collect();
        let got = catch_unwind(AssertUnwindSafe(|| {
            decode_study(&MachineSpec::o2(), &w, &damaged).map(|_| ())
        }));
        assert!(
            got.is_ok(),
            "decode_study panicked on streams truncated at byte {cut}"
        );
    }
}

#[test]
fn bit_flipped_streams_fail_the_study_cleanly() {
    let w = workload();
    let streams = prepare_streams(&w, &StudyConfig::fast()).unwrap();
    let mut rng = Rng::new(0xf11b);
    for case in 0..20u32 {
        let mut damaged = streams.clone();
        let s = rng.gen_range(0..damaged.len());
        let byte = rng.gen_range(0..damaged[s].len());
        let bit = rng.gen_range(0u32..8);
        damaged[s][byte] ^= 1 << bit;
        let got = catch_unwind(AssertUnwindSafe(|| {
            decode_study(&MachineSpec::o2(), &w, &damaged).map(|_| ())
        }));
        assert!(
            got.is_ok(),
            "decode_study panicked on corpus case {case} (stream {s}, byte {byte}, bit {bit})"
        );
    }
}
