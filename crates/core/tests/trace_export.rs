//! Golden test: a traced 2-slice/2-thread encode emits Chrome
//! trace-event JSON that round-trips through `testkit::json`, with
//! properly nested spans and per-thread metadata.

use m4ps_core::memsim::MachineSpec;
use m4ps_core::vidgen::Resolution;
use m4ps_core::{encode_study, StudyConfig, Workload};
use m4ps_testkit::json::Json;

#[test]
fn traced_encode_emits_valid_chrome_trace() {
    let path = std::env::temp_dir().join(format!("m4ps_trace_export_{}.json", std::process::id()));
    let path_str = path.to_str().unwrap().to_string();
    let w = Workload {
        resolution: Resolution::QCIF,
        frames: 3,
        objects: 0,
        layers: 1,
        seed: 7,
    };
    let cfg = StudyConfig::fast()
        .with_parallel(2, 2)
        .with_trace(&path_str);
    encode_study(&MachineSpec::o2(), &w, &cfg).unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let doc = Json::parse(&text).expect("trace file is valid JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut spans: Vec<(String, u32, f64, f64)> = Vec::new(); // name, tid, ts, dur
    let mut named_tids = Vec::new();
    let mut process_labels = 0;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph field");
        match ph {
            "X" => {
                let name = ev.get("name").and_then(Json::as_str).unwrap().to_string();
                let tid = ev.get("tid").and_then(Json::as_f64).unwrap() as u32;
                let ts = ev.get("ts").and_then(Json::as_f64).unwrap();
                let dur = ev.get("dur").and_then(Json::as_f64).unwrap();
                assert_eq!(ev.get("pid").and_then(Json::as_f64), Some(1.0));
                assert_eq!(ev.get("cat").and_then(Json::as_str), Some("m4ps"));
                spans.push((name, tid, ts, dur));
            }
            "M" => match ev.get("name").and_then(Json::as_str) {
                Some("thread_name") => {
                    let tid = ev.get("tid").and_then(Json::as_f64).unwrap() as u32;
                    let label = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        .unwrap();
                    assert_eq!(label, format!("m4ps-{tid}"));
                    named_tids.push(tid);
                }
                Some("process_labels") => {
                    let labels = ev
                        .get("args")
                        .and_then(|a| a.get("labels"))
                        .and_then(Json::as_str)
                        .unwrap();
                    let tier = m4ps_core::dsp::active_tier();
                    assert_eq!(labels, format!("kernels={}", tier.name()));
                    process_labels += 1;
                }
                other => panic!("unexpected metadata event {other:?}"),
            },
            other => panic!("unexpected event phase {other:?}"),
        }
    }

    // The kernel-tier process label is recorded exactly once.
    assert_eq!(process_labels, 1, "expected one process_labels record");

    // Every span's thread has a name record.
    for (name, tid, _, _) in &spans {
        assert!(named_tids.contains(tid), "span {name} on unnamed tid {tid}");
    }

    // The root span is a single `run` covering every other span on its
    // thread (coarse spans nest strictly).
    let runs: Vec<_> = spans.iter().filter(|(n, ..)| n == "run").collect();
    assert_eq!(runs.len(), 1, "exactly one root run span");
    let (_, run_tid, run_ts, run_dur) = runs[0];
    for (name, tid, ts, dur) in &spans {
        if tid == run_tid {
            assert!(
                *ts >= *run_ts && ts + dur <= run_ts + run_dur + 1e-6,
                "span {name} escapes the run span"
            );
        }
    }

    // Per-VOP spans nest inside the run, and slice spans exist (one per
    // slice per VOP; a 2-slice encode of 3 frames gives at least 6).
    let vops = spans.iter().filter(|(n, ..)| n == "vop.encode").count();
    assert!(vops >= 3, "expected >=3 vop.encode spans, got {vops}");
    let slices = spans.iter().filter(|(n, ..)| n == "slice").count();
    assert!(slices >= 6, "expected >=6 slice spans, got {slices}");
}
