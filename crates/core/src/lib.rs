//! The MPEG-4 memory-performance characterization study — a full
//! reproduction of *"An MPEG-4 Performance Study for non-SIMD, General
//! Purpose Architectures"* (McKee, Fang, Valero — ISPASS 2003).
//!
//! The paper runs the MoMuSys reference MPEG-4 codec on three SGI
//! machines and reads the hardware counters; this crate runs our
//! from-scratch codec ([`m4ps_codec`]) over the simulated memory
//! hierarchies of the same three machines ([`m4ps_memsim`]) and derives
//! the same metrics. Every table and figure of the paper's evaluation
//! has a generator here:
//!
//! - [`study`] — instrumented encode/decode runs (Tables 2–7, Figures
//!   2–4),
//! - [`burst`] — function-level `VopCode` / `DecodeVop…` windows
//!   (Table 8),
//! - [`fallacy`] — the five "fallacy" verdicts of §3.2,
//! - [`baseline`] — a *true* streaming kernel through the same
//!   hierarchy, for contrast ("streaming MPEG-4 does not stream"),
//! - [`memwall`] — the paper's future-work processor/memory-ratio sweep
//!   ("at what ratio does MPEG-4 finally become memory limited"),
//! - [`simd`] — the paper's future-work SIMD projection (fetch-rate vs
//!   L1-bandwidth limits),
//! - [`report`] — paper-style table formatting.
//!
//! # Examples
//!
//! ```
//! use m4ps_core::study::{encode_study, Workload};
//! use m4ps_core::StudyConfig;
//! use m4ps_memsim::MachineSpec;
//! use m4ps_vidgen::Resolution;
//!
//! let workload = Workload {
//!     resolution: Resolution::QCIF,
//!     frames: 2,
//!     objects: 0,
//!     layers: 1,
//!     seed: 1,
//! };
//! let run = encode_study(&MachineSpec::o2(), &workload, &StudyConfig::fast()).unwrap();
//! assert!(run.metrics.l1_miss_rate < 0.05);
//! ```

pub mod baseline;
pub mod burst;
pub mod fallacy;
pub mod memwall;
pub mod report;
pub mod simd;
pub mod study;

pub use study::{
    decode_study, decode_study_with, encode_study, prepare_streams, RunResult, StudyConfig,
    Workload, DECODE_THREADS_ENV,
};

// Re-exports so downstream binaries need only this crate.
pub use m4ps_codec as codec;
pub use m4ps_dsp as dsp;
pub use m4ps_memsim as memsim;
pub use m4ps_vidgen as vidgen;
