//! SIMD/vector projection — the second future-work study.
//!
//! §4 of the paper: *"our experience has shown that even in the presence
//! of these ISA extensions, the performance bottleneck is still the
//! fetch/issue rate. Only in the presence of longer vector SIMD
//! instructions does L1 bandwidth surpass fetch rate as a limiting
//! performance factor"* (citing Corbal, Espasa & Valero).
//!
//! We project measured scalar counters onto SIMD execution: vectorizable
//! references and operations collapse by the SIMD width (fewer, wider
//! instructions), while the *byte volume* between the ALUs and L1 only
//! grows (early exits are forfeited, overlapping windows refetched).
//! Comparing the issue-limited cycle count against the
//! L1-port-bandwidth-limited cycle count shows which resource binds.

use m4ps_memsim::{Counters, MachineSpec};

/// An ISA scenario to project onto.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimdScenario {
    /// Display name.
    pub name: &'static str,
    /// Lanes per instruction (1 = scalar).
    pub width: u32,
    /// Fraction of the workload's references/operations that vectorize
    /// (media kernels vectorize well; control code does not).
    pub vectorizable: f64,
    /// Multiplier on the ALU↔L1 byte volume. Vector execution moves
    /// *more* raw data than scalar: SAD early termination is forfeited
    /// (the whole candidate block is always fetched) and the
    /// three-dimensional vector accesses of Corbal et al. refetch
    /// overlapping search-window data instead of reusing registers.
    pub traffic_expansion: f64,
}

impl SimdScenario {
    /// Plain scalar execution (the paper's measured configuration).
    pub fn scalar() -> Self {
        SimdScenario {
            name: "scalar (non-SIMD)",
            width: 1,
            vectorizable: 0.0,
            traffic_expansion: 1.0,
        }
    }

    /// Subword SIMD in 64-bit registers (MMX/VIS class).
    pub fn subword_mmx() -> Self {
        SimdScenario {
            name: "subword SIMD x8 (MMX class)",
            width: 8,
            vectorizable: 0.7,
            traffic_expansion: 1.5,
        }
    }

    /// Long-vector SIMD (the Corbal/Espasa/Valero vector proposal).
    pub fn long_vector() -> Self {
        SimdScenario {
            name: "long vector x64",
            width: 64,
            vectorizable: 0.95,
            traffic_expansion: 4.0,
        }
    }
}

/// Which resource limits execution in a projection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limiter {
    /// Instruction fetch/issue rate (the paper's finding for scalar and
    /// subword SIMD).
    FetchIssue,
    /// L1 cache port bandwidth (the long-vector regime).
    L1Bandwidth,
    /// Main-memory stalls.
    Memory,
}

/// Cycle accounting of one projection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimdProjection {
    /// The scenario projected.
    pub scenario: SimdScenario,
    /// Cycles if limited by issue rate only.
    pub issue_cycles: f64,
    /// Cycles if limited by L1 port bandwidth only.
    pub l1_bandwidth_cycles: f64,
    /// Visible memory-stall cycles (unchanged by vectorization).
    pub memory_stall_cycles: f64,
    /// Which resource binds.
    pub limiter: Limiter,
}

/// Bytes one L1 port moves per cycle (64-bit ports on these machines).
const PORT_BYTES: f64 = 8.0;

/// Projects measured scalar `counters` onto `scenario` with `l1_ports`
/// cache ports.
pub fn project(
    counters: &Counters,
    machine: &MachineSpec,
    scenario: SimdScenario,
    l1_ports: f64,
) -> SimdProjection {
    let shrink = |n: u64| {
        let v = n as f64;
        v * (1.0 - scenario.vectorizable) + v * scenario.vectorizable / f64::from(scenario.width)
    };
    let instructions =
        shrink(counters.memory_refs()) + shrink(counters.compute_ops) + counters.prefetches as f64;
    let issue_cycles = instructions / machine.timing.ipc_base;
    // Byte volume between ALUs and L1 never shrinks with vector width —
    // it *grows* (lost early exits, refetched windows).
    let l1_bandwidth_cycles =
        counters.bytes_accessed as f64 * scenario.traffic_expansion / (PORT_BYTES * l1_ports);
    let b = machine.timing.breakdown(counters);
    let memory_stall_cycles = b.l1_stall + b.dram_stall;

    let limiter = if memory_stall_cycles >= issue_cycles.max(l1_bandwidth_cycles) {
        Limiter::Memory
    } else if l1_bandwidth_cycles > issue_cycles {
        Limiter::L1Bandwidth
    } else {
        Limiter::FetchIssue
    };
    SimdProjection {
        scenario,
        issue_cycles,
        l1_bandwidth_cycles,
        memory_stall_cycles,
        limiter,
    }
}

/// Projects the three canonical scenarios with a dual-ported L1.
pub fn project_all(counters: &Counters, machine: &MachineSpec) -> Vec<SimdProjection> {
    [
        SimdScenario::scalar(),
        SimdScenario::subword_mmx(),
        SimdScenario::long_vector(),
    ]
    .into_iter()
    .map(|s| project(counters, machine, s, 2.0))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{encode_study, StudyConfig, Workload};
    use m4ps_vidgen::Resolution;

    fn measured() -> (Counters, MachineSpec) {
        let w = Workload {
            resolution: Resolution::QCIF,
            frames: 3,
            objects: 0,
            layers: 1,
            seed: 8,
        };
        let run = encode_study(&MachineSpec::o2(), &w, &StudyConfig::fast()).unwrap();
        (run.metrics.counters, run.machine)
    }

    #[test]
    fn scalar_and_mmx_are_issue_limited_vector_is_l1_limited() {
        // The paper's conclusion, reproduced.
        let (c, m) = measured();
        let p = project_all(&c, &m);
        assert_eq!(p[0].limiter, Limiter::FetchIssue, "{:?}", p[0]);
        assert_eq!(p[1].limiter, Limiter::FetchIssue, "{:?}", p[1]);
        assert_eq!(p[2].limiter, Limiter::L1Bandwidth, "{:?}", p[2]);
    }

    #[test]
    fn vectorization_shrinks_issue_but_grows_bandwidth_demand() {
        let (c, m) = measured();
        let p = project_all(&c, &m);
        assert!(p[1].issue_cycles < p[0].issue_cycles);
        assert!(p[2].issue_cycles < p[1].issue_cycles);
        assert!(p[1].l1_bandwidth_cycles >= p[0].l1_bandwidth_cycles);
        assert!(p[2].l1_bandwidth_cycles > p[1].l1_bandwidth_cycles);
    }

    #[test]
    fn memory_stalls_are_invariant() {
        let (c, m) = measured();
        let p = project_all(&c, &m);
        assert!(p
            .iter()
            .all(|x| x.memory_stall_cycles == p[0].memory_stall_cycles));
        // And small relative to scalar issue (the whole point of the paper).
        assert!(p[0].memory_stall_cycles < 0.2 * p[0].issue_cycles);
    }
}
