//! Paper-style table formatting.
//!
//! Renders rows with the same metric names and units as Tables 2–8 of
//! the paper, so the reproduction output can be put side by side with
//! the original.

use m4ps_memsim::{MemoryMetrics, TimingModel};
use m4ps_obs::PhaseProfile;

/// The row labels of the paper's tables, in order.
pub const METRIC_ROWS: [&str; 9] = [
    "L1C miss rate",
    "L1C miss time",
    "L1C line reuse",
    "L2C miss rate",
    "L2C line reuse",
    "DRAM time",
    "L1-L2 b/w (MB/s)",
    "L2-DRAM b/w (MB/s)",
    "prefetch L1C miss",
];

/// Formats one metric row value the way the paper prints it.
pub fn format_cell(metrics: &MemoryMetrics, row: usize) -> String {
    match row {
        0 => format!("{:.2}%", metrics.l1_miss_rate * 100.0),
        1 => format!("{:.2}%", metrics.l1_miss_time * 100.0),
        2 => format!("{:.1}", metrics.l1_line_reuse),
        3 => format!("{:.2}%", metrics.l2_miss_rate * 100.0),
        4 => format!("{:.1}", metrics.l2_line_reuse),
        5 => format!("{:.1}%", metrics.dram_time * 100.0),
        6 => format!("{:.1}", metrics.l1_l2_mb_s),
        7 => format!("{:.1}", metrics.l2_dram_mb_s),
        8 => match metrics.prefetch_l1_miss {
            Some(v) => format!("{:.1}%", v * 100.0),
            None => "n/a".to_string(),
        },
        _ => panic!("row {row} out of range"),
    }
}

/// Renders a full paper-style table: one column per run.
pub fn render_table(title: &str, columns: &[(&str, &MemoryMetrics)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n\n"));
    let label_width = METRIC_ROWS.iter().map(|r| r.len()).max().unwrap_or(0) + 2;
    // Header.
    out.push_str(&format!("{:label_width$}", "metrics"));
    for (name, _) in columns {
        out.push_str(&format!("{name:>14}"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(label_width + 14 * columns.len()));
    out.push('\n');
    for (row, label) in METRIC_ROWS.iter().enumerate() {
        out.push_str(&format!("{label:label_width$}"));
        for (_, m) in columns {
            out.push_str(&format!("{:>14}", format_cell(m, row)));
        }
        out.push('\n');
    }
    out
}

/// Renders the SpeedShop-style per-phase attribution table for one run:
/// span entries, memory-reference share, miss rates, and the share of
/// modelled stall cycles, per [`m4ps_obs::Phase`]. Phases that never
/// ran are omitted; the totals row is the exact aggregate (the profile
/// partitions the run's counters bit-for-bit).
pub fn render_phase_table(title: &str, profile: &PhaseProfile, timing: &TimingModel) -> String {
    let stall = |c: &m4ps_memsim::Counters| {
        let b = timing.breakdown(c);
        b.l1_stall + b.dram_stall + b.tlb_stall
    };
    let total = profile.total();
    let total_refs = total.loads + total.stores;
    let total_stall = stall(&total);
    let mut out = String::new();
    out.push_str(&format!("## {title}\n\n"));
    let header = format!(
        "{:<16}{:>12}{:>16}{:>9}{:>12}{:>12}{:>9}\n",
        "phase", "entries", "mem refs", "refs %", "L1 miss %", "L2 miss %", "stall %"
    );
    let rule = "-".repeat(header.len() - 1);
    out.push_str(&header);
    out.push_str(&rule);
    out.push('\n');
    let pct = |num: f64, den: f64| {
        if den > 0.0 {
            format!("{:.2}%", 100.0 * num / den)
        } else {
            "n/a".to_string()
        }
    };
    for (phase, stats) in profile.iter() {
        if stats.entries == 0 {
            continue;
        }
        let c = &stats.counters;
        let refs = c.loads + c.stores;
        out.push_str(&format!(
            "{:<16}{:>12}{:>16}{:>9}{:>12}{:>12}{:>9}\n",
            phase.name(),
            stats.entries,
            refs,
            pct(refs as f64, total_refs as f64),
            pct(c.l1_misses as f64, refs as f64),
            pct(c.l2_misses as f64, c.l1_misses as f64),
            pct(stall(c), total_stall),
        ));
    }
    out.push_str(&rule);
    out.push('\n');
    out.push_str(&format!(
        "{:<16}{:>12}{:>16}{:>9}{:>12}{:>12}{:>9}\n",
        "total",
        profile.iter().map(|(_, s)| s.entries).sum::<u64>(),
        total_refs,
        pct(total_refs as f64, total_refs as f64),
        pct(total.l1_misses as f64, total_refs as f64),
        pct(total.l2_misses as f64, total.l1_misses as f64),
        pct(total_stall, total_stall),
    ));
    out
}

/// Renders a simple two-column series (for the figures).
pub fn render_series(
    title: &str,
    x_label: &str,
    rows: &[(String, Vec<(String, String)>)],
) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n\n"));
    for (x, values) in rows {
        out.push_str(&format!("{x_label} = {x}: "));
        let cells: Vec<String> = values.iter().map(|(k, v)| format!("{k}={v}")).collect();
        out.push_str(&cells.join(", "));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use m4ps_memsim::{Counters, MachineSpec};

    fn metrics() -> MemoryMetrics {
        let c = Counters {
            loads: 1_000_000,
            stores: 200_000,
            prefetches: 100,
            prefetch_l1_hits: 55,
            l1_misses: 1_200,
            l1_writebacks: 300,
            l2_misses: 240,
            l2_writebacks: 60,
            tlb_misses: 5,
            compute_ops: 2_000_000,
            bytes_accessed: 1_200_000,
        };
        MemoryMetrics::derive(&c, &MachineSpec::o2())
    }

    #[test]
    fn cells_have_paper_units() {
        let m = metrics();
        assert!(format_cell(&m, 0).ends_with('%'));
        assert!(format_cell(&m, 2).parse::<f64>().is_ok());
        assert_eq!(format_cell(&m, 8), "45.0%");
        let r10k = MemoryMetrics::derive(&m.counters, &MachineSpec::onyx_vtx());
        assert_eq!(format_cell(&r10k, 8), "n/a");
    }

    #[test]
    fn table_contains_all_rows_and_columns() {
        let m = metrics();
        let t = render_table("Video Encoding test", &[("R12K 1MB", &m), ("R12K 8MB", &m)]);
        for row in METRIC_ROWS {
            assert!(t.contains(row), "missing row {row}");
        }
        assert!(t.contains("R12K 1MB"));
        assert!(t.contains("R12K 8MB"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_row_panics() {
        format_cell(&metrics(), 9);
    }

    #[test]
    fn phase_table_lists_active_phases_and_exact_total() {
        use m4ps_obs::{Phase, Profiler};
        let profiler = Profiler::new(false);
        {
            let _g = profiler.attach();
            let zero = Counters::new();
            let mid = Counters {
                loads: 1_000,
                stores: 100,
                l1_misses: 50,
                l2_misses: 10,
                compute_ops: 5_000,
                bytes_accessed: 8_800,
                ..zero
            };
            let end = Counters {
                loads: 3_000,
                stores: 300,
                l1_misses: 80,
                l2_misses: 12,
                compute_ops: 9_000,
                bytes_accessed: 26_400,
                ..zero
            };
            m4ps_obs::enter(Phase::Run, zero);
            m4ps_obs::enter(Phase::MeSearch, zero);
            m4ps_obs::exit(Phase::MeSearch, mid);
            m4ps_obs::exit(Phase::Run, end);
        }
        let profile = profiler.profile();
        let t = render_phase_table("Per-phase", &profile, &TimingModel::mips_r12k());
        assert!(t.contains("me.search"));
        assert!(t.contains("run"));
        assert!(t.contains("total"));
        // Phases that never ran are omitted.
        assert!(!t.contains("vop.decode"));
        // The totals row carries the exact aggregate reference count.
        assert!(t.contains("3300"));
    }

    #[test]
    fn series_lists_every_point() {
        let rows = vec![
            (
                "352x288".to_string(),
                vec![("L1C".to_string(), "0.31%".to_string())],
            ),
            (
                "720x576".to_string(),
                vec![("L1C".to_string(), "0.29%".to_string())],
            ),
        ];
        let s = render_series("Figure 2", "size", &rows);
        assert!(s.contains("size = 352x288"));
        assert!(s.contains("L1C=0.29%"));
    }
}
