//! A *true* memory-streaming baseline, for contrast.
//!
//! The paper's central claim is that "the data references in 'streaming
//! MPEG-4' do not really stream". To make that quantitative we run a
//! genuine streaming kernel — a scaled copy over a buffer far larger
//! than L2, touched once per pass — through the *same* hierarchy, and
//! compare line reuse, miss rates, and bus bandwidth against the codec.

use m4ps_memsim::{AddressSpace, Hierarchy, MachineSpec, MemModel, MemoryMetrics, SimBuf};

/// Parameters of the streaming baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamingKernel {
    /// Buffer size in bytes (should exceed L2 several times over).
    pub bytes: usize,
    /// Number of sequential passes.
    pub passes: usize,
    /// Issue one software prefetch per cache line, as a streaming loop
    /// tuned by the compiler would.
    pub prefetch: bool,
}

impl Default for StreamingKernel {
    fn default() -> Self {
        StreamingKernel {
            bytes: 32 * 1024 * 1024,
            passes: 2,
            prefetch: false,
        }
    }
}

/// Runs `dst[i] = src[i] * 2 + 1` over the configured buffers and
/// derives the paper metrics.
pub fn run_streaming(machine: &MachineSpec, kernel: &StreamingKernel) -> MemoryMetrics {
    let mut space = AddressSpace::new();
    let mut mem = if kernel.prefetch {
        Hierarchy::new(machine.clone())
    } else {
        Hierarchy::without_prefetch(machine.clone())
    };
    let src = SimBuf::<u8>::zeroed(&mut space, kernel.bytes);
    let dst = SimBuf::<u8>::zeroed(&mut space, kernel.bytes);
    let line = machine.l1.line_bytes as usize;
    for _ in 0..kernel.passes {
        let mut off = 0usize;
        while off < kernel.bytes {
            let chunk = line.min(kernel.bytes - off);
            if kernel.prefetch && off + line < kernel.bytes {
                mem.prefetch(src.addr_of(off + line));
            }
            src.touch_read(&mut mem, off, chunk);
            dst.touch_write(&mut mem, off, chunk);
            // One multiply-add per byte.
            mem.add_ops(chunk as u64);
            off += chunk;
        }
    }
    MemoryMetrics::derive(&mem.snapshot(), machine)
}

/// The paper's bandwidth argument needs the *opposite* extreme too: a
/// resident kernel that fits in L1 and reuses it heavily.
pub fn run_resident(machine: &MachineSpec, bytes: usize, passes: usize) -> MemoryMetrics {
    let mut space = AddressSpace::new();
    let mut mem = Hierarchy::without_prefetch(machine.clone());
    let buf = SimBuf::<u8>::zeroed(&mut space, bytes);
    let line = machine.l1.line_bytes as usize;
    for _ in 0..passes {
        let mut off = 0usize;
        while off < bytes {
            let chunk = line.min(bytes - off);
            buf.touch_read(&mut mem, off, chunk);
            mem.add_ops(chunk as u64 * 2);
            off += chunk;
        }
    }
    MemoryMetrics::derive(&mem.snapshot(), machine)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_stream() -> StreamingKernel {
        StreamingKernel {
            bytes: 4 * 1024 * 1024, // 4× the O2's 1 MB L2
            passes: 2,
            prefetch: false,
        }
    }

    #[test]
    fn streaming_kernel_has_no_line_reuse() {
        let m = MachineSpec::o2();
        let metrics = run_streaming(&m, &small_stream());
        // Each 32 B line is touched by 32 byte-references once: reuse ≈ 31,
        // far below the codec's hundreds.
        assert!(
            metrics.l1_line_reuse < 40.0,
            "streaming reuse {}",
            metrics.l1_line_reuse
        );
        // And every line misses: miss rate ≈ 1/32 per reference.
        assert!(metrics.l1_miss_rate > 0.02);
        // For a sequential stream the L2 miss rate is pinned at the
        // line-size ratio: one 128 B L2 fill serves four 32 B L1 fills,
        // so exactly 25% of L1 misses reach DRAM — and L2 line reuse is
        // the residual 3, with no pass-to-pass reuse at all (buffer ≫ L2).
        assert!(
            (0.2..=0.3).contains(&metrics.l2_miss_rate),
            "l2 miss rate {}",
            metrics.l2_miss_rate
        );
        assert!(
            metrics.l2_line_reuse < 4.0,
            "l2 line reuse {}",
            metrics.l2_line_reuse
        );
    }

    #[test]
    fn streaming_kernel_is_bandwidth_hungry() {
        let m = MachineSpec::o2();
        let metrics = run_streaming(&m, &small_stream());
        // A real streaming kernel consumes a large share of the bus.
        assert!(
            metrics.bus_utilization(&m) > 0.15,
            "utilization {}",
            metrics.bus_utilization(&m)
        );
        assert!(metrics.dram_time > 0.15, "dram time {}", metrics.dram_time);
    }

    #[test]
    fn prefetching_actually_helps_a_true_streaming_kernel() {
        let m = MachineSpec::o2();
        let without = run_streaming(&m, &small_stream());
        let with = run_streaming(
            &m,
            &StreamingKernel {
                prefetch: true,
                ..small_stream()
            },
        );
        // Prefetches are useful here (do not hit L1): high miss ratio.
        assert_eq!(without.counters.prefetches, 0);
        assert!(with.counters.prefetches > 0);
        let pf_miss = with.prefetch_l1_miss.unwrap();
        assert!(pf_miss > 0.9, "prefetch L1 miss ratio {pf_miss}");
        // And demand misses drop because lines arrive early.
        assert!(with.counters.l1_misses < without.counters.l1_misses);
    }

    #[test]
    fn resident_kernel_behaves_like_the_codec() {
        let m = MachineSpec::o2();
        let metrics = run_resident(&m, 16 * 1024, 100);
        assert!(metrics.l1_miss_rate < 0.001);
        assert!(metrics.l1_line_reuse > 1000.0);
        assert!(metrics.bus_utilization(&m) < 0.01);
    }
}
