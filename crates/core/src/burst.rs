//! Burstiness analysis (Table 8 of the paper).
//!
//! The paper wraps `VopCode()` (encoder) and
//! `DecodeVopCombMotionShapeTexture()` (decoder) in performance-counter
//! reads to test whether the key coding phases are burstier than the
//! rest of the program. We accumulate the same windows in the coders and
//! compare their derived metrics against the whole-program numbers.

use crate::study::{RunResult, StudyConfig, Workload};
use m4ps_codec::CodecError;
use m4ps_memsim::{MachineSpec, MemoryMetrics};

/// Window-vs-whole-program comparison for one run.
#[derive(Debug, Clone)]
pub struct BurstReport {
    /// Name of the instrumented function (paper naming).
    pub function: &'static str,
    /// Metrics of the instrumented window.
    pub window: MemoryMetrics,
    /// Metrics of the whole program.
    pub whole: MemoryMetrics,
    /// Fraction of the program's memory references inside the window.
    pub window_ref_share: f64,
}

impl BurstReport {
    fn build(function: &'static str, run: &RunResult, machine: &MachineSpec) -> BurstReport {
        let window = MemoryMetrics::derive(&run.vop_window, machine);
        let whole = run.metrics.clone();
        let share = if whole.counters.memory_refs() > 0 {
            run.vop_window.memory_refs() as f64 / whole.counters.memory_refs() as f64
        } else {
            0.0
        };
        BurstReport {
            function,
            window,
            whole,
            window_ref_share: share,
        }
    }
}

/// Runs the paper's burstiness experiment: encode and decode on one
/// machine (the paper uses the R12K/8MB Onyx2), returning the
/// `VopEncode` and `VopDecode` reports.
///
/// # Errors
///
/// Propagates codec errors.
pub fn burstiness(
    machine: &MachineSpec,
    workload: &Workload,
    config: &StudyConfig,
) -> Result<(BurstReport, BurstReport), CodecError> {
    let enc = crate::study::encode_study(machine, workload, config)?;
    let streams = crate::study::prepare_streams(workload, config)?;
    let dec = crate::study::decode_study(machine, workload, &streams)?;
    Ok((
        BurstReport::build("VopEncode", &enc, machine),
        BurstReport::build("VopDecode", &dec, machine),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use m4ps_vidgen::Resolution;

    #[test]
    fn windows_dominate_but_do_not_exhaust_the_program() {
        let w = Workload {
            resolution: Resolution::QCIF,
            frames: 3,
            objects: 0,
            layers: 1,
            seed: 1,
        };
        let (enc, dec) = burstiness(&MachineSpec::onyx2(), &w, &StudyConfig::fast()).unwrap();
        for rep in [&enc, &dec] {
            assert!(
                rep.window_ref_share > 0.5 && rep.window_ref_share < 1.0,
                "{}: share {}",
                rep.function,
                rep.window_ref_share
            );
            // Window metrics must be finite and self-consistent.
            assert!(rep.window.l1_miss_rate >= 0.0);
            assert!(rep.window.counters.loads <= rep.whole.counters.loads);
        }
        assert_eq!(enc.function, "VopEncode");
        assert_eq!(dec.function, "VopDecode");
    }

    #[test]
    fn window_memory_behaviour_is_consistent_with_whole_program() {
        // The paper's finding: the instrumented functions are NOT
        // burstier than the rest — L1 behaviour stays cache-friendly.
        let w = Workload {
            resolution: Resolution::QCIF,
            frames: 4,
            objects: 0,
            layers: 1,
            seed: 2,
        };
        let (enc, dec) = burstiness(&MachineSpec::onyx2(), &w, &StudyConfig::fast()).unwrap();
        for rep in [&enc, &dec] {
            assert!(
                rep.window.l1_miss_rate < 0.05,
                "{} window L1 miss rate {}",
                rep.function,
                rep.window.l1_miss_rate
            );
        }
    }
}
