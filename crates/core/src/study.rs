//! Instrumented encode/decode runs: the machinery behind Tables 2–7 and
//! Figures 2–4.

use m4ps_codec::{
    CodecError, EncoderConfig, FrameView, SceneDecoder, SceneEncoder, SearchStrategy, SessionStats,
};
use m4ps_memsim::{
    AddressSpace, Counters, Hierarchy, MachineSpec, MemModel, MemoryMetrics, ParallelModel,
    RegionMisses,
};
use m4ps_obs::{Phase, PhaseProfile, Profiler};
use m4ps_vidgen::{Resolution, Scene, SceneSpec};

/// Environment override for Chrome-trace export: when set, every study
/// run writes its trace-event JSON to this path (a
/// [`StudyConfig::with_trace`] path takes precedence for encodes).
pub const TRACE_ENV: &str = "M4PS_TRACE";

/// Environment override for flight-recorder export: when set, every
/// study run installs a [`m4ps_obs::Recorder`] and writes its event
/// dump (JSONL + Chrome trace) to this path at the end (a
/// [`StudyConfig::with_dump`] path takes precedence for encodes).
pub const DUMP_ENV: &str = "M4PS_OBS_DUMP";

/// A workload specification in the paper's terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    /// Frame dimensions (720×576 and 1024×768 in the paper).
    pub resolution: Resolution,
    /// Number of frames (30 in the paper).
    pub frames: usize,
    /// Number of visual objects: 0 = single rectangular VO, ≥1 =
    /// arbitrary-shape VOs (3 in the multi-object experiments).
    pub objects: usize,
    /// Layers (VOLs) per object: 1 or 2.
    pub layers: usize,
    /// Content seed.
    pub seed: u64,
}

impl Workload {
    /// The paper's single-object workload at `resolution`.
    pub fn single(resolution: Resolution, frames: usize) -> Self {
        Workload {
            resolution,
            frames,
            objects: 0,
            layers: 1,
            seed: 0x4d50_4547, // "MPEG"
        }
    }

    /// The paper's 3-VO workload at `resolution` with `layers` VOLs per
    /// object.
    pub fn multi_object(resolution: Resolution, frames: usize, layers: usize) -> Self {
        Workload {
            resolution,
            frames,
            objects: 3,
            layers,
            seed: 0x4d50_4547,
        }
    }

    /// Human-readable label ("3 VOs, 2 layers each").
    pub fn label(&self) -> String {
        match (self.objects, self.layers) {
            (0, _) => "1 VO, 1 layer".to_string(),
            (n, 1) => format!("{n} VOs, 1 layer each"),
            (n, l) => format!("{n} VOs, {l} layers each"),
        }
    }
}

/// Study-level knobs (kept apart from [`EncoderConfig`] so experiment
/// binaries can expose them as CLI flags).
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Codec configuration for every coder in the run.
    pub encoder: EncoderConfig,
    /// Worker threads for slice-parallel encoding; `0` resolves from the
    /// `M4PS_THREADS` environment override (falling back to the
    /// machine's available parallelism). A pure scheduling knob — the
    /// bitstream and the paper-band metrics are identical for every
    /// value (only [`EncoderConfig::slices`] changes the stream).
    pub threads: usize,
    /// When set, [`encode_study`] writes a Chrome trace-event JSON file
    /// here (load it in `chrome://tracing` or Perfetto). `None` falls
    /// back to the [`TRACE_ENV`] environment variable. A pure
    /// observability knob — output and metrics are unchanged.
    pub trace: Option<String>,
    /// When set, the study installs a flight recorder on its profiler
    /// and pool and writes the event dump (JSONL, plus a Chrome trace
    /// next to it) here at the end. `None` falls back to the
    /// [`DUMP_ENV`] environment variable. A pure observability knob —
    /// output and metrics are unchanged. Analyze with `m4ps-obs`.
    pub dump: Option<String>,
    /// When set, the study encodes on this shared pool instead of
    /// spawning its own (overrides `threads`). This is how concurrent
    /// studies — the multi-session service, or callers running several
    /// `encode_study` calls from their own threads — share one set of
    /// parked workers. A pure scheduling knob: output is bit-identical.
    pub pool: Option<std::sync::Arc<m4ps_pool::WorkerPool>>,
}

impl PartialEq for StudyConfig {
    fn eq(&self, other: &Self) -> bool {
        self.encoder == other.encoder
            && self.threads == other.threads
            && self.trace == other.trace
            && self.dump == other.dump
            // Pools have identity, not value, semantics.
            && match (&self.pool, &other.pool) {
                (None, None) => true,
                (Some(a), Some(b)) => std::sync::Arc::ptr_eq(a, b),
                _ => false,
            }
    }
}

impl StudyConfig {
    /// The paper-reproduction configuration: full search ±8, half-pel,
    /// IBBP, 38400 bit/s rate control, software prefetch on.
    pub fn paper() -> Self {
        StudyConfig {
            encoder: EncoderConfig::paper(),
            threads: 0,
            trace: None,
            dump: None,
            pool: None,
        }
    }

    /// A cheap configuration for unit tests.
    pub fn fast() -> Self {
        StudyConfig {
            encoder: EncoderConfig::fast_test(),
            threads: 0,
            trace: None,
            dump: None,
            pool: None,
        }
    }

    /// Overrides the motion-search strategy (ablation benches).
    pub fn with_search(mut self, search: SearchStrategy, range: i16) -> Self {
        self.encoder.search = search;
        self.encoder.search_range = range;
        self
    }

    /// Overrides the slice count and worker thread count (parallel
    /// benches).
    pub fn with_parallel(mut self, slices: usize, threads: usize) -> Self {
        self.encoder.slices = slices;
        self.threads = threads;
        self
    }

    /// Writes a Chrome trace-event JSON file for the run (see
    /// [`StudyConfig::trace`]).
    pub fn with_trace(mut self, path: impl Into<String>) -> Self {
        self.trace = Some(path.into());
        self
    }

    /// Writes a flight-recorder dump for the run (see
    /// [`StudyConfig::dump`]).
    pub fn with_dump(mut self, path: impl Into<String>) -> Self {
        self.dump = Some(path.into());
        self
    }

    /// Encodes on `pool` instead of spawning a study-private pool (see
    /// [`StudyConfig::pool`]).
    pub fn with_pool(mut self, pool: std::sync::Arc<m4ps_pool::WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }
}

/// Result of one instrumented run on one machine.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The machine simulated.
    pub machine: MachineSpec,
    /// Derived paper metrics.
    pub metrics: MemoryMetrics,
    /// Codec-level session statistics.
    pub session: SessionStats,
    /// Counter deltas accumulated inside the per-VOP windows
    /// (`VopCode()` / `DecodeVopCombMotionShapeTexture()`).
    pub vop_window: Counters,
    /// Simulated resident memory (bytes requested from the address
    /// space).
    pub resident_bytes: u64,
    /// Demand misses attributed to the codec's data structures (sorted
    /// by L1 misses, descending).
    pub region_misses: Vec<RegionMisses>,
    /// Per-phase counter attribution (SpeedShop/Perfex-style). The sum
    /// over all phases equals `metrics.counters` bit-for-bit.
    pub profile: PhaseProfile,
}

/// Drives the scene encoder over the workload under `mem`. The
/// `attach` hook runs after all codec buffers are allocated and before
/// any traffic, so a [`Hierarchy`] caller can wire up region
/// attribution.
fn drive_encode<M: ParallelModel>(
    space: &mut AddressSpace,
    mem: &mut M,
    workload: &Workload,
    config: &StudyConfig,
    recorder: Option<&m4ps_obs::Recorder>,
    attach: impl FnOnce(&AddressSpace, &mut M),
) -> Result<(Vec<Vec<u8>>, SessionStats, Counters), CodecError> {
    let scene = Scene::new(SceneSpec {
        resolution: workload.resolution,
        objects: workload.objects.max(1),
        seed: workload.seed,
    });
    let mut enc = SceneEncoder::new(
        space,
        workload.resolution.width,
        workload.resolution.height,
        workload.objects,
        workload.layers,
        config.encoder,
    )?;
    // One persistent work-stealing pool per study: workers spawn once
    // and park between VOPs, and every layer coder schedules onto the
    // same deques. A shared pool from the config takes precedence
    // (concurrent studies multiplex one set of workers); otherwise
    // `threads == 0` resolves from `M4PS_THREADS` / available
    // parallelism (a pure scheduling knob — output is bit-identical
    // for every value).
    let pool = match &config.pool {
        Some(shared) => shared.clone(),
        None => std::sync::Arc::new(if config.threads > 0 {
            m4ps_pool::WorkerPool::new(config.threads)
        } else {
            m4ps_pool::WorkerPool::from_env()
        }),
    };
    if let Some(rec) = recorder {
        pool.set_recorder(rec);
    }
    enc.set_pool(pool);
    attach(space, mem);
    let mut mask_storage: Vec<Vec<u8>> = Vec::new();
    for t in 0..workload.frames {
        let frame = scene.frame(t);
        mask_storage.clear();
        for vo in 0..workload.objects {
            mask_storage.push(scene.alpha(t, vo).data);
        }
        let masks: Vec<&[u8]> = mask_storage.iter().map(|m| m.as_slice()).collect();
        let view = FrameView {
            width: frame.resolution.width,
            height: frame.resolution.height,
            y: &frame.y,
            u: &frame.u,
            v: &frame.v,
        };
        enc.encode_frame(mem, &view, &masks)?;
    }
    let streams = enc.finish(mem)?;
    Ok((streams, enc.stats(), enc.vop_window()))
}

/// Runs the encoding experiment on `machine` and derives the paper's
/// metrics (one column of Tables 2/4/6).
///
/// # Errors
///
/// Propagates codec configuration/geometry errors.
pub fn encode_study(
    machine: &MachineSpec,
    workload: &Workload,
    config: &StudyConfig,
) -> Result<RunResult, CodecError> {
    let mut space = AddressSpace::new();
    let mut mem = if config.encoder.software_prefetch {
        Hierarchy::new(machine.clone())
    } else {
        Hierarchy::without_prefetch(machine.clone())
    };
    let trace = trace_path(config.trace.as_deref());
    let dump = dump_path(config.dump.as_deref());
    let profiler = Profiler::new(trace.is_some());
    let recorder = dump.as_ref().map(|_| m4ps_obs::Recorder::new(0));
    if let Some(rec) = &recorder {
        profiler.set_recorder(rec);
    }
    // Everything the run charges happens inside the root `run` span, so
    // the profile's per-phase sums partition the aggregate counters.
    let guard = profiler.attach();
    record_kernel_tier(&profiler);
    m4ps_obs::enter(Phase::Run, *mem.counters());
    let result = drive_encode(
        &mut space,
        &mut mem,
        workload,
        config,
        recorder.as_ref(),
        |sp, m| m.attach_regions(sp.regions()),
    );
    m4ps_obs::exit(Phase::Run, *mem.counters());
    drop(guard);
    let (_, session, vop_window) = result?;
    write_trace_if_requested(&profiler, trace.as_deref());
    write_dump_if_requested(recorder.as_ref(), dump.as_deref());
    let metrics = MemoryMetrics::derive(mem.counters(), machine);
    Ok(RunResult {
        machine: machine.clone(),
        metrics,
        session,
        vop_window,
        resident_bytes: space.allocated_bytes(),
        region_misses: mem.region_misses(),
        profile: profiler.profile(),
    })
}

/// Records the resolved SIMD kernel tier on the session: a
/// `kernel_tier` gauge (numeric tier id) and a `kernels=<tier>` process
/// label on the trace, so exported artifacts say which dispatch table
/// produced them. Call with the session attached (the gauge records
/// through the thread-local session).
fn record_kernel_tier(profiler: &Profiler) {
    let tier = m4ps_dsp::active_tier();
    m4ps_obs::gauge_set(m4ps_obs::MetricId::KernelTier, tier as u64);
    profiler.set_process_label(&format!("kernels={}", tier.name()));
}

/// Resolves the effective trace path: explicit config, then the
/// [`TRACE_ENV`] environment override.
fn trace_path(explicit: Option<&str>) -> Option<String> {
    explicit
        .map(str::to_owned)
        .or_else(|| std::env::var(TRACE_ENV).ok().filter(|p| !p.is_empty()))
}

/// Best-effort trace export; a failed write must not fail the study.
fn write_trace_if_requested(profiler: &Profiler, path: Option<&str>) {
    if let Some(path) = path {
        if let Err(e) = profiler.write_trace(path) {
            eprintln!("m4ps: could not write trace to {path}: {e}");
        }
    }
}

/// Resolves the effective flight-recorder dump path: explicit config,
/// then the [`DUMP_ENV`] environment override.
fn dump_path(explicit: Option<&str>) -> Option<String> {
    explicit
        .map(str::to_owned)
        .or_else(|| std::env::var(DUMP_ENV).ok().filter(|p| !p.is_empty()))
}

/// Best-effort flight-recorder export; a failed write must not fail
/// the study.
fn write_dump_if_requested(recorder: Option<&m4ps_obs::Recorder>, path: Option<&str>) {
    if let (Some(rec), Some(path)) = (recorder, path) {
        if let Err(e) = rec.snapshot().write(path) {
            eprintln!("m4ps: could not write flight dump to {path}: {e}");
        }
    }
}

/// Produces the elementary streams for `workload` at full speed (no
/// memory simulation) so decode experiments can share them across
/// machines.
///
/// # Errors
///
/// Propagates codec errors.
pub fn prepare_streams(
    workload: &Workload,
    config: &StudyConfig,
) -> Result<Vec<Vec<u8>>, CodecError> {
    let mut space = AddressSpace::new();
    let mut mem = m4ps_memsim::NullModel::new();
    let (streams, _, _) = drive_encode(&mut space, &mut mem, workload, config, None, |_, _| {})?;
    Ok(streams)
}

/// Environment override for the decoder's slice-parallel worker count
/// (the decode-side sibling of `M4PS_THREADS`). Unset, empty, invalid
/// or `0` keeps decode on the legacy sequential path, so existing
/// decode artifacts are unchanged unless a run opts in.
pub const DECODE_THREADS_ENV: &str = "M4PS_DECODE_THREADS";

/// Worker count from [`DECODE_THREADS_ENV`]; `0` means sequential.
fn decode_threads_from_env() -> usize {
    std::env::var(DECODE_THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// Runs the decoding experiment on `machine` over pre-encoded
/// `streams` (one column of Tables 3/5/7). Decode parallelism comes
/// from [`DECODE_THREADS_ENV`]; use [`decode_study_with`] to pass an
/// explicit thread count or share a pool across studies.
///
/// # Errors
///
/// Propagates codec errors.
pub fn decode_study(
    machine: &MachineSpec,
    workload: &Workload,
    streams: &[Vec<u8>],
) -> Result<RunResult, CodecError> {
    decode_study_with(machine, workload, streams, &StudyConfig::fast())
}

/// [`decode_study`] with an explicit [`StudyConfig`]: a shared
/// `config.pool` takes precedence, then `config.threads`, then the
/// [`DECODE_THREADS_ENV`] override; all zero/unset means the legacy
/// sequential decoder. Like the encoder this is a pure scheduling knob
/// — reconstructions and session stats are identical for every value,
/// and clean streams never fall back.
///
/// # Errors
///
/// Propagates codec errors.
pub fn decode_study_with(
    machine: &MachineSpec,
    workload: &Workload,
    streams: &[Vec<u8>],
    config: &StudyConfig,
) -> Result<RunResult, CodecError> {
    let mut space = AddressSpace::new();
    let mut mem = Hierarchy::new(machine.clone());
    let trace = trace_path(config.trace.as_deref());
    let dump = dump_path(config.dump.as_deref());
    let profiler = Profiler::new(trace.is_some());
    let recorder = dump.as_ref().map(|_| m4ps_obs::Recorder::new(0));
    if let Some(rec) = &recorder {
        profiler.set_recorder(rec);
    }
    let pool = match &config.pool {
        Some(shared) => Some(shared.clone()),
        None => {
            let threads = if config.threads > 0 {
                config.threads
            } else {
                decode_threads_from_env()
            };
            (threads > 0).then(|| std::sync::Arc::new(m4ps_pool::WorkerPool::new(threads)))
        }
    };
    let guard = profiler.attach();
    record_kernel_tier(&profiler);
    m4ps_obs::enter(Phase::Run, *mem.counters());
    let result = (|| -> Result<SceneDecoder, CodecError> {
        let mut dec = SceneDecoder::new(&mut space, &mut mem, streams, workload.layers)?;
        if let Some(pool) = pool {
            if let Some(rec) = &recorder {
                pool.set_recorder(rec);
            }
            dec.set_pool(pool);
        }
        mem.attach_regions(space.regions());
        let _ = dec.decode_all(&mut mem, streams)?;
        Ok(dec)
    })();
    m4ps_obs::exit(Phase::Run, *mem.counters());
    drop(guard);
    let dec = result?;
    write_trace_if_requested(&profiler, trace.as_deref());
    write_dump_if_requested(recorder.as_ref(), dump.as_deref());
    let metrics = MemoryMetrics::derive(mem.counters(), machine);
    Ok(RunResult {
        machine: machine.clone(),
        metrics,
        session: dec.stats(),
        vop_window: dec.vop_window(),
        resident_bytes: space.allocated_bytes(),
        region_misses: mem.region_misses(),
        profile: profiler.profile(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_workload() -> Workload {
        Workload {
            resolution: Resolution::QCIF,
            frames: 3,
            objects: 0,
            layers: 1,
            seed: 5,
        }
    }

    #[test]
    fn encode_study_produces_sane_metrics() {
        let run = encode_study(&MachineSpec::o2(), &tiny_workload(), &StudyConfig::fast()).unwrap();
        let m = &run.metrics;
        assert!(m.counters.loads > 100_000);
        assert!(m.l1_miss_rate > 0.0 && m.l1_miss_rate < 0.05);
        assert!(m.l1_line_reuse > 20.0);
        assert!(m.exec_seconds > 0.0);
        assert_eq!(run.session.frames, 3);
        assert!(run.resident_bytes > 0);
        assert!(run.vop_window.loads > 0);
        // The VOP windows are a subset of the whole program.
        assert!(run.vop_window.loads <= m.counters.loads);
        // Miss attribution: every tag accounted, totals bounded by the
        // counter totals, and the reference frames must dominate.
        let attributed: u64 = run.region_misses.iter().map(|r| r.l1_misses).sum();
        assert!(attributed <= m.counters.l1_misses);
        assert!(
            attributed * 10 >= m.counters.l1_misses * 9,
            "attribution lost misses"
        );
        let top = &run.region_misses[0];
        assert!(
            top.tag.contains("reference") || top.tag.contains("input"),
            "unexpected top misser {:?}",
            top
        );
    }

    #[test]
    fn decode_study_runs_over_shared_streams() {
        let w = tiny_workload();
        let cfg = StudyConfig::fast();
        let streams = prepare_streams(&w, &cfg).unwrap();
        let a = decode_study(&MachineSpec::o2(), &w, &streams).unwrap();
        let b = decode_study(&MachineSpec::onyx2(), &w, &streams).unwrap();
        assert_eq!(a.session.vops, 3);
        assert_eq!(b.session.vops, 3);
        // Same reference stream, bigger L2 → no more L2 misses.
        assert!(b.metrics.counters.l2_misses <= a.metrics.counters.l2_misses);
        // Identical architectural work on both machines.
        assert_eq!(a.metrics.counters.loads, b.metrics.counters.loads);
    }

    #[test]
    fn parallel_decode_study_matches_sequential_session() {
        // Multi-slice streams decoded on the pool: same VOPs, same
        // decoded stats, no fallbacks — and the pooled counters are
        // deterministic run to run.
        let w = tiny_workload();
        let cfg = StudyConfig::fast().with_parallel(3, 2);
        let streams = prepare_streams(&w, &cfg).unwrap();
        let seq =
            decode_study_with(&MachineSpec::o2(), &w, &streams, &StudyConfig::fast()).unwrap();
        let par = decode_study_with(&MachineSpec::o2(), &w, &streams, &cfg).unwrap();
        assert_eq!(par.session.vops, seq.session.vops);
        assert_eq!(par.session.totals, seq.session.totals);
        assert_eq!(par.metrics.counters.loads, seq.metrics.counters.loads);
        let again = decode_study_with(&MachineSpec::o2(), &w, &streams, &cfg).unwrap();
        assert_eq!(par.metrics.counters, again.metrics.counters);
        // A shared pool works too and survives for the next study.
        let pool = std::sync::Arc::new(m4ps_pool::WorkerPool::new(4));
        let shared_cfg = StudyConfig::fast().with_parallel(3, 0).with_pool(pool);
        let shared = decode_study_with(&MachineSpec::o2(), &w, &streams, &shared_cfg).unwrap();
        assert_eq!(shared.session.totals, seq.session.totals);
        let shared2 = decode_study_with(&MachineSpec::o2(), &w, &streams, &shared_cfg).unwrap();
        assert_eq!(shared.metrics.counters, shared2.metrics.counters);
    }

    #[test]
    fn multi_object_workload_runs() {
        let w = Workload {
            resolution: Resolution::QCIF,
            frames: 2,
            objects: 3,
            layers: 1,
            seed: 5,
        };
        let run = encode_study(&MachineSpec::onyx_vtx(), &w, &StudyConfig::fast()).unwrap();
        assert_eq!(run.session.vops, 6);
        assert!(run.session.totals.transparent_mbs > 0);
    }

    #[test]
    fn two_layer_workload_runs() {
        let w = Workload {
            resolution: Resolution::QCIF,
            frames: 4,
            objects: 1,
            layers: 2,
            seed: 5,
        };
        let cfg = StudyConfig::fast();
        let run = encode_study(&MachineSpec::o2(), &w, &cfg).unwrap();
        assert_eq!(run.session.vops, 4);
        let streams = prepare_streams(&w, &cfg).unwrap();
        assert_eq!(streams.len(), 2);
        let dec = decode_study(&MachineSpec::o2(), &w, &streams).unwrap();
        assert_eq!(dec.session.vops, 4);
    }

    #[test]
    fn shared_pool_study_matches_private_pool() {
        let w = tiny_workload();
        let solo = encode_study(&MachineSpec::o2(), &w, &StudyConfig::fast()).unwrap();
        let pool = std::sync::Arc::new(m4ps_pool::WorkerPool::new(3));
        let cfg = StudyConfig::fast().with_pool(pool);
        let shared = encode_study(&MachineSpec::o2(), &w, &cfg).unwrap();
        assert_eq!(solo.metrics.counters, shared.metrics.counters);
        assert_eq!(solo.session.bytes, shared.session.bytes);
        // The shared pool survives the study and serves the next one.
        let again = encode_study(&MachineSpec::o2(), &w, &cfg).unwrap();
        assert_eq!(solo.metrics.counters, again.metrics.counters);
    }

    #[test]
    fn workload_labels_match_paper_wording() {
        assert_eq!(
            Workload::single(Resolution::PAL, 30).label(),
            "1 VO, 1 layer"
        );
        assert_eq!(
            Workload::multi_object(Resolution::PAL, 30, 1).label(),
            "3 VOs, 1 layer each"
        );
        assert_eq!(
            Workload::multi_object(Resolution::XGA, 30, 2).label(),
            "3 VOs, 2 layers each"
        );
    }

    #[test]
    fn resident_memory_grows_with_objects_and_layers() {
        let cfg = StudyConfig::fast();
        let base = encode_study(&MachineSpec::o2(), &tiny_workload(), &cfg)
            .unwrap()
            .resident_bytes;
        let multi = encode_study(
            &MachineSpec::o2(),
            &Workload {
                objects: 3,
                ..tiny_workload()
            },
            &cfg,
        )
        .unwrap()
        .resident_bytes;
        let layered = encode_study(
            &MachineSpec::o2(),
            &Workload {
                objects: 3,
                layers: 2,
                ..tiny_workload()
            },
            &cfg,
        )
        .unwrap()
        .resident_bytes;
        assert!(multi > base);
        assert!(layered > multi);
    }
}
