//! The memory-wall study the paper leaves as future work.
//!
//! §4: *"we will conduct simulation studies to determine at what ratio
//! of processor-to-memory speed and at what bandwidths among various
//! levels of the memory hierarchy the performance of MPEG-4 does
//! finally become memory limited."*
//!
//! The counters from one measured run are independent of memory timing,
//! so the sweep is analytic: scale the effective DRAM (and L2) latency
//! as if the processor clock kept rising against a fixed memory system,
//! and recompute the stall shares.

use m4ps_memsim::{Counters, MachineSpec, TimingModel};

/// One point of the processor-to-memory ratio sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WallPoint {
    /// Multiplier on today's processor-to-memory speed ratio.
    pub ratio: f64,
    /// Fraction of time stalled on DRAM at that ratio.
    pub dram_time: f64,
    /// Fraction of time stalled on L1-miss/L2-hit latency.
    pub l1_miss_time: f64,
    /// Total memory-stall fraction.
    pub memory_stall: f64,
}

/// Sweeps the processor-to-memory speed ratio over `multipliers`,
/// returning one point per multiplier.
pub fn sweep(counters: &Counters, machine: &MachineSpec, multipliers: &[f64]) -> Vec<WallPoint> {
    multipliers
        .iter()
        .map(|&ratio| {
            // A faster core sees proportionally longer memory latencies
            // (in cycles); L2 is on-chip-speed-bound on these systems
            // but its relative latency also grows, if more slowly.
            let t = TimingModel {
                dram_latency: (f64::from(machine.timing.dram_latency) * ratio).round() as u32,
                l2_latency: (f64::from(machine.timing.l2_latency) * ratio.sqrt()).round() as u32,
                ..machine.timing
            };
            let b = t.breakdown(counters);
            WallPoint {
                ratio,
                dram_time: b.dram_time_fraction(),
                l1_miss_time: b.l1_miss_time_fraction(),
                memory_stall: b.dram_time_fraction() + b.l1_miss_time_fraction(),
            }
        })
        .collect()
}

/// The smallest swept ratio at which memory stalls consume at least
/// half the execution time — the point where MPEG-4 "finally becomes
/// memory limited".
pub fn crossover(points: &[WallPoint]) -> Option<WallPoint> {
    points.iter().copied().find(|p| p.memory_stall >= 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{encode_study, StudyConfig, Workload};
    use m4ps_vidgen::Resolution;

    fn measured() -> (Counters, MachineSpec) {
        let w = Workload {
            resolution: Resolution::QCIF,
            frames: 3,
            objects: 0,
            layers: 1,
            seed: 4,
        };
        let run = encode_study(&MachineSpec::o2(), &w, &StudyConfig::fast()).unwrap();
        (run.metrics.counters, run.machine)
    }

    #[test]
    fn stall_share_grows_monotonically_with_ratio() {
        let (c, m) = measured();
        let pts = sweep(&c, &m, &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]);
        for w in pts.windows(2) {
            assert!(w[1].memory_stall >= w[0].memory_stall);
        }
        assert!(pts[0].memory_stall < 0.2, "already memory bound at 1x?");
    }

    #[test]
    fn a_crossover_exists_at_extreme_ratios() {
        let (c, m) = measured();
        let pts = sweep(&c, &m, &[1.0, 4.0, 16.0, 64.0, 256.0, 1024.0]);
        let x = crossover(&pts).expect("extreme ratios must be memory bound");
        assert!(x.ratio > 1.0);
        assert!(x.memory_stall >= 0.5);
    }

    #[test]
    fn ratio_one_reproduces_the_baseline_breakdown() {
        let (c, m) = measured();
        let pts = sweep(&c, &m, &[1.0]);
        let base = m.timing.breakdown(&c);
        assert!((pts[0].dram_time - base.dram_time_fraction()).abs() < 1e-12);
    }
}

#[cfg(test)]
mod ordering_tests {
    use super::*;
    use crate::study::{decode_study, encode_study, prepare_streams, StudyConfig, Workload};
    use m4ps_memsim::MachineSpec;
    use m4ps_vidgen::Resolution;

    #[test]
    fn decode_hits_the_wall_before_encode() {
        // Decode has a higher miss-per-instruction density, so its
        // crossover ratio must be at or below encode's.
        let w = Workload {
            resolution: Resolution::QCIF,
            frames: 3,
            objects: 0,
            layers: 1,
            seed: 6,
        };
        let cfg = StudyConfig::fast();
        let m = MachineSpec::o2();
        let enc = encode_study(&m, &w, &cfg).unwrap();
        let streams = prepare_streams(&w, &cfg).unwrap();
        let dec = decode_study(&m, &w, &streams).unwrap();
        let ratios: Vec<f64> = (0..12).map(|i| (1u64 << i) as f64).collect();
        let enc_x = crossover(&sweep(&enc.metrics.counters, &m, &ratios));
        let dec_x = crossover(&sweep(&dec.metrics.counters, &m, &ratios));
        let (Some(e), Some(d)) = (enc_x, dec_x) else {
            panic!("no crossover found in a 2048x sweep");
        };
        assert!(
            d.ratio <= e.ratio,
            "decode {} vs encode {}",
            d.ratio,
            e.ratio
        );
    }
}
