//! The five fallacy analyses of §3.2.
//!
//! Each function takes measured runs and returns a [`Verdict`]: whether
//! our reproduction *refutes* the popular assumption the way the paper
//! does, together with the numbers behind the call.

use crate::baseline::{run_streaming, StreamingKernel};
use crate::study::RunResult;
use m4ps_memsim::MachineSpec;

/// Outcome of one fallacy check.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// The assumption under test (paper's wording).
    pub assumption: &'static str,
    /// `true` when our measurements refute the assumption (agreeing
    /// with the paper).
    pub refuted: bool,
    /// Human-readable evidence line.
    pub evidence: String,
}

/// Fallacy 1: "MPEG-4 exhibits streaming references."
///
/// Refuted by direct comparison against a *true* streaming kernel run
/// through the same hierarchy: the codec must reuse lines at least
/// twice as much and miss at most half as often as the stream, with a
/// near-optimal L1 hit rate.
pub fn streaming(runs: &[RunResult], machine: &MachineSpec) -> Verdict {
    let stream = run_streaming(machine, &StreamingKernel::default());
    let worst_hit = runs
        .iter()
        .map(|r| 1.0 - r.metrics.l1_miss_rate)
        .fold(f64::INFINITY, f64::min);
    let min_reuse = runs
        .iter()
        .map(|r| r.metrics.l1_line_reuse)
        .fold(f64::INFINITY, f64::min);
    let worst_miss = runs
        .iter()
        .map(|r| r.metrics.l1_miss_rate)
        .fold(0.0f64, f64::max);
    Verdict {
        assumption: "MPEG-4 is a memory-streaming application",
        refuted: worst_hit > 0.975
            && min_reuse > 2.0 * stream.l1_line_reuse
            && worst_miss < 0.5 * stream.l1_miss_rate,
        evidence: format!(
            "worst L1 hit rate {:.2}%, minimum L1 line reuse {:.0}x vs a true stream's {:.0}x              (worst codec miss rate {:.2}% vs the stream's {:.2}%)",
            worst_hit * 100.0,
            min_reuse,
            stream.l1_line_reuse,
            worst_miss * 100.0,
            stream.l1_miss_rate * 100.0,
        ),
    }
}

/// Fallacy 2: "MPEG-4 is bound by DRAM latency."
///
/// Refuted when the DRAM stall share stays small (the paper's worst
/// case is ~12 %) and compiler prefetches mostly hit L1 (waste).
pub fn latency(runs: &[RunResult]) -> Verdict {
    let worst_stall = runs
        .iter()
        .map(|r| r.metrics.dram_time)
        .fold(0.0f64, f64::max);
    let wasted_prefetch = runs
        .iter()
        .filter_map(|r| r.metrics.prefetch_l1_miss)
        .map(|miss| 1.0 - miss)
        .fold(0.0f64, f64::max);
    Verdict {
        assumption: "MPEG-4's performance is limited by latency",
        refuted: worst_stall < 0.15,
        evidence: format!(
            "worst DRAM stall share {:.1}%, up to {:.0}% of prefetches waste issue slots by hitting L1",
            worst_stall * 100.0,
            wasted_prefetch * 100.0
        ),
    }
}

/// Fallacy 3: "MPEG-4 is hungry for bus bandwidth."
///
/// Refuted when L2–DRAM traffic is a small fraction of the sustained
/// bus bandwidth (paper: < 4 %).
pub fn bandwidth(runs: &[RunResult], machine: &MachineSpec) -> Verdict {
    let worst = runs
        .iter()
        .map(|r| r.metrics.bus_utilization(machine))
        .fold(0.0f64, f64::max);
    Verdict {
        assumption: "MPEG-4's performance is limited by bus bandwidth",
        refuted: worst < 0.10,
        evidence: format!(
            "worst L2-DRAM bus utilization {:.1}% of {:.0} MB/s sustained",
            worst * 100.0,
            machine.dram.sustained_mb_s
        ),
    }
}

/// Fallacy 4: "memory performance degrades with growing image size."
///
/// `runs` must be ordered by increasing image size. Refuted when the
/// L1 miss rate does not grow meaningfully (paper: flat or improving).
pub fn image_size(runs: &[RunResult]) -> Verdict {
    let first = runs.first().map(|r| r.metrics.l1_miss_rate).unwrap_or(0.0);
    let last = runs.last().map(|r| r.metrics.l1_miss_rate).unwrap_or(0.0);
    let growth = if first > 0.0 { last / first } else { 1.0 };
    Verdict {
        assumption: "MPEG-4 memory performance degrades with image size",
        refuted: growth < 1.5,
        evidence: format!(
            "L1 miss rate {:.3}% (smallest) -> {:.3}% (largest), x{:.2}",
            first * 100.0,
            last * 100.0,
            growth
        ),
    }
}

/// Fallacy 5: "memory performance degrades as VOs and VOLs grow."
///
/// `runs` ordered (1 VO×1 VOL, 3 VO×1 VOL, 3 VO×2 VOL). The paper's own
/// evidence for this fallacy is the *DRAM stall share* ("DRAM stall time
/// drops from 7.1% to 5.9% and 5.6%") together with L2 behaviour:
/// refuted when the stall share does not grow meaningfully while memory
/// requirements multiply.
pub fn objects_layers(runs: &[RunResult]) -> Verdict {
    let first = runs.first().map(|r| &r.metrics);
    let last = runs.last().map(|r| &r.metrics);
    let (Some(first), Some(last)) = (first, last) else {
        return Verdict {
            assumption: "MPEG-4 memory performance degrades as objects/layers grow",
            refuted: false,
            evidence: "no runs supplied".to_string(),
        };
    };
    let mems: Vec<u64> = runs.iter().map(|r| r.resident_bytes).collect();
    // Allow 10% relative plus one absolute point of noise on the stall
    // share; L1 must stay clearly non-streaming in absolute terms.
    let refuted = last.dram_time <= first.dram_time * 1.1 + 0.01 && last.l1_miss_rate < 0.02;
    Verdict {
        assumption: "MPEG-4 memory performance degrades as objects/layers grow",
        refuted,
        evidence: format!(
            "DRAM stall {:.1}% -> {:.1}%, L2C miss rate {:.1}% -> {:.1}%, L1C {:.2}% -> {:.2}%,              while resident memory grew {}x ({} -> {} MB)",
            first.dram_time * 100.0,
            last.dram_time * 100.0,
            first.l2_miss_rate * 100.0,
            last.l2_miss_rate * 100.0,
            first.l1_miss_rate * 100.0,
            last.l1_miss_rate * 100.0,
            mems.last().copied().unwrap_or(0) / mems.first().copied().unwrap_or(1).max(1),
            mems.first().copied().unwrap_or(0) / 1_000_000,
            mems.last().copied().unwrap_or(0) / 1_000_000,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{encode_study, StudyConfig, Workload};
    use m4ps_vidgen::Resolution;

    fn runs() -> Vec<RunResult> {
        // The fallacy thresholds target paper-scale workloads; use the
        // paper's search discipline (full search) so the locality the
        // paper describes actually materializes, at test-friendly size.
        let w = Workload {
            resolution: Resolution::QCIF,
            frames: 6,
            objects: 0,
            layers: 1,
            seed: 9,
        };
        let cfg = StudyConfig::fast().with_search(m4ps_codec::SearchStrategy::FullSearch, 6);
        vec![encode_study(&MachineSpec::o2(), &w, &cfg).unwrap()]
    }

    #[test]
    fn codec_runs_refute_streaming_and_bandwidth() {
        let rs = runs();
        let s = streaming(&rs, &MachineSpec::o2());
        assert!(s.refuted, "{}", s.evidence);
        let b = bandwidth(&rs, &MachineSpec::o2());
        assert!(b.refuted, "{}", b.evidence);
    }

    #[test]
    fn latency_verdict_has_evidence() {
        let rs = runs();
        let v = latency(&rs);
        assert!(v.evidence.contains("DRAM stall"));
        assert!(v.refuted, "{}", v.evidence);
    }

    #[test]
    fn image_size_verdict_on_flat_series_refutes() {
        let rs = runs();
        let doubled = vec![rs[0].clone(), rs[0].clone()];
        assert!(image_size(&doubled).refuted);
        assert!(objects_layers(&doubled).refuted);
    }
}
