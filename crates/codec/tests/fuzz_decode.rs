//! Robustness: the decoder must reject arbitrary garbage with an error,
//! never panic, and never loop forever.
//!
//! Runs on the in-tree [`m4ps_testkit::prop`] harness; failures print a
//! replayable seed (`M4PS_PROP_REPLAY=0x...`).

use m4ps_bitstream::{BitReader, BitWriter};
use m4ps_codec::{VideoObjectDecoder, VolHeader};
use m4ps_memsim::{AddressSpace, NullModel};
use m4ps_testkit::prop::{check, Config};

fn vol_bytes(binary_shape: bool) -> Vec<u8> {
    let mut w = BitWriter::new();
    VolHeader {
        vo_id: 0,
        vol_id: 0,
        width: 64,
        height: 48,
        binary_shape,
        enhancement: false,
    }
    .write(&mut w);
    w.into_bytes()
}

fn try_decode(stream: &[u8]) {
    let mut space = AddressSpace::new();
    let mut mem = NullModel::new();
    let mut r = BitReader::new(stream);
    let Ok(mut dec) = VideoObjectDecoder::from_stream(&mut space, &mut mem, &mut r) else {
        return;
    };
    // Bounded number of VOP attempts: garbage may contain several
    // accidental startcodes.
    for _ in 0..8 {
        match dec.decode_next(&mut mem, &mut r) {
            Ok(Some(_)) => continue,
            Ok(None) | Err(_) => return,
        }
    }
}

fn cfg() -> Config {
    Config::with_cases(64)
}

#[test]
fn random_bytes_after_vol_header_never_panic() {
    check(
        "random_bytes_after_vol_header_never_panic",
        &cfg(),
        |rng| (rng.bytes(0..512), rng.gen_bool()),
        |(body, shaped)| {
            let mut stream = vol_bytes(*shaped);
            stream.extend_from_slice(body);
            try_decode(&stream);
            Ok(())
        },
    );
}

#[test]
fn random_bytes_with_vop_startcode_never_panic() {
    check(
        "random_bytes_with_vop_startcode_never_panic",
        &cfg(),
        |rng| (rng.bytes(0..512), rng.gen_bool()),
        |(body, shaped)| {
            let mut stream = vol_bytes(*shaped);
            stream.extend_from_slice(&[0x00, 0x00, 0x01, 0xb6]);
            stream.extend_from_slice(body);
            try_decode(&stream);
            Ok(())
        },
    );
}

#[test]
fn pure_garbage_never_panics() {
    check(
        "pure_garbage_never_panics",
        &cfg(),
        |rng| rng.bytes(0..256),
        |bytes| {
            try_decode(bytes);
            Ok(())
        },
    );
}

#[test]
fn truncations_of_a_valid_stream_never_panic() {
    check(
        "truncations_of_a_valid_stream_never_panic",
        &cfg(),
        |rng| rng.gen_range(0usize..400),
        |&cut| {
            use m4ps_codec::{EncoderConfig, FrameView, VideoObjectCoder};
            let mut space = AddressSpace::new();
            let mut mem = NullModel::new();
            let mut coder =
                VideoObjectCoder::new(&mut space, 64, 48, EncoderConfig::fast_test()).unwrap();
            let y = vec![100u8; 64 * 48];
            let u = vec![128u8; 32 * 24];
            let v = vec![128u8; 32 * 24];
            let view = FrameView {
                width: 64,
                height: 48,
                y: &y,
                u: &u,
                v: &v,
            };
            let mut stream = coder.header_bytes();
            for vop in coder.encode_frame(&mut mem, &view, None).unwrap() {
                stream.extend_from_slice(&vop.bytes);
            }
            stream.truncate(cut.min(stream.len()));
            try_decode(&stream);
            Ok(())
        },
    );
}
