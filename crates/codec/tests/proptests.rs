//! Property-based tests of codec components: headers, shape coding,
//! motion-vector machinery and texture entropy coding under arbitrary
//! inputs.
//!
//! Runs on the in-tree [`m4ps_testkit::prop`] harness; failures print a
//! replayable seed (`M4PS_PROP_REPLAY=0x...`).

use m4ps_bitstream::{BitReader, BitWriter};
use m4ps_codec::{
    decode_alpha_plane, encode_alpha_plane, MotionVector, TracedPlane, VolHeader, VopHeader,
    VopKind,
};
use m4ps_memsim::{AddressSpace, NullModel};
use m4ps_testkit::prop::{check, Config};
use m4ps_testkit::rng::Rng;
use m4ps_testkit::{prop_assert, prop_assert_eq};

fn vop_kind(rng: &mut Rng) -> VopKind {
    *rng.choose(&[VopKind::I, VopKind::P, VopKind::B])
}

#[test]
fn vol_header_roundtrips_any_legal_fields() {
    check(
        "vol_header_roundtrips_any_legal_fields",
        &Config::default(),
        |rng| VolHeader {
            vo_id: rng.gen_range(0u32..1000),
            vol_id: rng.gen_range(0u32..16),
            width: rng.gen_range(1usize..64) * 16,
            height: rng.gen_range(1usize..64) * 16,
            binary_shape: rng.gen_bool(),
            enhancement: rng.gen_bool(),
        },
        |h| {
            let mut w = BitWriter::new();
            h.write(&mut w);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            prop_assert_eq!(VolHeader::read(&mut r).unwrap(), *h);
            Ok(())
        },
    );
}

#[test]
fn vop_header_roundtrips_any_legal_fields() {
    check(
        "vop_header_roundtrips_any_legal_fields",
        &Config::default(),
        |rng| VopHeader {
            kind: vop_kind(rng),
            display_index: rng.gen_range(0u32..100_000),
            qp: rng.gen_range(1u8..=31),
            bbox: rng.gen_bool().then(|| {
                (
                    rng.gen_range(0usize..8) * 16,
                    rng.gen_range(0usize..8) * 16,
                    rng.gen_range(1usize..8) * 16,
                    rng.gen_range(1usize..8) * 16,
                )
            }),
            resync_interval: rng.gen_bool().then(|| rng.gen_range(1usize..500)),
            slices: rng.gen_range(1usize..=64),
        },
        |h| {
            let mut w = BitWriter::new();
            h.write(&mut w);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            prop_assert_eq!(VopHeader::read(&mut r).unwrap(), *h);
            Ok(())
        },
    );
}

fn mv_triple(rng: &mut Rng) -> [MotionVector; 3] {
    let mut mv = || MotionVector::new(rng.gen_range(-30i16..30), rng.gen_range(-30i16..30));
    [mv(), mv(), mv()]
}

#[test]
fn mv_median_is_bounded_by_inputs() {
    check(
        "mv_median_is_bounded_by_inputs",
        &Config::default(),
        mv_triple,
        |&[a, b, c]| {
            let m = MotionVector::median3(a, b, c);
            // The median is always one of the inputs, component-wise.
            prop_assert!([a.x, b.x, c.x].contains(&m.x));
            prop_assert!([a.y, b.y, c.y].contains(&m.y));
            prop_assert!(m.x >= a.x.min(b.x).min(c.x) && m.x <= a.x.max(b.x).max(c.x));
            prop_assert!(m.y >= a.y.min(b.y).min(c.y) && m.y <= a.y.max(b.y).max(c.y));
            Ok(())
        },
    );
}

#[test]
fn mv_median_is_permutation_invariant() {
    check(
        "mv_median_is_permutation_invariant",
        &Config::default(),
        mv_triple,
        |&[a, b, c]| {
            let m = MotionVector::median3(a, b, c);
            prop_assert_eq!(m, MotionVector::median3(b, c, a));
            prop_assert_eq!(m, MotionVector::median3(c, b, a));
            prop_assert_eq!(m, MotionVector::median3(a, c, b));
            Ok(())
        },
    );
}

#[test]
fn full_pel_floor_division_is_consistent() {
    check(
        "full_pel_floor_division_is_consistent",
        &Config::default(),
        |rng| (rng.gen_range(-64i16..64), rng.gen_range(-64i16..64)),
        |&(x, y)| {
            let v = MotionVector::new(x, y);
            let (fx, fy) = v.full_pel();
            // fx is floor(x/2): 2*fx <= x < 2*fx + 2.
            prop_assert!(i32::from(fx) * 2 <= i32::from(x));
            prop_assert!(i32::from(x) < i32::from(fx) * 2 + 2);
            prop_assert!(i32::from(fy) * 2 <= i32::from(y));
            prop_assert!(i32::from(y) < i32::from(fy) * 2 + 2);
            Ok(())
        },
    );
}

#[test]
fn arbitrary_masks_roundtrip_losslessly() {
    check(
        "arbitrary_masks_roundtrip_losslessly",
        &Config::default(),
        |rng| {
            // A 48x32 mask (6 BABs) with a density drawn per case to
            // cover transparent/opaque/border mixes.
            let density = rng.gen_range(0u8..=255);
            let (w, h) = (48usize, 32usize);
            let mut data = vec![0u8; w * h];
            for px in data.iter_mut() {
                *px = if rng.gen_range(0u8..=255) <= density {
                    255
                } else {
                    0
                };
            }
            (density, data)
        },
        |(_density, data)| {
            let (w, h) = (48usize, 32usize);
            let mut space = AddressSpace::new();
            let mut mem = NullModel::new();
            let mut plane = TracedPlane::new(&mut space, w, h);
            plane.copy_from(&mut mem, data, false);

            let mut bits = BitWriter::new();
            encode_alpha_plane(&mut mem, &plane, (0, 0, w, h), &mut bits);
            let bytes = bits.into_bytes();
            let mut out = TracedPlane::new(&mut space, w, h);
            let mut r = BitReader::new(&bytes);
            decode_alpha_plane(&mut mem, &mut out, (0, 0, w, h), &mut r).unwrap();
            for y in 0..h {
                prop_assert_eq!(
                    plane.raw_row(0, y as isize, w),
                    out.raw_row(0, y as isize, w),
                    "row {}",
                    y
                );
            }
            Ok(())
        },
    );
}

#[test]
fn structured_masks_compress_below_raw_size() {
    check(
        "structured_masks_compress_below_raw_size",
        &Config::default(),
        |rng| rng.gen_range(5.0f64..20.0),
        |&radius| {
            let (w, h) = (64usize, 64usize);
            let mut data = vec![0u8; w * h];
            for y in 0..h {
                for x in 0..w {
                    let dx = x as f64 - 32.0;
                    let dy = y as f64 - 32.0;
                    if (dx * dx + dy * dy).sqrt() <= radius {
                        data[y * w + x] = 255;
                    }
                }
            }
            let mut space = AddressSpace::new();
            let mut mem = NullModel::new();
            let mut plane = TracedPlane::new(&mut space, w, h);
            plane.copy_from(&mut mem, &data, false);
            let mut bits = BitWriter::new();
            encode_alpha_plane(&mut mem, &plane, (0, 0, w, h), &mut bits);
            // Raw binary plane is 4096 bits.
            prop_assert!(bits.bit_len() < 2048, "coded {} bits", bits.bit_len());
            Ok(())
        },
    );
}
