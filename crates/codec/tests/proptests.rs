//! Property-based tests of codec components: headers, shape coding,
//! motion-vector machinery and texture entropy coding under arbitrary
//! inputs.

use m4ps_bitstream::{BitReader, BitWriter};
use m4ps_codec::{
    decode_alpha_plane, encode_alpha_plane, MotionVector, TracedPlane, VolHeader, VopHeader,
    VopKind,
};
use m4ps_memsim::{AddressSpace, NullModel};
use proptest::prelude::*;

fn vop_kind_strategy() -> impl Strategy<Value = VopKind> {
    prop_oneof![Just(VopKind::I), Just(VopKind::P), Just(VopKind::B)]
}

proptest! {
    #[test]
    fn vol_header_roundtrips_any_legal_fields(
        vo_id in 0u32..1000,
        vol_id in 0u32..16,
        w_mb in 1usize..64,
        h_mb in 1usize..64,
        shape in any::<bool>(),
        enh in any::<bool>(),
    ) {
        let h = VolHeader {
            vo_id,
            vol_id,
            width: w_mb * 16,
            height: h_mb * 16,
            binary_shape: shape,
            enhancement: enh,
        };
        let mut w = BitWriter::new();
        h.write(&mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        prop_assert_eq!(VolHeader::read(&mut r).unwrap(), h);
    }

    #[test]
    fn vop_header_roundtrips_any_legal_fields(
        kind in vop_kind_strategy(),
        display in 0u32..100_000,
        qp in 1u8..=31,
        bbox_mb in proptest::option::of((0usize..8, 0usize..8, 1usize..8, 1usize..8)),
        resync in proptest::option::of(1usize..500),
    ) {
        let h = VopHeader {
            kind,
            display_index: display,
            qp,
            bbox: bbox_mb.map(|(x, y, w, hh)| (x * 16, y * 16, w * 16, hh * 16)),
            resync_interval: resync,
        };
        let mut w = BitWriter::new();
        h.write(&mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        prop_assert_eq!(VopHeader::read(&mut r).unwrap(), h);
    }

    #[test]
    fn mv_median_is_bounded_by_inputs(
        ax in -30i16..30, ay in -30i16..30,
        bx in -30i16..30, by in -30i16..30,
        cx in -30i16..30, cy in -30i16..30,
    ) {
        let m = MotionVector::median3(
            MotionVector::new(ax, ay),
            MotionVector::new(bx, by),
            MotionVector::new(cx, cy),
        );
        // The median is always one of the inputs, component-wise.
        prop_assert!([ax, bx, cx].contains(&m.x));
        prop_assert!([ay, by, cy].contains(&m.y));
        prop_assert!(m.x >= ax.min(bx).min(cx) && m.x <= ax.max(bx).max(cx));
        prop_assert!(m.y >= ay.min(by).min(cy) && m.y <= ay.max(by).max(cy));
    }

    #[test]
    fn mv_median_is_permutation_invariant(
        ax in -30i16..30, ay in -30i16..30,
        bx in -30i16..30, by in -30i16..30,
        cx in -30i16..30, cy in -30i16..30,
    ) {
        let a = MotionVector::new(ax, ay);
        let b = MotionVector::new(bx, by);
        let c = MotionVector::new(cx, cy);
        let m = MotionVector::median3(a, b, c);
        prop_assert_eq!(m, MotionVector::median3(b, c, a));
        prop_assert_eq!(m, MotionVector::median3(c, b, a));
        prop_assert_eq!(m, MotionVector::median3(a, c, b));
    }

    #[test]
    fn full_pel_floor_division_is_consistent(x in -64i16..64, y in -64i16..64) {
        let v = MotionVector::new(x, y);
        let (fx, fy) = v.full_pel();
        // fx is floor(x/2): 2*fx <= x < 2*fx + 2.
        prop_assert!(i32::from(fx) * 2 <= i32::from(x));
        prop_assert!(i32::from(x) < i32::from(fx) * 2 + 2);
        prop_assert!(i32::from(fy) * 2 <= i32::from(y));
        prop_assert!(i32::from(y) < i32::from(fy) * 2 + 2);
    }

    #[test]
    fn arbitrary_masks_roundtrip_losslessly(
        seed_bits in prop::collection::vec(any::<bool>(), 12),
        density in 0u8..=255,
    ) {
        // A 48x32 mask (6 BABs) built from a hash of the seed bits, with
        // varying densities to cover transparent/opaque/border mixes.
        let (w, h) = (48usize, 32usize);
        let mut data = vec![0u8; w * h];
        let mut state: u64 = seed_bits
            .iter()
            .fold(0x9e3779b97f4a7c15, |acc, &b| acc.rotate_left(7) ^ u64::from(b));
        for px in data.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *px = if ((state >> 33) & 0xff) as u8 <= density { 255 } else { 0 };
        }
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        let mut plane = TracedPlane::new(&mut space, w, h);
        plane.copy_from(&mut mem, &data, false);

        let mut bits = BitWriter::new();
        encode_alpha_plane(&mut mem, &plane, (0, 0, w, h), &mut bits);
        let bytes = bits.into_bytes();
        let mut out = TracedPlane::new(&mut space, w, h);
        let mut r = BitReader::new(&bytes);
        decode_alpha_plane(&mut mem, &mut out, (0, 0, w, h), &mut r).unwrap();
        for y in 0..h {
            prop_assert_eq!(
                plane.raw_row(0, y as isize, w),
                out.raw_row(0, y as isize, w),
                "row {}", y
            );
        }
    }

    #[test]
    fn structured_masks_compress_below_raw_size(radius in 5.0f64..20.0) {
        let (w, h) = (64usize, 64usize);
        let mut data = vec![0u8; w * h];
        for y in 0..h {
            for x in 0..w {
                let dx = x as f64 - 32.0;
                let dy = y as f64 - 32.0;
                if (dx * dx + dy * dy).sqrt() <= radius {
                    data[y * w + x] = 255;
                }
            }
        }
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        let mut plane = TracedPlane::new(&mut space, w, h);
        plane.copy_from(&mut mem, &data, false);
        let mut bits = BitWriter::new();
        encode_alpha_plane(&mut mem, &plane, (0, 0, w, h), &mut bits);
        // Raw binary plane is 4096 bits.
        prop_assert!(bits.bit_len() < 2048, "coded {} bits", bits.bit_len());
    }
}
