//! Error-resilience tests: resynchronization markers, concealment,
//! and a PRNG-driven robustness corpus (truncations and bit flips)
//! that pins the decoder's contract on damaged input — an error or a
//! degraded picture, never a panic.

use std::panic::{catch_unwind, AssertUnwindSafe};

use m4ps_bitstream::BitReader;
use m4ps_codec::{EncoderConfig, FrameView, VideoObjectCoder, VideoObjectDecoder};
use m4ps_memsim::{AddressSpace, NullModel};
use m4ps_testkit::Rng;
use m4ps_vidgen::{Resolution, Scene, SceneSpec, YuvFrame};

fn view(f: &YuvFrame) -> FrameView<'_> {
    FrameView {
        width: f.resolution.width,
        height: f.resolution.height,
        y: &f.y,
        u: &f.u,
        v: &f.v,
    }
}

fn encode_clip(
    config: EncoderConfig,
    frames: usize,
) -> (Vec<u8>, Vec<m4ps_codec::EncodedVop>, Scene) {
    let res = Resolution::QCIF;
    let scene = Scene::new(SceneSpec {
        resolution: res,
        objects: 1,
        seed: 77,
    });
    let mut space = AddressSpace::new();
    let mut mem = NullModel::new();
    let mut coder = VideoObjectCoder::new(&mut space, res.width, res.height, config).unwrap();
    coder.set_keep_recon(true);
    let mut stream = coder.header_bytes();
    let mut vops = Vec::new();
    for t in 0..frames {
        let f = scene.frame(t);
        for vop in coder.encode_frame(&mut mem, &view(&f), None).unwrap() {
            stream.extend_from_slice(&vop.bytes);
            vops.push(vop);
        }
    }
    for vop in coder.flush(&mut mem).unwrap() {
        stream.extend_from_slice(&vop.bytes);
        vops.push(vop);
    }
    (stream, vops, scene)
}

fn decode_clip(stream: &[u8]) -> Vec<m4ps_codec::DecodedVop> {
    let mut mem = NullModel::new();
    let mut space = AddressSpace::new();
    let mut r = BitReader::new(stream);
    let mut dec = VideoObjectDecoder::from_stream(&mut space, &mut mem, &mut r).unwrap();
    dec.set_keep_output(true);
    let mut out = Vec::new();
    while let Ok(Some(v)) = dec.decode_next(&mut mem, &mut r) {
        out.push(v);
    }
    out
}

fn resync_config() -> EncoderConfig {
    let mut c = EncoderConfig::fast_test();
    c.resync_mb_interval = Some(23); // deliberately not a row multiple
    c
}

#[test]
fn clean_resync_stream_is_drift_free() {
    let (stream, encoded, _) = encode_clip(resync_config(), 5);
    let decoded = decode_clip(&stream);
    assert_eq!(decoded.len(), encoded.len());
    for (e, d) in encoded.iter().zip(&decoded) {
        assert_eq!(d.stats.concealed_mbs, 0);
        let er = e.recon.as_ref().unwrap();
        let dr = d.planes.as_ref().unwrap();
        assert_eq!(er.y, dr.y, "drift at display {}", e.display_index);
    }
}

#[test]
fn resync_markers_cost_bits_but_little() {
    let (plain, _, _) = encode_clip(EncoderConfig::fast_test(), 5);
    let (resync, _, _) = encode_clip(resync_config(), 5);
    assert!(resync.len() > plain.len(), "markers must cost something");
    assert!(
        (resync.len() as f64) < plain.len() as f64 * 1.35,
        "marker overhead too large: {} vs {}",
        resync.len(),
        plain.len()
    );
}

#[test]
fn corruption_with_resync_is_concealed_not_fatal() {
    let (mut stream, encoded, _) = encode_clip(resync_config(), 4);
    // Flip bytes inside the *second* VOP's payload (well past its header).
    let second_vop_start =
        stream.len() - encoded.last().unwrap().bytes.len() - encoded[encoded.len() - 2].bytes.len();
    let target = second_vop_start + 60;
    for i in 0..4 {
        stream[target + i] ^= 0xa5;
    }
    let decoded = decode_clip(&stream);
    // All VOPs still come out.
    assert_eq!(decoded.len(), encoded.len());
    let concealed: u64 = decoded.iter().map(|d| d.stats.concealed_mbs).sum();
    assert!(concealed > 0, "corruption went unnoticed");
    // Concealment is partial: far fewer than all MBs were lost.
    let total_mbs = (176 / 16) * (144 / 16) * decoded.len() as u64;
    assert!(
        concealed < total_mbs / 2,
        "concealed {concealed} of {total_mbs}"
    );
}

#[test]
fn corruption_without_resync_kills_the_vop() {
    let (clean_stream, encoded, _) = encode_clip(EncoderConfig::fast_test(), 4);
    let clean = decode_clip(&clean_stream);
    assert_eq!(clean.len(), encoded.len());
    let mut stream = clean_stream;
    let second_vop_start =
        stream.len() - encoded.last().unwrap().bytes.len() - encoded[encoded.len() - 2].bytes.len();
    let target = second_vop_start + 60;
    for i in 0..4 {
        stream[target + i] ^= 0xa5;
    }
    let mut mem = NullModel::new();
    let mut space = AddressSpace::new();
    let mut r = BitReader::new(&stream);
    let mut dec = VideoObjectDecoder::from_stream(&mut space, &mut mem, &mut r).unwrap();
    dec.set_keep_output(true);
    let mut decoded = Vec::new();
    let mut failed = false;
    loop {
        match dec.decode_next(&mut mem, &mut r) {
            Ok(Some(v)) => decoded.push(v),
            Ok(None) => break,
            Err(_) => {
                failed = true;
                break;
            }
        }
    }
    // Without markers there is nothing to resynchronize on, so nothing
    // may be concealed...
    let concealed: u64 = decoded.iter().map(|d| d.stats.concealed_mbs).sum();
    assert_eq!(concealed, 0, "concealment without resync markers");
    // ...and the damage must not go unnoticed: either the decode dies
    // before the end of the stream, or the surviving VOPs decode to
    // different pixels than the clean run (garbage propagated by
    // prediction).
    let diverged = decoded
        .iter()
        .zip(&clean)
        .any(|(d, c)| d.planes.as_ref().unwrap().y != c.planes.as_ref().unwrap().y);
    assert!(
        failed || decoded.len() < encoded.len() || diverged,
        "corruption had no effect (ok={})",
        decoded.len()
    );
}

#[test]
fn later_segments_recover_quality_after_concealment() {
    // Corrupt early in a resync VOP: the final resync segment of that
    // VOP should still decode exactly (identical to the clean decode).
    let (clean_stream, _, _) = encode_clip(resync_config(), 3);
    let clean = decode_clip(&clean_stream);
    let mut corrupted_stream = clean_stream.clone();
    // Find the last VOP's start and damage shortly after its header.
    let pos = corrupted_stream.len() * 2 / 3;
    corrupted_stream[pos] ^= 0xff;
    let damaged = decode_clip(&corrupted_stream);
    assert_eq!(damaged.len(), clean.len());
    // At least one VOP was damaged; compare final rows (decoded last,
    // after the final resync) between clean and damaged runs of the same
    // display index: they should agree for a large share of pixels.
    let concealed: u64 = damaged.iter().map(|d| d.stats.concealed_mbs).sum();
    if concealed == 0 {
        // The flipped byte may have hit stuffing; nothing to assert.
        return;
    }
    let last_clean = clean.last().unwrap().planes.as_ref().unwrap();
    let last_damaged = damaged.last().unwrap().planes.as_ref().unwrap();
    let same = last_clean
        .y
        .iter()
        .zip(&last_damaged.y)
        .filter(|(a, b)| a == b)
        .count();
    assert!(
        same * 2 > last_clean.y.len(),
        "recovery failed: only {same} of {} pixels match",
        last_clean.y.len()
    );
}

/// Decodes an arbitrary byte buffer to exhaustion, swallowing codec
/// errors. Returns the number of VOPs that survived; panics (which the
/// corpus tests catch and report with their seed) are the only failure.
fn decode_arbitrary(stream: &[u8]) -> usize {
    let mut mem = NullModel::new();
    let mut space = AddressSpace::new();
    let mut r = BitReader::new(stream);
    let Ok(mut dec) = VideoObjectDecoder::from_stream(&mut space, &mut mem, &mut r) else {
        return 0;
    };
    let mut n = 0;
    while let Ok(Some(_)) = dec.decode_next(&mut mem, &mut r) {
        n += 1;
    }
    n
}

#[test]
fn truncated_streams_error_but_never_panic() {
    // Cutting a valid stream at ANY byte (including mid-header and
    // mid-VOP) must produce an error or a short decode — never a panic.
    for config in [EncoderConfig::fast_test(), resync_config()] {
        let (stream, encoded, _) = encode_clip(config, 4);
        let mut rng = Rng::new(0xc0ffee);
        let mut cuts: Vec<usize> = (0..48).map(|_| rng.gen_range(0..stream.len())).collect();
        // Always include the hand-picked nasty spots.
        cuts.extend([0, 1, stream.len() - 1]);
        for cut in cuts {
            let clipped = &stream[..cut];
            let got = catch_unwind(AssertUnwindSafe(|| decode_arbitrary(clipped)));
            match got {
                Ok(n) => assert!(
                    n <= encoded.len(),
                    "truncation at {cut} invented VOPs ({n} > {})",
                    encoded.len()
                ),
                Err(_) => panic!("decoder panicked on stream truncated at byte {cut}"),
            }
        }
    }
}

#[test]
fn bit_flipped_streams_error_but_never_panic() {
    // Random single- and multi-bit damage anywhere in the stream
    // (headers included). The decoder may reject the stream, conceal,
    // or emit garbage pixels — but must stay inside safe Rust and
    // return.
    for config in [EncoderConfig::fast_test(), resync_config()] {
        let (stream, _, _) = encode_clip(config, 4);
        let mut rng = Rng::new(0xbad_b175);
        for case in 0..60u32 {
            let mut damaged = stream.clone();
            let flips = rng.gen_range(1usize..=4);
            let mut spots = Vec::new();
            for _ in 0..flips {
                let byte = rng.gen_range(0..damaged.len());
                let bit = rng.gen_range(0u32..8);
                damaged[byte] ^= 1 << bit;
                spots.push((byte, bit));
            }
            let got = catch_unwind(AssertUnwindSafe(|| decode_arbitrary(&damaged)));
            assert!(
                got.is_ok(),
                "decoder panicked on corpus case {case} (flips at {spots:?})"
            );
        }
    }
}

// ---------------------------------------------------------------------
// The same corpus through the slice-parallel decoder. A corrupt slice
// surfaces as a clean per-slice error inside the pool (caught at the
// task boundary), the decoder falls back to the sequential concealment
// path, and the pool survives for the next VOP and the next stream.
// ---------------------------------------------------------------------

fn sliced_resync_config() -> EncoderConfig {
    resync_config().with_slices(3)
}

/// Like [`decode_arbitrary`] but on the slice-parallel path over a
/// shared persistent pool.
fn decode_arbitrary_parallel(stream: &[u8], pool: &std::sync::Arc<m4ps_pool::WorkerPool>) -> usize {
    let mut mem = NullModel::new();
    let mut space = AddressSpace::new();
    let mut r = BitReader::new(stream);
    let Ok(mut dec) = VideoObjectDecoder::from_stream(&mut space, &mut mem, &mut r) else {
        return 0;
    };
    dec.set_pool(pool.clone());
    let mut n = 0;
    while let Ok(Some(_)) = dec.decode_next(&mut mem, &mut r) {
        n += 1;
    }
    n
}

#[test]
fn corrupt_slice_falls_back_to_sequential_concealment() {
    // Damage one slice's payload: the parallel attempt must abandon
    // that VOP (per-slice error, no panic), re-decode it sequentially,
    // and end up with EXACTLY the sequential decoder's concealment —
    // while the other VOPs keep decoding in parallel.
    let (mut stream, encoded, _) = encode_clip(sliced_resync_config(), 4);
    let second_vop_start =
        stream.len() - encoded.last().unwrap().bytes.len() - encoded[encoded.len() - 2].bytes.len();
    for i in 0..4 {
        stream[second_vop_start + 60 + i] ^= 0xa5;
    }
    let sequential = decode_clip(&stream);

    let mut mem = NullModel::new();
    let mut space = AddressSpace::new();
    let mut r = BitReader::new(&stream);
    let mut dec = VideoObjectDecoder::from_stream(&mut space, &mut mem, &mut r).unwrap();
    dec.set_threads(4);
    dec.set_keep_output(true);
    let mut parallel = Vec::new();
    while let Ok(Some(v)) = dec.decode_next(&mut mem, &mut r) {
        parallel.push(v);
    }
    assert!(
        dec.parallel_fallbacks() > 0,
        "corrupt slice never reached the parallel path"
    );
    assert_eq!(parallel.len(), sequential.len());
    for (p, s) in parallel.iter().zip(&sequential) {
        assert_eq!(p.stats, s.stats);
        assert_eq!(
            p.planes.as_ref().unwrap().y,
            s.planes.as_ref().unwrap().y,
            "fallback concealment diverged at display {}",
            p.display_index
        );
    }
    let concealed: u64 = parallel.iter().map(|d| d.stats.concealed_mbs).sum();
    assert!(concealed > 0, "corruption went unnoticed");
}

#[test]
fn corpus_never_panics_or_poisons_the_parallel_pool() {
    // Truncations, bit flips and garbage through ONE persistent pool.
    // Every case must return (the task-boundary catch_unwind turns any
    // slice panic into a per-slice error), and after the whole corpus
    // the same pool must still decode a clean stream drift-free.
    let pool = std::sync::Arc::new(m4ps_pool::WorkerPool::new(4));
    for config in [
        EncoderConfig::fast_test().with_slices(3),
        sliced_resync_config(),
    ] {
        let (stream, encoded, _) = encode_clip(config, 4);
        let mut rng = Rng::new(0xc0ffee);
        for _ in 0..24 {
            let cut = rng.gen_range(0..stream.len());
            let clipped = stream[..cut].to_vec();
            let got = catch_unwind(AssertUnwindSafe(|| {
                decode_arbitrary_parallel(&clipped, &pool)
            }));
            match got {
                Ok(n) => assert!(n <= encoded.len(), "truncation at {cut} invented VOPs"),
                Err(_) => panic!("parallel decoder panicked on truncation at byte {cut}"),
            }
        }
        for case in 0..30u32 {
            let mut damaged = stream.clone();
            for _ in 0..rng.gen_range(1usize..=4) {
                let byte = rng.gen_range(0..damaged.len());
                damaged[byte] ^= 1 << rng.gen_range(0u32..8);
            }
            let got = catch_unwind(AssertUnwindSafe(|| {
                decode_arbitrary_parallel(&damaged, &pool)
            }));
            assert!(
                got.is_ok(),
                "parallel decoder panicked on corpus case {case}"
            );
        }
        let mut rng = Rng::new(0x9a5ba9e);
        for case in 0..16u32 {
            let len = rng.gen_range(0usize..512);
            let buf: Vec<u8> = (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect();
            let got = catch_unwind(AssertUnwindSafe(|| decode_arbitrary_parallel(&buf, &pool)));
            assert!(
                got.is_ok(),
                "parallel decoder panicked on garbage case {case}"
            );
        }
    }

    // The pool survived the corpus: a clean decode on it still matches
    // the sequential decoder bit for bit.
    let (clean, encoded, _) = encode_clip(sliced_resync_config(), 3);
    let sequential = decode_clip(&clean);
    let mut mem = NullModel::new();
    let mut space = AddressSpace::new();
    let mut r = BitReader::new(&clean);
    let mut dec = VideoObjectDecoder::from_stream(&mut space, &mut mem, &mut r).unwrap();
    dec.set_pool(pool);
    dec.set_keep_output(true);
    let mut decoded = Vec::new();
    while let Some(v) = dec.decode_next(&mut mem, &mut r).unwrap() {
        decoded.push(v);
    }
    assert_eq!(dec.parallel_fallbacks(), 0, "clean stream fell back");
    assert_eq!(decoded.len(), encoded.len());
    for (p, s) in decoded.iter().zip(&sequential) {
        assert_eq!(p.planes.as_ref().unwrap().y, s.planes.as_ref().unwrap().y);
    }
}

#[test]
fn random_garbage_never_panics_the_decoder() {
    // Pure noise and noise prefixed with a valid VOL header: the
    // decoder must treat both as hostile input, not trusted state.
    let (stream, _, _) = encode_clip(EncoderConfig::fast_test(), 2);
    let header_len = stream.len().min(16);
    let mut rng = Rng::new(0x9a5ba9e);
    for case in 0..40u32 {
        let len = rng.gen_range(0usize..512);
        let mut buf: Vec<u8> = (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect();
        if case % 2 == 0 {
            // Valid header, garbage payload.
            let mut with_header = stream[..header_len].to_vec();
            with_header.append(&mut buf);
            buf = with_header;
        }
        let got = catch_unwind(AssertUnwindSafe(|| decode_arbitrary(&buf)));
        assert!(got.is_ok(), "decoder panicked on garbage case {case}");
    }
}
