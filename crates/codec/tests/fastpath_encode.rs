//! End-to-end differential for the memsim charging fast path: full
//! encode and decode runs under the memoized [`Hierarchy`] must produce
//! the same bitstream, the same [`Counters`] (every field), the same
//! DRAM traffic, and the same region attribution as the un-memoized
//! [`NaiveHierarchy`] reference — at every slice and thread count.
//!
//! This is the pinned-scenario half of the differential suite; the
//! random-stream half lives in `crates/memsim/tests/fastpath_equiv.rs`.

use m4ps_codec::{EncoderConfig, FrameView, GopStructure, VideoObjectCoder, VideoObjectDecoder};
use m4ps_memsim::{AddressSpace, Hierarchy, MachineSpec, MemModel, NaiveHierarchy, ParallelModel};
use m4ps_vidgen::{Resolution, Scene, SceneSpec};

const FRAMES: usize = 4;

fn test_config(slices: usize) -> EncoderConfig {
    // B-frames on so the fast path is exercised on I, P and B slices.
    EncoderConfig {
        gop: GopStructure {
            intra_period: 3,
            b_frames: 1,
        },
        ..EncoderConfig::fast_test()
    }
    .with_slices(slices)
}

fn encode<M: ParallelModel>(mem: &mut M, slices: usize, threads: usize) -> Vec<u8> {
    let scene = Scene::new(SceneSpec {
        resolution: Resolution::QCIF,
        objects: 0,
        seed: 7,
    });
    let mut space = AddressSpace::new();
    let mut coder = VideoObjectCoder::new(&mut space, 176, 144, test_config(slices)).unwrap();
    coder.set_threads(threads);
    let mut stream = coder.header_bytes();
    for t in 0..FRAMES {
        let f = scene.frame(t);
        let view = FrameView {
            width: 176,
            height: 144,
            y: &f.y,
            u: &f.u,
            v: &f.v,
        };
        for vop in coder.encode_frame(mem, &view, None).unwrap() {
            stream.extend_from_slice(&vop.bytes);
        }
    }
    for vop in coder.flush(mem).unwrap() {
        stream.extend_from_slice(&vop.bytes);
    }
    stream
}

fn decode<M: ParallelModel>(mem: &mut M, stream: &[u8]) -> usize {
    let mut space = AddressSpace::new();
    let mut r = m4ps_bitstream::BitReader::new(stream);
    let mut dec = VideoObjectDecoder::from_stream(&mut space, mem, &mut r).unwrap();
    let mut n = 0;
    while dec.decode_next(mem, &mut r).unwrap().is_some() {
        n += 1;
    }
    n
}

#[track_caller]
fn assert_models_equal(fast: &Hierarchy, naive: &NaiveHierarchy, what: &str) {
    assert_eq!(
        fast.counters(),
        naive.counters(),
        "{what}: Counters diverged"
    );
    assert_eq!(
        fast.dram().bytes_read(),
        naive.dram().bytes_read(),
        "{what}: DRAM reads diverged"
    );
    assert_eq!(
        fast.dram().bytes_written(),
        naive.dram().bytes_written(),
        "{what}: DRAM writes diverged"
    );
    assert_eq!(
        fast.region_misses(),
        naive.region_misses(),
        "{what}: region attribution diverged"
    );
}

/// Full encodes under both models across slice/thread schedules: the
/// bitstream must be byte-identical and every counter bit-identical.
#[test]
fn encode_is_bit_identical_under_fast_and_naive_models() {
    let mut reference_stream: Option<Vec<u8>> = None;
    for (slices, threads) in [(1, 1), (4, 1), (4, 4), (9, 3)] {
        let mut fast = Hierarchy::new(MachineSpec::o2());
        let mut naive = NaiveHierarchy::new(MachineSpec::o2());
        let fast_stream = encode(&mut fast, slices, threads);
        let naive_stream = encode(&mut naive, slices, threads);
        assert_eq!(
            fast_stream, naive_stream,
            "bitstream diverged at {slices} slices / {threads} threads"
        );
        assert_models_equal(
            &fast,
            &naive,
            &format!("encode {slices} slices / {threads} threads"),
        );
        assert!(fast.counters().loads > 0);
        // The model must also never influence WHAT is coded: all
        // schedules and both models emit one canonical stream per
        // slice count, and slices=4 runs share theirs.
        if slices == 4 {
            match &reference_stream {
                Some(r) => assert_eq!(&fast_stream, r),
                None => reference_stream = Some(fast_stream),
            }
        }
    }
}

/// Decode differential: replaying the same stream through both models
/// charges identical counters.
#[test]
fn decode_is_counter_identical_under_fast_and_naive_models() {
    let stream = encode(&mut m4ps_memsim::NullModel::new(), 4, 1);
    let mut fast = Hierarchy::new(MachineSpec::o2());
    let mut naive = NaiveHierarchy::new(MachineSpec::o2());
    let n_fast = decode(&mut fast, &stream);
    let n_naive = decode(&mut naive, &stream);
    assert_eq!(n_fast, n_naive);
    assert!(n_fast >= FRAMES);
    assert_models_equal(&fast, &naive, "decode");
    assert!(fast.counters().loads > 0);
}

/// The 8 MB-L2 Onyx2 machine takes different hit/miss paths than the
/// 1 MB O2; the equivalence must hold there too (this is the pair the
/// paper's DRAM-time comparison rests on).
#[test]
fn encode_is_counter_identical_on_onyx2() {
    let mut fast = Hierarchy::new(MachineSpec::onyx2());
    let mut naive = NaiveHierarchy::new(MachineSpec::onyx2());
    let fast_stream = encode(&mut fast, 4, 2);
    let naive_stream = encode(&mut naive, 4, 2);
    assert_eq!(fast_stream, naive_stream);
    assert_models_equal(&fast, &naive, "encode onyx2");
}
