//! Steady-state allocation budget for slice encoding.
//!
//! After the first VOPs have grown the per-slice scratch arenas, a
//! sliced encode must not allocate per macroblock: all block-level
//! buffers are stack arrays or recycled arena state. QCIF is 99
//! macroblocks per frame, so asserting fewer allocations than
//! macroblocks per steady-state frame proves the hot loop is clean
//! while leaving room for the legitimate per-frame/per-slice setup
//! (output `Vec`s, slice bitstream buffers, returned VOP metadata,
//! and — for the wavefront mode — one boxed task per macroblock row).
//!
//! Runs the sweep over both scheduling modes and worker counts on one
//! persistent pool per configuration: after warmup the pool's deques
//! and the coder's scratch are at capacity, so the budget also pins
//! the scheduler's steady state.
//!
//! Lives in its own integration-test binary because it installs a
//! process-wide `#[global_allocator]`.

use m4ps_codec::{EncoderConfig, FrameView, GopStructure, Scheduling, VideoObjectCoder};
use m4ps_memsim::{AddressSpace, NullModel};
use m4ps_testkit::alloc::CountingAlloc;
use m4ps_vidgen::{Resolution, Scene, SceneSpec};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

const MBS_PER_FRAME: u64 = 99; // QCIF: 11 × 9 macroblocks
const WARMUP_FRAMES: usize = 4;
const MEASURED_FRAMES: usize = 8;

fn steady_state_allocs_per_frame(sched: Scheduling, threads: usize) -> u64 {
    let scene = Scene::new(SceneSpec {
        resolution: Resolution::QCIF,
        objects: 0,
        seed: 7,
    });
    // P-only GOP keeps the B-queue from deferring output: every call
    // emits exactly one VOP, so per-frame deltas are comparable.
    let config = EncoderConfig {
        gop: GopStructure {
            intra_period: 1 << 20,
            b_frames: 0,
        },
        ..EncoderConfig::fast_test()
    }
    .with_slices(2);
    // Pre-render frames so scene generation doesn't bill the encoder.
    let frames: Vec<_> = (0..WARMUP_FRAMES + MEASURED_FRAMES)
        .map(|t| scene.frame(t))
        .collect();

    let mut mem = NullModel::new();
    let mut space = AddressSpace::new();
    let mut coder = VideoObjectCoder::new(&mut space, 176, 144, config).unwrap();
    coder.set_threads(threads);
    coder.set_scheduling(sched);

    let encode = |coder: &mut VideoObjectCoder, mem: &mut NullModel, f: &m4ps_vidgen::YuvFrame| {
        let view = FrameView {
            width: 176,
            height: 144,
            y: &f.y,
            u: &f.u,
            v: &f.v,
        };
        coder.encode_frame(mem, &view, None).unwrap();
    };

    for f in &frames[..WARMUP_FRAMES] {
        encode(&mut coder, &mut mem, f);
    }
    let before = ALLOC.allocations();
    for f in &frames[WARMUP_FRAMES..] {
        encode(&mut coder, &mut mem, f);
    }
    (ALLOC.allocations() - before) / MEASURED_FRAMES as u64
}

#[test]
fn steady_state_slice_encode_does_not_allocate_per_macroblock() {
    for (sched, threads) in [
        (Scheduling::SliceParallel, 1),
        (Scheduling::SliceParallel, 2),
        (Scheduling::Wavefront, 1),
        (Scheduling::Wavefront, 2),
    ] {
        let per_frame = steady_state_allocs_per_frame(sched, threads);
        assert!(
            per_frame < MBS_PER_FRAME,
            "steady-state {sched:?} encode at {threads} threads allocates \
             {per_frame} times per frame (>= {MBS_PER_FRAME} macroblocks) — \
             a per-macroblock allocation is back"
        );
    }
}
