//! Parallel encoding invariants: the thread count AND the scheduling
//! mode (coarse slice jobs vs wavefront macroblock-row chains) are
//! pure scheduling knobs. For a fixed slice count the bitstream must
//! be byte-identical and the merged memory-model counters identical no
//! matter how many workers ran the slices or how the rows were cut
//! into tasks — and sliced streams must still decode drift-free.

use m4ps_codec::{
    EncoderConfig, FrameView, GopStructure, Scheduling, VideoObjectCoder, VideoObjectDecoder,
};
use m4ps_memsim::{AddressSpace, Counters, Hierarchy, MachineSpec, MemModel, NullModel};
use m4ps_testkit::prop::{self, Config};
use m4ps_vidgen::{Resolution, Scene, SceneSpec};

const FRAMES: usize = 5;

fn test_config(slices: usize, b_frames: usize) -> EncoderConfig {
    // B-frames on so the parallel path covers I, P and B slices (and
    // the fixed-QP pipelined B-drain when `b_frames > 0`).
    EncoderConfig {
        gop: GopStructure {
            intra_period: 4,
            b_frames,
        },
        ..EncoderConfig::fast_test()
    }
    .with_slices(slices)
}

/// Encodes the reference scene and returns the full elementary stream
/// plus (optionally) every reconstruction produced along the way.
fn encode_stream<M: m4ps_memsim::ParallelModel>(
    mem: &mut M,
    slices: usize,
    threads: usize,
    keep_recon: bool,
) -> (Vec<u8>, Vec<Vec<u8>>) {
    encode_scene(
        mem,
        7,
        slices,
        1,
        threads,
        Scheduling::Wavefront,
        keep_recon,
    )
}

/// Like [`encode_stream`] but over an arbitrary scene seed, B-queue
/// depth and scheduling mode.
#[allow(clippy::too_many_arguments)]
fn encode_scene<M: m4ps_memsim::ParallelModel>(
    mem: &mut M,
    scene_seed: u64,
    slices: usize,
    b_frames: usize,
    threads: usize,
    sched: Scheduling,
    keep_recon: bool,
) -> (Vec<u8>, Vec<Vec<u8>>) {
    let scene = Scene::new(SceneSpec {
        resolution: Resolution::QCIF,
        objects: 0,
        seed: scene_seed,
    });
    let mut space = AddressSpace::new();
    let mut coder =
        VideoObjectCoder::new(&mut space, 176, 144, test_config(slices, b_frames)).unwrap();
    coder.set_threads(threads);
    coder.set_scheduling(sched);
    coder.set_keep_recon(keep_recon);
    let mut stream = coder.header_bytes();
    let mut recons = Vec::new();
    let mut push = |vops: Vec<m4ps_codec::EncodedVop>, stream: &mut Vec<u8>| {
        for vop in vops {
            stream.extend_from_slice(&vop.bytes);
            if let Some(r) = vop.recon {
                recons.push(r.y);
            }
        }
    };
    for t in 0..FRAMES {
        let f = scene.frame(t);
        let view = FrameView {
            width: 176,
            height: 144,
            y: &f.y,
            u: &f.u,
            v: &f.v,
        };
        let vops = coder.encode_frame(mem, &view, None).unwrap();
        push(vops, &mut stream);
    }
    let vops = coder.flush(mem).unwrap();
    push(vops, &mut stream);
    (stream, recons)
}

#[test]
fn bitstream_is_identical_for_any_thread_count() {
    let mut mem = NullModel::new();
    let (reference, _) = encode_stream(&mut mem, 4, 1, false);
    for threads in [2, 4, 7] {
        let (stream, _) = encode_stream(&mut mem, 4, threads, false);
        assert_eq!(
            stream, reference,
            "{threads}-thread stream differs from the single-threaded one"
        );
    }
}

#[test]
fn bitstream_is_identical_across_scheduling_modes() {
    // Wavefront cuts each slice into one task per macroblock row;
    // slice-parallel runs it as one coarse job. Same bytes either way,
    // at any worker count.
    let mut mem = NullModel::new();
    let (reference, _) = encode_scene(&mut mem, 7, 4, 1, 1, Scheduling::SliceParallel, false);
    for threads in [1, 3, 4] {
        for sched in [Scheduling::SliceParallel, Scheduling::Wavefront] {
            let (stream, _) = encode_scene(&mut mem, 7, 4, 1, threads, sched, false);
            assert_eq!(
                stream, reference,
                "{sched:?} at {threads} threads differs from sequential slice-parallel"
            );
        }
    }
}

#[test]
fn merged_counters_are_identical_for_any_thread_count() {
    let run = |threads: usize| -> Counters {
        let mut mem = Hierarchy::new(MachineSpec::o2());
        encode_stream(&mut mem, 4, threads, false);
        *mem.counters()
    };
    let reference = run(1);
    assert!(reference.loads > 0);
    for threads in [2, 4] {
        assert_eq!(
            run(threads),
            reference,
            "{threads}-thread counters differ from the single-threaded ones"
        );
    }
}

#[test]
fn sliced_stream_decodes_drift_free() {
    let mut mem = NullModel::new();
    let (stream, enc_recons) = encode_stream(&mut mem, 4, 4, true);
    assert!(!enc_recons.is_empty());

    let mut space = AddressSpace::new();
    let mut r = m4ps_bitstream::BitReader::new(&stream);
    let mut dec = VideoObjectDecoder::from_stream(&mut space, &mut mem, &mut r).unwrap();
    dec.set_keep_output(true);
    let mut decoded = Vec::new();
    while let Some(vop) = dec.decode_next(&mut mem, &mut r).unwrap() {
        decoded.push(vop.planes.unwrap().y);
    }
    assert_eq!(decoded.len(), enc_recons.len());
    for (i, (d, e)) in decoded.iter().zip(&enc_recons).enumerate() {
        assert_eq!(d, e, "decoder drift on VOP {i}");
    }
}

#[test]
fn slice_count_is_a_bitstream_parameter() {
    // Unlike the thread count, the slice count changes what is coded.
    let mut mem = NullModel::new();
    let (sliced, _) = encode_stream(&mut mem, 4, 1, false);
    let (unsliced, _) = encode_stream(&mut mem, 1, 1, false);
    assert_ne!(sliced, unsliced);
}

#[test]
fn random_scenes_encode_identically_for_any_schedule() {
    // Property: for ANY scene, slice count, B-queue depth, thread
    // count and scheduling mode, the parallel encode produces exactly
    // the bitstream and merged counters of the sequential (threads =
    // 1, coarse slice jobs) encode at the SAME slice count and GOP.
    // Randomizing all of them covers uneven slice partitions,
    // more-threads-than-slices schedules, the pipelined fixed-QP
    // B-drain and the wavefront row chains the pinned tests above
    // don't reach.
    prop::check(
        "parallel_encode_determinism",
        &Config::with_cases(5),
        |rng| {
            (
                rng.gen_range(0u64..1 << 32),
                rng.gen_range(1..=10usize),
                rng.gen_range(0..=2usize),
                rng.gen_range(2..=8usize),
            )
        },
        |&(scene_seed, slices, b_frames, threads)| {
            let run = |threads: usize, sched: Scheduling| {
                let mut mem = Hierarchy::new(MachineSpec::o2());
                let (stream, _) = encode_scene(
                    &mut mem, scene_seed, slices, b_frames, threads, sched, false,
                );
                (stream, *mem.counters())
            };
            let (seq_stream, seq_counters) = run(1, Scheduling::SliceParallel);
            for sched in [Scheduling::SliceParallel, Scheduling::Wavefront] {
                let (par_stream, par_counters) = run(threads, sched);
                if par_stream != seq_stream {
                    return Err(format!(
                        "bitstream differs: {slices} slices, {b_frames} B, \
                         {threads} threads, {sched:?}"
                    ));
                }
                if par_counters != seq_counters {
                    return Err(format!(
                        "merged counters differ: {slices} slices, {b_frames} B, \
                         {threads} threads, {sched:?}"
                    ));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn slices_beyond_rows_are_clamped_and_still_roundtrip() {
    // QCIF has 9 macroblock rows; asking for 64 slices must clamp to 9
    // and still produce a decodable stream.
    let mut mem = NullModel::new();
    let (stream, enc_recons) = encode_stream(&mut mem, 64, 3, true);
    let mut space = AddressSpace::new();
    let mut r = m4ps_bitstream::BitReader::new(&stream);
    let mut dec = VideoObjectDecoder::from_stream(&mut space, &mut mem, &mut r).unwrap();
    dec.set_keep_output(true);
    let mut n = 0;
    while let Some(vop) = dec.decode_next(&mut mem, &mut r).unwrap() {
        assert_eq!(vop.planes.unwrap().y, enc_recons[n]);
        n += 1;
    }
    assert_eq!(n, enc_recons.len());
}
