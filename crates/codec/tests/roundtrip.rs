//! End-to-end encoder/decoder agreement tests.
//!
//! The fundamental MPEG invariant: the decoder's reconstruction is
//! bit-identical to the encoder's local reconstruction (otherwise P/B
//! prediction drifts). These tests exercise it across GOP structures,
//! shapes, layers and content.

use m4ps_bitstream::BitReader;
use m4ps_codec::{
    EncoderConfig, FrameView, GopStructure, SceneDecoder, SceneEncoder, SearchStrategy,
    VideoObjectCoder, VideoObjectDecoder, VopKind,
};
use m4ps_memsim::{AddressSpace, NullModel};
use m4ps_vidgen::{Resolution, Scene, SceneSpec, YuvFrame};

fn view(f: &YuvFrame) -> FrameView<'_> {
    FrameView {
        width: f.resolution.width,
        height: f.resolution.height,
        y: &f.y,
        u: &f.u,
        v: &f.v,
    }
}

fn psnr(a: &[u8], b: &[u8]) -> f64 {
    assert_eq!(a.len(), b.len());
    let mse: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum::<f64>()
        / a.len() as f64;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0 * 255.0 / mse).log10()
    }
}

/// Encodes `frames` frames of a scene and checks decoder reconstructions
/// match the encoder's bit-exactly, returning (source, decoded) luma
/// pairs in display order.
fn roundtrip_rect(config: EncoderConfig, frames: usize, seed: u64) -> Vec<(Vec<u8>, Vec<u8>)> {
    let res = Resolution::QCIF;
    let scene = Scene::new(SceneSpec {
        resolution: res,
        objects: 1,
        seed,
    });
    let mut space = AddressSpace::new();
    let mut mem = NullModel::new();
    let mut coder = VideoObjectCoder::new(&mut space, res.width, res.height, config).unwrap();
    coder.set_keep_recon(true);

    let mut stream = coder.header_bytes();
    let mut encoded = Vec::new();
    let mut sources = Vec::new();
    for t in 0..frames {
        let f = scene.frame(t);
        sources.push(f.y.clone());
        for vop in coder.encode_frame(&mut mem, &view(&f), None).unwrap() {
            stream.extend_from_slice(&vop.bytes);
            encoded.push(vop);
        }
    }
    for vop in coder.flush(&mut mem).unwrap() {
        stream.extend_from_slice(&vop.bytes);
        encoded.push(vop);
    }
    assert_eq!(encoded.len(), frames);

    let mut r = BitReader::new(&stream);
    let mut dspace = AddressSpace::new();
    let mut decoder = VideoObjectDecoder::from_stream(&mut dspace, &mut mem, &mut r).unwrap();
    decoder.set_keep_output(true);
    let mut decoded = Vec::new();
    while let Some(vop) = decoder.decode_next(&mut mem, &mut r).unwrap() {
        decoded.push(vop);
    }
    assert_eq!(decoded.len(), encoded.len());

    // Coding order must match, and reconstructions must agree exactly.
    for (e, d) in encoded.iter().zip(decoded.iter()) {
        assert_eq!(e.display_index, d.display_index);
        assert_eq!(e.kind, d.kind);
        assert_eq!(e.qp, d.qp);
        let er = e.recon.as_ref().unwrap();
        let dr = d.planes.as_ref().unwrap();
        assert_eq!(er.y, dr.y, "luma drift at display {}", e.display_index);
        assert_eq!(er.u, dr.u, "cb drift at display {}", e.display_index);
        assert_eq!(er.v, dr.v, "cr drift at display {}", e.display_index);
    }

    let mut by_display: Vec<(usize, Vec<u8>)> = decoded
        .into_iter()
        .map(|d| (d.display_index, d.planes.unwrap().y))
        .collect();
    by_display.sort_by_key(|(i, _)| *i);
    sources
        .into_iter()
        .zip(by_display.into_iter().map(|(_, y)| y))
        .collect()
}

#[test]
fn ipp_roundtrip_is_drift_free_and_faithful() {
    let pairs = roundtrip_rect(EncoderConfig::fast_test(), 6, 11);
    for (i, (src, dec)) in pairs.iter().enumerate() {
        let p = psnr(src, dec);
        assert!(p > 30.0, "frame {i}: luma PSNR {p:.1} dB too low");
    }
}

#[test]
fn ibbp_roundtrip_is_drift_free() {
    let mut config = EncoderConfig::fast_test();
    config.gop = GopStructure {
        intra_period: 6,
        b_frames: 2,
    };
    config.half_pel = true;
    let pairs = roundtrip_rect(config, 8, 23);
    for (i, (src, dec)) in pairs.iter().enumerate() {
        let p = psnr(src, dec);
        assert!(p > 28.0, "frame {i}: luma PSNR {p:.1} dB too low");
    }
}

#[test]
fn full_search_half_pel_roundtrip() {
    let mut config = EncoderConfig::fast_test();
    config.search = SearchStrategy::FullSearch;
    config.search_range = 6;
    config.half_pel = true;
    let pairs = roundtrip_rect(config, 4, 7);
    assert!(psnr(&pairs[3].0, &pairs[3].1) > 30.0);
}

#[test]
fn vop_kinds_follow_gop_structure() {
    let res = Resolution::QCIF;
    let scene = Scene::new(SceneSpec {
        resolution: res,
        objects: 0,
        seed: 3,
    });
    let mut config = EncoderConfig::fast_test();
    config.gop = GopStructure {
        intra_period: 6,
        b_frames: 2,
    };
    let mut space = AddressSpace::new();
    let mut mem = NullModel::new();
    let mut coder = VideoObjectCoder::new(&mut space, res.width, res.height, config).unwrap();
    let mut encoded = Vec::new();
    for t in 0..7 {
        let f = scene.frame(t);
        encoded.extend(coder.encode_frame(&mut mem, &view(&f), None).unwrap());
    }
    encoded.extend(coder.flush(&mut mem).unwrap());
    // Display kinds: 0:I 1:B 2:B 3:P 4:B 5:B 6:I → coding order
    // 0(I), 3(P), 1(B), 2(B), 6(I), 4(B), 5(B)... flush turns trailing
    // queued Bs (4, 5) into P-VOPs *after* 6 arrives? No: 6 is an anchor,
    // so 4 and 5 are drained as B right after it.
    let order: Vec<(usize, VopKind)> = encoded.iter().map(|e| (e.display_index, e.kind)).collect();
    assert_eq!(
        order,
        vec![
            (0, VopKind::I),
            (3, VopKind::P),
            (1, VopKind::B),
            (2, VopKind::B),
            (6, VopKind::I),
            (4, VopKind::B),
            (5, VopKind::B),
        ]
    );
}

#[test]
fn flush_encodes_trailing_bs_as_p() {
    let res = Resolution::QCIF;
    let scene = Scene::new(SceneSpec {
        resolution: res,
        objects: 0,
        seed: 3,
    });
    let mut config = EncoderConfig::fast_test();
    config.gop = GopStructure {
        intra_period: 9,
        b_frames: 2,
    };
    let mut space = AddressSpace::new();
    let mut mem = NullModel::new();
    let mut coder = VideoObjectCoder::new(&mut space, res.width, res.height, config).unwrap();
    let mut encoded = Vec::new();
    for t in 0..5 {
        let f = scene.frame(t);
        encoded.extend(coder.encode_frame(&mut mem, &view(&f), None).unwrap());
    }
    // Frames 4 is queued as B (anchors at 0, 3).
    assert_eq!(encoded.len(), 4);
    let tail = coder.flush(&mut mem).unwrap();
    assert_eq!(tail.len(), 1);
    assert_eq!(tail[0].kind, VopKind::P);
    assert_eq!(tail[0].display_index, 4);
}

#[test]
fn shaped_single_vo_roundtrip() {
    let res = Resolution::QCIF;
    let scene = Scene::new(SceneSpec {
        resolution: res,
        objects: 1,
        seed: 5,
    });
    let mut space = AddressSpace::new();
    let mut mem = NullModel::new();
    let mut enc = SceneEncoder::new(
        &mut space,
        res.width,
        res.height,
        1,
        1,
        EncoderConfig::fast_test(),
    )
    .unwrap();
    let mut masks_per_frame = Vec::new();
    for t in 0..4 {
        let f = scene.frame(t);
        let m = scene.alpha(t, 0);
        enc.encode_frame(&mut mem, &view(&f), &[&m.data]).unwrap();
        masks_per_frame.push(m.data);
    }
    let streams = enc.finish(&mut mem).unwrap();
    assert_eq!(streams.len(), 1);

    let mut dspace = AddressSpace::new();
    let mut dec = SceneDecoder::new(&mut dspace, &mut mem, &streams, 1).unwrap();
    dec.set_keep_output(true);
    let vops = dec.decode_all(&mut mem, &streams).unwrap();
    assert_eq!(vops.len(), 4);

    // Shape coding is lossless: decoded alpha equals the source mask.
    let mut by_display: Vec<_> = vops.iter().collect();
    by_display.sort_by_key(|v| v.display_index);
    for (t, vop) in by_display.iter().enumerate() {
        let alpha = vop.alpha.as_ref().expect("shaped layer carries alpha");
        assert_eq!(alpha, &masks_per_frame[t], "alpha mismatch at frame {t}");
    }

    // Inside the mask, the decoded texture must be faithful.
    for (t, vop) in by_display.iter().enumerate() {
        let src = scene.frame(t);
        let dec_y = &vop.planes.as_ref().unwrap().y;
        let mask = &masks_per_frame[t];
        let inside: Vec<(u8, u8)> = src
            .y
            .iter()
            .zip(dec_y.iter())
            .zip(mask.iter())
            .filter(|(_, &m)| m != 0)
            .map(|((&a, &b), _)| (a, b))
            .collect();
        assert!(!inside.is_empty());
        let mse: f64 = inside
            .iter()
            .map(|&(a, b)| {
                let d = f64::from(a) - f64::from(b);
                d * d
            })
            .sum::<f64>()
            / inside.len() as f64;
        let p = 10.0 * (255.0 * 255.0 / mse.max(1e-9)).log10();
        assert!(p > 28.0, "frame {t}: object PSNR {p:.1} dB");
    }
}

#[test]
fn three_vo_scene_composes_faithfully() {
    let res = Resolution::QCIF;
    let scene = Scene::new(SceneSpec {
        resolution: res,
        objects: 3,
        seed: 9,
    });
    let mut space = AddressSpace::new();
    let mut mem = NullModel::new();
    let mut enc = SceneEncoder::new(
        &mut space,
        res.width,
        res.height,
        3,
        1,
        EncoderConfig::fast_test(),
    )
    .unwrap();
    for t in 0..3 {
        let f = scene.frame(t);
        let m0 = scene.alpha(t, 0);
        let m1 = scene.alpha(t, 1);
        let m2 = scene.alpha(t, 2);
        enc.encode_frame(&mut mem, &view(&f), &[&m0.data, &m1.data, &m2.data])
            .unwrap();
    }
    let stats = enc.stats();
    assert_eq!(stats.frames, 3);
    assert_eq!(stats.vops, 9);
    let streams = enc.finish(&mut mem).unwrap();
    assert_eq!(streams.len(), 3);

    let mut dspace = AddressSpace::new();
    let mut dec = SceneDecoder::new(&mut dspace, &mut mem, &streams, 1).unwrap();
    let vops = dec.decode_all(&mut mem, &streams).unwrap();
    assert_eq!(vops.len(), 9);

    // The composite's last-painted state covers the union of the final
    // frame's objects; check object-2 pixels of the last frame (painted
    // last) match the source there.
    let composite = dec.composite_luma();
    let src = scene.frame(2);
    let m2 = scene.alpha(2, 2);
    let mut err = 0.0f64;
    let mut n = 0usize;
    for (i, &cv) in composite.iter().enumerate() {
        if m2.data[i] != 0 {
            let d = f64::from(cv) - f64::from(src.y[i]);
            err += d * d;
            n += 1;
        }
    }
    assert!(n > 0);
    let p = 10.0 * (255.0 * 255.0 / (err / n as f64).max(1e-9)).log10();
    assert!(p > 28.0, "composite object PSNR {p:.1} dB");
}

#[test]
fn two_layer_scalability_roundtrip() {
    let res = Resolution::QCIF;
    let scene = Scene::new(SceneSpec {
        resolution: res,
        objects: 1,
        seed: 13,
    });
    let mut space = AddressSpace::new();
    let mut mem = NullModel::new();
    let mut enc = SceneEncoder::new(
        &mut space,
        res.width,
        res.height,
        1,
        2,
        EncoderConfig::fast_test(),
    )
    .unwrap();
    for t in 0..6 {
        let f = scene.frame(t);
        let m = scene.alpha(t, 0);
        enc.encode_frame(&mut mem, &view(&f), &[&m.data]).unwrap();
    }
    let streams = enc.finish(&mut mem).unwrap();
    assert_eq!(streams.len(), 2);
    assert!(!streams[1].is_empty());

    let mut dspace = AddressSpace::new();
    let mut dec = SceneDecoder::new(&mut dspace, &mut mem, &streams, 2).unwrap();
    dec.set_keep_output(true);
    let vops = dec.decode_all(&mut mem, &streams).unwrap();
    assert_eq!(vops.len(), 6);

    // All six display indices present (0,2,4 base; 1,3,5 enhancement).
    let mut indices: Vec<usize> = vops.iter().map(|v| v.display_index).collect();
    indices.sort_unstable();
    assert_eq!(indices, vec![0, 1, 2, 3, 4, 5]);

    // Enhancement frames must be faithful to their sources too.
    for vop in &vops {
        let t = vop.display_index;
        let src = scene.frame(t);
        let mask = scene.alpha(t, 0);
        let dec_y = &vop.planes.as_ref().unwrap().y;
        let mut err = 0.0f64;
        let mut n = 0usize;
        for (i, &dv) in dec_y.iter().enumerate() {
            if mask.data[i] != 0 {
                let d = f64::from(dv) - f64::from(src.y[i]);
                err += d * d;
                n += 1;
            }
        }
        let p = 10.0 * (255.0 * 255.0 / (err / n as f64).max(1e-9)).log10();
        assert!(p > 26.0, "frame {t}: PSNR {p:.1} dB");
    }
}

#[test]
fn rate_control_tracks_target() {
    let res = Resolution::QCIF;
    let scene = Scene::new(SceneSpec {
        resolution: res,
        objects: 2,
        seed: 21,
    });
    let mut config = EncoderConfig::fast_test();
    // A generous budget the coder should stay within a factor ~2 of.
    config.bitrate = Some(400_000);
    config.initial_qp = 20;
    let mut space = AddressSpace::new();
    let mut mem = NullModel::new();
    let mut coder = VideoObjectCoder::new(&mut space, res.width, res.height, config).unwrap();
    let mut bits = 0u64;
    let frames = 12;
    for t in 0..frames {
        let f = scene.frame(t);
        for vop in coder.encode_frame(&mut mem, &view(&f), None).unwrap() {
            bits += vop.stats.bits;
        }
    }
    for vop in coder.flush(&mut mem).unwrap() {
        bits += vop.stats.bits;
    }
    let target = 400_000.0 / 30.0 * frames as f64;
    let ratio = bits as f64 / target;
    assert!(
        (0.3..3.0).contains(&ratio),
        "spent {bits} bits vs target {target:.0} (ratio {ratio:.2})"
    );
}

#[test]
fn corrupt_stream_is_rejected_not_panicking() {
    let res = Resolution::QCIF;
    let scene = Scene::new(SceneSpec {
        resolution: res,
        objects: 0,
        seed: 2,
    });
    let mut space = AddressSpace::new();
    let mut mem = NullModel::new();
    let mut coder = VideoObjectCoder::new(
        &mut space,
        res.width,
        res.height,
        EncoderConfig::fast_test(),
    )
    .unwrap();
    let mut stream = coder.header_bytes();
    let f = scene.frame(0);
    for vop in coder.encode_frame(&mut mem, &view(&f), None).unwrap() {
        stream.extend_from_slice(&vop.bytes);
    }
    // Truncate mid-VOP.
    stream.truncate(stream.len() / 2);
    let mut r = BitReader::new(&stream);
    let mut dspace = AddressSpace::new();
    let mut decoder = VideoObjectDecoder::from_stream(&mut dspace, &mut mem, &mut r).unwrap();
    match decoder.decode_next(&mut mem, &mut r) {
        Ok(None) | Err(_) => {} // either rejection or clean EOF is fine
        Ok(Some(_)) => panic!("decoded a VOP from a truncated stream"),
    }
}

#[test]
fn four_mv_roundtrip_is_drift_free() {
    let mut config = EncoderConfig::fast_test();
    config.four_mv = true;
    config.half_pel = true;
    config.search = SearchStrategy::FullSearch;
    config.search_range = 6;
    let pairs = roundtrip_rect(config, 6, 41);
    for (i, (src, dec)) in pairs.iter().enumerate() {
        let p = psnr(src, dec);
        assert!(p > 28.0, "frame {i}: luma PSNR {p:.1} dB too low");
    }
}

#[test]
fn four_mv_actually_selects_the_mode_on_divergent_motion() {
    // Two objects moving in different directions force quadrant-level
    // motion divergence inside macroblocks on their boundary.
    let res = Resolution::QCIF;
    let scene = Scene::new(SceneSpec {
        resolution: res,
        objects: 3,
        seed: 17,
    });
    let run = |four_mv: bool| -> (u64, u32) {
        let mut config = EncoderConfig::fast_test();
        config.four_mv = four_mv;
        config.search = SearchStrategy::FullSearch;
        config.search_range = 6;
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        let mut coder = VideoObjectCoder::new(&mut space, res.width, res.height, config).unwrap();
        let mut bits = 0u64;
        let mut sad_sum = 0u32;
        for t in 0..4 {
            let f = scene.frame(t);
            for vop in coder.encode_frame(&mut mem, &view(&f), None).unwrap() {
                bits += vop.stats.bits;
                sad_sum += 1;
            }
        }
        (bits, sad_sum)
    };
    let (bits_1mv, n1) = run(false);
    let (bits_4mv, n4) = run(true);
    assert_eq!(n1, n4);
    // 4MV must not explode the bitstream (it only fires when it wins),
    // and both must decode; the drift-free test above covers decoding.
    assert!(
        (bits_4mv as f64) < bits_1mv as f64 * 1.15,
        "4MV grew the stream: {bits_4mv} vs {bits_1mv}"
    );
}
