//! Cross-tier invariant: the SIMD kernel tier is a pure *speed* knob.
//! For every tier the CPU supports, the encoded bitstream, the decoded
//! reconstructions and every field of the merged memsim [`Counters`]
//! must be bit-identical to the scalar tier, across slice counts,
//! thread counts and both scheduling modes.
//!
//! One `#[test]` drives the whole sweep: [`m4ps_dsp::force_tier`] swaps
//! process-global state, so concurrent tests inside this binary would
//! race. CI additionally re-runs the full codec suite with each tier
//! forced via `M4PS_KERNELS` (the subprocess path).

use m4ps_codec::{EncoderConfig, FrameView, GopStructure, Scheduling, VideoObjectCoder};
use m4ps_dsp::{force_tier, supported_tiers, KernelTier};
use m4ps_memsim::{AddressSpace, Counters, Hierarchy, MachineSpec, MemModel};
use m4ps_vidgen::{Resolution, Scene, SceneSpec};

const FRAMES: usize = 4;

fn encode(slices: usize, threads: usize, sched: Scheduling) -> (Vec<u8>, Vec<Vec<u8>>, Counters) {
    let scene = Scene::new(SceneSpec {
        resolution: Resolution::QCIF,
        objects: 0,
        seed: 11,
    });
    let config = EncoderConfig {
        gop: GopStructure {
            intra_period: 3,
            b_frames: 1,
        },
        ..EncoderConfig::fast_test()
    }
    .with_slices(slices);
    let mut mem = Hierarchy::new(MachineSpec::o2());
    let mut space = AddressSpace::new();
    let mut coder = VideoObjectCoder::new(&mut space, 176, 144, config).unwrap();
    coder.set_threads(threads);
    coder.set_scheduling(sched);
    coder.set_keep_recon(true);
    let mut stream = coder.header_bytes();
    let mut recons = Vec::new();
    let mut push = |vops: Vec<m4ps_codec::EncodedVop>, stream: &mut Vec<u8>| {
        for vop in vops {
            stream.extend_from_slice(&vop.bytes);
            if let Some(r) = vop.recon {
                recons.push(r.y);
            }
        }
    };
    for t in 0..FRAMES {
        let f = scene.frame(t);
        let view = FrameView {
            width: 176,
            height: 144,
            y: &f.y,
            u: &f.u,
            v: &f.v,
        };
        let vops = coder.encode_frame(&mut mem, &view, None).unwrap();
        push(vops, &mut stream);
    }
    let vops = coder.flush(&mut mem).unwrap();
    push(vops, &mut stream);
    (stream, recons, *mem.counters())
}

fn decode(stream: &[u8]) -> (Vec<Vec<u8>>, Counters) {
    let mut mem = Hierarchy::new(MachineSpec::o2());
    let mut space = AddressSpace::new();
    let mut r = m4ps_bitstream::BitReader::new(stream);
    let mut dec =
        m4ps_codec::VideoObjectDecoder::from_stream(&mut space, &mut mem, &mut r).unwrap();
    dec.set_keep_output(true);
    let mut planes = Vec::new();
    while let Some(vop) = dec.decode_next(&mut mem, &mut r).unwrap() {
        planes.push(vop.planes.unwrap().y);
    }
    (planes, *mem.counters())
}

#[test]
fn every_tier_is_bit_identical_to_scalar() {
    let original = m4ps_dsp::active_tier();
    let tiers = supported_tiers();

    // Scalar reference for each (slices, threads, sched) point.
    force_tier(KernelTier::Scalar);
    let grid = [
        (1usize, 1usize, Scheduling::SliceParallel),
        (4, 1, Scheduling::SliceParallel),
        (4, 2, Scheduling::SliceParallel),
        (4, 2, Scheduling::Wavefront),
        (3, 4, Scheduling::Wavefront),
    ];
    let reference: Vec<_> = grid.iter().map(|&(s, t, m)| encode(s, t, m)).collect();
    assert!(reference[0].2.loads > 0);
    let (ref_dec, ref_dec_counters) = decode(&reference[1].0);
    assert_eq!(ref_dec, reference[1].1, "scalar decode drifts from encode");

    for &tier in &tiers {
        force_tier(tier);
        for (&(slices, threads, sched), want) in grid.iter().zip(&reference) {
            let (stream, recons, counters) = encode(slices, threads, sched);
            assert_eq!(
                stream,
                want.0,
                "bitstream differs: tier {} slices {slices} threads {threads} {sched:?}",
                tier.name()
            );
            assert_eq!(
                recons,
                want.1,
                "reconstructions differ: tier {} slices {slices} threads {threads} {sched:?}",
                tier.name()
            );
            assert_eq!(
                counters,
                want.2,
                "memsim counters differ: tier {} slices {slices} threads {threads} {sched:?}",
                tier.name()
            );
        }
        let (dec_planes, dec_counters) = decode(&reference[1].0);
        assert_eq!(
            dec_planes,
            ref_dec,
            "decoded planes differ: tier {}",
            tier.name()
        );
        assert_eq!(
            dec_counters,
            ref_dec_counters,
            "decode counters differ: tier {}",
            tier.name()
        );
    }
    force_tier(original);
}
