//! Parallel decoding invariants: the decoder's thread count AND
//! scheduling mode are pure scheduling knobs, exactly as on the encode
//! side. For any multi-slice stream, the slice-parallel decoder must
//! produce bit-identical reconstructions and identical merged
//! memory-model counters no matter how many workers ran the slices or
//! how the rows were cut into tasks — and it must never fall back to
//! the sequential path on a clean stream.

use m4ps_codec::{
    EncoderConfig, FrameView, GopStructure, Scheduling, VideoObjectCoder, VideoObjectDecoder,
};
use m4ps_memsim::{
    AddressSpace, Counters, Hierarchy, MachineSpec, MemModel, NullModel, ParallelModel,
};
use m4ps_testkit::prop::{self, Config};
use m4ps_vidgen::{Resolution, Scene, SceneSpec};

const FRAMES: usize = 5;

fn test_config(slices: usize, b_frames: usize) -> EncoderConfig {
    EncoderConfig {
        gop: GopStructure {
            intra_period: 4,
            b_frames,
        },
        ..EncoderConfig::fast_test()
    }
    .with_slices(slices)
}

/// Encodes a QCIF scene sequentially and returns the elementary stream.
fn encode_stream<M: ParallelModel>(
    mem: &mut M,
    scene_seed: u64,
    slices: usize,
    b_frames: usize,
) -> Vec<u8> {
    let scene = Scene::new(SceneSpec {
        resolution: Resolution::QCIF,
        objects: 0,
        seed: scene_seed,
    });
    let mut space = AddressSpace::new();
    let mut coder =
        VideoObjectCoder::new(&mut space, 176, 144, test_config(slices, b_frames)).unwrap();
    let mut stream = coder.header_bytes();
    for t in 0..FRAMES {
        let f = scene.frame(t);
        let view = FrameView {
            width: 176,
            height: 144,
            y: &f.y,
            u: &f.u,
            v: &f.v,
        };
        for vop in coder.encode_frame(mem, &view, None).unwrap() {
            stream.extend_from_slice(&vop.bytes);
        }
    }
    for vop in coder.flush(mem).unwrap() {
        stream.extend_from_slice(&vop.bytes);
    }
    stream
}

type Planes = Vec<(Vec<u8>, Vec<u8>, Vec<u8>)>;

/// Reconstruction planes of every VOP, plus the decoder's fallback
/// count, for one full decode of `stream` at the given schedule.
fn decode_planes<M: ParallelModel>(
    mem: &mut M,
    stream: &[u8],
    threads: usize,
    sched: Scheduling,
) -> (Planes, u64) {
    let mut space = AddressSpace::new();
    let mut r = m4ps_bitstream::BitReader::new(stream);
    let mut dec = VideoObjectDecoder::from_stream(&mut space, mem, &mut r).unwrap();
    dec.set_threads(threads);
    dec.set_scheduling(sched);
    dec.set_keep_output(true);
    let mut out = Vec::new();
    while let Some(vop) = dec.decode_next(mem, &mut r).unwrap() {
        let p = vop.planes.unwrap();
        out.push((p.y, p.u, p.v));
    }
    (out, dec.parallel_fallbacks())
}

#[test]
fn parallel_decode_matches_sequential_reconstruction() {
    let mut mem = NullModel::new();
    let stream = encode_stream(&mut mem, 7, 4, 1);
    let (reference, _) = decode_planes(&mut mem, &stream, 0, Scheduling::SliceParallel);
    assert_eq!(reference.len(), FRAMES);
    for threads in [1, 2, 4, 7] {
        let (planes, fallbacks) =
            decode_planes(&mut mem, &stream, threads, Scheduling::SliceParallel);
        assert_eq!(fallbacks, 0, "clean stream fell back at {threads} threads");
        assert_eq!(
            planes, reference,
            "{threads}-thread reconstruction differs from sequential"
        );
    }
}

#[test]
fn parallel_decode_matches_across_scheduling_modes() {
    // Wavefront cuts each decode slice into one task per macroblock
    // row; slice-parallel runs it as one coarse job. Same planes and
    // counters either way, at any worker count.
    let mut mem = NullModel::new();
    let stream = encode_stream(&mut mem, 11, 3, 2);
    let (reference, _) = decode_planes(&mut mem, &stream, 0, Scheduling::SliceParallel);
    for threads in [1, 3, 4] {
        for sched in [Scheduling::SliceParallel, Scheduling::Wavefront] {
            let (planes, fallbacks) = decode_planes(&mut mem, &stream, threads, sched);
            assert_eq!(fallbacks, 0);
            assert_eq!(
                planes, reference,
                "{sched:?} at {threads} threads differs from sequential"
            );
        }
    }
}

#[test]
fn merged_counters_are_identical_for_any_thread_count() {
    // The single-worker run IS the sequential reference for counters:
    // exactly as in `parallel.rs`, the slice construction (forks,
    // per-slice charge windows) is fixed by the slice count, so the
    // worker count only reorders work between threads. (The legacy
    // no-pool path charges stream bytes through one continuous window
    // — a different, also-deterministic counter stream.)
    let mut enc_mem = NullModel::new();
    let stream = encode_stream(&mut enc_mem, 7, 4, 1);
    let run = |threads: usize| -> Counters {
        let mut mem = Hierarchy::new(MachineSpec::o2());
        let (_, fallbacks) = decode_planes(&mut mem, &stream, threads, Scheduling::SliceParallel);
        assert_eq!(fallbacks, 0);
        *mem.counters()
    };
    let reference = run(1);
    assert!(reference.loads > 0);
    for threads in [2, 4] {
        assert_eq!(
            run(threads),
            reference,
            "{threads}-thread decode counters differ from the single-threaded ones"
        );
    }
}

#[test]
fn single_slice_streams_stay_on_the_sequential_path() {
    // One slice per VOP leaves nothing to parallelize: the dispatcher
    // reports neither a parallel decode nor a fallback, and the result
    // is untouched.
    let mut mem = NullModel::new();
    let stream = encode_stream(&mut mem, 7, 1, 1);
    let (reference, _) = decode_planes(&mut mem, &stream, 0, Scheduling::SliceParallel);
    let (planes, fallbacks) = decode_planes(&mut mem, &stream, 4, Scheduling::SliceParallel);
    assert_eq!(fallbacks, 0);
    assert_eq!(planes, reference);
}

#[test]
fn random_streams_decode_identically_for_any_schedule() {
    // Property: for ANY scene, slice count, B-queue depth, thread
    // count and scheduling mode, the parallel decode produces exactly
    // the reconstructions and merged counters of the sequential decode
    // of the SAME stream — and never falls back on a clean stream with
    // 2+ slices. Randomizing all four covers uneven slice partitions,
    // more-threads-than-slices schedules, B-VOP slices and the
    // wavefront row chains the pinned tests above don't reach.
    prop::check(
        "parallel_decode_determinism",
        &Config::with_cases(5),
        |rng| {
            (
                rng.gen_range(0u64..1 << 32),
                rng.gen_range(2..=10usize),
                rng.gen_range(0..=2usize),
                rng.gen_range(2..=8usize),
            )
        },
        |&(scene_seed, slices, b_frames, threads)| {
            let mut enc_mem = NullModel::new();
            let stream = encode_stream(&mut enc_mem, scene_seed, slices, b_frames);
            let run = |threads: usize, sched: Scheduling| {
                let mut mem = Hierarchy::new(MachineSpec::o2());
                let (planes, fallbacks) = decode_planes(&mut mem, &stream, threads, sched);
                (planes, fallbacks, *mem.counters())
            };
            // Reconstruction must match the legacy no-pool decoder;
            // counters must match the single-worker run of the same
            // slice construction (see the counters test above).
            let (legacy_planes, _, _) = run(0, Scheduling::SliceParallel);
            let (seq_planes, _, seq_counters) = run(1, Scheduling::SliceParallel);
            if seq_planes != legacy_planes {
                return Err(format!(
                    "1-thread reconstruction differs from the no-pool decoder: \
                     {slices} slices, {b_frames} B"
                ));
            }
            for sched in [Scheduling::SliceParallel, Scheduling::Wavefront] {
                let (par_planes, fallbacks, par_counters) = run(threads, sched);
                if fallbacks != 0 {
                    return Err(format!(
                        "clean stream fell back: {slices} slices, {b_frames} B, \
                         {threads} threads, {sched:?}"
                    ));
                }
                if par_planes != seq_planes {
                    return Err(format!(
                        "reconstruction differs: {slices} slices, {b_frames} B, \
                         {threads} threads, {sched:?}"
                    ));
                }
                if par_counters != seq_counters {
                    return Err(format!(
                        "merged counters differ: {slices} slices, {b_frames} B, \
                         {threads} threads, {sched:?}"
                    ));
                }
            }
            Ok(())
        },
    );
}
