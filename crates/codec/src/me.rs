//! Motion estimation.
//!
//! The paper singles this stage out: "Motion estimation detects movement
//! of objects along different video frames, searching for an image block
//! best matching a reference block… MPEG-4 performs this search
//! sequentially over restricted windows inside the image, with an offset
//! between searches of just one pixel. The overlap among streams for
//! searching an image subset yields high locality." The default here is
//! that exhaustive full search with SAD early termination; three-step
//! and diamond searches exist for the ablation benches.

use crate::config::SearchStrategy;
use crate::plane::{TracedPlane, PAD};
use crate::types::MotionVector;
use m4ps_memsim::MemModel;
use m4ps_obs::{span, MetricId, Phase};

/// Per-pixel-row SAD compute cost (16 abs-diff-accumulate triples).
const SAD_ROW_OPS: u64 = 48;

/// Result of a block search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchOutcome {
    /// Winning motion vector in half-pel units.
    pub mv: MotionVector,
    /// SAD of the winning candidate.
    pub sad: u32,
    /// Number of candidates evaluated (including half-pel refinement).
    pub candidates: u32,
}

/// A configured motion-search engine.
#[derive(Debug, Clone, Copy)]
pub struct MotionSearch {
    strategy: SearchStrategy,
    range: i16,
    half_pel: bool,
}

impl MotionSearch {
    /// Creates a search engine.
    ///
    /// # Panics
    ///
    /// Panics if `range` is outside `1..=15` (must stay within the
    /// [`crate::PAD`]-pixel reference border).
    pub fn new(strategy: SearchStrategy, range: i16, half_pel: bool) -> Self {
        assert!((1..=15).contains(&range), "range {range} out of 1..=15");
        MotionSearch {
            strategy,
            range,
            half_pel,
        }
    }

    /// The integer-pel search range.
    pub fn range(&self) -> i16 {
        self.range
    }

    /// SAD between the `size`×`size` current block at `(bx, by)` and the
    /// reference block displaced by integer `(dx, dy)`, with early
    /// termination once the sum exceeds `cutoff`. Charges traced reads
    /// for exactly the rows visited.
    ///
    /// Computes first on the raw surfaces through the fixed-size dsp
    /// kernels, then replays the per-row reference stream (current row,
    /// reference row, row ops) for the rows the cutoff let the kernel
    /// visit — the same interleaved charges the staged row loop issued.
    #[allow(clippy::too_many_arguments)]
    fn sad_candidate_sized<M: MemModel>(
        mem: &mut M,
        cur: &TracedPlane,
        reference: &TracedPlane,
        bx: isize,
        by: isize,
        dx: isize,
        dy: isize,
        cutoff: u32,
        size: usize,
    ) -> u32 {
        let (cdata, cstride) = cur.raw_surface();
        let (rdata, rstride) = reference.raw_surface();
        let p = PAD as isize;
        let (cx, cy) = ((bx + p) as usize, (by + p) as usize);
        let (rx, ry) = ((bx + dx + p) as usize, (by + dy + p) as usize);
        // Every tier's cutoff kernel checks the cutoff after each row,
        // so `rows` — and therefore the charge replay below — is
        // identical whichever tier is dispatched.
        let k = m4ps_dsp::kernels();
        let (acc, rows) = match size {
            16 => (k.sad16_cutoff)(cdata, cstride, cx, cy, rdata, rstride, rx, ry, cutoff),
            8 => (k.sad8_cutoff)(cdata, cstride, cx, cy, rdata, rstride, rx, ry, cutoff),
            _ => unreachable!("unsupported block size {size}"),
        };
        for row in 0..rows as isize {
            cur.touch_row_read(mem, bx, by + row, size);
            reference.touch_row_read(mem, bx + dx, by + dy + row, size);
            mem.add_ops(SAD_ROW_OPS * size as u64 / 16);
        }
        acc
    }

    /// 16×16 candidate SAD (the macroblock search criterion).
    #[allow(clippy::too_many_arguments)]
    fn sad_candidate<M: MemModel>(
        mem: &mut M,
        cur: &TracedPlane,
        reference: &TracedPlane,
        bx: isize,
        by: isize,
        dx: isize,
        dy: isize,
        cutoff: u32,
    ) -> u32 {
        Self::sad_candidate_sized(mem, cur, reference, bx, by, dx, dy, cutoff, 16)
    }

    /// SAD against the half-pel interpolated reference at `(dx, dy)` in
    /// half-pel units, for a `size`×`size` block.
    #[allow(clippy::too_many_arguments)]
    fn sad_half_pel_sized<M: MemModel>(
        mem: &mut M,
        cur: &TracedPlane,
        reference: &TracedPlane,
        bx: isize,
        by: isize,
        mv: MotionVector,
        cutoff: u32,
        size: usize,
    ) -> u32 {
        let (fx, fy) = mv.full_pel();
        let frac_x = mv.x & 1 != 0;
        let frac_y = mv.y & 1 != 0;
        let cols = size + usize::from(frac_x);
        let sx = bx + fx as isize;
        let sy = by + fy as isize;
        let (cdata, cstride) = cur.raw_surface();
        let (rdata, rstride) = reference.raw_surface();
        let p = PAD as isize;
        let (cx, cy) = ((bx + p) as usize, (by + p) as usize);
        let (rx, ry) = ((sx + p) as usize, (sy + p) as usize);
        let k = m4ps_dsp::kernels();
        let (acc, rows) = match size {
            16 => (k.sad16_half_pel)(
                cdata, cstride, cx, cy, rdata, rstride, rx, ry, frac_x, frac_y, cutoff,
            ),
            8 => (k.sad8_half_pel)(
                cdata, cstride, cx, cy, rdata, rstride, rx, ry, frac_x, frac_y, cutoff,
            ),
            _ => unreachable!("unsupported block size {size}"),
        };
        // Replay exactly what the staged two-row loop loaded: with a
        // vertical fraction the first row reads reference rows `sy` and
        // `sy + 1` and every later row only the new bottom row; without
        // one, each row reads its own reference row.
        for row in 0..rows as isize {
            cur.touch_row_read(mem, bx, by + row, size);
            if frac_y {
                if row == 0 {
                    reference.touch_row_read(mem, sx, sy, cols);
                }
                reference.touch_row_read(mem, sx, sy + row + 1, cols);
            } else {
                reference.touch_row_read(mem, sx, sy + row, cols);
            }
            mem.add_ops(SAD_ROW_OPS * 2 * size as u64 / 16);
        }
        acc
    }

    /// 16×16 half-pel SAD.
    #[allow(clippy::too_many_arguments)]
    fn sad_half_pel<M: MemModel>(
        mem: &mut M,
        cur: &TracedPlane,
        reference: &TracedPlane,
        bx: isize,
        by: isize,
        mv: MotionVector,
        cutoff: u32,
    ) -> u32 {
        Self::sad_half_pel_sized(mem, cur, reference, bx, by, mv, cutoff, 16)
    }

    /// Refines one 8×8 block (advanced-prediction / 4MV mode) around the
    /// macroblock-level winner `center`: a ±2 integer-pel search followed
    /// by optional half-pel refinement. `(bx, by)` are the block's pixel
    /// coordinates.
    pub fn refine_block8<M: MemModel>(
        &self,
        mem: &mut M,
        cur: &TracedPlane,
        reference: &TracedPlane,
        bx: isize,
        by: isize,
        center: MotionVector,
    ) -> SearchOutcome {
        span!(mem, Phase::MeSearch, {
            // Keep every candidate inside the padded reference surface.
            let clamp_full = |v: i32| v.clamp(-14, 14) as isize;
            let (cx, cy) = center.full_pel();
            let (cx, cy) = (clamp_full(i32::from(cx)), clamp_full(i32::from(cy)));
            let mut best = (cx, cy);
            let mut best_sad = u32::MAX;
            let mut candidates = 0u32;
            for dy in -2isize..=2 {
                for dx in -2isize..=2 {
                    let (tx, ty) = (clamp_full((cx + dx) as i32), clamp_full((cy + dy) as i32));
                    candidates += 1;
                    let sad =
                        Self::sad_candidate_sized(mem, cur, reference, bx, by, tx, ty, best_sad, 8);
                    if sad < best_sad {
                        best_sad = sad;
                        best = (tx, ty);
                    }
                }
            }
            let mut best_mv = MotionVector::from_full_pel(best.0 as i16, best.1 as i16);
            if self.half_pel {
                span!(mem, Phase::MeHalfPel, {
                    for dy in -1i16..=1 {
                        for dx in -1i16..=1 {
                            if dx == 0 && dy == 0 {
                                continue;
                            }
                            let cand = MotionVector::new(best_mv.x + dx, best_mv.y + dy);
                            if cand.x.abs() > 29 || cand.y.abs() > 29 {
                                continue;
                            }
                            candidates += 1;
                            let sad = Self::sad_half_pel_sized(
                                mem, cur, reference, bx, by, cand, best_sad, 8,
                            );
                            if sad < best_sad {
                                best_sad = sad;
                                best_mv = cand;
                            }
                        }
                    }
                });
            }
            SearchOutcome {
                mv: best_mv,
                sad: best_sad,
                candidates,
            }
        })
    }

    /// Searches the 16×16 block whose top-left is `(mbx·16, mby·16)`,
    /// returning the winning vector in half-pel units.
    pub fn search<M: MemModel>(
        &self,
        mem: &mut M,
        cur: &TracedPlane,
        reference: &TracedPlane,
        mbx: usize,
        mby: usize,
    ) -> SearchOutcome {
        let out = self.search_inner(mem, cur, reference, mbx, mby);
        m4ps_obs::histogram_record(MetricId::MeSadPerSearch, u64::from(out.candidates));
        out
    }

    /// The span-instrumented search body: one `me.search` span per
    /// macroblock with the fractional refinement nested as `me.halfpel`.
    fn search_inner<M: MemModel>(
        &self,
        mem: &mut M,
        cur: &TracedPlane,
        reference: &TracedPlane,
        mbx: usize,
        mby: usize,
    ) -> SearchOutcome {
        let obs_on = m4ps_obs::enabled();
        if obs_on {
            m4ps_obs::enter(Phase::MeSearch, *mem.counters());
        }
        let bx = (mbx * 16) as isize;
        let by = (mby * 16) as isize;
        let mut candidates = 0u32;

        // Seed with the zero vector (the skip candidate).
        let mut best_sad = Self::sad_candidate(mem, cur, reference, bx, by, 0, 0, u32::MAX);
        let mut best = (0isize, 0isize);
        candidates += 1;

        let try_candidate = |mem: &mut M,
                             dx: isize,
                             dy: isize,
                             best: &mut (isize, isize),
                             best_sad: &mut u32,
                             candidates: &mut u32| {
            if dx == 0 && dy == 0 {
                return;
            }
            let r = self.range as isize;
            if dx < -r || dx > r || dy < -r || dy > r {
                return;
            }
            *candidates += 1;
            let sad = Self::sad_candidate(mem, cur, reference, bx, by, dx, dy, *best_sad);
            if sad < *best_sad {
                *best_sad = sad;
                *best = (dx, dy);
            }
        };

        match self.strategy {
            SearchStrategy::FullSearch => {
                let r = self.range as isize;
                // Sequential row-major walk of the restricted window,
                // offset one pixel between candidates (paper §3.2).
                for dy in -r..=r {
                    for dx in -r..=r {
                        try_candidate(mem, dx, dy, &mut best, &mut best_sad, &mut candidates);
                    }
                }
            }
            SearchStrategy::ThreeStep => {
                let mut step = 1isize;
                while step * 2 <= self.range as isize {
                    step *= 2;
                }
                let (mut cx, mut cy) = (0isize, 0isize);
                while step >= 1 {
                    for dy in [-step, 0, step] {
                        for dx in [-step, 0, step] {
                            try_candidate(
                                mem,
                                cx + dx,
                                cy + dy,
                                &mut best,
                                &mut best_sad,
                                &mut candidates,
                            );
                        }
                    }
                    (cx, cy) = best;
                    step /= 2;
                }
            }
            SearchStrategy::Diamond => {
                const LDSP: [(isize, isize); 8] = [
                    (0, -2),
                    (-1, -1),
                    (1, -1),
                    (-2, 0),
                    (2, 0),
                    (-1, 1),
                    (1, 1),
                    (0, 2),
                ];
                const SDSP: [(isize, isize); 4] = [(0, -1), (-1, 0), (1, 0), (0, 1)];
                loop {
                    let (cx, cy) = best;
                    for (dx, dy) in LDSP {
                        try_candidate(
                            mem,
                            cx + dx,
                            cy + dy,
                            &mut best,
                            &mut best_sad,
                            &mut candidates,
                        );
                    }
                    if best == (cx, cy) {
                        break;
                    }
                }
                let (cx, cy) = best;
                for (dx, dy) in SDSP {
                    try_candidate(
                        mem,
                        cx + dx,
                        cy + dy,
                        &mut best,
                        &mut best_sad,
                        &mut candidates,
                    );
                }
            }
        }

        let mut best_mv = MotionVector::from_full_pel(best.0 as i16, best.1 as i16);

        if self.half_pel {
            span!(mem, Phase::MeHalfPel, {
                // Refine over the 8 half-pel neighbours of the integer
                // winner.
                let base = best_mv;
                for dy in -1i16..=1 {
                    for dx in -1i16..=1 {
                        if dx == 0 && dy == 0 {
                            continue;
                        }
                        let cand = MotionVector::new(base.x + dx, base.y + dy);
                        // Stay inside the padded surface.
                        if cand.x.abs() >= 2 * self.range || cand.y.abs() >= 2 * self.range {
                            continue;
                        }
                        candidates += 1;
                        let sad = Self::sad_half_pel(mem, cur, reference, bx, by, cand, best_sad);
                        if sad < best_sad {
                            best_sad = sad;
                            best_mv = cand;
                        }
                    }
                }
            });
        }

        if obs_on {
            m4ps_obs::exit(Phase::MeSearch, *mem.counters());
        }
        SearchOutcome {
            mv: best_mv,
            sad: best_sad,
            candidates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m4ps_memsim::{AddressSpace, NullModel};

    /// Builds (current, reference) planes where the current frame equals
    /// the reference shifted by (sx, sy).
    fn shifted_pair(
        space: &mut AddressSpace,
        mem: &mut NullModel,
        w: usize,
        h: usize,
        sx: isize,
        sy: isize,
    ) -> (TracedPlane, TracedPlane) {
        let tex = |x: isize, y: isize| -> u8 {
            let v = (x * 31 + y * 17 + (x * y) / 7) & 0xff;
            v as u8
        };
        let mut reference = TracedPlane::new(space, w, h);
        let mut cur = TracedPlane::new(space, w, h);
        let mut rdata = vec![0u8; w * h];
        let mut cdata = vec![0u8; w * h];
        for y in 0..h as isize {
            for x in 0..w as isize {
                rdata[(y * w as isize + x) as usize] = tex(x, y);
                // current(x) = reference(x - sx): object moved by +s.
                cdata[(y * w as isize + x) as usize] = tex(x - sx, y - sy);
            }
        }
        reference.copy_from(mem, &rdata, false);
        cur.copy_from(mem, &cdata, false);
        reference.pad_borders(mem);
        cur.pad_borders(mem);
        (cur, reference)
    }

    #[test]
    fn full_search_finds_known_shift() {
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        for (sx, sy) in [(0, 0), (3, 0), (0, -2), (-4, 5), (7, 7)] {
            let (cur, reference) = shifted_pair(&mut space, &mut mem, 64, 64, sx, sy);
            let ms = MotionSearch::new(SearchStrategy::FullSearch, 8, false);
            let out = ms.search(&mut mem, &cur, &reference, 1, 1);
            assert_eq!(
                out.mv,
                MotionVector::from_full_pel(-sx as i16, -sy as i16),
                "shift ({sx},{sy})"
            );
            assert_eq!(out.sad, 0);
        }
    }

    #[test]
    fn full_search_evaluates_whole_window() {
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        let (cur, reference) = shifted_pair(&mut space, &mut mem, 64, 64, 0, 0);
        let ms = MotionSearch::new(SearchStrategy::FullSearch, 4, false);
        let out = ms.search(&mut mem, &cur, &reference, 1, 1);
        assert_eq!(out.candidates, 81); // (2·4+1)²
    }

    /// Builds a smooth (sinusoidal) shifted pair so that the SAD error
    /// surface is unimodal — the regime fast searches are designed for.
    fn smooth_shifted_pair(
        space: &mut AddressSpace,
        mem: &mut NullModel,
        w: usize,
        h: usize,
        sx: isize,
        sy: isize,
    ) -> (TracedPlane, TracedPlane) {
        let tex = |x: isize, y: isize| -> u8 {
            let v = 128.0 + 60.0 * ((x as f64) * 0.35).sin() + 40.0 * ((y as f64) * 0.3).cos();
            v.clamp(0.0, 255.0) as u8
        };
        let mut reference = TracedPlane::new(space, w, h);
        let mut cur = TracedPlane::new(space, w, h);
        let mut rdata = vec![0u8; w * h];
        let mut cdata = vec![0u8; w * h];
        for y in 0..h as isize {
            for x in 0..w as isize {
                rdata[(y * w as isize + x) as usize] = tex(x, y);
                cdata[(y * w as isize + x) as usize] = tex(x - sx, y - sy);
            }
        }
        reference.copy_from(mem, &rdata, false);
        cur.copy_from(mem, &cdata, false);
        reference.pad_borders(mem);
        cur.pad_borders(mem);
        (cur, reference)
    }

    #[test]
    fn fast_searches_find_shift_on_smooth_motion() {
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        let (cur, reference) = smooth_shifted_pair(&mut space, &mut mem, 64, 64, 2, 1);
        for strat in [SearchStrategy::ThreeStep, SearchStrategy::Diamond] {
            let ms = MotionSearch::new(strat, 8, false);
            let out = ms.search(&mut mem, &cur, &reference, 1, 1);
            assert_eq!(out.mv, MotionVector::from_full_pel(-2, -1), "{strat:?}");
        }
    }

    #[test]
    fn fast_searches_use_fewer_candidates() {
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        let (cur, reference) = shifted_pair(&mut space, &mut mem, 64, 64, 1, 1);
        let full = MotionSearch::new(SearchStrategy::FullSearch, 8, false)
            .search(&mut mem, &cur, &reference, 1, 1);
        let diamond = MotionSearch::new(SearchStrategy::Diamond, 8, false)
            .search(&mut mem, &cur, &reference, 1, 1);
        assert!(diamond.candidates * 4 < full.candidates);
    }

    #[test]
    fn half_pel_refinement_improves_fractional_motion() {
        // Construct current = horizontal average of reference neighbours,
        // i.e. a genuine half-pel displacement.
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        let w = 64;
        // Smooth, non-aliasing texture: the only near-perfect match is
        // the true half-pel displacement.
        let tex = |x: isize, y: isize| -> u8 {
            (128.0 + 70.0 * ((x as f64) * 0.4).sin() + 30.0 * ((y as f64) * 0.23).cos())
                .clamp(0.0, 255.0) as u8
        };
        let mut reference = TracedPlane::new(&mut space, w, w);
        let mut cur = TracedPlane::new(&mut space, w, w);
        let mut rdata = vec![0u8; w * w];
        let mut cdata = vec![0u8; w * w];
        for y in 0..w as isize {
            for x in 0..w as isize {
                rdata[(y * w as isize + x) as usize] = tex(x, y);
                let a = u16::from(tex(x, y)) + u16::from(tex(x + 1, y));
                cdata[(y * w as isize + x) as usize] = ((a + 1) >> 1) as u8;
            }
        }
        reference.copy_from(&mut mem, &rdata, false);
        cur.copy_from(&mut mem, &cdata, false);
        reference.pad_borders(&mut mem);
        cur.pad_borders(&mut mem);

        let no_half = MotionSearch::new(SearchStrategy::FullSearch, 4, false)
            .search(&mut mem, &cur, &reference, 1, 1);
        let with_half = MotionSearch::new(SearchStrategy::FullSearch, 4, true)
            .search(&mut mem, &cur, &reference, 1, 1);
        assert!(with_half.sad < no_half.sad);
        assert!(!with_half.mv.is_full_pel());
    }

    #[test]
    fn search_charges_traced_reads() {
        use m4ps_memsim::{Hierarchy, MachineSpec, MemModel};
        let mut space = AddressSpace::new();
        let mut null = NullModel::new();
        let (cur, reference) = shifted_pair(&mut space, &mut null, 64, 64, 1, 0);
        let mut mem = Hierarchy::new(MachineSpec::o2());
        let ms = MotionSearch::new(SearchStrategy::FullSearch, 4, false);
        let out = ms.search(&mut mem, &cur, &reference, 1, 1);
        let c = mem.counters();
        // At minimum: each candidate touches one 16-pixel current row and
        // one reference row.
        assert!(c.loads >= u64::from(out.candidates) * 32);
        assert!(c.compute_ops > 0);
        // And the window overlap must make most of those hits: the whole
        // search window is under 2 KB.
        assert!(c.l1_misses < c.loads / 50);
    }

    #[test]
    #[should_panic(expected = "out of 1..=15")]
    fn oversized_range_rejected() {
        MotionSearch::new(SearchStrategy::FullSearch, 16, false);
    }

    #[test]
    fn edge_macroblock_search_stays_in_padded_surface() {
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        let (cur, reference) = shifted_pair(&mut space, &mut mem, 48, 48, 2, 2);
        let ms = MotionSearch::new(SearchStrategy::FullSearch, 15, true);
        // All four corner MBs.
        for (mbx, mby) in [(0, 0), (2, 0), (0, 2), (2, 2)] {
            let _ = ms.search(&mut mem, &cur, &reference, mbx, mby);
        }
    }
}
