//! The video-object decoder
//! (`DecodeVopCombMotionShapeTexture` in MoMuSys terms — the function
//! the paper instruments for its burstiness study).

use crate::encoder::{
    fill_bbox_ring, fill_grey_mb, predict_mb_4mv, reconstruct_inter_mb, Scheduling, SliceScratch,
    VopStats, RESYNC_MARKER, SLICE_CHARGE_SPAN,
};
use crate::error::CodecError;
use crate::header::{VolHeader, VopHeader};
use crate::mbops::{
    chroma_mv, write_block, write_block_u8, IntraPredState, MvPredictor, StreamCharge,
};
use crate::mc::{average_predictions, motion_compensate_block};
use crate::plane::{FrameSink, FrameViewMut, TracedFrame, TracedPlane};
use crate::shape::{classify_bab, decode_alpha_plane, BabClass};
use crate::slices::partition_rows;
use crate::texture::TextureCoder;
use crate::types::{MacroblockKind, MotionVector, VopKind};
use crate::vlc::{get_se, get_ue};
use m4ps_bitstream::{BitReader, BitstreamError, StartCode};
use m4ps_memsim::{AddressSpace, MemModel, ParallelModel};
use m4ps_obs::{span, Phase};
use m4ps_pool::{Scope, WorkerPool};
use std::ops::Range;
use std::sync::{Arc, Mutex};

/// Largest legal motion-vector component in half-pels: the search range
/// plus half-pel refinement can never leave the [`crate::PAD`]-pixel
/// border, so anything larger marks a corrupt stream.
const MV_LIMIT: i32 = 2 * (crate::plane::PAD as i32 - 1);

/// Reconstructs a motion vector from its predictor and decoded
/// differences, validating the result against the padded surface.
fn checked_mv(pred: MotionVector, dx: i32, dy: i32) -> Result<MotionVector, CodecError> {
    let x = i32::from(pred.x) + dx;
    let y = i32::from(pred.y) + dy;
    if x.abs() > MV_LIMIT || y.abs() > MV_LIMIT {
        return Err(CodecError::InvalidStream("motion vector out of range"));
    }
    Ok(MotionVector::new(x as i16, y as i16))
}

/// One decoded VOP, in decode order.
#[derive(Debug, Clone)]
pub struct DecodedVop {
    /// Coding type.
    pub kind: VopKind,
    /// Display (temporal) index from the VOP header.
    pub display_index: usize,
    /// Quantizer used.
    pub qp: u8,
    /// Decode statistics.
    pub stats: VopStats,
    /// Raw copies of the reconstruction when requested via
    /// [`VideoObjectDecoder::set_keep_output`].
    pub planes: Option<crate::encoder::ReconPlanes>,
    /// Raw copy of the decoded alpha plane (binary-shape layers, when
    /// output keeping is on).
    pub alpha: Option<Vec<u8>>,
}

/// Decoder for one video object layer.
#[derive(Debug)]
pub struct VideoObjectDecoder {
    vol: VolHeader,
    mb_cols: usize,
    mb_rows: usize,
    anchors: [TracedFrame; 2],
    latest: usize,
    anchor_count: usize,
    b_recon: TracedFrame,
    alpha: Option<TracedPlane>,
    texture: TextureCoder,
    stream_base: u64,
    stream_bits: u64,
    keep_output: bool,
    /// Bounding box of the previous shaped VOP (cleared before each new
    /// alpha decode) and of the latest one (for the compositor).
    prev_bbox: Option<(usize, usize, usize, usize)>,
    /// Accumulated counter deltas over the VOP-decode windows — the
    /// paper's `DecodeVopCombMotionShapeTexture()` instrumentation.
    vop_window: m4ps_memsim::Counters,
    /// Worker pool for slice-parallel decode. `None` (and a zero
    /// `threads_hint`) keeps the legacy sequential path — parallel
    /// decode is strictly opt-in via [`VideoObjectDecoder::set_pool`] /
    /// [`VideoObjectDecoder::set_threads`] so existing sequential
    /// counter pins stay byte-for-byte unchanged.
    pool: Option<Arc<WorkerPool>>,
    /// Thread count for a lazily created pool; 0 = sequential decode.
    threads_hint: usize,
    sched: Scheduling,
    /// Reusable per-slice decode state (texture scratch clones and MV
    /// predictors), grown on first use and recycled every VOP.
    slice_scratch: Vec<SliceScratch>,
    /// VOPs where the parallel attempt was abandoned and the VOP was
    /// re-decoded sequentially (pre-scan miss, slice error, or slice
    /// boundary mismatch — corrupt streams, mostly).
    parallel_fallbacks: u64,
}

impl VideoObjectDecoder {
    /// Creates a decoder by reading the VOL header from the start of the
    /// stream in `r`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] when no valid VOL header is present.
    pub fn from_stream<M: MemModel>(
        space: &mut AddressSpace,
        mem: &mut M,
        r: &mut BitReader<'_>,
    ) -> Result<Self, CodecError> {
        let vol = VolHeader::read(r)?;
        let _ = mem;
        Self::with_vol(space, vol)
    }

    /// Creates a decoder for a known VOL header.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidStream`] for non-MB-aligned
    /// dimensions.
    pub fn with_vol(space: &mut AddressSpace, vol: VolHeader) -> Result<Self, CodecError> {
        if !vol.width.is_multiple_of(16) || !vol.height.is_multiple_of(16) {
            return Err(CodecError::InvalidStream(
                "VOL dimensions must be multiples of 16",
            ));
        }
        space.set_tag("dec.reference_frames");
        let anchors = [
            TracedFrame::new(space, vol.width, vol.height),
            TracedFrame::new(space, vol.width, vol.height),
        ];
        space.set_tag("dec.b_recon");
        let b_recon = TracedFrame::new(space, vol.width, vol.height);
        space.set_tag("dec.alpha");
        let alpha = vol
            .binary_shape
            .then(|| TracedPlane::new(space, vol.width, vol.height));
        space.set_tag("dec.scratch");
        let texture = TextureCoder::new(space);
        space.set_tag("dec.bitstream");
        let stream_base = space.alloc(16 * 1024 * 1024);
        space.set_tag("untagged");
        Ok(VideoObjectDecoder {
            mb_cols: vol.width / 16,
            mb_rows: vol.height / 16,
            anchors,
            latest: 0,
            anchor_count: 0,
            b_recon,
            alpha,
            texture,
            stream_base,
            stream_bits: 0,
            keep_output: false,
            prev_bbox: None,
            vop_window: m4ps_memsim::Counters::new(),
            pool: None,
            threads_hint: 0,
            sched: Scheduling::from_env(),
            slice_scratch: Vec::new(),
            parallel_fallbacks: 0,
            vol,
        })
    }

    /// Shares a persistent worker pool with this decoder and enables
    /// slice-parallel decode for multi-slice VOPs. Reconstruction and
    /// merged counters are bit-identical at any thread count: the slice
    /// partition, per-slice forks and charge windows depend only on the
    /// bitstream's slice count, never on which thread runs a slice.
    pub fn set_pool(&mut self, pool: Arc<WorkerPool>) {
        self.threads_hint = pool.threads();
        self.pool = Some(pool);
    }

    /// Enables slice-parallel decode on a lazily created `threads`-wide
    /// pool (0 restores the sequential path). Purely a scheduling knob:
    /// output is bit-identical across thread counts.
    pub fn set_threads(&mut self, threads: usize) {
        let threads = threads.min(256);
        self.threads_hint = threads;
        match (&self.pool, threads) {
            (Some(_), 0) => self.pool = None,
            (Some(p), t) if p.threads() != t => self.pool = None,
            _ => {}
        }
    }

    /// Selects how a VOP's slice work is decomposed onto the pool (see
    /// [`Scheduling`]). Output is bit-identical across modes.
    pub fn set_scheduling(&mut self, sched: Scheduling) {
        self.sched = sched;
    }

    /// The worker thread count slices are decoded on (0 = sequential).
    pub fn threads(&self) -> usize {
        match (&self.pool, self.threads_hint) {
            (Some(p), _) => p.threads(),
            (None, hint) => hint,
        }
    }

    /// VOPs where the parallel attempt fell back to a sequential
    /// re-decode (corrupt slice, unlocatable slice header, or a slice
    /// boundary mismatch). The fallback decision is a pure function of
    /// the bitstream, so it is identical at every thread count; the
    /// re-decode reproduces the sequential decoder's result exactly,
    /// concealment and all.
    pub fn parallel_fallbacks(&self) -> u64 {
        self.parallel_fallbacks
    }

    /// The pool to decode this VOP's slices on, creating the lazy pool
    /// on first use. `None` = sequential decode.
    fn parallel_pool(&mut self) -> Option<Arc<WorkerPool>> {
        if self.pool.is_none() && self.threads_hint > 0 {
            self.pool = Some(Arc::new(WorkerPool::new(self.threads_hint)));
        }
        self.pool.clone()
    }

    /// The VOL header of this layer.
    pub fn vol(&self) -> &VolHeader {
        &self.vol
    }

    /// Keep raw plane copies in every [`DecodedVop`] (testing aid; the
    /// composition stage consumes planes directly otherwise).
    pub fn set_keep_output(&mut self, keep: bool) {
        self.keep_output = keep;
    }

    /// Reconstruction of the most recently decoded VOP.
    pub fn last_recon(&self) -> &TracedFrame {
        if self.anchor_count > 0 {
            &self.anchors[self.latest]
        } else {
            &self.b_recon
        }
    }

    /// Reconstruction of the most recently decoded anchor.
    pub fn last_anchor(&self) -> Option<&TracedFrame> {
        (self.anchor_count > 0).then(|| &self.anchors[self.latest])
    }

    /// Frame the last VOP was reconstructed into (B → `b_recon`).
    fn recon_of(&self, kind: VopKind) -> &TracedFrame {
        if kind.is_anchor() {
            &self.anchors[self.latest]
        } else {
            &self.b_recon
        }
    }

    /// Counter deltas accumulated over every VOP-decode window so far —
    /// the paper's `DecodeVopCombMotionShapeTexture()` instrumentation.
    pub fn vop_window(&self) -> m4ps_memsim::Counters {
        self.vop_window
    }

    /// Decoded alpha plane of the last VOP (binary-shape layers).
    pub fn last_alpha(&self) -> Option<&TracedPlane> {
        self.alpha.as_ref()
    }

    /// Bounding box of the last shaped VOP.
    pub fn last_bbox(&self) -> Option<(usize, usize, usize, usize)> {
        self.prev_bbox
    }

    /// Decodes the next VOP from `r`, or returns `Ok(None)` at end of
    /// stream.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on corrupt or truncated input, including a
    /// B- or P-VOP arriving before its reference anchors.
    pub fn decode_next<M: ParallelModel>(
        &mut self,
        mem: &mut M,
        r: &mut BitReader<'_>,
    ) -> Result<Option<DecodedVop>, CodecError> {
        self.decode_next_inner(mem, r, None)
    }

    /// Like [`VideoObjectDecoder::decode_next`], but predicts P-VOPs from
    /// the external reference `ext` (temporal-scalability enhancement
    /// layers predict from the base layer).
    ///
    /// # Errors
    ///
    /// Same conditions as [`VideoObjectDecoder::decode_next`].
    pub fn decode_next_with_ref<M: ParallelModel>(
        &mut self,
        mem: &mut M,
        r: &mut BitReader<'_>,
        ext: &TracedFrame,
    ) -> Result<Option<DecodedVop>, CodecError> {
        self.decode_next_inner(mem, r, Some(ext))
    }

    fn decode_next_inner<M: ParallelModel>(
        &mut self,
        mem: &mut M,
        r: &mut BitReader<'_>,
        ext: Option<&TracedFrame>,
    ) -> Result<Option<DecodedVop>, CodecError> {
        let header = match r.next_start_code() {
            Err(BitstreamError::StartCodeNotFound) => return Ok(None),
            Err(e) => return Err(e.into()),
            Ok(code) if code == StartCode::VideoObjectPlane.value() => VopHeader::parse_fields(r)?,
            Ok(code) if code == StartCode::VideoObjectLayer.value() => {
                // Tolerate a repeated VOL header mid-stream.
                let _ = VolHeader::parse_fields(r)?;
                return self.decode_next_inner(mem, r, ext);
            }
            Ok(_) => return Err(CodecError::InvalidStream("unexpected startcode")),
        };

        let window_start = *mem.counters();
        let bit_start = r.bit_pos();
        // The paper's `VopDecode()` counter window doubles as the coarse
        // `vop.decode` span; the body is split out so the span closes on
        // error returns too.
        let obs_on = m4ps_obs::enabled();
        if obs_on {
            m4ps_obs::enter(Phase::VopDecode, window_start);
        }
        let body = self.decode_window(mem, r, ext, &header, bit_start);
        if obs_on {
            m4ps_obs::exit(Phase::VopDecode, *mem.counters());
        }
        let (stats, ext_is_ref) = body?;

        self.vop_window = self
            .vop_window
            .merged_with(&mem.counters().delta_since(&window_start));
        self.stream_bits += r.bit_pos() - bit_start;

        let target_kind = if ext_is_ref { VopKind::B } else { header.kind };
        let planes = self.keep_output.then(|| {
            let f = self.recon_of(target_kind);
            crate::encoder::ReconPlanes {
                y: f.y.copy_out(mem),
                u: f.u.copy_out(mem),
                v: f.v.copy_out(mem),
            }
        });
        let alpha_copy = if self.keep_output {
            self.alpha.as_ref().map(|a| a.copy_out(mem))
        } else {
            None
        };

        Ok(Some(DecodedVop {
            kind: header.kind,
            display_index: header.display_index as usize,
            qp: header.qp,
            stats,
            planes,
            alpha: alpha_copy,
        }))
    }

    /// Shape, reference selection, macroblock layer, and anchor
    /// bookkeeping for one VOP — everything inside the per-VOP counter
    /// window. Returns the layer stats and whether the external
    /// reference was used (the output then lands in the B slot).
    fn decode_window<M: ParallelModel>(
        &mut self,
        mem: &mut M,
        r: &mut BitReader<'_>,
        ext: Option<&TracedFrame>,
        header: &VopHeader,
        bit_start: u64,
    ) -> Result<(VopStats, bool), CodecError> {
        if header.kind == VopKind::P && self.anchor_count == 0 && ext.is_none() {
            return Err(CodecError::InvalidStream("P-VOP before first anchor"));
        }
        if header.kind == VopKind::B && self.anchor_count < 2 {
            return Err(CodecError::InvalidStream("B-VOP before two anchors"));
        }

        let mut charge = StreamCharge::reader(self.stream_base + self.stream_bits / 8);

        // Shape first (DecodeVopCombMotionShapeTexture order).
        if self.vol.binary_shape {
            let bbox = header.bbox.ok_or(CodecError::InvalidStream(
                "shaped VOP without a bounding box",
            ))?;
            if bbox.0 + bbox.2 > self.vol.width || bbox.1 + bbox.3 > self.vol.height {
                return Err(CodecError::InvalidStream("bounding box out of frame"));
            }
            let alpha = self
                .alpha
                .as_mut()
                .expect("binary-shape decoder has an alpha plane");
            if let Some((px, py, pw, ph)) = self.prev_bbox {
                alpha.clear_region(mem, px, py, pw, ph);
            }
            span!(mem, Phase::Shape, decode_alpha_plane(mem, alpha, bbox, r))?;
            self.prev_bbox = Some(bbox);
        } else if header.bbox.is_some() {
            return Err(CodecError::InvalidStream(
                "bounding box on a rectangular layer",
            ));
        }
        // Stream-byte traffic for the consumed header/shape bits is the
        // decoder's parse cost.
        span!(
            mem,
            Phase::Parse,
            charge.charge_to(mem, r.bit_pos() - bit_start)
        );

        // Pick references and the reconstruction target.
        let ext_is_ref = ext.is_some() && header.kind == VopKind::P;
        let into_anchor = header.kind.is_anchor() && !ext_is_ref;
        let new_idx = if self.anchor_count == 0 {
            0
        } else {
            1 - self.latest
        };

        let pool = self.parallel_pool();
        let sched = self.sched;
        let stats = if header.kind == VopKind::B {
            let fwd = &self.anchors[1 - self.latest];
            let bwd = &self.anchors[self.latest];
            decode_vop_dispatch(
                mem,
                r,
                header,
                self.alpha.as_ref(),
                Some(fwd),
                Some(bwd),
                &mut self.b_recon,
                &mut self.texture,
                &mut self.slice_scratch,
                &mut self.parallel_fallbacks,
                &mut charge,
                bit_start,
                self.stream_base,
                self.mb_cols,
                self.mb_rows,
                pool.as_deref(),
                sched,
            )?
        } else if ext_is_ref {
            decode_vop_dispatch(
                mem,
                r,
                header,
                self.alpha.as_ref(),
                ext,
                None,
                &mut self.b_recon,
                &mut self.texture,
                &mut self.slice_scratch,
                &mut self.parallel_fallbacks,
                &mut charge,
                bit_start,
                self.stream_base,
                self.mb_cols,
                self.mb_rows,
                pool.as_deref(),
                sched,
            )?
        } else {
            // Anchor decode: target is the non-latest slot; a P-VOP
            // references the latest slot.
            let is_p = header.kind == VopKind::P;
            let (left, right) = self.anchors.split_at_mut(1);
            let (recon, fwd): (&mut TracedFrame, Option<&TracedFrame>) = if new_idx == 0 {
                (&mut left[0], is_p.then_some(&right[0] as &TracedFrame))
            } else {
                (&mut right[0], is_p.then_some(&left[0] as &TracedFrame))
            };
            decode_vop_dispatch(
                mem,
                r,
                header,
                self.alpha.as_ref(),
                fwd,
                None,
                recon,
                &mut self.texture,
                &mut self.slice_scratch,
                &mut self.parallel_fallbacks,
                &mut charge,
                bit_start,
                self.stream_base,
                self.mb_cols,
                self.mb_rows,
                pool.as_deref(),
                sched,
            )?
        };

        if into_anchor {
            if !self.vol.binary_shape {
                let recon = if new_idx == 0 {
                    &mut self.anchors[0]
                } else {
                    &mut self.anchors[1]
                };
                recon.pad_borders(mem);
            }
            self.latest = new_idx;
            self.anchor_count = (self.anchor_count + 1).min(2);
        }

        Ok((stats, ext_is_ref))
    }
}

/// Outcome of a parallel decode attempt.
enum ParallelOutcome {
    /// The VOP is not eligible (single slice, or a geometry error the
    /// sequential path will report) — decode sequentially, this was
    /// not a fallback.
    NotSliced,
    /// The attempt was abandoned (pre-scan miss, slice task error, or
    /// slice boundary mismatch). The parent model and reader are
    /// untouched; re-decode sequentially and count a fallback.
    Fallback,
    /// Parallel decode succeeded; the reader sits after the last
    /// macroblock, exactly where the sequential decoder would leave it.
    Done(VopStats),
}

/// Routes one VOP's macroblock layer to the slice-parallel path when a
/// pool is attached and the VOP is multi-slice, falling back to the
/// sequential decoder otherwise — or whenever the parallel attempt
/// aborts. The fallback re-decode starts from a saved reader clone and
/// overwrites every in-bbox macroblock, so its public result (including
/// concealment) is exactly the sequential decoder's on every input.
#[allow(clippy::too_many_arguments)]
fn decode_vop_dispatch<M: ParallelModel>(
    mem: &mut M,
    r: &mut BitReader<'_>,
    header: &VopHeader,
    alpha: Option<&TracedPlane>,
    fwd: Option<&TracedFrame>,
    bwd: Option<&TracedFrame>,
    recon: &mut TracedFrame,
    texture: &mut TextureCoder,
    scratch: &mut Vec<SliceScratch>,
    fallbacks: &mut u64,
    charge: &mut StreamCharge,
    bit_start: u64,
    stream_base: u64,
    mb_cols: usize,
    mb_rows: usize,
    pool: Option<&WorkerPool>,
    sched: Scheduling,
) -> Result<VopStats, CodecError> {
    if let Some(pool) = pool {
        let saved = r.clone();
        match decode_vop_parallel(
            mem,
            r,
            header,
            alpha,
            fwd,
            bwd,
            recon,
            texture,
            scratch,
            charge,
            bit_start,
            stream_base,
            mb_cols,
            mb_rows,
            pool,
            sched,
        ) {
            ParallelOutcome::Done(stats) => return Ok(stats),
            ParallelOutcome::Fallback => {
                *fallbacks += 1;
                *r = saved;
            }
            ParallelOutcome::NotSliced => *r = saved,
        }
    }
    decode_vop_body(
        mem, r, header, alpha, fwd, bwd, recon, texture, charge, bit_start, mb_cols, mb_rows,
    )
}

/// Decodes a multi-slice VOP's macroblock layer on the pool: a cheap
/// untraced pre-scan locates every slice header (byte-aligned resync
/// marker carrying the slice's first macroblock index), then each slice
/// decodes as an independent task chain — cloned reader positioned at
/// its slice start, forked memory model, recycled [`SliceScratch`],
/// disjoint reconstruction row band, and a per-slice-index charge
/// window at `stream_base + (s+1) * SLICE_CHARGE_SPAN` — the exact
/// construction the parallel encoder uses, so reconstruction and
/// merged counters are bit-identical at any thread count.
///
/// The parallel path performs **no concealment**: any anomaly — a
/// slice header the pre-scan cannot locate, a slice task error (or
/// panic, caught at the task boundary), or a slice whose aligned end
/// does not meet the next slice's start — abandons the whole attempt
/// without absorbing any fork, and the caller re-decodes the VOP
/// sequentially. Each of those triggers is a pure function of the
/// bitstream, so the decision is identical at every thread count.
#[allow(clippy::too_many_arguments)]
fn decode_vop_parallel<M: ParallelModel>(
    mem: &mut M,
    r: &mut BitReader<'_>,
    header: &VopHeader,
    alpha: Option<&TracedPlane>,
    fwd: Option<&TracedFrame>,
    bwd: Option<&TracedFrame>,
    recon: &mut TracedFrame,
    texture: &TextureCoder,
    scratch: &mut Vec<SliceScratch>,
    charge: &mut StreamCharge,
    bit_start: u64,
    stream_base: u64,
    mb_cols: usize,
    mb_rows: usize,
    pool: &WorkerPool,
    sched: Scheduling,
) -> ParallelOutcome {
    let (mbx_range, mby_range) = match header.bbox {
        Some((x0, y0, bw, bh)) => {
            if x0 + bw > mb_cols * 16 || y0 + bh > mb_rows * 16 {
                return ParallelOutcome::NotSliced;
            }
            (x0 / 16..(x0 + bw) / 16, y0 / 16..(y0 + bh) / 16)
        }
        None => (0..mb_cols, 0..mb_rows),
    };
    let slice_rows = partition_rows(mby_range.clone(), header.slices);
    if slice_rows.len() < 2 {
        return ParallelOutcome::NotSliced;
    }

    // Commit: consume the header segment's stuffing (slice 0 starts
    // byte-aligned) and charge it in the parent window — the decode
    // mirror of the encoder charging its aligned header segment.
    r.skip_stuffing();
    span!(
        mem,
        Phase::Parse,
        charge.charge_to(mem, r.bit_pos() - bit_start)
    );

    let Some(starts) = prescan_slice_starts(r, &slice_rows, mbx_range.len(), mby_range.start)
    else {
        return ParallelOutcome::Fallback;
    };

    while scratch.len() < slice_rows.len() {
        scratch.push(SliceScratch::new(texture, mb_cols));
    }

    let ctx = DecodeCtx {
        hdr: header,
        alpha,
        fwd,
        bwd,
        mbx_range: mbx_range.clone(),
        n_slices: slice_rows.len(),
    };
    let grain = sched.grain();
    let views = recon.split_mb_rows_mut(&slice_rows);
    let chains: Vec<DecodeChain<'_, M>> = slice_rows
        .iter()
        .cloned()
        .zip(views)
        .zip(scratch.iter_mut())
        .enumerate()
        .map(|(s, ((rows, view), sc))| {
            let first_mb = (rows.start - mby_range.start) * ctx.mbx_range.len();
            let mut sr = r.clone();
            sr.seek_to(starts[s]);
            DecodeChain {
                smem: mem.fork(),
                r: sr,
                view,
                scratch: sc,
                charge: StreamCharge::reader(stream_base + (s as u64 + 1) * SLICE_CHARGE_SPAN),
                stats: VopStats::default(),
                slice_index: s,
                slice_start: starts[s],
                next_row: rows.start,
                first_mb,
                mb_counter: first_mb,
                rows,
                grain,
            }
        })
        .collect();

    let slots = run_decode_chains(pool, &ctx, chains);

    let mut outs = Vec::with_capacity(slots.len());
    for slot in slots {
        match slot
            .into_inner()
            .expect("decode slot lock")
            .expect("scope waits for every slice chain")
        {
            Ok(out) => outs.push(out),
            // A corrupt slice surfaces as a clean per-slice error; the
            // other slices completed independently. Drop every fork
            // unabsorbed and let the sequential re-decode conceal.
            Err(_) => return ParallelOutcome::Fallback,
        }
    }
    // Every slice must end, after consuming its alignment stuffing,
    // exactly at the next slice's header. By induction this proves each
    // task consumed precisely the bits the sequential decoder would.
    for s in 0..outs.len() - 1 {
        if outs[s].2 != starts[s + 1] {
            return ParallelOutcome::Fallback;
        }
    }

    let end_pos = outs.last().expect("at least two slices").1;
    let mut stats = VopStats::default();
    for (sstats, _end, _aligned, smem) in outs {
        let child_total = *smem.counters();
        mem.absorb(smem);
        // Keep the caller's open phase from double-counting the jump
        // `absorb` just folded in (the slices' own domain spans carry
        // those counters, phase by phase).
        m4ps_obs::absorbed(&child_total);
        stats.merge(&sstats);
    }
    // Leave the reader after the last macroblock — exactly where the
    // sequential decoder stops (the next startcode scan handles the
    // final stuffing).
    r.seek_to(end_pos);

    if let Some(bbox) = header.bbox {
        fill_bbox_ring(mem, recon, bbox, mb_cols, mb_rows);
    }
    ParallelOutcome::Done(stats)
}

/// Locates every slice's byte-aligned start: slice 0 begins at the
/// reader's (aligned) position; slice `s > 0` begins at the first
/// byte-aligned resync marker whose following fields parse as slice
/// `s`'s first macroblock index. In-slice resync markers always carry
/// a *smaller* index, so the first match is the true header unless the
/// payload aliases one — which the slice boundary check catches.
///
/// The scan reads raw bytes through reader clones and charges nothing:
/// like the encoder's slice partition it is scheduling metadata, not
/// modelled codec traffic (the slice tasks charge every stream byte
/// through their own windows).
fn prescan_slice_starts(
    r: &BitReader<'_>,
    slice_rows: &[Range<usize>],
    mbx_len: usize,
    mby_start: usize,
) -> Option<Vec<u64>> {
    let mut starts = Vec::with_capacity(slice_rows.len());
    starts.push(r.bit_pos());
    let mut probe = r.clone();
    for rows in &slice_rows[1..] {
        let expected = (rows.start - mby_start) * mbx_len;
        loop {
            if !probe.scan_aligned_u16(RESYNC_MARKER) {
                return None;
            }
            let mut fields = probe.clone();
            let matches = (|| -> Result<bool, CodecError> {
                let idx = get_ue(&mut fields)? as usize;
                let _qp = fields.get_bits(5)?;
                Ok(idx == expected)
            })()
            .unwrap_or(false);
            if matches {
                starts.push(probe.bit_pos() - 16);
                break;
            }
            // A smaller index (in-slice marker) or a payload alias:
            // keep scanning forward.
        }
    }
    Some(starts)
}

/// Read-shared context for one VOP's decode slice tasks.
struct DecodeCtx<'a> {
    hdr: &'a VopHeader,
    alpha: Option<&'a TracedPlane>,
    fwd: Option<&'a TracedFrame>,
    bwd: Option<&'a TracedFrame>,
    mbx_range: Range<usize>,
    n_slices: usize,
}

/// Everything a decode slice's row chain carries from one task to the
/// next: the forked counter stream, the slice's reader clone and charge
/// window, its reconstruction band and recycled scratch, and the row
/// cursor. Moving the whole state along the chain pins determinism —
/// each fork sees exactly the access sequence the coarse slice job
/// produces, just cut into one task per `grain` rows.
struct DecodeChain<'a, M> {
    smem: M,
    r: BitReader<'a>,
    view: FrameViewMut<'a>,
    scratch: &'a mut SliceScratch,
    charge: StreamCharge,
    stats: VopStats,
    slice_index: usize,
    /// Absolute bit position of the slice's first bit (the resync
    /// marker for `slice_index > 0`); per-macroblock charges are
    /// relative to it.
    slice_start: u64,
    rows: Range<usize>,
    next_row: usize,
    first_mb: usize,
    mb_counter: usize,
    grain: usize,
}

/// A finished decode slice: stats, reader end position (after the last
/// macroblock), aligned end position (after stuffing — must meet the
/// next slice's start), and the forked model to absorb.
type DecodeSliceOut<M> = (VopStats, u64, u64, M);

/// One slice's result slot: filled exactly once by its chain's final
/// task, drained by the coordinator in slice order.
type DecodeSlot<M> = Mutex<Option<Result<DecodeSliceOut<M>, CodecError>>>;

/// Spawns every chain's first task into one pool scope and returns the
/// per-slice result slots (in slice order) once all chains finished.
fn run_decode_chains<'a, M: ParallelModel + 'a>(
    pool: &WorkerPool,
    ctx: &DecodeCtx<'a>,
    mut chains: Vec<DecodeChain<'a, M>>,
) -> Vec<DecodeSlot<M>> {
    let slots: Vec<DecodeSlot<M>> = chains.iter().map(|_| Mutex::new(None)).collect();
    let session = m4ps_obs::current();
    pool.scope(session.as_ref(), |scope| {
        for (chain, slot) in chains.drain(..).zip(slots.iter()) {
            scope.spawn(move |s| decode_chain_step(chain, ctx, slot, s));
        }
    });
    slots
}

/// One task of a decode slice's row chain: validates the slice header
/// on the first task, decodes up to `grain` macroblock rows, then
/// either spawns the continuation or finalizes the slice into its
/// result slot. A panic anywhere in the slice body is caught at this
/// task boundary and surfaces as a clean per-slice error — the pool is
/// never poisoned and the other slices still decode.
fn decode_chain_step<'s, M: ParallelModel + 's>(
    mut st: DecodeChain<'s, M>,
    ctx: &'s DecodeCtx<'s>,
    slot: &'s DecodeSlot<M>,
    scope: &Scope<'s>,
) {
    // A *domain* span: this task charges the forked stream `st.smem`,
    // not the caller's model (the coordinator accounts for the fork via
    // `absorbed`). Spans are per task, so each worker's span stack
    // stays balanced; the per-pair deltas sum to the fork total.
    let obs_on = m4ps_obs::enabled();
    if obs_on {
        m4ps_obs::enter_domain(Phase::DecodeSlice, *st.smem.counters());
    }
    let body = |st: &mut DecodeChain<'s, M>| -> Result<(), CodecError> {
        if st.next_row == st.rows.start {
            if st.slice_index > 0 {
                // Slice header: the resync word, the index of the
                // slice's first macroblock, and the quantizer (whose
                // value the sequential decoder also ignores).
                let m = st.r.get_bits(16)?;
                let idx = get_ue(&mut st.r)? as usize;
                let _qp = st.r.get_bits(5)?;
                if m != u32::from(RESYNC_MARKER) || idx != st.first_mb {
                    return Err(CodecError::InvalidStream("slice header mismatch"));
                }
            }
            // Recycled predictors start from reset — the same state a
            // fresh `MvPredictor::new` carries.
            st.scratch.fwd_pred.reset();
            st.scratch.bwd_pred.reset();
        }
        let stop = st.next_row.saturating_add(st.grain).min(st.rows.end);
        while st.next_row < stop {
            decode_slice_row(st, ctx)?;
            st.next_row += 1;
        }
        Ok(())
    };
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut st)))
        .unwrap_or(Err(CodecError::InvalidStream(
            "panic during parallel slice decode",
        )));
    match result {
        Err(e) => {
            if obs_on {
                m4ps_obs::exit_domain(Phase::DecodeSlice, *st.smem.counters());
            }
            *slot.lock().expect("decode slot lock") = Some(Err(e));
        }
        Ok(()) if st.next_row < st.rows.end => {
            if obs_on {
                m4ps_obs::exit_domain(Phase::DecodeSlice, *st.smem.counters());
            }
            scope.spawn(move |s| decode_chain_step(st, ctx, slot, s));
        }
        Ok(()) => {
            let end_pos = st.r.bit_pos();
            st.r.skip_stuffing();
            let aligned = st.r.bit_pos();
            // Charge the slice's trailing stuffing — sequentially those
            // bytes are swept up by the successor slice's first
            // macroblock charge. The LAST slice's stuffing is the one
            // tail the sequential decoder never touches (it stops right
            // after the final macroblock), so stop there too.
            let charge_end = if st.slice_index + 1 == ctx.n_slices {
                end_pos
            } else {
                aligned
            };
            st.charge
                .charge_to(&mut st.smem, charge_end - st.slice_start);
            if obs_on {
                m4ps_obs::exit_domain(Phase::DecodeSlice, *st.smem.counters());
            }
            *slot.lock().expect("decode slot lock") =
                Some(Ok((st.stats, end_pos, aligned, st.smem)));
        }
    }
}

/// Decodes one macroblock row of a slice on the clean path only: any
/// marker mismatch or macroblock error aborts the slice (no
/// concealment — the coordinator falls back to the sequential decoder,
/// which owns the error-resilience state machine).
fn decode_slice_row<M: ParallelModel>(
    st: &mut DecodeChain<'_, M>,
    ctx: &DecodeCtx<'_>,
) -> Result<(), CodecError> {
    let header = ctx.hdr;
    let qp = header.qp;
    let mby = st.next_row;
    let mem = &mut st.smem;
    let recon = &mut st.view;
    st.scratch.fwd_pred.start_row();
    st.scratch.bwd_pred.start_row();
    let mut ips = IntraPredState::reset();
    for mbx in ctx.mbx_range.clone() {
        if let Some(interval) = header.resync_interval {
            if st.mb_counter > st.first_mb && st.mb_counter.is_multiple_of(interval) {
                // Clean path: the expected marker, or abort.
                st.r.skip_stuffing();
                let m = st.r.get_bits(16)?;
                let idx = get_ue(&mut st.r)? as usize;
                let _qp = st.r.get_bits(5)?;
                if m != u32::from(RESYNC_MARKER) || idx != st.mb_counter {
                    return Err(CodecError::InvalidStream("resync marker mismatch"));
                }
                st.scratch.fwd_pred.reset();
                st.scratch.bwd_pred.reset();
                ips = IntraPredState::reset();
            }
        }
        st.mb_counter += 1;

        let transparent = match ctx.alpha {
            Some(a) => span!(
                mem,
                Phase::Shape,
                classify_bab(mem, a, mbx, mby) == BabClass::Transparent
            ),
            None => false,
        };
        if transparent {
            st.stats.transparent_mbs += 1;
            fill_grey_mb(mem, recon, mbx, mby);
            st.scratch.fwd_pred.commit(mbx, MotionVector::ZERO);
            st.scratch.bwd_pred.commit(mbx, MotionVector::ZERO);
            ips = IntraPredState::reset();
            continue;
        }
        st.scratch.texture.charge_mb_overhead(mem);

        match header.kind {
            VopKind::I => {
                decode_intra_mb(
                    mem,
                    &mut st.r,
                    recon,
                    &mut st.scratch.texture,
                    qp,
                    mbx,
                    mby,
                    &mut ips,
                )?;
                st.stats.intra_mbs += 1;
                st.scratch.fwd_pred.commit(mbx, MotionVector::ZERO);
            }
            VopKind::P => {
                let reference = ctx
                    .fwd
                    .ok_or(CodecError::InvalidStream("P-VOP without reference"))?;
                decode_p_mb(
                    mem,
                    &mut st.r,
                    reference,
                    recon,
                    &mut st.scratch.texture,
                    qp,
                    mbx,
                    mby,
                    &mut ips,
                    &mut st.scratch.fwd_pred,
                    &mut st.stats,
                )?;
            }
            VopKind::B => {
                let f = ctx
                    .fwd
                    .ok_or(CodecError::InvalidStream("B-VOP without fwd ref"))?;
                let b = ctx
                    .bwd
                    .ok_or(CodecError::InvalidStream("B-VOP without bwd ref"))?;
                decode_b_mb(
                    mem,
                    &mut st.r,
                    f,
                    b,
                    recon,
                    &mut st.scratch.texture,
                    qp,
                    mbx,
                    mby,
                    &mut st.scratch.fwd_pred,
                    &mut st.scratch.bwd_pred,
                    &mut st.stats,
                )?;
                ips = IntraPredState::reset();
            }
        }
        span!(
            mem,
            Phase::Parse,
            st.charge.charge_to(mem, st.r.bit_pos() - st.slice_start)
        );
    }
    Ok(())
}

/// Decodes the macroblock layer of one VOP (after shape).
#[allow(clippy::too_many_arguments)]
fn decode_vop_body<M: MemModel>(
    mem: &mut M,
    r: &mut BitReader<'_>,
    header: &VopHeader,
    alpha: Option<&TracedPlane>,
    fwd: Option<&TracedFrame>,
    bwd: Option<&TracedFrame>,
    recon: &mut TracedFrame,
    texture: &mut TextureCoder,
    charge: &mut StreamCharge,
    bit_start: u64,
    mb_cols: usize,
    mb_rows: usize,
) -> Result<VopStats, CodecError> {
    let mut stats = VopStats::default();
    let qp = header.qp;

    let (mbx_range, mby_range) = match header.bbox {
        Some((x0, y0, bw, bh)) => {
            if x0 + bw > mb_cols * 16 || y0 + bh > mb_rows * 16 {
                return Err(CodecError::InvalidStream("bounding box out of frame"));
            }
            (x0 / 16..(x0 + bw) / 16, y0 / 16..(y0 + bh) / 16)
        }
        None => (0..mb_cols, 0..mb_rows),
    };

    let slice_rows = partition_rows(mby_range.clone(), header.slices);
    let multi = slice_rows.len() > 1;
    if multi {
        // The sliced layout byte-aligns the header segment; consume the
        // stuffing so slice 0 starts on its byte boundary.
        r.skip_stuffing();
    }

    let mut fwd_pred = MvPredictor::new(mb_cols);
    let mut bwd_pred = MvPredictor::new(mb_cols);
    let total_mbs = mbx_range.len() * mby_range.len();
    // `Some(target)` while concealing up to (but excluding) macroblock
    // `target`; `usize::MAX` conceals to the end of the VOP.
    let mut conceal_until: Option<usize> = None;

    for (si, srows) in slice_rows.into_iter().enumerate() {
        let slice_first_mb = (srows.start - mby_range.start) * mbx_range.len();
        let mut mb_counter = slice_first_mb;
        if si > 0 {
            match conceal_until {
                None => {
                    // Slice header: stuffing, the resync word, the
                    // slice's first macroblock index, the quantizer.
                    let ok = (|| -> Result<bool, CodecError> {
                        r.skip_stuffing();
                        let m = r.get_bits(16)?;
                        let idx = get_ue(r)? as usize;
                        let _qp = r.get_bits(5)?;
                        Ok(m == u32::from(crate::encoder::RESYNC_MARKER) && idx == slice_first_mb)
                    })()
                    .unwrap_or(false);
                    if !ok {
                        let Some(interval) = header.resync_interval else {
                            return Err(CodecError::InvalidStream("slice header mismatch"));
                        };
                        conceal_until =
                            Some(scan_to_marker(r, slice_first_mb, total_mbs, interval));
                    }
                }
                Some(target) if slice_first_mb >= target => {
                    // The recovery scan already consumed this slice's
                    // header; resume decoding here.
                    conceal_until = None;
                }
                Some(_) => {}
            }
        }
        // Slice boundaries carry resync-marker semantics: no prediction
        // crosses them (the encoder starts each slice from reset state).
        fwd_pred.reset();
        bwd_pred.reset();

        for mby in srows {
            fwd_pred.start_row();
            bwd_pred.start_row();
            let mut ips = IntraPredState::reset();
            for mbx in mbx_range.clone() {
                // Resynchronization-marker boundary handling.
                if let Some(interval) = header.resync_interval {
                    if mb_counter > slice_first_mb && mb_counter % interval == 0 {
                        match conceal_until {
                            None => {
                                // Clean path: consume the expected marker.
                                let ok = (|| -> Result<bool, CodecError> {
                                    r.skip_stuffing();
                                    let m = r.get_bits(16)?;
                                    let idx = get_ue(r)? as usize;
                                    let _qp = r.get_bits(5)?;
                                    Ok(m == u32::from(crate::encoder::RESYNC_MARKER)
                                        && idx == mb_counter)
                                })()
                                .unwrap_or(false);
                                if ok {
                                    fwd_pred.reset();
                                    bwd_pred.reset();
                                    ips = IntraPredState::reset();
                                } else {
                                    conceal_until =
                                        Some(scan_to_marker(r, mb_counter, total_mbs, interval));
                                }
                            }
                            Some(target) if mb_counter >= target => {
                                // Resumption point: the scan already consumed
                                // the marker header.
                                conceal_until = None;
                                fwd_pred.reset();
                                bwd_pred.reset();
                                ips = IntraPredState::reset();
                            }
                            Some(_) => {}
                        }
                    }
                }
                let counter = mb_counter;
                mb_counter += 1;

                let transparent = match alpha {
                    Some(a) => span!(
                        mem,
                        Phase::Shape,
                        classify_bab(mem, a, mbx, mby) == BabClass::Transparent
                    ),
                    None => false,
                };
                if transparent {
                    stats.transparent_mbs += 1;
                    fill_grey_mb(mem, recon, mbx, mby);
                    fwd_pred.commit(mbx, MotionVector::ZERO);
                    bwd_pred.commit(mbx, MotionVector::ZERO);
                    ips = IntraPredState::reset();
                    continue;
                }
                texture.charge_mb_overhead(mem);

                if conceal_until.is_some() {
                    conceal_mb(mem, fwd, recon, texture, mbx, mby);
                    stats.concealed_mbs += 1;
                    fwd_pred.commit(mbx, MotionVector::ZERO);
                    bwd_pred.commit(mbx, MotionVector::ZERO);
                    ips = IntraPredState::reset();
                    continue;
                }

                let result = (|| -> Result<(), CodecError> {
                    match header.kind {
                        VopKind::I => {
                            decode_intra_mb(mem, r, recon, texture, qp, mbx, mby, &mut ips)?;
                            stats.intra_mbs += 1;
                            fwd_pred.commit(mbx, MotionVector::ZERO);
                        }
                        VopKind::P => {
                            let reference =
                                fwd.ok_or(CodecError::InvalidStream("P-VOP without reference"))?;
                            decode_p_mb(
                                mem,
                                r,
                                reference,
                                recon,
                                texture,
                                qp,
                                mbx,
                                mby,
                                &mut ips,
                                &mut fwd_pred,
                                &mut stats,
                            )?;
                        }
                        VopKind::B => {
                            let f =
                                fwd.ok_or(CodecError::InvalidStream("B-VOP without fwd ref"))?;
                            let b =
                                bwd.ok_or(CodecError::InvalidStream("B-VOP without bwd ref"))?;
                            decode_b_mb(
                                mem,
                                r,
                                f,
                                b,
                                recon,
                                texture,
                                qp,
                                mbx,
                                mby,
                                &mut fwd_pred,
                                &mut bwd_pred,
                                &mut stats,
                            )?;
                            ips = IntraPredState::reset();
                        }
                    }
                    Ok(())
                })();
                match result {
                    Ok(()) => {}
                    Err(e) => {
                        let Some(interval) = header.resync_interval else {
                            return Err(e);
                        };
                        // Error resilience: conceal this macroblock and
                        // everything up to the next valid marker.
                        conceal_until = Some(scan_to_marker(r, counter, total_mbs, interval));
                        conceal_mb(mem, fwd, recon, texture, mbx, mby);
                        stats.concealed_mbs += 1;
                        fwd_pred.commit(mbx, MotionVector::ZERO);
                        bwd_pred.commit(mbx, MotionVector::ZERO);
                        ips = IntraPredState::reset();
                    }
                }
                span!(
                    mem,
                    Phase::Parse,
                    charge.charge_to(mem, r.bit_pos().max(bit_start) - bit_start)
                );
            }
        }
    }

    if let Some(bbox) = header.bbox {
        fill_bbox_ring(mem, recon, bbox, mb_cols, mb_rows);
    }

    Ok(stats)
}

/// Scans forward for the next valid resynchronization marker and
/// returns the macroblock index at which decoding may resume (leaving
/// the reader positioned after the marker header), or `usize::MAX` when
/// no further marker exists.
fn scan_to_marker(r: &mut BitReader<'_>, after: usize, total_mbs: usize, interval: usize) -> usize {
    loop {
        if !r.scan_aligned_u16(crate::encoder::RESYNC_MARKER) {
            return usize::MAX;
        }
        let mut probe = r.clone();
        let parsed = (|| -> Result<usize, CodecError> {
            let idx = get_ue(&mut probe)? as usize;
            let _qp = probe.get_bits(5)?;
            Ok(idx)
        })();
        if let Ok(idx) = parsed {
            if idx > after && idx < total_mbs && idx % interval == 0 {
                *r = probe;
                return idx;
            }
        }
        // False positive inside payload: keep scanning after the match.
    }
}

/// Conceals one macroblock: zero-motion copy from the forward reference
/// when one exists, mid-grey otherwise.
fn conceal_mb<M: MemModel, F: FrameSink>(
    mem: &mut M,
    fwd: Option<&TracedFrame>,
    recon: &mut F,
    texture: &TextureCoder,
    mbx: usize,
    mby: usize,
) {
    match fwd {
        Some(reference) => {
            let (py, pu, pv) = predict_mb(mem, reference, texture, MotionVector::ZERO, mbx, mby);
            store_prediction(mem, recon, texture, &py, &pu, &pv, mbx, mby);
        }
        None => fill_grey_mb(mem, recon, mbx, mby),
    }
}

/// Decodes the six blocks of an intra macroblock.
///
/// Like the encoder's intra path, the whole entropy-decode + dequant +
/// IDCT pipeline is one `texture.dctq` span per macroblock.
#[allow(clippy::too_many_arguments)]
fn decode_intra_mb<M: MemModel, F: FrameSink>(
    mem: &mut M,
    r: &mut BitReader<'_>,
    recon: &mut F,
    texture: &mut TextureCoder,
    qp: u8,
    mbx: usize,
    mby: usize,
    ips: &mut IntraPredState,
) -> Result<(), CodecError> {
    span!(
        mem,
        Phase::DctQuant,
        decode_intra_mb_blocks(mem, r, recon, texture, qp, mbx, mby, ips)
    )
}

/// The fallible body of [`decode_intra_mb`] (split out so `?` cannot
/// skip the span exit).
#[allow(clippy::too_many_arguments)]
fn decode_intra_mb_blocks<M: MemModel, F: FrameSink>(
    mem: &mut M,
    r: &mut BitReader<'_>,
    recon: &mut F,
    texture: &mut TextureCoder,
    qp: u8,
    mbx: usize,
    mby: usize,
    ips: &mut IntraPredState,
) -> Result<(), CodecError> {
    let (ry, ru, rv) = recon.planes_mut();
    let px = (mbx * 16) as isize;
    let py = (mby * 16) as isize;
    for blk in 0..4 {
        let bx = px + ((blk % 2) * 8) as isize;
        let by = py + ((blk / 2) * 8) as isize;
        let qb = texture.entropy_decode(mem, true, ips.y, r)?;
        ips.y = qb.qdc();
        let rec = texture.reconstruct(mem, &qb, qp);
        write_block(mem, ry, bx, by, &rec);
    }
    let cx = (mbx * 8) as isize;
    let cy = (mby * 8) as isize;
    for plane_idx in 0..2 {
        let pred = if plane_idx == 0 { ips.u } else { ips.v };
        let qb = texture.entropy_decode(mem, true, pred, r)?;
        if plane_idx == 0 {
            ips.u = qb.qdc();
        } else {
            ips.v = qb.qdc();
        }
        let rec = texture.reconstruct(mem, &qb, qp);
        let dst: &mut F::Plane = if plane_idx == 0 { &mut *ru } else { &mut *rv };
        write_block(mem, dst, cx, cy, &rec);
    }
    Ok(())
}

/// Builds the three prediction buffers for an inter MB.
fn predict_mb<M: MemModel>(
    mem: &mut M,
    reference: &TracedFrame,
    texture: &TextureCoder,
    mv: MotionVector,
    mbx: usize,
    mby: usize,
) -> ([u8; 256], [u8; 64], [u8; 64]) {
    span!(mem, Phase::McPredict, {
        let mut pred_y = [0u8; 256];
        motion_compensate_block(
            mem,
            &reference.y,
            mv,
            (mbx * 16) as isize,
            (mby * 16) as isize,
            16,
            16,
            &mut pred_y,
        );
        let cmv = chroma_mv(mv);
        let mut pred_u = [0u8; 64];
        let mut pred_v = [0u8; 64];
        motion_compensate_block(
            mem,
            &reference.u,
            cmv,
            (mbx * 8) as isize,
            (mby * 8) as isize,
            8,
            8,
            &mut pred_u,
        );
        motion_compensate_block(
            mem,
            &reference.v,
            cmv,
            (mbx * 8) as isize,
            (mby * 8) as isize,
            8,
            8,
            &mut pred_v,
        );
        texture.charge_pred_store(mem, 384);
        (pred_y, pred_u, pred_v)
    })
}

/// Parses the cbp flags and the flagged residual blocks — the Vlc
/// section of an inter macroblock, split out so `?` cannot skip the
/// span exit.
fn parse_inter_residual<M: MemModel>(
    mem: &mut M,
    r: &mut BitReader<'_>,
    texture: &mut TextureCoder,
    cbp: &mut [bool; 6],
    blocks: &mut [crate::texture::QuantizedBlock; 6],
) -> Result<(), CodecError> {
    for b in cbp.iter_mut() {
        *b = r.get_bit().map_err(CodecError::from)?;
    }
    for i in 0..6 {
        if cbp[i] {
            blocks[i] = texture.entropy_decode(mem, false, 0, r)?;
        }
    }
    Ok(())
}

/// Decodes cbp flags and the flagged residual blocks, then reconstructs.
#[allow(clippy::too_many_arguments)]
fn decode_inter_residual_and_reconstruct<M: MemModel, F: FrameSink>(
    mem: &mut M,
    r: &mut BitReader<'_>,
    recon: &mut F,
    texture: &mut TextureCoder,
    qp: u8,
    mbx: usize,
    mby: usize,
    pred_y: &[u8; 256],
    pred_u: &[u8; 64],
    pred_v: &[u8; 64],
) -> Result<(), CodecError> {
    let mut cbp = [false; 6];
    let empty = crate::texture::QuantizedBlock {
        levels: m4ps_dsp::CoefBlock::default(),
        intra: false,
    };
    let mut blocks = [empty; 6];
    span!(
        mem,
        Phase::Vlc,
        parse_inter_residual(mem, r, texture, &mut cbp, &mut blocks)
    )?;
    reconstruct_inter_mb(
        mem, recon, &blocks, &cbp, pred_y, pred_u, pred_v, texture, qp, mbx, mby,
    );
    Ok(())
}

/// Decodes one macroblock of a P-VOP.
#[allow(clippy::too_many_arguments)]
fn decode_p_mb<M: MemModel, F: FrameSink>(
    mem: &mut M,
    r: &mut BitReader<'_>,
    reference: &TracedFrame,
    recon: &mut F,
    texture: &mut TextureCoder,
    qp: u8,
    mbx: usize,
    mby: usize,
    ips: &mut IntraPredState,
    mv_pred: &mut MvPredictor,
    stats: &mut VopStats,
) -> Result<(), CodecError> {
    let skipped = r.get_bit().map_err(CodecError::from)?;
    if skipped {
        let (pred_y, pred_u, pred_v) =
            predict_mb(mem, reference, texture, MotionVector::ZERO, mbx, mby);
        // Zero residue: reconstruction is the prediction itself.
        store_prediction(mem, recon, texture, &pred_y, &pred_u, &pred_v, mbx, mby);
        stats.skipped_mbs += 1;
        mv_pred.commit(mbx, MotionVector::ZERO);
        *ips = IntraPredState::reset();
        return Ok(());
    }
    let kind = MacroblockKind::from_code(get_ue(r)?)
        .ok_or(CodecError::InvalidStream("bad macroblock type"))?;
    match kind {
        MacroblockKind::Intra => {
            decode_intra_mb(mem, r, recon, texture, qp, mbx, mby, ips)?;
            stats.intra_mbs += 1;
            mv_pred.commit(mbx, MotionVector::ZERO);
        }
        MacroblockKind::Inter => {
            *ips = IntraPredState::reset();
            let pred = mv_pred.predict(mbx);
            let dx = get_se(r)?;
            let dy = get_se(r)?;
            let mv = checked_mv(pred, dx, dy)?;
            let (pred_y, pred_u, pred_v) = predict_mb(mem, reference, texture, mv, mbx, mby);
            decode_inter_residual_and_reconstruct(
                mem, r, recon, texture, qp, mbx, mby, &pred_y, &pred_u, &pred_v,
            )?;
            stats.inter_mbs += 1;
            mv_pred.commit(mbx, mv);
        }
        MacroblockKind::Inter4V => {
            *ips = IntraPredState::reset();
            let mut mvs4 = [MotionVector::ZERO; 4];
            let mut pred = mv_pred.predict(mbx);
            for mv in mvs4.iter_mut() {
                let dx = get_se(r)?;
                let dy = get_se(r)?;
                *mv = checked_mv(pred, dx, dy)?;
                pred = *mv;
            }
            let (pred_y, pred_u, pred_v) = predict_mb_4mv(mem, reference, texture, &mvs4, mbx, mby);
            decode_inter_residual_and_reconstruct(
                mem, r, recon, texture, qp, mbx, mby, &pred_y, &pred_u, &pred_v,
            )?;
            stats.inter_mbs += 1;
            mv_pred.commit(mbx, MotionVector::median3(mvs4[0], mvs4[1], mvs4[2]));
        }
        _ => return Err(CodecError::InvalidStream("illegal MB type in P-VOP")),
    }
    Ok(())
}

/// Stores a pure prediction (no residue) into the reconstruction.
#[allow(clippy::too_many_arguments)]
fn store_prediction<M: MemModel, F: FrameSink>(
    mem: &mut M,
    recon: &mut F,
    texture: &TextureCoder,
    pred_y: &[u8; 256],
    pred_u: &[u8; 64],
    pred_v: &[u8; 64],
    mbx: usize,
    mby: usize,
) {
    let (ry, ru, rv) = recon.planes_mut();
    texture.charge_pred_load(mem, 384);
    for blk in 0..4 {
        let bx = (mbx * 16 + (blk % 2) * 8) as isize;
        let by = (mby * 16 + (blk / 2) * 8) as isize;
        let pred = crate::mbops::pred_subblock(pred_y, blk);
        write_block_u8(mem, ry, bx, by, &pred);
    }
    let cx = (mbx * 8) as isize;
    let cy = (mby * 8) as isize;
    write_block_u8(mem, ru, cx, cy, pred_u);
    write_block_u8(mem, rv, cx, cy, pred_v);
}

/// Decodes one macroblock of a B-VOP.
#[allow(clippy::too_many_arguments)]
fn decode_b_mb<M: MemModel, F: FrameSink>(
    mem: &mut M,
    r: &mut BitReader<'_>,
    fwd: &TracedFrame,
    bwd: &TracedFrame,
    recon: &mut F,
    texture: &mut TextureCoder,
    qp: u8,
    mbx: usize,
    mby: usize,
    fwd_pred: &mut MvPredictor,
    bwd_pred: &mut MvPredictor,
    stats: &mut VopStats,
) -> Result<(), CodecError> {
    let kind = MacroblockKind::from_code(get_ue(r)?)
        .ok_or(CodecError::InvalidStream("bad macroblock type"))?;
    if !matches!(
        kind,
        MacroblockKind::Forward | MacroblockKind::Backward | MacroblockKind::Bidirectional
    ) {
        return Err(CodecError::InvalidStream("illegal MB type in B-VOP"));
    }
    let mut mvf = MotionVector::ZERO;
    let mut mvb = MotionVector::ZERO;
    if kind != MacroblockKind::Backward {
        let p = fwd_pred.predict(mbx);
        let dx = get_se(r)?;
        let dy = get_se(r)?;
        mvf = checked_mv(p, dx, dy)?;
    }
    if kind != MacroblockKind::Forward {
        let p = bwd_pred.predict(mbx);
        let dx = get_se(r)?;
        let dy = get_se(r)?;
        mvb = checked_mv(p, dx, dy)?;
    }
    fwd_pred.commit(mbx, mvf);
    bwd_pred.commit(mbx, mvb);

    let (pred_y, pred_u, pred_v) = match kind {
        MacroblockKind::Forward => predict_mb(mem, fwd, texture, mvf, mbx, mby),
        MacroblockKind::Backward => predict_mb(mem, bwd, texture, mvb, mbx, mby),
        _ => {
            let (fy, fu, fv) = predict_mb(mem, fwd, texture, mvf, mbx, mby);
            let (by_, bu, bv) = predict_mb(mem, bwd, texture, mvb, mbx, mby);
            let mut y = [0u8; 256];
            let mut u = [0u8; 64];
            let mut v = [0u8; 64];
            average_predictions(&fy, &by_, &mut y);
            average_predictions(&fu, &bu, &mut u);
            average_predictions(&fv, &bv, &mut v);
            (y, u, v)
        }
    };
    decode_inter_residual_and_reconstruct(
        mem, r, recon, texture, qp, mbx, mby, &pred_y, &pred_u, &pred_v,
    )?;
    stats.inter_mbs += 1;
    Ok(())
}
