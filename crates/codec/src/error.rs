use m4ps_bitstream::BitstreamError;
use std::error::Error;
use std::fmt;

/// Error produced by encoding or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Underlying bitstream failure.
    Bitstream(BitstreamError),
    /// Frame dimensions incompatible with the coder configuration.
    DimensionMismatch {
        /// What was expected (width, height).
        expected: (usize, usize),
        /// What was supplied.
        found: (usize, usize),
    },
    /// The bitstream is syntactically valid but semantically impossible
    /// (e.g. a B-VOP before any anchor frame).
    InvalidStream(&'static str),
    /// A configuration parameter is out of its legal range.
    InvalidConfig(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Bitstream(e) => write!(f, "bitstream error: {e}"),
            CodecError::DimensionMismatch { expected, found } => write!(
                f,
                "dimension mismatch: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            CodecError::InvalidStream(msg) => write!(f, "invalid stream: {msg}"),
            CodecError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for CodecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CodecError::Bitstream(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BitstreamError> for CodecError {
    fn from(e: BitstreamError) -> Self {
        CodecError::Bitstream(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = CodecError::DimensionMismatch {
            expected: (720, 576),
            found: (704, 576),
        };
        assert!(e.to_string().contains("720x576"));
        let b: CodecError = BitstreamError::StartCodeNotFound.into();
        assert!(b.to_string().contains("startcode"));
    }
}
