//! Traced pixel planes with motion-search padding.
//!
//! Reference planes are stored with a [`PAD`]-pixel border on every side
//! (edge-replicated, as MoMuSys pads reconstructed VOPs) so that motion
//! search and compensation may address candidates that spill over the
//! frame edge without bounds branches in the inner loops.

use m4ps_memsim::{AccessKind, AddressSpace, MemModel, SimBuf};
use std::ops::Range;

/// Border width in pixels around every plane.
pub const PAD: usize = 16;

/// A mutable row-range destination for traced pixel writes.
///
/// Implemented by whole planes ([`TracedPlane`]) and by borrowed slice
/// regions ([`PlaneViewMut`]), so the macroblock write path is shared
/// between the sequential decoder and the zero-copy parallel encoder.
pub(crate) trait RowSink {
    /// Traced write of a row of pixels at `(x, y)`.
    fn store_row<M: MemModel>(&mut self, mem: &mut M, x: isize, y: isize, src: &[u8]);

    /// Traced write of a row-major `w`-wide rectangle of pixels with its
    /// top-left at `(x, y)`. The default issues one [`RowSink::store_row`]
    /// per row; traced sinks override it with a single rectangular
    /// charge producing identical counters in identical order.
    ///
    /// # Panics
    ///
    /// Panics if `src.len()` is not a multiple of `w`.
    fn store_rect<M: MemModel>(&mut self, mem: &mut M, x: isize, y: isize, w: usize, src: &[u8]) {
        assert_eq!(src.len() % w, 0);
        for (r, row) in src.chunks_exact(w).enumerate() {
            self.store_row(mem, x, y + r as isize, row);
        }
    }
}

/// A mutable 4:2:0 destination (three [`RowSink`] planes).
pub(crate) trait FrameSink {
    /// Plane type of the three components.
    type Plane: RowSink;
    /// Mutable access to `(y, u, v)` at once.
    fn planes_mut(&mut self) -> (&mut Self::Plane, &mut Self::Plane, &mut Self::Plane);
}

/// One traced 8-bit pixel plane.
#[derive(Debug, Clone)]
pub struct TracedPlane {
    width: usize,
    height: usize,
    stride: usize,
    buf: SimBuf<u8>,
}

impl TracedPlane {
    /// Allocates a zeroed plane of `width × height` visible pixels in
    /// `space`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(space: &mut AddressSpace, width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0);
        let stride = width + 2 * PAD;
        let rows = height + 2 * PAD;
        TracedPlane {
            width,
            height,
            stride,
            buf: SimBuf::zeroed(space, stride * rows),
        }
    }

    /// Visible width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Visible height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Linear index of signed coordinates (may address the pad border).
    ///
    /// # Panics
    ///
    /// Panics if the coordinate falls outside the padded surface.
    fn index(&self, x: isize, y: isize) -> usize {
        let px = x + PAD as isize;
        let py = y + PAD as isize;
        assert!(
            px >= 0 && (px as usize) < self.stride,
            "x {x} out of padded range"
        );
        assert!(
            py >= 0 && (py as usize) < self.height + 2 * PAD,
            "y {y} out of padded range"
        );
        py as usize * self.stride + px as usize
    }

    /// Traced read of `len` pixels of row `y` starting at `x`
    /// (coordinates may be negative into the pad).
    pub fn load_row<M: MemModel>(&self, mem: &mut M, x: isize, y: isize, len: usize) -> &[u8] {
        let i = self.index(x, y);
        self.buf.load_run(mem, i, len)
    }

    /// Traced write of a row of pixels at `(x, y)`.
    pub fn store_row<M: MemModel>(&mut self, mem: &mut M, x: isize, y: isize, src: &[u8]) {
        let i = self.index(x, y);
        self.buf.store_run(mem, i, src)
    }

    /// Untraced view of the whole padded surface plus its stride, for
    /// compute kernels that account their traffic separately
    /// (compute-then-charge). Coordinate `(x, y)` lives at linear index
    /// `(y + PAD) * stride + (x + PAD)`.
    pub(crate) fn raw_surface(&self) -> (&[u8], usize) {
        (self.buf.raw(), self.stride)
    }

    /// Charges the traced read of `len` pixels of row `y` starting at
    /// `x` without returning data — exactly the charge stream of
    /// [`TracedPlane::load_row`].
    pub(crate) fn touch_row_read<M: MemModel>(&self, mem: &mut M, x: isize, y: isize, len: usize) {
        self.buf.touch_read(mem, self.index(x, y), len);
    }

    /// Charges traced reads of a `w × h` pixel window at `(x, y)` as one
    /// rectangular charge: identical counters, in identical order, to
    /// issuing [`TracedPlane::load_row`] for each row `y..y+h`.
    pub(crate) fn touch_rect_read<M: MemModel>(
        &self,
        mem: &mut M,
        x: isize,
        y: isize,
        w: usize,
        h: usize,
    ) {
        if w == 0 || h == 0 {
            return;
        }
        let first = self.index(x, y);
        // Validate the far corner so the rect obeys the same padded
        // bounds as the per-row path would.
        let _ = self.index(x + w as isize - 1, y + h as isize - 1);
        mem.access_rect(
            self.buf.addr_of(first),
            self.stride as u64,
            h as u64,
            w as u64,
            AccessKind::Load,
            w as u64,
        );
    }

    /// Charges traced writes of a `w × h` pixel window at `(x, y)` as
    /// one rectangular charge (the store dual of
    /// [`TracedPlane::touch_rect_read`]).
    pub(crate) fn touch_rect_write<M: MemModel>(
        &self,
        mem: &mut M,
        x: isize,
        y: isize,
        w: usize,
        h: usize,
    ) {
        if w == 0 || h == 0 {
            return;
        }
        let first = self.index(x, y);
        let _ = self.index(x + w as isize - 1, y + h as isize - 1);
        mem.access_rect(
            self.buf.addr_of(first),
            self.stride as u64,
            h as u64,
            w as u64,
            AccessKind::Store,
            w as u64,
        );
    }

    /// Traced single-pixel read.
    pub fn load_pixel<M: MemModel>(&self, mem: &mut M, x: isize, y: isize) -> u8 {
        let i = self.index(x, y);
        self.buf.load(mem, i)
    }

    /// Traced single-pixel write.
    pub fn store_pixel<M: MemModel>(&mut self, mem: &mut M, x: isize, y: isize, v: u8) {
        let i = self.index(x, y);
        self.buf.store(mem, i, v)
    }

    /// Untraced single-pixel write, for making partial state visible to
    /// causal context computations whose traffic is charged at row
    /// granularity elsewhere.
    pub fn poke_untraced(&mut self, x: isize, y: isize, v: u8) {
        let i = self.index(x, y);
        self.buf.raw_mut()[i] = v;
    }

    /// Untraced row view (for assertions and boundary I/O only).
    pub fn raw_row(&self, x: isize, y: isize, len: usize) -> &[u8] {
        let i = self.index(x, y);
        &self.buf.raw()[i..i + len]
    }

    /// Simulated address of the pixel at `(x, y)` — used to aim software
    /// prefetches.
    pub fn addr_of(&self, x: isize, y: isize) -> u64 {
        self.buf.addr_of(self.index(x, y))
    }

    /// Splits the plane into disjoint mutable views over the visible
    /// row ranges `parts` (ascending, non-overlapping). Each view owns
    /// the full padded width of its rows and charges its stores to the
    /// same simulated addresses the whole plane would, so slice workers
    /// write the reconstruction in place — no private clone, no
    /// stitch-back copy — while the traced reference stream stays
    /// byte-identical to the sequential path.
    ///
    /// # Panics
    ///
    /// Panics if the ranges overlap, run out of order, or exceed the
    /// visible height.
    pub fn split_rows_mut(&mut self, parts: &[Range<usize>]) -> Vec<PlaneViewMut<'_>> {
        let (width, height, stride) = (self.width, self.height, self.stride);
        let base = self.buf.base_addr();
        let mut rest: &mut [u8] = self.buf.raw_mut();
        let mut consumed = 0usize; // bytes already split off the front
        let mut prev_end = 0usize;
        let mut out = Vec::with_capacity(parts.len());
        for r in parts {
            assert!(
                r.start >= prev_end && r.start <= r.end && r.end <= height,
                "row ranges must be ascending, disjoint and within 0..{height}"
            );
            prev_end = r.end;
            let first = (r.start + PAD) * stride;
            let last = (r.end + PAD) * stride;
            let tail = std::mem::take(&mut rest);
            let (_, tail) = tail.split_at_mut(first - consumed);
            let (mid, tail) = tail.split_at_mut(last - first);
            rest = tail;
            consumed = last;
            out.push(PlaneViewMut {
                data: mid,
                base: base + first as u64,
                stride,
                width,
                y0: r.start as isize,
                y1: r.end as isize,
            });
        }
        out
    }

    /// Copies an untraced source plane (e.g. generator output) into the
    /// visible area, issuing traced stores row by row — this is the
    /// "frame input" stage of the application pipeline. When
    /// `prefetch` is true a software prefetch is issued one line ahead,
    /// mimicking the compiler's conservative streaming-loop insertion.
    ///
    /// # Panics
    ///
    /// Panics if `src` is not exactly `width × height` samples.
    pub fn copy_from<M: MemModel>(&mut self, mem: &mut M, src: &[u8], prefetch: bool) {
        assert_eq!(src.len(), self.width * self.height, "source size mismatch");
        if !prefetch {
            // No interleaved prefetches: the rows form one rectangle.
            RowSink::store_rect(self, mem, 0, 0, self.width, src);
            return;
        }
        for y in 0..self.height {
            if y + 1 < self.height {
                // One prefetch pair per row (streaming-loop insertion).
                mem.prefetch_pair(self.addr_of(0, (y + 1) as isize));
            }
            let row = &src[y * self.width..][..self.width];
            self.store_row(mem, 0, y as isize, row);
        }
    }

    /// Traced clear (zero-fill) of a pixel region.
    ///
    /// # Panics
    ///
    /// Panics if the region exceeds the visible area.
    pub fn clear_region<M: MemModel>(
        &mut self,
        mem: &mut M,
        x0: usize,
        y0: usize,
        w: usize,
        h: usize,
    ) {
        assert!(x0 + w <= self.width && y0 + h <= self.height);
        self.touch_rect_write(mem, x0 as isize, y0 as isize, w, h);
        for y in y0..y0 + h {
            let i = self.index(x0 as isize, y as isize);
            self.buf.raw_mut()[i..i + w].fill(0);
        }
    }

    /// Copies the `bbox = (x0, y0, w, h)` region of a full-frame source
    /// slice into the same region of this plane, with traced stores.
    ///
    /// # Panics
    ///
    /// Panics if `src` is not a full `width × height` plane or the
    /// region exceeds it.
    pub fn copy_region_from<M: MemModel>(
        &mut self,
        mem: &mut M,
        src: &[u8],
        bbox: (usize, usize, usize, usize),
    ) {
        let (x0, y0, w, h) = bbox;
        assert_eq!(src.len(), self.width * self.height);
        assert!(x0 + w <= self.width && y0 + h <= self.height);
        self.touch_rect_write(mem, x0 as isize, y0 as isize, w, h);
        for y in y0..y0 + h {
            let row = &src[y * self.width + x0..][..w];
            let i = self.index(x0 as isize, y as isize);
            self.buf.raw_mut()[i..i + w].copy_from_slice(row);
        }
    }

    /// Reads the visible area back into a `Vec` with traced loads
    /// (the "frame output" stage).
    pub fn copy_out<M: MemModel>(&self, mem: &mut M) -> Vec<u8> {
        self.touch_rect_read(mem, 0, 0, self.width, self.height);
        let mut out = Vec::with_capacity(self.width * self.height);
        for y in 0..self.height {
            out.extend_from_slice(self.raw_row(0, y as isize, self.width));
        }
        out
    }

    /// Edge-replicates the visible area into the pad border (traced):
    /// MoMuSys pads every reconstructed VOP before it becomes a
    /// reference.
    pub fn pad_borders<M: MemModel>(&mut self, mem: &mut M) {
        let w = self.width;
        let h = self.height;
        // Left/right columns.
        for y in 0..h as isize {
            let left = self.load_pixel(mem, 0, y);
            let right = self.load_pixel(mem, w as isize - 1, y);
            self.store_row(mem, -(PAD as isize), y, &[left; PAD]);
            self.store_row(mem, w as isize, y, &[right; PAD]);
        }
        // Top/bottom rows (including corners, now that side pads exist).
        let full = self.stride;
        let top: Vec<u8> = self.raw_row(-(PAD as isize), 0, full).to_vec();
        let bottom: Vec<u8> = self.raw_row(-(PAD as isize), h as isize - 1, full).to_vec();
        self.buf
            .touch_read(mem, self.index(-(PAD as isize), 0), full);
        self.buf
            .touch_read(mem, self.index(-(PAD as isize), h as isize - 1), full);
        for p in 1..=PAD as isize {
            self.store_row(mem, -(PAD as isize), -p, &top);
            self.store_row(mem, -(PAD as isize), h as isize - 1 + p, &bottom);
        }
    }
}

/// A traced 4:2:0 frame (full-size Y, half-size U and V).
#[derive(Debug, Clone)]
pub struct TracedFrame {
    /// Luminance plane.
    pub y: TracedPlane,
    /// Cb plane.
    pub u: TracedPlane,
    /// Cr plane.
    pub v: TracedPlane,
}

impl TracedFrame {
    /// Allocates all three planes for a `width × height` frame.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is odd or zero.
    pub fn new(space: &mut AddressSpace, width: usize, height: usize) -> Self {
        assert!(width.is_multiple_of(2) && height.is_multiple_of(2));
        TracedFrame {
            y: TracedPlane::new(space, width, height),
            u: TracedPlane::new(space, width / 2, height / 2),
            v: TracedPlane::new(space, width / 2, height / 2),
        }
    }

    /// Loads a YUV 4:2:0 triple of raw planes (e.g. a generator frame).
    pub fn copy_from_yuv<M: MemModel>(
        &mut self,
        mem: &mut M,
        y: &[u8],
        u: &[u8],
        v: &[u8],
        prefetch: bool,
    ) {
        self.y.copy_from(mem, y, prefetch);
        self.u.copy_from(mem, u, prefetch);
        self.v.copy_from(mem, v, prefetch);
    }

    /// Loads only the macroblock-aligned `bbox` region of a 4:2:0 frame
    /// (the reference codec reads VOP-sized buffers for shaped objects).
    ///
    /// # Panics
    ///
    /// Panics if the box is unaligned or out of range.
    pub fn copy_region_from_yuv<M: MemModel>(
        &mut self,
        mem: &mut M,
        y: &[u8],
        u: &[u8],
        v: &[u8],
        bbox: (usize, usize, usize, usize),
    ) {
        let (x0, y0, w, h) = bbox;
        assert!(x0 % 2 == 0 && y0 % 2 == 0 && w % 2 == 0 && h % 2 == 0);
        self.y.copy_region_from(mem, y, bbox);
        self.u
            .copy_region_from(mem, u, (x0 / 2, y0 / 2, w / 2, h / 2));
        self.v
            .copy_region_from(mem, v, (x0 / 2, y0 / 2, w / 2, h / 2));
    }

    /// Pads all three planes.
    pub fn pad_borders<M: MemModel>(&mut self, mem: &mut M) {
        self.y.pad_borders(mem);
        self.u.pad_borders(mem);
        self.v.pad_borders(mem);
    }

    /// Splits the frame into disjoint mutable views over the given
    /// macroblock-row ranges (16-pixel luma rows, 8-pixel chroma rows)
    /// — the zero-copy slice regions of the parallel encoder; see
    /// [`TracedPlane::split_rows_mut`].
    ///
    /// # Panics
    ///
    /// Panics if the ranges overlap, run out of order, or exceed the
    /// frame's macroblock rows.
    pub fn split_mb_rows_mut(&mut self, mb_rows: &[Range<usize>]) -> Vec<FrameViewMut<'_>> {
        let luma: Vec<Range<usize>> = mb_rows.iter().map(|r| r.start * 16..r.end * 16).collect();
        let chroma: Vec<Range<usize>> = mb_rows.iter().map(|r| r.start * 8..r.end * 8).collect();
        let ys = self.y.split_rows_mut(&luma);
        let us = self.u.split_rows_mut(&chroma);
        let vs = self.v.split_rows_mut(&chroma);
        ys.into_iter()
            .zip(us)
            .zip(vs)
            .map(|((y, u), v)| FrameViewMut { y, u, v })
            .collect()
    }
}

/// A mutable borrowed window of a [`TracedPlane`] covering the visible
/// rows `[y0, y1)`, with the plane's padded-access semantics: `x` may
/// address the side pads, addresses and store tracing are identical to
/// writing the parent plane directly. Disjoint views of one plane can
/// be written from different threads (`split_at_mut`-style borrowing).
#[derive(Debug)]
pub struct PlaneViewMut<'a> {
    data: &'a mut [u8],
    /// Simulated address of `data[0]`.
    base: u64,
    stride: usize,
    width: usize,
    y0: isize,
    y1: isize,
}

impl PlaneViewMut<'_> {
    /// Visible width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The visible row range this view may write.
    pub fn rows(&self) -> Range<isize> {
        self.y0..self.y1
    }

    /// Linear index of signed coordinates within the view.
    ///
    /// # Panics
    ///
    /// Panics if `y` falls outside the view's rows or `x` outside the
    /// padded width.
    fn index(&self, x: isize, y: isize) -> usize {
        let px = x + PAD as isize;
        assert!(
            px >= 0 && (px as usize) < self.stride,
            "x {x} out of padded range"
        );
        assert!(
            y >= self.y0 && y < self.y1,
            "y {y} outside view rows {}..{}",
            self.y0,
            self.y1
        );
        (y - self.y0) as usize * self.stride + px as usize
    }

    /// Traced write of a row of pixels at `(x, y)` — same charge stream
    /// as [`TracedPlane::store_row`] on the parent plane.
    pub fn store_row<M: MemModel>(&mut self, mem: &mut M, x: isize, y: isize, src: &[u8]) {
        let i = self.index(x, y);
        if !src.is_empty() {
            mem.access_range(
                self.base + i as u64,
                src.len() as u64,
                AccessKind::Store,
                src.len() as u64,
            );
        }
        self.data[i..i + src.len()].copy_from_slice(src);
    }
}

/// Disjoint mutable views of a [`TracedFrame`]'s three planes over one
/// slice's macroblock rows.
#[derive(Debug)]
pub struct FrameViewMut<'a> {
    /// Luminance rows.
    pub y: PlaneViewMut<'a>,
    /// Cb rows.
    pub u: PlaneViewMut<'a>,
    /// Cr rows.
    pub v: PlaneViewMut<'a>,
}

impl RowSink for TracedPlane {
    fn store_row<M: MemModel>(&mut self, mem: &mut M, x: isize, y: isize, src: &[u8]) {
        TracedPlane::store_row(self, mem, x, y, src);
    }

    fn store_rect<M: MemModel>(&mut self, mem: &mut M, x: isize, y: isize, w: usize, src: &[u8]) {
        assert_eq!(src.len() % w, 0);
        let h = src.len() / w;
        self.touch_rect_write(mem, x, y, w, h);
        for (r, row) in src.chunks_exact(w).enumerate() {
            let i = self.index(x, y + r as isize);
            self.buf.raw_mut()[i..i + w].copy_from_slice(row);
        }
    }
}

impl RowSink for PlaneViewMut<'_> {
    fn store_row<M: MemModel>(&mut self, mem: &mut M, x: isize, y: isize, src: &[u8]) {
        PlaneViewMut::store_row(self, mem, x, y, src);
    }

    fn store_rect<M: MemModel>(&mut self, mem: &mut M, x: isize, y: isize, w: usize, src: &[u8]) {
        assert_eq!(src.len() % w, 0);
        let h = src.len() / w;
        if w == 0 || h == 0 {
            return;
        }
        let first = self.index(x, y);
        let _ = self.index(x + w as isize - 1, y + h as isize - 1);
        mem.access_rect(
            self.base + first as u64,
            self.stride as u64,
            h as u64,
            w as u64,
            AccessKind::Store,
            w as u64,
        );
        for (r, row) in src.chunks_exact(w).enumerate() {
            let i = self.index(x, y + r as isize);
            self.data[i..i + w].copy_from_slice(row);
        }
    }
}

impl FrameSink for TracedFrame {
    type Plane = TracedPlane;
    fn planes_mut(&mut self) -> (&mut TracedPlane, &mut TracedPlane, &mut TracedPlane) {
        (&mut self.y, &mut self.u, &mut self.v)
    }
}

impl<'a> FrameSink for FrameViewMut<'a> {
    type Plane = PlaneViewMut<'a>;
    fn planes_mut(
        &mut self,
    ) -> (
        &mut PlaneViewMut<'a>,
        &mut PlaneViewMut<'a>,
        &mut PlaneViewMut<'a>,
    ) {
        (&mut self.y, &mut self.u, &mut self.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m4ps_memsim::NullModel;

    fn setup() -> (AddressSpace, NullModel) {
        (AddressSpace::new(), NullModel::new())
    }

    #[test]
    fn rows_roundtrip() {
        let (mut space, mut mem) = setup();
        let mut p = TracedPlane::new(&mut space, 32, 16);
        p.store_row(&mut mem, 0, 3, &[7; 32]);
        assert_eq!(p.load_row(&mut mem, 0, 3, 32), &[7; 32]);
        assert_eq!(p.load_pixel(&mut mem, 31, 3), 7);
        assert_eq!(p.load_pixel(&mut mem, 0, 2), 0);
    }

    #[test]
    fn negative_coordinates_address_pad() {
        let (mut space, mut mem) = setup();
        let mut p = TracedPlane::new(&mut space, 32, 16);
        p.store_pixel(&mut mem, -1, -1, 99);
        assert_eq!(p.load_pixel(&mut mem, -1, -1), 99);
    }

    #[test]
    #[should_panic(expected = "out of padded range")]
    fn beyond_pad_panics() {
        let (mut space, mut mem) = setup();
        let p = TracedPlane::new(&mut space, 32, 16);
        p.load_pixel(&mut mem, -(PAD as isize) - 1, 0);
    }

    #[test]
    fn copy_in_then_out_preserves_data() {
        let (mut space, mut mem) = setup();
        let mut p = TracedPlane::new(&mut space, 8, 4);
        let src: Vec<u8> = (0..32).collect();
        p.copy_from(&mut mem, &src, false);
        assert_eq!(p.copy_out(&mut mem), src);
    }

    #[test]
    fn padding_replicates_edges() {
        let (mut space, mut mem) = setup();
        let mut p = TracedPlane::new(&mut space, 8, 4);
        let mut src = vec![50u8; 32];
        src[0] = 10; // top-left pixel
        src[7] = 20; // top-right
        src[24] = 30; // bottom-left
        src[31] = 40; // bottom-right
        p.copy_from(&mut mem, &src, false);
        p.pad_borders(&mut mem);
        assert_eq!(p.load_pixel(&mut mem, -1, 0), 10);
        assert_eq!(p.load_pixel(&mut mem, -5, -7), 10);
        assert_eq!(p.load_pixel(&mut mem, 8, 0), 20);
        assert_eq!(p.load_pixel(&mut mem, 12, -3), 20);
        assert_eq!(p.load_pixel(&mut mem, -2, 5), 30);
        assert_eq!(p.load_pixel(&mut mem, 9, 3), 40);
        assert_eq!(p.load_pixel(&mut mem, 10, 10), 40);
    }

    #[test]
    fn copy_from_issues_prefetches_when_asked() {
        use m4ps_memsim::{Hierarchy, MachineSpec};
        let mut space = AddressSpace::new();
        let mut mem = Hierarchy::new(MachineSpec::o2());
        let mut p = TracedPlane::new(&mut space, 64, 8);
        p.copy_from(&mut mem, &vec![1u8; 64 * 8], true);
        assert_eq!(mem.counters().prefetches, 14); // 7 rows x 1 pair
        let mut mem2 = Hierarchy::new(MachineSpec::o2());
        let mut p2 = TracedPlane::new(&mut space, 64, 8);
        p2.copy_from(&mut mem2, &vec![1u8; 64 * 8], false);
        assert_eq!(mem2.counters().prefetches, 0);
    }

    #[test]
    fn frame_chroma_planes_are_half_size() {
        let (mut space, _) = setup();
        let f = TracedFrame::new(&mut space, 32, 16);
        assert_eq!(f.y.width(), 32);
        assert_eq!(f.u.width(), 16);
        assert_eq!(f.v.height(), 8);
    }

    #[test]
    fn distinct_planes_have_distinct_addresses() {
        let (mut space, _) = setup();
        let f = TracedFrame::new(&mut space, 32, 16);
        assert_ne!(f.y.addr_of(0, 0), f.u.addr_of(0, 0));
        assert_ne!(f.u.addr_of(0, 0), f.v.addr_of(0, 0));
    }

    #[test]
    fn view_stores_land_in_parent_plane() {
        let (mut space, mut mem) = setup();
        let mut p = TracedPlane::new(&mut space, 32, 32);
        {
            let mut views = p.split_rows_mut(&[0..16, 16..32]);
            views[0].store_row(&mut mem, 0, 3, &[7; 32]);
            views[1].store_row(&mut mem, -2, 20, &[9; 36]);
            assert_eq!(views[0].rows(), 0..16);
            assert_eq!(views[1].rows(), 16..32);
        }
        assert_eq!(p.load_row(&mut mem, 0, 3, 32), &[7; 32]);
        assert_eq!(p.load_row(&mut mem, -2, 20, 36), &[9; 36]);
        assert_eq!(p.load_pixel(&mut mem, 0, 4), 0);
    }

    #[test]
    fn view_stores_charge_the_same_traced_addresses() {
        use m4ps_memsim::{Hierarchy, MachineSpec};
        let mut space = AddressSpace::new();
        let mut a = TracedPlane::new(&mut space, 48, 32);
        // A second plane at *the same simulated addresses* is what a
        // per-slice clone used to be: clones preserve the base address.
        let mut b = a.clone();

        let mut mem_direct = Hierarchy::new(MachineSpec::o2());
        for y in 0..32 {
            a.store_row(&mut mem_direct, 0, y, &[y as u8; 48]);
        }

        let mut mem_view = Hierarchy::new(MachineSpec::o2());
        let mut views = b.split_rows_mut(&[0..16, 16..32]);
        for v in &mut views {
            for y in v.rows() {
                v.store_row(&mut mem_view, 0, y, &[y as u8; 48]);
            }
        }
        assert_eq!(mem_direct.counters(), mem_view.counters());
    }

    #[test]
    #[should_panic(expected = "ascending, disjoint")]
    fn overlapping_split_ranges_panic() {
        let (mut space, _) = setup();
        let mut p = TracedPlane::new(&mut space, 32, 32);
        let _ = p.split_rows_mut(&[0..16, 8..32]);
    }

    #[test]
    #[should_panic(expected = "outside view rows")]
    // One deliberate half-height part, not a range-to-Vec typo.
    #[allow(clippy::single_range_in_vec_init)]
    fn view_rejects_rows_outside_its_range() {
        let (mut space, mut mem) = setup();
        let mut p = TracedPlane::new(&mut space, 32, 32);
        let mut views = p.split_rows_mut(&[0..16]);
        views[0].store_row(&mut mem, 0, 16, &[1; 32]);
    }

    #[test]
    fn frame_split_covers_luma_and_chroma_rows() {
        let (mut space, mut mem) = setup();
        let mut f = TracedFrame::new(&mut space, 32, 32);
        {
            let mut views = f.split_mb_rows_mut(&[0..1, 1..2]);
            assert_eq!(views[0].y.rows(), 0..16);
            assert_eq!(views[0].u.rows(), 0..8);
            assert_eq!(views[1].y.rows(), 16..32);
            assert_eq!(views[1].v.rows(), 8..16);
            views[1].u.store_row(&mut mem, 0, 12, &[5; 16]);
        }
        assert_eq!(f.u.load_pixel(&mut mem, 0, 12), 5);
    }
}
