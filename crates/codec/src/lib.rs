//! A from-scratch MPEG-4 visual-profile encoder/decoder whose every data
//! access is traced through a simulated memory hierarchy.
//!
//! This crate reimplements the algorithmic structure of the MoMuSys ISO
//! reference codec the paper measures:
//!
//! - **Object model** — visual objects (VOs) sampled into video object
//!   planes (VOPs), each coded as I (intra), P (forward-predicted) or
//!   B (bidirectionally interpolated), with the decode-order reordering
//!   of the paper's Figure 1.
//! - **Motion estimation** — block SAD search over restricted windows
//!   with one-pixel offsets and half-pel refinement (the encoder's
//!   dominant cost; the source of the paper's "blocking creates
//!   locality" observation).
//! - **Texture coding** — 8×8 DCT, scalar quantization, zigzag scan and
//!   run-level entropy coding.
//! - **Shape coding** — binary alpha blocks compressed with a
//!   context-based adaptive arithmetic coder (CAE), enabling
//!   arbitrary-shaped VOPs for the multi-object experiments.
//! - **Scalability** — multi-layer VOLs (temporal enhancement layers)
//!   for the 2-layer experiments.
//!
//! The codec is generic over [`m4ps_memsim::MemModel`]: run it over a
//! [`m4ps_memsim::Hierarchy`] to collect the paper's statistics, or a
//! [`m4ps_memsim::NullModel`] for fast functional use.
//!
//! # Examples
//!
//! ```
//! use m4ps_codec::{EncoderConfig, FrameView, VideoObjectCoder};
//! use m4ps_memsim::{AddressSpace, NullModel};
//! use m4ps_vidgen::{Resolution, Scene, SceneSpec};
//!
//! # fn main() -> Result<(), m4ps_codec::CodecError> {
//! let scene = Scene::new(SceneSpec {
//!     resolution: Resolution::QCIF,
//!     objects: 0,
//!     seed: 1,
//! });
//! let mut space = AddressSpace::new();
//! let mut mem = NullModel::new();
//! let config = EncoderConfig::fast_test();
//! let mut coder = VideoObjectCoder::new(&mut space, 176, 144, config)?;
//! let mut vops = Vec::new();
//! for t in 0..4 {
//!     let f = scene.frame(t);
//!     let view = FrameView { width: 176, height: 144, y: &f.y, u: &f.u, v: &f.v };
//!     vops.extend(coder.encode_frame(&mut mem, &view, None)?);
//! }
//! vops.extend(coder.flush(&mut mem)?);
//! assert!(!vops.is_empty());
//! # Ok(())
//! # }
//! ```

mod arith;
mod config;
mod decoder;
mod encoder;
mod error;
mod header;
mod mbops;
mod mc;
mod me;
mod plane;
mod rate;
mod scene_session;
mod shape;
mod slices;
mod texture;
mod types;
mod vlc;

pub use arith::{ArithDecoder, ArithEncoder, ContextModel};
pub use config::{EncoderConfig, GopStructure, SearchStrategy};
pub use decoder::{DecodedVop, VideoObjectDecoder};
pub use encoder::{
    EncodedVop, FrameView, ReconPlanes, Scheduling, VideoObjectCoder, VopStats, SCHED_ENV,
};
pub use error::CodecError;
pub use header::{VolHeader, VopHeader};
pub use mc::motion_compensate_block;
pub use me::{MotionSearch, SearchOutcome};
pub use plane::{FrameViewMut, PlaneViewMut, TracedFrame, TracedPlane, PAD};
pub use rate::RateController;
pub use scene_session::{SceneDecoder, SceneEncoder, SessionStats};
pub use shape::{decode_alpha_plane, encode_alpha_plane, BabClass};
pub use texture::{QuantizedBlock, TextureCoder};
pub use types::{MacroblockKind, MotionVector, VopKind};
pub use vlc::{get_se, get_ue, put_se, put_ue};
