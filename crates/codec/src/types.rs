//! Core value types of the VOP coding model.

/// Coding type of a video object plane (paper Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VopKind {
    /// Intra: a complete image compressed for spatial redundancy only.
    I,
    /// Forward predicted from the nearest previously coded anchor.
    P,
    /// Bidirectionally interpolated from surrounding I/P anchors.
    B,
}

impl VopKind {
    /// Two-bit code used in the VOP header (matches 14496-2
    /// `vop_coding_type`).
    pub fn code(self) -> u32 {
        match self {
            VopKind::I => 0,
            VopKind::P => 1,
            VopKind::B => 2,
        }
    }

    /// Decodes the two-bit header code.
    pub fn from_code(code: u32) -> Option<VopKind> {
        match code {
            0 => Some(VopKind::I),
            1 => Some(VopKind::P),
            2 => Some(VopKind::B),
            _ => None,
        }
    }

    /// `true` for anchor types (I and P) that later VOPs may reference.
    pub fn is_anchor(self) -> bool {
        !matches!(self, VopKind::B)
    }
}

/// A motion vector in half-pel units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MotionVector {
    /// Horizontal displacement in half-pels (positive = right).
    pub x: i16,
    /// Vertical displacement in half-pels (positive = down).
    pub y: i16,
}

impl MotionVector {
    /// The zero vector.
    pub const ZERO: MotionVector = MotionVector { x: 0, y: 0 };

    /// Creates a vector from half-pel components.
    pub fn new(x: i16, y: i16) -> Self {
        MotionVector { x, y }
    }

    /// Creates a vector from integer-pel components.
    pub fn from_full_pel(x: i16, y: i16) -> Self {
        MotionVector { x: x * 2, y: y * 2 }
    }

    /// Integer-pel part (floor division toward negative infinity).
    pub fn full_pel(self) -> (i16, i16) {
        (self.x >> 1, self.y >> 1)
    }

    /// `true` when both components are on integer-pel positions.
    pub fn is_full_pel(self) -> bool {
        self.x & 1 == 0 && self.y & 1 == 0
    }

    /// Component-wise median of three vectors — the H.263/MPEG-4 motion
    /// vector predictor.
    pub fn median3(a: MotionVector, b: MotionVector, c: MotionVector) -> MotionVector {
        fn med(a: i16, b: i16, c: i16) -> i16 {
            a.max(b).min(a.min(b).max(c))
        }
        MotionVector {
            x: med(a.x, b.x, c.x),
            y: med(a.y, b.y, c.y),
        }
    }
}

/// How a macroblock was coded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MacroblockKind {
    /// Intra coded (texture only).
    Intra,
    /// Inter coded with one forward vector.
    Inter,
    /// Skipped: zero vector, no residue (P-VOPs only).
    Skipped,
    /// B-VOP: forward prediction only.
    Forward,
    /// B-VOP: backward prediction only.
    Backward,
    /// B-VOP: averaged bidirectional prediction.
    Bidirectional,
    /// Inter coded with four 8×8 vectors (MPEG-4 advanced prediction).
    Inter4V,
}

impl MacroblockKind {
    /// Header code for the macroblock type.
    pub fn code(self) -> u32 {
        match self {
            MacroblockKind::Intra => 0,
            MacroblockKind::Inter => 1,
            MacroblockKind::Skipped => 2,
            MacroblockKind::Forward => 3,
            MacroblockKind::Backward => 4,
            MacroblockKind::Bidirectional => 5,
            MacroblockKind::Inter4V => 6,
        }
    }

    /// Decodes a macroblock-type code.
    pub fn from_code(code: u32) -> Option<MacroblockKind> {
        match code {
            0 => Some(MacroblockKind::Intra),
            1 => Some(MacroblockKind::Inter),
            2 => Some(MacroblockKind::Skipped),
            3 => Some(MacroblockKind::Forward),
            4 => Some(MacroblockKind::Backward),
            5 => Some(MacroblockKind::Bidirectional),
            6 => Some(MacroblockKind::Inter4V),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vop_kind_codes_roundtrip() {
        for k in [VopKind::I, VopKind::P, VopKind::B] {
            assert_eq!(VopKind::from_code(k.code()), Some(k));
        }
        assert_eq!(VopKind::from_code(3), None);
        assert!(VopKind::I.is_anchor());
        assert!(VopKind::P.is_anchor());
        assert!(!VopKind::B.is_anchor());
    }

    #[test]
    fn mv_pel_conversions() {
        let v = MotionVector::from_full_pel(3, -2);
        assert_eq!(v, MotionVector::new(6, -4));
        assert!(v.is_full_pel());
        assert_eq!(v.full_pel(), (3, -2));
        let h = MotionVector::new(7, -3);
        assert!(!h.is_full_pel());
        assert_eq!(h.full_pel(), (3, -2)); // floor toward -inf
    }

    #[test]
    fn median_is_order_free_and_componentwise() {
        let a = MotionVector::new(1, 10);
        let b = MotionVector::new(5, -2);
        let c = MotionVector::new(3, 4);
        let m = MotionVector::median3(a, b, c);
        assert_eq!(m, MotionVector::new(3, 4));
        assert_eq!(MotionVector::median3(c, a, b), m);
        assert_eq!(MotionVector::median3(b, c, a), m);
    }

    #[test]
    fn median_with_duplicates() {
        let a = MotionVector::new(2, 2);
        let m = MotionVector::median3(a, a, MotionVector::new(9, -9));
        assert_eq!(m, a);
    }

    #[test]
    fn mb_kind_codes_roundtrip() {
        for k in [
            MacroblockKind::Intra,
            MacroblockKind::Inter,
            MacroblockKind::Skipped,
            MacroblockKind::Forward,
            MacroblockKind::Backward,
            MacroblockKind::Bidirectional,
            MacroblockKind::Inter4V,
        ] {
            assert_eq!(MacroblockKind::from_code(k.code()), Some(k));
        }
        assert_eq!(MacroblockKind::from_code(7), None);
    }
}
