//! The video-object encoder: GOP management, VOP reordering, and the
//! per-VOP coding loop (`vop_code` in MoMuSys terms — the function the
//! paper instruments for its burstiness study).

use crate::config::EncoderConfig;
use crate::error::CodecError;
use crate::header::{VolHeader, VopHeader};
use crate::mbops::{
    add_prediction, chroma_mv, pred_subblock, read_block, residual, write_block, write_block_u8,
    IntraPredState, MvPredictor, StreamCharge,
};
use crate::mc::{average_predictions, motion_compensate_block};
use crate::me::MotionSearch;
use crate::plane::{FrameSink, RowSink, TracedFrame, TracedPlane};
use crate::rate::RateController;
use crate::shape::{classify_bab, encode_alpha_plane, BabClass};
use crate::slices::partition_rows;
use crate::texture::TextureCoder;
use crate::types::{MacroblockKind, MotionVector, VopKind};
use crate::vlc::{put_se, put_ue};
use m4ps_bitstream::BitWriter;
use m4ps_memsim::{AddressSpace, MemModel, ParallelModel};
use m4ps_obs::{span, MetricId, Phase};
use m4ps_pool::ThreadPool;
use std::ops::Range;

/// A borrowed view of one 4:2:0 input frame.
#[derive(Debug, Clone, Copy)]
pub struct FrameView<'a> {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Luma plane (`width × height`).
    pub y: &'a [u8],
    /// Cb plane (`width/2 × height/2`).
    pub u: &'a [u8],
    /// Cr plane (`width/2 × height/2`).
    pub v: &'a [u8],
}

impl<'a> FrameView<'a> {
    /// Validates plane sizes.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::DimensionMismatch`] when any plane has the
    /// wrong length.
    pub fn validate(&self) -> Result<(), CodecError> {
        let lp = self.width * self.height;
        let cp = (self.width / 2) * (self.height / 2);
        if self.y.len() != lp || self.u.len() != cp || self.v.len() != cp {
            return Err(CodecError::DimensionMismatch {
                expected: (self.width, self.height),
                found: (self.y.len() / self.height.max(1), self.height),
            });
        }
        Ok(())
    }
}

/// Per-VOP coding statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VopStats {
    /// Bits produced by this VOP.
    pub bits: u64,
    /// Intra-coded macroblocks.
    pub intra_mbs: u64,
    /// Inter-coded macroblocks (including B modes).
    pub inter_mbs: u64,
    /// Skipped macroblocks.
    pub skipped_mbs: u64,
    /// Fully transparent macroblocks (shape-coded VOPs only).
    pub transparent_mbs: u64,
    /// Motion-search candidates evaluated.
    pub candidates: u64,
    /// Macroblocks concealed after a bitstream error (decoder only).
    pub concealed_mbs: u64,
}

impl VopStats {
    /// Adds `other`'s tallies into `self` (slice-stitch accumulation).
    /// Plain element-wise addition, so the merged total is independent
    /// of the order slices finished in.
    pub fn merge(&mut self, other: &VopStats) {
        self.bits += other.bits;
        self.intra_mbs += other.intra_mbs;
        self.inter_mbs += other.inter_mbs;
        self.skipped_mbs += other.skipped_mbs;
        self.transparent_mbs += other.transparent_mbs;
        self.candidates += other.candidates;
        self.concealed_mbs += other.concealed_mbs;
    }
}

/// Raw copies of a reconstructed VOP (testing aid).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconPlanes {
    /// Luma plane.
    pub y: Vec<u8>,
    /// Cb plane.
    pub u: Vec<u8>,
    /// Cr plane.
    pub v: Vec<u8>,
}

/// One encoded video object plane, in coding (decode) order.
#[derive(Debug, Clone)]
pub struct EncodedVop {
    /// Coding type.
    pub kind: VopKind,
    /// Display (temporal) index.
    pub display_index: usize,
    /// Quantizer used.
    pub qp: u8,
    /// Bitstream payload (startcode-prefixed, byte-aligned).
    pub bytes: Vec<u8>,
    /// Coding statistics.
    pub stats: VopStats,
    /// Reconstruction copies when the coder was asked to keep them.
    pub recon: Option<ReconPlanes>,
}

/// Macroblock-aligned bounding box `(x0, y0, w, h)` in pixels.
pub(crate) type Bbox = (usize, usize, usize, usize);

/// Queued B-frame awaiting its backward anchor.
#[derive(Debug)]
struct BSlot {
    frame: TracedFrame,
    alpha: Option<TracedPlane>,
    bbox: Bbox,
    display_index: usize,
}

/// Encoder for one video object layer.
///
/// Frames are submitted in display order via
/// [`VideoObjectCoder::encode_frame`]; encoded VOPs come back in coding
/// order (anchors before the B-VOPs that reference them), reproducing
/// the paper's Figure 1 semantics.
#[derive(Debug)]
pub struct VideoObjectCoder {
    config: EncoderConfig,
    vol: VolHeader,
    mb_cols: usize,
    mb_rows: usize,
    cur: TracedFrame,
    cur_alpha: Option<TracedPlane>,
    cur_bbox: Bbox,
    prev_alpha_bbox: Option<Bbox>,
    b_slots: Vec<BSlot>,
    queue_len: usize,
    anchors: [TracedFrame; 2],
    prev_anchor: usize,
    have_anchor: bool,
    b_recon: TracedFrame,
    texture: TextureCoder,
    /// Reusable per-slice coding state (texture scratch clones and MV
    /// predictors), grown on first use and recycled every VOP so the
    /// steady-state encode loop performs no per-slice heap allocation.
    slice_scratch: Vec<SliceScratch>,
    search: MotionSearch,
    rate: RateController,
    next_display: usize,
    display_scale: usize,
    display_offset: usize,
    stream_base: u64,
    stream_bits: u64,
    keep_recon: bool,
    pool: ThreadPool,
    /// Accumulated counter deltas over the `encode_vop` windows — the
    /// paper's `VopCode()` instrumentation (Table 8).
    vop_window: m4ps_memsim::Counters,
}

impl VideoObjectCoder {
    /// Creates a rectangular-VOP coder for `width × height` frames.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidConfig`] for bad configuration or
    /// non-macroblock-aligned dimensions.
    pub fn new(
        space: &mut AddressSpace,
        width: usize,
        height: usize,
        config: EncoderConfig,
    ) -> Result<Self, CodecError> {
        Self::with_vol(
            space,
            VolHeader {
                vo_id: 0,
                vol_id: 0,
                width,
                height,
                binary_shape: false,
                enhancement: false,
            },
            config,
        )
    }

    /// Creates a coder with an explicit VOL header (arbitrary shape,
    /// multi-object and scalability callers).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidConfig`] for bad configuration or
    /// non-macroblock-aligned dimensions.
    pub fn with_vol(
        space: &mut AddressSpace,
        vol: VolHeader,
        config: EncoderConfig,
    ) -> Result<Self, CodecError> {
        config.validate()?;
        let (width, height) = (vol.width, vol.height);
        if width % 16 != 0 || height % 16 != 0 {
            return Err(CodecError::InvalidConfig(
                "frame dimensions must be multiples of 16",
            ));
        }
        let alpha_for = |space: &mut AddressSpace| {
            vol.binary_shape
                .then(|| TracedPlane::new(space, width, height))
        };
        space.set_tag("enc.b_queue");
        let b_slots = (0..config.gop.b_frames)
            .map(|_| BSlot {
                frame: TracedFrame::new(space, width, height),
                alpha: alpha_for(space),
                bbox: (0, 0, 0, 0),
                display_index: 0,
            })
            .collect();
        space.set_tag("enc.input_frame");
        let cur = TracedFrame::new(space, width, height);
        space.set_tag("enc.alpha");
        let cur_alpha = alpha_for(space);
        space.set_tag("enc.reference_frames");
        let anchors = [
            TracedFrame::new(space, width, height),
            TracedFrame::new(space, width, height),
        ];
        space.set_tag("enc.b_recon");
        let b_recon = TracedFrame::new(space, width, height);
        space.set_tag("enc.scratch");
        Ok(VideoObjectCoder {
            vol,
            mb_cols: width / 16,
            mb_rows: height / 16,
            cur,
            cur_alpha,
            cur_bbox: (0, 0, 0, 0),
            prev_alpha_bbox: None,
            b_slots,
            queue_len: 0,
            anchors,
            prev_anchor: 0,
            have_anchor: false,
            b_recon,
            texture: TextureCoder::new(space),
            slice_scratch: Vec::new(),
            search: MotionSearch::new(config.search, config.search_range, config.half_pel),
            rate: RateController::new(config.initial_qp, config.bitrate, config.frame_rate),
            next_display: 0,
            display_scale: 1,
            display_offset: 0,
            stream_base: {
                space.set_tag("enc.bitstream");
                let base = space.alloc(16 * 1024 * 1024);
                space.set_tag("untagged");
                base
            },
            stream_bits: 0,
            keep_recon: false,
            pool: ThreadPool::from_env(),
            vop_window: m4ps_memsim::Counters::new(),
            config,
        })
    }

    /// Sets the number of worker threads used to encode a VOP's slices.
    ///
    /// Purely a scheduling knob: any thread count produces bit-identical
    /// output (the slice partition is fixed by
    /// [`EncoderConfig::slices`](crate::EncoderConfig), which is what
    /// changes the bitstream). Defaults to the `M4PS_THREADS`
    /// environment override, falling back to the machine's available
    /// parallelism.
    pub fn set_threads(&mut self, threads: usize) {
        self.pool = ThreadPool::new(threads);
    }

    /// The worker thread count slices are scheduled onto.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The VOL header describing this layer.
    pub fn vol(&self) -> &VolHeader {
        &self.vol
    }

    /// Serialized VOL header (place once at the start of the stream).
    pub fn header_bytes(&self) -> Vec<u8> {
        let mut w = BitWriter::new();
        self.vol.write(&mut w);
        w.into_bytes()
    }

    /// Keep raw reconstruction copies in every [`EncodedVop`] (testing).
    pub fn set_keep_recon(&mut self, keep: bool) {
        self.keep_recon = keep;
    }

    /// Maps internal frame numbering to stream display indices as
    /// `offset + scale * n`. Temporal-scalability sessions use this so
    /// the base layer labels frames 0, 2, 4, … and the enhancement
    /// layer 1, 3, 5, … while each coder still sees a dense sequence.
    pub fn set_display_mapping(&mut self, scale: usize, offset: usize) {
        assert!(scale >= 1);
        self.display_scale = scale;
        self.display_offset = offset;
    }

    /// Counter deltas accumulated over every `encode_vop` window so far
    /// — the paper's `VopCode()` burstiness instrumentation.
    pub fn vop_window(&self) -> m4ps_memsim::Counters {
        self.vop_window
    }

    /// Reconstruction of the most recent anchor (reference for temporal
    /// enhancement layers).
    pub fn last_anchor(&self) -> Option<&TracedFrame> {
        self.have_anchor.then(|| &self.anchors[self.prev_anchor])
    }

    /// Coding type of display index `idx` under the configured GOP.
    fn kind_for(&self, idx: usize) -> VopKind {
        if idx.is_multiple_of(self.config.gop.intra_period) {
            VopKind::I
        } else if idx.is_multiple_of(self.config.gop.b_frames + 1) {
            VopKind::P
        } else {
            VopKind::B
        }
    }

    /// Submits the next display-order frame. Returns the VOPs that became
    /// encodable (possibly none while B-frames queue up).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::DimensionMismatch`] for wrong plane sizes
    /// and [`CodecError::InvalidConfig`] when a shape layer is not given
    /// an alpha mask (or vice versa).
    pub fn encode_frame<M: ParallelModel>(
        &mut self,
        mem: &mut M,
        frame: &FrameView<'_>,
        alpha: Option<&[u8]>,
    ) -> Result<Vec<EncodedVop>, CodecError> {
        frame.validate()?;
        if (frame.width, frame.height) != (self.vol.width, self.vol.height) {
            return Err(CodecError::DimensionMismatch {
                expected: (self.vol.width, self.vol.height),
                found: (frame.width, frame.height),
            });
        }
        if self.vol.binary_shape != alpha.is_some() {
            return Err(CodecError::InvalidConfig(
                "alpha mask must be supplied exactly for binary-shape layers",
            ));
        }
        let idx = self.next_display;
        self.next_display += 1;
        let kind = self.kind_for(idx);
        let idx = self.display_offset + self.display_scale * idx;

        if kind == VopKind::B && self.have_anchor && self.queue_len < self.b_slots.len() {
            let slot = &mut self.b_slots[self.queue_len];
            span!(mem, Phase::FrameIo, {
                if let Some(mask) = alpha {
                    let bbox = mask_bbox(mask, self.vol.width, self.vol.height);
                    slot.frame
                        .copy_region_from_yuv(mem, frame.y, frame.u, frame.v, bbox);
                } else {
                    slot.frame.copy_from_yuv(
                        mem,
                        frame.y,
                        frame.u,
                        frame.v,
                        self.config.software_prefetch,
                    );
                }
                if let (Some(plane), Some(mask)) = (slot.alpha.as_mut(), alpha) {
                    let bbox = mask_bbox(mask, plane.width(), plane.height());
                    // Clear the slot's previous object region, then load the
                    // new VOP-sized alpha region (as the reference codec
                    // loads per-VOP segmentation buffers).
                    let (px, py, pw, ph) = slot.bbox;
                    if pw > 0 {
                        plane.clear_region(mem, px, py, pw, ph);
                    }
                    plane.copy_region_from(mem, mask, bbox);
                    slot.bbox = bbox;
                }
            });
            slot.display_index = idx;
            self.queue_len += 1;
            return Ok(Vec::new());
        }

        // Anchor path (also handles a B that could not queue: encode as P).
        let kind = if kind == VopKind::B { VopKind::P } else { kind };
        span!(mem, Phase::FrameIo, {
            if let Some(mask) = alpha {
                // Shaped objects load only their VOP-sized region.
                let bbox = mask_bbox(mask, self.vol.width, self.vol.height);
                self.cur
                    .copy_region_from_yuv(mem, frame.y, frame.u, frame.v, bbox);
            } else {
                self.cur.copy_from_yuv(
                    mem,
                    frame.y,
                    frame.u,
                    frame.v,
                    self.config.software_prefetch,
                );
            }
            if let (Some(plane), Some(mask)) = (self.cur_alpha.as_mut(), alpha) {
                let bbox = mask_bbox(mask, plane.width(), plane.height());
                if let Some((px, py, pw, ph)) = self.prev_alpha_bbox {
                    plane.clear_region(mem, px, py, pw, ph);
                }
                plane.copy_region_from(mem, mask, bbox);
                self.prev_alpha_bbox = Some(bbox);
                self.cur_bbox = bbox;
            }
        });
        let mut out = Vec::with_capacity(1 + self.queue_len);
        out.push(self.encode_anchor_from_cur(mem, kind, idx));
        out.extend(self.drain_b_queue(mem));
        Ok(out)
    }

    /// Encodes the frame currently in `self.cur` as an anchor.
    fn encode_anchor_from_cur<M: ParallelModel>(
        &mut self,
        mem: &mut M,
        kind: VopKind,
        display_index: usize,
    ) -> EncodedVop {
        let kind = if self.have_anchor { kind } else { VopKind::I };
        let qp = self.rate.qp_for(kind);
        let new_idx = if self.have_anchor {
            1 - self.prev_anchor
        } else {
            0
        };
        let header = VopHeader {
            kind,
            display_index: display_index as u32,
            qp,
            bbox: None, // filled inside encode_vop for shape layers
            resync_interval: self.config.resync_mb_interval,
            slices: self.config.slices,
        };
        let window_start = *mem.counters();
        // The VopEncode span reuses the paper's `VopCode()` counter
        // window: enter on the snapshot already taken for `vop_window`.
        let obs_on = m4ps_obs::enabled();
        if obs_on {
            m4ps_obs::enter(Phase::VopEncode, window_start);
        }
        let (left, right) = self.anchors.split_at_mut(1);
        let (fwd, recon): (Option<&TracedFrame>, &mut TracedFrame) = if new_idx == 0 {
            (
                (kind != VopKind::I && self.have_anchor).then_some(&right[0]),
                &mut left[0],
            )
        } else {
            (
                (kind != VopKind::I && self.have_anchor).then_some(&left[0]),
                &mut right[0],
            )
        };
        let (bytes, stats) = encode_vop(
            mem,
            header,
            &self.cur,
            self.cur_alpha.as_ref().map(|a| (a, self.cur_bbox)),
            fwd,
            None,
            recon,
            &self.texture,
            &mut self.slice_scratch,
            &self.search,
            self.stream_base + self.stream_bits / 8,
            self.mb_cols,
            self.mb_rows,
            self.config.four_mv,
            &self.pool,
        );
        if !self.vol.binary_shape {
            // Rectangular VOPs pad the whole reference frame; shaped
            // VOPs are padded VOP-locally (the grey ring around the
            // bounding box), as the reference codec pads VOP buffers.
            recon.pad_borders(mem);
        }
        if obs_on {
            m4ps_obs::exit(Phase::VopEncode, *mem.counters());
        }
        self.vop_window = self
            .vop_window
            .merged_with(&mem.counters().delta_since(&window_start));
        let recon_copy = self.keep_recon.then(|| ReconPlanes {
            y: recon.y.copy_out(mem),
            u: recon.u.copy_out(mem),
            v: recon.v.copy_out(mem),
        });
        self.stream_bits += stats.bits;
        self.rate.update(kind, stats.bits);
        self.prev_anchor = new_idx;
        self.have_anchor = true;
        EncodedVop {
            kind,
            display_index,
            qp,
            bytes,
            stats,
            recon: recon_copy,
        }
    }

    /// Encodes every queued B-frame against the two live anchors.
    fn drain_b_queue<M: ParallelModel>(&mut self, mem: &mut M) -> Vec<EncodedVop> {
        let mut out = Vec::with_capacity(self.queue_len);
        for q in 0..self.queue_len {
            let qp = self.rate.qp_for(VopKind::B);
            let slot = &self.b_slots[q];
            let header = VopHeader {
                kind: VopKind::B,
                display_index: slot.display_index as u32,
                qp,
                bbox: None,
                resync_interval: self.config.resync_mb_interval,
                slices: self.config.slices,
            };
            let window_start = *mem.counters();
            let obs_on = m4ps_obs::enabled();
            if obs_on {
                m4ps_obs::enter(Phase::VopEncode, window_start);
            }
            // Forward ref is the *older* anchor, backward the newer.
            let older = 1 - self.prev_anchor;
            let (left, right) = self.anchors.split_at_mut(1);
            let (fwd, bwd) = if older == 0 {
                (&left[0], &right[0])
            } else {
                (&right[0], &left[0])
            };
            let (bytes, stats) = encode_vop(
                mem,
                header,
                &slot.frame,
                slot.alpha.as_ref().map(|a| (a, slot.bbox)),
                Some(fwd),
                Some(bwd),
                &mut self.b_recon,
                &self.texture,
                &mut self.slice_scratch,
                &self.search,
                self.stream_base + self.stream_bits / 8,
                self.mb_cols,
                self.mb_rows,
                self.config.four_mv,
                &self.pool,
            );
            if obs_on {
                m4ps_obs::exit(Phase::VopEncode, *mem.counters());
            }
            self.vop_window = self
                .vop_window
                .merged_with(&mem.counters().delta_since(&window_start));
            let recon_copy = self.keep_recon.then(|| ReconPlanes {
                y: self.b_recon.y.copy_out(mem),
                u: self.b_recon.u.copy_out(mem),
                v: self.b_recon.v.copy_out(mem),
            });
            self.stream_bits += stats.bits;
            self.rate.update(VopKind::B, stats.bits);
            out.push(EncodedVop {
                kind: VopKind::B,
                display_index: slot.display_index,
                qp,
                bytes,
                stats,
                recon: recon_copy,
            });
        }
        self.queue_len = 0;
        out
    }

    /// Encodes any still-queued B-frames as trailing P-VOPs and ends the
    /// stream. Call once after the last [`VideoObjectCoder::encode_frame`].
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` reserves room for bitstream
    /// finalization errors.
    pub fn flush<M: ParallelModel>(&mut self, mem: &mut M) -> Result<Vec<EncodedVop>, CodecError> {
        let mut out = Vec::with_capacity(self.queue_len);
        for q in 0..self.queue_len {
            // Move the queued frame into `cur` by swapping buffers.
            std::mem::swap(&mut self.cur, &mut self.b_slots[q].frame);
            if self.vol.binary_shape {
                std::mem::swap(&mut self.cur_alpha, &mut self.b_slots[q].alpha);
                self.cur_bbox = self.b_slots[q].bbox;
            }
            let idx = self.b_slots[q].display_index;
            out.push(self.encode_anchor_from_cur(mem, VopKind::P, idx));
        }
        self.queue_len = 0;
        Ok(out)
    }

    /// Encodes one frame as a P-VOP predicted from an external reference
    /// (the temporal-scalability enhancement path: `ext` is the base
    /// layer's latest anchor reconstruction).
    ///
    /// # Errors
    ///
    /// Same conditions as [`VideoObjectCoder::encode_frame`].
    pub fn encode_p_with_ref<M: ParallelModel>(
        &mut self,
        mem: &mut M,
        frame: &FrameView<'_>,
        alpha: Option<&[u8]>,
        ext: &TracedFrame,
    ) -> Result<EncodedVop, CodecError> {
        frame.validate()?;
        if self.vol.binary_shape != alpha.is_some() {
            return Err(CodecError::InvalidConfig(
                "alpha mask must be supplied exactly for binary-shape layers",
            ));
        }
        let idx = self.next_display;
        self.next_display += 1;
        let idx = self.display_offset + self.display_scale * idx;
        span!(mem, Phase::FrameIo, {
            if let Some(mask) = alpha {
                let bbox = mask_bbox(mask, self.vol.width, self.vol.height);
                self.cur
                    .copy_region_from_yuv(mem, frame.y, frame.u, frame.v, bbox);
            } else {
                self.cur.copy_from_yuv(
                    mem,
                    frame.y,
                    frame.u,
                    frame.v,
                    self.config.software_prefetch,
                );
            }
            if let (Some(plane), Some(mask)) = (self.cur_alpha.as_mut(), alpha) {
                let bbox = mask_bbox(mask, plane.width(), plane.height());
                if let Some((px, py, pw, ph)) = self.prev_alpha_bbox {
                    plane.clear_region(mem, px, py, pw, ph);
                }
                plane.copy_region_from(mem, mask, bbox);
                self.prev_alpha_bbox = Some(bbox);
                self.cur_bbox = bbox;
            }
        });
        let qp = self.rate.qp_for(VopKind::P);
        let header = VopHeader {
            kind: VopKind::P,
            display_index: idx as u32,
            qp,
            bbox: None,
            resync_interval: self.config.resync_mb_interval,
            slices: self.config.slices,
        };
        let window_start = *mem.counters();
        let obs_on = m4ps_obs::enabled();
        if obs_on {
            m4ps_obs::enter(Phase::VopEncode, window_start);
        }
        let (bytes, stats) = encode_vop(
            mem,
            header,
            &self.cur,
            self.cur_alpha.as_ref().map(|a| (a, self.cur_bbox)),
            Some(ext),
            None,
            &mut self.b_recon,
            &self.texture,
            &mut self.slice_scratch,
            &self.search,
            self.stream_base + self.stream_bits / 8,
            self.mb_cols,
            self.mb_rows,
            self.config.four_mv,
            &self.pool,
        );
        if obs_on {
            m4ps_obs::exit(Phase::VopEncode, *mem.counters());
        }
        self.vop_window = self
            .vop_window
            .merged_with(&mem.counters().delta_since(&window_start));
        let recon_copy = self.keep_recon.then(|| ReconPlanes {
            y: self.b_recon.y.copy_out(mem),
            u: self.b_recon.u.copy_out(mem),
            v: self.b_recon.v.copy_out(mem),
        });
        self.stream_bits += stats.bits;
        self.rate.update(VopKind::P, stats.bits);
        Ok(EncodedVop {
            kind: VopKind::P,
            display_index: idx,
            qp,
            bytes,
            stats,
            recon: recon_copy,
        })
    }
}

/// Intra/inter decision bias (H.263 Annex: intra when block deviation is
/// clearly below the best SAD).
const INTRA_BIAS: u32 = 512;

/// Byte-aligned resynchronization-marker word.
pub(crate) const RESYNC_MARKER: u16 = 0x5a3c;

/// Macroblock-aligned bounding box of a raw segmentation mask. This is
/// *untraced*: the reference codec reads each VOP's geometry from its
/// pre-segmented input file header, so the box is workload metadata, not
/// codec memory traffic.
pub(crate) fn mask_bbox(mask: &[u8], width: usize, height: usize) -> Bbox {
    let (mut x0, mut y0, mut x1, mut y1) = (width, height, 0usize, 0usize);
    for y in 0..height {
        for x in 0..width {
            if mask[y * width + x] != 0 {
                x0 = x0.min(x);
                y0 = y0.min(y);
                x1 = x1.max(x + 1);
                y1 = y1.max(y + 1);
            }
        }
    }
    if x0 >= x1 {
        return (0, 0, 16, 16); // empty mask: one transparent BAB
    }
    let ax0 = x0 / 16 * 16;
    let ay0 = y0 / 16 * 16;
    let ax1 = x1.div_ceil(16) * 16;
    let ay1 = y1.div_ceil(16) * 16;
    (ax0, ay0, ax1.min(width) - ax0, ay1.min(height) - ay0)
}

/// Fills one macroblock of `recon` with mid-grey (deterministic extended
/// padding — keeps encoder and decoder references bit-identical around
/// and inside transparent regions).
pub(crate) fn fill_grey_mb<M: MemModel, F: FrameSink>(
    mem: &mut M,
    recon: &mut F,
    mbx: usize,
    mby: usize,
) {
    let (ry, ru, rv) = recon.planes_mut();
    // Luma rows are consecutive: one rectangular store. The chroma loop
    // interleaves the U and V planes and must keep that charge order.
    ry.store_rect(
        mem,
        (mbx * 16) as isize,
        (mby * 16) as isize,
        16,
        &[128u8; 256],
    );
    let grey8 = [128u8; 8];
    for r in 0..8 {
        ru.store_row(mem, (mbx * 8) as isize, (mby * 8 + r) as isize, &grey8);
        rv.store_row(mem, (mbx * 8) as isize, (mby * 8 + r) as isize, &grey8);
    }
}

/// Extends grey fill to a ring of macroblocks around the bounding box so
/// motion search windows that spill past the box read deterministic data.
pub(crate) fn fill_bbox_ring<M: MemModel, F: FrameSink>(
    mem: &mut M,
    recon: &mut F,
    bbox: (usize, usize, usize, usize),
    mb_cols: usize,
    mb_rows: usize,
) {
    const RING_MBS: usize = 2;
    let (bx0, by0, bw, bh) = bbox;
    let mbx0 = (bx0 / 16).saturating_sub(RING_MBS);
    let mby0 = (by0 / 16).saturating_sub(RING_MBS);
    let mbx1 = ((bx0 + bw) / 16 + RING_MBS).min(mb_cols);
    let mby1 = ((by0 + bh) / 16 + RING_MBS).min(mb_rows);
    for mby in mby0..mby1 {
        for mbx in mbx0..mbx1 {
            let inside =
                mbx * 16 >= bx0 && mbx * 16 < bx0 + bw && mby * 16 >= by0 && mby * 16 < by0 + bh;
            if !inside {
                fill_grey_mb(mem, recon, mbx, mby);
            }
        }
    }
}

/// Simulated-address stride between the per-slice bitstream staging
/// buffers. Each slice charges its bitstream traffic to its own 64 KiB
/// window past the parent's write position, so the charge addresses are
/// a function of the slice index alone — never of which thread ran the
/// slice — keeping merged counters scheduling-independent.
pub(crate) const SLICE_CHARGE_SPAN: u64 = 64 * 1024;

/// Reusable per-slice coding state: the texture pipeline's traced
/// scratch buffers and the slice's motion-vector predictors. Cloned
/// from the coder's template once per slice index and recycled every
/// VOP — texture clones keep their simulated base addresses, so reuse
/// charges exactly the traffic a fresh clone would.
#[derive(Debug)]
pub(crate) struct SliceScratch {
    texture: TextureCoder,
    fwd_pred: MvPredictor,
    bwd_pred: MvPredictor,
}

impl SliceScratch {
    fn new(template: &TextureCoder, mb_cols: usize) -> Self {
        SliceScratch {
            texture: template.clone(),
            fwd_pred: MvPredictor::new(mb_cols),
            bwd_pred: MvPredictor::new(mb_cols),
        }
    }
}

/// Encodes one VOP. Returns the byte payload and statistics.
///
/// When `header.slices > 1` the macroblock rows are partitioned with
/// [`partition_rows`] and the slices run as independent jobs on `pool`.
/// Each job encodes into its own [`BitWriter`] against a forked memory
/// model ([`ParallelModel::fork`]), reads the shared reference frames
/// by `&`, and writes the reconstruction *in place* through a disjoint
/// [`FrameViewMut`](crate::FrameViewMut) over its macroblock rows — no
/// frame clone, no stitch-back copy. Because the partition, per-slice
/// prediction resets and charge addresses depend only on the *slice
/// count* (a bitstream parameter), the output is bit-exact for any
/// thread count.
#[allow(clippy::too_many_arguments)]
pub(crate) fn encode_vop<M: ParallelModel>(
    mem: &mut M,
    mut header: VopHeader,
    cur: &TracedFrame,
    alpha: Option<(&TracedPlane, Bbox)>,
    fwd: Option<&TracedFrame>,
    bwd: Option<&TracedFrame>,
    recon: &mut TracedFrame,
    texture: &TextureCoder,
    scratch: &mut Vec<SliceScratch>,
    search: &MotionSearch,
    stream_base: u64,
    mb_cols: usize,
    mb_rows: usize,
    four_mv: bool,
    pool: &ThreadPool,
) -> (Vec<u8>, VopStats) {
    let mut stats = VopStats::default();
    let mut w = BitWriter::new();
    let mut charge = StreamCharge::writer(stream_base);

    let bbox = alpha.map(|(_, b)| b);
    header.bbox = bbox;

    let (mbx_range, mby_range) = match bbox {
        Some((x0, y0, bw, bh)) => (x0 / 16..(x0 + bw) / 16, y0 / 16..(y0 + bh) / 16),
        None => (0..mb_cols, 0..mb_rows),
    };
    let slice_rows = partition_rows(mby_range.clone(), header.slices);
    header.slices = slice_rows.len();
    while scratch.len() < slice_rows.len() {
        scratch.push(SliceScratch::new(texture, mb_cols));
    }

    header.write(&mut w);
    if let Some((a, b)) = alpha {
        span!(mem, Phase::Shape, encode_alpha_plane(mem, a, b, &mut w));
    }

    if header.slices == 1 {
        // Unsliced: code straight into the header's writer (the legacy
        // single-threaded layout — no alignment between header and MBs).
        charge.charge_to(mem, w.bit_len());
        span!(
            mem,
            Phase::Slice,
            encode_slice(
                mem,
                &header,
                cur,
                alpha,
                fwd,
                bwd,
                recon,
                &mut scratch[0],
                search,
                mbx_range,
                mby_range,
                0,
                four_mv,
                &mut w,
                &mut charge,
                &mut stats,
            )
        );
        if let Some(bbox) = bbox {
            fill_bbox_ring(mem, recon, bbox, mb_cols, mb_rows);
        }
        w.stuff_to_alignment();
        charge.charge_to(mem, w.bit_len());
        stats.bits = w.bit_len();
        return (w.into_bytes(), stats);
    }

    // Sliced: the header segment ends byte-aligned so every slice
    // segment starts and ends on a byte boundary and concatenates
    // without bit-shifting.
    w.stuff_to_alignment();
    charge.charge_to(mem, w.bit_len());
    let header_bits = w.bit_len();

    let hdr = header;
    let mbx = mbx_range.clone();
    let views = recon.split_mb_rows_mut(&slice_rows);
    let jobs: Vec<_> = slice_rows
        .iter()
        .cloned()
        .zip(views)
        .zip(scratch.iter_mut())
        .enumerate()
        .map(|(s, ((rows, mut view), sc))| {
            // Fork the per-slice memory model *sequentially* so every
            // slice starts from an identical snapshot no matter how
            // many worker threads later run the jobs.
            let mut smem = mem.fork();
            let first_mb = (rows.start - mby_range.start) * mbx.len();
            let mbx_range = mbx.clone();
            let charge_base = stream_base + (s as u64 + 1) * SLICE_CHARGE_SPAN;
            let cap = rows.len() * mbx.len() * 32 + 64;
            move || {
                // A *domain* span: this job charges the forked stream
                // `smem`, not the caller's model, so its delta must not
                // be subtracted from the lexical parent phase (the
                // caller accounts for it via `absorbed` instead).
                let obs_on = m4ps_obs::enabled();
                if obs_on {
                    m4ps_obs::enter_domain(Phase::Slice, *smem.counters());
                }
                let mut sw = BitWriter::with_capacity(cap);
                let mut scharge = StreamCharge::writer(charge_base);
                let mut sstats = VopStats::default();
                if s > 0 {
                    // Slice header: the resync word, the index of the
                    // slice's first macroblock, and the quantizer.
                    let before = sw.bit_len();
                    sw.put_bits(u32::from(RESYNC_MARKER), 16);
                    put_ue(&mut sw, first_mb as u32);
                    sw.put_bits(u32::from(hdr.qp), 5);
                    m4ps_obs::counter_add(
                        MetricId::ResyncMarkerBytes,
                        (sw.bit_len() - before).div_ceil(8),
                    );
                }
                encode_slice(
                    &mut smem,
                    &hdr,
                    cur,
                    alpha,
                    fwd,
                    bwd,
                    &mut view,
                    sc,
                    search,
                    mbx_range,
                    rows,
                    first_mb,
                    four_mv,
                    &mut sw,
                    &mut scharge,
                    &mut sstats,
                );
                sw.stuff_to_alignment();
                scharge.charge_to(&mut smem, sw.bit_len());
                sstats.bits = sw.bit_len();
                if obs_on {
                    m4ps_obs::exit_domain(Phase::Slice, *smem.counters());
                }
                (sw.into_bytes(), sstats, smem)
            }
        })
        .collect();

    let session = m4ps_obs::current();
    let results = pool.run_profiled(jobs, session.as_ref());

    let mut bytes = w.into_bytes();
    bytes.reserve(results.iter().map(|(b, _, _)| b.len()).sum());
    for (sbytes, sstats, smem) in results {
        let child_total = *smem.counters();
        mem.absorb(smem);
        // Keep the caller's open phase from double-counting the jump
        // `absorb` just folded in (the slices' own domain spans carry
        // those counters, phase by phase).
        m4ps_obs::absorbed(&child_total);
        stats.merge(&sstats);
        bytes.extend_from_slice(&sbytes);
    }
    stats.bits += header_bits;
    if let Some(bbox) = bbox {
        fill_bbox_ring(mem, recon, bbox, mb_cols, mb_rows);
    }
    (bytes, stats)
}

/// Encodes one slice — the macroblock rows `rows` of the VOP — into `w`.
///
/// `first_mb` is the VOP-wide index of the slice's first macroblock;
/// the in-slice counter starts there so resynchronization markers keep
/// their absolute indices, and the `> first_mb` guard keeps a marker off
/// the slice's first macroblock (the slice header already is one).
/// Prediction state starts from reset, exactly as after a resync marker,
/// so no prediction crosses a slice boundary.
#[allow(clippy::too_many_arguments)]
fn encode_slice<M: MemModel, F: FrameSink>(
    mem: &mut M,
    header: &VopHeader,
    cur: &TracedFrame,
    alpha: Option<(&TracedPlane, Bbox)>,
    fwd: Option<&TracedFrame>,
    bwd: Option<&TracedFrame>,
    recon: &mut F,
    scratch: &mut SliceScratch,
    search: &MotionSearch,
    mbx_range: Range<usize>,
    rows: Range<usize>,
    first_mb: usize,
    four_mv: bool,
    w: &mut BitWriter,
    charge: &mut StreamCharge,
    stats: &mut VopStats,
) {
    let qp = header.qp;
    let SliceScratch {
        texture,
        fwd_pred,
        bwd_pred,
    } = scratch;
    // Recycled predictors start from reset — the same state a fresh
    // `MvPredictor::new` carries, as pinned by the parallel tests.
    fwd_pred.reset();
    bwd_pred.reset();
    let mut mb_counter = first_mb;

    for mby in rows {
        fwd_pred.start_row();
        bwd_pred.start_row();
        let mut ips = IntraPredState::reset();
        for mbx in mbx_range.clone() {
            if let Some(interval) = header.resync_interval {
                if mb_counter > first_mb && mb_counter.is_multiple_of(interval) {
                    // Resynchronization point: byte-aligned marker, the
                    // macroblock index, the quantizer, and a full
                    // prediction reset (no prediction crosses a marker).
                    let before = w.bit_len();
                    w.stuff_to_alignment();
                    w.put_bits(u32::from(RESYNC_MARKER), 16);
                    put_ue(w, mb_counter as u32);
                    w.put_bits(u32::from(qp), 5);
                    m4ps_obs::counter_add(
                        MetricId::ResyncMarkerBytes,
                        (w.bit_len() - before).div_ceil(8),
                    );
                    fwd_pred.reset();
                    bwd_pred.reset();
                    ips = IntraPredState::reset();
                }
            }
            mb_counter += 1;
            let transparent = match alpha {
                Some((a, _)) => span!(
                    mem,
                    Phase::Shape,
                    classify_bab(mem, a, mbx, mby) == BabClass::Transparent
                ),
                None => false,
            };
            if transparent {
                stats.transparent_mbs += 1;
                fill_grey_mb(mem, recon, mbx, mby);
                fwd_pred.commit(mbx, MotionVector::ZERO);
                bwd_pred.commit(mbx, MotionVector::ZERO);
                ips = IntraPredState::reset();
                continue;
            }
            texture.charge_mb_overhead(mem);
            match header.kind {
                VopKind::I => {
                    // One span covers the whole intra texture pipeline
                    // (DCT + quant + VLC + recon): intra MBs would cost
                    // 18+ span pairs each at block granularity.
                    span!(
                        mem,
                        Phase::DctQuant,
                        encode_intra_mb(mem, cur, recon, texture, qp, mbx, mby, &mut ips, w)
                    );
                    stats.intra_mbs += 1;
                    fwd_pred.commit(mbx, MotionVector::ZERO);
                }
                VopKind::P => {
                    let reference = fwd.expect("P-VOP requires a forward reference");
                    encode_p_mb(
                        mem, cur, reference, recon, texture, search, qp, mbx, mby, &mut ips,
                        fwd_pred, w, stats, four_mv,
                    );
                }
                VopKind::B => {
                    let f = fwd.expect("B-VOP requires a forward reference");
                    let b = bwd.expect("B-VOP requires a backward reference");
                    encode_b_mb(
                        mem, cur, f, b, recon, texture, search, qp, mbx, mby, fwd_pred, bwd_pred,
                        w, stats,
                    );
                    ips = IntraPredState::reset();
                }
            }
            charge.charge_to(mem, w.bit_len());
        }
    }
}

/// Encodes the six blocks of an intra macroblock.
#[allow(clippy::too_many_arguments)]
pub(crate) fn encode_intra_mb<M: MemModel, F: FrameSink>(
    mem: &mut M,
    cur: &TracedFrame,
    recon: &mut F,
    texture: &mut TextureCoder,
    qp: u8,
    mbx: usize,
    mby: usize,
    ips: &mut IntraPredState,
    w: &mut BitWriter,
) {
    let (ry, ru, rv) = recon.planes_mut();
    let px = (mbx * 16) as isize;
    let py = (mby * 16) as isize;
    for blk in 0..4 {
        let bx = px + ((blk % 2) * 8) as isize;
        let by = py + ((blk / 2) * 8) as isize;
        let samples = read_block(mem, &cur.y, bx, by);
        let qb = texture.transform_quant(mem, &samples, true, qp);
        texture.entropy_encode(mem, &qb, ips.y, w);
        ips.y = qb.qdc();
        let rec = texture.reconstruct(mem, &qb, qp);
        write_block(mem, ry, bx, by, &rec);
    }
    let cx = (mbx * 8) as isize;
    let cy = (mby * 8) as isize;
    for (plane_idx, (src, dst)) in [(&cur.u, ru), (&cur.v, rv)].into_iter().enumerate() {
        let samples = read_block(mem, src, cx, cy);
        let qb = texture.transform_quant(mem, &samples, true, qp);
        let pred = if plane_idx == 0 { ips.u } else { ips.v };
        texture.entropy_encode(mem, &qb, pred, w);
        if plane_idx == 0 {
            ips.u = qb.qdc();
        } else {
            ips.v = qb.qdc();
        }
        let rec = texture.reconstruct(mem, &qb, qp);
        write_block(mem, dst, cx, cy, &rec);
    }
}

/// Motion-compensates the full macroblock (luma 16×16 + both chroma 8×8)
/// from `reference` and returns the three prediction buffers.
fn predict_mb<M: MemModel>(
    mem: &mut M,
    reference: &TracedFrame,
    texture: &TextureCoder,
    mv: MotionVector,
    mbx: usize,
    mby: usize,
) -> ([u8; 256], [u8; 64], [u8; 64]) {
    span!(mem, Phase::McPredict, {
        let mut pred_y = [0u8; 256];
        motion_compensate_block(
            mem,
            &reference.y,
            mv,
            (mbx * 16) as isize,
            (mby * 16) as isize,
            16,
            16,
            &mut pred_y,
        );
        let cmv = chroma_mv(mv);
        let mut pred_u = [0u8; 64];
        let mut pred_v = [0u8; 64];
        motion_compensate_block(
            mem,
            &reference.u,
            cmv,
            (mbx * 8) as isize,
            (mby * 8) as isize,
            8,
            8,
            &mut pred_u,
        );
        motion_compensate_block(
            mem,
            &reference.v,
            cmv,
            (mbx * 8) as isize,
            (mby * 8) as isize,
            8,
            8,
            &mut pred_v,
        );
        texture.charge_pred_store(mem, 384);
        (pred_y, pred_u, pred_v)
    })
}

/// Builds the prediction buffers for a four-vector (advanced
/// prediction) macroblock: each luma quadrant is compensated with its
/// own vector; chroma uses the truncated average of the four.
pub(crate) fn predict_mb_4mv<M: MemModel>(
    mem: &mut M,
    reference: &TracedFrame,
    texture: &TextureCoder,
    mvs: &[MotionVector; 4],
    mbx: usize,
    mby: usize,
) -> ([u8; 256], [u8; 64], [u8; 64]) {
    span!(mem, Phase::McPredict, {
        let mut pred_y = [0u8; 256];
        for (blk, mv) in mvs.iter().enumerate() {
            let bx = (mbx * 16 + (blk % 2) * 8) as isize;
            let by = (mby * 16 + (blk / 2) * 8) as isize;
            let mut quad = [0u8; 64];
            motion_compensate_block(mem, &reference.y, *mv, bx, by, 8, 8, &mut quad);
            let (qx, qy) = ((blk % 2) * 8, (blk / 2) * 8);
            for r in 0..8 {
                for c in 0..8 {
                    pred_y[(qy + r) * 16 + qx + c] = quad[r * 8 + c];
                }
            }
        }
        let sum_x: i32 = mvs.iter().map(|v| i32::from(v.x)).sum();
        let sum_y: i32 = mvs.iter().map(|v| i32::from(v.y)).sum();
        let avg = MotionVector::new((sum_x / 4) as i16, (sum_y / 4) as i16);
        let cmv = chroma_mv(avg);
        let mut pred_u = [0u8; 64];
        let mut pred_v = [0u8; 64];
        motion_compensate_block(
            mem,
            &reference.u,
            cmv,
            (mbx * 8) as isize,
            (mby * 8) as isize,
            8,
            8,
            &mut pred_u,
        );
        motion_compensate_block(
            mem,
            &reference.v,
            cmv,
            (mbx * 8) as isize,
            (mby * 8) as isize,
            8,
            8,
            &mut pred_v,
        );
        texture.charge_pred_store(mem, 384);
        (pred_y, pred_u, pred_v)
    })
}

/// Quantizes the six residual blocks of an inter MB against the given
/// prediction; returns the per-block levels and the cbp mask.
#[allow(clippy::too_many_arguments)]
fn quantize_inter_mb<M: MemModel>(
    mem: &mut M,
    cur: &TracedFrame,
    pred_y: &[u8; 256],
    pred_u: &[u8; 64],
    pred_v: &[u8; 64],
    texture: &mut TextureCoder,
    qp: u8,
    mbx: usize,
    mby: usize,
) -> ([crate::texture::QuantizedBlock; 6], [bool; 6]) {
    span!(mem, Phase::DctQuant, {
        texture.charge_pred_load(mem, 384);
        let mut blocks = [crate::texture::QuantizedBlock {
            levels: m4ps_dsp::CoefBlock::default(),
            intra: false,
        }; 6];
        let mut cbp = [false; 6];
        for (blk, coded) in cbp.iter_mut().enumerate().take(4) {
            let bx = (mbx * 16 + (blk % 2) * 8) as isize;
            let by = (mby * 16 + (blk / 2) * 8) as isize;
            let samples = read_block(mem, &cur.y, bx, by);
            let res = residual(&samples, &pred_subblock(pred_y, blk));
            let qb = texture.transform_quant(mem, &res, false, qp);
            *coded = !qb.is_empty_inter();
            blocks[blk] = qb;
        }
        let cx = (mbx * 8) as isize;
        let cy = (mby * 8) as isize;
        for (i, (src, pred)) in [(&cur.u, pred_u), (&cur.v, pred_v)].into_iter().enumerate() {
            let samples = read_block(mem, src, cx, cy);
            let res = residual(&samples, pred);
            let qb = texture.transform_quant(mem, &res, false, qp);
            cbp[4 + i] = !qb.is_empty_inter();
            blocks[4 + i] = qb;
        }
        (blocks, cbp)
    })
}

/// Reconstructs an inter MB from levels + prediction and stores it.
#[allow(clippy::too_many_arguments)]
pub(crate) fn reconstruct_inter_mb<M: MemModel, F: FrameSink>(
    mem: &mut M,
    recon: &mut F,
    blocks: &[crate::texture::QuantizedBlock; 6],
    cbp: &[bool; 6],
    pred_y: &[u8; 256],
    pred_u: &[u8; 64],
    pred_v: &[u8; 64],
    texture: &mut TextureCoder,
    qp: u8,
    mbx: usize,
    mby: usize,
) {
    span!(mem, Phase::Recon, {
        texture.charge_pred_load(mem, 384);
        let (ry, ru, rv) = recon.planes_mut();
        for blk in 0..4 {
            let bx = (mbx * 16 + (blk % 2) * 8) as isize;
            let by = (mby * 16 + (blk / 2) * 8) as isize;
            let pred = pred_subblock(pred_y, blk);
            if cbp[blk] {
                let res = texture.reconstruct(mem, &blocks[blk], qp);
                write_block(mem, ry, bx, by, &add_prediction(&res, &pred));
            } else {
                // Uncoded block: the reconstruction is the prediction
                // itself (zero residual, clamp is the identity on u8).
                write_block_u8(mem, ry, bx, by, &pred);
            }
        }
        let cx = (mbx * 8) as isize;
        let cy = (mby * 8) as isize;
        for (i, (dst, pred)) in [(ru, pred_u), (rv, pred_v)].into_iter().enumerate() {
            if cbp[4 + i] {
                let res = texture.reconstruct(mem, &blocks[4 + i], qp);
                write_block(mem, dst, cx, cy, &add_prediction(&res, pred));
            } else {
                write_block_u8(mem, dst, cx, cy, pred);
            }
        }
    });
}

/// Sum of absolute deviations from the block mean (the H.263 intra/inter
/// decision statistic), with one traced pass over the macroblock.
fn mb_deviation<M: MemModel>(mem: &mut M, plane: &TracedPlane, px: isize, py: isize) -> u32 {
    plane.touch_rect_read(mem, px, py, 16, 16);
    mem.add_ops(2 * 256);
    let mut sum = 0u32;
    for r in 0..16 {
        let src = plane.raw_row(px, py + r, 16);
        sum += src.iter().map(|&v| u32::from(v)).sum::<u32>();
    }
    let mean = (sum / 256) as i32;
    let mut dev = 0u32;
    for r in 0..16 {
        let src = plane.raw_row(px, py + r, 16);
        for &v in src {
            dev += (i32::from(v) - mean).unsigned_abs();
        }
    }
    dev
}

/// Bit-cost bias an Inter4V macroblock must overcome (three extra
/// vector differences).
const FOUR_MV_BIAS: u32 = 300;

/// Encodes one macroblock of a P-VOP.
#[allow(clippy::too_many_arguments)]
fn encode_p_mb<M: MemModel, F: FrameSink>(
    mem: &mut M,
    cur: &TracedFrame,
    reference: &TracedFrame,
    recon: &mut F,
    texture: &mut TextureCoder,
    search: &MotionSearch,
    qp: u8,
    mbx: usize,
    mby: usize,
    ips: &mut IntraPredState,
    mv_pred: &mut MvPredictor,
    w: &mut BitWriter,
    stats: &mut VopStats,
    four_mv: bool,
) {
    let outcome = search.search(mem, &cur.y, &reference.y, mbx, mby);
    stats.candidates += u64::from(outcome.candidates);

    // Advanced prediction: refine each 8x8 quadrant around the MB winner.
    let mut mvs4 = [outcome.mv; 4];
    let mut sad4 = u32::MAX;
    if four_mv {
        let mut total = 0u32;
        for (blk, mv) in mvs4.iter_mut().enumerate() {
            let bx = (mbx * 16 + (blk % 2) * 8) as isize;
            let by = (mby * 16 + (blk / 2) * 8) as isize;
            let o = search.refine_block8(mem, &cur.y, &reference.y, bx, by, outcome.mv);
            stats.candidates += u64::from(o.candidates);
            *mv = o.mv;
            total = total.saturating_add(o.sad);
        }
        sad4 = total;
    }
    let use_4mv = four_mv && sad4.saturating_add(FOUR_MV_BIAS) < outcome.sad;
    let best_sad = if use_4mv { sad4 } else { outcome.sad };

    let deviation = mb_deviation(mem, &cur.y, (mbx * 16) as isize, (mby * 16) as isize);

    if deviation + INTRA_BIAS < best_sad {
        // Intra wins.
        w.put_bit(false); // coded
        put_ue(w, MacroblockKind::Intra.code());
        span!(
            mem,
            Phase::DctQuant,
            encode_intra_mb(mem, cur, recon, texture, qp, mbx, mby, ips, w)
        );
        stats.intra_mbs += 1;
        mv_pred.commit(mbx, MotionVector::ZERO);
        return;
    }
    *ips = IntraPredState::reset();

    if use_4mv {
        let (pred_y, pred_u, pred_v) = predict_mb_4mv(mem, reference, texture, &mvs4, mbx, mby);
        let (blocks, cbp) =
            quantize_inter_mb(mem, cur, &pred_y, &pred_u, &pred_v, texture, qp, mbx, mby);
        span!(mem, Phase::Vlc, {
            w.put_bit(false); // coded
            put_ue(w, MacroblockKind::Inter4V.code());
            // Block 0 predicted from the neighbour median, blocks 1-3 chained
            // from the previous block of the same macroblock.
            let mut pred = mv_pred.predict(mbx);
            for mv in &mvs4 {
                put_se(w, i32::from(mv.x) - i32::from(pred.x));
                put_se(w, i32::from(mv.y) - i32::from(pred.y));
                pred = *mv;
            }
            for &b in &cbp {
                w.put_bit(b);
            }
            for (i, qb) in blocks.iter().enumerate() {
                if cbp[i] {
                    texture.entropy_encode(mem, qb, 0, w);
                }
            }
        });
        reconstruct_inter_mb(
            mem, recon, &blocks, &cbp, &pred_y, &pred_u, &pred_v, texture, qp, mbx, mby,
        );
        stats.inter_mbs += 1;
        mv_pred.commit(mbx, MotionVector::median3(mvs4[0], mvs4[1], mvs4[2]));
        return;
    }

    let (pred_y, pred_u, pred_v) = predict_mb(mem, reference, texture, outcome.mv, mbx, mby);
    let (blocks, cbp) =
        quantize_inter_mb(mem, cur, &pred_y, &pred_u, &pred_v, texture, qp, mbx, mby);

    if outcome.mv == MotionVector::ZERO && cbp.iter().all(|&b| !b) {
        w.put_bit(true); // skipped
        reconstruct_inter_mb(
            mem, recon, &blocks, &cbp, &pred_y, &pred_u, &pred_v, texture, qp, mbx, mby,
        );
        stats.skipped_mbs += 1;
        mv_pred.commit(mbx, MotionVector::ZERO);
        return;
    }

    span!(mem, Phase::Vlc, {
        w.put_bit(false); // coded
        put_ue(w, MacroblockKind::Inter.code());
        let pred = mv_pred.predict(mbx);
        put_se(w, i32::from(outcome.mv.x) - i32::from(pred.x));
        put_se(w, i32::from(outcome.mv.y) - i32::from(pred.y));
        for &b in &cbp {
            w.put_bit(b);
        }
        for (i, qb) in blocks.iter().enumerate() {
            if cbp[i] {
                texture.entropy_encode(mem, qb, 0, w);
            }
        }
    });
    reconstruct_inter_mb(
        mem, recon, &blocks, &cbp, &pred_y, &pred_u, &pred_v, texture, qp, mbx, mby,
    );
    stats.inter_mbs += 1;
    mv_pred.commit(mbx, outcome.mv);
}

/// SAD of the current MB against an arbitrary prediction buffer (used to
/// evaluate the bidirectional mode), with traced current reads.
fn sad_against_pred<M: MemModel>(
    mem: &mut M,
    cur: &TracedPlane,
    pred: &[u8; 256],
    mbx: usize,
    mby: usize,
) -> u32 {
    let (px, py) = ((mbx * 16) as isize, (mby * 16) as isize);
    cur.touch_rect_read(mem, px, py, 16, 16);
    mem.add_ops(16 * 48);
    let mut acc = 0u32;
    for r in 0..16 {
        let c = cur.raw_row(px, py + r as isize, 16);
        for i in 0..16 {
            acc += u32::from(c[i].abs_diff(pred[r * 16 + i]));
        }
    }
    acc
}

/// Encodes one macroblock of a B-VOP.
#[allow(clippy::too_many_arguments)]
fn encode_b_mb<M: MemModel, F: FrameSink>(
    mem: &mut M,
    cur: &TracedFrame,
    fwd: &TracedFrame,
    bwd: &TracedFrame,
    recon: &mut F,
    texture: &mut TextureCoder,
    search: &MotionSearch,
    qp: u8,
    mbx: usize,
    mby: usize,
    fwd_pred: &mut MvPredictor,
    bwd_pred: &mut MvPredictor,
    w: &mut BitWriter,
    stats: &mut VopStats,
) {
    let of = search.search(mem, &cur.y, &fwd.y, mbx, mby);
    let ob = search.search(mem, &cur.y, &bwd.y, mbx, mby);
    stats.candidates += u64::from(of.candidates + ob.candidates);

    // Evaluate the interpolated mode with the two winners.
    let (fy, fu, fv) = predict_mb(mem, fwd, texture, of.mv, mbx, mby);
    let (by_, bu, bv) = predict_mb(mem, bwd, texture, ob.mv, mbx, mby);
    let mut bi_y = [0u8; 256];
    average_predictions(&fy, &by_, &mut bi_y);
    let sad_bi = sad_against_pred(mem, &cur.y, &bi_y, mbx, mby);

    let kind = if sad_bi <= of.sad.min(ob.sad) {
        MacroblockKind::Bidirectional
    } else if of.sad <= ob.sad {
        MacroblockKind::Forward
    } else {
        MacroblockKind::Backward
    };

    let (pred_y, pred_u, pred_v) = match kind {
        MacroblockKind::Forward => (fy, fu, fv),
        MacroblockKind::Backward => (by_, bu, bv),
        _ => {
            let mut u = [0u8; 64];
            let mut v = [0u8; 64];
            average_predictions(&fu, &bu, &mut u);
            average_predictions(&fv, &bv, &mut v);
            (bi_y, u, v)
        }
    };

    // One Vlc span wraps the macroblock's whole entropy section; the
    // nested DctQuant span inside `quantize_inter_mb` subtracts itself
    // back out (exclusive attribution), so no Vlc/DctQuant bleed-over.
    let (blocks, cbp) = span!(mem, Phase::Vlc, {
        put_ue(w, kind.code());
        if kind != MacroblockKind::Backward {
            let p = fwd_pred.predict(mbx);
            put_se(w, i32::from(of.mv.x) - i32::from(p.x));
            put_se(w, i32::from(of.mv.y) - i32::from(p.y));
        }
        if kind != MacroblockKind::Forward {
            let p = bwd_pred.predict(mbx);
            put_se(w, i32::from(ob.mv.x) - i32::from(p.x));
            put_se(w, i32::from(ob.mv.y) - i32::from(p.y));
        }
        fwd_pred.commit(
            mbx,
            if kind != MacroblockKind::Backward {
                of.mv
            } else {
                MotionVector::ZERO
            },
        );
        bwd_pred.commit(
            mbx,
            if kind != MacroblockKind::Forward {
                ob.mv
            } else {
                MotionVector::ZERO
            },
        );

        let (blocks, cbp) =
            quantize_inter_mb(mem, cur, &pred_y, &pred_u, &pred_v, texture, qp, mbx, mby);
        for &b in &cbp {
            w.put_bit(b);
        }
        for (i, qb) in blocks.iter().enumerate() {
            if cbp[i] {
                texture.entropy_encode(mem, qb, 0, w);
            }
        }
        (blocks, cbp)
    });
    reconstruct_inter_mb(
        mem, recon, &blocks, &cbp, &pred_y, &pred_u, &pred_v, texture, qp, mbx, mby,
    );
    stats.inter_mbs += 1;
}
