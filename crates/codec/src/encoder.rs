//! The video-object encoder: GOP management, VOP reordering, and the
//! per-VOP coding loop (`vop_code` in MoMuSys terms — the function the
//! paper instruments for its burstiness study).

use crate::config::EncoderConfig;
use crate::error::CodecError;
use crate::header::{VolHeader, VopHeader};
use crate::mbops::{
    add_prediction, chroma_mv, pred_subblock, read_block, residual, write_block, write_block_u8,
    IntraPredState, MvPredictor, StreamCharge,
};
use crate::mc::{average_predictions, motion_compensate_block};
use crate::me::MotionSearch;
use crate::plane::{FrameSink, FrameViewMut, RowSink, TracedFrame, TracedPlane};
use crate::rate::RateController;
use crate::shape::{classify_bab, encode_alpha_plane, BabClass};
use crate::slices::partition_rows;
use crate::texture::TextureCoder;
use crate::types::{MacroblockKind, MotionVector, VopKind};
use crate::vlc::{put_se, put_ue};
use m4ps_bitstream::BitWriter;
use m4ps_memsim::{AddressSpace, MemModel, ParallelModel};
use m4ps_obs::{span, MetricId, Phase};
use m4ps_pool::{Scope, WorkerPool};
use std::ops::Range;
use std::sync::{Arc, Mutex};

/// A borrowed view of one 4:2:0 input frame.
#[derive(Debug, Clone, Copy)]
pub struct FrameView<'a> {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Luma plane (`width × height`).
    pub y: &'a [u8],
    /// Cb plane (`width/2 × height/2`).
    pub u: &'a [u8],
    /// Cr plane (`width/2 × height/2`).
    pub v: &'a [u8],
}

impl<'a> FrameView<'a> {
    /// Validates plane sizes.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::DimensionMismatch`] when any plane has the
    /// wrong length.
    pub fn validate(&self) -> Result<(), CodecError> {
        let lp = self.width * self.height;
        let cp = (self.width / 2) * (self.height / 2);
        if self.y.len() != lp || self.u.len() != cp || self.v.len() != cp {
            return Err(CodecError::DimensionMismatch {
                expected: (self.width, self.height),
                found: (self.y.len() / self.height.max(1), self.height),
            });
        }
        Ok(())
    }
}

/// Per-VOP coding statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VopStats {
    /// Bits produced by this VOP.
    pub bits: u64,
    /// Intra-coded macroblocks.
    pub intra_mbs: u64,
    /// Inter-coded macroblocks (including B modes).
    pub inter_mbs: u64,
    /// Skipped macroblocks.
    pub skipped_mbs: u64,
    /// Fully transparent macroblocks (shape-coded VOPs only).
    pub transparent_mbs: u64,
    /// Motion-search candidates evaluated.
    pub candidates: u64,
    /// Macroblocks concealed after a bitstream error (decoder only).
    pub concealed_mbs: u64,
}

impl VopStats {
    /// Adds `other`'s tallies into `self` (slice-stitch accumulation).
    /// Plain element-wise addition, so the merged total is independent
    /// of the order slices finished in.
    pub fn merge(&mut self, other: &VopStats) {
        self.bits += other.bits;
        self.intra_mbs += other.intra_mbs;
        self.inter_mbs += other.inter_mbs;
        self.skipped_mbs += other.skipped_mbs;
        self.transparent_mbs += other.transparent_mbs;
        self.candidates += other.candidates;
        self.concealed_mbs += other.concealed_mbs;
    }
}

/// Raw copies of a reconstructed VOP (testing aid).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconPlanes {
    /// Luma plane.
    pub y: Vec<u8>,
    /// Cb plane.
    pub u: Vec<u8>,
    /// Cr plane.
    pub v: Vec<u8>,
}

/// One encoded video object plane, in coding (decode) order.
#[derive(Debug, Clone)]
pub struct EncodedVop {
    /// Coding type.
    pub kind: VopKind,
    /// Display (temporal) index.
    pub display_index: usize,
    /// Quantizer used.
    pub qp: u8,
    /// Bitstream payload (startcode-prefixed, byte-aligned).
    pub bytes: Vec<u8>,
    /// Coding statistics.
    pub stats: VopStats,
    /// Reconstruction copies when the coder was asked to keep them.
    pub recon: Option<ReconPlanes>,
}

/// Macroblock-aligned bounding box `(x0, y0, w, h)` in pixels.
pub(crate) type Bbox = (usize, usize, usize, usize);

/// Environment variable selecting the default [`Scheduling`] mode.
/// `slice` (or `slice-parallel`) picks [`Scheduling::SliceParallel`];
/// anything else — including unset — picks [`Scheduling::Wavefront`].
pub const SCHED_ENV: &str = "M4PS_SCHED";

/// How a VOP's macroblock work is decomposed onto the worker pool.
///
/// Purely a scheduling knob: both modes build the *same* per-slice
/// forked counter streams, charge windows and bitstream segments, so
/// bitstream bytes and merged [`Counters`](m4ps_memsim::Counters) are
/// bit-identical across modes and thread counts (pinned by
/// `tests/parallel.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduling {
    /// One task per slice: the coarse decomposition. An expensive
    /// slice serializes everything scheduled behind it on one worker.
    SliceParallel,
    /// One task per macroblock row, chained per slice: each row task
    /// enqueues its slice's next row as soon as the row's dependencies
    /// (MV-predictor state, bit position, forked counter stream)
    /// resolve, so scheduling balances skewed row costs via stealing.
    #[default]
    Wavefront,
}

impl Scheduling {
    /// Mode from the `M4PS_SCHED` environment variable.
    pub fn from_env() -> Self {
        match std::env::var(SCHED_ENV).ok().as_deref().map(str::trim) {
            Some("slice") | Some("slice-parallel") => Scheduling::SliceParallel,
            _ => Scheduling::Wavefront,
        }
    }

    /// Macroblock rows coded per task (shared by the slice-parallel
    /// encoder and decoder).
    pub(crate) fn grain(self) -> usize {
        match self {
            Scheduling::SliceParallel => usize::MAX,
            Scheduling::Wavefront => 1,
        }
    }
}

/// Queued B-frame awaiting its backward anchor.
#[derive(Debug)]
struct BSlot {
    frame: TracedFrame,
    alpha: Option<TracedPlane>,
    bbox: Bbox,
    display_index: usize,
}

/// Encoder for one video object layer.
///
/// Frames are submitted in display order via
/// [`VideoObjectCoder::encode_frame`]; encoded VOPs come back in coding
/// order (anchors before the B-VOPs that reference them), reproducing
/// the paper's Figure 1 semantics.
#[derive(Debug)]
pub struct VideoObjectCoder {
    config: EncoderConfig,
    vol: VolHeader,
    mb_cols: usize,
    mb_rows: usize,
    cur: TracedFrame,
    cur_alpha: Option<TracedPlane>,
    cur_bbox: Bbox,
    prev_alpha_bbox: Option<Bbox>,
    b_slots: Vec<BSlot>,
    queue_len: usize,
    anchors: [TracedFrame; 2],
    prev_anchor: usize,
    have_anchor: bool,
    b_recon: TracedFrame,
    /// Per-slot reconstruction buffers for the pipelined (fixed-QP)
    /// B-drain, where queued B-VOPs encode concurrently and cannot
    /// share `b_recon`. Allocated at the *end* of the address space so
    /// the legacy layout's simulated addresses are unchanged.
    b_recons: Vec<TracedFrame>,
    /// Per-slot slice scratch for the pipelined B-drain (each
    /// concurrent VOP needs its own texture clones and MV predictors).
    b_scratch: Vec<Vec<SliceScratch>>,
    texture: TextureCoder,
    /// Reusable per-slice coding state (texture scratch clones and MV
    /// predictors), grown on first use and recycled every VOP so the
    /// steady-state encode loop performs no per-slice heap allocation.
    slice_scratch: Vec<SliceScratch>,
    search: MotionSearch,
    rate: RateController,
    next_display: usize,
    display_scale: usize,
    display_offset: usize,
    stream_base: u64,
    stream_bits: u64,
    keep_recon: bool,
    /// Worker pool, created lazily on first encode (or shared via
    /// [`VideoObjectCoder::set_pool`]). Lazy so that constructing many
    /// session coders — the multi-session service holds hundreds, all
    /// sharing one pool — spawns no per-coder OS threads.
    pool: Option<Arc<WorkerPool>>,
    /// Thread count for the lazily created pool; 0 = resolve from the
    /// environment at creation time.
    threads_hint: usize,
    sched: Scheduling,
    /// Accumulated counter deltas over the `encode_vop` windows — the
    /// paper's `VopCode()` instrumentation (Table 8).
    vop_window: m4ps_memsim::Counters,
}

impl VideoObjectCoder {
    /// Creates a rectangular-VOP coder for `width × height` frames.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidConfig`] for bad configuration or
    /// non-macroblock-aligned dimensions.
    pub fn new(
        space: &mut AddressSpace,
        width: usize,
        height: usize,
        config: EncoderConfig,
    ) -> Result<Self, CodecError> {
        Self::with_vol(
            space,
            VolHeader {
                vo_id: 0,
                vol_id: 0,
                width,
                height,
                binary_shape: false,
                enhancement: false,
            },
            config,
        )
    }

    /// Creates a coder with an explicit VOL header (arbitrary shape,
    /// multi-object and scalability callers).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidConfig`] for bad configuration or
    /// non-macroblock-aligned dimensions.
    pub fn with_vol(
        space: &mut AddressSpace,
        vol: VolHeader,
        config: EncoderConfig,
    ) -> Result<Self, CodecError> {
        config.validate()?;
        let (width, height) = (vol.width, vol.height);
        if width % 16 != 0 || height % 16 != 0 {
            return Err(CodecError::InvalidConfig(
                "frame dimensions must be multiples of 16",
            ));
        }
        let alpha_for = |space: &mut AddressSpace| {
            vol.binary_shape
                .then(|| TracedPlane::new(space, width, height))
        };
        space.set_tag("enc.b_queue");
        let b_slots = (0..config.gop.b_frames)
            .map(|_| BSlot {
                frame: TracedFrame::new(space, width, height),
                alpha: alpha_for(space),
                bbox: (0, 0, 0, 0),
                display_index: 0,
            })
            .collect();
        space.set_tag("enc.input_frame");
        let cur = TracedFrame::new(space, width, height);
        space.set_tag("enc.alpha");
        let cur_alpha = alpha_for(space);
        space.set_tag("enc.reference_frames");
        let anchors = [
            TracedFrame::new(space, width, height),
            TracedFrame::new(space, width, height),
        ];
        space.set_tag("enc.b_recon");
        let b_recon = TracedFrame::new(space, width, height);
        space.set_tag("enc.scratch");
        let texture = TextureCoder::new(space);
        let stream_base = {
            space.set_tag("enc.bitstream");
            let base = space.alloc(16 * 1024 * 1024);
            space.set_tag("untagged");
            base
        };
        // Everything below is appended past the legacy layout: the
        // cursor only ever grows, so these allocations leave every
        // existing simulated address (and therefore every charge
        // stream that doesn't use them) untouched.
        space.set_tag("enc.b_recon");
        let b_recons = (0..config.gop.b_frames)
            .map(|_| TracedFrame::new(space, width, height))
            .collect();
        space.set_tag("untagged");
        Ok(VideoObjectCoder {
            vol,
            mb_cols: width / 16,
            mb_rows: height / 16,
            cur,
            cur_alpha,
            cur_bbox: (0, 0, 0, 0),
            prev_alpha_bbox: None,
            b_slots,
            queue_len: 0,
            anchors,
            prev_anchor: 0,
            have_anchor: false,
            b_recon,
            b_recons,
            b_scratch: Vec::new(),
            texture,
            slice_scratch: Vec::new(),
            search: MotionSearch::new(config.search, config.search_range, config.half_pel),
            rate: RateController::new(config.initial_qp, config.bitrate, config.frame_rate),
            next_display: 0,
            display_scale: 1,
            display_offset: 0,
            stream_base,
            stream_bits: 0,
            keep_recon: false,
            pool: None,
            threads_hint: 0,
            sched: Scheduling::from_env(),
            vop_window: m4ps_memsim::Counters::new(),
            config,
        })
    }

    /// Sets the number of worker threads used to encode a VOP's slices.
    ///
    /// Purely a scheduling knob: any thread count produces bit-identical
    /// output (the slice partition is fixed by
    /// [`EncoderConfig::slices`](crate::EncoderConfig), which is what
    /// changes the bitstream). Defaults to the `M4PS_THREADS`
    /// environment override, falling back to the machine's available
    /// parallelism.
    pub fn set_threads(&mut self, threads: usize) {
        let threads = threads.clamp(1, 256);
        self.threads_hint = threads;
        if self.pool.as_ref().is_some_and(|p| p.threads() != threads) {
            self.pool = None;
        }
    }

    /// Shares a persistent worker pool with this coder. The study
    /// lifecycle (`m4ps-core`) spawns one pool per study and hands it
    /// to every layer's coder — and the multi-session service hands
    /// one pool to every session — so workers are spawned once and
    /// parked between VOPs instead of re-created per coder.
    pub fn set_pool(&mut self, pool: Arc<WorkerPool>) {
        self.threads_hint = pool.threads();
        self.pool = Some(pool);
    }

    /// The worker thread count slices are scheduled onto.
    pub fn threads(&self) -> usize {
        match (&self.pool, self.threads_hint) {
            (Some(p), _) => p.threads(),
            (None, 0) => {
                m4ps_pool::resolve_threads(std::env::var(m4ps_pool::THREADS_ENV).ok().as_deref())
            }
            (None, hint) => hint,
        }
    }

    /// The pool VOP work is scheduled onto, created on first use.
    fn pool_handle(&mut self) -> Arc<WorkerPool> {
        if self.pool.is_none() {
            let pool = if self.threads_hint > 0 {
                WorkerPool::new(self.threads_hint)
            } else {
                WorkerPool::from_env()
            };
            self.pool = Some(Arc::new(pool));
        }
        Arc::clone(self.pool.as_ref().expect("pool just created"))
    }

    /// Selects how VOP work is decomposed onto the pool (see
    /// [`Scheduling`]). Output is bit-identical across modes.
    pub fn set_scheduling(&mut self, sched: Scheduling) {
        self.sched = sched;
    }

    /// The active scheduling mode.
    pub fn scheduling(&self) -> Scheduling {
        self.sched
    }

    /// The VOL header describing this layer.
    pub fn vol(&self) -> &VolHeader {
        &self.vol
    }

    /// Serialized VOL header (place once at the start of the stream).
    pub fn header_bytes(&self) -> Vec<u8> {
        let mut w = BitWriter::new();
        self.vol.write(&mut w);
        w.into_bytes()
    }

    /// Keep raw reconstruction copies in every [`EncodedVop`] (testing).
    pub fn set_keep_recon(&mut self, keep: bool) {
        self.keep_recon = keep;
    }

    /// Maps internal frame numbering to stream display indices as
    /// `offset + scale * n`. Temporal-scalability sessions use this so
    /// the base layer labels frames 0, 2, 4, … and the enhancement
    /// layer 1, 3, 5, … while each coder still sees a dense sequence.
    pub fn set_display_mapping(&mut self, scale: usize, offset: usize) {
        assert!(scale >= 1);
        self.display_scale = scale;
        self.display_offset = offset;
    }

    /// Counter deltas accumulated over every `encode_vop` window so far
    /// — the paper's `VopCode()` burstiness instrumentation.
    pub fn vop_window(&self) -> m4ps_memsim::Counters {
        self.vop_window
    }

    /// Reconstruction of the most recent anchor (reference for temporal
    /// enhancement layers).
    pub fn last_anchor(&self) -> Option<&TracedFrame> {
        self.have_anchor.then(|| &self.anchors[self.prev_anchor])
    }

    /// Coding type of display index `idx` under the configured GOP.
    fn kind_for(&self, idx: usize) -> VopKind {
        if idx.is_multiple_of(self.config.gop.intra_period) {
            VopKind::I
        } else if idx.is_multiple_of(self.config.gop.b_frames + 1) {
            VopKind::P
        } else {
            VopKind::B
        }
    }

    /// Submits the next display-order frame. Returns the VOPs that became
    /// encodable (possibly none while B-frames queue up).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::DimensionMismatch`] for wrong plane sizes
    /// and [`CodecError::InvalidConfig`] when a shape layer is not given
    /// an alpha mask (or vice versa).
    pub fn encode_frame<M: ParallelModel>(
        &mut self,
        mem: &mut M,
        frame: &FrameView<'_>,
        alpha: Option<&[u8]>,
    ) -> Result<Vec<EncodedVop>, CodecError> {
        frame.validate()?;
        if (frame.width, frame.height) != (self.vol.width, self.vol.height) {
            return Err(CodecError::DimensionMismatch {
                expected: (self.vol.width, self.vol.height),
                found: (frame.width, frame.height),
            });
        }
        if self.vol.binary_shape != alpha.is_some() {
            return Err(CodecError::InvalidConfig(
                "alpha mask must be supplied exactly for binary-shape layers",
            ));
        }
        let idx = self.next_display;
        self.next_display += 1;
        let kind = self.kind_for(idx);
        let idx = self.display_offset + self.display_scale * idx;

        if kind == VopKind::B && self.have_anchor && self.queue_len < self.b_slots.len() {
            let slot = &mut self.b_slots[self.queue_len];
            span!(mem, Phase::FrameIo, {
                if let Some(mask) = alpha {
                    let bbox = mask_bbox(mask, self.vol.width, self.vol.height);
                    slot.frame
                        .copy_region_from_yuv(mem, frame.y, frame.u, frame.v, bbox);
                } else {
                    slot.frame.copy_from_yuv(
                        mem,
                        frame.y,
                        frame.u,
                        frame.v,
                        self.config.software_prefetch,
                    );
                }
                if let (Some(plane), Some(mask)) = (slot.alpha.as_mut(), alpha) {
                    let bbox = mask_bbox(mask, plane.width(), plane.height());
                    // Clear the slot's previous object region, then load the
                    // new VOP-sized alpha region (as the reference codec
                    // loads per-VOP segmentation buffers).
                    let (px, py, pw, ph) = slot.bbox;
                    if pw > 0 {
                        plane.clear_region(mem, px, py, pw, ph);
                    }
                    plane.copy_region_from(mem, mask, bbox);
                    slot.bbox = bbox;
                }
            });
            slot.display_index = idx;
            self.queue_len += 1;
            return Ok(Vec::new());
        }

        // Anchor path (also handles a B that could not queue: encode as P).
        let kind = if kind == VopKind::B { VopKind::P } else { kind };
        span!(mem, Phase::FrameIo, {
            if let Some(mask) = alpha {
                // Shaped objects load only their VOP-sized region.
                let bbox = mask_bbox(mask, self.vol.width, self.vol.height);
                self.cur
                    .copy_region_from_yuv(mem, frame.y, frame.u, frame.v, bbox);
            } else {
                self.cur.copy_from_yuv(
                    mem,
                    frame.y,
                    frame.u,
                    frame.v,
                    self.config.software_prefetch,
                );
            }
            if let (Some(plane), Some(mask)) = (self.cur_alpha.as_mut(), alpha) {
                let bbox = mask_bbox(mask, plane.width(), plane.height());
                if let Some((px, py, pw, ph)) = self.prev_alpha_bbox {
                    plane.clear_region(mem, px, py, pw, ph);
                }
                plane.copy_region_from(mem, mask, bbox);
                self.prev_alpha_bbox = Some(bbox);
                self.cur_bbox = bbox;
            }
        });
        let mut out = Vec::with_capacity(1 + self.queue_len);
        out.push(self.encode_anchor_from_cur(mem, kind, idx));
        out.extend(self.drain_b_queue(mem));
        Ok(out)
    }

    /// Encodes the frame currently in `self.cur` as an anchor.
    fn encode_anchor_from_cur<M: ParallelModel>(
        &mut self,
        mem: &mut M,
        kind: VopKind,
        display_index: usize,
    ) -> EncodedVop {
        let kind = if self.have_anchor { kind } else { VopKind::I };
        let qp = self.rate.qp_for(kind);
        let new_idx = if self.have_anchor {
            1 - self.prev_anchor
        } else {
            0
        };
        let header = VopHeader {
            kind,
            display_index: display_index as u32,
            qp,
            bbox: None, // filled inside encode_vop for shape layers
            resync_interval: self.config.resync_mb_interval,
            slices: self.config.slices,
        };
        let window_start = *mem.counters();
        // The VopEncode span reuses the paper's `VopCode()` counter
        // window: enter on the snapshot already taken for `vop_window`.
        let obs_on = m4ps_obs::enabled();
        if obs_on {
            m4ps_obs::enter(Phase::VopEncode, window_start);
        }
        let pool = self.pool_handle();
        let (left, right) = self.anchors.split_at_mut(1);
        let (fwd, recon): (Option<&TracedFrame>, &mut TracedFrame) = if new_idx == 0 {
            (
                (kind != VopKind::I && self.have_anchor).then_some(&right[0]),
                &mut left[0],
            )
        } else {
            (
                (kind != VopKind::I && self.have_anchor).then_some(&left[0]),
                &mut right[0],
            )
        };
        let (bytes, stats) = encode_vop(
            mem,
            header,
            &self.cur,
            self.cur_alpha.as_ref().map(|a| (a, self.cur_bbox)),
            fwd,
            None,
            recon,
            &self.texture,
            &mut self.slice_scratch,
            &self.search,
            self.stream_base + self.stream_bits / 8,
            self.mb_cols,
            self.mb_rows,
            self.config.four_mv,
            &pool,
            self.sched,
        );
        if !self.vol.binary_shape {
            // Rectangular VOPs pad the whole reference frame; shaped
            // VOPs are padded VOP-locally (the grey ring around the
            // bounding box), as the reference codec pads VOP buffers.
            recon.pad_borders(mem);
        }
        if obs_on {
            m4ps_obs::exit(Phase::VopEncode, *mem.counters());
        }
        self.vop_window = self
            .vop_window
            .merged_with(&mem.counters().delta_since(&window_start));
        let recon_copy = self.keep_recon.then(|| ReconPlanes {
            y: recon.y.copy_out(mem),
            u: recon.u.copy_out(mem),
            v: recon.v.copy_out(mem),
        });
        self.stream_bits += stats.bits;
        self.rate.update(kind, stats.bits);
        self.prev_anchor = new_idx;
        self.have_anchor = true;
        EncodedVop {
            kind,
            display_index,
            qp,
            bytes,
            stats,
            recon: recon_copy,
        }
    }

    /// Encodes every queued B-frame against the two live anchors.
    ///
    /// Fixed-QP sessions (no rate controller feedback between VOPs)
    /// take the pipelined path: the whole queue is encoded as one
    /// batch of slice chains on the pool, so VOP N+1's motion search
    /// overlaps VOP N's texture-coding drain. Rate-controlled sessions
    /// keep the sequential loop — each VOP's bit count feeds the next
    /// VOP's quantizer, a true dependency the pipeline must not break.
    fn drain_b_queue<M: ParallelModel>(&mut self, mem: &mut M) -> Vec<EncodedVop> {
        if self.queue_len == 0 {
            return Vec::new();
        }
        if self.config.bitrate.is_none() {
            return self.drain_b_queue_pipelined(mem);
        }
        let mut out = Vec::with_capacity(self.queue_len);
        let pool = self.pool_handle();
        for q in 0..self.queue_len {
            let qp = self.rate.qp_for(VopKind::B);
            let slot = &self.b_slots[q];
            let header = VopHeader {
                kind: VopKind::B,
                display_index: slot.display_index as u32,
                qp,
                bbox: None,
                resync_interval: self.config.resync_mb_interval,
                slices: self.config.slices,
            };
            let window_start = *mem.counters();
            let obs_on = m4ps_obs::enabled();
            if obs_on {
                m4ps_obs::enter(Phase::VopEncode, window_start);
            }
            // Forward ref is the *older* anchor, backward the newer.
            let older = 1 - self.prev_anchor;
            let (left, right) = self.anchors.split_at_mut(1);
            let (fwd, bwd) = if older == 0 {
                (&left[0], &right[0])
            } else {
                (&right[0], &left[0])
            };
            let (bytes, stats) = encode_vop(
                mem,
                header,
                &slot.frame,
                slot.alpha.as_ref().map(|a| (a, slot.bbox)),
                Some(fwd),
                Some(bwd),
                &mut self.b_recon,
                &self.texture,
                &mut self.slice_scratch,
                &self.search,
                self.stream_base + self.stream_bits / 8,
                self.mb_cols,
                self.mb_rows,
                self.config.four_mv,
                &pool,
                self.sched,
            );
            if obs_on {
                m4ps_obs::exit(Phase::VopEncode, *mem.counters());
            }
            self.vop_window = self
                .vop_window
                .merged_with(&mem.counters().delta_since(&window_start));
            let recon_copy = self.keep_recon.then(|| ReconPlanes {
                y: self.b_recon.y.copy_out(mem),
                u: self.b_recon.u.copy_out(mem),
                v: self.b_recon.v.copy_out(mem),
            });
            self.stream_bits += stats.bits;
            self.rate.update(VopKind::B, stats.bits);
            out.push(EncodedVop {
                kind: VopKind::B,
                display_index: slot.display_index,
                qp,
                bytes,
                stats,
                recon: recon_copy,
            });
        }
        self.queue_len = 0;
        out
    }

    /// Pipelined fixed-QP B-drain: every queued B-VOP's slice chains
    /// are spawned into *one* pool scope, so the scheduler interleaves
    /// motion estimation for VOP N+1 with VOP N's texture-coding drain
    /// whenever a worker runs dry. The bitstream is byte-identical to
    /// the sequential drain (same quantizer, inputs and anchors into
    /// fresh writers); merged counters stay deterministic because every
    /// VOP charges a private window at
    /// `batch_base + k * (slices + 2) * SLICE_CHARGE_SPAN` — a function
    /// of queue position alone, never of scheduling.
    fn drain_b_queue_pipelined<M: ParallelModel>(&mut self, mem: &mut M) -> Vec<EncodedVop> {
        /// Coordinator-side header state for one queued VOP: `head`
        /// holds a finished (byte-aligned) header segment for sliced
        /// VOPs; `inline` carries the still-open writer and charge
        /// state into an unsliced VOP's single chain.
        struct Prep {
            hdr: VopHeader,
            slice_rows: Vec<Range<usize>>,
            mbx_range: Range<usize>,
            mby_start: usize,
            header_bits: u64,
            head: Option<BitWriter>,
            inline: Option<(BitWriter, StreamCharge)>,
        }

        let n = self.queue_len;
        self.queue_len = 0;
        let qp = self.rate.qp_for(VopKind::B);
        let batch_base = self.stream_base + self.stream_bits / 8;
        let vop_span = (self.config.slices as u64 + 2) * SLICE_CHARGE_SPAN;

        let window_start = *mem.counters();
        let obs_on = m4ps_obs::enabled();
        if obs_on {
            m4ps_obs::enter(Phase::VopEncode, window_start);
        }

        // Pass A (coordinator, VOP order): headers, alpha planes and
        // their stream charges against the parent model, exactly as the
        // sequential drain would have produced them.
        let mut preps: Vec<Prep> = Vec::with_capacity(n);
        for k in 0..n {
            let slot = &self.b_slots[k];
            let alpha = slot.alpha.as_ref().map(|a| (a, slot.bbox));
            let bbox = alpha.map(|(_, b)| b);
            let mut hdr = VopHeader {
                kind: VopKind::B,
                display_index: slot.display_index as u32,
                qp,
                bbox,
                resync_interval: self.config.resync_mb_interval,
                slices: self.config.slices,
            };
            let (mbx_range, mby_range) = match bbox {
                Some((x0, y0, bw, bh)) => (x0 / 16..(x0 + bw) / 16, y0 / 16..(y0 + bh) / 16),
                None => (0..self.mb_cols, 0..self.mb_rows),
            };
            let slice_rows = partition_rows(mby_range.clone(), hdr.slices);
            hdr.slices = slice_rows.len();
            let mut w = BitWriter::new();
            let mut charge = StreamCharge::writer(batch_base + k as u64 * vop_span);
            hdr.write(&mut w);
            if let Some((a, b)) = alpha {
                span!(mem, Phase::Shape, encode_alpha_plane(mem, a, b, &mut w));
            }
            let (header_bits, head, inline) = if hdr.slices == 1 {
                // Unsliced: macroblock bits continue straight off the
                // header in the same writer and charge window.
                charge.charge_to(mem, w.bit_len());
                (0, None, Some((w, charge)))
            } else {
                w.stuff_to_alignment();
                charge.charge_to(mem, w.bit_len());
                (w.bit_len(), Some(w), None)
            };
            preps.push(Prep {
                hdr,
                slice_rows,
                mbx_range,
                mby_start: mby_range.start,
                header_bits,
                head,
                inline,
            });
            while self.b_scratch.len() <= k {
                self.b_scratch.push(Vec::new());
            }
        }
        for (prep, scratch) in preps.iter().zip(self.b_scratch.iter_mut()) {
            while scratch.len() < prep.slice_rows.len() {
                scratch.push(SliceScratch::new(&self.texture, self.mb_cols));
            }
        }

        let pool = self.pool_handle();
        // Forward ref is the *older* anchor, backward the newer.
        let older = 1 - self.prev_anchor;
        let (fwd, bwd) = (&self.anchors[older], &self.anchors[1 - older]);
        let ctxs: Vec<SliceCtx<'_>> = preps
            .iter()
            .enumerate()
            .map(|(k, prep)| {
                let slot = &self.b_slots[k];
                SliceCtx {
                    hdr: prep.hdr,
                    cur: &slot.frame,
                    alpha: slot.alpha.as_ref().map(|a| (a, slot.bbox)),
                    fwd: Some(fwd),
                    bwd: Some(bwd),
                    search: &self.search,
                    mbx_range: prep.mbx_range.clone(),
                    four_mv: self.config.four_mv,
                }
            })
            .collect();

        // Forks happen here, sequentially, in (VOP, slice) order — the
        // same deterministic snapshot every scheduling would see.
        let sched = self.sched;
        let mut chainsv: Vec<Vec<SliceChain<'_, M>>> = Vec::with_capacity(n);
        for (((prep, ctx), recon), scratch) in preps
            .iter_mut()
            .zip(ctxs.iter())
            .zip(self.b_recons.iter_mut())
            .zip(self.b_scratch.iter_mut())
        {
            let views = recon.split_mb_rows_mut(&prep.slice_rows);
            let vop_base = batch_base + (chainsv.len() as u64) * vop_span;
            chainsv.push(build_slice_chains(
                mem,
                ctx,
                &prep.slice_rows,
                views,
                scratch,
                prep.mby_start,
                vop_base,
                sched,
                prep.inline.take(),
            ));
        }

        // One scope for the whole batch: all VOPs' chains share the
        // worker pool, so late rows of VOP N overlap early rows of
        // VOP N+1.
        let slotsv: Vec<Vec<Mutex<Option<SliceOut<M>>>>> = chainsv
            .iter()
            .map(|chains| chains.iter().map(|_| Mutex::new(None)).collect())
            .collect();
        let session = m4ps_obs::current();
        pool.scope(session.as_ref(), |scope| {
            for ((chains, ctx), slots) in chainsv.iter_mut().zip(ctxs.iter()).zip(slotsv.iter()) {
                for (chain, slot) in chains.drain(..).zip(slots.iter()) {
                    scope.spawn(move |s| slice_chain_step(chain, ctx, slot, s));
                }
            }
        });

        // Merge in (VOP, slice) order while the VopEncode window is
        // still open, so `absorbed` keeps the window from double
        // counting the forks' traffic.
        let mut merged: Vec<(Vec<u8>, VopStats)> = Vec::with_capacity(n);
        for ((k, prep), slots) in preps.iter_mut().enumerate().zip(slotsv) {
            let mut stats = VopStats::default();
            let mut bytes = match prep.head.take() {
                Some(w) => w.into_bytes(),
                None => Vec::new(),
            };
            for slot in slots {
                let (sbytes, sstats, smem) = slot
                    .into_inner()
                    .expect("slice slot lock")
                    .expect("scope waits for every slice chain");
                let child_total = *smem.counters();
                mem.absorb(smem);
                m4ps_obs::absorbed(&child_total);
                stats.merge(&sstats);
                bytes.extend_from_slice(&sbytes);
            }
            stats.bits += prep.header_bits;
            if let Some(bbox) = prep.hdr.bbox {
                fill_bbox_ring(mem, &mut self.b_recons[k], bbox, self.mb_cols, self.mb_rows);
            }
            merged.push((bytes, stats));
        }

        if obs_on {
            m4ps_obs::exit(Phase::VopEncode, *mem.counters());
        }
        self.vop_window = self
            .vop_window
            .merged_with(&mem.counters().delta_since(&window_start));

        let mut out = Vec::with_capacity(n);
        for (k, (bytes, stats)) in merged.into_iter().enumerate() {
            let recon_copy = self.keep_recon.then(|| ReconPlanes {
                y: self.b_recons[k].y.copy_out(mem),
                u: self.b_recons[k].u.copy_out(mem),
                v: self.b_recons[k].v.copy_out(mem),
            });
            self.stream_bits += stats.bits;
            self.rate.update(VopKind::B, stats.bits);
            out.push(EncodedVop {
                kind: VopKind::B,
                display_index: self.b_slots[k].display_index,
                qp,
                bytes,
                stats,
                recon: recon_copy,
            });
        }
        out
    }

    /// Encodes any still-queued B-frames as trailing P-VOPs and ends the
    /// stream. Call once after the last [`VideoObjectCoder::encode_frame`].
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` reserves room for bitstream
    /// finalization errors.
    pub fn flush<M: ParallelModel>(&mut self, mem: &mut M) -> Result<Vec<EncodedVop>, CodecError> {
        let mut out = Vec::with_capacity(self.queue_len);
        for q in 0..self.queue_len {
            // Move the queued frame into `cur` by swapping buffers.
            std::mem::swap(&mut self.cur, &mut self.b_slots[q].frame);
            if self.vol.binary_shape {
                std::mem::swap(&mut self.cur_alpha, &mut self.b_slots[q].alpha);
                self.cur_bbox = self.b_slots[q].bbox;
            }
            let idx = self.b_slots[q].display_index;
            out.push(self.encode_anchor_from_cur(mem, VopKind::P, idx));
        }
        self.queue_len = 0;
        Ok(out)
    }

    /// Encodes one frame as a P-VOP predicted from an external reference
    /// (the temporal-scalability enhancement path: `ext` is the base
    /// layer's latest anchor reconstruction).
    ///
    /// # Errors
    ///
    /// Same conditions as [`VideoObjectCoder::encode_frame`].
    pub fn encode_p_with_ref<M: ParallelModel>(
        &mut self,
        mem: &mut M,
        frame: &FrameView<'_>,
        alpha: Option<&[u8]>,
        ext: &TracedFrame,
    ) -> Result<EncodedVop, CodecError> {
        frame.validate()?;
        if self.vol.binary_shape != alpha.is_some() {
            return Err(CodecError::InvalidConfig(
                "alpha mask must be supplied exactly for binary-shape layers",
            ));
        }
        let idx = self.next_display;
        self.next_display += 1;
        let idx = self.display_offset + self.display_scale * idx;
        span!(mem, Phase::FrameIo, {
            if let Some(mask) = alpha {
                let bbox = mask_bbox(mask, self.vol.width, self.vol.height);
                self.cur
                    .copy_region_from_yuv(mem, frame.y, frame.u, frame.v, bbox);
            } else {
                self.cur.copy_from_yuv(
                    mem,
                    frame.y,
                    frame.u,
                    frame.v,
                    self.config.software_prefetch,
                );
            }
            if let (Some(plane), Some(mask)) = (self.cur_alpha.as_mut(), alpha) {
                let bbox = mask_bbox(mask, plane.width(), plane.height());
                if let Some((px, py, pw, ph)) = self.prev_alpha_bbox {
                    plane.clear_region(mem, px, py, pw, ph);
                }
                plane.copy_region_from(mem, mask, bbox);
                self.prev_alpha_bbox = Some(bbox);
                self.cur_bbox = bbox;
            }
        });
        let qp = self.rate.qp_for(VopKind::P);
        let header = VopHeader {
            kind: VopKind::P,
            display_index: idx as u32,
            qp,
            bbox: None,
            resync_interval: self.config.resync_mb_interval,
            slices: self.config.slices,
        };
        let pool = self.pool_handle();
        let window_start = *mem.counters();
        let obs_on = m4ps_obs::enabled();
        if obs_on {
            m4ps_obs::enter(Phase::VopEncode, window_start);
        }
        let (bytes, stats) = encode_vop(
            mem,
            header,
            &self.cur,
            self.cur_alpha.as_ref().map(|a| (a, self.cur_bbox)),
            Some(ext),
            None,
            &mut self.b_recon,
            &self.texture,
            &mut self.slice_scratch,
            &self.search,
            self.stream_base + self.stream_bits / 8,
            self.mb_cols,
            self.mb_rows,
            self.config.four_mv,
            &pool,
            self.sched,
        );
        if obs_on {
            m4ps_obs::exit(Phase::VopEncode, *mem.counters());
        }
        self.vop_window = self
            .vop_window
            .merged_with(&mem.counters().delta_since(&window_start));
        let recon_copy = self.keep_recon.then(|| ReconPlanes {
            y: self.b_recon.y.copy_out(mem),
            u: self.b_recon.u.copy_out(mem),
            v: self.b_recon.v.copy_out(mem),
        });
        self.stream_bits += stats.bits;
        self.rate.update(VopKind::P, stats.bits);
        Ok(EncodedVop {
            kind: VopKind::P,
            display_index: idx,
            qp,
            bytes,
            stats,
            recon: recon_copy,
        })
    }
}

/// Intra/inter decision bias (H.263 Annex: intra when block deviation is
/// clearly below the best SAD).
const INTRA_BIAS: u32 = 512;

/// Byte-aligned resynchronization-marker word.
pub(crate) const RESYNC_MARKER: u16 = 0x5a3c;

/// Macroblock-aligned bounding box of a raw segmentation mask. This is
/// *untraced*: the reference codec reads each VOP's geometry from its
/// pre-segmented input file header, so the box is workload metadata, not
/// codec memory traffic.
pub(crate) fn mask_bbox(mask: &[u8], width: usize, height: usize) -> Bbox {
    let (mut x0, mut y0, mut x1, mut y1) = (width, height, 0usize, 0usize);
    for y in 0..height {
        for x in 0..width {
            if mask[y * width + x] != 0 {
                x0 = x0.min(x);
                y0 = y0.min(y);
                x1 = x1.max(x + 1);
                y1 = y1.max(y + 1);
            }
        }
    }
    if x0 >= x1 {
        return (0, 0, 16, 16); // empty mask: one transparent BAB
    }
    let ax0 = x0 / 16 * 16;
    let ay0 = y0 / 16 * 16;
    let ax1 = x1.div_ceil(16) * 16;
    let ay1 = y1.div_ceil(16) * 16;
    (ax0, ay0, ax1.min(width) - ax0, ay1.min(height) - ay0)
}

/// Fills one macroblock of `recon` with mid-grey (deterministic extended
/// padding — keeps encoder and decoder references bit-identical around
/// and inside transparent regions).
pub(crate) fn fill_grey_mb<M: MemModel, F: FrameSink>(
    mem: &mut M,
    recon: &mut F,
    mbx: usize,
    mby: usize,
) {
    let (ry, ru, rv) = recon.planes_mut();
    // Luma rows are consecutive: one rectangular store. The chroma loop
    // interleaves the U and V planes and must keep that charge order.
    ry.store_rect(
        mem,
        (mbx * 16) as isize,
        (mby * 16) as isize,
        16,
        &[128u8; 256],
    );
    let grey8 = [128u8; 8];
    for r in 0..8 {
        ru.store_row(mem, (mbx * 8) as isize, (mby * 8 + r) as isize, &grey8);
        rv.store_row(mem, (mbx * 8) as isize, (mby * 8 + r) as isize, &grey8);
    }
}

/// Extends grey fill to a ring of macroblocks around the bounding box so
/// motion search windows that spill past the box read deterministic data.
pub(crate) fn fill_bbox_ring<M: MemModel, F: FrameSink>(
    mem: &mut M,
    recon: &mut F,
    bbox: (usize, usize, usize, usize),
    mb_cols: usize,
    mb_rows: usize,
) {
    const RING_MBS: usize = 2;
    let (bx0, by0, bw, bh) = bbox;
    let mbx0 = (bx0 / 16).saturating_sub(RING_MBS);
    let mby0 = (by0 / 16).saturating_sub(RING_MBS);
    let mbx1 = ((bx0 + bw) / 16 + RING_MBS).min(mb_cols);
    let mby1 = ((by0 + bh) / 16 + RING_MBS).min(mb_rows);
    for mby in mby0..mby1 {
        for mbx in mbx0..mbx1 {
            let inside =
                mbx * 16 >= bx0 && mbx * 16 < bx0 + bw && mby * 16 >= by0 && mby * 16 < by0 + bh;
            if !inside {
                fill_grey_mb(mem, recon, mbx, mby);
            }
        }
    }
}

/// Simulated-address stride between the per-slice bitstream staging
/// buffers. Each slice charges its bitstream traffic to its own 64 KiB
/// window past the parent's write position, so the charge addresses are
/// a function of the slice index alone — never of which thread ran the
/// slice — keeping merged counters scheduling-independent.
pub(crate) const SLICE_CHARGE_SPAN: u64 = 64 * 1024;

/// Reusable per-slice coding state: the texture pipeline's traced
/// scratch buffers and the slice's motion-vector predictors. Cloned
/// from the coder's template once per slice index and recycled every
/// VOP — texture clones keep their simulated base addresses, so reuse
/// charges exactly the traffic a fresh clone would.
#[derive(Debug)]
pub(crate) struct SliceScratch {
    pub(crate) texture: TextureCoder,
    pub(crate) fwd_pred: MvPredictor,
    pub(crate) bwd_pred: MvPredictor,
}

impl SliceScratch {
    pub(crate) fn new(template: &TextureCoder, mb_cols: usize) -> Self {
        SliceScratch {
            texture: template.clone(),
            fwd_pred: MvPredictor::new(mb_cols),
            bwd_pred: MvPredictor::new(mb_cols),
        }
    }
}

/// Encodes one VOP. Returns the byte payload and statistics.
///
/// When `header.slices > 1` the macroblock rows are partitioned with
/// [`partition_rows`] and the slices run as independent jobs on `pool`.
/// Each job encodes into its own [`BitWriter`] against a forked memory
/// model ([`ParallelModel::fork`]), reads the shared reference frames
/// by `&`, and writes the reconstruction *in place* through a disjoint
/// [`FrameViewMut`](crate::FrameViewMut) over its macroblock rows — no
/// frame clone, no stitch-back copy. Because the partition, per-slice
/// prediction resets and charge addresses depend only on the *slice
/// count* (a bitstream parameter), the output is bit-exact for any
/// thread count.
#[allow(clippy::too_many_arguments)]
pub(crate) fn encode_vop<M: ParallelModel>(
    mem: &mut M,
    mut header: VopHeader,
    cur: &TracedFrame,
    alpha: Option<(&TracedPlane, Bbox)>,
    fwd: Option<&TracedFrame>,
    bwd: Option<&TracedFrame>,
    recon: &mut TracedFrame,
    texture: &TextureCoder,
    scratch: &mut Vec<SliceScratch>,
    search: &MotionSearch,
    stream_base: u64,
    mb_cols: usize,
    mb_rows: usize,
    four_mv: bool,
    pool: &WorkerPool,
    sched: Scheduling,
) -> (Vec<u8>, VopStats) {
    let mut stats = VopStats::default();
    let mut w = BitWriter::new();
    let mut charge = StreamCharge::writer(stream_base);

    let bbox = alpha.map(|(_, b)| b);
    header.bbox = bbox;

    let (mbx_range, mby_range) = match bbox {
        Some((x0, y0, bw, bh)) => (x0 / 16..(x0 + bw) / 16, y0 / 16..(y0 + bh) / 16),
        None => (0..mb_cols, 0..mb_rows),
    };
    let slice_rows = partition_rows(mby_range.clone(), header.slices);
    header.slices = slice_rows.len();
    while scratch.len() < slice_rows.len() {
        scratch.push(SliceScratch::new(texture, mb_cols));
    }

    header.write(&mut w);
    if let Some((a, b)) = alpha {
        span!(mem, Phase::Shape, encode_alpha_plane(mem, a, b, &mut w));
    }

    if header.slices == 1 {
        // Unsliced: code straight into the header's writer (the legacy
        // single-threaded layout — no alignment between header and MBs).
        charge.charge_to(mem, w.bit_len());
        span!(
            mem,
            Phase::Slice,
            encode_slice(
                mem,
                &header,
                cur,
                alpha,
                fwd,
                bwd,
                recon,
                &mut scratch[0],
                search,
                mbx_range,
                mby_range,
                0,
                four_mv,
                &mut w,
                &mut charge,
                &mut stats,
            )
        );
        if let Some(bbox) = bbox {
            fill_bbox_ring(mem, recon, bbox, mb_cols, mb_rows);
        }
        w.stuff_to_alignment();
        charge.charge_to(mem, w.bit_len());
        stats.bits = w.bit_len();
        return (w.into_bytes(), stats);
    }

    // Sliced: the header segment ends byte-aligned so every slice
    // segment starts and ends on a byte boundary and concatenates
    // without bit-shifting.
    w.stuff_to_alignment();
    charge.charge_to(mem, w.bit_len());
    let header_bits = w.bit_len();

    let ctx = SliceCtx {
        hdr: header,
        cur,
        alpha,
        fwd,
        bwd,
        search,
        mbx_range: mbx_range.clone(),
        four_mv,
    };
    let views = recon.split_mb_rows_mut(&slice_rows);
    let chains = build_slice_chains(
        mem,
        &ctx,
        &slice_rows,
        views,
        scratch,
        mby_range.start,
        stream_base,
        sched,
        None,
    );
    let slots = run_slice_chains(pool, &ctx, chains);

    let mut bytes = w.into_bytes();
    for slot in slots {
        let (sbytes, sstats, smem) = slot
            .into_inner()
            .expect("slice slot lock")
            .expect("scope waits for every slice chain");
        let child_total = *smem.counters();
        mem.absorb(smem);
        // Keep the caller's open phase from double-counting the jump
        // `absorb` just folded in (the slices' own domain spans carry
        // those counters, phase by phase).
        m4ps_obs::absorbed(&child_total);
        stats.merge(&sstats);
        bytes.extend_from_slice(&sbytes);
    }
    stats.bits += header_bits;
    if let Some(bbox) = bbox {
        fill_bbox_ring(mem, recon, bbox, mb_cols, mb_rows);
    }
    (bytes, stats)
}

/// Read-shared context for one VOP's slice tasks.
struct SliceCtx<'a> {
    hdr: VopHeader,
    cur: &'a TracedFrame,
    alpha: Option<(&'a TracedPlane, Bbox)>,
    fwd: Option<&'a TracedFrame>,
    bwd: Option<&'a TracedFrame>,
    search: &'a MotionSearch,
    mbx_range: Range<usize>,
    four_mv: bool,
}

/// Everything a slice's row chain carries from one task to the next:
/// the forked counter stream, the slice's writer and charge window,
/// its reconstruction band and recycled scratch, and the row cursor.
/// Moving the whole state along the chain is what pins determinism —
/// each fork sees exactly the access sequence the coarse slice job
/// produced, just cut into one task per `grain` rows.
struct SliceChain<'a, M> {
    smem: M,
    view: FrameViewMut<'a>,
    scratch: &'a mut SliceScratch,
    w: BitWriter,
    charge: StreamCharge,
    stats: VopStats,
    slice_index: usize,
    rows: Range<usize>,
    next_row: usize,
    first_mb: usize,
    mb_counter: usize,
    grain: usize,
}

/// A finished slice: bitstream segment, stats, forked model to absorb.
type SliceOut<M> = (Vec<u8>, VopStats, M);

/// Builds the per-slice chain states for one VOP. Forks happen here,
/// sequentially on the coordinator, so every slice starts from an
/// identical memory-model snapshot regardless of scheduling.
///
/// `inline_io` carries the VOP's header writer and charge state into a
/// *single-slice* chain (the pipelined B-drain's unsliced case, where
/// macroblock bits chain directly off the header with no alignment);
/// sliced VOPs pass `None` and each slice gets a fresh byte-aligned
/// segment with its own charge window.
#[allow(clippy::too_many_arguments)]
fn build_slice_chains<'a, M: ParallelModel>(
    mem: &mut M,
    ctx: &SliceCtx<'a>,
    slice_rows: &[Range<usize>],
    views: Vec<FrameViewMut<'a>>,
    scratch: &'a mut [SliceScratch],
    mby_start: usize,
    stream_base: u64,
    sched: Scheduling,
    mut inline_io: Option<(BitWriter, StreamCharge)>,
) -> Vec<SliceChain<'a, M>> {
    debug_assert!(inline_io.is_none() || slice_rows.len() == 1);
    let grain = sched.grain();
    slice_rows
        .iter()
        .cloned()
        .zip(views)
        .zip(scratch.iter_mut())
        .enumerate()
        .map(|(s, ((rows, view), sc))| {
            let first_mb = (rows.start - mby_start) * ctx.mbx_range.len();
            let cap = rows.len() * ctx.mbx_range.len() * 32 + 64;
            let (w, charge) = inline_io.take().unwrap_or_else(|| {
                (
                    BitWriter::with_capacity(cap),
                    StreamCharge::writer(stream_base + (s as u64 + 1) * SLICE_CHARGE_SPAN),
                )
            });
            SliceChain {
                smem: mem.fork(),
                view,
                scratch: sc,
                w,
                charge,
                stats: VopStats::default(),
                slice_index: s,
                next_row: rows.start,
                first_mb,
                mb_counter: first_mb,
                rows,
                grain,
            }
        })
        .collect()
}

/// Spawns every chain's first task into one pool scope and returns the
/// per-slice result slots (in slice order) once all chains finished.
fn run_slice_chains<'a, M: ParallelModel + 'a>(
    pool: &WorkerPool,
    ctx: &SliceCtx<'a>,
    mut chains: Vec<SliceChain<'a, M>>,
) -> Vec<Mutex<Option<SliceOut<M>>>> {
    let slots: Vec<Mutex<Option<SliceOut<M>>>> = chains.iter().map(|_| Mutex::new(None)).collect();
    let session = m4ps_obs::current();
    pool.scope(session.as_ref(), |scope| {
        for (chain, slot) in chains.drain(..).zip(slots.iter()) {
            scope.spawn(move |s| slice_chain_step(chain, ctx, slot, s));
        }
    });
    slots
}

/// One task of a slice's row chain: encodes up to `grain` macroblock
/// rows, then either spawns the continuation (the wavefront "row N+1
/// ready" edge) or finalizes the slice into its result slot.
fn slice_chain_step<'s, M: ParallelModel + 's>(
    mut st: SliceChain<'s, M>,
    ctx: &'s SliceCtx<'s>,
    slot: &'s Mutex<Option<SliceOut<M>>>,
    scope: &Scope<'s>,
) {
    // A *domain* span: this task charges the forked stream `st.smem`,
    // not the caller's model, so its delta must not be subtracted from
    // the lexical parent phase (the coordinator accounts for it via
    // `absorbed` instead). Spans are per task, so each worker's span
    // stack stays balanced; the per-pair deltas sum to the fork total.
    let obs_on = m4ps_obs::enabled();
    if obs_on {
        m4ps_obs::enter_domain(Phase::Slice, *st.smem.counters());
    }
    if st.next_row == st.rows.start {
        if st.slice_index > 0 {
            // Slice header: the resync word, the index of the slice's
            // first macroblock, and the quantizer.
            let before = st.w.bit_len();
            st.w.put_bits(u32::from(RESYNC_MARKER), 16);
            put_ue(&mut st.w, st.first_mb as u32);
            st.w.put_bits(u32::from(ctx.hdr.qp), 5);
            m4ps_obs::counter_add(
                MetricId::ResyncMarkerBytes,
                (st.w.bit_len() - before).div_ceil(8),
            );
        }
        // Recycled predictors start from reset — the same state a
        // fresh `MvPredictor::new` carries.
        st.scratch.fwd_pred.reset();
        st.scratch.bwd_pred.reset();
    }
    let stop = st.next_row.saturating_add(st.grain).min(st.rows.end);
    while st.next_row < stop {
        encode_slice_row(
            &mut st.smem,
            &ctx.hdr,
            ctx.cur,
            ctx.alpha,
            ctx.fwd,
            ctx.bwd,
            &mut st.view,
            st.scratch,
            ctx.search,
            ctx.mbx_range.clone(),
            st.next_row,
            st.first_mb,
            &mut st.mb_counter,
            ctx.four_mv,
            &mut st.w,
            &mut st.charge,
            &mut st.stats,
        );
        st.next_row += 1;
    }
    if st.next_row < st.rows.end {
        if obs_on {
            m4ps_obs::exit_domain(Phase::Slice, *st.smem.counters());
        }
        scope.spawn(move |s| slice_chain_step(st, ctx, slot, s));
    } else {
        st.w.stuff_to_alignment();
        st.charge.charge_to(&mut st.smem, st.w.bit_len());
        st.stats.bits = st.w.bit_len();
        if obs_on {
            m4ps_obs::exit_domain(Phase::Slice, *st.smem.counters());
        }
        *slot.lock().expect("slice slot lock") = Some((st.w.into_bytes(), st.stats, st.smem));
    }
}

/// Encodes one slice — the macroblock rows `rows` of the VOP — into `w`.
///
/// `first_mb` is the VOP-wide index of the slice's first macroblock;
/// the in-slice counter starts there so resynchronization markers keep
/// their absolute indices, and the `> first_mb` guard keeps a marker off
/// the slice's first macroblock (the slice header already is one).
/// Prediction state starts from reset, exactly as after a resync marker,
/// so no prediction crosses a slice boundary.
#[allow(clippy::too_many_arguments)]
fn encode_slice<M: MemModel, F: FrameSink>(
    mem: &mut M,
    header: &VopHeader,
    cur: &TracedFrame,
    alpha: Option<(&TracedPlane, Bbox)>,
    fwd: Option<&TracedFrame>,
    bwd: Option<&TracedFrame>,
    recon: &mut F,
    scratch: &mut SliceScratch,
    search: &MotionSearch,
    mbx_range: Range<usize>,
    rows: Range<usize>,
    first_mb: usize,
    four_mv: bool,
    w: &mut BitWriter,
    charge: &mut StreamCharge,
    stats: &mut VopStats,
) {
    // Recycled predictors start from reset — the same state a fresh
    // `MvPredictor::new` carries, as pinned by the parallel tests.
    scratch.fwd_pred.reset();
    scratch.bwd_pred.reset();
    let mut mb_counter = first_mb;
    for mby in rows {
        encode_slice_row(
            mem,
            header,
            cur,
            alpha,
            fwd,
            bwd,
            recon,
            scratch,
            search,
            mbx_range.clone(),
            mby,
            first_mb,
            &mut mb_counter,
            four_mv,
            w,
            charge,
            stats,
        );
    }
}

/// Encodes one macroblock row of a slice. This is the wavefront task
/// granule: all state that crosses row boundaries within a slice (the
/// MV predictors' row window, the macroblock counter for resync
/// markers, the bit position) arrives via `scratch`/`mb_counter`/`w`,
/// carried along the slice's task chain.
#[allow(clippy::too_many_arguments)]
fn encode_slice_row<M: MemModel, F: FrameSink>(
    mem: &mut M,
    header: &VopHeader,
    cur: &TracedFrame,
    alpha: Option<(&TracedPlane, Bbox)>,
    fwd: Option<&TracedFrame>,
    bwd: Option<&TracedFrame>,
    recon: &mut F,
    scratch: &mut SliceScratch,
    search: &MotionSearch,
    mbx_range: Range<usize>,
    mby: usize,
    first_mb: usize,
    mb_counter: &mut usize,
    four_mv: bool,
    w: &mut BitWriter,
    charge: &mut StreamCharge,
    stats: &mut VopStats,
) {
    let qp = header.qp;
    let SliceScratch {
        texture,
        fwd_pred,
        bwd_pred,
    } = scratch;
    {
        fwd_pred.start_row();
        bwd_pred.start_row();
        let mut ips = IntraPredState::reset();
        for mbx in mbx_range.clone() {
            if let Some(interval) = header.resync_interval {
                if *mb_counter > first_mb && mb_counter.is_multiple_of(interval) {
                    // Resynchronization point: byte-aligned marker, the
                    // macroblock index, the quantizer, and a full
                    // prediction reset (no prediction crosses a marker).
                    let before = w.bit_len();
                    w.stuff_to_alignment();
                    w.put_bits(u32::from(RESYNC_MARKER), 16);
                    put_ue(w, *mb_counter as u32);
                    w.put_bits(u32::from(qp), 5);
                    m4ps_obs::counter_add(
                        MetricId::ResyncMarkerBytes,
                        (w.bit_len() - before).div_ceil(8),
                    );
                    fwd_pred.reset();
                    bwd_pred.reset();
                    ips = IntraPredState::reset();
                }
            }
            *mb_counter += 1;
            let transparent = match alpha {
                Some((a, _)) => span!(
                    mem,
                    Phase::Shape,
                    classify_bab(mem, a, mbx, mby) == BabClass::Transparent
                ),
                None => false,
            };
            if transparent {
                stats.transparent_mbs += 1;
                fill_grey_mb(mem, recon, mbx, mby);
                fwd_pred.commit(mbx, MotionVector::ZERO);
                bwd_pred.commit(mbx, MotionVector::ZERO);
                ips = IntraPredState::reset();
                continue;
            }
            texture.charge_mb_overhead(mem);
            match header.kind {
                VopKind::I => {
                    // One span covers the whole intra texture pipeline
                    // (DCT + quant + VLC + recon): intra MBs would cost
                    // 18+ span pairs each at block granularity.
                    span!(
                        mem,
                        Phase::DctQuant,
                        encode_intra_mb(mem, cur, recon, texture, qp, mbx, mby, &mut ips, w)
                    );
                    stats.intra_mbs += 1;
                    fwd_pred.commit(mbx, MotionVector::ZERO);
                }
                VopKind::P => {
                    let reference = fwd.expect("P-VOP requires a forward reference");
                    encode_p_mb(
                        mem, cur, reference, recon, texture, search, qp, mbx, mby, &mut ips,
                        fwd_pred, w, stats, four_mv,
                    );
                }
                VopKind::B => {
                    let f = fwd.expect("B-VOP requires a forward reference");
                    let b = bwd.expect("B-VOP requires a backward reference");
                    encode_b_mb(
                        mem, cur, f, b, recon, texture, search, qp, mbx, mby, fwd_pred, bwd_pred,
                        w, stats,
                    );
                    ips = IntraPredState::reset();
                }
            }
            charge.charge_to(mem, w.bit_len());
        }
    }
}

/// Encodes the six blocks of an intra macroblock.
#[allow(clippy::too_many_arguments)]
pub(crate) fn encode_intra_mb<M: MemModel, F: FrameSink>(
    mem: &mut M,
    cur: &TracedFrame,
    recon: &mut F,
    texture: &mut TextureCoder,
    qp: u8,
    mbx: usize,
    mby: usize,
    ips: &mut IntraPredState,
    w: &mut BitWriter,
) {
    let (ry, ru, rv) = recon.planes_mut();
    let px = (mbx * 16) as isize;
    let py = (mby * 16) as isize;
    for blk in 0..4 {
        let bx = px + ((blk % 2) * 8) as isize;
        let by = py + ((blk / 2) * 8) as isize;
        let samples = read_block(mem, &cur.y, bx, by);
        let qb = texture.transform_quant(mem, &samples, true, qp);
        texture.entropy_encode(mem, &qb, ips.y, w);
        ips.y = qb.qdc();
        let rec = texture.reconstruct(mem, &qb, qp);
        write_block(mem, ry, bx, by, &rec);
    }
    let cx = (mbx * 8) as isize;
    let cy = (mby * 8) as isize;
    for (plane_idx, (src, dst)) in [(&cur.u, ru), (&cur.v, rv)].into_iter().enumerate() {
        let samples = read_block(mem, src, cx, cy);
        let qb = texture.transform_quant(mem, &samples, true, qp);
        let pred = if plane_idx == 0 { ips.u } else { ips.v };
        texture.entropy_encode(mem, &qb, pred, w);
        if plane_idx == 0 {
            ips.u = qb.qdc();
        } else {
            ips.v = qb.qdc();
        }
        let rec = texture.reconstruct(mem, &qb, qp);
        write_block(mem, dst, cx, cy, &rec);
    }
}

/// Motion-compensates the full macroblock (luma 16×16 + both chroma 8×8)
/// from `reference` and returns the three prediction buffers.
fn predict_mb<M: MemModel>(
    mem: &mut M,
    reference: &TracedFrame,
    texture: &TextureCoder,
    mv: MotionVector,
    mbx: usize,
    mby: usize,
) -> ([u8; 256], [u8; 64], [u8; 64]) {
    span!(mem, Phase::McPredict, {
        let mut pred_y = [0u8; 256];
        motion_compensate_block(
            mem,
            &reference.y,
            mv,
            (mbx * 16) as isize,
            (mby * 16) as isize,
            16,
            16,
            &mut pred_y,
        );
        let cmv = chroma_mv(mv);
        let mut pred_u = [0u8; 64];
        let mut pred_v = [0u8; 64];
        motion_compensate_block(
            mem,
            &reference.u,
            cmv,
            (mbx * 8) as isize,
            (mby * 8) as isize,
            8,
            8,
            &mut pred_u,
        );
        motion_compensate_block(
            mem,
            &reference.v,
            cmv,
            (mbx * 8) as isize,
            (mby * 8) as isize,
            8,
            8,
            &mut pred_v,
        );
        texture.charge_pred_store(mem, 384);
        (pred_y, pred_u, pred_v)
    })
}

/// Builds the prediction buffers for a four-vector (advanced
/// prediction) macroblock: each luma quadrant is compensated with its
/// own vector; chroma uses the truncated average of the four.
pub(crate) fn predict_mb_4mv<M: MemModel>(
    mem: &mut M,
    reference: &TracedFrame,
    texture: &TextureCoder,
    mvs: &[MotionVector; 4],
    mbx: usize,
    mby: usize,
) -> ([u8; 256], [u8; 64], [u8; 64]) {
    span!(mem, Phase::McPredict, {
        let mut pred_y = [0u8; 256];
        for (blk, mv) in mvs.iter().enumerate() {
            let bx = (mbx * 16 + (blk % 2) * 8) as isize;
            let by = (mby * 16 + (blk / 2) * 8) as isize;
            let mut quad = [0u8; 64];
            motion_compensate_block(mem, &reference.y, *mv, bx, by, 8, 8, &mut quad);
            let (qx, qy) = ((blk % 2) * 8, (blk / 2) * 8);
            for r in 0..8 {
                for c in 0..8 {
                    pred_y[(qy + r) * 16 + qx + c] = quad[r * 8 + c];
                }
            }
        }
        let sum_x: i32 = mvs.iter().map(|v| i32::from(v.x)).sum();
        let sum_y: i32 = mvs.iter().map(|v| i32::from(v.y)).sum();
        let avg = MotionVector::new((sum_x / 4) as i16, (sum_y / 4) as i16);
        let cmv = chroma_mv(avg);
        let mut pred_u = [0u8; 64];
        let mut pred_v = [0u8; 64];
        motion_compensate_block(
            mem,
            &reference.u,
            cmv,
            (mbx * 8) as isize,
            (mby * 8) as isize,
            8,
            8,
            &mut pred_u,
        );
        motion_compensate_block(
            mem,
            &reference.v,
            cmv,
            (mbx * 8) as isize,
            (mby * 8) as isize,
            8,
            8,
            &mut pred_v,
        );
        texture.charge_pred_store(mem, 384);
        (pred_y, pred_u, pred_v)
    })
}

/// Quantizes the six residual blocks of an inter MB against the given
/// prediction; returns the per-block levels and the cbp mask.
#[allow(clippy::too_many_arguments)]
fn quantize_inter_mb<M: MemModel>(
    mem: &mut M,
    cur: &TracedFrame,
    pred_y: &[u8; 256],
    pred_u: &[u8; 64],
    pred_v: &[u8; 64],
    texture: &mut TextureCoder,
    qp: u8,
    mbx: usize,
    mby: usize,
) -> ([crate::texture::QuantizedBlock; 6], [bool; 6]) {
    span!(mem, Phase::DctQuant, {
        texture.charge_pred_load(mem, 384);
        let mut blocks = [crate::texture::QuantizedBlock {
            levels: m4ps_dsp::CoefBlock::default(),
            intra: false,
        }; 6];
        let mut cbp = [false; 6];
        for (blk, coded) in cbp.iter_mut().enumerate().take(4) {
            let bx = (mbx * 16 + (blk % 2) * 8) as isize;
            let by = (mby * 16 + (blk / 2) * 8) as isize;
            let samples = read_block(mem, &cur.y, bx, by);
            let res = residual(&samples, &pred_subblock(pred_y, blk));
            let qb = texture.transform_quant(mem, &res, false, qp);
            *coded = !qb.is_empty_inter();
            blocks[blk] = qb;
        }
        let cx = (mbx * 8) as isize;
        let cy = (mby * 8) as isize;
        for (i, (src, pred)) in [(&cur.u, pred_u), (&cur.v, pred_v)].into_iter().enumerate() {
            let samples = read_block(mem, src, cx, cy);
            let res = residual(&samples, pred);
            let qb = texture.transform_quant(mem, &res, false, qp);
            cbp[4 + i] = !qb.is_empty_inter();
            blocks[4 + i] = qb;
        }
        (blocks, cbp)
    })
}

/// Reconstructs an inter MB from levels + prediction and stores it.
#[allow(clippy::too_many_arguments)]
pub(crate) fn reconstruct_inter_mb<M: MemModel, F: FrameSink>(
    mem: &mut M,
    recon: &mut F,
    blocks: &[crate::texture::QuantizedBlock; 6],
    cbp: &[bool; 6],
    pred_y: &[u8; 256],
    pred_u: &[u8; 64],
    pred_v: &[u8; 64],
    texture: &mut TextureCoder,
    qp: u8,
    mbx: usize,
    mby: usize,
) {
    span!(mem, Phase::Recon, {
        texture.charge_pred_load(mem, 384);
        let (ry, ru, rv) = recon.planes_mut();
        for blk in 0..4 {
            let bx = (mbx * 16 + (blk % 2) * 8) as isize;
            let by = (mby * 16 + (blk / 2) * 8) as isize;
            let pred = pred_subblock(pred_y, blk);
            if cbp[blk] {
                let res = texture.reconstruct(mem, &blocks[blk], qp);
                write_block(mem, ry, bx, by, &add_prediction(&res, &pred));
            } else {
                // Uncoded block: the reconstruction is the prediction
                // itself (zero residual, clamp is the identity on u8).
                write_block_u8(mem, ry, bx, by, &pred);
            }
        }
        let cx = (mbx * 8) as isize;
        let cy = (mby * 8) as isize;
        for (i, (dst, pred)) in [(ru, pred_u), (rv, pred_v)].into_iter().enumerate() {
            if cbp[4 + i] {
                let res = texture.reconstruct(mem, &blocks[4 + i], qp);
                write_block(mem, dst, cx, cy, &add_prediction(&res, pred));
            } else {
                write_block_u8(mem, dst, cx, cy, pred);
            }
        }
    });
}

/// Sum of absolute deviations from the block mean (the H.263 intra/inter
/// decision statistic), with one traced pass over the macroblock.
fn mb_deviation<M: MemModel>(mem: &mut M, plane: &TracedPlane, px: isize, py: isize) -> u32 {
    plane.touch_rect_read(mem, px, py, 16, 16);
    mem.add_ops(2 * 256);
    let mut sum = 0u32;
    for r in 0..16 {
        let src = plane.raw_row(px, py + r, 16);
        sum += src.iter().map(|&v| u32::from(v)).sum::<u32>();
    }
    let mean = (sum / 256) as i32;
    let mut dev = 0u32;
    for r in 0..16 {
        let src = plane.raw_row(px, py + r, 16);
        for &v in src {
            dev += (i32::from(v) - mean).unsigned_abs();
        }
    }
    dev
}

/// Bit-cost bias an Inter4V macroblock must overcome (three extra
/// vector differences).
const FOUR_MV_BIAS: u32 = 300;

/// Encodes one macroblock of a P-VOP.
#[allow(clippy::too_many_arguments)]
fn encode_p_mb<M: MemModel, F: FrameSink>(
    mem: &mut M,
    cur: &TracedFrame,
    reference: &TracedFrame,
    recon: &mut F,
    texture: &mut TextureCoder,
    search: &MotionSearch,
    qp: u8,
    mbx: usize,
    mby: usize,
    ips: &mut IntraPredState,
    mv_pred: &mut MvPredictor,
    w: &mut BitWriter,
    stats: &mut VopStats,
    four_mv: bool,
) {
    let outcome = search.search(mem, &cur.y, &reference.y, mbx, mby);
    stats.candidates += u64::from(outcome.candidates);

    // Advanced prediction: refine each 8x8 quadrant around the MB winner.
    let mut mvs4 = [outcome.mv; 4];
    let mut sad4 = u32::MAX;
    if four_mv {
        let mut total = 0u32;
        for (blk, mv) in mvs4.iter_mut().enumerate() {
            let bx = (mbx * 16 + (blk % 2) * 8) as isize;
            let by = (mby * 16 + (blk / 2) * 8) as isize;
            let o = search.refine_block8(mem, &cur.y, &reference.y, bx, by, outcome.mv);
            stats.candidates += u64::from(o.candidates);
            *mv = o.mv;
            total = total.saturating_add(o.sad);
        }
        sad4 = total;
    }
    let use_4mv = four_mv && sad4.saturating_add(FOUR_MV_BIAS) < outcome.sad;
    let best_sad = if use_4mv { sad4 } else { outcome.sad };

    let deviation = mb_deviation(mem, &cur.y, (mbx * 16) as isize, (mby * 16) as isize);

    if deviation + INTRA_BIAS < best_sad {
        // Intra wins.
        w.put_bit(false); // coded
        put_ue(w, MacroblockKind::Intra.code());
        span!(
            mem,
            Phase::DctQuant,
            encode_intra_mb(mem, cur, recon, texture, qp, mbx, mby, ips, w)
        );
        stats.intra_mbs += 1;
        mv_pred.commit(mbx, MotionVector::ZERO);
        return;
    }
    *ips = IntraPredState::reset();

    if use_4mv {
        let (pred_y, pred_u, pred_v) = predict_mb_4mv(mem, reference, texture, &mvs4, mbx, mby);
        let (blocks, cbp) =
            quantize_inter_mb(mem, cur, &pred_y, &pred_u, &pred_v, texture, qp, mbx, mby);
        span!(mem, Phase::Vlc, {
            w.put_bit(false); // coded
            put_ue(w, MacroblockKind::Inter4V.code());
            // Block 0 predicted from the neighbour median, blocks 1-3 chained
            // from the previous block of the same macroblock.
            let mut pred = mv_pred.predict(mbx);
            for mv in &mvs4 {
                put_se(w, i32::from(mv.x) - i32::from(pred.x));
                put_se(w, i32::from(mv.y) - i32::from(pred.y));
                pred = *mv;
            }
            for &b in &cbp {
                w.put_bit(b);
            }
            for (i, qb) in blocks.iter().enumerate() {
                if cbp[i] {
                    texture.entropy_encode(mem, qb, 0, w);
                }
            }
        });
        reconstruct_inter_mb(
            mem, recon, &blocks, &cbp, &pred_y, &pred_u, &pred_v, texture, qp, mbx, mby,
        );
        stats.inter_mbs += 1;
        mv_pred.commit(mbx, MotionVector::median3(mvs4[0], mvs4[1], mvs4[2]));
        return;
    }

    let (pred_y, pred_u, pred_v) = predict_mb(mem, reference, texture, outcome.mv, mbx, mby);
    let (blocks, cbp) =
        quantize_inter_mb(mem, cur, &pred_y, &pred_u, &pred_v, texture, qp, mbx, mby);

    if outcome.mv == MotionVector::ZERO && cbp.iter().all(|&b| !b) {
        w.put_bit(true); // skipped
        reconstruct_inter_mb(
            mem, recon, &blocks, &cbp, &pred_y, &pred_u, &pred_v, texture, qp, mbx, mby,
        );
        stats.skipped_mbs += 1;
        mv_pred.commit(mbx, MotionVector::ZERO);
        return;
    }

    span!(mem, Phase::Vlc, {
        w.put_bit(false); // coded
        put_ue(w, MacroblockKind::Inter.code());
        let pred = mv_pred.predict(mbx);
        put_se(w, i32::from(outcome.mv.x) - i32::from(pred.x));
        put_se(w, i32::from(outcome.mv.y) - i32::from(pred.y));
        for &b in &cbp {
            w.put_bit(b);
        }
        for (i, qb) in blocks.iter().enumerate() {
            if cbp[i] {
                texture.entropy_encode(mem, qb, 0, w);
            }
        }
    });
    reconstruct_inter_mb(
        mem, recon, &blocks, &cbp, &pred_y, &pred_u, &pred_v, texture, qp, mbx, mby,
    );
    stats.inter_mbs += 1;
    mv_pred.commit(mbx, outcome.mv);
}

/// SAD of the current MB against an arbitrary prediction buffer (used to
/// evaluate the bidirectional mode), with traced current reads.
fn sad_against_pred<M: MemModel>(
    mem: &mut M,
    cur: &TracedPlane,
    pred: &[u8; 256],
    mbx: usize,
    mby: usize,
) -> u32 {
    let (px, py) = ((mbx * 16) as isize, (mby * 16) as isize);
    cur.touch_rect_read(mem, px, py, 16, 16);
    mem.add_ops(16 * 48);
    let mut acc = 0u32;
    for r in 0..16 {
        let c = cur.raw_row(px, py + r as isize, 16);
        for i in 0..16 {
            acc += u32::from(c[i].abs_diff(pred[r * 16 + i]));
        }
    }
    acc
}

/// Encodes one macroblock of a B-VOP.
#[allow(clippy::too_many_arguments)]
fn encode_b_mb<M: MemModel, F: FrameSink>(
    mem: &mut M,
    cur: &TracedFrame,
    fwd: &TracedFrame,
    bwd: &TracedFrame,
    recon: &mut F,
    texture: &mut TextureCoder,
    search: &MotionSearch,
    qp: u8,
    mbx: usize,
    mby: usize,
    fwd_pred: &mut MvPredictor,
    bwd_pred: &mut MvPredictor,
    w: &mut BitWriter,
    stats: &mut VopStats,
) {
    let of = search.search(mem, &cur.y, &fwd.y, mbx, mby);
    let ob = search.search(mem, &cur.y, &bwd.y, mbx, mby);
    stats.candidates += u64::from(of.candidates + ob.candidates);

    // Evaluate the interpolated mode with the two winners.
    let (fy, fu, fv) = predict_mb(mem, fwd, texture, of.mv, mbx, mby);
    let (by_, bu, bv) = predict_mb(mem, bwd, texture, ob.mv, mbx, mby);
    let mut bi_y = [0u8; 256];
    average_predictions(&fy, &by_, &mut bi_y);
    let sad_bi = sad_against_pred(mem, &cur.y, &bi_y, mbx, mby);

    let kind = if sad_bi <= of.sad.min(ob.sad) {
        MacroblockKind::Bidirectional
    } else if of.sad <= ob.sad {
        MacroblockKind::Forward
    } else {
        MacroblockKind::Backward
    };

    let (pred_y, pred_u, pred_v) = match kind {
        MacroblockKind::Forward => (fy, fu, fv),
        MacroblockKind::Backward => (by_, bu, bv),
        _ => {
            let mut u = [0u8; 64];
            let mut v = [0u8; 64];
            average_predictions(&fu, &bu, &mut u);
            average_predictions(&fv, &bv, &mut v);
            (bi_y, u, v)
        }
    };

    // One Vlc span wraps the macroblock's whole entropy section; the
    // nested DctQuant span inside `quantize_inter_mb` subtracts itself
    // back out (exclusive attribution), so no Vlc/DctQuant bleed-over.
    let (blocks, cbp) = span!(mem, Phase::Vlc, {
        put_ue(w, kind.code());
        if kind != MacroblockKind::Backward {
            let p = fwd_pred.predict(mbx);
            put_se(w, i32::from(of.mv.x) - i32::from(p.x));
            put_se(w, i32::from(of.mv.y) - i32::from(p.y));
        }
        if kind != MacroblockKind::Forward {
            let p = bwd_pred.predict(mbx);
            put_se(w, i32::from(ob.mv.x) - i32::from(p.x));
            put_se(w, i32::from(ob.mv.y) - i32::from(p.y));
        }
        fwd_pred.commit(
            mbx,
            if kind != MacroblockKind::Backward {
                of.mv
            } else {
                MotionVector::ZERO
            },
        );
        bwd_pred.commit(
            mbx,
            if kind != MacroblockKind::Forward {
                ob.mv
            } else {
                MotionVector::ZERO
            },
        );

        let (blocks, cbp) =
            quantize_inter_mb(mem, cur, &pred_y, &pred_u, &pred_v, texture, qp, mbx, mby);
        for &b in &cbp {
            w.put_bit(b);
        }
        for (i, qb) in blocks.iter().enumerate() {
            if cbp[i] {
                texture.entropy_encode(mem, qb, 0, w);
            }
        }
        (blocks, cbp)
    });
    reconstruct_inter_mb(
        mem, recon, &blocks, &cbp, &pred_y, &pred_u, &pred_v, texture, qp, mbx, mby,
    );
    stats.inter_mbs += 1;
}
