//! VOL and VOP headers with startcodes.
//!
//! A trimmed-down but structurally faithful version of the 14496-2
//! header syntax: a video-object-layer header carrying geometry and
//! shape/scalability flags, and a per-VOP header carrying coding type,
//! display index, quantizer and (for arbitrary-shape VOPs) the bounding
//! box of the shape.

use crate::error::CodecError;
use crate::types::VopKind;
use crate::vlc::{get_ue, put_ue};
use m4ps_bitstream::{BitReader, BitWriter, StartCode};

/// Video-object-layer header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VolHeader {
    /// Visual object id.
    pub vo_id: u32,
    /// Layer id within the object (0 = base layer).
    pub vol_id: u32,
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// `true` for binary (arbitrary) shape, `false` for rectangular.
    pub binary_shape: bool,
    /// `true` when this layer is a (temporal) enhancement layer.
    pub enhancement: bool,
}

impl VolHeader {
    /// Writes the header (with its startcode) to `w`.
    pub fn write(&self, w: &mut BitWriter) {
        w.put_start_code(StartCode::VideoObjectLayer);
        put_ue(w, self.vo_id);
        put_ue(w, self.vol_id);
        put_ue(w, self.width as u32);
        put_ue(w, self.height as u32);
        w.put_bit(self.binary_shape);
        w.put_bit(self.enhancement);
    }

    /// Reads a header, scanning forward to its startcode.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on missing startcode or truncation.
    pub fn read(r: &mut BitReader<'_>) -> Result<VolHeader, CodecError> {
        let code = r.next_start_code()?;
        if code != StartCode::VideoObjectLayer.value() {
            return Err(CodecError::Bitstream(
                m4ps_bitstream::BitstreamError::StartCodeMismatch {
                    expected: StartCode::VideoObjectLayer.value(),
                    found: code,
                },
            ));
        }
        Self::parse_fields(r)
    }

    /// Parses the header fields following an already-consumed startcode.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncation or illegal field values.
    pub fn parse_fields(r: &mut BitReader<'_>) -> Result<VolHeader, CodecError> {
        let vo_id = get_ue(r)?;
        let vol_id = get_ue(r)?;
        let width = get_ue(r)? as usize;
        let height = get_ue(r)? as usize;
        if width == 0 || height == 0 || !width.is_multiple_of(2) || !height.is_multiple_of(2) {
            return Err(CodecError::InvalidStream("illegal VOL dimensions"));
        }
        let binary_shape = r.get_bit()?;
        let enhancement = r.get_bit()?;
        Ok(VolHeader {
            vo_id,
            vol_id,
            width,
            height,
            binary_shape,
            enhancement,
        })
    }
}

/// Per-VOP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VopHeader {
    /// Coding type (I/P/B).
    pub kind: VopKind,
    /// Display (temporal) index of this VOP.
    pub display_index: u32,
    /// Quantizer parameter used for this VOP.
    pub qp: u8,
    /// Bounding box `(x0, y0, w, h)` in macroblock-aligned pixels; only
    /// present for binary-shape layers.
    pub bbox: Option<(usize, usize, usize, usize)>,
    /// Resynchronization-marker interval in macroblocks (error
    /// resilience); `None` = no markers.
    pub resync_interval: Option<usize>,
    /// Number of macroblock-row slices this VOP is partitioned into
    /// (1 = unsliced). Each slice after the first opens with a
    /// byte-aligned marker carrying its first macroblock index, and no
    /// prediction crosses a slice boundary.
    pub slices: usize,
}

impl VopHeader {
    /// Writes the header (with its startcode) to `w`.
    ///
    /// # Panics
    ///
    /// Panics if `qp` is outside `1..=31` or a bounding box is not
    /// macroblock aligned.
    pub fn write(&self, w: &mut BitWriter) {
        assert!((1..=31).contains(&self.qp));
        w.put_start_code(StartCode::VideoObjectPlane);
        w.put_bits(self.kind.code(), 2);
        put_ue(w, self.display_index);
        w.put_bits(u32::from(self.qp), 5);
        match self.bbox {
            None => w.put_bit(false),
            Some((x0, y0, bw, bh)) => {
                assert!(
                    x0 % 16 == 0 && y0 % 16 == 0 && bw % 16 == 0 && bh % 16 == 0,
                    "bbox must be macroblock aligned"
                );
                w.put_bit(true);
                put_ue(w, (x0 / 16) as u32);
                put_ue(w, (y0 / 16) as u32);
                put_ue(w, (bw / 16) as u32);
                put_ue(w, (bh / 16) as u32);
            }
        }
        put_ue(w, self.resync_interval.unwrap_or(0) as u32);
        put_ue(w, self.slices.saturating_sub(1) as u32);
    }

    /// Reads a header, scanning forward to its startcode.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on missing startcode, truncation, or
    /// illegal field values.
    pub fn read(r: &mut BitReader<'_>) -> Result<VopHeader, CodecError> {
        let code = r.next_start_code()?;
        if code != StartCode::VideoObjectPlane.value() {
            return Err(CodecError::Bitstream(
                m4ps_bitstream::BitstreamError::StartCodeMismatch {
                    expected: StartCode::VideoObjectPlane.value(),
                    found: code,
                },
            ));
        }
        Self::parse_fields(r)
    }

    /// Parses the header fields following an already-consumed startcode.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncation or illegal field values.
    pub fn parse_fields(r: &mut BitReader<'_>) -> Result<VopHeader, CodecError> {
        let kind = VopKind::from_code(r.get_bits(2)?)
            .ok_or(CodecError::InvalidStream("illegal vop_coding_type"))?;
        let display_index = get_ue(r)?;
        let qp = r.get_bits(5)? as u8;
        if qp == 0 {
            return Err(CodecError::InvalidStream("vop_quant must be nonzero"));
        }
        let bbox = if r.get_bit()? {
            let x0 = get_ue(r)? as usize * 16;
            let y0 = get_ue(r)? as usize * 16;
            let bw = get_ue(r)? as usize * 16;
            let bh = get_ue(r)? as usize * 16;
            if bw == 0 || bh == 0 {
                return Err(CodecError::InvalidStream("empty shape bounding box"));
            }
            Some((x0, y0, bw, bh))
        } else {
            None
        };
        let resync = get_ue(r)? as usize;
        let slices = get_ue(r)? as usize + 1;
        if slices > 4096 {
            return Err(CodecError::InvalidStream("implausible slice count"));
        }
        Ok(VopHeader {
            kind,
            display_index,
            qp,
            bbox,
            resync_interval: (resync > 0).then_some(resync),
            slices,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vol_header_roundtrip() {
        let h = VolHeader {
            vo_id: 2,
            vol_id: 1,
            width: 720,
            height: 576,
            binary_shape: true,
            enhancement: false,
        };
        let mut w = BitWriter::new();
        h.write(&mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(VolHeader::read(&mut r).unwrap(), h);
    }

    #[test]
    fn vop_header_roundtrip_rectangular() {
        let h = VopHeader {
            kind: VopKind::P,
            display_index: 17,
            qp: 12,
            bbox: None,
            resync_interval: Some(22),
            slices: 1,
        };
        let mut w = BitWriter::new();
        w.put_bits(0x5a, 8); // arbitrary preceding payload
        h.write(&mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        r.get_bits(8).unwrap();
        assert_eq!(VopHeader::read(&mut r).unwrap(), h);
    }

    #[test]
    fn vop_header_roundtrip_with_bbox() {
        let h = VopHeader {
            kind: VopKind::B,
            display_index: 3,
            qp: 31,
            bbox: Some((32, 48, 160, 96)),
            resync_interval: None,
            slices: 3,
        };
        let mut w = BitWriter::new();
        h.write(&mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(VopHeader::read(&mut r).unwrap(), h);
    }

    #[test]
    fn zero_qp_is_rejected_on_read() {
        let mut w = BitWriter::new();
        w.put_start_code(StartCode::VideoObjectPlane);
        w.put_bits(VopKind::I.code(), 2);
        put_ue(&mut w, 0);
        w.put_bits(0, 5); // qp = 0: illegal
        w.put_bit(false);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert!(VopHeader::read(&mut r).is_err());
    }

    #[test]
    #[should_panic(expected = "macroblock aligned")]
    fn unaligned_bbox_panics_on_write() {
        let h = VopHeader {
            kind: VopKind::I,
            display_index: 0,
            qp: 8,
            bbox: Some((8, 0, 32, 32)),
            resync_interval: None,
            slices: 1,
        };
        let mut w = BitWriter::new();
        h.write(&mut w);
    }

    #[test]
    fn odd_vol_dimensions_rejected() {
        let mut w = BitWriter::new();
        w.put_start_code(StartCode::VideoObjectLayer);
        put_ue(&mut w, 0);
        put_ue(&mut w, 0);
        put_ue(&mut w, 721);
        put_ue(&mut w, 576);
        w.put_bit(false);
        w.put_bit(false);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert!(VolHeader::read(&mut r).is_err());
    }
}
