//! Texture coding pipeline: DCT → quantization → zigzag → run-level
//! entropy coding, plus the shared reconstruction path.
//!
//! The pipeline stages communicate through small traced scratch buffers,
//! mirroring the MoMuSys structure the paper credits for locality:
//! "different stages of the application's pipeline process the same data
//! resident in L1 cache".

use crate::error::CodecError;
use crate::vlc::{get_se, get_ue, put_se, put_ue};
use m4ps_bitstream::{BitReader, BitWriter};
use m4ps_dsp::{
    forward_dct, inter_zero_bound, inverse_dct, scan_zigzag, unscan_zigzag, Block, CoefBlock,
    DCT_OPS, QUANT_OPS,
};
use m4ps_memsim::{AddressSpace, MemModel, SimBuf};

/// Quantized levels of one 8×8 block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantizedBlock {
    /// Quantized coefficient levels in row-major order.
    pub levels: CoefBlock,
    /// `true` when quantized as intra.
    pub intra: bool,
}

impl QuantizedBlock {
    /// Quantized DC level (meaningful for intra blocks).
    pub fn qdc(&self) -> i16 {
        self.levels.data[0]
    }

    /// `true` when an inter block has no level to transmit.
    pub fn is_empty_inter(&self) -> bool {
        !self.intra && self.levels.is_zero()
    }

    /// `true` when an intra block has no AC level to transmit.
    pub fn has_ac(&self) -> bool {
        self.levels.data[1..].iter().any(|&v| v != 0)
    }
}

/// Per-coefficient entropy-coding compute cost.
const VLC_OPS_PER_COEF: u64 = 3;

/// Texture pipeline state: the traced scratch buffers the stages share.
#[derive(Debug, Clone)]
pub struct TextureCoder {
    block_scratch: SimBuf<i16>,
    coef_scratch: SimBuf<i16>,
    qcoef_scratch: SimBuf<i16>,
    /// Motion-compensated prediction buffer (luma 256 + two chroma 64),
    /// written by MC and read back by the residual/reconstruction
    /// stages, as in the reference decoder's `GetPred`/`AddBlock` pair.
    pred_scratch: SimBuf<u8>,
    /// VLC code tables touched per coefficient event.
    vlc_tables: SimBuf<u8>,
    /// Hot working-stack region modelling the reference implementation's
    /// per-macroblock bookkeeping (function frames, MB struct arrays,
    /// spilled locals). The MoMuSys codec spends thousands of
    /// instructions per macroblock on such overhead; it is L1-resident
    /// and is precisely the kind of traffic that makes the measured
    /// codec look *less* memory-bound, as the paper observes.
    stack_scratch: SimBuf<u8>,
}

impl TextureCoder {
    /// Allocates the scratch buffers in `space`.
    pub fn new(space: &mut AddressSpace) -> Self {
        TextureCoder {
            block_scratch: SimBuf::zeroed(space, 64),
            coef_scratch: SimBuf::zeroed(space, 64),
            qcoef_scratch: SimBuf::zeroed(space, 64),
            pred_scratch: SimBuf::zeroed(space, 384),
            vlc_tables: SimBuf::zeroed(space, 2048),
            stack_scratch: SimBuf::zeroed(space, 4096),
        }
    }

    /// Charges one macroblock's worth of reference-implementation
    /// bookkeeping: ~4k hot stack/struct references and ~8k control
    /// instructions. Calibration: MoMuSys decodes ~30M instructions per
    /// PAL frame (~18k per macroblock) with a ~40% memory-operation
    /// share; the algorithmic work our codec performs accounts for only
    /// part of that, and this charge models the remainder (function
    /// frames, struct chasing, spilled locals) as L1-resident traffic.
    pub fn charge_mb_overhead<M: MemModel>(&self, mem: &mut M) {
        self.stack_scratch.touch_read(mem, 0, 2048);
        self.stack_scratch.touch_write(mem, 0, 2048);
        mem.add_ops(8000);
    }

    /// Charges the stores that fill `n` bytes of the prediction buffer.
    pub fn charge_pred_store<M: MemModel>(&self, mem: &mut M, n: usize) {
        self.pred_scratch.touch_write(mem, 0, n.min(384));
    }

    /// Charges the loads that consume `n` bytes of the prediction buffer.
    pub fn charge_pred_load<M: MemModel>(&self, mem: &mut M, n: usize) {
        self.pred_scratch.touch_read(mem, 0, n.min(384));
    }

    /// Charges the VLC table lookups for one coded block (two table
    /// touches per coefficient, as the reference table-driven decoder
    /// performs).
    fn charge_vlc_tables<M: MemModel>(&self, mem: &mut M) {
        self.vlc_tables.touch_read(mem, 0, 128);
    }

    /// Forward path: samples (pixels for intra, residues for inter) →
    /// quantized levels.
    pub fn transform_quant<M: MemModel>(
        &mut self,
        mem: &mut M,
        samples: &[i16; 64],
        intra: bool,
        qp: u8,
    ) -> QuantizedBlock {
        // Stage 1: block buffer fill.
        self.block_scratch.store_run(mem, 0, samples);
        // Stage 2: forward DCT.
        self.block_scratch.touch_read(mem, 0, 64);
        mem.add_ops(DCT_OPS);
        // Dead-zone early-out: when every residue is small enough that
        // the inter quantizer provably zeroes every coefficient (see
        // `inter_zero_bound` for the Parseval argument), skip the float
        // transform and quantization compute entirely. The traced
        // charges below are the same sequence the full path issues, so
        // simulated counters are bit-identical; only host time changes.
        if !intra {
            let max_abs = samples.iter().map(|&s| i32::from(s).abs()).max();
            if 8 * max_abs.unwrap_or(0) <= inter_zero_bound(qp) {
                let zero = CoefBlock::default();
                self.coef_scratch.store_run(mem, 0, &zero.data);
                self.coef_scratch.touch_read(mem, 0, 64);
                mem.add_ops(QUANT_OPS);
                self.qcoef_scratch.store_run(mem, 0, &zero.data);
                return QuantizedBlock {
                    levels: zero,
                    intra,
                };
            }
        }
        let coefs = forward_dct(&Block::from_samples(*samples));
        self.coef_scratch.store_run(mem, 0, &coefs.data);
        // Stage 3: quantization.
        self.coef_scratch.touch_read(mem, 0, 64);
        mem.add_ops(QUANT_OPS);
        let k = m4ps_dsp::kernels();
        let levels = if intra {
            (k.quant_intra)(&coefs, qp)
        } else {
            (k.quant_inter)(&coefs, qp)
        };
        self.qcoef_scratch.store_run(mem, 0, &levels.data);
        QuantizedBlock { levels, intra }
    }

    /// Entropy-encodes a quantized block. For intra blocks the DC level
    /// is coded predictively against `dc_pred`; AC (and all inter)
    /// levels are coded as zigzag run-level events.
    pub fn entropy_encode<M: MemModel>(
        &self,
        mem: &mut M,
        qb: &QuantizedBlock,
        dc_pred: i16,
        w: &mut BitWriter,
    ) {
        self.qcoef_scratch.touch_read(mem, 0, 64);
        self.charge_vlc_tables(mem);
        mem.add_ops(64 * VLC_OPS_PER_COEF);
        let scanned = scan_zigzag(&qb.levels);
        let start = if qb.intra {
            put_se(w, i32::from(qb.qdc()) - i32::from(dc_pred));
            1
        } else {
            0
        };
        let mut run = 0u32;
        for &level in &scanned[start..] {
            if level == 0 {
                run += 1;
            } else {
                w.put_bit(true); // another event follows
                put_ue(w, run);
                put_se(w, i32::from(level));
                run = 0;
            }
        }
        w.put_bit(false); // end of block
    }

    /// Entropy-decodes a quantized block (inverse of
    /// [`TextureCoder::entropy_encode`]).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncated or corrupt input.
    pub fn entropy_decode<M: MemModel>(
        &mut self,
        mem: &mut M,
        intra: bool,
        dc_pred: i16,
        r: &mut BitReader<'_>,
    ) -> Result<QuantizedBlock, CodecError> {
        let mut scanned = [0i16; 64];
        let start = if intra {
            let diff = get_se(r)?;
            scanned[0] =
                (i32::from(dc_pred) + diff).clamp(i32::from(i16::MIN), i32::from(i16::MAX)) as i16;
            1
        } else {
            0
        };
        let mut pos = start;
        while r.get_bit().map_err(CodecError::from)? {
            let run = get_ue(r)? as usize;
            let level = get_se(r)?;
            if level == 0 {
                return Err(CodecError::InvalidStream("zero level in run-level event"));
            }
            pos += run;
            if pos >= 64 {
                return Err(CodecError::InvalidStream("coefficient index overflow"));
            }
            scanned[pos] = level.clamp(-2048, 2047) as i16;
            pos += 1;
        }
        let levels = unscan_zigzag(&scanned);
        self.charge_vlc_tables(mem);
        mem.add_ops(64 * VLC_OPS_PER_COEF);
        self.qcoef_scratch.store_run(mem, 0, &levels.data);
        Ok(QuantizedBlock { levels, intra })
    }

    /// Shared reconstruction: levels → spatial samples (pixels for
    /// intra, residues for inter). Used identically by the encoder's
    /// local decode loop and the decoder, guaranteeing drift-free
    /// prediction.
    pub fn reconstruct<M: MemModel>(
        &mut self,
        mem: &mut M,
        qb: &QuantizedBlock,
        qp: u8,
    ) -> [i16; 64] {
        // Dequantization.
        self.qcoef_scratch.touch_read(mem, 0, 64);
        mem.add_ops(QUANT_OPS);
        let k = m4ps_dsp::kernels();
        let coefs = if qb.intra {
            (k.dequant_intra)(&qb.levels, qp)
        } else {
            (k.dequant_inter)(&qb.levels, qp)
        };
        self.coef_scratch.store_run(mem, 0, &coefs.data);
        // Inverse DCT.
        self.coef_scratch.touch_read(mem, 0, 64);
        mem.add_ops(DCT_OPS);
        let block = inverse_dct(&coefs);
        self.block_scratch.store_run(mem, 0, &block.data);
        block.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m4ps_memsim::NullModel;

    fn setup() -> (TextureCoder, NullModel) {
        let mut space = AddressSpace::new();
        (TextureCoder::new(&mut space), NullModel::new())
    }

    fn gradient_pixels() -> [i16; 64] {
        let mut s = [0i16; 64];
        for (i, v) in s.iter_mut().enumerate() {
            *v = (((i % 8) * 20 + (i / 8) * 10) % 256) as i16;
        }
        s
    }

    #[test]
    fn intra_block_roundtrips_through_bitstream() {
        let (mut tc, mut mem) = setup();
        let samples = gradient_pixels();
        let qb = tc.transform_quant(&mut mem, &samples, true, 4);
        let mut w = BitWriter::new();
        tc.entropy_encode(&mut mem, &qb, 128, &mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let decoded = tc.entropy_decode(&mut mem, true, 128, &mut r).unwrap();
        assert_eq!(decoded, qb);
    }

    #[test]
    fn inter_block_roundtrips_through_bitstream() {
        let (mut tc, mut mem) = setup();
        let mut residues = [0i16; 64];
        for (i, v) in residues.iter_mut().enumerate() {
            *v = ((i as i16 * 7) % 61) - 30;
        }
        let qb = tc.transform_quant(&mut mem, &residues, false, 6);
        let mut w = BitWriter::new();
        tc.entropy_encode(&mut mem, &qb, 0, &mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let decoded = tc.entropy_decode(&mut mem, false, 0, &mut r).unwrap();
        assert_eq!(decoded, qb);
    }

    #[test]
    fn reconstruction_error_is_bounded_by_quantizer() {
        let (mut tc, mut mem) = setup();
        let samples = gradient_pixels();
        for qp in [2u8, 8, 16, 31] {
            let qb = tc.transform_quant(&mut mem, &samples, true, qp);
            let rec = tc.reconstruct(&mut mem, &qb, qp);
            for i in 0..64 {
                let err = (i32::from(rec[i]) - i32::from(samples[i])).abs();
                // DCT error bound: quant error per coefficient ≤ 2qp+4,
                // spread over 64 samples; a loose but meaningful bound.
                assert!(err <= 3 * i32::from(qp) + 4, "qp {qp} idx {i} err {err}");
            }
        }
    }

    #[test]
    fn encoder_and_decoder_reconstructions_agree_exactly() {
        let (mut tc, mut mem) = setup();
        let samples = gradient_pixels();
        let qb = tc.transform_quant(&mut mem, &samples, true, 9);
        let enc_rec = tc.reconstruct(&mut mem, &qb, 9);
        let mut w = BitWriter::new();
        tc.entropy_encode(&mut mem, &qb, 0, &mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let decoded = tc.entropy_decode(&mut mem, true, 0, &mut r).unwrap();
        let dec_rec = tc.reconstruct(&mut mem, &decoded, 9);
        assert_eq!(enc_rec, dec_rec);
    }

    #[test]
    fn zero_residue_inter_block_is_empty() {
        let (mut tc, mut mem) = setup();
        let qb = tc.transform_quant(&mut mem, &[0i16; 64], false, 8);
        assert!(qb.is_empty_inter());
        assert!(!qb.has_ac());
        let textured = tc.transform_quant(&mut mem, &gradient_pixels(), true, 2);
        assert!(textured.has_ac());
        // And codes to a single terminator bit.
        let mut w = BitWriter::new();
        tc.entropy_encode(&mut mem, &qb, 0, &mut w);
        assert_eq!(w.bit_len(), 1);
    }

    #[test]
    fn dc_prediction_shrinks_intra_code() {
        let (mut tc, mut mem) = setup();
        let samples = [200i16; 64];
        let qb = tc.transform_quant(&mut mem, &samples, true, 4);
        let mut w_good = BitWriter::new();
        tc.entropy_encode(&mut mem, &qb, qb.qdc(), &mut w_good);
        let mut w_bad = BitWriter::new();
        tc.entropy_encode(&mut mem, &qb, 0, &mut w_bad);
        assert!(w_good.bit_len() < w_bad.bit_len());
    }

    #[test]
    fn corrupt_run_overflow_is_an_error() {
        let (mut tc, mut mem) = setup();
        let mut w = BitWriter::new();
        // intra dc diff = 0, then an event with run = 70 (overflow).
        put_se(&mut w, 0);
        w.put_bit(true);
        put_ue(&mut w, 70);
        put_se(&mut w, 1);
        w.put_bit(false);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert!(tc.entropy_decode(&mut mem, true, 0, &mut r).is_err());
    }

    #[test]
    fn scratch_traffic_is_charged() {
        use m4ps_memsim::{Hierarchy, MachineSpec};
        let mut space = AddressSpace::new();
        let mut tc = TextureCoder::new(&mut space);
        let mut mem = Hierarchy::new(MachineSpec::o2());
        let qb = tc.transform_quant(&mut mem, &gradient_pixels(), true, 8);
        let _ = tc.reconstruct(&mut mem, &qb, 8);
        let c = mem.counters();
        assert!(c.loads > 0 && c.stores > 0);
        assert!(c.compute_ops >= 2 * DCT_OPS + 2 * QUANT_OPS);
        // Scratch buffers are tiny and hot: after the first touches,
        // misses must be far below references.
        assert!(c.l1_misses * 20 < c.memory_refs());
    }
}
