//! Encoder configuration.

use crate::error::CodecError;

/// Motion-search algorithm.
///
/// The paper's description ("MPEG-4 performs this search sequentially
/// over restricted windows inside the image, with an offset between
/// searches of just one pixel") is exhaustive full search, the MoMuSys
/// default. The fast strategies exist for the ablation benches that
/// quantify how much of the observed locality comes from the search
/// discipline itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchStrategy {
    /// Exhaustive scan of every integer-pel candidate in the window.
    FullSearch,
    /// Classic three-step (logarithmic) search.
    ThreeStep,
    /// Diamond search (large diamond until centered, then small).
    Diamond,
}

/// Group-of-pictures structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GopStructure {
    /// Distance between I-VOPs in display order (the GOP length).
    pub intra_period: usize,
    /// Number of B-VOPs between consecutive anchors.
    pub b_frames: usize,
}

impl GopStructure {
    /// The classic IBBP structure (two B-VOPs between anchors, I every
    /// 12 frames).
    pub fn ibbp() -> Self {
        GopStructure {
            intra_period: 12,
            b_frames: 2,
        }
    }

    /// IPPP… (no B-VOPs).
    pub fn ipp() -> Self {
        GopStructure {
            intra_period: 12,
            b_frames: 0,
        }
    }
}

/// Full encoder configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncoderConfig {
    /// GOP structure.
    pub gop: GopStructure,
    /// Integer-pel search range ±R around the predictor.
    pub search_range: i16,
    /// Search algorithm.
    pub search: SearchStrategy,
    /// Enable half-pel refinement around the integer-pel winner.
    pub half_pel: bool,
    /// Initial quantizer parameter (1..=31).
    pub initial_qp: u8,
    /// Target bitrate in bits/s (`None` = constant QP). The paper uses
    /// 38400.
    pub bitrate: Option<u32>,
    /// Frame rate in Hz (the paper uses 30).
    pub frame_rate: f64,
    /// Issue software prefetches in the streaming copy loops, mimicking
    /// the MIPSpro compiler's conservative insertion.
    pub software_prefetch: bool,
    /// Enable the advanced-prediction mode: four 8×8 motion vectors per
    /// macroblock where they beat the single 16×16 vector.
    pub four_mv: bool,
    /// Error resilience: insert a resynchronization marker every this
    /// many macroblocks (prediction state resets at each marker).
    pub resync_mb_interval: Option<usize>,
    /// Number of macroblock-row slices each VOP is partitioned into
    /// (1 = unsliced). Slices are independently decodable segments —
    /// prediction state resets at every slice boundary — and they are
    /// the unit of work for the parallel encoder. The slice count is an
    /// *encoding* parameter carried in the bitstream: it changes what
    /// is coded, while the thread count only changes who codes it, so
    /// output stays bit-exact for any thread count.
    pub slices: usize,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            gop: GopStructure::ibbp(),
            search_range: 8,
            search: SearchStrategy::FullSearch,
            half_pel: true,
            initial_qp: 8,
            bitrate: Some(38_400),
            frame_rate: 30.0,
            software_prefetch: true,
            four_mv: false,
            resync_mb_interval: None,
            slices: 1,
        }
    }
}

impl EncoderConfig {
    /// The configuration used for the paper-reproduction experiments
    /// (defaults; spelled out for discoverability).
    pub fn paper() -> Self {
        Self::default()
    }

    /// A cheap configuration for unit tests: small search range, IPP,
    /// constant QP.
    pub fn fast_test() -> Self {
        EncoderConfig {
            gop: GopStructure {
                intra_period: 8,
                b_frames: 0,
            },
            search_range: 4,
            search: SearchStrategy::Diamond,
            half_pel: false,
            initial_qp: 8,
            bitrate: None,
            frame_rate: 30.0,
            software_prefetch: false,
            four_mv: false,
            resync_mb_interval: None,
            slices: 1,
        }
    }

    /// Returns `self` with the VOP slice count set (builder style).
    #[must_use]
    pub fn with_slices(mut self, slices: usize) -> Self {
        self.slices = slices;
        self
    }

    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidConfig`] for out-of-range parameters.
    pub fn validate(&self) -> Result<(), CodecError> {
        if self.initial_qp == 0 || self.initial_qp > 31 {
            return Err(CodecError::InvalidConfig("initial_qp must be 1..=31"));
        }
        if self.search_range < 1 || self.search_range > 15 {
            return Err(CodecError::InvalidConfig("search_range must be 1..=15"));
        }
        if self.gop.intra_period == 0 {
            return Err(CodecError::InvalidConfig("intra_period must be >= 1"));
        }
        if self.gop.b_frames > 4 {
            return Err(CodecError::InvalidConfig("b_frames must be <= 4"));
        }
        if self.gop.b_frames + 1 > self.gop.intra_period {
            return Err(CodecError::InvalidConfig(
                "intra_period must exceed the B-run length",
            ));
        }
        if self.frame_rate.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(CodecError::InvalidConfig("frame_rate must be positive"));
        }
        if self.resync_mb_interval == Some(0) {
            return Err(CodecError::InvalidConfig(
                "resync_mb_interval must be at least 1",
            ));
        }
        if self.slices == 0 || self.slices > 64 {
            return Err(CodecError::InvalidConfig("slices must be 1..=64"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_match_paper() {
        let c = EncoderConfig::default();
        c.validate().unwrap();
        assert_eq!(c.bitrate, Some(38_400));
        assert_eq!(c.frame_rate, 30.0);
        assert_eq!(c.search, SearchStrategy::FullSearch);
        assert_eq!(c.gop.b_frames, 2);
        assert!(EncoderConfig::fast_test().validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = EncoderConfig {
            initial_qp: 0,
            ..EncoderConfig::default()
        };
        assert!(c.validate().is_err());
        c = EncoderConfig::default();
        c.initial_qp = 32;
        assert!(c.validate().is_err());
        c = EncoderConfig::default();
        c.search_range = 0;
        assert!(c.validate().is_err());
        c = EncoderConfig::default();
        c.search_range = 16;
        assert!(c.validate().is_err());
        c = EncoderConfig::default();
        c.gop.intra_period = 0;
        assert!(c.validate().is_err());
        c = EncoderConfig::default();
        c.gop.b_frames = 5;
        assert!(c.validate().is_err());
        c = EncoderConfig::default();
        c.gop.intra_period = 2;
        c.gop.b_frames = 2;
        assert!(c.validate().is_err());
        c = EncoderConfig::default();
        c.resync_mb_interval = Some(0);
        assert!(c.validate().is_err());
        c = EncoderConfig::default();
        c.slices = 0;
        assert!(c.validate().is_err());
        c = EncoderConfig::default();
        c.slices = 65;
        assert!(c.validate().is_err());
        assert!(EncoderConfig::default().with_slices(4).validate().is_ok());
    }
}
