//! Motion compensation: forming the prediction block from a reference
//! plane at half-pel precision.

use crate::plane::{TracedPlane, PAD};
use crate::types::MotionVector;
use m4ps_dsp::{HalfPel, INTERP_OPS_PER_PIXEL};
use m4ps_memsim::MemModel;

/// Fills `out` (row-major, `w × h`) with the motion-compensated
/// prediction for the block whose top-left is `(x, y)` in the current
/// frame, displaced by `mv` (half-pel units) into `reference`.
///
/// Reads the necessary reference rows through the memory model; the
/// reference plane's [`crate::PAD`]-pixel border must already be padded.
///
/// # Panics
///
/// Panics if the displaced block leaves the padded reference surface.
#[allow(clippy::too_many_arguments)]
pub fn motion_compensate_block<M: MemModel>(
    mem: &mut M,
    reference: &TracedPlane,
    mv: MotionVector,
    x: isize,
    y: isize,
    w: usize,
    h: usize,
    out: &mut [u8],
) {
    assert!(out.len() >= w * h);
    let (fx, fy) = mv.full_pel();
    let phase = HalfPel::from_mv(mv.x, mv.y);
    let sx = x + fx as isize;
    let sy = y + fy as isize;
    let need_right = matches!(phase, HalfPel::Horizontal | HalfPel::Diagonal);
    let need_below = matches!(phase, HalfPel::Vertical | HalfPel::Diagonal);
    let cols = w + usize::from(need_right);
    let rows = h + usize::from(need_below);

    // The compiler prefetches ahead of the interpolation loop.
    mem.prefetch_pair(reference.addr_of(sx, sy));

    // Charge the source window as one rectangular traced read (same
    // counters as per-row loads); the dispatched kernel then reads the
    // same `cols × rows` window straight off the untraced raw surface
    // (compute-then-charge), so the charge stream is identical on every
    // tier.
    debug_assert!(cols <= 17 && rows <= 17);
    reference.touch_rect_read(mem, sx, sy, cols, rows);
    mem.add_ops((w * h) as u64 * INTERP_OPS_PER_PIXEL);

    let (rdata, rstride) = reference.raw_surface();
    let p = PAD as isize;
    let (rx, ry) = ((sx + p) as usize, (sy + p) as usize);
    let k = m4ps_dsp::kernels();
    if phase == HalfPel::Full {
        // Full-pel prediction needs no interpolation neighbours: a
        // straight window copy.
        (k.copy_block)(rdata, rstride, rx, ry, w, h, out);
    } else {
        (k.interp)(rdata, rstride, rx, ry, phase, w, h, out);
    }
}

/// Averages two prediction blocks (bidirectional interpolation) with
/// MPEG rounding.
pub fn average_predictions(fwd: &[u8], bwd: &[u8], out: &mut [u8]) {
    assert_eq!(fwd.len(), bwd.len());
    assert!(out.len() >= fwd.len());
    (m4ps_dsp::kernels().avg)(fwd, bwd, &mut out[..fwd.len()]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use m4ps_memsim::{AddressSpace, NullModel};

    fn plane_with(
        space: &mut AddressSpace,
        mem: &mut NullModel,
        w: usize,
        h: usize,
        f: impl Fn(usize, usize) -> u8,
    ) -> TracedPlane {
        let mut p = TracedPlane::new(space, w, h);
        let mut data = vec![0u8; w * h];
        for y in 0..h {
            for x in 0..w {
                data[y * w + x] = f(x, y);
            }
        }
        p.copy_from(mem, &data, false);
        p.pad_borders(mem);
        p
    }

    #[test]
    fn zero_mv_full_pel_copies_source() {
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        let p = plane_with(&mut space, &mut mem, 48, 48, |x, y| (x * 3 + y) as u8);
        let mut out = vec![0u8; 256];
        motion_compensate_block(&mut mem, &p, MotionVector::ZERO, 16, 16, 16, 16, &mut out);
        for r in 0..16 {
            assert_eq!(&out[r * 16..][..16], p.raw_row(16, 16 + r as isize, 16));
        }
    }

    #[test]
    fn integer_mv_shifts_window() {
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        let p = plane_with(&mut space, &mut mem, 48, 48, |x, y| (x + 2 * y) as u8);
        let mut out = vec![0u8; 64];
        motion_compensate_block(
            &mut mem,
            &p,
            MotionVector::from_full_pel(3, -2),
            16,
            16,
            8,
            8,
            &mut out,
        );
        for r in 0..8 {
            assert_eq!(&out[r * 8..][..8], p.raw_row(19, 14 + r as isize, 8));
        }
    }

    #[test]
    fn half_pel_horizontal_averages() {
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        let p = plane_with(&mut space, &mut mem, 32, 32, |x, _| (x * 10) as u8);
        let mut out = vec![0u8; 16];
        motion_compensate_block(&mut mem, &p, MotionVector::new(1, 0), 4, 4, 4, 4, &mut out);
        // halfway between x*10 and (x+1)*10 = x*10+5
        assert_eq!(out[0], 45);
        assert_eq!(out[1], 55);
    }

    #[test]
    fn negative_mv_reads_padding_safely() {
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        let p = plane_with(&mut space, &mut mem, 32, 32, |x, y| (x + y) as u8);
        let mut out = vec![0u8; 256];
        // MB at the top-left corner, MV pointing fully into the pad.
        motion_compensate_block(
            &mut mem,
            &p,
            MotionVector::from_full_pel(-8, -8),
            0,
            0,
            16,
            16,
            &mut out,
        );
        // Top-left of the pad replicates pixel (0,0) = 0.
        assert_eq!(out[0], 0);
    }

    #[test]
    fn bidirectional_average_rounds_up() {
        let fwd = [10u8, 20, 255];
        let bwd = [11u8, 20, 0];
        let mut out = [0u8; 3];
        average_predictions(&fwd, &bwd, &mut out);
        assert_eq!(out, [11, 20, 128]);
    }

    #[test]
    fn mc_issues_traced_reads() {
        use m4ps_memsim::{Hierarchy, MachineSpec, MemModel};
        let mut space = AddressSpace::new();
        let mut null = NullModel::new();
        let p = plane_with(&mut space, &mut null, 64, 64, |x, _| x as u8);
        let mut mem = Hierarchy::new(MachineSpec::o2());
        let mut out = vec![0u8; 256];
        motion_compensate_block(
            &mut mem,
            &p,
            MotionVector::new(1, 1),
            16,
            16,
            16,
            16,
            &mut out,
        );
        let c = mem.counters();
        assert_eq!(c.loads, 17 * 17); // diagonal phase window
        assert!(c.compute_ops >= 256 * INTERP_OPS_PER_PIXEL);
    }
}
