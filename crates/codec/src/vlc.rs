//! Variable-length code primitives.
//!
//! The reference codec uses per-syntax Huffman tables; we use
//! exp-Golomb codes, which have the same structure (short codes for
//! common small values, unbounded range, no escape mechanism needed) and
//! identical memory behaviour (sequential bit I/O).

use crate::error::CodecError;
use m4ps_bitstream::{BitReader, BitWriter};

/// Writes `value` as an unsigned exp-Golomb code.
pub fn put_ue(w: &mut BitWriter, value: u32) {
    let v = value as u64 + 1;
    let bits = 64 - v.leading_zeros(); // position of the MSB
    for _ in 0..bits - 1 {
        w.put_bit(false);
    }
    for shift in (0..bits).rev() {
        w.put_bit((v >> shift) & 1 != 0);
    }
}

/// Reads an unsigned exp-Golomb code.
///
/// # Errors
///
/// Returns a bitstream error on truncated input or a code longer than
/// 32 leading zeros (corrupt stream).
pub fn get_ue(r: &mut BitReader<'_>) -> Result<u32, CodecError> {
    let mut zeros = 0u32;
    while !r.get_bit()? {
        zeros += 1;
        if zeros > 32 {
            return Err(CodecError::InvalidStream("exp-Golomb prefix too long"));
        }
    }
    let mut v: u64 = 1;
    for _ in 0..zeros {
        v = (v << 1) | u64::from(r.get_bit()?);
    }
    Ok((v - 1) as u32)
}

/// Writes `value` as a signed exp-Golomb code (0, 1, −1, 2, −2, …).
pub fn put_se(w: &mut BitWriter, value: i32) {
    let mapped = if value > 0 {
        (value as u32) * 2 - 1
    } else {
        (-value as u32) * 2
    };
    put_ue(w, mapped);
}

/// Reads a signed exp-Golomb code.
///
/// # Errors
///
/// Propagates [`get_ue`] errors.
pub fn get_se(r: &mut BitReader<'_>) -> Result<i32, CodecError> {
    let v = get_ue(r)?;
    if v % 2 == 1 {
        Ok(v.div_ceil(2) as i32)
    } else {
        Ok(-((v / 2) as i32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ue_small_values_are_short() {
        let mut w = BitWriter::new();
        put_ue(&mut w, 0);
        assert_eq!(w.bit_len(), 1);
        let mut w = BitWriter::new();
        put_ue(&mut w, 1);
        assert_eq!(w.bit_len(), 3);
        let mut w = BitWriter::new();
        put_ue(&mut w, 6);
        assert_eq!(w.bit_len(), 5);
    }

    #[test]
    fn ue_roundtrip() {
        let values = [0u32, 1, 2, 3, 7, 8, 100, 65_535, 1_000_000, u32::MAX - 1];
        let mut w = BitWriter::new();
        for &v in &values {
            put_ue(&mut w, v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(get_ue(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn se_roundtrip() {
        let values = [0i32, 1, -1, 2, -2, 17, -100, 40_000, -40_000];
        let mut w = BitWriter::new();
        for &v in &values {
            put_se(&mut w, v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(get_se(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn se_mapping_prefers_small_magnitudes() {
        let len = |v: i32| {
            let mut w = BitWriter::new();
            put_se(&mut w, v);
            w.bit_len()
        };
        assert_eq!(len(0), 1);
        assert!(len(1) <= len(2));
        assert!(len(-1) <= len(3));
        assert!(len(5) < len(50));
    }

    #[test]
    fn truncated_stream_errors() {
        // A long run of zeros with no terminator.
        let bytes = [0u8; 2];
        let mut r = BitReader::new(&bytes);
        assert!(get_ue(&mut r).is_err());
    }
}
