//! Binary shape coding: context-based arithmetic encoding (CAE) of
//! binary alpha blocks (BABs).
//!
//! Arbitrary-shaped VOPs carry a binary alpha plane. Per 16×16 BAB the
//! encoder transmits a class — all-transparent, all-opaque, or border —
//! and codes border BABs pixel-by-pixel with an adaptive arithmetic
//! coder whose context is a 7-pixel causal neighbourhood template
//! (2 pixels to the left, 5 in the row above), a direct simplification
//! of the 10-pixel intra-CAE template of ISO/IEC 14496-2 §6.3.7.

use crate::arith::{ArithDecoder, ArithEncoder, ContextModel};
use crate::error::CodecError;
use crate::plane::TracedPlane;
use crate::vlc::{get_ue, put_ue};
use m4ps_bitstream::{BitReader, BitWriter};
use m4ps_memsim::MemModel;

/// Classification of one 16×16 binary alpha block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BabClass {
    /// Every pixel transparent (no texture coded for this MB).
    Transparent,
    /// Every pixel opaque.
    Opaque,
    /// Mixed: pixels are CAE coded.
    Border,
}

impl BabClass {
    fn code(self) -> u32 {
        match self {
            BabClass::Transparent => 0,
            BabClass::Opaque => 1,
            BabClass::Border => 2,
        }
    }

    fn from_code(v: u32) -> Option<BabClass> {
        match v {
            0 => Some(BabClass::Transparent),
            1 => Some(BabClass::Opaque),
            2 => Some(BabClass::Border),
            _ => None,
        }
    }
}

/// Number of contexts for the 7-bit template.
const CONTEXTS: usize = 1 << 7;
/// Compute ops charged per CAE-coded pixel.
const CAE_OPS_PER_PIXEL: u64 = 8;

/// Availability oracle for context pixels: a pixel is usable only when
/// both encoder and decoder are guaranteed to know its value at this
/// point of the per-BAB coding order — it lies in a *uniform* BAB
/// (known from the class map, filled in advance by the decoder), in a
/// border BAB that precedes the current one in raster order, or earlier
/// in raster order within the current BAB.
struct CtxAvail<'a> {
    classes: &'a [BabClass],
    bab_cols: usize,
    cur_bab: usize,
}

impl CtxAvail<'_> {
    fn available(&self, x: isize, y: isize, cur_x: isize, cur_y: isize) -> bool {
        let bab = (y as usize / 16) * self.bab_cols + (x as usize / 16);
        match self.classes[bab] {
            BabClass::Transparent | BabClass::Opaque => true,
            BabClass::Border => {
                bab < self.cur_bab
                    || (bab == self.cur_bab && (y < cur_y || (y == cur_y && x < cur_x)))
            }
        }
    }
}

/// Mask sample (0 or 1) at signed plane coordinates, 0 outside the plane
/// or when the pixel is not yet available in coding order.
fn mask_at(
    plane: &TracedPlane,
    avail: &CtxAvail<'_>,
    x: isize,
    y: isize,
    cur_x: isize,
    cur_y: isize,
) -> u8 {
    if x < 0 || y < 0 || x >= plane.width() as isize || y >= plane.height() as isize {
        return 0;
    }
    if !avail.available(x, y, cur_x, cur_y) {
        return 0;
    }
    u8::from(plane.raw_row(x, y, 1)[0] != 0)
}

/// 7-bit causal context at `(x, y)`.
fn context_at(plane: &TracedPlane, avail: &CtxAvail<'_>, x: isize, y: isize) -> usize {
    let bits = [
        mask_at(plane, avail, x - 2, y, x, y),
        mask_at(plane, avail, x - 1, y, x, y),
        mask_at(plane, avail, x - 2, y - 1, x, y),
        mask_at(plane, avail, x - 1, y - 1, x, y),
        mask_at(plane, avail, x, y - 1, x, y),
        mask_at(plane, avail, x + 1, y - 1, x, y),
        mask_at(plane, avail, x + 2, y - 1, x, y),
    ];
    bits.iter().fold(0usize, |acc, &b| (acc << 1) | b as usize)
}

/// Classifies the BAB whose top-left pixel is `(bx·16, by·16)`,
/// issuing traced reads of its 16 rows.
pub fn classify_bab<M: MemModel>(
    mem: &mut M,
    alpha: &TracedPlane,
    bx: usize,
    by: usize,
) -> BabClass {
    let mut any_opaque = false;
    let mut any_transparent = false;
    for row in 0..16 {
        let r = alpha.load_row(mem, (bx * 16) as isize, (by * 16 + row) as isize, 16);
        for &v in r {
            if v != 0 {
                any_opaque = true;
            } else {
                any_transparent = true;
            }
        }
    }
    match (any_opaque, any_transparent) {
        (true, false) => BabClass::Opaque,
        (false, true) => BabClass::Transparent,
        _ => BabClass::Border,
    }
}

/// Encodes the `bbox`-restricted part of a binary alpha plane; BABs
/// outside the box are implicitly transparent (the box travels in the
/// VOP header, exactly as the reference codec transmits VOP-sized alpha
/// buffers rather than frame-sized ones).
///
/// Layout: per-BAB class codes over the box, then `ue(bit_count)` and
/// the arithmetic payload for its border BABs in raster order.
///
/// # Panics
///
/// Panics if the plane dimensions or the box are not multiples of 16,
/// or the box leaves the plane.
pub fn encode_alpha_plane<M: MemModel>(
    mem: &mut M,
    alpha: &TracedPlane,
    bbox: (usize, usize, usize, usize),
    w: &mut BitWriter,
) {
    assert!(alpha.width().is_multiple_of(16) && alpha.height().is_multiple_of(16));
    let (bx0, by0, bw_px, bh_px) = bbox;
    assert!(bx0 % 16 == 0 && by0 % 16 == 0 && bw_px % 16 == 0 && bh_px % 16 == 0);
    assert!(bx0 + bw_px <= alpha.width() && by0 + bh_px <= alpha.height());
    let bw = alpha.width() / 16;
    let (first_bx, first_by) = (bx0 / 16, by0 / 16);
    let (nbx, nby) = (bw_px / 16, bh_px / 16);

    // Class map over the box; the payload pass needs full-plane class
    // knowledge for context availability, so out-of-box BABs are marked
    // transparent.
    let mut classes = vec![BabClass::Transparent; bw * (alpha.height() / 16)];
    for by in first_by..first_by + nby {
        for bx in first_bx..first_bx + nbx {
            let class = classify_bab(mem, alpha, bx, by);
            put_ue(w, class.code());
            classes[by * bw + bx] = class;
        }
    }

    let mut model = ContextModel::new(CONTEXTS);
    let mut enc = ArithEncoder::new();
    for by in first_by..first_by + nby {
        for bx in first_bx..first_bx + nbx {
            if classes[by * bw + bx] != BabClass::Border {
                continue;
            }
            let avail = CtxAvail {
                classes: &classes,
                bab_cols: bw,
                cur_bab: by * bw + bx,
            };
            for row in 0..16isize {
                let y = by as isize * 16 + row;
                // Traced touches: the row above (with 2-pixel overhang on
                // each side) and the current row segment.
                let x0 = bx as isize * 16;
                if y > 0 {
                    let ax = (x0 - 2).max(0);
                    let alen = ((x0 + 18).min(alpha.width() as isize) - ax) as usize;
                    alpha.load_row(mem, ax, y - 1, alen);
                }
                let cx = (x0 - 2).max(0);
                let clen = ((x0 + 16).min(alpha.width() as isize) - cx) as usize;
                alpha.load_row(mem, cx, y, clen);
                mem.add_ops(16 * CAE_OPS_PER_PIXEL);
                for col in 0..16isize {
                    let x = x0 + col;
                    let ctx = context_at(alpha, &avail, x, y);
                    let bit = alpha.raw_row(x, y, 1)[0] != 0;
                    enc.encode(bit, model.p0(ctx));
                    model.update(ctx, bit);
                }
            }
        }
    }
    let (bytes, nbits) = enc.finish();
    put_ue(w, nbits as u32);
    for i in 0..nbits {
        let bit = (bytes[(i / 8) as usize] >> (7 - (i % 8))) & 1;
        w.put_bit(bit != 0);
    }
}

/// Decodes the `bbox`-restricted alpha region written by
/// [`encode_alpha_plane`] into `alpha` (traced stores); the caller is
/// responsible for the region outside the box (the previous VOP's box
/// is cleared by the decoder). Reconstruction is lossless.
///
/// # Errors
///
/// Returns [`CodecError`] on truncated or corrupt input.
///
/// # Panics
///
/// Panics if the plane dimensions or the box are not multiples of 16 or
/// the box leaves the plane.
pub fn decode_alpha_plane<M: MemModel>(
    mem: &mut M,
    alpha: &mut TracedPlane,
    bbox: (usize, usize, usize, usize),
    r: &mut BitReader<'_>,
) -> Result<(), CodecError> {
    assert!(alpha.width().is_multiple_of(16) && alpha.height().is_multiple_of(16));
    let (bx0, by0, bw_px, bh_px) = bbox;
    assert!(bx0 % 16 == 0 && by0 % 16 == 0 && bw_px % 16 == 0 && bh_px % 16 == 0);
    assert!(bx0 + bw_px <= alpha.width() && by0 + bh_px <= alpha.height());
    let bw = alpha.width() / 16;
    let (first_bx, first_by) = (bx0 / 16, by0 / 16);
    let (nbx, nby) = (bw_px / 16, bh_px / 16);

    let mut classes = vec![BabClass::Transparent; bw * (alpha.height() / 16)];
    for by in first_by..first_by + nby {
        for bx in first_bx..first_bx + nbx {
            let class = BabClass::from_code(get_ue(r)?)
                .ok_or(CodecError::InvalidStream("invalid BAB class"))?;
            classes[by * bw + bx] = class;
        }
    }

    // Fill uniform BABs first so border contexts can read them.
    for by in first_by..first_by + nby {
        for bx in first_bx..first_bx + nbx {
            let fill = match classes[by * bw + bx] {
                BabClass::Transparent => Some(0u8),
                BabClass::Opaque => Some(255u8),
                BabClass::Border => None,
            };
            if let Some(v) = fill {
                let row = [v; 16];
                for dy in 0..16 {
                    alpha.store_row(mem, (bx * 16) as isize, (by * 16 + dy) as isize, &row);
                }
            }
        }
    }

    let nbits = u64::from(get_ue(r)?);
    if nbits > r.remaining_bits() {
        return Err(CodecError::InvalidStream(
            "shape payload longer than the stream",
        ));
    }
    let nbytes = nbits.div_ceil(8) as usize;
    let mut payload = vec![0u8; nbytes];
    for i in 0..nbits {
        if r.get_bit()? {
            payload[(i / 8) as usize] |= 1 << (7 - (i % 8));
        }
    }
    let mut dec = ArithDecoder::new(&payload, nbits);
    let mut model = ContextModel::new(CONTEXTS);

    for by in first_by..first_by + nby {
        for bx in first_bx..first_bx + nbx {
            if classes[by * bw + bx] != BabClass::Border {
                continue;
            }
            let avail = CtxAvail {
                classes: &classes,
                bab_cols: bw,
                cur_bab: by * bw + bx,
            };
            for row in 0..16isize {
                let y = by as isize * 16 + row;
                let x0 = bx as isize * 16;
                if y > 0 {
                    let ax = (x0 - 2).max(0);
                    let alen = ((x0 + 18).min(alpha.width() as isize) - ax) as usize;
                    alpha.load_row(mem, ax, y - 1, alen);
                }
                mem.add_ops(16 * CAE_OPS_PER_PIXEL);
                let mut decoded = [0u8; 16];
                for col in 0..16isize {
                    let x = x0 + col;
                    // Left-context pixels inside this row come from the
                    // plane, which we update per-pixel below.
                    let ctx = context_at(alpha, &avail, x, y);
                    let bit = dec.decode(model.p0(ctx));
                    model.update(ctx, bit);
                    decoded[col as usize] = if bit { 255 } else { 0 };
                    // Make the pixel visible to the next context without
                    // double-charging traffic (row store below covers it).
                    alpha.poke_untraced(x, y, decoded[col as usize]);
                }
                alpha.store_row(mem, x0, y, &decoded);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use m4ps_memsim::{AddressSpace, NullModel};

    fn plane_from_fn(
        space: &mut AddressSpace,
        mem: &mut NullModel,
        w: usize,
        h: usize,
        f: impl Fn(usize, usize) -> bool,
    ) -> TracedPlane {
        let mut p = TracedPlane::new(space, w, h);
        let mut data = vec![0u8; w * h];
        for y in 0..h {
            for x in 0..w {
                data[y * w + x] = if f(x, y) { 255 } else { 0 };
            }
        }
        p.copy_from(mem, &data, false);
        p
    }

    fn roundtrip(w: usize, h: usize, f: impl Fn(usize, usize) -> bool) {
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        let src = plane_from_fn(&mut space, &mut mem, w, h, f);
        let mut bits = BitWriter::new();
        encode_alpha_plane(&mut mem, &src, (0, 0, w, h), &mut bits);
        let bytes = bits.into_bytes();
        let mut out = TracedPlane::new(&mut space, w, h);
        let mut r = BitReader::new(&bytes);
        decode_alpha_plane(&mut mem, &mut out, (0, 0, w, h), &mut r).unwrap();
        for y in 0..h {
            assert_eq!(
                src.raw_row(0, y as isize, w),
                out.raw_row(0, y as isize, w),
                "row {y}"
            );
        }
    }

    #[test]
    fn all_transparent_roundtrip() {
        roundtrip(32, 32, |_, _| false);
    }

    #[test]
    fn all_opaque_roundtrip() {
        roundtrip(32, 32, |_, _| true);
    }

    #[test]
    fn ellipse_roundtrip() {
        roundtrip(64, 48, |x, y| {
            let dx = x as f64 - 32.0;
            let dy = y as f64 - 24.0;
            dx * dx / 600.0 + dy * dy / 300.0 <= 1.0
        });
    }

    #[test]
    fn checkerboard_roundtrip() {
        // Worst case for the context model: maximal borders.
        roundtrip(32, 32, |x, y| (x / 4 + y / 4) % 2 == 0);
    }

    #[test]
    fn diagonal_stripe_roundtrip() {
        roundtrip(48, 32, |x, y| (x + y) % 11 < 5);
    }

    #[test]
    fn single_pixel_roundtrip() {
        roundtrip(16, 16, |x, y| x == 7 && y == 9);
    }

    #[test]
    fn classification_via_traced_reads() {
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        let p = plane_from_fn(&mut space, &mut mem, 48, 16, |x, _| (16..24).contains(&x));
        assert_eq!(classify_bab(&mut mem, &p, 0, 0), BabClass::Transparent);
        assert_eq!(classify_bab(&mut mem, &p, 1, 0), BabClass::Border);
        assert_eq!(classify_bab(&mut mem, &p, 2, 0), BabClass::Transparent);
    }

    #[test]
    fn smooth_shapes_compress_well() {
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        let p = plane_from_fn(&mut space, &mut mem, 64, 64, |x, y| {
            let dx = x as f64 - 32.0;
            let dy = y as f64 - 32.0;
            (dx * dx + dy * dy).sqrt() <= 20.0
        });
        let mut w = BitWriter::new();
        encode_alpha_plane(&mut mem, &p, (0, 0, 64, 64), &mut w);
        // Raw plane is 4096 bits; a circle should code far smaller.
        assert!(w.bit_len() < 1500, "coded {} bits", w.bit_len());
    }

    #[test]
    fn corrupt_class_code_is_an_error() {
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        let mut w = BitWriter::new();
        put_ue(&mut w, 3); // invalid class
        let bytes = w.into_bytes();
        let mut out = TracedPlane::new(&mut space, 16, 16);
        let mut r = BitReader::new(&bytes);
        assert!(decode_alpha_plane(&mut mem, &mut out, (0, 0, 16, 16), &mut r).is_err());
    }
}
