//! Rate control: a simple reactive quantizer adaptation toward the
//! configured target bitrate (the paper encodes at 38400 bit/s).

use crate::types::VopKind;

/// Reactive per-VOP rate controller.
///
/// After each coded VOP the controller compares the running bit
/// expenditure against the target bit budget and nudges the quantizer
/// parameter, with the usual I-VOP budget weighting.
#[derive(Debug, Clone)]
pub struct RateController {
    qp: u8,
    target_bits_per_frame: Option<f64>,
    spent_bits: f64,
    budgeted_bits: f64,
}

/// Budget weight of an I-VOP relative to a P-VOP.
const I_WEIGHT: f64 = 3.0;
/// Budget weight of a B-VOP relative to a P-VOP.
const B_WEIGHT: f64 = 0.5;

impl RateController {
    /// Creates a controller starting at `initial_qp`; `bitrate` of
    /// `None` means constant-QP operation.
    ///
    /// # Panics
    ///
    /// Panics if `initial_qp` is outside `1..=31` or `frame_rate` is not
    /// positive.
    pub fn new(initial_qp: u8, bitrate: Option<u32>, frame_rate: f64) -> Self {
        assert!((1..=31).contains(&initial_qp));
        assert!(frame_rate > 0.0);
        RateController {
            qp: initial_qp,
            target_bits_per_frame: bitrate.map(|b| f64::from(b) / frame_rate),
            spent_bits: 0.0,
            budgeted_bits: 0.0,
        }
    }

    /// Quantizer to use for the next VOP of the given kind.
    pub fn qp_for(&self, kind: VopKind) -> u8 {
        // I-VOPs get a slightly finer quantizer, B-VOPs a coarser one
        // (standard practice, and what keeps B budgets small).
        let q = match kind {
            VopKind::I => i16::from(self.qp) - 1,
            VopKind::P => i16::from(self.qp),
            VopKind::B => i16::from(self.qp) + 2,
        };
        q.clamp(1, 31) as u8
    }

    /// Reports that a VOP of `kind` consumed `bits` bits; adapts the
    /// quantizer for subsequent VOPs.
    pub fn update(&mut self, kind: VopKind, bits: u64) {
        let Some(per_frame) = self.target_bits_per_frame else {
            return;
        };
        let weight = match kind {
            VopKind::I => I_WEIGHT,
            VopKind::P => 1.0,
            VopKind::B => B_WEIGHT,
        };
        // Normalized budget share of this frame kind (so a mix of kinds
        // still averages to the per-frame target).
        self.budgeted_bits += per_frame * weight / mean_weight();
        self.spent_bits += bits as f64;
        let ratio = self.spent_bits / self.budgeted_bits.max(1.0);
        if ratio > 1.15 {
            self.qp = (self.qp + 1).min(31);
        } else if ratio < 0.85 {
            self.qp = (self.qp - 1).max(1);
        }
    }

    /// Current base quantizer.
    pub fn current_qp(&self) -> u8 {
        self.qp
    }

    /// Total bits reported so far.
    pub fn spent_bits(&self) -> u64 {
        self.spent_bits as u64
    }
}

/// Average kind weight of an IBBP stream (rough normalization constant).
fn mean_weight() -> f64 {
    (I_WEIGHT + 3.0 * 1.0 + 8.0 * B_WEIGHT) / 12.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_qp_never_moves() {
        let mut rc = RateController::new(10, None, 30.0);
        for _ in 0..100 {
            rc.update(VopKind::P, 1_000_000);
        }
        assert_eq!(rc.current_qp(), 10);
    }

    #[test]
    fn overspending_raises_qp() {
        let mut rc = RateController::new(10, Some(38_400), 30.0);
        for _ in 0..20 {
            rc.update(VopKind::P, 100_000); // way over 1280 bits/frame
        }
        assert!(rc.current_qp() > 10);
    }

    #[test]
    fn underspending_lowers_qp() {
        let mut rc = RateController::new(10, Some(38_400), 30.0);
        for _ in 0..20 {
            rc.update(VopKind::P, 10);
        }
        assert!(rc.current_qp() < 10);
    }

    #[test]
    fn qp_stays_in_legal_range() {
        let mut rc = RateController::new(31, Some(1_000), 30.0);
        for _ in 0..100 {
            rc.update(VopKind::I, 10_000_000);
        }
        assert_eq!(rc.current_qp(), 31);
        let mut rc = RateController::new(1, Some(100_000_000), 30.0);
        for _ in 0..100 {
            rc.update(VopKind::P, 1);
        }
        assert_eq!(rc.current_qp(), 1);
    }

    #[test]
    fn kind_offsets_order_qps() {
        let rc = RateController::new(10, Some(38_400), 30.0);
        assert!(rc.qp_for(VopKind::I) < rc.qp_for(VopKind::P));
        assert!(rc.qp_for(VopKind::P) < rc.qp_for(VopKind::B));
    }

    #[test]
    #[should_panic]
    fn zero_qp_rejected() {
        RateController::new(0, None, 30.0);
    }
}
