//! Shared macroblock-level helpers used identically by the encoder's
//! local-decode loop and the decoder, guaranteeing bit-exact
//! reconstruction agreement.

use crate::plane::{RowSink, TracedPlane};
use crate::types::MotionVector;
use m4ps_memsim::{AccessKind, MemModel};

/// Reads an 8×8 pixel block at `(x, y)` as `i16` samples, charged as one
/// rectangular traced read.
pub(crate) fn read_block<M: MemModel>(
    mem: &mut M,
    plane: &TracedPlane,
    x: isize,
    y: isize,
) -> [i16; 64] {
    plane.touch_rect_read(mem, x, y, 8, 8);
    let mut out = [0i16; 64];
    for row in 0..8 {
        let src = plane.raw_row(x, y + row as isize, 8);
        for col in 0..8 {
            out[row * 8 + col] = i16::from(src[col]);
        }
    }
    out
}

/// Writes an 8×8 block of `i16` samples, clamped to `0..=255`, charged
/// as one rectangular traced store. Generic over the destination so
/// whole planes and borrowed slice regions share one write path.
pub(crate) fn write_block<M: MemModel, P: RowSink>(
    mem: &mut M,
    plane: &mut P,
    x: isize,
    y: isize,
    samples: &[i16; 64],
) {
    let mut block = [0u8; 64];
    for (dst, &s) in block.iter_mut().zip(samples) {
        *dst = s.clamp(0, 255) as u8;
    }
    plane.store_rect(mem, x, y, 8, &block);
}

/// Writes an 8×8 block that is already `u8` (an uncoded block's
/// prediction) — the same traced stores as [`write_block`] without the
/// widen/clamp round-trip (clamping an in-range `u8` is the identity).
pub(crate) fn write_block_u8<M: MemModel, P: RowSink>(
    mem: &mut M,
    plane: &mut P,
    x: isize,
    y: isize,
    samples: &[u8; 64],
) {
    plane.store_rect(mem, x, y, 8, samples);
}

/// Extracts an 8×8 sub-block of a 16×16 prediction buffer
/// (`block_index`: 0 = top-left, 1 = top-right, 2 = bottom-left,
/// 3 = bottom-right).
pub(crate) fn pred_subblock(pred16: &[u8], block_index: usize) -> [u8; 64] {
    let bx = (block_index % 2) * 8;
    let by = (block_index / 2) * 8;
    let mut out = [0u8; 64];
    for row in 0..8 {
        for col in 0..8 {
            out[row * 8 + col] = pred16[(by + row) * 16 + bx + col];
        }
    }
    out
}

/// `residue[i] = cur[i] − pred[i]`.
pub(crate) fn residual(cur: &[i16; 64], pred: &[u8; 64]) -> [i16; 64] {
    let mut out = [0i16; 64];
    for i in 0..64 {
        out[i] = cur[i] - i16::from(pred[i]);
    }
    out
}

/// `sum[i] = clamp(residue[i] + pred[i])` as i16 in pixel range.
pub(crate) fn add_prediction(residue: &[i16; 64], pred: &[u8; 64]) -> [i16; 64] {
    let mut out = [0i16; 64];
    for i in 0..64 {
        out[i] = (residue[i] + i16::from(pred[i])).clamp(0, 255);
    }
    out
}

/// Chroma motion vector derived from the luma vector (luma half-pel →
/// chroma half-pel by halving, truncating toward zero — consistent on
/// both sides, drift-free).
pub(crate) fn chroma_mv(mv: MotionVector) -> MotionVector {
    MotionVector::new(mv.x / 2, mv.y / 2)
}

/// Neutral DC predictor for 8-bit video: the quantized DC of a flat
/// mid-grey block (128·8 / dc_scaler 8).
pub(crate) const DC_PRED_RESET: i16 = 128;

/// Running intra-DC predictors for the three planes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct IntraPredState {
    pub y: i16,
    pub u: i16,
    pub v: i16,
}

impl IntraPredState {
    pub(crate) fn reset() -> Self {
        IntraPredState {
            y: DC_PRED_RESET,
            u: DC_PRED_RESET,
            v: DC_PRED_RESET,
        }
    }
}

/// Median motion-vector predictor over the left / top / top-right
/// neighbours, maintained per macroblock row.
#[derive(Debug, Clone)]
pub(crate) struct MvPredictor {
    /// Vectors of the previous MB row (indexed by mbx).
    row: Vec<MotionVector>,
    /// Vectors of the current row committed so far.
    cur_row: Vec<MotionVector>,
    left: MotionVector,
}

impl MvPredictor {
    pub(crate) fn new(mb_cols: usize) -> Self {
        MvPredictor {
            row: vec![MotionVector::ZERO; mb_cols],
            cur_row: vec![MotionVector::ZERO; mb_cols],
            left: MotionVector::ZERO,
        }
    }

    /// Starts a new macroblock row.
    pub(crate) fn start_row(&mut self) {
        std::mem::swap(&mut self.row, &mut self.cur_row);
        for v in &mut self.cur_row {
            *v = MotionVector::ZERO;
        }
        self.left = MotionVector::ZERO;
    }

    /// Predictor for the MB at column `mbx`.
    pub(crate) fn predict(&self, mbx: usize) -> MotionVector {
        let top = self.row[mbx];
        let top_right = if mbx + 1 < self.row.len() {
            self.row[mbx + 1]
        } else {
            top
        };
        MotionVector::median3(self.left, top, top_right)
    }

    /// Clears all prediction state (resynchronization-marker semantics:
    /// no prediction crosses a marker).
    pub(crate) fn reset(&mut self) {
        for v in &mut self.row {
            *v = MotionVector::ZERO;
        }
        for v in &mut self.cur_row {
            *v = MotionVector::ZERO;
        }
        self.left = MotionVector::ZERO;
    }

    /// Commits the decoded/encoded vector of column `mbx` (use
    /// [`MotionVector::ZERO`] for intra and skipped MBs).
    pub(crate) fn commit(&mut self, mbx: usize, mv: MotionVector) {
        self.cur_row[mbx] = mv;
        self.left = mv;
    }
}

/// Charges simulated store traffic for bytes appended to the output
/// bitstream (or load traffic for bytes consumed from an input one).
#[derive(Debug, Clone)]
pub(crate) struct StreamCharge {
    base: u64,
    charged_bits: u64,
    kind: AccessKind,
}

impl StreamCharge {
    pub(crate) fn writer(base: u64) -> Self {
        StreamCharge {
            base,
            charged_bits: 0,
            kind: AccessKind::Store,
        }
    }

    pub(crate) fn reader(base: u64) -> Self {
        StreamCharge {
            base,
            charged_bits: 0,
            kind: AccessKind::Load,
        }
    }

    /// Charges any whole new bytes reached by `bit_pos`.
    pub(crate) fn charge_to<M: MemModel>(&mut self, mem: &mut M, bit_pos: u64) {
        let done_bytes = self.charged_bits / 8;
        let new_bytes = bit_pos / 8;
        if new_bytes > done_bytes {
            mem.access_range(
                self.base + done_bytes,
                new_bytes - done_bytes,
                self.kind,
                new_bytes - done_bytes,
            );
        }
        self.charged_bits = self.charged_bits.max(bit_pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m4ps_memsim::{AddressSpace, NullModel};

    #[test]
    fn block_read_write_roundtrip() {
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        let mut p = TracedPlane::new(&mut space, 32, 32);
        let mut samples = [0i16; 64];
        for (i, v) in samples.iter_mut().enumerate() {
            *v = (i as i16 * 5) % 256;
        }
        write_block(&mut mem, &mut p, 8, 8, &samples);
        assert_eq!(read_block(&mut mem, &p, 8, 8), samples);
    }

    #[test]
    fn write_block_clamps() {
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        let mut p = TracedPlane::new(&mut space, 16, 16);
        let mut samples = [0i16; 64];
        samples[0] = -50;
        samples[1] = 300;
        write_block(&mut mem, &mut p, 0, 0, &samples);
        let got = read_block(&mut mem, &p, 0, 0);
        assert_eq!(got[0], 0);
        assert_eq!(got[1], 255);
    }

    #[test]
    fn pred_subblock_extracts_quadrants() {
        let mut pred = [0u8; 256];
        for (i, v) in pred.iter_mut().enumerate() {
            *v = i as u8;
        }
        let tl = pred_subblock(&pred, 0);
        assert_eq!(tl[0], 0);
        assert_eq!(tl[63], (7 * 16 + 7) as u8);
        let br = pred_subblock(&pred, 3);
        assert_eq!(br[0], (8 * 16 + 8) as u8);
    }

    #[test]
    fn residual_and_add_are_inverse_within_range() {
        let mut cur = [0i16; 64];
        let mut pred = [0u8; 64];
        for i in 0..64 {
            cur[i] = ((i * 3) % 256) as i16;
            pred[i] = ((i * 7) % 256) as u8;
        }
        let r = residual(&cur, &pred);
        assert_eq!(add_prediction(&r, &pred), cur);
    }

    #[test]
    fn chroma_mv_halves_toward_zero() {
        assert_eq!(
            chroma_mv(MotionVector::new(5, -5)),
            MotionVector::new(2, -2)
        );
        assert_eq!(chroma_mv(MotionVector::new(-1, 1)), MotionVector::new(0, 0));
        assert_eq!(
            chroma_mv(MotionVector::new(8, -6)),
            MotionVector::new(4, -3)
        );
    }

    #[test]
    fn mv_predictor_median_rules() {
        let mut p = MvPredictor::new(4);
        p.start_row();
        // First row: everything zero.
        assert_eq!(p.predict(0), MotionVector::ZERO);
        p.commit(0, MotionVector::new(4, 2));
        // Left neighbour now (4,2); top row zero → median(4,0,0)=0, (2,0,0)=0.
        assert_eq!(p.predict(1), MotionVector::ZERO);
        p.commit(1, MotionVector::new(6, 6));
        p.start_row();
        // Top = (4,2), top-right = (6,6), left = 0 → median = (4,2).
        assert_eq!(p.predict(0), MotionVector::new(4, 2));
    }

    #[test]
    fn stream_charge_counts_each_byte_once() {
        use m4ps_memsim::{Hierarchy, MachineSpec, MemModel};
        let mut mem = Hierarchy::new(MachineSpec::o2());
        let mut sc = StreamCharge::writer(0x10_0000);
        sc.charge_to(&mut mem, 12); // 1 full byte
        sc.charge_to(&mut mem, 20); // 2 full bytes total
        sc.charge_to(&mut mem, 20);
        sc.charge_to(&mut mem, 160); // 20 bytes total
        assert_eq!(mem.counters().stores, 20);
    }
}
