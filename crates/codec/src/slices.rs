//! Deterministic macroblock-row slice partitioning.
//!
//! One function, shared by encoder and decoder, defines how a VOP's
//! macroblock rows split into slices. The partition depends only on the
//! row count and the requested slice count — never on the thread count
//! executing it — which is the root of the pipeline's bit-exactness
//! guarantee: workers only *schedule* slices, they cannot change them.

use std::ops::Range;

/// Splits the macroblock-row range `rows` into at most `slices`
/// contiguous, non-empty, in-order sub-ranges.
///
/// The first `rows.len() % n` slices get one extra row, so slice sizes
/// differ by at most one. Requests for more slices than rows (or zero
/// slices) are clamped; an empty input yields a single empty slice so
/// callers need no special case.
pub(crate) fn partition_rows(rows: Range<usize>, slices: usize) -> Vec<Range<usize>> {
    let n = rows.len();
    let count = slices.clamp(1, n.max(1));
    let base = n / count;
    let extra = n % count;
    let mut out = Vec::with_capacity(count);
    let mut start = rows.start;
    for s in 0..count {
        let len = base + usize::from(s < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, rows.end);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_range_in_order_without_gaps() {
        for total in 1..40usize {
            for slices in 1..10usize {
                let parts = partition_rows(3..3 + total, slices);
                assert_eq!(parts.len(), slices.min(total));
                assert_eq!(parts[0].start, 3);
                assert_eq!(parts.last().unwrap().end, 3 + total);
                for w in parts.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                let sizes: Vec<usize> = parts.iter().map(|r| r.len()).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "uneven split {sizes:?}");
                assert!(*min >= 1);
            }
        }
    }

    #[test]
    fn degenerate_inputs_are_clamped() {
        assert_eq!(partition_rows(0..9, 0), vec![0..9]);
        assert_eq!(partition_rows(0..2, 5), vec![0..1, 1..2]);
        assert_eq!(partition_rows(4..4, 3), vec![4..4]);
    }

    #[test]
    fn nine_rows_four_slices_front_loads_remainder() {
        assert_eq!(partition_rows(0..9, 4), vec![0..3, 3..5, 5..7, 7..9]);
    }
}
