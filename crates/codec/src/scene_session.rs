//! Scene-level orchestration: N visual objects × L layers.
//!
//! The paper's multi-object experiments encode three VOs (each with one
//! or two VOLs) over the same input scene, "with the single-object input
//! becoming a subset of the multiple-object input". [`SceneEncoder`]
//! reproduces that setup: each VO is an independently coded
//! arbitrary-shape layer stack over the full-frame coordinate system;
//! [`SceneDecoder`] decodes every stream and recomposes the scene
//! (decode + composition being exactly the receiver pipeline the paper
//! describes).
//!
//! Two-layer stacks use temporal scalability: the base layer codes even
//! frames (IPP so its anchors are always fresh), the enhancement layer
//! codes odd frames as P-VOPs predicted from the base layer's latest
//! anchor reconstruction.

use crate::config::EncoderConfig;
use crate::decoder::{DecodedVop, VideoObjectDecoder};
use crate::encoder::{EncodedVop, FrameView, VideoObjectCoder, VopStats};
use crate::error::CodecError;
use crate::header::VolHeader;
use crate::plane::TracedFrame;
use m4ps_bitstream::BitReader;
use m4ps_memsim::{AddressSpace, MemModel, ParallelModel};

/// Aggregate statistics for an encode or decode session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Frames submitted (encode) or composed (decode).
    pub frames: u64,
    /// VOPs coded or decoded.
    pub vops: u64,
    /// Total bitstream bytes.
    pub bytes: u64,
    /// Sum of per-VOP statistics.
    pub totals: VopStats,
}

impl SessionStats {
    fn absorb(&mut self, stats: &VopStats, bytes: u64) {
        self.vops += 1;
        self.bytes += bytes;
        self.totals.bits += stats.bits;
        self.totals.intra_mbs += stats.intra_mbs;
        self.totals.inter_mbs += stats.inter_mbs;
        self.totals.skipped_mbs += stats.skipped_mbs;
        self.totals.transparent_mbs += stats.transparent_mbs;
        self.totals.candidates += stats.candidates;
        self.totals.concealed_mbs += stats.concealed_mbs;
    }
}

/// One VO's layer stack.
#[derive(Debug)]
struct VoStack {
    base: VideoObjectCoder,
    enh: Option<VideoObjectCoder>,
}

/// Encoder for a whole scene.
#[derive(Debug)]
pub struct SceneEncoder {
    width: usize,
    height: usize,
    layers: usize,
    objects: usize,
    vos: Vec<VoStack>,
    /// Per (vo, layer) elementary streams, `vo * layers + layer`.
    streams: Vec<Vec<u8>>,
    frame_idx: usize,
    stats: SessionStats,
    /// Scratch planes for object masking (segmentation preprocessing,
    /// performed outside the measured codec as MoMuSys consumed
    /// pre-segmented per-object input files).
    scratch_y: Vec<u8>,
    scratch_u: Vec<u8>,
    scratch_v: Vec<u8>,
}

impl SceneEncoder {
    /// Creates a scene encoder.
    ///
    /// `objects == 0` encodes the whole frame as a single rectangular
    /// VO (the paper's 1-VO runs); `objects >= 1` encodes that many
    /// arbitrary-shape VOs. `layers` is 1 or 2.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidConfig`] for bad geometry, layer
    /// count, or configuration.
    pub fn new(
        space: &mut AddressSpace,
        width: usize,
        height: usize,
        objects: usize,
        layers: usize,
        config: EncoderConfig,
    ) -> Result<Self, CodecError> {
        if !(1..=2).contains(&layers) {
            return Err(CodecError::InvalidConfig("layers must be 1 or 2"));
        }
        let n_vos = objects.max(1);
        let binary_shape = objects > 0;
        let mut vos = Vec::with_capacity(n_vos);
        let mut streams = Vec::new();
        for vo in 0..n_vos {
            let mut base_config = config;
            if layers == 2 {
                // Keep every base VOP an anchor so the enhancement layer
                // always predicts from the temporally nearest base frame.
                base_config.gop.b_frames = 0;
            }
            let mut base = VideoObjectCoder::with_vol(
                space,
                VolHeader {
                    vo_id: vo as u32,
                    vol_id: 0,
                    width,
                    height,
                    binary_shape,
                    enhancement: false,
                },
                base_config,
            )?;
            if layers == 2 {
                base.set_display_mapping(2, 0);
            }
            streams.push(base.header_bytes());
            let enh = if layers == 2 {
                let mut enh_config = config;
                enh_config.gop.b_frames = 0;
                let mut coder = VideoObjectCoder::with_vol(
                    space,
                    VolHeader {
                        vo_id: vo as u32,
                        vol_id: 1,
                        width,
                        height,
                        binary_shape,
                        enhancement: true,
                    },
                    enh_config,
                )?;
                coder.set_display_mapping(2, 1);
                streams.push(coder.header_bytes());
                Some(coder)
            } else {
                None
            };
            vos.push(VoStack { base, enh });
        }
        Ok(SceneEncoder {
            width,
            height,
            layers,
            objects,
            vos,
            streams,
            frame_idx: 0,
            stats: SessionStats::default(),
            scratch_y: vec![0; width * height],
            scratch_u: vec![0; width * height / 4],
            scratch_v: vec![0; width * height / 4],
        })
    }

    /// Number of elementary streams produced (`vos × layers`).
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Sets the slice-encoding worker thread count on every layer coder
    /// (see [`VideoObjectCoder::set_threads`] — a pure scheduling knob,
    /// never a bitstream one).
    pub fn set_threads(&mut self, threads: usize) {
        for stack in &mut self.vos {
            stack.base.set_threads(threads);
            if let Some(enh) = stack.enh.as_mut() {
                enh.set_threads(threads);
            }
        }
    }

    /// Shares one persistent worker pool across every layer coder, so
    /// a study spawns workers once instead of once per coder.
    pub fn set_pool(&mut self, pool: std::sync::Arc<m4ps_pool::WorkerPool>) {
        for stack in &mut self.vos {
            stack.base.set_pool(pool.clone());
            if let Some(enh) = stack.enh.as_mut() {
                enh.set_pool(pool.clone());
            }
        }
    }

    /// Selects the scheduling mode on every layer coder (see
    /// [`crate::Scheduling`] — output is bit-identical across modes).
    pub fn set_scheduling(&mut self, sched: crate::Scheduling) {
        for stack in &mut self.vos {
            stack.base.set_scheduling(sched);
            if let Some(enh) = stack.enh.as_mut() {
                enh.set_scheduling(sched);
            }
        }
    }

    /// Session statistics so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Submits the next display-order frame with one mask per object
    /// (empty for the rectangular single-VO mode).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on geometry or configuration mismatch.
    pub fn encode_frame<M: ParallelModel>(
        &mut self,
        mem: &mut M,
        frame: &FrameView<'_>,
        masks: &[&[u8]],
    ) -> Result<(), CodecError> {
        frame.validate()?;
        if masks.len() != self.objects {
            return Err(CodecError::InvalidConfig("one mask per object is required"));
        }
        let t = self.frame_idx;
        self.frame_idx += 1;
        self.stats.frames += 1;

        // Split-borrow the scratch planes away from the coders so a
        // masked view can be built while a coder is mutably borrowed.
        let Self {
            width,
            height,
            layers,
            objects,
            vos,
            streams,
            stats,
            scratch_y,
            scratch_u,
            scratch_v,
            ..
        } = self;
        let (width, height, layers, objects) = (*width, *height, *layers, *objects);

        for (vo, stack) in vos.iter_mut().enumerate() {
            let (view, alpha): (FrameView<'_>, Option<&[u8]>) = if objects > 0 {
                mask_object(
                    frame, masks[vo], width, height, scratch_y, scratch_u, scratch_v,
                );
                (
                    FrameView {
                        width,
                        height,
                        y: scratch_y,
                        u: scratch_u,
                        v: scratch_v,
                    },
                    Some(masks[vo]),
                )
            } else {
                (*frame, None)
            };
            let produced: Vec<EncodedVop> = if layers == 2 && t % 2 == 1 {
                let ext = stack
                    .base
                    .last_anchor()
                    .ok_or(CodecError::InvalidStream("enhancement before base anchor"))?;
                // Split borrow: enhancement coder vs base reference.
                let enh = stack
                    .enh
                    .as_mut()
                    .expect("two-layer stack has an enhancement coder");
                vec![enh.encode_p_with_ref(mem, &view, alpha, ext)?]
            } else {
                stack.base.encode_frame(mem, &view, alpha)?
            };
            let stream_idx = vo * layers + usize::from(layers == 2 && t % 2 == 1);
            for vop in &produced {
                streams[stream_idx].extend_from_slice(&vop.bytes);
                stats.absorb(&vop.stats, vop.bytes.len() as u64);
            }
        }
        Ok(())
    }

    /// Flushes all coders and returns the per-(vo, layer) elementary
    /// streams. Statistics and counter windows remain readable
    /// afterwards.
    ///
    /// # Errors
    ///
    /// Propagates coder flush errors.
    pub fn finish<M: ParallelModel>(&mut self, mem: &mut M) -> Result<Vec<Vec<u8>>, CodecError> {
        for vo in 0..self.vos.len() {
            let produced = self.vos[vo].base.flush(mem)?;
            let stream_idx = vo * self.layers;
            for vop in &produced {
                self.streams[stream_idx].extend_from_slice(&vop.bytes);
                self.stats.absorb(&vop.stats, vop.bytes.len() as u64);
            }
        }
        Ok(std::mem::take(&mut self.streams))
    }

    /// Number of layers per VO (1 or 2).
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Sum of all coders' per-VOP windows (`VopCode()` instrumentation).
    pub fn vop_window(&self) -> m4ps_memsim::Counters {
        let mut acc = m4ps_memsim::Counters::new();
        for stack in &self.vos {
            acc = acc.merged_with(&stack.base.vop_window());
            if let Some(enh) = &stack.enh {
                acc = acc.merged_with(&enh.vop_window());
            }
        }
        acc
    }
}

/// Masks `frame` to one object (outside pixels become mid-grey) into
/// the provided scratch planes.
fn mask_object(
    frame: &FrameView<'_>,
    mask: &[u8],
    width: usize,
    height: usize,
    scratch_y: &mut [u8],
    scratch_u: &mut [u8],
    scratch_v: &mut [u8],
) {
    for i in 0..width * height {
        scratch_y[i] = if mask[i] != 0 { frame.y[i] } else { 128 };
    }
    let cw = width / 2;
    for cy in 0..height / 2 {
        for cx in 0..cw {
            let ci = cy * cw + cx;
            let li = (cy * 2) * width + cx * 2;
            let opaque = mask[li] != 0;
            scratch_u[ci] = if opaque { frame.u[ci] } else { 128 };
            scratch_v[ci] = if opaque { frame.v[ci] } else { 128 };
        }
    }
}

/// Decoder + compositor for a whole scene.
#[derive(Debug)]
pub struct SceneDecoder {
    layers: usize,
    decoders: Vec<VideoObjectDecoder>,
    composite: TracedFrame,
    /// Reused output staging buffer for the rectangular (single-VO)
    /// display hand-off — the reference decoder `fwrite`s each frame
    /// through a small stdio buffer rather than composing a scene.
    output_ring: m4ps_memsim::SimBuf<u8>,
    stats: SessionStats,
    keep_output: bool,
}

impl SceneDecoder {
    /// Creates a scene decoder over `streams` (as returned by
    /// [`SceneEncoder::finish`]), reading each stream's VOL header.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] when a stream lacks a valid VOL header.
    pub fn new<M: MemModel>(
        space: &mut AddressSpace,
        mem: &mut M,
        streams: &[Vec<u8>],
        layers: usize,
    ) -> Result<Self, CodecError> {
        if streams.is_empty() || !(1..=2).contains(&layers) || !streams.len().is_multiple_of(layers)
        {
            return Err(CodecError::InvalidConfig("bad stream/layer arrangement"));
        }
        let mut decoders = Vec::with_capacity(streams.len());
        let mut dims = (0usize, 0usize);
        for s in streams {
            let mut r = BitReader::new(s);
            let d = VideoObjectDecoder::from_stream(space, mem, &mut r)?;
            dims = (d.vol().width, d.vol().height);
            decoders.push(d);
        }
        space.set_tag("dec.display_output");
        let composite = TracedFrame::new(space, dims.0, dims.1);
        let output_ring = m4ps_memsim::SimBuf::zeroed(space, 64 * 1024);
        space.set_tag("untagged");
        Ok(SceneDecoder {
            layers,
            decoders,
            composite,
            output_ring,
            stats: SessionStats::default(),
            keep_output: false,
        })
    }

    /// Keep raw plane copies in the returned [`DecodedVop`]s.
    pub fn set_keep_output(&mut self, keep: bool) {
        self.keep_output = keep;
        for d in &mut self.decoders {
            d.set_keep_output(keep);
        }
    }

    /// Sets the slice-decoding worker thread count on every layer
    /// decoder (see [`VideoObjectDecoder::set_threads`] — a pure
    /// scheduling knob; output and counters never change).
    pub fn set_threads(&mut self, threads: usize) {
        for d in &mut self.decoders {
            d.set_threads(threads);
        }
    }

    /// Shares one persistent worker pool across every layer decoder, so
    /// a study spawns workers once instead of once per decoder.
    pub fn set_pool(&mut self, pool: std::sync::Arc<m4ps_pool::WorkerPool>) {
        for d in &mut self.decoders {
            d.set_pool(pool.clone());
        }
    }

    /// Selects the scheduling mode on every layer decoder (see
    /// [`crate::Scheduling`] — output is bit-identical across modes).
    pub fn set_scheduling(&mut self, sched: crate::Scheduling) {
        for d in &mut self.decoders {
            d.set_scheduling(sched);
        }
    }

    /// Total VOPs across all layer decoders that fell back to the
    /// sequential path (always 0 on clean streams).
    pub fn parallel_fallbacks(&self) -> u64 {
        self.decoders.iter().map(|d| d.parallel_fallbacks()).sum()
    }

    /// Session statistics so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Paints decoder `idx`'s latest reconstruction onto the composite
    /// (masked by its alpha plane when present) — the receiver's scene
    /// recomposition stage.
    fn compose_from(&mut self, mem: &mut impl MemModel, idx: usize) {
        let dec = &self.decoders[idx];
        let recon = dec.last_recon();
        let alpha = dec.last_alpha();
        let w = self.composite.y.width();
        let h = self.composite.y.height();
        if alpha.is_none() {
            // Rectangular single-VO display hand-off: stream the frame
            // through the reused staging buffer (no scene composition).
            let ring = self.output_ring.len();
            let mut off = 0usize;
            for y in 0..h as isize {
                recon.y.load_row(mem, 0, y, w);
                let end = (off + w).min(ring);
                self.output_ring.touch_write(mem, off, end - off);
                off = if end == ring { 0 } else { end };
            }
            let (cw, ch) = (w / 2, h / 2);
            for y in 0..ch as isize {
                recon.u.load_row(mem, 0, y, cw);
                recon.v.load_row(mem, 0, y, cw);
                let end = (off + cw).min(ring);
                self.output_ring.touch_write(mem, off, end - off);
                off = if end == ring { 0 } else { end };
            }
            return;
        }
        // Shaped VOs paint only their VOP bounding box (the object is
        // transparent everywhere else, and the reference pipeline works
        // with VOP-sized buffers).
        let (bx0, by0, bw, bh) = match (alpha, dec.last_bbox()) {
            (Some(_), Some(b)) => b,
            _ => (0, 0, w, h),
        };
        if let Some(a) = alpha {
            for y in by0 as isize..(by0 + bh) as isize {
                let src: Vec<u8> = recon.y.load_row(mem, bx0 as isize, y, bw).to_vec();
                let mask: Vec<u8> = a.load_row(mem, bx0 as isize, y, bw).to_vec();
                let mut line: Vec<u8> =
                    self.composite.y.load_row(mem, bx0 as isize, y, bw).to_vec();
                for x in 0..bw {
                    if mask[x] != 0 {
                        line[x] = src[x];
                    }
                }
                self.composite.y.store_row(mem, bx0 as isize, y, &line);
            }
            let (cx0, cw2) = (bx0 / 2, bw / 2);
            for y in (by0 / 2) as isize..((by0 + bh) / 2) as isize {
                let su: Vec<u8> = recon.u.load_row(mem, cx0 as isize, y, cw2).to_vec();
                let sv: Vec<u8> = recon.v.load_row(mem, cx0 as isize, y, cw2).to_vec();
                let mask: Vec<u8> = a.load_row(mem, bx0 as isize, y * 2, bw).to_vec();
                let mut lu: Vec<u8> = self
                    .composite
                    .u
                    .load_row(mem, cx0 as isize, y, cw2)
                    .to_vec();
                let mut lv: Vec<u8> = self
                    .composite
                    .v
                    .load_row(mem, cx0 as isize, y, cw2)
                    .to_vec();
                for x in 0..cw2 {
                    if mask[x * 2] != 0 {
                        lu[x] = su[x];
                        lv[x] = sv[x];
                    }
                }
                self.composite.u.store_row(mem, cx0 as isize, y, &lu);
                self.composite.v.store_row(mem, cx0 as isize, y, &lv);
            }
            return;
        }
        for y in 0..h as isize {
            let src: Vec<u8> = recon.y.load_row(mem, 0, y, w).to_vec();
            self.composite.y.store_row(mem, 0, y, &src);
        }
        let (cw, ch) = (w / 2, h / 2);
        for y in 0..ch as isize {
            let su: Vec<u8> = recon.u.load_row(mem, 0, y, cw).to_vec();
            let sv: Vec<u8> = recon.v.load_row(mem, 0, y, cw).to_vec();
            self.composite.u.store_row(mem, 0, y, &su);
            self.composite.v.store_row(mem, 0, y, &sv);
        }
    }

    /// Decodes every stream to exhaustion, composing each VOP into the
    /// scene as it arrives. Returns all decoded VOPs (with plane copies
    /// when output keeping is enabled).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on any corrupt stream.
    pub fn decode_all<M: ParallelModel>(
        &mut self,
        mem: &mut M,
        streams: &[Vec<u8>],
    ) -> Result<Vec<DecodedVop>, CodecError> {
        if streams.len() != self.decoders.len() {
            return Err(CodecError::InvalidConfig("stream count mismatch"));
        }
        let mut out = Vec::new();
        let n_vos = self.decoders.len() / self.layers;
        for vo in 0..n_vos {
            let base_idx = vo * self.layers;
            let mut base_reader = BitReader::new(&streams[base_idx]);
            // Skip the VOL header (already consumed at construction).
            let _ = VolHeader::read(&mut base_reader)?;
            if self.layers == 2 {
                let enh_idx = base_idx + 1;
                let mut enh_reader = BitReader::new(&streams[enh_idx]);
                let _ = VolHeader::read(&mut enh_reader)?;
                loop {
                    let base_vop = self.decoders[base_idx].decode_next(mem, &mut base_reader)?;
                    let Some(vop) = base_vop else { break };
                    self.stats.absorb(&vop.stats, 0);
                    self.compose_from(mem, base_idx);
                    out.push(vop);
                    // One enhancement VOP per base VOP (odd frames).
                    let (head, tail) = self.decoders.split_at_mut(enh_idx);
                    let base_dec = &head[base_idx];
                    let enh_dec = &mut tail[0];
                    let ext = base_dec
                        .last_anchor()
                        .ok_or(CodecError::InvalidStream("missing base anchor"))?;
                    if let Some(vop) = enh_dec.decode_next_with_ref(mem, &mut enh_reader, ext)? {
                        self.stats.absorb(&vop.stats, 0);
                        self.compose_from(mem, enh_idx);
                        out.push(vop);
                    }
                }
            } else {
                while let Some(vop) = self.decoders[base_idx].decode_next(mem, &mut base_reader)? {
                    self.stats.absorb(&vop.stats, 0);
                    self.compose_from(mem, base_idx);
                    out.push(vop);
                }
            }
        }
        let n_vos = (self.decoders.len() / self.layers) as u64;
        self.stats.frames = self.stats.vops / n_vos.max(1);
        let total_bytes: u64 = streams.iter().map(|s| s.len() as u64).sum();
        self.stats.bytes = total_bytes;
        Ok(out)
    }

    /// Sum of all decoders' per-VOP windows
    /// (`DecodeVopCombMotionShapeTexture()` instrumentation).
    pub fn vop_window(&self) -> m4ps_memsim::Counters {
        let mut acc = m4ps_memsim::Counters::new();
        for d in &self.decoders {
            acc = acc.merged_with(&d.vop_window());
        }
        acc
    }

    /// Untraced copy of the current composite luma plane (testing aid).
    pub fn composite_luma(&self) -> Vec<u8> {
        let w = self.composite.y.width();
        let h = self.composite.y.height();
        let mut out = Vec::with_capacity(w * h);
        for y in 0..h as isize {
            out.extend_from_slice(self.composite.y.raw_row(0, y, w));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m4ps_memsim::NullModel;
    use m4ps_vidgen::{Resolution, Scene, SceneSpec};

    fn view(f: &m4ps_vidgen::YuvFrame) -> FrameView<'_> {
        FrameView {
            width: f.resolution.width,
            height: f.resolution.height,
            y: &f.y,
            u: &f.u,
            v: &f.v,
        }
    }

    #[test]
    fn layer_count_is_validated() {
        let mut space = AddressSpace::new();
        assert!(SceneEncoder::new(&mut space, 64, 48, 1, 0, EncoderConfig::fast_test()).is_err());
        assert!(SceneEncoder::new(&mut space, 64, 48, 1, 3, EncoderConfig::fast_test()).is_err());
        let enc = SceneEncoder::new(&mut space, 64, 48, 2, 2, EncoderConfig::fast_test()).unwrap();
        assert_eq!(enc.stream_count(), 4);
        assert_eq!(enc.layers(), 2);
    }

    #[test]
    fn mask_count_is_validated() {
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        let mut enc =
            SceneEncoder::new(&mut space, 64, 48, 2, 1, EncoderConfig::fast_test()).unwrap();
        let scene = Scene::new(SceneSpec {
            resolution: Resolution::new(64, 48),
            objects: 2,
            seed: 1,
        });
        let f = scene.frame(0);
        // Wrong number of masks must be rejected.
        let m0 = scene.alpha(0, 0).data;
        assert!(enc.encode_frame(&mut mem, &view(&f), &[&m0]).is_err());
    }

    #[test]
    fn decoder_rejects_mismatched_stream_arrangement() {
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        // 3 streams with layers=2 is not divisible.
        let streams = vec![vec![0u8; 4]; 3];
        assert!(SceneDecoder::new(&mut space, &mut mem, &streams, 2).is_err());
        // Streams without VOL headers are rejected.
        let streams = vec![vec![0u8; 4]; 2];
        assert!(SceneDecoder::new(&mut space, &mut mem, &streams, 1).is_err());
    }

    #[test]
    fn session_stats_absorb_all_vop_fields() {
        let mut stats = SessionStats::default();
        let vop = VopStats {
            bits: 100,
            intra_mbs: 1,
            inter_mbs: 2,
            skipped_mbs: 3,
            transparent_mbs: 4,
            candidates: 5,
            concealed_mbs: 6,
        };
        stats.absorb(&vop, 13);
        stats.absorb(&vop, 7);
        assert_eq!(stats.vops, 2);
        assert_eq!(stats.bytes, 20);
        assert_eq!(stats.totals.intra_mbs, 2);
        assert_eq!(stats.totals.concealed_mbs, 12);
        assert_eq!(stats.totals.candidates, 10);
    }
}
