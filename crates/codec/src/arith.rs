//! Adaptive binary arithmetic coding for shape (CAE).
//!
//! MPEG-4 codes binary alpha blocks with a context-based arithmetic
//! encoder. This is a classic Witten–Neal–Cleary integer coder with
//! 32-bit precision and E3 underflow handling, driven by adaptive
//! per-context probabilities ([`ContextModel`]).

const PRECISION: u32 = 32;
const HALF: u64 = 1 << (PRECISION - 1);
const QUARTER: u64 = 1 << (PRECISION - 2);
const THREE_QUARTER: u64 = HALF + QUARTER;
const TOP: u64 = (1 << PRECISION) - 1;
/// Probability scale: p0 is a fraction of 2^16.
const P_BITS: u32 = 16;

/// Adaptive per-context bit probabilities backed by symbol counts.
#[derive(Debug, Clone)]
pub struct ContextModel {
    zeros: Vec<u32>,
    ones: Vec<u32>,
}

impl ContextModel {
    /// Creates `contexts` independent adaptive models, each starting at
    /// the uniform distribution.
    pub fn new(contexts: usize) -> Self {
        ContextModel {
            zeros: vec![1; contexts],
            ones: vec![1; contexts],
        }
    }

    /// Number of contexts.
    pub fn len(&self) -> usize {
        self.zeros.len()
    }

    /// `true` when the model has no contexts.
    pub fn is_empty(&self) -> bool {
        self.zeros.is_empty()
    }

    /// Probability of a 0 bit in context `ctx`, as a fraction of 2^16,
    /// clamped away from certainty.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn p0(&self, ctx: usize) -> u16 {
        let z = u64::from(self.zeros[ctx]);
        let o = u64::from(self.ones[ctx]);
        let p = (z << P_BITS) / (z + o);
        p.clamp(1, (1 << P_BITS) - 1) as u16
    }

    /// Records an observed bit in context `ctx`, rescaling counts to keep
    /// adaptation responsive.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn update(&mut self, ctx: usize, bit: bool) {
        if bit {
            self.ones[ctx] += 1;
        } else {
            self.zeros[ctx] += 1;
        }
        if self.zeros[ctx] + self.ones[ctx] > 4096 {
            self.zeros[ctx] = self.zeros[ctx].div_ceil(2);
            self.ones[ctx] = self.ones[ctx].div_ceil(2);
        }
    }
}

/// Binary arithmetic encoder producing a packed bit vector.
#[derive(Debug, Clone)]
pub struct ArithEncoder {
    low: u64,
    high: u64,
    pending: u64,
    bytes: Vec<u8>,
    bit_count: u64,
    partial: u8,
    partial_len: u32,
}

impl Default for ArithEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl ArithEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        ArithEncoder {
            low: 0,
            high: TOP,
            pending: 0,
            bytes: Vec::new(),
            bit_count: 0,
            partial: 0,
            partial_len: 0,
        }
    }

    fn push_bit(&mut self, bit: bool) {
        self.partial = (self.partial << 1) | u8::from(bit);
        self.partial_len += 1;
        self.bit_count += 1;
        if self.partial_len == 8 {
            self.bytes.push(self.partial);
            self.partial = 0;
            self.partial_len = 0;
        }
    }

    fn emit(&mut self, bit: bool) {
        self.push_bit(bit);
        while self.pending > 0 {
            self.push_bit(!bit);
            self.pending -= 1;
        }
    }

    /// Encodes one bit with probability-of-zero `p0` (fraction of 2^16).
    pub fn encode(&mut self, bit: bool, p0: u16) {
        debug_assert!(p0 > 0);
        let range = self.high - self.low + 1;
        let split = (range * u64::from(p0)) >> P_BITS;
        let split = split.clamp(1, range - 1);
        let mid = self.low + split - 1;
        if bit {
            self.low = mid + 1;
        } else {
            self.high = mid;
        }
        loop {
            if self.high < HALF {
                self.emit(false);
            } else if self.low >= HALF {
                self.emit(true);
                self.low -= HALF;
                self.high -= HALF;
            } else if self.low >= QUARTER && self.high < THREE_QUARTER {
                self.pending += 1;
                self.low -= QUARTER;
                self.high -= QUARTER;
            } else {
                break;
            }
            self.low <<= 1;
            self.high = (self.high << 1) | 1;
        }
    }

    /// Flushes the coder and returns `(packed_bytes, bit_count)`.
    pub fn finish(mut self) -> (Vec<u8>, u64) {
        // Disambiguate the final interval.
        self.pending += 1;
        if self.low < QUARTER {
            self.emit(false);
        } else {
            self.emit(true);
        }
        if self.partial_len > 0 {
            let pad = 8 - self.partial_len;
            self.partial <<= pad;
            self.bytes.push(self.partial);
        }
        (self.bytes, self.bit_count)
    }
}

/// Binary arithmetic decoder over a packed bit vector.
#[derive(Debug, Clone)]
pub struct ArithDecoder<'a> {
    bytes: &'a [u8],
    bit_count: u64,
    pos: u64,
    low: u64,
    high: u64,
    value: u64,
}

impl<'a> ArithDecoder<'a> {
    /// Creates a decoder over `bit_count` bits packed MSB-first in
    /// `bytes`.
    pub fn new(bytes: &'a [u8], bit_count: u64) -> Self {
        let mut d = ArithDecoder {
            bytes,
            bit_count,
            pos: 0,
            low: 0,
            high: TOP,
            value: 0,
        };
        for _ in 0..PRECISION {
            d.value = (d.value << 1) | u64::from(d.next_bit());
        }
        d
    }

    /// Next input bit; zero past the end (standard convention).
    fn next_bit(&mut self) -> bool {
        if self.pos >= self.bit_count {
            self.pos += 1;
            return false;
        }
        let byte = self.bytes[(self.pos / 8) as usize];
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        bit != 0
    }

    /// Decodes one bit with probability-of-zero `p0` (must mirror the
    /// encoder's sequence of `p0` values exactly).
    pub fn decode(&mut self, p0: u16) -> bool {
        let range = self.high - self.low + 1;
        let split = (range * u64::from(p0)) >> P_BITS;
        let split = split.clamp(1, range - 1);
        let mid = self.low + split - 1;
        let bit = self.value > mid;
        if bit {
            self.low = mid + 1;
        } else {
            self.high = mid;
        }
        loop {
            if self.high < HALF {
                // nothing
            } else if self.low >= HALF {
                self.low -= HALF;
                self.high -= HALF;
                self.value -= HALF;
            } else if self.low >= QUARTER && self.high < THREE_QUARTER {
                self.low -= QUARTER;
                self.high -= QUARTER;
                self.value -= QUARTER;
            } else {
                break;
            }
            self.low <<= 1;
            self.high = (self.high << 1) | 1;
            self.value = (self.value << 1) | u64::from(self.next_bit());
        }
        bit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(bits: &[bool], p0_fn: impl Fn(usize) -> u16) {
        let mut enc = ArithEncoder::new();
        for (i, &b) in bits.iter().enumerate() {
            enc.encode(b, p0_fn(i));
        }
        let (bytes, n) = enc.finish();
        let mut dec = ArithDecoder::new(&bytes, n);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(dec.decode(p0_fn(i)), b, "bit {i}");
        }
    }

    #[test]
    fn uniform_probability_roundtrip() {
        let bits: Vec<bool> = (0..500).map(|i| (i * 7 + i * i) % 3 == 0).collect();
        roundtrip(&bits, |_| 1 << 15);
    }

    #[test]
    fn skewed_probability_roundtrip() {
        let bits: Vec<bool> = (0..500).map(|i| i % 17 == 0).collect();
        roundtrip(&bits, |_| 60_000); // strongly expect zeros
    }

    #[test]
    fn varying_probability_roundtrip() {
        let bits: Vec<bool> = (0..300).map(|i| i % 2 == 0).collect();
        roundtrip(&bits, |i| (1 + (i * 997) % 65_400) as u16);
    }

    #[test]
    fn extreme_probabilities_roundtrip() {
        let bits = vec![true, true, false, true, false, false, true];
        roundtrip(&bits, |i| if i % 2 == 0 { 1 } else { 65_535 });
    }

    #[test]
    fn skewed_input_compresses_below_one_bit_per_symbol() {
        // 1000 bits, ~6% ones, adaptive model: should code well under
        // 1000 bits.
        let bits: Vec<bool> = (0..1000).map(|i| i % 16 == 0).collect();
        let mut model = ContextModel::new(1);
        let mut enc = ArithEncoder::new();
        for &b in &bits {
            enc.encode(b, model.p0(0));
            model.update(0, b);
        }
        let (_, n) = enc.finish();
        assert!(n < 550, "coded {n} bits for 1000 skewed symbols");
    }

    #[test]
    fn adaptive_roundtrip_with_contexts() {
        // Context = previous bit; strong correlation.
        let bits: Vec<bool> = (0..800).map(|i| (i / 50) % 2 == 0).collect();
        let mut enc_model = ContextModel::new(2);
        let mut enc = ArithEncoder::new();
        let mut prev = false;
        for &b in &bits {
            let ctx = usize::from(prev);
            enc.encode(b, enc_model.p0(ctx));
            enc_model.update(ctx, b);
            prev = b;
        }
        let (bytes, n) = enc.finish();

        let mut dec_model = ContextModel::new(2);
        let mut dec = ArithDecoder::new(&bytes, n);
        let mut prev = false;
        for (i, &b) in bits.iter().enumerate() {
            let ctx = usize::from(prev);
            let got = dec.decode(dec_model.p0(ctx));
            dec_model.update(ctx, got);
            assert_eq!(got, b, "bit {i}");
            prev = got;
        }
    }

    #[test]
    fn empty_message() {
        let enc = ArithEncoder::new();
        let (bytes, n) = enc.finish();
        assert!(n <= 16);
        let _ = ArithDecoder::new(&bytes, n); // must not panic
    }

    #[test]
    fn context_model_adapts() {
        let mut m = ContextModel::new(1);
        let start = m.p0(0);
        for _ in 0..100 {
            m.update(0, false);
        }
        assert!(m.p0(0) > start);
        for _ in 0..500 {
            m.update(0, true);
        }
        assert!(m.p0(0) < start);
    }

    #[test]
    fn context_counts_rescale_without_breaking_bounds() {
        let mut m = ContextModel::new(1);
        for _ in 0..100_000 {
            m.update(0, true);
        }
        let p = m.p0(0);
        assert!((1..1 << 15).contains(&p));
    }
}
