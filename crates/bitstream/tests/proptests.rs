//! Property-based tests: arbitrary field sequences written with
//! [`BitWriter`] read back identically with [`BitReader`].

use m4ps_bitstream::{BitReader, BitWriter};
use proptest::prelude::*;

/// A single (value, width) field with the value constrained to the width.
fn field_strategy() -> impl Strategy<Value = (u32, u32)> {
    (1u32..=32).prop_flat_map(|n| {
        let max = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
        (0..=max, Just(n))
    })
}

fn signed_field_strategy() -> impl Strategy<Value = (i32, u32)> {
    (1u32..=32).prop_flat_map(|n| {
        let lo = -(1i64 << (n - 1));
        let hi = (1i64 << (n - 1)) - 1;
        ((lo as i32)..=(hi as i32), Just(n))
    })
}

proptest! {
    #[test]
    fn unsigned_fields_roundtrip(fields in prop::collection::vec(field_strategy(), 0..64)) {
        let mut w = BitWriter::new();
        for &(v, n) in &fields {
            w.put_bits(v, n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &fields {
            prop_assert_eq!(r.get_bits(n).unwrap(), v);
        }
    }

    #[test]
    fn signed_fields_roundtrip(fields in prop::collection::vec(signed_field_strategy(), 0..64)) {
        let mut w = BitWriter::new();
        for &(v, n) in &fields {
            w.put_signed(v, n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &fields {
            prop_assert_eq!(r.get_signed(n).unwrap(), v);
        }
    }

    #[test]
    fn bit_len_equals_sum_of_widths(fields in prop::collection::vec(field_strategy(), 0..64)) {
        let mut w = BitWriter::new();
        let mut total = 0u64;
        for &(v, n) in &fields {
            w.put_bits(v, n);
            total += u64::from(n);
        }
        prop_assert_eq!(w.bit_len(), total);
    }

    #[test]
    fn aligned_startcodes_found_after_arbitrary_payload(
        payload in prop::collection::vec(field_strategy(), 0..32),
    ) {
        use m4ps_bitstream::StartCode;
        let mut w = BitWriter::new();
        for &(v, n) in &payload {
            // Keep the payload from accidentally containing a 00 00 01 run
            // by forcing the top bit of every byte-wide chunk; simpler: use
            // values with the high bit set where width >= 8.
            if n >= 8 {
                w.put_bits(v | (1 << (n - 1)), n);
            } else {
                w.put_bits(v, n);
            }
        }
        w.put_start_code(StartCode::VideoObjectPlane);
        w.put_bits(0xaa, 8);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        // The first high-bit trick does not fully preclude embedded
        // startcode patterns, so scan until the VOP code specifically.
        loop {
            let code = r.next_start_code().unwrap();
            if code == StartCode::VideoObjectPlane.value() && r.peek_bits(8) == 0xaa {
                break;
            }
        }
        prop_assert_eq!(r.get_bits(8).unwrap(), 0xaa);
    }

    #[test]
    fn skip_then_read_matches_direct_read(
        fields in prop::collection::vec(field_strategy(), 2..32),
        skip_count in 1usize..8,
    ) {
        let mut w = BitWriter::new();
        for &(v, n) in &fields {
            w.put_bits(v, n);
        }
        let bytes = w.into_bytes();
        let skip_count = skip_count.min(fields.len() - 1);
        let skip_bits: u64 = fields[..skip_count].iter().map(|&(_, n)| u64::from(n)).sum();

        let mut direct = BitReader::new(&bytes);
        for &(_, n) in &fields[..skip_count] {
            direct.get_bits(n).unwrap();
        }
        let mut skipped = BitReader::new(&bytes);
        skipped.skip_bits(skip_bits).unwrap();

        let (v, n) = fields[skip_count];
        prop_assert_eq!(direct.get_bits(n).unwrap(), v);
        prop_assert_eq!(skipped.get_bits(n).unwrap(), v);
    }
}
