//! Property-based tests: arbitrary field sequences written with
//! [`BitWriter`] read back identically with [`BitReader`].
//!
//! Runs on the in-tree [`m4ps_testkit::prop`] harness; failures print a
//! replayable seed (`M4PS_PROP_REPLAY=0x...`).

use m4ps_bitstream::{BitReader, BitWriter};
use m4ps_testkit::prop::{check, check_pinned, Config};
use m4ps_testkit::prop_assert_eq;
use m4ps_testkit::rng::Rng;

/// A single (value, width) field with the value constrained to the width.
fn field(rng: &mut Rng) -> (u32, u32) {
    let n = rng.gen_range(1u32..=32);
    let max = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    (rng.gen_range(0..=max), n)
}

fn signed_field(rng: &mut Rng) -> (i32, u32) {
    let n = rng.gen_range(1u32..=32);
    let lo = -(1i64 << (n - 1));
    let hi = (1i64 << (n - 1)) - 1;
    (rng.gen_range(lo as i32..=hi as i32), n)
}

#[test]
fn unsigned_fields_roundtrip() {
    check(
        "unsigned_fields_roundtrip",
        &Config::default(),
        |rng| rng.vec(0..64, field),
        |fields| {
            let mut w = BitWriter::new();
            for &(v, n) in fields {
                w.put_bits(v, n);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &(v, n) in fields {
                prop_assert_eq!(r.get_bits(n).unwrap(), v);
            }
            Ok(())
        },
    );
}

#[test]
fn signed_fields_roundtrip() {
    // Pinned: proptest's historical shrink for this property —
    // a single-field sequence of -1 at width 31
    // (was `cc 04c0257f...` in proptests.proptest-regressions).
    check_pinned(
        "signed_fields_roundtrip",
        &Config::default(),
        vec![vec![(-1, 31)]],
        |rng| rng.vec(0..64, signed_field),
        |fields| {
            let mut w = BitWriter::new();
            for &(v, n) in fields {
                w.put_signed(v, n);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &(v, n) in fields {
                prop_assert_eq!(r.get_signed(n).unwrap(), v);
            }
            Ok(())
        },
    );
}

/// The case `signed_fields_roundtrip`'s pinned regression came from,
/// kept as an explicit named test so it stays visible even if the
/// property's generator changes shape.
#[test]
fn regression_minus_one_at_width_31_roundtrips() {
    let mut w = BitWriter::new();
    w.put_signed(-1, 31);
    let bytes = w.into_bytes();
    let mut r = BitReader::new(&bytes);
    assert_eq!(r.get_signed(31).unwrap(), -1);
}

#[test]
fn bit_len_equals_sum_of_widths() {
    check(
        "bit_len_equals_sum_of_widths",
        &Config::default(),
        |rng| rng.vec(0..64, field),
        |fields| {
            let mut w = BitWriter::new();
            let mut total = 0u64;
            for &(v, n) in fields {
                w.put_bits(v, n);
                total += u64::from(n);
            }
            prop_assert_eq!(w.bit_len(), total);
            Ok(())
        },
    );
}

#[test]
fn aligned_startcodes_found_after_arbitrary_payload() {
    use m4ps_bitstream::StartCode;
    check(
        "aligned_startcodes_found_after_arbitrary_payload",
        &Config::default(),
        |rng| rng.vec(0..32, field),
        |payload| {
            let mut w = BitWriter::new();
            for &(v, n) in payload {
                // Keep the payload from accidentally containing a 00 00 01 run
                // by forcing the top bit of every byte-wide chunk; simpler: use
                // values with the high bit set where width >= 8.
                if n >= 8 {
                    w.put_bits(v | (1 << (n - 1)), n);
                } else {
                    w.put_bits(v, n);
                }
            }
            w.put_start_code(StartCode::VideoObjectPlane);
            w.put_bits(0xaa, 8);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            // The first high-bit trick does not fully preclude embedded
            // startcode patterns, so scan until the VOP code specifically.
            loop {
                let code = r.next_start_code().unwrap();
                if code == StartCode::VideoObjectPlane.value() && r.peek_bits(8) == 0xaa {
                    break;
                }
            }
            prop_assert_eq!(r.get_bits(8).unwrap(), 0xaa);
            Ok(())
        },
    );
}

#[test]
fn skip_then_read_matches_direct_read() {
    check(
        "skip_then_read_matches_direct_read",
        &Config::default(),
        |rng| (rng.vec(2..32, field), rng.gen_range(1usize..8)),
        |(fields, skip_count)| {
            let mut w = BitWriter::new();
            for &(v, n) in fields {
                w.put_bits(v, n);
            }
            let bytes = w.into_bytes();
            let skip_count = (*skip_count).min(fields.len() - 1);
            let skip_bits: u64 = fields[..skip_count]
                .iter()
                .map(|&(_, n)| u64::from(n))
                .sum();

            let mut direct = BitReader::new(&bytes);
            for &(_, n) in &fields[..skip_count] {
                direct.get_bits(n).unwrap();
            }
            let mut skipped = BitReader::new(&bytes);
            skipped.skip_bits(skip_bits).unwrap();

            let (v, n) = fields[skip_count];
            prop_assert_eq!(direct.get_bits(n).unwrap(), v);
            prop_assert_eq!(skipped.get_bits(n).unwrap(), v);
            Ok(())
        },
    );
}
