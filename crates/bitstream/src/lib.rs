//! Bit-level I/O primitives for the MPEG-4 visual bitstream.
//!
//! MPEG-4 (ISO/IEC 14496-2) serializes everything — headers, motion
//! vectors, DCT coefficients, shape data — as variable-length bit fields
//! delimited by byte-aligned *startcodes*. This crate provides the
//! [`BitWriter`] / [`BitReader`] pair used by the codec, plus startcode
//! emission and scanning.
//!
//! # Examples
//!
//! ```
//! use m4ps_bitstream::{BitReader, BitWriter};
//!
//! # fn main() -> Result<(), m4ps_bitstream::BitstreamError> {
//! let mut w = BitWriter::new();
//! w.put_bits(0b101, 3);
//! w.put_bits(0xfeed, 16);
//! let bytes = w.into_bytes();
//!
//! let mut r = BitReader::new(&bytes);
//! assert_eq!(r.get_bits(3)?, 0b101);
//! assert_eq!(r.get_bits(16)?, 0xfeed);
//! # Ok(())
//! # }
//! ```

mod error;
mod reader;
mod startcode;
mod writer;

pub use error::BitstreamError;
pub use reader::BitReader;
pub use startcode::StartCode;
pub use writer::BitWriter;

/// Maximum number of bits readable or writable in a single call.
pub const MAX_FIELD_BITS: u32 = 32;
