use crate::error::BitstreamError;
use crate::startcode::StartCode;

/// Reads bits most-significant-first from a byte slice.
///
/// # Examples
///
/// ```
/// use m4ps_bitstream::BitReader;
///
/// # fn main() -> Result<(), m4ps_bitstream::BitstreamError> {
/// let mut r = BitReader::new(&[0b1011_0010]);
/// assert_eq!(r.get_bits(4)?, 0b1011);
/// assert!(!r.get_bit()?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Absolute bit cursor from the start of `bytes`.
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Total number of bits in the underlying slice.
    pub fn total_bits(&self) -> u64 {
        self.bytes.len() as u64 * 8
    }

    /// Bits remaining from the cursor to the end of the stream.
    pub fn remaining_bits(&self) -> u64 {
        self.total_bits() - self.pos
    }

    /// Current absolute bit position.
    pub fn bit_pos(&self) -> u64 {
        self.pos
    }

    /// `true` when the cursor sits on a byte boundary.
    pub fn is_aligned(&self) -> bool {
        self.pos.is_multiple_of(8)
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::UnexpectedEnd`] at end of stream.
    pub fn get_bit(&mut self) -> Result<bool, BitstreamError> {
        if self.pos >= self.total_bits() {
            return Err(BitstreamError::UnexpectedEnd {
                requested: 1,
                remaining: 0,
            });
        }
        let byte = self.bytes[(self.pos / 8) as usize];
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Ok(bit != 0)
    }

    /// Reads `n` bits as an unsigned value, most significant first.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::InvalidFieldWidth`] if `n` is outside
    /// `1..=32`, or [`BitstreamError::UnexpectedEnd`] if fewer than `n`
    /// bits remain.
    pub fn get_bits(&mut self, n: u32) -> Result<u32, BitstreamError> {
        if !(1..=crate::MAX_FIELD_BITS).contains(&n) {
            return Err(BitstreamError::InvalidFieldWidth(n));
        }
        if self.remaining_bits() < u64::from(n) {
            return Err(BitstreamError::UnexpectedEnd {
                requested: n,
                remaining: self.remaining_bits(),
            });
        }
        let mut v: u32 = 0;
        for _ in 0..n {
            v = (v << 1) | u32::from(self.get_bit()?);
        }
        Ok(v)
    }

    /// Reads `n` bits as a two's-complement signed value.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BitReader::get_bits`].
    pub fn get_signed(&mut self, n: u32) -> Result<i32, BitstreamError> {
        let raw = self.get_bits(n)?;
        if n == 32 {
            return Ok(raw as i32);
        }
        let sign = 1u32 << (n - 1);
        if raw & sign != 0 {
            Ok((i64::from(raw) - (1i64 << n)) as i32)
        } else {
            Ok(raw as i32)
        }
    }

    /// Returns the next `n` bits without consuming them, zero-extended if
    /// fewer remain.
    pub fn peek_bits(&self, n: u32) -> u32 {
        let mut copy = self.clone();
        let mut v = 0u32;
        for _ in 0..n {
            v <<= 1;
            if let Ok(bit) = copy.get_bit() {
                v |= u32::from(bit);
            }
        }
        v
    }

    /// Skips `n` bits.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::UnexpectedEnd`] if fewer than `n` bits
    /// remain.
    pub fn skip_bits(&mut self, n: u64) -> Result<(), BitstreamError> {
        if self.remaining_bits() < n {
            return Err(BitstreamError::UnexpectedEnd {
                requested: n.min(u64::from(u32::MAX)) as u32,
                remaining: self.remaining_bits(),
            });
        }
        self.pos += n;
        Ok(())
    }

    /// Advances to the next byte boundary (no-op when aligned).
    pub fn align(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }

    /// Moves the cursor to the absolute bit position `bit`. The
    /// slice-parallel decoder uses this to jump the coordinator's
    /// reader to positions its slice tasks (each holding a clone)
    /// established independently.
    ///
    /// # Panics
    ///
    /// Panics when `bit` lies past the end of the stream.
    pub fn seek_to(&mut self, bit: u64) {
        assert!(bit <= self.total_bits(), "seek past end of stream");
        self.pos = bit;
    }

    /// Consumes MPEG-4 stuffing (`0` then `1`s) up to the byte boundary,
    /// if the upcoming bits look like stuffing; otherwise just aligns.
    pub fn skip_stuffing(&mut self) {
        if self.is_aligned() {
            // A full aligned stuffing byte 0b0111_1111 may precede a
            // startcode; consume it if present.
            if self.remaining_bits() >= 8 && self.peek_bits(8) == 0b0111_1111 {
                let _ = self.skip_bits(8);
            }
            return;
        }
        self.align();
    }

    /// Scans forward for the next byte-aligned startcode prefix
    /// (`00 00 01`) and returns the full 32-bit startcode, leaving the
    /// cursor positioned *after* it.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::StartCodeNotFound`] if the stream ends
    /// without a startcode.
    pub fn next_start_code(&mut self) -> Result<u32, BitstreamError> {
        self.align();
        let mut byte = (self.pos / 8) as usize;
        while byte + 4 <= self.bytes.len() {
            if self.bytes[byte] == 0 && self.bytes[byte + 1] == 0 && self.bytes[byte + 2] == 1 {
                let code = u32::from_be_bytes([
                    self.bytes[byte],
                    self.bytes[byte + 1],
                    self.bytes[byte + 2],
                    self.bytes[byte + 3],
                ]);
                self.pos = (byte as u64 + 4) * 8;
                return Ok(code);
            }
            byte += 1;
        }
        self.pos = self.total_bits();
        Err(BitstreamError::StartCodeNotFound)
    }

    /// Scans forward for the next byte-aligned 16-bit `pattern`,
    /// leaving the cursor positioned *after* it. Returns `false` (with
    /// the cursor at end of stream) when the pattern does not occur.
    /// Used for resynchronization markers.
    pub fn scan_aligned_u16(&mut self, pattern: u16) -> bool {
        self.align();
        let mut byte = (self.pos / 8) as usize;
        let hi = (pattern >> 8) as u8;
        let lo = pattern as u8;
        while byte + 2 <= self.bytes.len() {
            if self.bytes[byte] == hi && self.bytes[byte + 1] == lo {
                self.pos = (byte as u64 + 2) * 8;
                return true;
            }
            byte += 1;
        }
        self.pos = self.total_bits();
        false
    }

    /// Like [`BitReader::next_start_code`] but requires the specific
    /// `expected` code at the current aligned position.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::StartCodeMismatch`] when a different code
    /// is present, or [`BitstreamError::UnexpectedEnd`] near end of stream.
    pub fn expect_start_code(&mut self, expected: StartCode) -> Result<(), BitstreamError> {
        self.align();
        let found = self.get_bits(32)?;
        if found != expected.value() {
            return Err(BitstreamError::StartCodeMismatch {
                expected: expected.value(),
                found,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::BitWriter;

    #[test]
    fn reads_msb_first() {
        let mut r = BitReader::new(&[0b1100_0001]);
        assert!(r.get_bit().unwrap());
        assert!(r.get_bit().unwrap());
        assert_eq!(r.get_bits(6).unwrap(), 1);
    }

    #[test]
    fn end_of_stream_errors() {
        let mut r = BitReader::new(&[0xff]);
        r.get_bits(8).unwrap();
        assert_eq!(
            r.get_bit(),
            Err(BitstreamError::UnexpectedEnd {
                requested: 1,
                remaining: 0
            })
        );
    }

    #[test]
    fn field_width_validation() {
        let mut r = BitReader::new(&[0, 0, 0, 0, 0]);
        assert_eq!(r.get_bits(0), Err(BitstreamError::InvalidFieldWidth(0)));
        assert_eq!(r.get_bits(33), Err(BitstreamError::InvalidFieldWidth(33)));
        assert_eq!(r.get_bits(32).unwrap(), 0);
    }

    #[test]
    fn signed_readback() {
        let mut w = BitWriter::new();
        for v in [-16i32, -1, 0, 1, 15] {
            w.put_signed(v, 5);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for v in [-16i32, -1, 0, 1, 15] {
            assert_eq!(r.get_signed(5).unwrap(), v);
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut r = BitReader::new(&[0b1010_1010]);
        assert_eq!(r.peek_bits(4), 0b1010);
        assert_eq!(r.bit_pos(), 0);
        assert_eq!(r.get_bits(4).unwrap(), 0b1010);
    }

    #[test]
    fn peek_past_end_zero_extends() {
        let r = BitReader::new(&[0b1111_1111]);
        assert_eq!(r.peek_bits(12), 0b1111_1111_0000);
    }

    #[test]
    fn scan_finds_startcode_after_garbage() {
        let bytes = [0xde, 0xad, 0x00, 0x00, 0x01, 0xb6, 0x42];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.next_start_code().unwrap(), 0x0000_01b6);
        assert_eq!(r.get_bits(8).unwrap(), 0x42);
    }

    #[test]
    fn scan_without_startcode_errors() {
        let mut r = BitReader::new(&[1, 2, 3, 4, 5]);
        assert_eq!(r.next_start_code(), Err(BitstreamError::StartCodeNotFound));
    }

    #[test]
    fn expect_start_code_mismatch() {
        let bytes = [0x00, 0x00, 0x01, 0xb0];
        let mut r = BitReader::new(&bytes);
        let err = r
            .expect_start_code(StartCode::VideoObjectPlane)
            .unwrap_err();
        assert_eq!(
            err,
            BitstreamError::StartCodeMismatch {
                expected: 0x0000_01b6,
                found: 0x0000_01b0
            }
        );
    }

    #[test]
    fn writer_reader_roundtrip_mixed_fields() {
        let mut w = BitWriter::new();
        w.put_bits(0x3, 2);
        w.put_signed(-100, 9);
        w.put_bits(0xdead_beef & 0xffff, 16);
        w.put_bit(true);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(2).unwrap(), 0x3);
        assert_eq!(r.get_signed(9).unwrap(), -100);
        assert_eq!(r.get_bits(16).unwrap(), 0xbeef);
        assert!(r.get_bit().unwrap());
    }

    #[test]
    fn aligned_u16_scan_finds_pattern_and_positions_after() {
        let bytes = [0xaa, 0x5a, 0x3c, 0x77];
        let mut r = BitReader::new(&bytes);
        assert!(r.scan_aligned_u16(0x5a3c));
        assert_eq!(r.get_bits(8).unwrap(), 0x77);
        let mut r2 = BitReader::new(&bytes);
        assert!(!r2.scan_aligned_u16(0xdead));
        assert_eq!(r2.remaining_bits(), 0);
    }

    #[test]
    fn aligned_u16_scan_is_byte_aligned_only() {
        // The pattern exists only at a non-byte offset: must not match.
        // 0x5A3C shifted by 4 bits: bytes a5 a3 c0.
        let bytes = [0xa5, 0xa3, 0xc0];
        let mut r = BitReader::new(&bytes);
        assert!(!r.scan_aligned_u16(0x5a3c));
    }

    #[test]
    fn skip_stuffing_consumes_aligned_stuffing_byte() {
        let mut w = BitWriter::new();
        w.put_bits(0xaa, 8);
        w.stuff_to_alignment();
        w.put_bits(0x55, 8);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        r.get_bits(8).unwrap();
        r.skip_stuffing();
        assert_eq!(r.get_bits(8).unwrap(), 0x55);
    }
}
