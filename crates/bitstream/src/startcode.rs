/// Byte-aligned startcodes used by the MPEG-4 visual bitstream
/// (ISO/IEC 14496-2 §6.2.1, abbreviated to the codes this codec emits).
///
/// All startcodes share the 24-bit prefix `0x000001`; the final byte
/// selects the syntax element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StartCode {
    /// `video_object_start_code` base (0x00..0x1f select the VO id; we use
    /// the base and carry the id in the header).
    VideoObject,
    /// `video_object_layer_start_code` base (0x20..0x2f).
    VideoObjectLayer,
    /// `visual_object_sequence_start_code` (0xb0).
    VisualObjectSequence,
    /// `visual_object_sequence_end_code` (0xb1).
    VisualObjectSequenceEnd,
    /// `group_of_vop_start_code` (0xb3).
    GroupOfVop,
    /// `visual_object_start_code` (0xb5).
    VisualObject,
    /// `vop_start_code` (0xb6).
    VideoObjectPlane,
}

impl StartCode {
    /// The full 32-bit startcode value (prefix `0x000001` plus code byte).
    pub fn value(self) -> u32 {
        0x0000_0100
            | u32::from(match self {
                StartCode::VideoObject => 0x00u8,
                StartCode::VideoObjectLayer => 0x20,
                StartCode::VisualObjectSequence => 0xb0,
                StartCode::VisualObjectSequenceEnd => 0xb1,
                StartCode::GroupOfVop => 0xb3,
                StartCode::VisualObject => 0xb5,
                StartCode::VideoObjectPlane => 0xb6,
            })
    }

    /// Maps a full 32-bit value back to a known startcode, if any.
    pub fn from_value(value: u32) -> Option<StartCode> {
        if value & 0xffff_ff00 != 0x0000_0100 {
            return None;
        }
        match (value & 0xff) as u8 {
            0x00 => Some(StartCode::VideoObject),
            0x20 => Some(StartCode::VideoObjectLayer),
            0xb0 => Some(StartCode::VisualObjectSequence),
            0xb1 => Some(StartCode::VisualObjectSequenceEnd),
            0xb3 => Some(StartCode::GroupOfVop),
            0xb5 => Some(StartCode::VisualObject),
            0xb6 => Some(StartCode::VideoObjectPlane),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_have_mpeg_prefix() {
        for code in [
            StartCode::VideoObject,
            StartCode::VideoObjectLayer,
            StartCode::VisualObjectSequence,
            StartCode::VisualObjectSequenceEnd,
            StartCode::GroupOfVop,
            StartCode::VisualObject,
            StartCode::VideoObjectPlane,
        ] {
            assert_eq!(code.value() & 0xffff_ff00, 0x0000_0100);
            assert_eq!(StartCode::from_value(code.value()), Some(code));
        }
    }

    #[test]
    fn vop_code_matches_standard() {
        assert_eq!(StartCode::VideoObjectPlane.value(), 0x0000_01b6);
        assert_eq!(StartCode::VisualObjectSequence.value(), 0x0000_01b0);
    }

    #[test]
    fn unknown_values_rejected() {
        assert_eq!(StartCode::from_value(0x0000_01b7), None);
        assert_eq!(StartCode::from_value(0x0100_01b6), None);
    }
}
