use std::error::Error;
use std::fmt;

/// Error produced by bitstream reading operations.
///
/// Writing never fails (the writer grows its buffer); reading fails when
/// the stream ends early, a field width is out of range, or an expected
/// startcode is absent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitstreamError {
    /// The reader ran out of bits while `n` more were requested.
    UnexpectedEnd {
        /// Number of bits that were requested.
        requested: u32,
        /// Number of bits that remained in the stream.
        remaining: u64,
    },
    /// A field width outside `1..=32` was requested.
    InvalidFieldWidth(u32),
    /// The next byte-aligned bits did not form the expected startcode.
    StartCodeMismatch {
        /// The startcode value that was expected.
        expected: u32,
        /// The value actually present in the stream.
        found: u32,
    },
    /// No startcode was found before the end of the stream.
    StartCodeNotFound,
    /// A variable-length code did not match any table entry.
    InvalidVlc {
        /// Human-readable name of the VLC table being decoded.
        table: &'static str,
    },
}

impl fmt::Display for BitstreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitstreamError::UnexpectedEnd {
                requested,
                remaining,
            } => write!(
                f,
                "unexpected end of bitstream: requested {requested} bits, {remaining} remain"
            ),
            BitstreamError::InvalidFieldWidth(n) => {
                write!(f, "invalid bit-field width {n} (must be 1..=32)")
            }
            BitstreamError::StartCodeMismatch { expected, found } => write!(
                f,
                "startcode mismatch: expected {expected:#010x}, found {found:#010x}"
            ),
            BitstreamError::StartCodeNotFound => write!(f, "no startcode before end of stream"),
            BitstreamError::InvalidVlc { table } => {
                write!(f, "invalid variable-length code in table {table}")
            }
        }
    }
}

impl Error for BitstreamError {}
