use crate::startcode::StartCode;

/// Accumulates bits most-significant-first into a growable byte buffer.
///
/// This mirrors the big-endian bit order used by all MPEG bitstreams.
///
/// # Examples
///
/// ```
/// use m4ps_bitstream::BitWriter;
///
/// let mut w = BitWriter::new();
/// w.put_bit(true);
/// w.put_bits(0, 7);
/// assert_eq!(w.into_bytes(), vec![0b1000_0000]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits accumulated in the partial byte, MSB-first. Always < 8.
    pending: u8,
    pending_len: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        BitWriter {
            bytes: Vec::with_capacity(capacity),
            pending: 0,
            pending_len: 0,
        }
    }

    /// Appends a single bit.
    pub fn put_bit(&mut self, bit: bool) {
        self.pending = (self.pending << 1) | u8::from(bit);
        self.pending_len += 1;
        if self.pending_len == 8 {
            self.bytes.push(self.pending);
            self.pending = 0;
            self.pending_len = 0;
        }
    }

    /// Appends the low `n` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or greater than 32, or if `value` does not fit
    /// in `n` bits.
    pub fn put_bits(&mut self, value: u32, n: u32) {
        assert!(
            (1..=crate::MAX_FIELD_BITS).contains(&n),
            "field width {n} out of range"
        );
        if n < 32 {
            assert!(
                value < (1u32 << n),
                "value {value:#x} does not fit in {n} bits"
            );
        }
        for shift in (0..n).rev() {
            self.put_bit((value >> shift) & 1 != 0);
        }
    }

    /// Appends a signed value as `n` bits two's-complement.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside the signed range of `n` bits.
    pub fn put_signed(&mut self, value: i32, n: u32) {
        assert!((1..=crate::MAX_FIELD_BITS).contains(&n));
        let lo = -(1i64 << (n - 1));
        let hi = (1i64 << (n - 1)) - 1;
        assert!(
            (lo..=hi).contains(&i64::from(value)),
            "signed value {value} does not fit in {n} bits"
        );
        let mask = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
        self.put_bits((value as u32) & mask, n);
    }

    /// Pads with zero bits up to the next byte boundary.
    ///
    /// Returns the number of stuffing bits written (0–7).
    pub fn align(&mut self) -> u32 {
        let pad = (8 - self.pending_len) % 8;
        for _ in 0..pad {
            self.put_bit(false);
        }
        pad
    }

    /// MPEG-4 `next_start_code()` stuffing: a zero bit followed by ones up
    /// to the byte boundary. Always writes at least one bit if unaligned;
    /// if already aligned, writes a full `0111_1111` stuffing byte.
    pub fn stuff_to_alignment(&mut self) {
        self.put_bit(false);
        while self.pending_len != 0 {
            self.put_bit(true);
        }
    }

    /// Writes a byte-aligned startcode (aligning first if necessary).
    pub fn put_start_code(&mut self, code: StartCode) {
        self.align();
        let v = code.value();
        self.bytes
            .extend_from_slice(&[(v >> 24) as u8, (v >> 16) as u8, (v >> 8) as u8, v as u8]);
    }

    /// Number of whole bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.bytes.len() as u64 * 8 + u64::from(self.pending_len)
    }

    /// `true` when the writer is at a byte boundary.
    pub fn is_aligned(&self) -> bool {
        self.pending_len == 0
    }

    /// Finishes the stream, zero-padding the final partial byte, and
    /// returns the underlying bytes.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.align();
        self.bytes
    }

    /// Borrow of the completed bytes written so far (excludes any pending
    /// partial byte).
    pub fn completed_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_pack_msb_first() {
        let mut w = BitWriter::new();
        for bit in [true, false, true, true, false, false, true, false] {
            w.put_bit(bit);
        }
        assert_eq!(w.into_bytes(), vec![0b1011_0010]);
    }

    #[test]
    fn multibit_fields_cross_byte_boundaries() {
        let mut w = BitWriter::new();
        w.put_bits(0b1_0110, 5);
        w.put_bits(0b101_0101_0101, 11);
        assert_eq!(w.into_bytes(), vec![0b1011_0101, 0b0101_0101]);
    }

    #[test]
    fn signed_roundtrip_negative() {
        let mut w = BitWriter::new();
        w.put_signed(-3, 5);
        let bytes = w.into_bytes();
        assert_eq!(bytes[0] >> 3, 0b11101);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        let mut w = BitWriter::new();
        w.put_bits(8, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_panics() {
        let mut w = BitWriter::new();
        w.put_bits(0, 0);
    }

    #[test]
    fn align_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.put_bits(0b111, 3);
        assert_eq!(w.align(), 5);
        assert!(w.is_aligned());
        assert_eq!(w.into_bytes(), vec![0b1110_0000]);
    }

    #[test]
    fn align_on_boundary_is_noop() {
        let mut w = BitWriter::new();
        w.put_bits(0xab, 8);
        assert_eq!(w.align(), 0);
        assert_eq!(w.bit_len(), 8);
    }

    #[test]
    fn stuffing_writes_zero_then_ones() {
        let mut w = BitWriter::new();
        w.put_bits(0b10, 2);
        w.stuff_to_alignment();
        assert_eq!(w.into_bytes(), vec![0b1001_1111]);
    }

    #[test]
    fn stuffing_on_aligned_stream_writes_full_byte() {
        let mut w = BitWriter::new();
        w.put_bits(0xff, 8);
        w.stuff_to_alignment();
        assert_eq!(w.into_bytes(), vec![0xff, 0b0111_1111]);
    }

    #[test]
    fn startcode_is_byte_aligned() {
        let mut w = BitWriter::new();
        w.put_bits(0b1, 1);
        w.put_start_code(StartCode::VideoObjectPlane);
        let bytes = w.into_bytes();
        assert_eq!(&bytes[1..5], &[0x00, 0x00, 0x01, 0xb6]);
    }

    #[test]
    fn bit_len_tracks_pending_bits() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.put_bits(0b101, 3);
        assert_eq!(w.bit_len(), 3);
        w.put_bits(0x1ff, 9);
        assert_eq!(w.bit_len(), 12);
    }
}
