//! Fixed-point integer DCT/IDCT.
//!
//! The reference implementations of the era ran an integer DCT (float
//! units on the R10000 were precious); this is a 13-bit fixed-point
//! separable implementation whose results track the double-precision
//! transform to within a couple of counts on 9-bit inputs. The codec's
//! arithmetic stays the float-backed [`crate::forward_dct`] pair
//! (encoder/decoder bit-exactness is what matters there); this module
//! exists for the kernel benches and as a drop-in for integer-only
//! targets.

use crate::dct::CoefBlock;
use crate::{Block, BLOCK};

/// Fixed-point fractional bits.
const FRAC: u32 = 13;
const ONE: i64 = 1 << FRAC;

/// `round(cos((2n+1)·k·π/16) · 2^13)`.
fn cos_fp() -> [[i64; BLOCK]; BLOCK] {
    let mut t = [[0i64; BLOCK]; BLOCK];
    for (k, row) in t.iter_mut().enumerate() {
        for (n, v) in row.iter_mut().enumerate() {
            let c = (std::f64::consts::PI * (2.0 * n as f64 + 1.0) * k as f64 / 16.0).cos();
            *v = (c * ONE as f64).round() as i64;
        }
    }
    t
}

/// `round(alpha(k) · 2^13)`: √(1/8) for k = 0, √(2/8) = 1/2 for k > 0.
fn scale_fp(k: usize) -> i64 {
    if k == 0 {
        ((1.0f64 / 8.0).sqrt() * ONE as f64).round() as i64
    } else {
        ONE / 2
    }
}

/// Forward 8×8 DCT in 64-bit fixed-point arithmetic.
// Index-symmetric k/n loops mirror the DCT sums; iterators would obscure
// which axis each index walks.
#[allow(clippy::needless_range_loop)]
pub fn forward_dct_int(block: &Block) -> CoefBlock {
    let cos = cos_fp();
    // Rows: tmp scaled by 2^13.
    let mut tmp = [0i64; 64];
    for r in 0..BLOCK {
        for k in 0..BLOCK {
            let mut acc: i64 = 0;
            for n in 0..BLOCK {
                acc += i64::from(block.data[r * BLOCK + n]) * cos[k][n];
            }
            tmp[r * BLOCK + k] = (scale_fp(k) * acc) >> FRAC; // scaled 2^13
        }
    }
    // Columns: result scaled by 2^39 before the final shift.
    let mut out = CoefBlock::default();
    for c in 0..BLOCK {
        for k in 0..BLOCK {
            let mut acc: i64 = 0;
            for n in 0..BLOCK {
                acc += tmp[n * BLOCK + c] * cos[k][n]; // scaled 2^26
            }
            let v = scale_fp(k) * acc; // scaled 2^39
            let rounded = (v + (1 << (3 * FRAC - 1))) >> (3 * FRAC);
            out.data[k * BLOCK + c] = rounded.clamp(-32768, 32767) as i16;
        }
    }
    out
}

/// Inverse 8×8 DCT in 64-bit fixed-point arithmetic.
#[allow(clippy::needless_range_loop)]
pub fn inverse_dct_int(coefs: &CoefBlock) -> Block {
    let cos = cos_fp();
    // Columns first, mirroring the float reference.
    let mut tmp = [0i64; 64];
    for c in 0..BLOCK {
        for n in 0..BLOCK {
            let mut acc: i64 = 0;
            for k in 0..BLOCK {
                // scale · coef · cos, scaled 2^26 — full precision kept.
                acc += (scale_fp(k) * i64::from(coefs.data[k * BLOCK + c]) * cos[k][n]) >> FRAC;
            }
            tmp[n * BLOCK + c] = acc; // scaled 2^13
        }
    }
    let mut out = Block::default();
    for r in 0..BLOCK {
        for n in 0..BLOCK {
            let mut acc: i64 = 0;
            for k in 0..BLOCK {
                acc += (scale_fp(k) * tmp[r * BLOCK + k] * cos[k][n]) >> FRAC; // scaled 2^26
            }
            let rounded = (acc + (1 << (2 * FRAC - 1))) >> (2 * FRAC);
            out.data[r * BLOCK + n] = rounded.clamp(-32768, 32767) as i16;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dct::{forward_dct, inverse_dct};

    fn textured_block(seed: i16) -> Block {
        let mut b = Block::default();
        for (i, v) in b.data.iter_mut().enumerate() {
            let raw = (i as i16)
                .wrapping_mul(31)
                .wrapping_add(seed.wrapping_mul(7))
                % 256;
            *v = if raw < 0 { raw + 256 } else { raw };
        }
        b
    }

    #[test]
    fn forward_tracks_reference_within_two_counts() {
        for seed in 0..8 {
            let b = textured_block(seed);
            let float = forward_dct(&b);
            let fixed = forward_dct_int(&b);
            for i in 0..64 {
                let d = (i32::from(float.data[i]) - i32::from(fixed.data[i])).abs();
                assert!(
                    d <= 2,
                    "seed {seed} coef {i}: {} vs {}",
                    float.data[i],
                    fixed.data[i]
                );
            }
        }
    }

    #[test]
    fn inverse_tracks_reference_within_two_counts() {
        for seed in 0..8 {
            let coefs = forward_dct(&textured_block(seed));
            let float = inverse_dct(&coefs);
            let fixed = inverse_dct_int(&coefs);
            for i in 0..64 {
                let d = (i32::from(float.data[i]) - i32::from(fixed.data[i])).abs();
                assert!(d <= 2, "seed {seed} sample {i}");
            }
        }
    }

    #[test]
    fn integer_roundtrip_error_is_small() {
        for seed in 0..8 {
            let b = textured_block(seed);
            let rec = inverse_dct_int(&forward_dct_int(&b));
            for i in 0..64 {
                let d = (i32::from(rec.data[i]) - i32::from(b.data[i])).abs();
                assert!(
                    d <= 3,
                    "seed {seed} sample {i}: {} vs {}",
                    rec.data[i],
                    b.data[i]
                );
            }
        }
    }

    #[test]
    fn dc_only_block_matches_exactly() {
        let b = Block::from_samples([100; 64]);
        let c = forward_dct_int(&b);
        assert!((i32::from(c.dc()) - 800).abs() <= 1, "dc {}", c.dc());
        for &v in &c.data[1..] {
            assert!(v.abs() <= 1);
        }
    }

    #[test]
    fn energy_preserved_within_rounding() {
        let b = textured_block(3);
        let c = forward_dct_int(&b);
        let e_in: f64 = b.data.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
        let e_out: f64 = c.data.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
        assert!((e_in - e_out).abs() < 0.01 * e_in, "{e_in} vs {e_out}");
    }
}
