//! Fixed-point integer DCT/IDCT.
//!
//! The reference implementations of the era ran an integer DCT (float
//! units on the R10000 were precious); this is a 13-bit fixed-point
//! separable implementation whose results track the double-precision
//! transform to within a couple of counts on 9-bit inputs. The codec's
//! arithmetic stays the float-backed [`crate::forward_dct`] pair
//! (encoder/decoder bit-exactness is what matters there); this module
//! exists for the kernel benches and as a drop-in for integer-only
//! targets.
//!
//! The cosine/scale tables are computed once into a process-wide
//! `static` (they used to be rebuilt on every call — 64 `cos()`
//! evaluations per block), and both passes exploit the cosine mirror
//! symmetry `cos[k][7−n] = (−1)^k · cos[k][n]` to fold each 8-term sum
//! into a 4-term butterfly. The fold is exact in integer arithmetic
//! because the table is built mirrored by construction.

use crate::dct::CoefBlock;
use crate::{Block, BLOCK};
use std::sync::OnceLock;

/// Fixed-point fractional bits.
const FRAC: u32 = 13;
const ONE: i64 = 1 << FRAC;

/// Precomputed fixed-point basis: `cos[k][n] = round(cos((2n+1)·k·π/16)
/// · 2^13)` for the first half of each row (`n < 4` — the second half
/// is `(−1)^k` times the first, applied by the butterfly), and
/// `scale[k] = round(alpha(k) · 2^13)` with alpha √(1/8) for k = 0 and
/// 1/2 otherwise.
struct Tables {
    cos: [[i64; BLOCK / 2]; BLOCK],
    scale: [i64; BLOCK],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut cos = [[0i64; BLOCK / 2]; BLOCK];
        for (k, row) in cos.iter_mut().enumerate() {
            for (n, v) in row.iter_mut().enumerate() {
                let c = (std::f64::consts::PI * (2.0 * n as f64 + 1.0) * k as f64 / 16.0).cos();
                *v = (c * ONE as f64).round() as i64;
            }
        }
        let mut scale = [ONE / 2; BLOCK];
        scale[0] = ((1.0f64 / 8.0).sqrt() * ONE as f64).round() as i64;
        Tables { cos, scale }
    })
}

/// `(v + 2^(sh−1)) >> sh` — round-half-up under arithmetic shift.
#[inline]
fn round_shift(v: i64, sh: u32) -> i64 {
    (v + (1 << (sh - 1))) >> sh
}

/// Forward 8×8 DCT in 64-bit fixed-point arithmetic.
// Index-symmetric k/n loops mirror the DCT sums; iterators would obscure
// which axis each index walks.
#[allow(clippy::needless_range_loop)]
pub fn forward_dct_int(block: &Block) -> CoefBlock {
    let t = tables();
    // Rows: tmp scaled by 2^13. Even k see the mirrored sums s[n],
    // odd k the differences d[n].
    let mut tmp = [0i64; 64];
    for r in 0..BLOCK {
        let row = &block.data[r * BLOCK..][..BLOCK];
        let mut s = [0i64; 4];
        let mut d = [0i64; 4];
        for n in 0..4 {
            s[n] = i64::from(row[n]) + i64::from(row[7 - n]);
            d[n] = i64::from(row[n]) - i64::from(row[7 - n]);
        }
        for k in 0..BLOCK {
            let half = if k % 2 == 0 { &s } else { &d };
            let mut acc: i64 = 0;
            for n in 0..4 {
                acc += half[n] * t.cos[k][n];
            }
            tmp[r * BLOCK + k] = (t.scale[k] * acc) >> FRAC; // scaled 2^13
        }
    }
    // Columns: result scaled by 2^39 before the final shift.
    let mut out = CoefBlock::default();
    for c in 0..BLOCK {
        let mut s = [0i64; 4];
        let mut d = [0i64; 4];
        for n in 0..4 {
            s[n] = tmp[n * BLOCK + c] + tmp[(7 - n) * BLOCK + c];
            d[n] = tmp[n * BLOCK + c] - tmp[(7 - n) * BLOCK + c];
        }
        for k in 0..BLOCK {
            let half = if k % 2 == 0 { &s } else { &d };
            let mut acc: i64 = 0;
            for n in 0..4 {
                acc += half[n] * t.cos[k][n]; // scaled 2^26
            }
            let rounded = round_shift(t.scale[k] * acc, 3 * FRAC); // from 2^39
            out.data[k * BLOCK + c] = rounded.clamp(-32768, 32767) as i16;
        }
    }
    out
}

/// Inverse 8×8 DCT in 64-bit fixed-point arithmetic.
///
/// Per-term shifts are deferred: each pass accumulates the full-precision
/// products (well within i64) and rounds once, so the butterfly fold over
/// output samples `n` and `7−n` is exact.
#[allow(clippy::needless_range_loop)]
pub fn inverse_dct_int(coefs: &CoefBlock) -> Block {
    let t = tables();
    // Columns first, mirroring the float reference. Even k contribute
    // identically to samples n and 7−n, odd k with opposite sign.
    let mut tmp = [0i64; 64];
    for c in 0..BLOCK {
        let mut e = [0i64; 4];
        let mut o = [0i64; 4];
        for k in 0..BLOCK {
            let g = t.scale[k] * i64::from(coefs.data[k * BLOCK + c]); // scaled 2^26
            let half = if k % 2 == 0 { &mut e } else { &mut o };
            for n in 0..4 {
                half[n] += g * t.cos[k][n]; // scaled 2^39
            }
        }
        for n in 0..4 {
            // e/o carry 2·FRAC fractional bits (scale · cos); one
            // rounded shift by FRAC leaves the 2^13 working scale.
            tmp[n * BLOCK + c] = round_shift(e[n] + o[n], FRAC); // scaled 2^13
            tmp[(7 - n) * BLOCK + c] = round_shift(e[n] - o[n], FRAC);
        }
    }
    let mut out = Block::default();
    for r in 0..BLOCK {
        let mut e = [0i64; 4];
        let mut o = [0i64; 4];
        for k in 0..BLOCK {
            let g = t.scale[k] * tmp[r * BLOCK + k]; // scaled 2^26
            let half = if k % 2 == 0 { &mut e } else { &mut o };
            for n in 0..4 {
                half[n] += g * t.cos[k][n]; // scaled 2^39
            }
        }
        for n in 0..4 {
            let a = round_shift(e[n] + o[n], 3 * FRAC);
            let b = round_shift(e[n] - o[n], 3 * FRAC);
            out.data[r * BLOCK + n] = a.clamp(-32768, 32767) as i16;
            out.data[r * BLOCK + 7 - n] = b.clamp(-32768, 32767) as i16;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dct::{forward_dct, inverse_dct};

    fn textured_block(seed: i16) -> Block {
        let mut b = Block::default();
        for (i, v) in b.data.iter_mut().enumerate() {
            let raw = (i as i16)
                .wrapping_mul(31)
                .wrapping_add(seed.wrapping_mul(7))
                % 256;
            *v = if raw < 0 { raw + 256 } else { raw };
        }
        b
    }

    #[test]
    fn forward_tracks_reference_within_two_counts() {
        for seed in 0..8 {
            let b = textured_block(seed);
            let float = forward_dct(&b);
            let fixed = forward_dct_int(&b);
            for i in 0..64 {
                let d = (i32::from(float.data[i]) - i32::from(fixed.data[i])).abs();
                assert!(
                    d <= 2,
                    "seed {seed} coef {i}: {} vs {}",
                    float.data[i],
                    fixed.data[i]
                );
            }
        }
    }

    #[test]
    fn inverse_tracks_reference_within_two_counts() {
        for seed in 0..8 {
            let coefs = forward_dct(&textured_block(seed));
            let float = inverse_dct(&coefs);
            let fixed = inverse_dct_int(&coefs);
            for i in 0..64 {
                let d = (i32::from(float.data[i]) - i32::from(fixed.data[i])).abs();
                assert!(d <= 2, "seed {seed} sample {i}");
            }
        }
    }

    #[test]
    fn integer_roundtrip_error_is_small() {
        for seed in 0..8 {
            let b = textured_block(seed);
            let rec = inverse_dct_int(&forward_dct_int(&b));
            for i in 0..64 {
                let d = (i32::from(rec.data[i]) - i32::from(b.data[i])).abs();
                assert!(
                    d <= 3,
                    "seed {seed} sample {i}: {} vs {}",
                    rec.data[i],
                    b.data[i]
                );
            }
        }
    }

    #[test]
    fn dc_only_block_matches_exactly() {
        let b = Block::from_samples([100; 64]);
        let c = forward_dct_int(&b);
        assert!((i32::from(c.dc()) - 800).abs() <= 1, "dc {}", c.dc());
        for &v in &c.data[1..] {
            assert!(v.abs() <= 1);
        }
    }

    #[test]
    fn energy_preserved_within_rounding() {
        let b = textured_block(3);
        let c = forward_dct_int(&b);
        let e_in: f64 = b.data.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
        let e_out: f64 = c.data.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
        assert!((e_in - e_out).abs() < 0.01 * e_in, "{e_in} vs {e_out}");
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // k/n mirror the DCT sum indices
    fn butterfly_matches_direct_8term_sums() {
        // The folded 4-term butterflies must equal the plain 8-term
        // sums computed with the full (mirrored) table.
        let t = tables();
        let mut full = [[0i64; BLOCK]; BLOCK];
        for k in 0..BLOCK {
            for n in 0..4 {
                full[k][n] = t.cos[k][n];
                full[k][7 - n] = if k % 2 == 0 {
                    t.cos[k][n]
                } else {
                    -t.cos[k][n]
                };
            }
        }
        for seed in 0..4 {
            let b = textured_block(seed);
            let fast = forward_dct_int(&b);
            // Direct evaluation with the full table.
            let mut tmp = [0i64; 64];
            for r in 0..BLOCK {
                for k in 0..BLOCK {
                    let mut acc = 0i64;
                    for n in 0..BLOCK {
                        acc += i64::from(b.data[r * BLOCK + n]) * full[k][n];
                    }
                    tmp[r * BLOCK + k] = (t.scale[k] * acc) >> FRAC;
                }
            }
            for c in 0..BLOCK {
                for k in 0..BLOCK {
                    let mut acc = 0i64;
                    for n in 0..BLOCK {
                        acc += tmp[n * BLOCK + c] * full[k][n];
                    }
                    let direct = round_shift(t.scale[k] * acc, 3 * FRAC).clamp(-32768, 32767);
                    assert_eq!(
                        i64::from(fast.data[k * BLOCK + c]),
                        direct,
                        "seed {seed} coef ({k},{c})"
                    );
                }
            }
        }
    }
}
