//! Half-pel interpolation for motion compensation.
//!
//! MPEG-4 motion vectors have half-pixel precision; prediction at a
//! half-pel position bilinearly averages the 2 or 4 neighbouring integer
//! pixels with the standard's `//` rounding (round-half-away handled via
//! `rounding_control = 0`, i.e. `(a+b+1)>>1` and `(a+b+c+d+2)>>2`).

/// Compute ops per interpolated pixel (up to 4 loads + 3 adds + shift).
pub const INTERP_OPS_PER_PIXEL: u64 = 6;

/// Sub-pixel phase of a motion vector component pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HalfPel {
    /// Integer position: direct copy.
    Full,
    /// Halfway horizontally: average left/right.
    Horizontal,
    /// Halfway vertically: average top/bottom.
    Vertical,
    /// Halfway in both: average the 2×2 neighbourhood.
    Diagonal,
}

impl HalfPel {
    /// Classifies a motion vector in half-pel units (`dx`, `dy`).
    pub fn from_mv(dx: i16, dy: i16) -> HalfPel {
        match (dx & 1 != 0, dy & 1 != 0) {
            (false, false) => HalfPel::Full,
            (true, false) => HalfPel::Horizontal,
            (false, true) => HalfPel::Vertical,
            (true, true) => HalfPel::Diagonal,
        }
    }
}

/// Interpolates a `w`×`h` prediction block from `reference` at integer
/// origin `(rx, ry)` and phase `phase`, writing into `out` (row-major,
/// stride `w`).
///
/// The reference plane must have at least one pixel of slack to the right
/// and below the block for the fractional phases.
///
/// # Panics
///
/// Panics (via slice indexing) if the source window exceeds the reference
/// plane bounds.
#[allow(clippy::too_many_arguments)]
pub fn interpolate_half_pel(
    reference: &[u8],
    ref_stride: usize,
    rx: usize,
    ry: usize,
    phase: HalfPel,
    w: usize,
    h: usize,
    out: &mut [u8],
) {
    assert!(out.len() >= w * h);
    let px = |x: usize, y: usize| u16::from(reference[y * ref_stride + x]);
    match phase {
        HalfPel::Full => {
            for y in 0..h {
                let src = &reference[(ry + y) * ref_stride + rx..][..w];
                out[y * w..][..w].copy_from_slice(src);
            }
        }
        HalfPel::Horizontal => {
            for y in 0..h {
                for x in 0..w {
                    let v = (px(rx + x, ry + y) + px(rx + x + 1, ry + y) + 1) >> 1;
                    out[y * w + x] = v as u8;
                }
            }
        }
        HalfPel::Vertical => {
            for y in 0..h {
                for x in 0..w {
                    let v = (px(rx + x, ry + y) + px(rx + x, ry + y + 1) + 1) >> 1;
                    out[y * w + x] = v as u8;
                }
            }
        }
        HalfPel::Diagonal => {
            for y in 0..h {
                for x in 0..w {
                    let v = (px(rx + x, ry + y)
                        + px(rx + x + 1, ry + y)
                        + px(rx + x, ry + y + 1)
                        + px(rx + x + 1, ry + y + 1)
                        + 2)
                        >> 2;
                    out[y * w + x] = v as u8;
                }
            }
        }
    }
}

/// Averages two equal-length pixel buffers with MPEG `(a+b+1)>>1`
/// rounding (bidirectional prediction interpolation).
///
/// # Panics
///
/// Panics if the inputs differ in length or `out` is shorter.
pub fn average_pixels(a: &[u8], b: &[u8], out: &mut [u8]) {
    assert_eq!(a.len(), b.len());
    assert!(out.len() >= a.len());
    for i in 0..a.len() {
        out[i] = ((u16::from(a[i]) + u16::from(b[i]) + 1) >> 1) as u8;
    }
}

/// Copies the `w`×`h` window of `src` (stride `src_stride`) at
/// `(sx, sy)` into `out` (row-major, stride `w`) — the full-pel plane
/// copy kernel.
///
/// # Panics
///
/// Panics (via slice indexing) if the window exceeds `src` bounds or
/// `out` is shorter than `w·h`.
pub fn copy_block(
    src: &[u8],
    src_stride: usize,
    sx: usize,
    sy: usize,
    w: usize,
    h: usize,
    out: &mut [u8],
) {
    assert!(out.len() >= w * h);
    for y in 0..h {
        let row = &src[(sy + y) * src_stride + sx..][..w];
        out[y * w..][..w].copy_from_slice(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(w: usize, h: usize, f: impl Fn(usize, usize) -> u8) -> Vec<u8> {
        let mut p = vec![0u8; w * h];
        for y in 0..h {
            for x in 0..w {
                p[y * w + x] = f(x, y);
            }
        }
        p
    }

    #[test]
    fn phase_classification() {
        assert_eq!(HalfPel::from_mv(0, 0), HalfPel::Full);
        assert_eq!(HalfPel::from_mv(2, -4), HalfPel::Full);
        assert_eq!(HalfPel::from_mv(1, 0), HalfPel::Horizontal);
        assert_eq!(HalfPel::from_mv(-3, 2), HalfPel::Horizontal);
        assert_eq!(HalfPel::from_mv(0, 5), HalfPel::Vertical);
        assert_eq!(HalfPel::from_mv(1, 1), HalfPel::Diagonal);
        assert_eq!(HalfPel::from_mv(-1, -1), HalfPel::Diagonal);
    }

    #[test]
    fn full_pel_is_copy() {
        let p = plane(20, 20, |x, y| (x * 5 + y * 7) as u8);
        let mut out = vec![0u8; 64];
        interpolate_half_pel(&p, 20, 3, 4, HalfPel::Full, 8, 8, &mut out);
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(out[y * 8 + x], p[(y + 4) * 20 + x + 3]);
            }
        }
    }

    #[test]
    fn constant_plane_invariant_under_all_phases() {
        let p = plane(20, 20, |_, _| 77);
        for phase in [
            HalfPel::Full,
            HalfPel::Horizontal,
            HalfPel::Vertical,
            HalfPel::Diagonal,
        ] {
            let mut out = vec![0u8; 64];
            interpolate_half_pel(&p, 20, 2, 2, phase, 8, 8, &mut out);
            assert!(out.iter().all(|&v| v == 77), "{phase:?}");
        }
    }

    #[test]
    fn horizontal_averages_neighbours_with_rounding() {
        // pixels alternate 10, 20 → halfway = (10+20+1)>>1 = 15
        let p = plane(20, 4, |x, _| if x % 2 == 0 { 10 } else { 20 });
        let mut out = vec![0u8; 8];
        interpolate_half_pel(&p, 20, 0, 0, HalfPel::Horizontal, 8, 1, &mut out);
        assert!(out.iter().all(|&v| v == 15));
    }

    #[test]
    fn diagonal_uses_four_neighbours() {
        // 2x2 checkerboard of 0/100: diagonal halfway = (0+100+100+0+2)>>2 = 50
        let p = plane(20, 20, |x, y| if (x + y) % 2 == 0 { 0 } else { 100 });
        let mut out = vec![0u8; 4];
        interpolate_half_pel(&p, 20, 0, 0, HalfPel::Diagonal, 2, 2, &mut out);
        assert!(out.iter().all(|&v| v == 50), "{out:?}");
    }

    #[test]
    fn average_pixels_rounds_up() {
        let a = [10u8, 20, 255, 0];
        let b = [11u8, 20, 0, 0];
        let mut out = [0u8; 4];
        average_pixels(&a, &b, &mut out);
        assert_eq!(out, [11, 20, 128, 0]);
    }

    #[test]
    fn copy_block_extracts_window() {
        let p = plane(20, 20, |x, y| (x * 5 + y * 7) as u8);
        let mut out = vec![0u8; 6 * 3];
        copy_block(&p, 20, 4, 9, 6, 3, &mut out);
        for y in 0..3 {
            for x in 0..6 {
                assert_eq!(out[y * 6 + x], p[(9 + y) * 20 + 4 + x]);
            }
        }
    }

    #[test]
    fn vertical_gradient_midpoint() {
        let p = plane(8, 20, |_, y| (y * 10) as u8);
        let mut out = vec![0u8; 8];
        interpolate_half_pel(&p, 8, 0, 3, HalfPel::Vertical, 8, 1, &mut out);
        // between rows 3 (30) and 4 (40): (30+40+1)>>1 = 35
        assert!(out.iter().all(|&v| v == 35));
    }
}
