//! MPEG-4 "second quantization method" (H.263-style) scalar quantization.
//!
//! Intra DC is quantized by 8 (the standard's `dc_scaler` simplified to
//! the 8-bit-video value); all other coefficients use the quantizer
//! parameter `qp` in `1..=31`. Inter quantization includes the standard
//! dead zone.

use crate::dct::CoefBlock;

/// Approximate compute ops per quantized 8×8 block (div/mul + clamp per
/// coefficient).
pub const QUANT_OPS: u64 = 192;

/// Quantizer step bound (per ISO/IEC 14496-2, `quant_scale` is 5 bits).
const QP_MAX: i16 = 31;

fn check_qp(qp: u8) -> i16 {
    let qp = i16::from(qp);
    assert!((1..=QP_MAX).contains(&qp), "qp {qp} out of range 1..=31");
    qp
}

/// Quantizes an intra block: DC by the fixed scaler 8, AC by `2·qp`.
///
/// # Panics
///
/// Panics if `qp` is outside `1..=31`.
pub fn quantize_intra(coefs: &CoefBlock, qp: u8) -> CoefBlock {
    let qp = check_qp(qp);
    let mut out = CoefBlock::default();
    out.data[0] = (coefs.data[0] + if coefs.data[0] >= 0 { 4 } else { -4 }) / 8;
    for i in 1..64 {
        let c = i32::from(coefs.data[i]);
        let q = i32::from(qp);
        // round-to-nearest on magnitude
        let level = (c.abs() + q) / (2 * q);
        out.data[i] = (level.min(2047) as i16) * c.signum() as i16;
    }
    out
}

/// Dequantizes an intra block (inverse of [`quantize_intra`], lossy).
///
/// # Panics
///
/// Panics if `qp` is outside `1..=31`.
pub fn dequantize_intra(levels: &CoefBlock, qp: u8) -> CoefBlock {
    let qp = check_qp(qp);
    let mut out = CoefBlock::default();
    out.data[0] = levels.data[0].saturating_mul(8);
    for i in 1..64 {
        let l = i32::from(levels.data[i]);
        let q = i32::from(qp);
        let v = if l == 0 {
            0
        } else if q % 2 == 1 {
            l.signum() * (q * (2 * l.abs() + 1))
        } else {
            l.signum() * (q * (2 * l.abs() + 1) - 1)
        };
        out.data[i] = v.clamp(-2048, 2047) as i16;
    }
    out
}

/// Quantizes an inter (residue) block with the H.263 dead zone
/// (`|level| = (|c| − qp/2) / 2qp`).
///
/// # Panics
///
/// Panics if `qp` is outside `1..=31`.
pub fn quantize_inter(coefs: &CoefBlock, qp: u8) -> CoefBlock {
    let qp = check_qp(qp);
    let mut out = CoefBlock::default();
    for i in 0..64 {
        let c = i32::from(coefs.data[i]);
        let q = i32::from(qp);
        let level = (c.abs() - q / 2) / (2 * q);
        out.data[i] = (level.clamp(0, 2047) as i16) * c.signum() as i16;
    }
    out
}

/// Dequantizes an inter block (inverse of [`quantize_inter`], lossy).
///
/// # Panics
///
/// Panics if `qp` is outside `1..=31`.
pub fn dequantize_inter(levels: &CoefBlock, qp: u8) -> CoefBlock {
    let qp = check_qp(qp);
    let mut out = CoefBlock::default();
    for i in 0..64 {
        let l = i32::from(levels.data[i]);
        let q = i32::from(qp);
        let v = if l == 0 {
            0
        } else if q % 2 == 1 {
            l.signum() * (q * (2 * l.abs() + 1))
        } else {
            l.signum() * (q * (2 * l.abs() + 1) - 1)
        };
        out.data[i] = v.clamp(-2048, 2047) as i16;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_block() -> CoefBlock {
        let mut c = CoefBlock::default();
        for (i, v) in c.data.iter_mut().enumerate() {
            *v = (i as i16 - 32) * 13;
        }
        c
    }

    #[test]
    fn intra_dc_uses_fixed_scaler() {
        let mut c = CoefBlock::default();
        c.data[0] = 800;
        let q = quantize_intra(&c, 31);
        assert_eq!(q.data[0], 100);
        let d = dequantize_intra(&q, 31);
        assert_eq!(d.data[0], 800);
    }

    #[test]
    fn quantization_error_bounded_by_step_intra() {
        let c = ramp_block();
        for qp in [1u8, 2, 5, 12, 31] {
            let d = dequantize_intra(&quantize_intra(&c, qp), qp);
            for i in 1..64 {
                let err = (i32::from(d.data[i]) - i32::from(c.data[i])).abs();
                assert!(
                    err <= 2 * i32::from(qp),
                    "qp {qp} idx {i}: err {err} > {}",
                    2 * qp
                );
            }
        }
    }

    #[test]
    fn quantization_error_bounded_by_step_inter() {
        let c = ramp_block();
        for qp in [1u8, 2, 5, 12, 31] {
            let d = dequantize_inter(&quantize_inter(&c, qp), qp);
            for i in 0..64 {
                let err = (i32::from(d.data[i]) - i32::from(c.data[i])).abs();
                // Dead-zone quantizers have error up to ~1.5 steps near zero.
                assert!(err <= 3 * i32::from(qp), "qp {qp} idx {i}: err {err}");
            }
        }
    }

    #[test]
    fn inter_dead_zone_zeroes_small_coefficients() {
        let mut c = CoefBlock::default();
        c.data[5] = 9;
        c.data[6] = -9;
        let q = quantize_inter(&c, 10);
        assert_eq!(q.data[5], 0);
        assert_eq!(q.data[6], 0);
    }

    #[test]
    fn sign_symmetry() {
        let mut c = ramp_block();
        let q1 = quantize_inter(&c, 7);
        for v in c.data.iter_mut() {
            *v = -*v;
        }
        let q2 = quantize_inter(&c, 7);
        for i in 0..64 {
            assert_eq!(q1.data[i], -q2.data[i], "index {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn qp_zero_rejected() {
        quantize_intra(&CoefBlock::default(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn qp_over_31_rejected() {
        quantize_inter(&CoefBlock::default(), 32);
    }

    #[test]
    fn dequantize_zero_is_zero() {
        let z = CoefBlock::default();
        assert!(dequantize_intra(&z, 8).data[1..].iter().all(|&v| v == 0));
        assert!(dequantize_inter(&z, 8).is_zero());
    }
}
