//! MPEG-4 "second quantization method" (H.263-style) scalar quantization.
//!
//! Intra DC is quantized by 8 (the standard's `dc_scaler` simplified to
//! the 8-bit-video value); all other coefficients use the quantizer
//! parameter `qp` in `1..=31`. Inter quantization includes the standard
//! dead zone.

use crate::dct::CoefBlock;

/// Approximate compute ops per quantized 8×8 block (div/mul + clamp per
/// coefficient).
pub const QUANT_OPS: u64 = 192;

/// Quantizer step bound (per ISO/IEC 14496-2, `quant_scale` is 5 bits).
const QP_MAX: i16 = 31;

pub(crate) fn check_qp(qp: u8) -> i16 {
    let qp = i16::from(qp);
    assert!((1..=QP_MAX).contains(&qp), "qp {qp} out of range 1..=31");
    qp
}

/// Exact division by the invariant quantizer step `d = 2·qp` via
/// multiply-and-shift, so the 64-coefficient loops vectorise instead of
/// issuing 64 serial `div` instructions.
///
/// With `m = ceil(2²⁴ / d)` and `e = m·d − 2²⁴ ∈ (0, d]`, the identity
/// `floor(n·m / 2²⁴) = floor(n / d)` holds whenever `n·e < 2²⁴`
/// (Granlund–Montgomery round-up method). Here `n ≤ |i16::MIN| + 31 <
/// 2¹⁶` and `e ≤ d ≤ 62`, so `n·e < 62·2¹⁶ < 2²⁴` — exact for every
/// representable coefficient and qp. Pinned exhaustively against `/`
/// in `magic_division_matches_hardware_division`.
#[derive(Clone, Copy)]
pub(crate) struct StepDiv {
    pub(crate) m: u64,
}

impl StepDiv {
    pub(crate) fn new(qp: i16) -> Self {
        let d = 2 * qp as u64;
        StepDiv {
            m: (1u64 << 24).div_ceil(d),
        }
    }

    /// `n / d` for non-negative `n` (truncating, like `/` on `i32`).
    #[inline(always)]
    fn div(self, n: i32) -> i32 {
        debug_assert!((0..1 << 16).contains(&n));
        ((n as u64 * self.m) >> 24) as i32
    }
}

/// Quantizes an intra block: DC by the fixed scaler 8, AC by `2·qp`.
///
/// # Panics
///
/// Panics if `qp` is outside `1..=31`.
pub fn quantize_intra(coefs: &CoefBlock, qp: u8) -> CoefBlock {
    let qp = check_qp(qp);
    let div = StepDiv::new(qp);
    let mut out = CoefBlock::default();
    out.data[0] = (coefs.data[0] + if coefs.data[0] >= 0 { 4 } else { -4 }) / 8;
    for i in 1..64 {
        let c = i32::from(coefs.data[i]);
        let q = i32::from(qp);
        // round-to-nearest on magnitude
        let level = div.div(c.abs() + q);
        out.data[i] = (level.min(2047) as i16) * c.signum() as i16;
    }
    out
}

/// Dequantizes an intra block (inverse of [`quantize_intra`], lossy).
///
/// # Panics
///
/// Panics if `qp` is outside `1..=31`.
pub fn dequantize_intra(levels: &CoefBlock, qp: u8) -> CoefBlock {
    let qp = check_qp(qp);
    let mut out = CoefBlock::default();
    out.data[0] = levels.data[0].saturating_mul(8);
    for i in 1..64 {
        let l = i32::from(levels.data[i]);
        let q = i32::from(qp);
        let v = if l == 0 {
            0
        } else if q % 2 == 1 {
            l.signum() * (q * (2 * l.abs() + 1))
        } else {
            l.signum() * (q * (2 * l.abs() + 1) - 1)
        };
        out.data[i] = v.clamp(-2048, 2047) as i16;
    }
    out
}

/// Quantizes an inter (residue) block with the H.263 dead zone
/// (`|level| = (|c| − qp/2) / 2qp`).
///
/// # Panics
///
/// Panics if `qp` is outside `1..=31`.
pub fn quantize_inter(coefs: &CoefBlock, qp: u8) -> CoefBlock {
    let qp = check_qp(qp);
    let div = StepDiv::new(qp);
    let mut out = CoefBlock::default();
    for i in 0..64 {
        let c = i32::from(coefs.data[i]);
        let q = i32::from(qp);
        // A numerator inside the dead zone yields level 0 either way:
        // truncating division of a negative numerator by a positive
        // divisor gives 0 or a negative value, which the clamp floors
        // to 0 — so routing only non-negative numerators through the
        // magic divide preserves `/` exactly.
        let n = c.abs() - q / 2;
        let level = if n <= 0 { 0 } else { div.div(n) };
        out.data[i] = (level.clamp(0, 2047) as i16) * c.signum() as i16;
    }
    out
}

/// Largest coefficient magnitude that [`quantize_inter`] maps to level
/// zero: `|c| ≤ 2·qp + qp/2 − 1` gives `(|c| − qp/2) / 2qp == 0`
/// (integer division truncates toward zero, and negative numerators
/// clamp to level 0).
///
/// Callers combine this with the DCT energy bound to skip transforms
/// whose output is provably all-zero: the float DCT is orthonormal
/// (Parseval), so `|coef| ≤ ‖x‖₂ ≤ 8·max|x|`, and rounding an integer
/// bound cannot exceed it — if `8·max|x|` is at most this bound, every
/// quantized level of the block is exactly 0.
///
/// # Panics
///
/// Panics if `qp` is outside `1..=31`.
pub fn inter_zero_bound(qp: u8) -> i32 {
    let q = i32::from(check_qp(qp));
    2 * q + q / 2 - 1
}

/// Dequantizes an inter block (inverse of [`quantize_inter`], lossy).
///
/// # Panics
///
/// Panics if `qp` is outside `1..=31`.
pub fn dequantize_inter(levels: &CoefBlock, qp: u8) -> CoefBlock {
    let qp = check_qp(qp);
    let mut out = CoefBlock::default();
    for i in 0..64 {
        let l = i32::from(levels.data[i]);
        let q = i32::from(qp);
        let v = if l == 0 {
            0
        } else if q % 2 == 1 {
            l.signum() * (q * (2 * l.abs() + 1))
        } else {
            l.signum() * (q * (2 * l.abs() + 1) - 1)
        };
        out.data[i] = v.clamp(-2048, 2047) as i16;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_block() -> CoefBlock {
        let mut c = CoefBlock::default();
        for (i, v) in c.data.iter_mut().enumerate() {
            *v = (i as i16 - 32) * 13;
        }
        c
    }

    #[test]
    fn magic_division_matches_hardware_division() {
        // Exhaustive: every representable coefficient magnitude through
        // both quantizer numerators, for every legal qp. The magic
        // multiply must reproduce truncating `/` bit-for-bit.
        for qp in 1u8..=31 {
            let q = i32::from(qp);
            let div = StepDiv::new(i16::from(qp));
            for c in 0..=i32::from(i16::MAX) + 1 {
                let intra_n = c + q;
                assert_eq!(div.div(intra_n), intra_n / (2 * q), "intra qp {qp} c {c}");
                let inter_n = c - q / 2;
                let fast = if inter_n <= 0 { 0 } else { div.div(inter_n) };
                assert_eq!(
                    fast,
                    (inter_n / (2 * q)).clamp(0, i32::MAX),
                    "inter qp {qp} c {c}"
                );
            }
        }
    }

    #[test]
    fn inter_zero_bound_is_exact() {
        // The bound is the largest magnitude quantizing to zero — one
        // more must not.
        for qp in 1u8..=31 {
            let b = inter_zero_bound(qp);
            let mut c = CoefBlock::default();
            c.data[0] = b as i16;
            c.data[1] = -(b as i16);
            c.data[2] = b as i16 + 1;
            let q = quantize_inter(&c, qp);
            assert_eq!(q.data[0], 0, "qp {qp}");
            assert_eq!(q.data[1], 0, "qp {qp}");
            assert_ne!(q.data[2], 0, "qp {qp}");
        }
    }

    #[test]
    fn intra_dc_uses_fixed_scaler() {
        let mut c = CoefBlock::default();
        c.data[0] = 800;
        let q = quantize_intra(&c, 31);
        assert_eq!(q.data[0], 100);
        let d = dequantize_intra(&q, 31);
        assert_eq!(d.data[0], 800);
    }

    #[test]
    fn quantization_error_bounded_by_step_intra() {
        let c = ramp_block();
        for qp in [1u8, 2, 5, 12, 31] {
            let d = dequantize_intra(&quantize_intra(&c, qp), qp);
            for i in 1..64 {
                let err = (i32::from(d.data[i]) - i32::from(c.data[i])).abs();
                assert!(
                    err <= 2 * i32::from(qp),
                    "qp {qp} idx {i}: err {err} > {}",
                    2 * qp
                );
            }
        }
    }

    #[test]
    fn quantization_error_bounded_by_step_inter() {
        let c = ramp_block();
        for qp in [1u8, 2, 5, 12, 31] {
            let d = dequantize_inter(&quantize_inter(&c, qp), qp);
            for i in 0..64 {
                let err = (i32::from(d.data[i]) - i32::from(c.data[i])).abs();
                // Dead-zone quantizers have error up to ~1.5 steps near zero.
                assert!(err <= 3 * i32::from(qp), "qp {qp} idx {i}: err {err}");
            }
        }
    }

    #[test]
    fn inter_dead_zone_zeroes_small_coefficients() {
        let mut c = CoefBlock::default();
        c.data[5] = 9;
        c.data[6] = -9;
        let q = quantize_inter(&c, 10);
        assert_eq!(q.data[5], 0);
        assert_eq!(q.data[6], 0);
    }

    #[test]
    fn sign_symmetry() {
        let mut c = ramp_block();
        let q1 = quantize_inter(&c, 7);
        for v in c.data.iter_mut() {
            *v = -*v;
        }
        let q2 = quantize_inter(&c, 7);
        for i in 0..64 {
            assert_eq!(q1.data[i], -q2.data[i], "index {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn qp_zero_rejected() {
        quantize_intra(&CoefBlock::default(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn qp_over_31_rejected() {
        quantize_inter(&CoefBlock::default(), 32);
    }

    #[test]
    fn dequantize_zero_is_zero() {
        let z = CoefBlock::default();
        assert!(dequantize_intra(&z, 8).data[1..].iter().all(|&v| v == 0));
        assert!(dequantize_inter(&z, 8).is_zero());
    }
}
