//! Runtime-dispatched kernel tiers.
//!
//! The paper's thesis is that MPEG-4 runs acceptably on *non-SIMD*
//! general-purpose hardware; testing the converse in-tree requires SIMD
//! variants of the hot kernels that are selectable — and forceable — at
//! run time. This module is the dispatch table: every hot kernel (SAD
//! full/half-pel, bilinear interpolation, motion-comp averaging,
//! quant/dequant, plane copies) is a function pointer in a [`Kernels`]
//! vtable, resolved once at startup from CPU feature detection in the
//! style of mjpegtools' `SIMD_DO` table and libmpeg2's `mpeg2_mc` NEON
//! dispatch: the best available tier wins, and tiers that do not
//! implement a kernel inherit the next-best implementation (the SSE2
//! tier keeps scalar quantization exactly as libmpeg2's MMX level keeps
//! scalar `find_best_one_pel`).
//!
//! # Equivalence policy
//!
//! Every vectorised kernel is **bit-identical** to its scalar reference:
//! all of these kernels are pure integer arithmetic, so equality is
//! exact, not approximate (the float DCT keeps its own `to_bits` pinning
//! in `dct.rs`). The cutoff SAD variants check the cutoff after every
//! row in every tier, so the `(sum, rows_visited)` pair — which the
//! codec replays into the simulated memory hierarchy — is identical
//! across tiers, which is what keeps memsim `Counters` bit-identical
//! whichever tier ran. The differential property suites in
//! `tests/dispatch_equiv.rs` and the full-encode sweep in
//! `m4ps-codec/tests/kernel_tiers.rs` pin this.
//!
//! # Forcing a tier
//!
//! `M4PS_KERNELS={scalar,sse2,avx2,auto}` forces the startup resolution
//! (default `auto` = best supported). Forcing an unsupported tier
//! panics loudly — CI detects CPU support first and skips with a notice
//! rather than silently passing. Tests may also swap the active table
//! programmatically with [`force_tier`], or grab a specific tier's
//! table via [`Kernels::for_tier`] without touching global state.

use crate::dct::CoefBlock;
use crate::interp::HalfPel;
use std::sync::atomic::{AtomicU8, Ordering};

/// Full-block SAD: `(cur, cur_stride, cx, cy, ref, ref_stride, rx, ry)`.
pub type SadFn = fn(&[u8], usize, usize, usize, &[u8], usize, usize, usize) -> u32;

/// Cutoff SAD: as [`SadFn`] plus the cutoff; returns `(partial_sum,
/// rows_visited)`. Every tier checks the cutoff after every row so the
/// pair is tier-independent.
pub type SadCutoffFn =
    fn(&[u8], usize, usize, usize, &[u8], usize, usize, usize, u32) -> (u32, usize);

/// Half-pel cutoff SAD: as [`SadCutoffFn`] with the fractional flags
/// `(frac_x, frac_y)` before the cutoff.
pub type SadHalfPelFn =
    fn(&[u8], usize, usize, usize, &[u8], usize, usize, usize, bool, bool, u32) -> (u32, usize);

/// Bilinear interpolation: `(ref, ref_stride, rx, ry, phase, w, h, out)`
/// with `out` row-major at stride `w`.
pub type InterpFn = fn(&[u8], usize, usize, usize, HalfPel, usize, usize, &mut [u8]);

/// Motion-comp averaging: `(fwd, bwd, out)`, MPEG `(a+b+1)>>1` rounding.
pub type AvgFn = fn(&[u8], &[u8], &mut [u8]);

/// Plane-copy kernel: `(src, src_stride, sx, sy, w, h, out)` with `out`
/// row-major at stride `w`.
pub type CopyBlockFn = fn(&[u8], usize, usize, usize, usize, usize, &mut [u8]);

/// Quantizer-shaped kernel: `(coefs, qp) -> levels` (or the inverse).
pub type QuantFn = fn(&CoefBlock, u8) -> CoefBlock;

/// A CPU capability tier the dispatcher can resolve to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum KernelTier {
    /// Portable scalar reference implementations (the paper's subject).
    Scalar = 0,
    /// 128-bit SSE2 (`psadbw`, `pavgb`; x86-64 baseline).
    Sse2 = 1,
    /// 256-bit AVX2.
    Avx2 = 2,
}

impl KernelTier {
    /// All tiers, best last.
    pub const ALL: [KernelTier; 3] = [KernelTier::Scalar, KernelTier::Sse2, KernelTier::Avx2];

    /// Stable lowercase name (the `M4PS_KERNELS` value and bench/obs tag).
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Sse2 => "sse2",
            KernelTier::Avx2 => "avx2",
        }
    }

    /// Parses a `M4PS_KERNELS` tier name (not `auto`).
    pub fn from_name(s: &str) -> Option<KernelTier> {
        match s {
            "scalar" => Some(KernelTier::Scalar),
            "sse2" => Some(KernelTier::Sse2),
            "avx2" => Some(KernelTier::Avx2),
            _ => None,
        }
    }

    /// `true` when this tier can run on the current CPU. Under Miri only
    /// the scalar tier is reported (vector intrinsics are out of scope
    /// for the interpreter; the CI Miri lane runs scalar only).
    pub fn is_supported(self) -> bool {
        if cfg!(miri) {
            return self == KernelTier::Scalar;
        }
        match self {
            KernelTier::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            KernelTier::Sse2 => std::is_x86_feature_detected!("sse2"),
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx2 => std::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }
}

/// Every tier the current CPU supports, best last.
pub fn supported_tiers() -> Vec<KernelTier> {
    KernelTier::ALL
        .into_iter()
        .filter(|t| t.is_supported())
        .collect()
}

/// The resolved-once dispatch table: one function pointer per hot
/// kernel. Tables are `'static`; selection swaps which table the
/// [`kernels`] accessor returns.
#[derive(Debug, Clone, Copy)]
pub struct Kernels {
    /// The tier this table implements.
    pub tier: KernelTier,
    /// Full 16×16 SAD.
    pub sad16: SadFn,
    /// Full 8×8 SAD.
    pub sad8: SadFn,
    /// 16×16 SAD with per-row early termination.
    pub sad16_cutoff: SadCutoffFn,
    /// 8×8 SAD with per-row early termination.
    pub sad8_cutoff: SadCutoffFn,
    /// 16×16 half-pel SAD with per-row early termination.
    pub sad16_half_pel: SadHalfPelFn,
    /// 8×8 half-pel SAD with per-row early termination.
    pub sad8_half_pel: SadHalfPelFn,
    /// Bilinear half-pel interpolation of a `w×h` block.
    pub interp: InterpFn,
    /// Bidirectional prediction averaging.
    pub avg: AvgFn,
    /// `w×h` plane-window copy.
    pub copy_block: CopyBlockFn,
    /// Intra quantization.
    pub quant_intra: QuantFn,
    /// Inter quantization (dead zone).
    pub quant_inter: QuantFn,
    /// Intra dequantization.
    pub dequant_intra: QuantFn,
    /// Inter dequantization.
    pub dequant_inter: QuantFn,
}

/// The scalar reference table: exactly the crate's public scalar
/// functions, retained verbatim as the differential baseline.
static SCALAR: Kernels = Kernels {
    tier: KernelTier::Scalar,
    sad16: crate::sad::sad_16x16,
    sad8: crate::sad::sad_8x8,
    sad16_cutoff: crate::sad::sad_16x16_with_cutoff,
    sad8_cutoff: crate::sad::sad_8x8_with_cutoff,
    sad16_half_pel: crate::sad::sad_half_pel_with_cutoff::<16>,
    sad8_half_pel: crate::sad::sad_half_pel_with_cutoff::<8>,
    interp: crate::interp::interpolate_half_pel,
    avg: crate::interp::average_pixels,
    copy_block: crate::interp::copy_block,
    quant_intra: crate::quant::quantize_intra,
    quant_inter: crate::quant::quantize_inter,
    dequant_intra: crate::quant::dequantize_intra,
    dequant_inter: crate::quant::dequantize_inter,
};

impl Kernels {
    /// The table for `tier`, or `None` when the CPU does not support it.
    pub fn for_tier(tier: KernelTier) -> Option<&'static Kernels> {
        if !tier.is_supported() {
            return None;
        }
        Some(match tier {
            KernelTier::Scalar => &SCALAR,
            #[cfg(target_arch = "x86_64")]
            KernelTier::Sse2 => &crate::kernels_x86::SSE2,
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx2 => &crate::kernels_x86::AVX2,
            #[cfg(not(target_arch = "x86_64"))]
            _ => unreachable!("non-scalar tiers unsupported off x86_64"),
        })
    }
}

/// Sentinel for "not yet resolved from the environment".
const UNRESOLVED: u8 = u8::MAX;

/// The active tier id, `UNRESOLVED` until first use.
static ACTIVE: AtomicU8 = AtomicU8::new(UNRESOLVED);

fn tier_from_id(id: u8) -> KernelTier {
    match id {
        0 => KernelTier::Scalar,
        1 => KernelTier::Sse2,
        2 => KernelTier::Avx2,
        other => unreachable!("invalid tier id {other}"),
    }
}

/// Resolves `M4PS_KERNELS` (default `auto` = best supported tier).
///
/// # Panics
///
/// Panics on an unknown value or a forced tier the CPU cannot run —
/// a forced-tier CI job must fail (or skip with a notice *before*
/// invoking the tests), never silently fall back.
fn resolve_from_env() -> KernelTier {
    let want = std::env::var("M4PS_KERNELS").unwrap_or_default();
    let tier = match want.as_str() {
        "" | "auto" => *supported_tiers()
            .last()
            .expect("scalar is always supported"),
        name => {
            let tier = KernelTier::from_name(name).unwrap_or_else(|| {
                panic!("M4PS_KERNELS={name:?} unknown (expected scalar|sse2|avx2|auto)")
            });
            assert!(
                tier.is_supported(),
                "M4PS_KERNELS={name} forced but this CPU supports only {:?}",
                supported_tiers()
                    .iter()
                    .map(|t| t.name())
                    .collect::<Vec<_>>()
            );
            tier
        }
    };
    ACTIVE.store(tier as u8, Ordering::Release);
    tier
}

/// The currently active tier (resolving `M4PS_KERNELS` on first use).
pub fn active_tier() -> KernelTier {
    match ACTIVE.load(Ordering::Acquire) {
        UNRESOLVED => resolve_from_env(),
        id => tier_from_id(id),
    }
}

/// The active dispatch table. One relaxed-cost atomic load per call;
/// call sites fetch it once per kernel invocation, not per pixel.
pub fn kernels() -> &'static Kernels {
    Kernels::for_tier(active_tier()).expect("active tier is always supported")
}

/// Swaps the active table (tests and tier sweeps; `M4PS_KERNELS` covers
/// the subprocess case). Returns the previously active tier.
///
/// # Panics
///
/// Panics if `tier` is not supported on this CPU.
pub fn force_tier(tier: KernelTier) -> KernelTier {
    assert!(
        tier.is_supported(),
        "cannot force unsupported tier {}",
        tier.name()
    );
    let prev = active_tier();
    ACTIVE.store(tier as u8, Ordering::Release);
    prev
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_always_supported_and_first() {
        assert!(KernelTier::Scalar.is_supported());
        assert_eq!(supported_tiers()[0], KernelTier::Scalar);
    }

    #[test]
    fn names_round_trip() {
        for t in KernelTier::ALL {
            assert_eq!(KernelTier::from_name(t.name()), Some(t));
        }
        assert_eq!(KernelTier::from_name("neon"), None);
    }

    #[test]
    fn for_tier_matches_request() {
        for t in supported_tiers() {
            let k = Kernels::for_tier(t).expect("supported tier has a table");
            assert_eq!(k.tier, t);
        }
    }

    #[test]
    fn unsupported_tier_has_no_table() {
        for t in KernelTier::ALL {
            if !t.is_supported() {
                assert!(Kernels::for_tier(t).is_none());
            }
        }
    }

    #[test]
    fn force_tier_swaps_active_table() {
        let original = active_tier();
        for t in supported_tiers() {
            force_tier(t);
            assert_eq!(active_tier(), t);
            assert_eq!(kernels().tier, t);
        }
        force_tier(original);
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn x86_64_always_has_sse2() {
        // The x86-64 baseline includes SSE2; the tier must be available
        // anywhere this test compiles natively (Miri excepted).
        if !cfg!(miri) {
            assert!(KernelTier::Sse2.is_supported());
        }
    }
}
