//! SSE2 and AVX2 kernel tiers for the dispatch table.
//!
//! Every function here is **bit-identical** to its scalar reference in
//! `sad.rs`/`interp.rs`/`quant.rs`: the kernels are pure integer
//! arithmetic, and each vector construction reproduces the scalar
//! rounding exactly — `pavgb` *is* `(a+b+1)>>1`, the 4-term diagonal
//! average widens to u16 before `(a+b+c+d+2)>>2` (nesting `pavgb` would
//! bias the rounding), and the quantizers run the same
//! Granlund–Montgomery magic multiply as `StepDiv` in 64-bit lane
//! pairs. The cutoff SAD variants test the cutoff after every row, like
//! scalar, so `(sum, rows_visited)` — which the codec replays into the
//! simulated memory hierarchy — cannot diverge across tiers.
//!
//! All plane loads go through slice indexing first, so out-of-bounds
//! windows panic exactly where the scalar kernels panic; the raw
//! pointer reads that follow are over freshly bounds-checked slices.
//!
//! Tier layering mirrors the `SIMD_DO`/libmpeg2 exemplars: a tier only
//! overrides the pointers it can beat. SSE2 keeps the scalar
//! quantizers (`pmulld` is SSE4.1 and the magic divide needs 64-bit
//! products); AVX2 keeps the SSE2 cutoff and half-pel SADs (the
//! per-row cutoff pins work to one 16-pixel row, exactly one XMM
//! `psadbw`).

#![allow(clippy::too_many_arguments)]

use crate::dct::CoefBlock;
use crate::dispatch::{KernelTier, Kernels};
use crate::interp::HalfPel;
use crate::quant::{check_qp, StepDiv};
use std::arch::x86_64::*;

/// The SSE2 tier: vector SAD/interp/avg/copy, scalar quantizers.
pub(crate) static SSE2: Kernels = Kernels {
    tier: KernelTier::Sse2,
    sad16: sse2::sad_16x16,
    sad8: sse2::sad_8x8,
    sad16_cutoff: sse2::sad_16x16_with_cutoff,
    sad8_cutoff: sse2::sad_8x8_with_cutoff,
    sad16_half_pel: sse2::sad_half_pel_16,
    sad8_half_pel: sse2::sad_half_pel_8,
    interp: sse2::interpolate_half_pel,
    avg: sse2::average_pixels,
    copy_block: sse2::copy_block,
    quant_intra: crate::quant::quantize_intra,
    quant_inter: crate::quant::quantize_inter,
    dequant_intra: crate::quant::dequantize_intra,
    dequant_inter: crate::quant::dequantize_inter,
};

/// The AVX2 tier: 256-bit SAD/interp/avg/copy/quant; SSE2 pointers
/// retained where a 16-pixel row already fills one XMM register.
pub(crate) static AVX2: Kernels = Kernels {
    tier: KernelTier::Avx2,
    sad16: avx2::sad_16x16,
    sad8: sse2::sad_8x8,
    sad16_cutoff: sse2::sad_16x16_with_cutoff,
    sad8_cutoff: sse2::sad_8x8_with_cutoff,
    sad16_half_pel: sse2::sad_half_pel_16,
    sad8_half_pel: sse2::sad_half_pel_8,
    interp: avx2::interpolate_half_pel,
    avg: avx2::average_pixels,
    copy_block: avx2::copy_block,
    quant_intra: avx2::quantize_intra,
    quant_inter: avx2::quantize_inter,
    dequant_intra: avx2::dequantize_intra,
    dequant_inter: avx2::dequantize_inter,
};

/// The `N`-pixel row of `plane` at `(x, y)` in the low `N` bytes of an
/// XMM register (upper bytes zero when `N == 8`). Bounds-checked by the
/// slice index, so invalid windows panic like the scalar `row_n`.
#[inline]
unsafe fn loadn<const N: usize>(plane: &[u8], stride: usize, x: usize, y: usize) -> __m128i {
    debug_assert!(N == 8 || N == 16);
    let row = &plane[y * stride + x..][..N];
    if N == 16 {
        _mm_loadu_si128(row.as_ptr().cast())
    } else {
        _mm_loadl_epi64(row.as_ptr().cast())
    }
}

/// Sum of the two 16-bit `psadbw` partials of a single row (each lane's
/// sum is zero-extended into its 64-bit half).
#[inline]
unsafe fn hsum_sad_row(v: __m128i) -> u32 {
    (_mm_cvtsi128_si32(v) as u32) + (_mm_extract_epi16::<4>(v) as u32)
}

/// Sum of two accumulated 64-bit SAD lanes.
#[inline]
unsafe fn hsum_sad_acc(v: __m128i) -> u32 {
    let hi = _mm_unpackhi_epi64(v, v);
    _mm_cvtsi128_si64(_mm_add_epi64(v, hi)) as u32
}

/// Exact `(a+b+c+d+2)>>2` over u8 lanes via u16 widening. Nested
/// `pavgb` would round intermediate sums and drift from the scalar
/// bilinear average, so both halves widen, add, and shift instead.
#[inline]
unsafe fn diag_avg(a: __m128i, b: __m128i, c: __m128i, d: __m128i) -> __m128i {
    let z = _mm_setzero_si128();
    let two = _mm_set1_epi16(2);
    let lo = _mm_add_epi16(
        _mm_add_epi16(_mm_unpacklo_epi8(a, z), _mm_unpacklo_epi8(b, z)),
        _mm_add_epi16(
            _mm_add_epi16(_mm_unpacklo_epi8(c, z), _mm_unpacklo_epi8(d, z)),
            two,
        ),
    );
    let hi = _mm_add_epi16(
        _mm_add_epi16(_mm_unpackhi_epi8(a, z), _mm_unpackhi_epi8(b, z)),
        _mm_add_epi16(
            _mm_add_epi16(_mm_unpackhi_epi8(c, z), _mm_unpackhi_epi8(d, z)),
            two,
        ),
    );
    _mm_packus_epi16(_mm_srli_epi16::<2>(lo), _mm_srli_epi16::<2>(hi))
}

/// The half-pel prediction row for one `(FX, FY)` variant: `pavgb` for
/// the single-axis phases (exact `(a+b+1)>>1`), widened 4-term average
/// for the diagonal.
#[inline]
unsafe fn pred_row<const N: usize, const FX: bool, const FY: bool>(
    reference: &[u8],
    stride: usize,
    x: usize,
    y: usize,
) -> __m128i {
    match (FX, FY) {
        (false, false) => loadn::<N>(reference, stride, x, y),
        (true, false) => _mm_avg_epu8(
            loadn::<N>(reference, stride, x, y),
            loadn::<N>(reference, stride, x + 1, y),
        ),
        (false, true) => _mm_avg_epu8(
            loadn::<N>(reference, stride, x, y),
            loadn::<N>(reference, stride, x, y + 1),
        ),
        (true, true) => diag_avg(
            loadn::<N>(reference, stride, x, y),
            loadn::<N>(reference, stride, x + 1, y),
            loadn::<N>(reference, stride, x, y + 1),
            loadn::<N>(reference, stride, x + 1, y + 1),
        ),
    }
}

/// 128-bit SSE2 kernels. SSE2 is part of the x86-64 baseline, so these
/// are unconditionally sound on this architecture; the wrappers stay
/// behind the dispatch table for uniformity.
mod sse2 {
    use super::*;

    unsafe fn sad_kernel<const N: usize>(
        cur: &[u8],
        cur_stride: usize,
        cx: usize,
        cy: usize,
        reference: &[u8],
        ref_stride: usize,
        rx: usize,
        ry: usize,
    ) -> u32 {
        let mut acc = _mm_setzero_si128();
        for row in 0..N {
            let c = loadn::<N>(cur, cur_stride, cx, cy + row);
            let r = loadn::<N>(reference, ref_stride, rx, ry + row);
            acc = _mm_add_epi64(acc, _mm_sad_epu8(c, r));
        }
        hsum_sad_acc(acc)
    }

    pub(crate) fn sad_16x16(
        cur: &[u8],
        cur_stride: usize,
        cx: usize,
        cy: usize,
        reference: &[u8],
        ref_stride: usize,
        rx: usize,
        ry: usize,
    ) -> u32 {
        // SAFETY: SSE2 is the x86-64 baseline; loads are bounds-checked.
        unsafe { sad_kernel::<16>(cur, cur_stride, cx, cy, reference, ref_stride, rx, ry) }
    }

    pub(crate) fn sad_8x8(
        cur: &[u8],
        cur_stride: usize,
        cx: usize,
        cy: usize,
        reference: &[u8],
        ref_stride: usize,
        rx: usize,
        ry: usize,
    ) -> u32 {
        // SAFETY: as in `sad_16x16`.
        unsafe { sad_kernel::<8>(cur, cur_stride, cx, cy, reference, ref_stride, rx, ry) }
    }

    /// The cutoff is evaluated after every row — the vector win is
    /// within the row (`psadbw`), never across rows, so `rows_visited`
    /// matches the scalar kernel on every input.
    unsafe fn sad_cutoff_kernel<const N: usize>(
        cur: &[u8],
        cur_stride: usize,
        cx: usize,
        cy: usize,
        reference: &[u8],
        ref_stride: usize,
        rx: usize,
        ry: usize,
        cutoff: u32,
    ) -> (u32, usize) {
        let mut acc = 0u32;
        for row in 0..N {
            let c = loadn::<N>(cur, cur_stride, cx, cy + row);
            let r = loadn::<N>(reference, ref_stride, rx, ry + row);
            acc += hsum_sad_row(_mm_sad_epu8(c, r));
            if acc > cutoff {
                return (acc, row + 1);
            }
        }
        (acc, N)
    }

    pub(crate) fn sad_16x16_with_cutoff(
        cur: &[u8],
        cur_stride: usize,
        cx: usize,
        cy: usize,
        reference: &[u8],
        ref_stride: usize,
        rx: usize,
        ry: usize,
        cutoff: u32,
    ) -> (u32, usize) {
        // SAFETY: as in `sad_16x16`.
        unsafe {
            sad_cutoff_kernel::<16>(
                cur, cur_stride, cx, cy, reference, ref_stride, rx, ry, cutoff,
            )
        }
    }

    pub(crate) fn sad_8x8_with_cutoff(
        cur: &[u8],
        cur_stride: usize,
        cx: usize,
        cy: usize,
        reference: &[u8],
        ref_stride: usize,
        rx: usize,
        ry: usize,
        cutoff: u32,
    ) -> (u32, usize) {
        // SAFETY: as in `sad_16x16`.
        unsafe {
            sad_cutoff_kernel::<8>(
                cur, cur_stride, cx, cy, reference, ref_stride, rx, ry, cutoff,
            )
        }
    }

    unsafe fn sad_half_pel_kernel<const N: usize, const FX: bool, const FY: bool>(
        cur: &[u8],
        cur_stride: usize,
        cx: usize,
        cy: usize,
        reference: &[u8],
        ref_stride: usize,
        rx: usize,
        ry: usize,
        cutoff: u32,
    ) -> (u32, usize) {
        let mut acc = 0u32;
        for row in 0..N {
            let c = loadn::<N>(cur, cur_stride, cx, cy + row);
            let p = pred_row::<N, FX, FY>(reference, ref_stride, rx, ry + row);
            acc += hsum_sad_row(_mm_sad_epu8(c, p));
            if acc > cutoff {
                return (acc, row + 1);
            }
        }
        (acc, N)
    }

    fn sad_half_pel<const N: usize>(
        cur: &[u8],
        cur_stride: usize,
        cx: usize,
        cy: usize,
        reference: &[u8],
        ref_stride: usize,
        rx: usize,
        ry: usize,
        frac_x: bool,
        frac_y: bool,
        cutoff: u32,
    ) -> (u32, usize) {
        // SAFETY: as in `sad_16x16`.
        unsafe {
            match (frac_x, frac_y) {
                (false, false) => sad_half_pel_kernel::<N, false, false>(
                    cur, cur_stride, cx, cy, reference, ref_stride, rx, ry, cutoff,
                ),
                (true, false) => sad_half_pel_kernel::<N, true, false>(
                    cur, cur_stride, cx, cy, reference, ref_stride, rx, ry, cutoff,
                ),
                (false, true) => sad_half_pel_kernel::<N, false, true>(
                    cur, cur_stride, cx, cy, reference, ref_stride, rx, ry, cutoff,
                ),
                (true, true) => sad_half_pel_kernel::<N, true, true>(
                    cur, cur_stride, cx, cy, reference, ref_stride, rx, ry, cutoff,
                ),
            }
        }
    }

    pub(crate) fn sad_half_pel_16(
        cur: &[u8],
        cur_stride: usize,
        cx: usize,
        cy: usize,
        reference: &[u8],
        ref_stride: usize,
        rx: usize,
        ry: usize,
        frac_x: bool,
        frac_y: bool,
        cutoff: u32,
    ) -> (u32, usize) {
        sad_half_pel::<16>(
            cur, cur_stride, cx, cy, reference, ref_stride, rx, ry, frac_x, frac_y, cutoff,
        )
    }

    pub(crate) fn sad_half_pel_8(
        cur: &[u8],
        cur_stride: usize,
        cx: usize,
        cy: usize,
        reference: &[u8],
        ref_stride: usize,
        rx: usize,
        ry: usize,
        frac_x: bool,
        frac_y: bool,
        cutoff: u32,
    ) -> (u32, usize) {
        sad_half_pel::<8>(
            cur, cur_stride, cx, cy, reference, ref_stride, rx, ry, frac_x, frac_y, cutoff,
        )
    }

    /// One interpolated output row: 16- then 8-pixel vector chunks,
    /// scalar tail for the remaining `w mod 8` pixels.
    unsafe fn interp_row<const FX: bool, const FY: bool>(
        reference: &[u8],
        stride: usize,
        rx: usize,
        y: usize,
        w: usize,
        out: &mut [u8],
    ) {
        let mut x = 0;
        while x + 16 <= w {
            let p = pred_row::<16, FX, FY>(reference, stride, rx + x, y);
            _mm_storeu_si128(out[x..x + 16].as_mut_ptr().cast(), p);
            x += 16;
        }
        if x + 8 <= w {
            let p = pred_row::<8, FX, FY>(reference, stride, rx + x, y);
            _mm_storel_epi64(out[x..x + 8].as_mut_ptr().cast(), p);
            x += 8;
        }
        let px = |px_x: usize, px_y: usize| u16::from(reference[px_y * stride + px_x]);
        for (x, o) in out.iter_mut().enumerate().skip(x) {
            let v = match (FX, FY) {
                (false, false) => px(rx + x, y),
                (true, false) => (px(rx + x, y) + px(rx + x + 1, y) + 1) >> 1,
                (false, true) => (px(rx + x, y) + px(rx + x, y + 1) + 1) >> 1,
                (true, true) => {
                    (px(rx + x, y)
                        + px(rx + x + 1, y)
                        + px(rx + x, y + 1)
                        + px(rx + x + 1, y + 1)
                        + 2)
                        >> 2
                }
            };
            *o = v as u8;
        }
    }

    pub(crate) fn interpolate_half_pel(
        reference: &[u8],
        ref_stride: usize,
        rx: usize,
        ry: usize,
        phase: HalfPel,
        w: usize,
        h: usize,
        out: &mut [u8],
    ) {
        assert!(out.len() >= w * h);
        if phase == HalfPel::Full {
            copy_block(reference, ref_stride, rx, ry, w, h, out);
            return;
        }
        // SAFETY: as in `sad_16x16`; fractional-phase loads at `+1` are
        // covered by the kernel contract (one pixel of slack right and
        // below), enforced by the bounds-checked slices inside.
        unsafe {
            for y in 0..h {
                let orow = &mut out[y * w..][..w];
                match phase {
                    HalfPel::Full => unreachable!("handled above"),
                    HalfPel::Horizontal => {
                        interp_row::<true, false>(reference, ref_stride, rx, ry + y, w, orow)
                    }
                    HalfPel::Vertical => {
                        interp_row::<false, true>(reference, ref_stride, rx, ry + y, w, orow)
                    }
                    HalfPel::Diagonal => {
                        interp_row::<true, true>(reference, ref_stride, rx, ry + y, w, orow)
                    }
                }
            }
        }
    }

    pub(crate) fn average_pixels(a: &[u8], b: &[u8], out: &mut [u8]) {
        assert_eq!(a.len(), b.len());
        assert!(out.len() >= a.len());
        let n = a.len();
        let mut i = 0;
        // SAFETY: as in `sad_16x16`; every load/store covers a
        // just-bounds-checked 16-byte subslice.
        unsafe {
            while i + 16 <= n {
                let v = _mm_avg_epu8(
                    _mm_loadu_si128(a[i..i + 16].as_ptr().cast()),
                    _mm_loadu_si128(b[i..i + 16].as_ptr().cast()),
                );
                _mm_storeu_si128(out[i..i + 16].as_mut_ptr().cast(), v);
                i += 16;
            }
        }
        for i in i..n {
            out[i] = ((u16::from(a[i]) + u16::from(b[i]) + 1) >> 1) as u8;
        }
    }

    pub(crate) fn copy_block(
        src: &[u8],
        src_stride: usize,
        sx: usize,
        sy: usize,
        w: usize,
        h: usize,
        out: &mut [u8],
    ) {
        assert!(out.len() >= w * h);
        for y in 0..h {
            let row = &src[(sy + y) * src_stride + sx..][..w];
            let dst = &mut out[y * w..][..w];
            let mut x = 0;
            // SAFETY: as in `sad_16x16`; subslices are bounds-checked.
            unsafe {
                while x + 16 <= w {
                    let v = _mm_loadu_si128(row[x..x + 16].as_ptr().cast());
                    _mm_storeu_si128(dst[x..x + 16].as_mut_ptr().cast(), v);
                    x += 16;
                }
                if x + 8 <= w {
                    let v = _mm_loadl_epi64(row[x..x + 8].as_ptr().cast());
                    _mm_storel_epi64(dst[x..x + 8].as_mut_ptr().cast(), v);
                    x += 8;
                }
            }
            dst[x..].copy_from_slice(&row[x..]);
        }
    }
}

/// 256-bit AVX2 kernels. Reachable only through the `AVX2` table, which
/// `dispatch::Kernels::for_tier` hands out strictly after
/// `is_x86_feature_detected!("avx2")` succeeded.
mod avx2 {
    use super::*;

    /// Two consecutive 16-pixel rows in one YMM register.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn load2x16(plane: &[u8], stride: usize, x: usize, y: usize) -> __m256i {
        let r0 = &plane[y * stride + x..][..16];
        let r1 = &plane[(y + 1) * stride + x..][..16];
        _mm256_inserti128_si256::<1>(
            _mm256_castsi128_si256(_mm_loadu_si128(r0.as_ptr().cast())),
            _mm_loadu_si128(r1.as_ptr().cast()),
        )
    }

    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn hsum_sad_acc256(v: __m256i) -> u32 {
        let lo = _mm256_castsi256_si128(v);
        let hi = _mm256_extracti128_si256::<1>(v);
        hsum_sad_acc(_mm_add_epi64(lo, hi))
    }

    #[target_feature(enable = "avx2")]
    unsafe fn sad_16x16_kernel(
        cur: &[u8],
        cur_stride: usize,
        cx: usize,
        cy: usize,
        reference: &[u8],
        ref_stride: usize,
        rx: usize,
        ry: usize,
    ) -> u32 {
        let mut acc = _mm256_setzero_si256();
        for pair in 0..8 {
            let c = load2x16(cur, cur_stride, cx, cy + 2 * pair);
            let r = load2x16(reference, ref_stride, rx, ry + 2 * pair);
            acc = _mm256_add_epi64(acc, _mm256_sad_epu8(c, r));
        }
        hsum_sad_acc256(acc)
    }

    pub(crate) fn sad_16x16(
        cur: &[u8],
        cur_stride: usize,
        cx: usize,
        cy: usize,
        reference: &[u8],
        ref_stride: usize,
        rx: usize,
        ry: usize,
    ) -> u32 {
        // SAFETY: the AVX2 table is only selectable after feature
        // detection succeeded; loads are bounds-checked.
        unsafe { sad_16x16_kernel(cur, cur_stride, cx, cy, reference, ref_stride, rx, ry) }
    }

    /// One diagonal 16-pixel chunk in u16 lanes of a single YMM.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn diag_avg256(a: __m128i, b: __m128i, c: __m128i, d: __m128i) -> __m128i {
        let two = _mm256_set1_epi16(2);
        let sum = _mm256_add_epi16(
            _mm256_add_epi16(_mm256_cvtepu8_epi16(a), _mm256_cvtepu8_epi16(b)),
            _mm256_add_epi16(
                _mm256_add_epi16(_mm256_cvtepu8_epi16(c), _mm256_cvtepu8_epi16(d)),
                two,
            ),
        );
        let p = _mm256_srli_epi16::<2>(sum);
        _mm_packus_epi16(_mm256_castsi256_si128(p), _mm256_extracti128_si256::<1>(p))
    }

    #[target_feature(enable = "avx2")]
    unsafe fn interp_kernel(
        reference: &[u8],
        ref_stride: usize,
        rx: usize,
        ry: usize,
        phase: HalfPel,
        w: usize,
        h: usize,
        out: &mut [u8],
    ) {
        for y in 0..h {
            let orow = &mut out[y * w..][..w];
            let yy = ry + y;
            let (dx, dy) = match phase {
                HalfPel::Full => unreachable!("handled by copy_block"),
                HalfPel::Horizontal => (1, 0),
                HalfPel::Vertical => (0, 1),
                HalfPel::Diagonal => (1, 1),
            };
            let mut x = 0;
            if phase == HalfPel::Diagonal {
                while x + 16 <= w {
                    let p = diag_avg256(
                        loadn::<16>(reference, ref_stride, rx + x, yy),
                        loadn::<16>(reference, ref_stride, rx + x + 1, yy),
                        loadn::<16>(reference, ref_stride, rx + x, yy + 1),
                        loadn::<16>(reference, ref_stride, rx + x + 1, yy + 1),
                    );
                    _mm_storeu_si128(orow[x..x + 16].as_mut_ptr().cast(), p);
                    x += 16;
                }
            } else {
                while x + 32 <= w {
                    let a = _mm256_loadu_si256(
                        reference[yy * ref_stride + rx + x..][..32].as_ptr().cast(),
                    );
                    let b = _mm256_loadu_si256(
                        reference[(yy + dy) * ref_stride + rx + x + dx..][..32]
                            .as_ptr()
                            .cast(),
                    );
                    _mm256_storeu_si256(orow[x..x + 32].as_mut_ptr().cast(), _mm256_avg_epu8(a, b));
                    x += 32;
                }
                while x + 16 <= w {
                    let a = loadn::<16>(reference, ref_stride, rx + x, yy);
                    let b = loadn::<16>(reference, ref_stride, rx + x + dx, yy + dy);
                    _mm_storeu_si128(orow[x..x + 16].as_mut_ptr().cast(), _mm_avg_epu8(a, b));
                    x += 16;
                }
            }
            if x + 8 <= w {
                let p = match phase {
                    HalfPel::Full => unreachable!("handled by copy_block"),
                    HalfPel::Horizontal => {
                        pred_row::<8, true, false>(reference, ref_stride, rx + x, yy)
                    }
                    HalfPel::Vertical => {
                        pred_row::<8, false, true>(reference, ref_stride, rx + x, yy)
                    }
                    HalfPel::Diagonal => {
                        pred_row::<8, true, true>(reference, ref_stride, rx + x, yy)
                    }
                };
                _mm_storel_epi64(orow[x..x + 8].as_mut_ptr().cast(), p);
                x += 8;
            }
            let px = |px_x: usize, px_y: usize| u16::from(reference[px_y * ref_stride + px_x]);
            for (x, o) in orow.iter_mut().enumerate().skip(x) {
                let v = match phase {
                    HalfPel::Full => unreachable!("handled by copy_block"),
                    HalfPel::Horizontal => (px(rx + x, yy) + px(rx + x + 1, yy) + 1) >> 1,
                    HalfPel::Vertical => (px(rx + x, yy) + px(rx + x, yy + 1) + 1) >> 1,
                    HalfPel::Diagonal => {
                        (px(rx + x, yy)
                            + px(rx + x + 1, yy)
                            + px(rx + x, yy + 1)
                            + px(rx + x + 1, yy + 1)
                            + 2)
                            >> 2
                    }
                };
                *o = v as u8;
            }
        }
    }

    pub(crate) fn interpolate_half_pel(
        reference: &[u8],
        ref_stride: usize,
        rx: usize,
        ry: usize,
        phase: HalfPel,
        w: usize,
        h: usize,
        out: &mut [u8],
    ) {
        assert!(out.len() >= w * h);
        if phase == HalfPel::Full {
            copy_block(reference, ref_stride, rx, ry, w, h, out);
            return;
        }
        // SAFETY: as in `sad_16x16`; fractional-phase slack is part of
        // the kernel contract and enforced by the slices inside.
        unsafe { interp_kernel(reference, ref_stride, rx, ry, phase, w, h, out) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn avg_kernel(a: &[u8], b: &[u8], out: &mut [u8]) {
        let n = a.len();
        let mut i = 0;
        while i + 32 <= n {
            let v = _mm256_avg_epu8(
                _mm256_loadu_si256(a[i..i + 32].as_ptr().cast()),
                _mm256_loadu_si256(b[i..i + 32].as_ptr().cast()),
            );
            _mm256_storeu_si256(out[i..i + 32].as_mut_ptr().cast(), v);
            i += 32;
        }
        if i + 16 <= n {
            let v = _mm_avg_epu8(
                _mm_loadu_si128(a[i..i + 16].as_ptr().cast()),
                _mm_loadu_si128(b[i..i + 16].as_ptr().cast()),
            );
            _mm_storeu_si128(out[i..i + 16].as_mut_ptr().cast(), v);
            i += 16;
        }
        for i in i..n {
            out[i] = ((u16::from(a[i]) + u16::from(b[i]) + 1) >> 1) as u8;
        }
    }

    pub(crate) fn average_pixels(a: &[u8], b: &[u8], out: &mut [u8]) {
        assert_eq!(a.len(), b.len());
        assert!(out.len() >= a.len());
        // SAFETY: as in `sad_16x16`.
        unsafe { avg_kernel(a, b, out) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn copy_block_kernel(
        src: &[u8],
        src_stride: usize,
        sx: usize,
        sy: usize,
        w: usize,
        h: usize,
        out: &mut [u8],
    ) {
        for y in 0..h {
            let row = &src[(sy + y) * src_stride + sx..][..w];
            let dst = &mut out[y * w..][..w];
            let mut x = 0;
            while x + 32 <= w {
                let v = _mm256_loadu_si256(row[x..x + 32].as_ptr().cast());
                _mm256_storeu_si256(dst[x..x + 32].as_mut_ptr().cast(), v);
                x += 32;
            }
            if x + 16 <= w {
                let v = _mm_loadu_si128(row[x..x + 16].as_ptr().cast());
                _mm_storeu_si128(dst[x..x + 16].as_mut_ptr().cast(), v);
                x += 16;
            }
            if x + 8 <= w {
                let v = _mm_loadl_epi64(row[x..x + 8].as_ptr().cast());
                _mm_storel_epi64(dst[x..x + 8].as_mut_ptr().cast(), v);
                x += 8;
            }
            dst[x..].copy_from_slice(&row[x..]);
        }
    }

    pub(crate) fn copy_block(
        src: &[u8],
        src_stride: usize,
        sx: usize,
        sy: usize,
        w: usize,
        h: usize,
        out: &mut [u8],
    ) {
        assert!(out.len() >= w * h);
        // SAFETY: as in `sad_16x16`.
        unsafe { copy_block_kernel(src, src_stride, sx, sy, w, h, out) }
    }

    /// `floor(n·m / 2²⁴)` per u32 lane (`n < 2¹⁶`, `m ≤ 2²³`): the same
    /// Granlund–Montgomery magic multiply as `quant::StepDiv`, with the
    /// 64-bit products formed by `vpmuludq` over even/odd lane pairs.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn magic_div(n: __m256i, m: __m256i) -> __m256i {
        let even = _mm256_srli_epi64::<24>(_mm256_mul_epu32(n, m));
        let odd = _mm256_srli_epi64::<24>(_mm256_mul_epu32(_mm256_srli_epi64::<32>(n), m));
        _mm256_or_si256(even, _mm256_slli_epi64::<32>(odd))
    }

    /// `(v ^ s) - s` where `s` is `v`'s sign broadcast: applies
    /// `signum(v)` to a non-negative magnitude exactly like the scalar
    /// `level * c.signum()` (zero stays zero because the level for a
    /// zero coefficient is already zero).
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn apply_sign(mag: __m256i, v: __m256i) -> __m256i {
        let s = _mm256_srai_epi32::<31>(v);
        _mm256_sub_epi32(_mm256_xor_si256(mag, s), s)
    }

    /// Widens 16 packed i16 lanes to two 8×i32 vectors, maps each
    /// through the `$v => $body` lane expression, and re-packs
    /// (`vpackssdw` + lane-fix permute). The pack cannot saturate:
    /// every quantizer output lies in `[-2048, 2047]`. A macro rather
    /// than a closure so the body stays inside the caller's
    /// `target_feature` + `unsafe` context.
    macro_rules! quant_loop {
        ($src:expr, $out:expr, $v:ident => $body:expr) => {{
            let mut i = 0;
            while i < 64 {
                let v16 = _mm256_loadu_si256($src.data.as_ptr().add(i).cast());
                let ql = {
                    let $v = _mm256_cvtepi16_epi32(_mm256_castsi256_si128(v16));
                    $body
                };
                let qh = {
                    let $v = _mm256_cvtepi16_epi32(_mm256_extracti128_si256::<1>(v16));
                    $body
                };
                let packed = _mm256_packs_epi32(ql, qh);
                let fixed = _mm256_permute4x64_epi64::<0b11011000>(packed);
                _mm256_storeu_si256($out.data.as_mut_ptr().add(i).cast(), fixed);
                i += 16;
            }
        }};
    }

    #[target_feature(enable = "avx2")]
    unsafe fn quantize_intra_kernel(coefs: &CoefBlock, qp: u8) -> CoefBlock {
        let q = check_qp(qp);
        let m = _mm256_set1_epi32(StepDiv::new(q).m as i32);
        let qv = _mm256_set1_epi32(i32::from(q));
        let cap = _mm256_set1_epi32(2047);
        let mut out = CoefBlock::default();
        quant_loop!(coefs, out, v => {
            let n = _mm256_add_epi32(_mm256_abs_epi32(v), qv);
            apply_sign(_mm256_min_epi32(magic_div(n, m), cap), v)
        });
        // DC uses the fixed scaler 8, exactly the scalar expression.
        out.data[0] = (coefs.data[0] + if coefs.data[0] >= 0 { 4 } else { -4 }) / 8;
        out
    }

    pub(crate) fn quantize_intra(coefs: &CoefBlock, qp: u8) -> CoefBlock {
        // SAFETY: as in `sad_16x16`.
        unsafe { quantize_intra_kernel(coefs, qp) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn quantize_inter_kernel(coefs: &CoefBlock, qp: u8) -> CoefBlock {
        let q = check_qp(qp);
        let m = _mm256_set1_epi32(StepDiv::new(q).m as i32);
        let half_q = _mm256_set1_epi32(i32::from(q) / 2);
        let cap = _mm256_set1_epi32(2047);
        let zero = _mm256_setzero_si256();
        let mut out = CoefBlock::default();
        quant_loop!(coefs, out, v => {
            // Dead zone: numerators ≤ 0 clamp to 0 before the divide
            // (`magic_div(0) == 0`), matching the scalar `n <= 0` arm.
            let n = _mm256_sub_epi32(_mm256_abs_epi32(v), half_q);
            let nn = _mm256_max_epi32(n, zero);
            apply_sign(_mm256_min_epi32(magic_div(nn, m), cap), v)
        });
        out
    }

    pub(crate) fn quantize_inter(coefs: &CoefBlock, qp: u8) -> CoefBlock {
        // SAFETY: as in `sad_16x16`.
        unsafe { quantize_inter_kernel(coefs, qp) }
    }

    /// The shared AC reconstruction `signum(l)·(q·(2|l|+1) − [q even])`,
    /// clamped to `[-2048, 2047]`, with zero levels forced to zero.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn dequant_lanes(v: __m256i, qv: __m256i, adj: __m256i) -> __m256i {
        let zero = _mm256_setzero_si256();
        let one = _mm256_set1_epi32(1);
        let zmask = _mm256_cmpeq_epi32(v, zero);
        let al = _mm256_abs_epi32(v);
        let t = _mm256_sub_epi32(
            _mm256_mullo_epi32(qv, _mm256_add_epi32(_mm256_add_epi32(al, al), one)),
            adj,
        );
        let clamped = _mm256_max_epi32(
            _mm256_min_epi32(apply_sign(t, v), _mm256_set1_epi32(2047)),
            _mm256_set1_epi32(-2048),
        );
        _mm256_andnot_si256(zmask, clamped)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn dequantize_kernel<const INTRA: bool>(levels: &CoefBlock, qp: u8) -> CoefBlock {
        let q = check_qp(qp);
        let qv = _mm256_set1_epi32(i32::from(q));
        let adj = _mm256_set1_epi32(i32::from(q % 2 == 0));
        let mut out = CoefBlock::default();
        quant_loop!(levels, out, v => dequant_lanes(v, qv, adj));
        if INTRA {
            out.data[0] = levels.data[0].saturating_mul(8);
        }
        out
    }

    pub(crate) fn dequantize_intra(levels: &CoefBlock, qp: u8) -> CoefBlock {
        // SAFETY: as in `sad_16x16`.
        unsafe { dequantize_kernel::<true>(levels, qp) }
    }

    pub(crate) fn dequantize_inter(levels: &CoefBlock, qp: u8) -> CoefBlock {
        // SAFETY: as in `sad_16x16`.
        unsafe { dequantize_kernel::<false>(levels, qp) }
    }
}
