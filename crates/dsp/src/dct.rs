//! 8×8 forward and inverse discrete cosine transform.
//!
//! MPEG-4 texture coding (ISO/IEC 14496-2 Annex A) specifies a separable
//! 2-D type-II DCT. We provide a double-precision reference implementation
//! (`*_f64`) and the integer-in/integer-out pair the codec uses, which
//! rounds to the nearest coefficient. The inverse transform satisfies the
//! IEEE-1180-style accuracy needed for drift-free reconstruction at the
//! bit depths this codec uses.

use crate::{Block, BLOCK};

/// Approximate compute operations per 8×8 DCT or IDCT (two passes of
/// eight 8-point transforms, ~32 mul + ~32 add each). Charged to the
/// timing model per transformed block.
pub const DCT_OPS: u64 = 1024;

/// An 8×8 block of DCT coefficients (row-major, DC at index 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoefBlock {
    /// Row-major 8×8 coefficients.
    pub data: [i16; 64],
}

impl Default for CoefBlock {
    fn default() -> Self {
        CoefBlock { data: [0; 64] }
    }
}

impl CoefBlock {
    /// Creates a coefficient block from row-major values.
    pub fn from_coefs(data: [i16; 64]) -> Self {
        CoefBlock { data }
    }

    /// The DC (0,0) coefficient.
    pub fn dc(&self) -> i16 {
        self.data[0]
    }

    /// `true` when every coefficient is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&v| v == 0)
    }
}

/// Cosine basis: `COS[k][n] = cos((2n+1) k π / 16)`.
fn cos_table() -> [[f64; BLOCK]; BLOCK] {
    let mut t = [[0.0; BLOCK]; BLOCK];
    for (k, row) in t.iter_mut().enumerate() {
        for (n, v) in row.iter_mut().enumerate() {
            *v = (std::f64::consts::PI * (2.0 * n as f64 + 1.0) * k as f64 / 16.0).cos();
        }
    }
    t
}

fn scale(k: usize) -> f64 {
    if k == 0 {
        (1.0f64 / 8.0).sqrt()
    } else {
        (2.0f64 / 8.0).sqrt()
    }
}

/// Forward 2-D DCT on `f64` samples. Reference implementation.
pub fn forward_dct_f64(input: &[f64; 64]) -> [f64; 64] {
    let cos = cos_table();
    let mut tmp = [0.0f64; 64];
    // Rows.
    for r in 0..BLOCK {
        for k in 0..BLOCK {
            let mut acc = 0.0;
            for n in 0..BLOCK {
                acc += input[r * BLOCK + n] * cos[k][n];
            }
            tmp[r * BLOCK + k] = scale(k) * acc;
        }
    }
    // Columns.
    let mut out = [0.0f64; 64];
    for c in 0..BLOCK {
        for k in 0..BLOCK {
            let mut acc = 0.0;
            for n in 0..BLOCK {
                acc += tmp[n * BLOCK + c] * cos[k][n];
            }
            out[k * BLOCK + c] = scale(k) * acc;
        }
    }
    out
}

/// Inverse 2-D DCT on `f64` coefficients. Reference implementation.
pub fn inverse_dct_f64(input: &[f64; 64]) -> [f64; 64] {
    let cos = cos_table();
    let mut tmp = [0.0f64; 64];
    // Columns first (order is irrelevant for a separable transform).
    for c in 0..BLOCK {
        for n in 0..BLOCK {
            let mut acc = 0.0;
            for k in 0..BLOCK {
                acc += scale(k) * input[k * BLOCK + c] * cos[k][n];
            }
            tmp[n * BLOCK + c] = acc;
        }
    }
    let mut out = [0.0f64; 64];
    for r in 0..BLOCK {
        for n in 0..BLOCK {
            let mut acc = 0.0;
            for k in 0..BLOCK {
                acc += scale(k) * tmp[r * BLOCK + k] * cos[k][n];
            }
            out[r * BLOCK + n] = acc;
        }
    }
    out
}

/// Forward DCT of integer samples with round-to-nearest coefficients.
pub fn forward_dct(block: &Block) -> CoefBlock {
    let mut f = [0.0f64; 64];
    for (dst, &src) in f.iter_mut().zip(block.data.iter()) {
        *dst = f64::from(src);
    }
    let out = forward_dct_f64(&f);
    let mut c = CoefBlock::default();
    for (dst, &src) in c.data.iter_mut().zip(out.iter()) {
        *dst = src.round().clamp(-32768.0, 32767.0) as i16;
    }
    c
}

/// Inverse DCT of integer coefficients with round-to-nearest samples.
pub fn inverse_dct(coefs: &CoefBlock) -> Block {
    let mut f = [0.0f64; 64];
    for (dst, &src) in f.iter_mut().zip(coefs.data.iter()) {
        *dst = f64::from(src);
    }
    let out = inverse_dct_f64(&f);
    let mut b = Block::default();
    for (dst, &src) in b.data.iter_mut().zip(out.iter()) {
        *dst = src.round().clamp(-32768.0, 32767.0) as i16;
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_only_block_transforms_to_flat_dc() {
        // A constant block has all energy in the DC coefficient.
        let b = Block::from_samples([100; 64]);
        let c = forward_dct(&b);
        assert_eq!(c.dc(), 800); // 100 * 8 (1/sqrt(64) * 64 samples * 100)
        for &v in &c.data[1..] {
            assert_eq!(v, 0);
        }
    }

    #[test]
    fn impulse_roundtrips_within_one() {
        let mut b = Block::default();
        b.data[27] = 255;
        let rec = inverse_dct(&forward_dct(&b));
        for i in 0..64 {
            assert!(
                (rec.data[i] - b.data[i]).abs() <= 1,
                "index {i}: {} vs {}",
                rec.data[i],
                b.data[i]
            );
        }
    }

    #[test]
    fn parseval_energy_preserved_f64() {
        // Orthonormal transform preserves the L2 norm.
        let mut input = [0.0f64; 64];
        for (i, v) in input.iter_mut().enumerate() {
            *v = ((i * 37 + 11) % 255) as f64 - 128.0;
        }
        let out = forward_dct_f64(&input);
        let e_in: f64 = input.iter().map(|v| v * v).sum();
        let e_out: f64 = out.iter().map(|v| v * v).sum();
        assert!((e_in - e_out).abs() < 1e-6 * e_in.max(1.0));
    }

    #[test]
    fn inverse_is_exact_inverse_f64() {
        let mut input = [0.0f64; 64];
        for (i, v) in input.iter_mut().enumerate() {
            *v = ((i as f64) * 1.7).sin() * 100.0;
        }
        let rec = inverse_dct_f64(&forward_dct_f64(&input));
        for i in 0..64 {
            assert!((rec[i] - input[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn horizontal_gradient_concentrates_in_first_row_coefs() {
        let mut b = Block::default();
        for r in 0..8 {
            for c in 0..8 {
                *b.at_mut(r, c) = (c as i16) * 16;
            }
        }
        let coefs = forward_dct(&b);
        // Energy should live in row 0 (horizontal frequencies) only.
        for r in 1..8 {
            for c in 0..8 {
                assert_eq!(coefs.data[r * 8 + c], 0, "row {r} col {c}");
            }
        }
        assert_ne!(coefs.data[1], 0);
    }
}
