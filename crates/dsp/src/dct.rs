//! 8×8 forward and inverse discrete cosine transform.
//!
//! MPEG-4 texture coding (ISO/IEC 14496-2 Annex A) specifies a separable
//! 2-D type-II DCT. We provide a double-precision reference implementation
//! (`*_f64`) and the integer-in/integer-out pair the codec uses, which
//! rounds to the nearest coefficient. The inverse transform satisfies the
//! IEEE-1180-style accuracy needed for drift-free reconstruction at the
//! bit depths this codec uses.

use crate::{Block, BLOCK};

/// Approximate compute operations per 8×8 DCT or IDCT (two passes of
/// eight 8-point transforms, ~32 mul + ~32 add each). Charged to the
/// timing model per transformed block.
pub const DCT_OPS: u64 = 1024;

/// An 8×8 block of DCT coefficients (row-major, DC at index 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoefBlock {
    /// Row-major 8×8 coefficients.
    pub data: [i16; 64],
}

impl Default for CoefBlock {
    fn default() -> Self {
        CoefBlock { data: [0; 64] }
    }
}

impl CoefBlock {
    /// Creates a coefficient block from row-major values.
    pub fn from_coefs(data: [i16; 64]) -> Self {
        CoefBlock { data }
    }

    /// The DC (0,0) coefficient.
    pub fn dc(&self) -> i16 {
        self.data[0]
    }

    /// `true` when every coefficient is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&v| v == 0)
    }
}

/// Precomputed transform basis, materialised once.
///
/// `cos` is the basis `cos[k][n] = cos((2n+1) k π / 16)`; `cos_t` is
/// its exact transpose (the same `f64` values, copied) so both loop
/// orientations read contiguous rows; `scale` holds the orthonormal
/// scale factors. The basis is a pure function of the block size, but
/// `cos` is not a `const fn`, so the tables are built lazily and
/// shared — rebuilding them per call cost 64 libm `cos` evaluations
/// per DCT, which dominated encode profiles.
struct Tables {
    cos: [[f64; BLOCK]; BLOCK],
    cos_t: [[f64; BLOCK]; BLOCK],
    scale: [f64; BLOCK],
}

fn tables() -> &'static Tables {
    static TABLES: std::sync::OnceLock<Tables> = std::sync::OnceLock::new();
    TABLES.get_or_init(|| {
        let mut cos = [[0.0; BLOCK]; BLOCK];
        for (k, row) in cos.iter_mut().enumerate() {
            for (n, v) in row.iter_mut().enumerate() {
                *v = (std::f64::consts::PI * (2.0 * n as f64 + 1.0) * k as f64 / 16.0).cos();
            }
        }
        let mut cos_t = [[0.0; BLOCK]; BLOCK];
        for k in 0..BLOCK {
            for n in 0..BLOCK {
                cos_t[n][k] = cos[k][n];
            }
        }
        let mut scale = [(2.0f64 / 8.0).sqrt(); BLOCK];
        scale[0] = (1.0f64 / 8.0).sqrt();
        Tables { cos, cos_t, scale }
    })
}

/// Forward 2-D DCT on `f64` samples. Reference implementation.
///
/// The loops run the eight per-`k` accumulators side by side so the
/// compiler can vectorise across them; each accumulator still sums the
/// same products in the same ascending-`n` order as the textbook
/// per-coefficient loop, so results are bit-identical to it (verified
/// by `matches_naive_transcription_bit_for_bit` below). Rust performs
/// no FP contraction or reassociation, so this holds on every target.
pub fn forward_dct_f64(input: &[f64; 64]) -> [f64; 64] {
    #[cfg(target_arch = "x86_64")]
    if crate::dispatch::active_tier() == crate::dispatch::KernelTier::Avx2 {
        // SAFETY: the dispatch tier is only Avx2 after feature
        // detection succeeded. `vmulpd`/`vaddpd` are IEEE-754 exact per
        // lane and the kernel performs the same operations in the same
        // order, so lane width does not change any rounding (pinned by
        // the bit-for-bit test) — tier selection affects speed only.
        return unsafe { avx2::forward(input) };
    }
    forward_passes(input)
}

#[inline(always)]
fn forward_passes(input: &[f64; 64]) -> [f64; 64] {
    // Both passes walk two independent rows (or columns) per
    // iteration: each accumulator still sums its own products in
    // ascending-`n` order (bit-identical to the one-row form), but the
    // two interleaved dependency chains hide FP add latency and share
    // each basis-row load.
    let t = tables();
    let mut tmp = [0.0f64; 64];
    // Rows.
    for r in 0..BLOCK / 2 {
        let (ra, rb) = (2 * r, 2 * r + 1);
        let mut acc_a = [0.0f64; BLOCK];
        let mut acc_b = [0.0f64; BLOCK];
        for n in 0..BLOCK {
            let xa = input[ra * BLOCK + n];
            let xb = input[rb * BLOCK + n];
            for k in 0..BLOCK {
                acc_a[k] += xa * t.cos_t[n][k];
                acc_b[k] += xb * t.cos_t[n][k];
            }
        }
        for k in 0..BLOCK {
            tmp[ra * BLOCK + k] = t.scale[k] * acc_a[k];
            tmp[rb * BLOCK + k] = t.scale[k] * acc_b[k];
        }
    }
    // Columns.
    let mut out = [0.0f64; 64];
    for c in 0..BLOCK / 2 {
        let (ca, cb) = (2 * c, 2 * c + 1);
        let mut acc_a = [0.0f64; BLOCK];
        let mut acc_b = [0.0f64; BLOCK];
        for n in 0..BLOCK {
            let xa = tmp[n * BLOCK + ca];
            let xb = tmp[n * BLOCK + cb];
            for k in 0..BLOCK {
                acc_a[k] += xa * t.cos_t[n][k];
                acc_b[k] += xb * t.cos_t[n][k];
            }
        }
        for k in 0..BLOCK {
            out[k * BLOCK + ca] = t.scale[k] * acc_a[k];
            out[k * BLOCK + cb] = t.scale[k] * acc_b[k];
        }
    }
    out
}

/// Inverse 2-D DCT on `f64` coefficients. Reference implementation.
///
/// Accumulates the eight per-`n` sums side by side (same bit-exactness
/// argument as [`forward_dct_f64`]): the weight `scale(k) · input` is
/// formed first exactly as the naive loop's left-associated product,
/// then each `acc[n]` adds `weight · cos[k][n]` in ascending-`k` order.
pub fn inverse_dct_f64(input: &[f64; 64]) -> [f64; 64] {
    #[cfg(target_arch = "x86_64")]
    if crate::dispatch::active_tier() == crate::dispatch::KernelTier::Avx2 {
        // SAFETY: as in `forward_dct_f64` — tier implies detection
        // succeeded; rounding unchanged by lane width.
        return unsafe { avx2::inverse(input) };
    }
    inverse_passes(input)
}

/// Explicit 4-lane AVX2 kernels for both transforms.
///
/// Each output coefficient's accumulator executes the same multiplies
/// and additions in the same order as the scalar passes — one product
/// per basis index, summed ascending — only grouped four accumulators
/// to a vector register. `vmulpd`/`vaddpd` round each lane exactly like
/// the corresponding scalar `mulsd`/`addsd` (IEEE-754 binary64), and no
/// FMA contraction or reassociation is introduced, so the results are
/// bit-identical to the scalar code and to the naive transcription
/// (pinned by `matches_naive_transcription_bit_for_bit`).
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{tables, BLOCK};
    use std::arch::x86_64::*;

    #[target_feature(enable = "avx2")]
    pub unsafe fn forward(input: &[f64; 64]) -> [f64; 64] {
        let t = tables();
        // Rows: tmp[r][k] = scale[k] · Σ_n input[r][n]·cos_t[n][k],
        // vector lanes spanning k.
        let s_lo = _mm256_loadu_pd(t.scale.as_ptr());
        let s_hi = _mm256_loadu_pd(t.scale.as_ptr().add(4));
        let mut tmp = [0.0f64; 64];
        for r in 0..BLOCK {
            let mut acc_lo = _mm256_setzero_pd();
            let mut acc_hi = _mm256_setzero_pd();
            for n in 0..BLOCK {
                let x = _mm256_set1_pd(input[r * BLOCK + n]);
                let c_lo = _mm256_loadu_pd(t.cos_t[n].as_ptr());
                let c_hi = _mm256_loadu_pd(t.cos_t[n].as_ptr().add(4));
                acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(x, c_lo));
                acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(x, c_hi));
            }
            _mm256_storeu_pd(tmp.as_mut_ptr().add(r * BLOCK), _mm256_mul_pd(s_lo, acc_lo));
            _mm256_storeu_pd(
                tmp.as_mut_ptr().add(r * BLOCK + 4),
                _mm256_mul_pd(s_hi, acc_hi),
            );
        }
        // Columns: out[k][c] = scale[k] · Σ_n tmp[n][c]·cos_t[n][k],
        // vector lanes spanning c so every load is a contiguous row.
        let mut out = [0.0f64; 64];
        for k in 0..BLOCK {
            let mut acc_lo = _mm256_setzero_pd();
            let mut acc_hi = _mm256_setzero_pd();
            for n in 0..BLOCK {
                let c = _mm256_set1_pd(t.cos_t[n][k]);
                let x_lo = _mm256_loadu_pd(tmp.as_ptr().add(n * BLOCK));
                let x_hi = _mm256_loadu_pd(tmp.as_ptr().add(n * BLOCK + 4));
                acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(x_lo, c));
                acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(x_hi, c));
            }
            let s = _mm256_set1_pd(t.scale[k]);
            _mm256_storeu_pd(out.as_mut_ptr().add(k * BLOCK), _mm256_mul_pd(s, acc_lo));
            _mm256_storeu_pd(
                out.as_mut_ptr().add(k * BLOCK + 4),
                _mm256_mul_pd(s, acc_hi),
            );
        }
        out
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn inverse(input: &[f64; 64]) -> [f64; 64] {
        let t = tables();
        // Weight rows w[k][c] = scale[k]·input[k][c], formed first
        // exactly like the scalar loop's left-associated product.
        let mut w = [0.0f64; 64];
        for k in 0..BLOCK {
            let s = _mm256_set1_pd(t.scale[k]);
            let i_lo = _mm256_loadu_pd(input.as_ptr().add(k * BLOCK));
            let i_hi = _mm256_loadu_pd(input.as_ptr().add(k * BLOCK + 4));
            _mm256_storeu_pd(w.as_mut_ptr().add(k * BLOCK), _mm256_mul_pd(s, i_lo));
            _mm256_storeu_pd(w.as_mut_ptr().add(k * BLOCK + 4), _mm256_mul_pd(s, i_hi));
        }
        // Columns: tmp[n][c] = Σ_k w[k][c]·cos[k][n], lanes spanning c.
        let mut tmp = [0.0f64; 64];
        for n in 0..BLOCK {
            let mut acc_lo = _mm256_setzero_pd();
            let mut acc_hi = _mm256_setzero_pd();
            for k in 0..BLOCK {
                let c = _mm256_set1_pd(t.cos[k][n]);
                let w_lo = _mm256_loadu_pd(w.as_ptr().add(k * BLOCK));
                let w_hi = _mm256_loadu_pd(w.as_ptr().add(k * BLOCK + 4));
                acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(w_lo, c));
                acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(w_hi, c));
            }
            _mm256_storeu_pd(tmp.as_mut_ptr().add(n * BLOCK), acc_lo);
            _mm256_storeu_pd(tmp.as_mut_ptr().add(n * BLOCK + 4), acc_hi);
        }
        // Rows: out[r][n] = Σ_k (scale[k]·tmp[r][k])·cos[k][n], lanes
        // spanning n.
        let mut out = [0.0f64; 64];
        for r in 0..BLOCK {
            let mut acc_lo = _mm256_setzero_pd();
            let mut acc_hi = _mm256_setzero_pd();
            for k in 0..BLOCK {
                let wv = _mm256_set1_pd(t.scale[k] * tmp[r * BLOCK + k]);
                let c_lo = _mm256_loadu_pd(t.cos[k].as_ptr());
                let c_hi = _mm256_loadu_pd(t.cos[k].as_ptr().add(4));
                acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(wv, c_lo));
                acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(wv, c_hi));
            }
            _mm256_storeu_pd(out.as_mut_ptr().add(r * BLOCK), acc_lo);
            _mm256_storeu_pd(out.as_mut_ptr().add(r * BLOCK + 4), acc_hi);
        }
        out
    }
}

#[inline(always)]
fn inverse_passes(input: &[f64; 64]) -> [f64; 64] {
    // Two independent columns (then rows) per iteration, as in
    // `forward_passes`: same per-accumulator operation order, twice the
    // instruction-level parallelism, shared basis-row loads.
    let t = tables();
    let mut tmp = [0.0f64; 64];
    // Columns first (order is irrelevant for a separable transform).
    for c in 0..BLOCK / 2 {
        let (ca, cb) = (2 * c, 2 * c + 1);
        let mut acc_a = [0.0f64; BLOCK];
        let mut acc_b = [0.0f64; BLOCK];
        for k in 0..BLOCK {
            let wa = t.scale[k] * input[k * BLOCK + ca];
            let wb = t.scale[k] * input[k * BLOCK + cb];
            for n in 0..BLOCK {
                acc_a[n] += wa * t.cos[k][n];
                acc_b[n] += wb * t.cos[k][n];
            }
        }
        for n in 0..BLOCK {
            tmp[n * BLOCK + ca] = acc_a[n];
            tmp[n * BLOCK + cb] = acc_b[n];
        }
    }
    let mut out = [0.0f64; 64];
    for r in 0..BLOCK / 2 {
        let (ra, rb) = (2 * r, 2 * r + 1);
        let mut acc_a = [0.0f64; BLOCK];
        let mut acc_b = [0.0f64; BLOCK];
        for k in 0..BLOCK {
            let wa = t.scale[k] * tmp[ra * BLOCK + k];
            let wb = t.scale[k] * tmp[rb * BLOCK + k];
            for n in 0..BLOCK {
                acc_a[n] += wa * t.cos[k][n];
                acc_b[n] += wb * t.cos[k][n];
            }
        }
        out[ra * BLOCK..][..BLOCK].copy_from_slice(&acc_a);
        out[rb * BLOCK..][..BLOCK].copy_from_slice(&acc_b);
    }
    out
}

/// Forward DCT of integer samples with round-to-nearest coefficients.
pub fn forward_dct(block: &Block) -> CoefBlock {
    // An all-zero block transforms to exactly zero (every accumulator
    // sums products with 0.0, scales to ±0.0 and rounds to 0), so the
    // O(N³) float passes can be skipped bit-identically. The encoder's
    // inter path hits this constantly on static content.
    if block.is_zero() {
        return CoefBlock::default();
    }
    let mut f = [0.0f64; 64];
    for (dst, &src) in f.iter_mut().zip(block.data.iter()) {
        *dst = f64::from(src);
    }
    let out = forward_dct_f64(&f);
    let mut c = CoefBlock::default();
    for (dst, &src) in c.data.iter_mut().zip(out.iter()) {
        *dst = src.round().clamp(-32768.0, 32767.0) as i16;
    }
    c
}

/// Inverse DCT of integer coefficients with round-to-nearest samples.
pub fn inverse_dct(coefs: &CoefBlock) -> Block {
    // Mirror of the forward zero short-circuit: dequantized all-zero
    // coefficients reconstruct to exactly zero samples. Quantization
    // zeroes most inter blocks, so the local-decode loop takes this
    // path for the bulk of reconstructions.
    if coefs.is_zero() {
        return Block::default();
    }
    let mut f = [0.0f64; 64];
    for (dst, &src) in f.iter_mut().zip(coefs.data.iter()) {
        *dst = f64::from(src);
    }
    let out = inverse_dct_f64(&f);
    let mut b = Block::default();
    for (dst, &src) in b.data.iter_mut().zip(out.iter()) {
        *dst = src.round().clamp(-32768.0, 32767.0) as i16;
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_only_block_transforms_to_flat_dc() {
        // A constant block has all energy in the DC coefficient.
        let b = Block::from_samples([100; 64]);
        let c = forward_dct(&b);
        assert_eq!(c.dc(), 800); // 100 * 8 (1/sqrt(64) * 64 samples * 100)
        for &v in &c.data[1..] {
            assert_eq!(v, 0);
        }
    }

    #[test]
    fn impulse_roundtrips_within_one() {
        let mut b = Block::default();
        b.data[27] = 255;
        let rec = inverse_dct(&forward_dct(&b));
        for i in 0..64 {
            assert!(
                (rec.data[i] - b.data[i]).abs() <= 1,
                "index {i}: {} vs {}",
                rec.data[i],
                b.data[i]
            );
        }
    }

    #[test]
    fn parseval_energy_preserved_f64() {
        // Orthonormal transform preserves the L2 norm.
        let mut input = [0.0f64; 64];
        for (i, v) in input.iter_mut().enumerate() {
            *v = ((i * 37 + 11) % 255) as f64 - 128.0;
        }
        let out = forward_dct_f64(&input);
        let e_in: f64 = input.iter().map(|v| v * v).sum();
        let e_out: f64 = out.iter().map(|v| v * v).sum();
        assert!((e_in - e_out).abs() < 1e-6 * e_in.max(1.0));
    }

    #[test]
    fn inverse_is_exact_inverse_f64() {
        let mut input = [0.0f64; 64];
        for (i, v) in input.iter_mut().enumerate() {
            *v = ((i as f64) * 1.7).sin() * 100.0;
        }
        let rec = inverse_dct_f64(&forward_dct_f64(&input));
        for i in 0..64 {
            assert!((rec[i] - input[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn matches_naive_transcription_bit_for_bit() {
        // The production loops interleave the eight accumulators for
        // vectorisation; this pins them against a direct transcription
        // of the textbook per-coefficient loops. Equality is exact
        // (`to_bits`), not approximate — the restructuring must not
        // change a single rounding.
        fn scale(k: usize) -> f64 {
            if k == 0 {
                (1.0f64 / 8.0).sqrt()
            } else {
                (2.0f64 / 8.0).sqrt()
            }
        }
        let cos = &tables().cos;
        let naive_fwd = |input: &[f64; 64]| {
            let mut tmp = [0.0f64; 64];
            for r in 0..BLOCK {
                for k in 0..BLOCK {
                    let mut acc = 0.0;
                    for n in 0..BLOCK {
                        acc += input[r * BLOCK + n] * cos[k][n];
                    }
                    tmp[r * BLOCK + k] = scale(k) * acc;
                }
            }
            let mut out = [0.0f64; 64];
            for c in 0..BLOCK {
                for k in 0..BLOCK {
                    let mut acc = 0.0;
                    for n in 0..BLOCK {
                        acc += tmp[n * BLOCK + c] * cos[k][n];
                    }
                    out[k * BLOCK + c] = scale(k) * acc;
                }
            }
            out
        };
        let naive_inv = |input: &[f64; 64]| {
            let mut tmp = [0.0f64; 64];
            for c in 0..BLOCK {
                for n in 0..BLOCK {
                    let mut acc = 0.0;
                    for k in 0..BLOCK {
                        acc += scale(k) * input[k * BLOCK + c] * cos[k][n];
                    }
                    tmp[n * BLOCK + c] = acc;
                }
            }
            let mut out = [0.0f64; 64];
            for r in 0..BLOCK {
                for n in 0..BLOCK {
                    let mut acc = 0.0;
                    for k in 0..BLOCK {
                        acc += scale(k) * tmp[r * BLOCK + k] * cos[k][n];
                    }
                    out[r * BLOCK + n] = acc;
                }
            }
            out
        };
        let mut state = 0x2545f4914f6cdd1du64;
        for _ in 0..50 {
            let mut input = [0.0f64; 64];
            for v in input.iter_mut() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                *v = f64::from((state % 511) as i32 - 255);
            }
            let fast = forward_dct_f64(&input);
            let slow = naive_fwd(&input);
            for i in 0..64 {
                assert_eq!(fast[i].to_bits(), slow[i].to_bits(), "fwd idx {i}");
            }
            let fast = inverse_dct_f64(&input);
            let slow = naive_inv(&input);
            for i in 0..64 {
                assert_eq!(fast[i].to_bits(), slow[i].to_bits(), "inv idx {i}");
            }
        }
    }

    #[test]
    fn zero_block_short_circuits_exactly() {
        assert_eq!(forward_dct(&Block::default()), CoefBlock::default());
        assert_eq!(inverse_dct(&CoefBlock::default()), Block::default());
        // And the short-circuit agrees with what the full pipeline
        // would have produced.
        let f = forward_dct_f64(&[0.0; 64]);
        assert!(f.iter().all(|v| v.round() == 0.0));
    }

    #[test]
    fn horizontal_gradient_concentrates_in_first_row_coefs() {
        let mut b = Block::default();
        for r in 0..8 {
            for c in 0..8 {
                *b.at_mut(r, c) = (c as i16) * 16;
            }
        }
        let coefs = forward_dct(&b);
        // Energy should live in row 0 (horizontal frequencies) only.
        for r in 1..8 {
            for c in 0..8 {
                assert_eq!(coefs.data[r * 8 + c], 0, "row {r} col {c}");
            }
        }
        assert_ne!(coefs.data[1], 0);
    }
}
