//! Zigzag coefficient scan (ISO/IEC 14496-2 Figure 7-2, the classic
//! MPEG scan order), mapping the 8×8 coefficient grid to a 64-entry
//! sequence ordered by increasing spatial frequency.

use crate::dct::CoefBlock;

/// Zigzag scan order: `ZIGZAG[k]` is the row-major index of the k-th
/// scanned coefficient.
pub const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// Scans a coefficient block into zigzag order.
pub fn scan_zigzag(coefs: &CoefBlock) -> [i16; 64] {
    let mut out = [0i16; 64];
    for (k, &idx) in ZIGZAG.iter().enumerate() {
        out[k] = coefs.data[idx];
    }
    out
}

/// Reconstructs a coefficient block from a zigzag-ordered sequence.
pub fn unscan_zigzag(scanned: &[i16; 64]) -> CoefBlock {
    let mut out = CoefBlock::default();
    for (k, &idx) in ZIGZAG.iter().enumerate() {
        out.data[idx] = scanned[k];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &idx in &ZIGZAG {
            assert!(idx < 64);
            assert!(!seen[idx], "index {idx} repeated");
            seen[idx] = true;
        }
    }

    #[test]
    fn zigzag_starts_dc_and_walks_antidiagonals() {
        assert_eq!(ZIGZAG[0], 0);
        assert_eq!(ZIGZAG[1], 1); // (0,1)
        assert_eq!(ZIGZAG[2], 8); // (1,0)
        assert_eq!(ZIGZAG[63], 63); // (7,7)
                                    // Manhattan distance from DC is non-decreasing along the scan.
        let dist = |i: usize| (i / 8) + (i % 8);
        for w in ZIGZAG.windows(2) {
            assert!(dist(w[1]) + 1 >= dist(w[0]), "{w:?}");
        }
    }

    #[test]
    fn scan_unscan_roundtrip() {
        let mut c = CoefBlock::default();
        for (i, v) in c.data.iter_mut().enumerate() {
            *v = i as i16 * 3 - 70;
        }
        assert_eq!(unscan_zigzag(&scan_zigzag(&c)), c);
    }

    #[test]
    fn low_frequency_coefs_scan_first() {
        let mut c = CoefBlock::default();
        c.data[0] = 10; // DC
        c.data[1] = 20; // (0,1)
        c.data[8] = 30; // (1,0)
        let s = scan_zigzag(&c);
        assert_eq!(&s[..3], &[10, 20, 30]);
        assert!(s[3..].iter().all(|&v| v == 0));
    }
}
