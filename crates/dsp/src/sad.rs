//! Sum-of-absolute-differences block-matching criteria.
//!
//! SAD is the "resemblance" criterion the paper describes for MPEG-4
//! motion estimation: the candidate block minimizing
//! `Σ |cur(i,j) − ref(i,j)|` wins. The cutoff variant implements the
//! early-exit used by real encoders (MoMuSys included), abandoning a
//! candidate as soon as it exceeds the best SAD so far.

/// Compute ops per full 16×16 SAD (256 subtract/abs/accumulate triples).
pub const SAD16_OPS: u64 = 768;
/// Compute ops per full 8×8 SAD.
pub const SAD8_OPS: u64 = 192;

/// One row's absolute-difference sum over fixed-size arrays: the array
/// types let the compiler drop every per-element bounds check from the
/// accumulation (the single length check happens in the `try_into`).
#[inline]
fn sad_row<const N: usize>(c: &[u8; N], r: &[u8; N]) -> u32 {
    let mut acc = 0u32;
    for i in 0..N {
        acc += u32::from(c[i].abs_diff(r[i]));
    }
    acc
}

/// The `N`-pixel row of `plane` at `(x, y)` as a fixed-size array ref.
#[inline]
fn row_n<const N: usize>(plane: &[u8], stride: usize, x: usize, y: usize) -> &[u8; N] {
    plane[y * stride + x..][..N]
        .try_into()
        .expect("row slice is exactly N long")
}

/// SAD between a 16×16 block in `cur` at `(cx, cy)` and one in `reference`
/// at `(rx, ry)`. `stride` applies to both planes.
///
/// # Panics
///
/// Panics (via slice indexing) if either block exceeds plane bounds.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn sad_16x16(
    cur: &[u8],
    cur_stride: usize,
    cx: usize,
    cy: usize,
    reference: &[u8],
    ref_stride: usize,
    rx: usize,
    ry: usize,
) -> u32 {
    let mut acc = 0u32;
    for row in 0..16 {
        acc += sad_row(
            row_n::<16>(cur, cur_stride, cx, cy + row),
            row_n::<16>(reference, ref_stride, rx, ry + row),
        );
    }
    acc
}

/// The cutoff SAD over an `N`×`N` block: accumulates row sums and
/// abandons the candidate once the partial sum exceeds `cutoff` after
/// any row, returning the partial sum and how many rows were visited.
#[allow(clippy::too_many_arguments)]
#[inline]
fn sad_with_cutoff<const N: usize>(
    cur: &[u8],
    cur_stride: usize,
    cx: usize,
    cy: usize,
    reference: &[u8],
    ref_stride: usize,
    rx: usize,
    ry: usize,
    cutoff: u32,
) -> (u32, usize) {
    let mut acc = 0u32;
    for row in 0..N {
        acc += sad_row(
            row_n::<N>(cur, cur_stride, cx, cy + row),
            row_n::<N>(reference, ref_stride, rx, ry + row),
        );
        if acc > cutoff {
            return (acc, row + 1);
        }
    }
    (acc, N)
}

/// Like [`sad_16x16`] but abandons the candidate once the partial sum
/// exceeds `cutoff` after any 16-pixel row, returning the partial sum
/// (which is `> cutoff`). Also returns how many rows were actually
/// visited, so the caller can charge memory accesses for exactly the
/// data touched.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn sad_16x16_with_cutoff(
    cur: &[u8],
    cur_stride: usize,
    cx: usize,
    cy: usize,
    reference: &[u8],
    ref_stride: usize,
    rx: usize,
    ry: usize,
    cutoff: u32,
) -> (u32, usize) {
    sad_with_cutoff::<16>(
        cur, cur_stride, cx, cy, reference, ref_stride, rx, ry, cutoff,
    )
}

/// The 8×8 cutoff SAD (advanced-prediction block refinement); same
/// contract as [`sad_16x16_with_cutoff`].
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn sad_8x8_with_cutoff(
    cur: &[u8],
    cur_stride: usize,
    cx: usize,
    cy: usize,
    reference: &[u8],
    ref_stride: usize,
    rx: usize,
    ry: usize,
    cutoff: u32,
) -> (u32, usize) {
    sad_with_cutoff::<8>(
        cur, cur_stride, cx, cy, reference, ref_stride, rx, ry, cutoff,
    )
}

/// One row of SAD against a half-pel interpolated reference. The
/// prediction arithmetic is the bilinear MPEG-4 rounding used by motion
/// compensation: `(a+b+1)>>1` for one fractional axis, `(a+b+c+d+2)>>2`
/// for both. `r0` is the reference row at the full-pel line, `r1` the
/// row below (read only when `FRAC_Y`); each holds `N + FRAC_X` valid
/// pixels. The flags are const generics so each of the four variants
/// compiles to a branch-free pixel loop.
#[inline]
fn sad_half_pel_row<const N: usize, const FRAC_X: bool, const FRAC_Y: bool>(
    c: &[u8; N],
    r0: &[u8],
    r1: &[u8],
) -> u32 {
    let mut acc = 0u32;
    for i in 0..N {
        let pred = match (FRAC_X, FRAC_Y) {
            (false, false) => u16::from(r0[i]),
            (true, false) => (u16::from(r0[i]) + u16::from(r0[i + 1]) + 1) >> 1,
            (false, true) => (u16::from(r0[i]) + u16::from(r1[i]) + 1) >> 1,
            (true, true) => {
                (u16::from(r0[i])
                    + u16::from(r0[i + 1])
                    + u16::from(r1[i])
                    + u16::from(r1[i + 1])
                    + 2)
                    >> 2
            }
        };
        acc += i32::from(c[i]).abs_diff(i32::from(pred));
    }
    acc
}

/// The half-pel cutoff SAD body for one `(FRAC_X, FRAC_Y)` variant.
#[allow(clippy::too_many_arguments)]
#[inline]
fn sad_half_pel_body<const N: usize, const FRAC_X: bool, const FRAC_Y: bool>(
    cur: &[u8],
    cur_stride: usize,
    cx: usize,
    cy: usize,
    reference: &[u8],
    ref_stride: usize,
    rx: usize,
    ry: usize,
    cutoff: u32,
) -> (u32, usize) {
    let cols = N + usize::from(FRAC_X);
    let mut acc = 0u32;
    for row in 0..N {
        let c = row_n::<N>(cur, cur_stride, cx, cy + row);
        let r0 = &reference[(ry + row) * ref_stride + rx..][..cols];
        let r1 = if FRAC_Y {
            &reference[(ry + row + 1) * ref_stride + rx..][..cols]
        } else {
            r0
        };
        acc += sad_half_pel_row::<N, FRAC_X, FRAC_Y>(c, r0, r1);
        if acc > cutoff {
            return (acc, row + 1);
        }
    }
    (acc, N)
}

/// SAD of the `N`×`N` current block at `(cx, cy)` against the half-pel
/// interpolated reference whose full-pel anchor is `(rx, ry)`, with
/// fractional displacement `(frac_x, frac_y)` and early termination at
/// `cutoff`. Returns the partial sum and the rows visited. The
/// reference must extend one extra column when `frac_x` and one extra
/// row when `frac_y`.
///
/// # Panics
///
/// Panics (via slice indexing) if either block exceeds plane bounds.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn sad_half_pel_with_cutoff<const N: usize>(
    cur: &[u8],
    cur_stride: usize,
    cx: usize,
    cy: usize,
    reference: &[u8],
    ref_stride: usize,
    rx: usize,
    ry: usize,
    frac_x: bool,
    frac_y: bool,
    cutoff: u32,
) -> (u32, usize) {
    match (frac_x, frac_y) {
        (false, false) => sad_half_pel_body::<N, false, false>(
            cur, cur_stride, cx, cy, reference, ref_stride, rx, ry, cutoff,
        ),
        (true, false) => sad_half_pel_body::<N, true, false>(
            cur, cur_stride, cx, cy, reference, ref_stride, rx, ry, cutoff,
        ),
        (false, true) => sad_half_pel_body::<N, false, true>(
            cur, cur_stride, cx, cy, reference, ref_stride, rx, ry, cutoff,
        ),
        (true, true) => sad_half_pel_body::<N, true, true>(
            cur, cur_stride, cx, cy, reference, ref_stride, rx, ry, cutoff,
        ),
    }
}

/// SAD between two 8×8 blocks, used for chroma and half-pel refinement of
/// 8×8 partitions.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn sad_8x8(
    cur: &[u8],
    cur_stride: usize,
    cx: usize,
    cy: usize,
    reference: &[u8],
    ref_stride: usize,
    rx: usize,
    ry: usize,
) -> u32 {
    let mut acc = 0u32;
    for row in 0..8 {
        acc += sad_row(
            row_n::<8>(cur, cur_stride, cx, cy + row),
            row_n::<8>(reference, ref_stride, rx, ry + row),
        );
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(w: usize, h: usize, f: impl Fn(usize, usize) -> u8) -> Vec<u8> {
        let mut p = vec![0u8; w * h];
        for y in 0..h {
            for x in 0..w {
                p[y * w + x] = f(x, y);
            }
        }
        p
    }

    #[test]
    fn identical_blocks_have_zero_sad() {
        let p = plane(32, 32, |x, y| (x * 7 + y * 3) as u8);
        assert_eq!(sad_16x16(&p, 32, 4, 4, &p, 32, 4, 4), 0);
        assert_eq!(sad_8x8(&p, 32, 10, 10, &p, 32, 10, 10), 0);
    }

    #[test]
    fn sad_detects_known_shift() {
        // A diagonal gradient shifted by (1,0) differs by exactly the
        // gradient slope at every pixel.
        let p = plane(64, 32, |x, _| (x * 4 % 256) as u8);
        let sad_aligned = sad_16x16(&p, 64, 16, 8, &p, 64, 16, 8);
        let sad_shifted = sad_16x16(&p, 64, 16, 8, &p, 64, 17, 8);
        assert_eq!(sad_aligned, 0);
        assert_eq!(sad_shifted, 256 * 4);
    }

    #[test]
    fn cutoff_terminates_early_and_overestimates() {
        let a = plane(32, 32, |_, _| 0);
        let b = plane(32, 32, |_, _| 255);
        let full = sad_16x16(&a, 32, 0, 0, &b, 32, 0, 0);
        let (partial, rows) = sad_16x16_with_cutoff(&a, 32, 0, 0, &b, 32, 0, 0, 100);
        assert!(partial > 100);
        assert_eq!(rows, 1);
        assert!(partial <= full);
    }

    #[test]
    fn cutoff_matches_full_when_not_triggered() {
        let a = plane(32, 32, |x, y| (x + y) as u8);
        let b = plane(32, 32, |x, y| (x + y + 1) as u8);
        let full = sad_16x16(&a, 32, 2, 2, &b, 32, 2, 2);
        let (v, rows) = sad_16x16_with_cutoff(&a, 32, 2, 2, &b, 32, 2, 2, u32::MAX);
        assert_eq!(v, full);
        assert_eq!(rows, 16);
    }

    #[test]
    fn sad_8x8_cutoff_matches_full_and_terminates() {
        let a = plane(32, 32, |x, y| (x * 5 + y * 9) as u8);
        let b = plane(32, 32, |x, y| (x * 3 + y * 7) as u8);
        let full = sad_8x8(&a, 32, 4, 4, &b, 32, 6, 2);
        let (v, rows) = sad_8x8_with_cutoff(&a, 32, 4, 4, &b, 32, 6, 2, u32::MAX);
        assert_eq!((v, rows), (full, 8));
        let (partial, early_rows) = sad_8x8_with_cutoff(&a, 32, 4, 4, &b, 32, 6, 2, 0);
        assert!(partial > 0 && early_rows < 8);
    }

    /// The half-pel kernel must agree with a direct transcription of the
    /// MPEG-4 bilinear prediction at every fractional displacement.
    #[test]
    fn half_pel_sad_matches_reference_arithmetic() {
        let cur = plane(40, 40, |x, y| (x * 13 + y * 29 + x * y / 5) as u8);
        let rf = plane(40, 40, |x, y| (x * 7 + y * 11) as u8);
        for (fx, fy) in [(false, false), (true, false), (false, true), (true, true)] {
            let (got, rows) =
                sad_half_pel_with_cutoff::<16>(&cur, 40, 3, 2, &rf, 40, 5, 4, fx, fy, u32::MAX);
            let mut want = 0u32;
            for row in 0..16 {
                for i in 0..16 {
                    let s = |dx: usize, dy: usize| u16::from(rf[(4 + row + dy) * 40 + 5 + i + dx]);
                    let pred = match (fx, fy) {
                        (false, false) => s(0, 0),
                        (true, false) => (s(0, 0) + s(1, 0) + 1) >> 1,
                        (false, true) => (s(0, 0) + s(0, 1) + 1) >> 1,
                        (true, true) => (s(0, 0) + s(1, 0) + s(0, 1) + s(1, 1) + 2) >> 2,
                    };
                    let c = cur[(2 + row) * 40 + 3 + i];
                    want += u32::from(c).abs_diff(u32::from(pred));
                }
            }
            assert_eq!((got, rows), (want, 16), "frac ({fx},{fy})");
        }
    }

    #[test]
    fn half_pel_sad_cutoff_counts_rows() {
        let a = plane(24, 24, |_, _| 0);
        let b = plane(24, 24, |_, _| 200);
        let (v, rows) = sad_half_pel_with_cutoff::<8>(&a, 24, 0, 0, &b, 24, 0, 0, true, true, 100);
        assert!(v > 100);
        assert_eq!(rows, 1);
    }

    #[test]
    fn sad_is_symmetric() {
        let a = plane(32, 32, |x, y| (x * 13 + y) as u8);
        let b = plane(32, 32, |x, y| (y * 11 + x) as u8);
        assert_eq!(
            sad_16x16(&a, 32, 8, 8, &b, 32, 8, 8),
            sad_16x16(&b, 32, 8, 8, &a, 32, 8, 8)
        );
    }

    #[test]
    fn max_sad_bounded() {
        let a = plane(16, 16, |_, _| 0);
        let b = plane(16, 16, |_, _| 255);
        assert_eq!(sad_16x16(&a, 16, 0, 0, &b, 16, 0, 0), 256 * 255);
    }
}
