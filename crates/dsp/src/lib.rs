//! Signal-processing kernels for the MPEG-4 visual codec.
//!
//! These are the compute kernels the paper names as the classic targets of
//! MPEG memory optimization: the 8×8 discrete cosine transform used for
//! texture coding, quantization, zigzag scanning, the sum-of-absolute-
//! differences (SAD) criterion used by motion estimation, and half-pel
//! interpolation used by motion compensation.
//!
//! The kernels are *pure*: they operate on plain slices and perform no
//! memory-trace accounting. The codec layer issues the corresponding
//! simulated-memory accesses around calls into this crate, and uses the
//! per-kernel `*_OPS` constants to charge compute cycles to the timing
//! model.
//!
//! # Examples
//!
//! ```
//! use m4ps_dsp::{Block, forward_dct, inverse_dct};
//!
//! let mut spatial = Block::default();
//! spatial.data[0] = 128;
//! let freq = forward_dct(&spatial);
//! let back = inverse_dct(&freq);
//! assert!((back.data[0] - spatial.data[0]).abs() <= 1);
//! ```

mod dct;
mod dct_int;
pub mod dispatch;
mod interp;
#[cfg(target_arch = "x86_64")]
mod kernels_x86;
mod quant;
mod sad;
mod zigzag;

pub use dct::{forward_dct, forward_dct_f64, inverse_dct, inverse_dct_f64, CoefBlock, DCT_OPS};
pub use dct_int::{forward_dct_int, inverse_dct_int};
pub use dispatch::{active_tier, force_tier, kernels, supported_tiers, KernelTier, Kernels};
pub use interp::{average_pixels, copy_block, interpolate_half_pel, HalfPel, INTERP_OPS_PER_PIXEL};
pub use quant::{
    dequantize_inter, dequantize_intra, inter_zero_bound, quantize_inter, quantize_intra, QUANT_OPS,
};
pub use sad::{
    sad_16x16, sad_16x16_with_cutoff, sad_8x8, sad_8x8_with_cutoff, sad_half_pel_with_cutoff,
    SAD16_OPS, SAD8_OPS,
};
pub use zigzag::{scan_zigzag, unscan_zigzag, ZIGZAG};

/// Side length of a DCT block.
pub const BLOCK: usize = 8;
/// Side length of a macroblock (luminance).
pub const MB: usize = 16;

/// An 8×8 block of spatial-domain samples (row-major), as signed residues
/// or level-shifted pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// Row-major 8×8 sample values.
    pub data: [i16; 64],
}

impl Default for Block {
    fn default() -> Self {
        Block { data: [0; 64] }
    }
}

impl Block {
    /// Creates a block from row-major samples.
    pub fn from_samples(data: [i16; 64]) -> Self {
        Block { data }
    }

    /// Sample at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is 8 or more.
    pub fn at(&self, row: usize, col: usize) -> i16 {
        assert!(row < BLOCK && col < BLOCK);
        self.data[row * BLOCK + col]
    }

    /// Mutable sample at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is 8 or more.
    pub fn at_mut(&mut self, row: usize, col: usize) -> &mut i16 {
        assert!(row < BLOCK && col < BLOCK);
        &mut self.data[row * BLOCK + col]
    }

    /// `true` when every sample is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&v| v == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_indexing_is_row_major() {
        let mut b = Block::default();
        *b.at_mut(2, 3) = 42;
        assert_eq!(b.data[2 * 8 + 3], 42);
        assert_eq!(b.at(2, 3), 42);
    }

    #[test]
    fn zero_detection() {
        let mut b = Block::default();
        assert!(b.is_zero());
        *b.at_mut(7, 7) = -1;
        assert!(!b.is_zero());
    }

    #[test]
    #[should_panic]
    fn out_of_range_index_panics() {
        let b = Block::default();
        b.at(8, 0);
    }
}
