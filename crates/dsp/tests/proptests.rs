//! Property-based tests for the DSP kernels: transform invertibility,
//! quantizer error bounds, scan permutation, SAD metric axioms.

use m4ps_dsp::{
    dequantize_inter, dequantize_intra, forward_dct, forward_dct_f64, inverse_dct,
    inverse_dct_f64, quantize_inter, quantize_intra, sad_16x16, sad_16x16_with_cutoff,
    scan_zigzag, unscan_zigzag, Block, CoefBlock,
};
use proptest::prelude::*;

fn pixel_block() -> impl Strategy<Value = Block> {
    prop::array::uniform32((0i16..=255, 0i16..=255))
        .prop_map(|pairs| {
            let mut data = [0i16; 64];
            for (i, (a, b)) in pairs.iter().enumerate() {
                data[2 * i] = *a;
                data[2 * i + 1] = *b;
            }
            Block::from_samples(data)
        })
}

fn residue_block() -> impl Strategy<Value = Block> {
    prop::array::uniform32((-255i16..=255, -255i16..=255))
        .prop_map(|pairs| {
            let mut data = [0i16; 64];
            for (i, (a, b)) in pairs.iter().enumerate() {
                data[2 * i] = *a;
                data[2 * i + 1] = *b;
            }
            Block::from_samples(data)
        })
}

proptest! {
    #[test]
    fn dct_roundtrip_integer_error_at_most_one(b in pixel_block()) {
        let rec = inverse_dct(&forward_dct(&b));
        for i in 0..64 {
            prop_assert!((rec.data[i] - b.data[i]).abs() <= 1, "index {}", i);
        }
    }

    #[test]
    fn dct_f64_roundtrip_exact(vals in prop::array::uniform32(-1000.0f64..1000.0)) {
        let mut input = [0.0f64; 64];
        for (i, v) in vals.iter().enumerate() {
            input[i] = *v;
            input[63 - i] = v * 0.5;
        }
        let rec = inverse_dct_f64(&forward_dct_f64(&input));
        for i in 0..64 {
            prop_assert!((rec[i] - input[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn dct_linearity_f64(vals in prop::array::uniform32(-500.0f64..500.0)) {
        let mut a = [0.0f64; 64];
        let mut b = [0.0f64; 64];
        for (i, v) in vals.iter().enumerate() {
            a[i] = *v;
            b[63 - i] = *v * 2.0;
        }
        let mut sum = [0.0f64; 64];
        for i in 0..64 {
            sum[i] = a[i] + b[i];
        }
        let fa = forward_dct_f64(&a);
        let fb = forward_dct_f64(&b);
        let fsum = forward_dct_f64(&sum);
        for i in 0..64 {
            prop_assert!((fsum[i] - fa[i] - fb[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn intra_quant_error_bounded(b in pixel_block(), qp in 1u8..=31) {
        let coefs = forward_dct(&b);
        let rec = dequantize_intra(&quantize_intra(&coefs, qp), qp);
        // DC error ≤ 4 (fixed scaler 8); AC error ≤ 2·qp.
        prop_assert!((i32::from(rec.data[0]) - i32::from(coefs.data[0])).abs() <= 4);
        for i in 1..64 {
            let err = (i32::from(rec.data[i]) - i32::from(coefs.data[i])).abs();
            prop_assert!(err <= 2 * i32::from(qp), "idx {} err {}", i, err);
        }
    }

    #[test]
    fn inter_quant_error_bounded(b in residue_block(), qp in 1u8..=31) {
        let coefs = forward_dct(&b);
        let rec = dequantize_inter(&quantize_inter(&coefs, qp), qp);
        for i in 0..64 {
            let err = (i32::from(rec.data[i]) - i32::from(coefs.data[i])).abs();
            prop_assert!(err <= 3 * i32::from(qp), "idx {} err {}", i, err);
        }
    }

    #[test]
    fn zigzag_roundtrip(vals in prop::array::uniform32(-2048i16..=2047)) {
        let mut c = CoefBlock::default();
        for (i, v) in vals.iter().enumerate() {
            c.data[i] = *v;
            c.data[63 - i] = v.wrapping_mul(3);
        }
        prop_assert_eq!(unscan_zigzag(&scan_zigzag(&c)), c);
    }

    #[test]
    fn sad_triangle_inequality(
        a in prop::collection::vec(0u8..=255, 16 * 16),
        b in prop::collection::vec(0u8..=255, 16 * 16),
        c in prop::collection::vec(0u8..=255, 16 * 16),
    ) {
        let ab = sad_16x16(&a, 16, 0, 0, &b, 16, 0, 0);
        let bc = sad_16x16(&b, 16, 0, 0, &c, 16, 0, 0);
        let ac = sad_16x16(&a, 16, 0, 0, &c, 16, 0, 0);
        prop_assert!(ac <= ab + bc);
    }

    #[test]
    fn sad_identity_of_indiscernibles(a in prop::collection::vec(0u8..=255, 16 * 16)) {
        prop_assert_eq!(sad_16x16(&a, 16, 0, 0, &a, 16, 0, 0), 0);
    }

    #[test]
    fn sad_cutoff_never_underestimates_decision(
        a in prop::collection::vec(0u8..=255, 16 * 16),
        b in prop::collection::vec(0u8..=255, 16 * 16),
        cutoff in 0u32..70000,
    ) {
        let full = sad_16x16(&a, 16, 0, 0, &b, 16, 0, 0);
        let (partial, rows) = sad_16x16_with_cutoff(&a, 16, 0, 0, &b, 16, 0, 0, cutoff);
        prop_assert!(rows >= 1 && rows <= 16);
        prop_assert!(partial <= full);
        if full <= cutoff {
            // No early exit possible: partial must equal full.
            prop_assert_eq!(partial, full);
            prop_assert_eq!(rows, 16);
        } else {
            // Early exit must preserve the "worse than cutoff" verdict.
            prop_assert!(partial > cutoff);
        }
    }
}
