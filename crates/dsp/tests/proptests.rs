//! Property-based tests for the DSP kernels: transform invertibility,
//! quantizer error bounds, scan permutation, SAD metric axioms.
//!
//! Runs on the in-tree [`m4ps_testkit::prop`] harness; failures print a
//! replayable seed (`M4PS_PROP_REPLAY=0x...`).

use m4ps_dsp::{
    dequantize_inter, dequantize_intra, forward_dct, forward_dct_f64, inverse_dct, inverse_dct_f64,
    quantize_inter, quantize_intra, sad_16x16, sad_16x16_with_cutoff, scan_zigzag, unscan_zigzag,
    Block, CoefBlock,
};
use m4ps_testkit::prop::{check, Config};
use m4ps_testkit::rng::Rng;
use m4ps_testkit::{prop_assert, prop_assert_eq};

fn pixel_block(rng: &mut Rng) -> Block {
    let mut data = [0i16; 64];
    for v in &mut data {
        *v = rng.gen_range(0i16..=255);
    }
    Block::from_samples(data)
}

fn residue_block(rng: &mut Rng) -> Block {
    let mut data = [0i16; 64];
    for v in &mut data {
        *v = rng.gen_range(-255i16..=255);
    }
    Block::from_samples(data)
}

fn f64_block(rng: &mut Rng, lo: f64, hi: f64) -> [f64; 64] {
    let mut data = [0.0f64; 64];
    for v in &mut data {
        *v = rng.gen_range(lo..hi);
    }
    data
}

#[test]
fn dct_roundtrip_integer_error_at_most_one() {
    check(
        "dct_roundtrip_integer_error_at_most_one",
        &Config::default(),
        pixel_block,
        |b| {
            let rec = inverse_dct(&forward_dct(b));
            for i in 0..64 {
                prop_assert!((rec.data[i] - b.data[i]).abs() <= 1, "index {}", i);
            }
            Ok(())
        },
    );
}

#[test]
fn dct_f64_roundtrip_exact() {
    check(
        "dct_f64_roundtrip_exact",
        &Config::default(),
        |rng| f64_block(rng, -1000.0, 1000.0),
        |input| {
            let rec = inverse_dct_f64(&forward_dct_f64(input));
            for i in 0..64 {
                prop_assert!((rec[i] - input[i]).abs() < 1e-8);
            }
            Ok(())
        },
    );
}

#[test]
fn dct_linearity_f64() {
    check(
        "dct_linearity_f64",
        &Config::default(),
        |rng| (f64_block(rng, -500.0, 500.0), f64_block(rng, -500.0, 500.0)),
        |(a, b)| {
            let mut sum = [0.0f64; 64];
            for i in 0..64 {
                sum[i] = a[i] + b[i];
            }
            let fa = forward_dct_f64(a);
            let fb = forward_dct_f64(b);
            let fsum = forward_dct_f64(&sum);
            for i in 0..64 {
                prop_assert!((fsum[i] - fa[i] - fb[i]).abs() < 1e-8);
            }
            Ok(())
        },
    );
}

#[test]
fn intra_quant_error_bounded() {
    check(
        "intra_quant_error_bounded",
        &Config::default(),
        |rng| (pixel_block(rng), rng.gen_range(1u8..=31)),
        |(b, qp)| {
            let qp = *qp;
            let coefs = forward_dct(b);
            let rec = dequantize_intra(&quantize_intra(&coefs, qp), qp);
            // DC error ≤ 4 (fixed scaler 8); AC error ≤ 2·qp.
            prop_assert!((i32::from(rec.data[0]) - i32::from(coefs.data[0])).abs() <= 4);
            for i in 1..64 {
                let err = (i32::from(rec.data[i]) - i32::from(coefs.data[i])).abs();
                prop_assert!(err <= 2 * i32::from(qp), "idx {} err {}", i, err);
            }
            Ok(())
        },
    );
}

#[test]
fn inter_quant_error_bounded() {
    check(
        "inter_quant_error_bounded",
        &Config::default(),
        |rng| (residue_block(rng), rng.gen_range(1u8..=31)),
        |(b, qp)| {
            let qp = *qp;
            let coefs = forward_dct(b);
            let rec = dequantize_inter(&quantize_inter(&coefs, qp), qp);
            for i in 0..64 {
                let err = (i32::from(rec.data[i]) - i32::from(coefs.data[i])).abs();
                prop_assert!(err <= 3 * i32::from(qp), "idx {} err {}", i, err);
            }
            Ok(())
        },
    );
}

#[test]
fn zigzag_roundtrip() {
    check(
        "zigzag_roundtrip",
        &Config::default(),
        |rng| {
            let mut c = CoefBlock::default();
            for v in &mut c.data {
                *v = rng.gen_range(-2048i16..=2047);
            }
            c
        },
        |c| {
            prop_assert_eq!(unscan_zigzag(&scan_zigzag(c)), *c);
            Ok(())
        },
    );
}

fn plane_16x16(rng: &mut Rng) -> Vec<u8> {
    let mut v = vec![0u8; 16 * 16];
    rng.fill_bytes(&mut v);
    v
}

#[test]
fn sad_triangle_inequality() {
    check(
        "sad_triangle_inequality",
        &Config::default(),
        |rng| (plane_16x16(rng), plane_16x16(rng), plane_16x16(rng)),
        |(a, b, c)| {
            let ab = sad_16x16(a, 16, 0, 0, b, 16, 0, 0);
            let bc = sad_16x16(b, 16, 0, 0, c, 16, 0, 0);
            let ac = sad_16x16(a, 16, 0, 0, c, 16, 0, 0);
            prop_assert!(ac <= ab + bc);
            Ok(())
        },
    );
}

#[test]
fn sad_identity_of_indiscernibles() {
    check(
        "sad_identity_of_indiscernibles",
        &Config::default(),
        plane_16x16,
        |a| {
            prop_assert_eq!(sad_16x16(a, 16, 0, 0, a, 16, 0, 0), 0);
            Ok(())
        },
    );
}

#[test]
fn sad_cutoff_never_underestimates_decision() {
    check(
        "sad_cutoff_never_underestimates_decision",
        &Config::default(),
        |rng| {
            (
                plane_16x16(rng),
                plane_16x16(rng),
                rng.gen_range(0u32..70000),
            )
        },
        |(a, b, cutoff)| {
            let cutoff = *cutoff;
            let full = sad_16x16(a, 16, 0, 0, b, 16, 0, 0);
            let (partial, rows) = sad_16x16_with_cutoff(a, 16, 0, 0, b, 16, 0, 0, cutoff);
            prop_assert!((1..=16).contains(&rows));
            prop_assert!(partial <= full);
            if full <= cutoff {
                // No early exit possible: partial must equal full.
                prop_assert_eq!(partial, full);
                prop_assert_eq!(rows, 16);
            } else {
                // Early exit must preserve the "worse than cutoff" verdict.
                prop_assert!(partial > cutoff);
            }
            Ok(())
        },
    );
}
