//! Integer-DCT equivalence corpus: the fixed-point transforms must track
//! the double-precision reference to within ±2 counts in both directions
//! over randomized pixel blocks and residual-range blocks.

use m4ps_dsp::{
    forward_dct, forward_dct_int, inverse_dct, inverse_dct_int, Block, CoefBlock, BLOCK,
};
use m4ps_testkit::prop::{self, CaseResult, Config};
use m4ps_testkit::rng::Rng;

const N: usize = BLOCK * BLOCK;

/// A block of unsigned pixel samples (0..=255), the intra-coding input
/// range.
fn pixel_block(rng: &mut Rng) -> Block {
    let mut b = Block::default();
    for v in b.data.iter_mut() {
        *v = rng.gen_range(0..=255i16);
    }
    b
}

/// A block of signed residual samples (−255..=255), the inter-coding
/// input range.
fn residual_block(rng: &mut Rng) -> Block {
    let mut b = Block::default();
    for v in b.data.iter_mut() {
        *v = rng.gen_range(-255..=255i16);
    }
    b
}

fn close_within_two(float: &[i16; N], fixed: &[i16; N], what: &str) -> CaseResult {
    for i in 0..N {
        let d = (i32::from(float[i]) - i32::from(fixed[i])).abs();
        if d > 2 {
            return Err(format!(
                "{what} index {i}: float {} vs fixed {}",
                float[i], fixed[i]
            ));
        }
    }
    Ok(())
}

#[test]
fn forward_int_tracks_float_on_pixel_corpus() {
    prop::check(
        "forward_int_pixel",
        &Config::with_cases(64),
        pixel_block,
        |b| close_within_two(&forward_dct(b).data, &forward_dct_int(b).data, "pixel fwd"),
    );
}

#[test]
fn forward_int_tracks_float_on_residual_corpus() {
    prop::check(
        "forward_int_residual",
        &Config::with_cases(64),
        residual_block,
        |b| {
            close_within_two(
                &forward_dct(b).data,
                &forward_dct_int(b).data,
                "residual fwd",
            )
        },
    );
}

#[test]
fn inverse_int_tracks_float_on_coef_corpus() {
    // Feed both inverses coefficients produced by the float forward on
    // random blocks, so the corpus stays in the coefficient range the
    // codec actually produces.
    prop::check(
        "inverse_int",
        &Config::with_cases(64),
        |rng| {
            let b = if rng.gen_bool() {
                pixel_block(rng)
            } else {
                residual_block(rng)
            };
            forward_dct(&b)
        },
        |c: &CoefBlock| close_within_two(&inverse_dct(c).data, &inverse_dct_int(c).data, "inverse"),
    );
}

#[test]
fn int_roundtrip_stays_within_three_counts_on_corpus() {
    prop::check("int_roundtrip", &Config::with_cases(32), pixel_block, |b| {
        let rec = inverse_dct_int(&forward_dct_int(b));
        for i in 0..N {
            let d = (i32::from(rec.data[i]) - i32::from(b.data[i])).abs();
            if d > 3 {
                return Err(format!(
                    "roundtrip index {i}: {} vs {}",
                    rec.data[i], b.data[i]
                ));
            }
        }
        Ok(())
    });
}
