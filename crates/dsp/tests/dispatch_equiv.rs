//! Differential properties for the dispatched kernel tiers: for every
//! tier the CPU supports, every vtable entry must be **bit-identical**
//! to the scalar reference on random sizes, strides, offsets and
//! cutoffs — including unaligned rows (odd strides) and widths that are
//! not a multiple of any vector lane count.
//!
//! Runs on the in-tree [`m4ps_testkit::prop`] harness; failures print a
//! replayable seed (`M4PS_PROP_REPLAY=0x...`).

use m4ps_dsp::{CoefBlock, HalfPel, KernelTier, Kernels};
use m4ps_testkit::prop::{check, Config};
use m4ps_testkit::prop_assert_eq;
use m4ps_testkit::rng::Rng;

/// A random byte plane with an intentionally awkward stride so vector
/// loads hit every alignment class.
#[derive(Debug)]
struct Plane {
    data: Vec<u8>,
    stride: usize,
}

impl Plane {
    /// A plane from which `(x, y)` windows of `w + 1` × `h + 1` pixels
    /// (the half-pel slack) can be read for `x <= max_x`, `y <= max_y`.
    fn gen(rng: &mut Rng, max_x: usize, max_y: usize, w: usize, h: usize) -> Plane {
        let stride = max_x + w + 1 + rng.gen_range(0usize..7);
        let rows = max_y + h + 1;
        let mut data = vec![0u8; stride * rows];
        rng.fill_bytes(&mut data);
        Plane { data, stride }
    }
}

/// The non-scalar tiers this CPU can run (empty on a scalar-only host:
/// every property then passes vacuously, which CI's forced-tier matrix
/// turns into an explicit skip notice instead of a silent pass).
fn vector_tiers() -> Vec<&'static Kernels> {
    m4ps_dsp::supported_tiers()
        .into_iter()
        .filter(|&t| t != KernelTier::Scalar)
        .map(|t| Kernels::for_tier(t).expect("supported tier has a table"))
        .collect()
}

fn scalar() -> &'static Kernels {
    Kernels::for_tier(KernelTier::Scalar).expect("scalar is always supported")
}

/// Generator for one SAD comparison: two planes and in-bounds offsets.
#[derive(Debug)]
struct SadCase {
    cur: Plane,
    cx: usize,
    cy: usize,
    reference: Plane,
    rx: usize,
    ry: usize,
    cutoff: u32,
}

fn sad_case(rng: &mut Rng, n: usize) -> SadCase {
    let (mx, my) = (rng.gen_range(0usize..24), rng.gen_range(0usize..8));
    let cur = Plane::gen(rng, mx, my, n, n);
    let reference = Plane::gen(rng, mx, my, n, n);
    // Small cutoffs force early exits; large ones never trigger.
    let cutoff = match rng.gen_range(0u32..3) {
        0 => rng.gen_range(0u32..64 * n as u32),
        1 => rng.gen_range(0u32..8 * n as u32),
        _ => u32::MAX,
    };
    SadCase {
        cx: rng.gen_range(0..=mx),
        cy: rng.gen_range(0..=my),
        cur,
        rx: rng.gen_range(0..=mx),
        ry: rng.gen_range(0..=my),
        reference,
        cutoff,
    }
}

#[test]
fn full_sad_matches_scalar_exactly() {
    check(
        "full_sad_matches_scalar_exactly",
        &Config::default(),
        |rng| (sad_case(rng, 16), sad_case(rng, 8)),
        |(c16, c8)| {
            let s = scalar();
            for k in vector_tiers() {
                let want = (s.sad16)(
                    &c16.cur.data,
                    c16.cur.stride,
                    c16.cx,
                    c16.cy,
                    &c16.reference.data,
                    c16.reference.stride,
                    c16.rx,
                    c16.ry,
                );
                let got = (k.sad16)(
                    &c16.cur.data,
                    c16.cur.stride,
                    c16.cx,
                    c16.cy,
                    &c16.reference.data,
                    c16.reference.stride,
                    c16.rx,
                    c16.ry,
                );
                prop_assert_eq!(got, want, "sad16 tier {}", k.tier.name());
                let want = (s.sad8)(
                    &c8.cur.data,
                    c8.cur.stride,
                    c8.cx,
                    c8.cy,
                    &c8.reference.data,
                    c8.reference.stride,
                    c8.rx,
                    c8.ry,
                );
                let got = (k.sad8)(
                    &c8.cur.data,
                    c8.cur.stride,
                    c8.cx,
                    c8.cy,
                    &c8.reference.data,
                    c8.reference.stride,
                    c8.rx,
                    c8.ry,
                );
                prop_assert_eq!(got, want, "sad8 tier {}", k.tier.name());
            }
            Ok(())
        },
    );
}

#[test]
fn cutoff_sad_matches_scalar_sum_and_rows() {
    check(
        "cutoff_sad_matches_scalar_sum_and_rows",
        &Config::default(),
        |rng| (sad_case(rng, 16), sad_case(rng, 8)),
        |(c16, c8)| {
            let s = scalar();
            for k in vector_tiers() {
                let want = (s.sad16_cutoff)(
                    &c16.cur.data,
                    c16.cur.stride,
                    c16.cx,
                    c16.cy,
                    &c16.reference.data,
                    c16.reference.stride,
                    c16.rx,
                    c16.ry,
                    c16.cutoff,
                );
                let got = (k.sad16_cutoff)(
                    &c16.cur.data,
                    c16.cur.stride,
                    c16.cx,
                    c16.cy,
                    &c16.reference.data,
                    c16.reference.stride,
                    c16.rx,
                    c16.ry,
                    c16.cutoff,
                );
                prop_assert_eq!(got, want, "sad16_cutoff tier {}", k.tier.name());
                let want = (s.sad8_cutoff)(
                    &c8.cur.data,
                    c8.cur.stride,
                    c8.cx,
                    c8.cy,
                    &c8.reference.data,
                    c8.reference.stride,
                    c8.rx,
                    c8.ry,
                    c8.cutoff,
                );
                let got = (k.sad8_cutoff)(
                    &c8.cur.data,
                    c8.cur.stride,
                    c8.cx,
                    c8.cy,
                    &c8.reference.data,
                    c8.reference.stride,
                    c8.rx,
                    c8.ry,
                    c8.cutoff,
                );
                prop_assert_eq!(got, want, "sad8_cutoff tier {}", k.tier.name());
            }
            Ok(())
        },
    );
}

#[test]
fn half_pel_sad_matches_scalar_for_all_phases() {
    check(
        "half_pel_sad_matches_scalar_for_all_phases",
        &Config::default(),
        |rng| (sad_case(rng, 16), sad_case(rng, 8)),
        |(c16, c8)| {
            let s = scalar();
            for k in vector_tiers() {
                for (fx, fy) in [(false, false), (true, false), (false, true), (true, true)] {
                    let want = (s.sad16_half_pel)(
                        &c16.cur.data,
                        c16.cur.stride,
                        c16.cx,
                        c16.cy,
                        &c16.reference.data,
                        c16.reference.stride,
                        c16.rx,
                        c16.ry,
                        fx,
                        fy,
                        c16.cutoff,
                    );
                    let got = (k.sad16_half_pel)(
                        &c16.cur.data,
                        c16.cur.stride,
                        c16.cx,
                        c16.cy,
                        &c16.reference.data,
                        c16.reference.stride,
                        c16.rx,
                        c16.ry,
                        fx,
                        fy,
                        c16.cutoff,
                    );
                    prop_assert_eq!(
                        got,
                        want,
                        "sad16_half_pel tier {} fx {} fy {}",
                        k.tier.name(),
                        fx,
                        fy
                    );
                    let want = (s.sad8_half_pel)(
                        &c8.cur.data,
                        c8.cur.stride,
                        c8.cx,
                        c8.cy,
                        &c8.reference.data,
                        c8.reference.stride,
                        c8.rx,
                        c8.ry,
                        fx,
                        fy,
                        c8.cutoff,
                    );
                    let got = (k.sad8_half_pel)(
                        &c8.cur.data,
                        c8.cur.stride,
                        c8.cx,
                        c8.cy,
                        &c8.reference.data,
                        c8.reference.stride,
                        c8.rx,
                        c8.ry,
                        fx,
                        fy,
                        c8.cutoff,
                    );
                    prop_assert_eq!(
                        got,
                        want,
                        "sad8_half_pel tier {} fx {} fy {}",
                        k.tier.name(),
                        fx,
                        fy
                    );
                }
            }
            Ok(())
        },
    );
}

#[test]
fn interpolation_matches_scalar_for_ragged_widths() {
    check(
        "interpolation_matches_scalar_for_ragged_widths",
        &Config::default(),
        |rng| {
            // Widths deliberately straddle the vector lane counts
            // (8/16/32) so every chunked path and its scalar tail runs.
            let w = rng.gen_range(1usize..=40);
            let h = rng.gen_range(1usize..=20);
            let (mx, my) = (rng.gen_range(0usize..16), rng.gen_range(0usize..8));
            let src = Plane::gen(rng, mx, my, w, h);
            let x = rng.gen_range(0..=mx);
            let y = rng.gen_range(0..=my);
            (src, x, y, w, h)
        },
        |(src, x, y, w, h)| {
            let s = scalar();
            for k in vector_tiers() {
                for phase in [
                    HalfPel::Full,
                    HalfPel::Horizontal,
                    HalfPel::Vertical,
                    HalfPel::Diagonal,
                ] {
                    let mut want = vec![0u8; w * h];
                    let mut got = vec![1u8; w * h];
                    (s.interp)(&src.data, src.stride, *x, *y, phase, *w, *h, &mut want);
                    (k.interp)(&src.data, src.stride, *x, *y, phase, *w, *h, &mut got);
                    prop_assert_eq!(
                        &got,
                        &want,
                        "interp tier {} phase {:?} w {} h {}",
                        k.tier.name(),
                        phase,
                        w,
                        h
                    );
                }
            }
            Ok(())
        },
    );
}

#[test]
fn average_and_copy_match_scalar() {
    check(
        "average_and_copy_match_scalar",
        &Config::default(),
        |rng| {
            let len = rng.gen_range(1usize..=100);
            let a = rng.bytes(len..len + 1);
            let b = rng.bytes(len..len + 1);
            let w = rng.gen_range(1usize..=40);
            let h = rng.gen_range(1usize..=20);
            let (mx, my) = (rng.gen_range(0usize..16), rng.gen_range(0usize..8));
            let src = Plane::gen(rng, mx, my, w, h);
            let x = rng.gen_range(0..=mx);
            let y = rng.gen_range(0..=my);
            (a, b, src, x, y, w, h)
        },
        |(a, b, src, x, y, w, h)| {
            let s = scalar();
            for k in vector_tiers() {
                let mut want = vec![0u8; a.len()];
                let mut got = vec![1u8; a.len()];
                (s.avg)(a, b, &mut want);
                (k.avg)(a, b, &mut got);
                prop_assert_eq!(&got, &want, "avg tier {} len {}", k.tier.name(), a.len());
                let mut want = vec![0u8; w * h];
                let mut got = vec![1u8; w * h];
                (s.copy_block)(&src.data, src.stride, *x, *y, *w, *h, &mut want);
                (k.copy_block)(&src.data, src.stride, *x, *y, *w, *h, &mut got);
                prop_assert_eq!(
                    &got,
                    &want,
                    "copy_block tier {} w {} h {}",
                    k.tier.name(),
                    w,
                    h
                );
            }
            Ok(())
        },
    );
}

/// Coefficients spanning the DCT output range. The DC term stays inside
/// ±20000: the scalar intra quantizer's `c + 4` rounding bias is
/// evaluated in `i16` and a real DCT never produces |DC| > 16320
/// (255 × 64), so the extreme corner is outside the kernel contract.
fn coef_block(rng: &mut Rng) -> CoefBlock {
    let mut c = CoefBlock::default();
    for v in &mut c.data {
        *v = rng.gen_range(-2047i16..=2047);
    }
    c.data[0] = rng.gen_range(-20000i16..=20000);
    c
}

/// Quantized levels as the dequantizers receive them.
fn level_block(rng: &mut Rng) -> CoefBlock {
    let mut c = CoefBlock::default();
    for v in &mut c.data {
        *v = match rng.gen_range(0u32..4) {
            0 => 0,
            _ => rng.gen_range(-2048i16..=2047),
        };
    }
    c
}

#[test]
fn quantizers_match_scalar_for_every_qp() {
    check(
        "quantizers_match_scalar_for_every_qp",
        &Config::default(),
        |rng| (coef_block(rng), level_block(rng)),
        |(coefs, levels)| {
            let s = scalar();
            for k in vector_tiers() {
                for qp in 1u8..=31 {
                    prop_assert_eq!(
                        (k.quant_intra)(coefs, qp).data,
                        (s.quant_intra)(coefs, qp).data,
                        "quant_intra tier {} qp {}",
                        k.tier.name(),
                        qp
                    );
                    prop_assert_eq!(
                        (k.quant_inter)(coefs, qp).data,
                        (s.quant_inter)(coefs, qp).data,
                        "quant_inter tier {} qp {}",
                        k.tier.name(),
                        qp
                    );
                    prop_assert_eq!(
                        (k.dequant_intra)(levels, qp).data,
                        (s.dequant_intra)(levels, qp).data,
                        "dequant_intra tier {} qp {}",
                        k.tier.name(),
                        qp
                    );
                    prop_assert_eq!(
                        (k.dequant_inter)(levels, qp).data,
                        (s.dequant_inter)(levels, qp).data,
                        "dequant_inter tier {} qp {}",
                        k.tier.name(),
                        qp
                    );
                }
            }
            Ok(())
        },
    );
}

#[test]
fn vector_tables_are_available_where_expected() {
    // On x86-64 (outside Miri) the SSE2 tier is baseline: this test
    // failing means the differential suites above ran vacuously.
    #[cfg(target_arch = "x86_64")]
    if !cfg!(miri) {
        assert!(
            !vector_tiers().is_empty(),
            "x86-64 must expose at least the SSE2 tier"
        );
    }
    for k in vector_tiers() {
        assert!(k.tier != KernelTier::Scalar);
    }
}
