//! The composed L1 → L2 → DRAM hierarchy with TLB and software prefetch.

use crate::cache::Cache;
use crate::counters::Counters;
use crate::dram::DramModel;
use crate::machine::MachineSpec;
use crate::model::{AccessKind, MemModel, ParallelModel};
use crate::space::Region;
use crate::timing::CycleBreakdown;
use crate::tlb::Tlb;

/// Per-data-structure miss tallies (see [`Hierarchy::attach_regions`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionMisses {
    /// Region tag.
    pub tag: String,
    /// L1 demand misses landing in regions with this tag.
    pub l1_misses: u64,
    /// L2 demand misses landing in regions with this tag.
    pub l2_misses: u64,
}

/// Full memory-hierarchy simulator for one [`MachineSpec`].
///
/// Accesses flow TLB → L1 → L2 → DRAM with write-back / write-allocate at
/// both cache levels. Architectural instruction counts are tracked
/// separately from line probes, so a 16-byte pixel run counts 16
/// graduated loads but touches (and can miss) each 32 B line only once —
/// exactly how the hardware counters see it.
///
/// # Examples
///
/// ```
/// use m4ps_memsim::{AccessKind, Hierarchy, MachineSpec, MemModel};
///
/// let mut mem = Hierarchy::new(MachineSpec::o2());
/// mem.access_range(0x1_0000, 16, AccessKind::Load, 16);
/// assert_eq!(mem.counters().loads, 16);
/// assert_eq!(mem.counters().l1_misses, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Hierarchy {
    machine: MachineSpec,
    l1: Cache,
    l2: Cache,
    tlb: Tlb,
    dram: DramModel,
    counters: Counters,
    prefetch_enabled: bool,
    /// Sorted (base, end, tag-index) spans for miss attribution.
    region_spans: Vec<(u64, u64, usize)>,
    region_tags: Vec<String>,
    region_l1: Vec<u64>,
    region_l2: Vec<u64>,
    /// L1 line shift, cached off `machine.l1.line_bytes`.
    l1_shift: u32,
    /// TLB page shift, cached off `machine.tlb.page_bytes`.
    page_shift: u32,
    /// Line number of the line most recently sent through
    /// [`Hierarchy::probe_line`]. A whole span falling inside this line
    /// (and the MRU page) short-circuits the probe: a just-probed line
    /// is already the most recently used in its set, so skipping the
    /// LRU restamp is the identity transition. `u64::MAX` = none.
    mru_line: u64,
    /// Whether `mru_line` is known dirty. Stores may only take the fast
    /// path when it is (the dirty-bit update is then a no-op); a store
    /// to a clean-or-unknown line falls through to the full probe once.
    mru_line_dirty: bool,
    /// VPN most recently resolved through the TLB. `u64::MAX` = none.
    mru_page: u64,
}

impl Hierarchy {
    /// Builds an empty hierarchy for `machine` with software prefetch
    /// modelling enabled (as the MIPSpro compiler did at `-O3`).
    pub fn new(machine: MachineSpec) -> Self {
        Hierarchy {
            l1: Cache::new(machine.l1),
            l2: Cache::new(machine.l2),
            tlb: Tlb::new(machine.tlb),
            dram: DramModel::new(machine.dram),
            counters: Counters::new(),
            prefetch_enabled: true,
            region_spans: Vec::new(),
            region_tags: Vec::new(),
            region_l1: Vec::new(),
            region_l2: Vec::new(),
            l1_shift: machine.l1.line_bytes.trailing_zeros(),
            page_shift: machine.tlb.page_bytes.trailing_zeros(),
            mru_line: u64::MAX,
            mru_line_dirty: false,
            mru_page: u64::MAX,
            machine,
        }
    }

    /// Attaches the address-space region map so demand misses can be
    /// attributed to the data structures they land in. Regions sharing a
    /// tag are aggregated. The paper's hardware counters could only see
    /// totals; the simulator can answer *which buffer misses*.
    pub fn attach_regions(&mut self, regions: &[Region]) {
        self.region_spans.clear();
        self.region_tags.clear();
        for r in regions {
            let idx = match self.region_tags.iter().position(|t| t == &r.tag) {
                Some(i) => i,
                None => {
                    self.region_tags.push(r.tag.clone());
                    self.region_tags.len() - 1
                }
            };
            self.region_spans
                .push((r.base, r.base + r.bytes.max(1), idx));
        }
        self.region_spans.sort_unstable();
        self.region_l1 = vec![0; self.region_tags.len()];
        self.region_l2 = vec![0; self.region_tags.len()];
    }

    /// Miss tallies per region tag, most L1 misses first.
    pub fn region_misses(&self) -> Vec<RegionMisses> {
        let mut out: Vec<RegionMisses> = self
            .region_tags
            .iter()
            .enumerate()
            .map(|(i, tag)| RegionMisses {
                tag: tag.clone(),
                l1_misses: self.region_l1[i],
                l2_misses: self.region_l2[i],
            })
            .collect();
        out.sort_by_key(|r| std::cmp::Reverse(r.l1_misses));
        out
    }

    /// Tag index of the region containing `addr`, if any.
    fn region_of(&self, addr: u64) -> Option<usize> {
        if self.region_spans.is_empty() {
            return None;
        }
        let i = self
            .region_spans
            .partition_point(|&(base, _, _)| base <= addr);
        if i == 0 {
            return None;
        }
        let (_, end, idx) = self.region_spans[i - 1];
        (addr < end).then_some(idx)
    }

    /// Builds a hierarchy with software prefetch disabled.
    pub fn without_prefetch(machine: MachineSpec) -> Self {
        let mut h = Self::new(machine);
        h.prefetch_enabled = false;
        h
    }

    /// The machine this hierarchy models.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// Whether software prefetches are being simulated.
    pub fn prefetch_enabled(&self) -> bool {
        self.prefetch_enabled
    }

    /// DRAM traffic accounting.
    pub fn dram(&self) -> &DramModel {
        &self.dram
    }

    /// Cycle breakdown under the machine's timing model.
    pub fn breakdown(&self) -> CycleBreakdown {
        self.machine.timing.breakdown(&self.counters)
    }

    /// Execution time in seconds under the machine's clock.
    pub fn exec_seconds(&self) -> f64 {
        self.breakdown().total() / (f64::from(self.machine.clock_mhz) * 1.0e6)
    }

    /// Snapshot of the counters (for delta-instrumentation windows).
    pub fn snapshot(&self) -> Counters {
        self.counters
    }

    /// Probes one line through L1 → L2 → DRAM. `demand` distinguishes a
    /// demand access from a software-prefetch fill: fills move the same
    /// data (DRAM traffic and writebacks are charged unconditionally)
    /// but are not demand misses, so the demand miss counters and the
    /// per-region attribution are gated on it.
    fn probe_line(&mut self, addr: u64, write: bool, demand: bool) {
        self.mru_line = addr >> self.l1_shift;
        self.mru_line_dirty = write;
        let r1 = self.l1.probe(addr, write);
        if r1.hit {
            return;
        }
        if demand {
            self.counters.l1_misses += 1;
            if let Some(idx) = self.region_of(addr) {
                self.region_l1[idx] += 1;
            }
        }
        if let Some(victim) = r1.writeback_of {
            // Dirty L1 line drains to L2; it is a write touch of L2.
            self.counters.l1_writebacks += 1;
            let wb = self.l2.probe(victim, true);
            if !wb.hit {
                // Non-inclusive corner: the line left L2 earlier. Refill
                // from DRAM, then dirty it. This traffic is a side effect
                // of the eviction, not of the triggering access, so it is
                // charged even for prefetch fills.
                self.counters.l2_misses += 1;
                self.dram.record_read(self.machine.l2.line_bytes);
                if wb.writeback_of.is_some() {
                    self.counters.l2_writebacks += 1;
                    self.dram.record_write(self.machine.l2.line_bytes);
                }
            }
        }
        // Refill of the missing line from L2.
        let r2 = self.l2.probe(addr, false);
        if !r2.hit {
            if demand {
                self.counters.l2_misses += 1;
                if let Some(idx) = self.region_of(addr) {
                    self.region_l2[idx] += 1;
                }
            }
            self.dram.record_read(self.machine.l2.line_bytes);
            if r2.writeback_of.is_some() {
                self.counters.l2_writebacks += 1;
                self.dram.record_write(self.machine.l2.line_bytes);
            }
        }
    }

    /// TLB walk + line probes for one span, with the MRU short-circuit.
    /// Callers have already charged the architectural loads/stores and
    /// `bytes_accessed`.
    fn charge_span(&mut self, addr: u64, len: u64, write: bool) {
        let last = addr.saturating_add(len.max(1) - 1);
        // Fast path: the whole span lies inside the most recently probed
        // L1 line and the most recently resolved TLB page. Both are the
        // most recently used entries of their structures, so skipping
        // their LRU restamps changes no replacement decision, and a
        // store additionally requires the line to be known dirty so the
        // dirty-bit update is a no-op. Only the observable hit/lookup
        // tallies advance.
        if (addr >> self.l1_shift) == self.mru_line
            && (last >> self.l1_shift) == self.mru_line
            && (addr >> self.page_shift) == self.mru_page
            && (!write || self.mru_line_dirty)
        {
            self.tlb.filtered_hit();
            self.l1.filtered_hit();
            return;
        }
        let page = self.machine.tlb.page_bytes;
        let mut a = addr & !(page - 1);
        let last_page = last & !(page - 1);
        loop {
            if !self.tlb.lookup(a) {
                self.counters.tlb_misses += 1;
            }
            self.mru_page = a >> self.page_shift;
            if a == last_page {
                break;
            }
            a += page;
        }
        let line = self.machine.l1.line_bytes;
        let mut a = addr & !(line - 1);
        let last_line = last & !(line - 1);
        loop {
            self.probe_line(a, write, true);
            if a == last_line {
                break;
            }
            a += line;
        }
    }
}

impl MemModel for Hierarchy {
    fn access_range(&mut self, addr: u64, len: u64, kind: AccessKind, arch_ops: u64) {
        match kind {
            AccessKind::Load => self.counters.loads += arch_ops,
            AccessKind::Store => self.counters.stores += arch_ops,
        }
        self.counters.bytes_accessed += len.max(1);
        self.charge_span(addr, len, matches!(kind, AccessKind::Store));
    }

    fn access_rect(
        &mut self,
        addr: u64,
        stride: u64,
        rows: u64,
        row_bytes: u64,
        kind: AccessKind,
        ops_per_row: u64,
    ) {
        if rows == 0 {
            return;
        }
        // Bulk-charge the architectural counts (additive, so identical
        // to the default per-row charging), then walk the rows through
        // the same span prober `access_range` uses — each row benefits
        // from the MRU short-circuit against its predecessor.
        match kind {
            AccessKind::Load => self.counters.loads += ops_per_row * rows,
            AccessKind::Store => self.counters.stores += ops_per_row * rows,
        }
        self.counters.bytes_accessed += row_bytes.max(1) * rows;
        let write = matches!(kind, AccessKind::Store);
        let mut a = addr;
        for r in 0..rows {
            self.charge_span(a, row_bytes, write);
            if r + 1 < rows {
                a = a.saturating_add(stride);
            }
        }
    }

    fn prefetch(&mut self, addr: u64) {
        if !self.prefetch_enabled {
            return;
        }
        self.counters.prefetches += 1;
        if self.l1.contains(addr) {
            // The line is already resident: the prefetch becomes a nop and
            // wasted an issue slot (the paper's "prefetch hits L1").
            self.counters.prefetch_l1_hits += 1;
            return;
        }
        // Useful prefetch: bring the line in like a (non-blocking) load.
        // The fill's DRAM/writeback traffic is real, but none of it is a
        // demand miss (the hardware counts prefetch fills separately, and
        // the paper's miss rates are demand rates) — probe_line gates the
        // demand counters on the flag instead of patching them up after
        // the fact.
        self.probe_line(addr, false, false);
    }

    fn add_ops(&mut self, ops: u64) {
        self.counters.compute_ops += ops;
    }

    fn counters(&self) -> &Counters {
        &self.counters
    }
}

impl ParallelModel for Hierarchy {
    fn fork(&self) -> Self {
        let mut child = if self.prefetch_enabled {
            Hierarchy::new(self.machine.clone())
        } else {
            Hierarchy::without_prefetch(self.machine.clone())
        };
        // Share the attribution map (configuration, not state) so
        // slice-local misses can be attributed on merge.
        child.region_spans = self.region_spans.clone();
        child.region_tags = self.region_tags.clone();
        child.region_l1 = vec![0; self.region_tags.len()];
        child.region_l2 = vec![0; self.region_tags.len()];
        child
    }

    fn absorb(&mut self, child: Self) {
        self.counters.merge(&child.counters);
        self.dram.record_read(child.dram.bytes_read());
        self.dram.record_write(child.dram.bytes_written());
        // Region tallies are matched by tag: the parent map may have
        // been re-attached (with new tags) since the fork.
        for (i, tag) in child.region_tags.iter().enumerate() {
            if let Some(j) = self.region_tags.iter().position(|t| t == tag) {
                self.region_l1[j] += child.region_l1[i];
                self.region_l2[j] += child.region_l2[i];
            }
        }
        // The child's cache/TLB contents model a worker core's private
        // hierarchy and are intentionally dropped here.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_machine() -> MachineSpec {
        // Shrink caches so tests exercise evictions cheaply.
        let mut m = MachineSpec::o2();
        m.l1.size_bytes = 1024; // 16 sets × 2 × 32 B
        m.l2.size_bytes = 8 * 1024; // 32 sets × 2 × 128 B
        m
    }

    #[test]
    fn sequential_sweep_misses_once_per_line() {
        let mut h = Hierarchy::new(small_machine());
        for a in (0..4096u64).step_by(8) {
            h.access_range(a, 8, AccessKind::Load, 1);
        }
        let c = h.counters();
        assert_eq!(c.loads, 512);
        assert_eq!(c.l1_misses, 4096 / 32);
        assert_eq!(c.l2_misses, 4096 / 128);
    }

    #[test]
    fn range_access_counts_arch_ops_but_probes_lines() {
        let mut h = Hierarchy::new(small_machine());
        h.access_range(0, 64, AccessKind::Load, 64);
        let c = h.counters();
        assert_eq!(c.loads, 64);
        assert_eq!(c.l1_misses, 2); // two 32 B lines
    }

    #[test]
    fn store_then_evict_generates_writeback_traffic() {
        let mut h = Hierarchy::new(small_machine());
        // Dirty 2 KB (64 lines) — L1 holds 1 KB, so ~32 evictions occur,
        // all dirty.
        for a in (0..2048u64).step_by(32) {
            h.access_range(a, 32, AccessKind::Store, 4);
        }
        // Sweep a disjoint 1 KB region to flush the rest.
        for a in (65536..66560u64).step_by(32) {
            h.access_range(a, 32, AccessKind::Load, 4);
        }
        let c = h.counters();
        assert!(c.l1_writebacks >= 32, "writebacks {}", c.l1_writebacks);
        assert!(c.stores == 256);
    }

    #[test]
    fn l2_captures_l1_capacity_misses() {
        let mut h = Hierarchy::new(small_machine());
        // Working set 4 KB: 4× the tiny L1 but half the tiny L2.
        for _ in 0..10 {
            for a in (0..4096u64).step_by(32) {
                h.access_range(a, 32, AccessKind::Load, 4);
            }
        }
        let c = h.counters();
        assert!(c.l1_misses > 500); // thrashes L1 every pass
        assert_eq!(c.l2_misses, 4096 / 128); // fits in L2: cold misses only
    }

    #[test]
    fn dram_traffic_matches_l2_miss_and_writeback_counts() {
        let mut h = Hierarchy::new(small_machine());
        for a in (0..32768u64).step_by(32) {
            h.access_range(a, 32, AccessKind::Store, 4);
        }
        let c = *h.counters();
        let expected = (c.l2_misses + c.l2_writebacks) * 128;
        assert_eq!(h.dram().bytes_total(), expected);
    }

    #[test]
    fn prefetch_hit_in_l1_is_counted_as_waste() {
        let mut h = Hierarchy::new(small_machine());
        h.access_range(0x100, 8, AccessKind::Load, 1);
        h.prefetch(0x104); // same line: wasted
        h.prefetch(0x2000); // useful
        let c = h.counters();
        assert_eq!(c.prefetches, 2);
        assert_eq!(c.prefetch_l1_hits, 1);
        // The useful prefetch installed the line: demand load now hits.
        let misses_before = c.l1_misses;
        h.access_range(0x2000, 8, AccessKind::Load, 1);
        assert_eq!(h.counters().l1_misses, misses_before);
    }

    #[test]
    fn disabled_prefetch_is_silent() {
        let mut h = Hierarchy::without_prefetch(small_machine());
        h.prefetch(0x100);
        assert_eq!(h.counters().prefetches, 0);
        assert!(!h.prefetch_enabled());
    }

    #[test]
    fn prefetch_does_not_inflate_demand_miss_rate() {
        let mut h = Hierarchy::new(small_machine());
        h.prefetch(0x5000);
        assert_eq!(h.counters().l1_misses, 0);
    }

    /// Pins the prefetch-fill counter semantics: a useful prefetch moves
    /// the line (DRAM traffic) but contributes *no* demand miss at
    /// either level and no region attribution; eviction side effects it
    /// triggers (writebacks) stay charged.
    #[test]
    fn prefetch_fill_charges_traffic_but_no_demand_misses() {
        use crate::space::Region;
        let mut h = Hierarchy::new(small_machine());
        h.attach_regions(&[Region {
            tag: "buf".into(),
            base: 0,
            bytes: 1 << 20,
        }]);
        h.prefetch(0x9000); // cold: fills L1 and L2 from DRAM
        let c = *h.counters();
        assert_eq!(c.prefetches, 1);
        assert_eq!(c.prefetch_l1_hits, 0);
        assert_eq!(c.l1_misses, 0, "fill must not count as demand L1 miss");
        assert_eq!(c.l2_misses, 0, "fill must not count as demand L2 miss");
        assert!(h.dram().bytes_read() > 0, "the fill traffic is real");
        assert!(
            h.region_misses()
                .iter()
                .all(|r| r.l1_misses == 0 && r.l2_misses == 0),
            "fills are not attributed to regions"
        );
        // The demand load that follows hits L1: still no demand misses.
        h.access_range(0x9000, 8, AccessKind::Load, 1);
        assert_eq!(h.counters().l1_misses, 0);
        assert_eq!(h.counters().l2_misses, 0);

        // A prefetch fill that evicts a dirty line still drains it.
        let mut h = Hierarchy::new(small_machine());
        // Dirty every line of the 1 KB L1 (32 lines, 16 sets × 2 ways).
        for a in (0..1024u64).step_by(32) {
            h.access_range(a, 8, AccessKind::Store, 1);
        }
        let wb_before = h.counters().l1_writebacks;
        h.prefetch(0x40000); // set 0: evicts a dirty way
        assert_eq!(h.counters().l1_writebacks, wb_before + 1);
        assert_eq!(h.counters().l1_misses, 32, "only the demand stores missed");
    }

    /// Spans touching the top of the address space must terminate and
    /// charge the same number of lines/pages as anywhere else.
    #[test]
    fn span_at_address_space_top_saturates() {
        let mut h = Hierarchy::new(small_machine());
        h.access_range(u64::MAX - 63, 64, AccessKind::Load, 8);
        let c = h.counters();
        assert_eq!(c.loads, 8);
        assert_eq!(c.l1_misses, 2); // two 32 B lines below the top
        assert_eq!(c.tlb_misses, 1);
        // A span whose end computation would overflow saturates to the
        // last byte instead of wrapping (or panicking). The top line is
        // already resident, so no further miss.
        h.access_range(u64::MAX - 31, 100, AccessKind::Store, 1);
        assert_eq!(h.counters().l1_misses, 2);
    }

    /// The MRU filter must be invisible in the counters: repeat touches,
    /// store-after-store, and eviction churn all agree with the naive
    /// model (the full differential suite lives in tests/fastpath_equiv).
    #[test]
    fn mru_filter_matches_naive_on_hit_miss_eviction_sequences() {
        use crate::naive::NaiveHierarchy;
        let mut fast = Hierarchy::new(small_machine());
        let mut naive = NaiveHierarchy::new(small_machine());
        let run = |f: &mut Hierarchy, n: &mut NaiveHierarchy| {
            let script: &[(u64, u64, AccessKind)] = &[
                (0x100, 8, AccessKind::Load),
                (0x104, 8, AccessKind::Load),   // same line: filtered
                (0x100, 16, AccessKind::Store), // same line, clean: slow path
                (0x108, 8, AccessKind::Store),  // same line, now dirty: filtered
                (0x4100, 8, AccessKind::Load),  // same L1 set (1 KB apart)
                (0x100, 8, AccessKind::Load),
                (0x8100, 8, AccessKind::Store), // evicts within the set
                (0x100, 8, AccessKind::Load),
                (0x11c, 8, AccessKind::Load), // straddles into next line
            ];
            for &(a, l, k) in script {
                f.access_range(a, l, k, 1);
                n.access_range(a, l, k, 1);
            }
        };
        run(&mut fast, &mut naive);
        assert_eq!(fast.counters(), naive.counters());
        assert_eq!(fast.dram().bytes_total(), naive.dram().bytes_total());
    }

    #[test]
    fn tlb_misses_counted_per_new_page() {
        let mut h = Hierarchy::new(small_machine());
        h.access_range(0, 8, AccessKind::Load, 1);
        h.access_range(16 * 1024, 8, AccessKind::Load, 1);
        h.access_range(8, 8, AccessKind::Load, 1);
        assert_eq!(h.counters().tlb_misses, 2);
    }

    #[test]
    fn exec_seconds_positive_after_work() {
        let mut h = Hierarchy::new(MachineSpec::onyx2());
        h.add_ops(1_000_000);
        h.access_range(0, 4096, AccessKind::Load, 4096);
        assert!(h.exec_seconds() > 0.0);
        let b = h.breakdown();
        assert!(b.total() >= b.base);
    }

    #[test]
    fn fork_starts_cold_with_shared_region_map() {
        use crate::space::Region;
        let mut parent = Hierarchy::new(small_machine());
        parent.attach_regions(&[Region {
            tag: "frame".into(),
            base: 0,
            bytes: 4096,
        }]);
        parent.access_range(0, 1024, AccessKind::Load, 128);
        let child = parent.fork();
        assert_eq!(*child.counters(), Counters::default());
        assert_eq!(child.dram().bytes_total(), 0);
        assert_eq!(child.region_misses()[0].l1_misses, 0);
        assert_eq!(child.machine(), parent.machine());
        assert_eq!(child.prefetch_enabled(), parent.prefetch_enabled());
        let no_pf = Hierarchy::without_prefetch(small_machine());
        assert!(!no_pf.fork().prefetch_enabled());
    }

    #[test]
    fn absorb_merges_counters_dram_and_region_tallies() {
        use crate::space::Region;
        let regions = [Region {
            tag: "frame".into(),
            base: 0,
            bytes: 1 << 20,
        }];
        let mut parent = Hierarchy::new(small_machine());
        parent.attach_regions(&regions);
        parent.access_range(0, 4096, AccessKind::Store, 512);
        let before = parent.snapshot();
        let before_dram = parent.dram().bytes_total();
        let before_region = parent.region_misses();

        let mut child = parent.fork();
        child.access_range(65536, 4096, AccessKind::Load, 512);
        let child_counters = *child.counters();
        let child_dram = child.dram().bytes_total();
        let child_region = child.region_misses();

        parent.absorb(child);
        assert_eq!(*parent.counters(), before.merged_with(&child_counters));
        assert_eq!(parent.dram().bytes_total(), before_dram + child_dram);
        assert_eq!(
            parent.region_misses()[0].l1_misses,
            before_region[0].l1_misses + child_region[0].l1_misses
        );
        // Parent cache state is untouched by the absorb: the tail of
        // its own 4 KB sweep is still resident and hits.
        let misses = parent.counters().l1_misses;
        parent.access_range(4096 - 32, 32, AccessKind::Load, 1);
        assert_eq!(parent.counters().l1_misses, misses);
    }

    #[test]
    fn snapshot_delta_isolates_window() {
        let mut h = Hierarchy::new(small_machine());
        h.access_range(0, 1024, AccessKind::Load, 128);
        let snap = h.snapshot();
        h.access_range(0x10000, 1024, AccessKind::Store, 128);
        let delta = h.counters().delta_since(&snap);
        assert_eq!(delta.loads, 0);
        assert_eq!(delta.stores, 128);
        assert_eq!(delta.l1_misses, 32);
    }
}
