//! Analytic out-of-order timing model.
//!
//! The R10000/R12000 are 4-issue out-of-order cores; the paper
//! repeatedly notes that "out-of-order issue and the MIPS optimizing
//! compiler hide another portion of the latency". We model execution time
//! as
//!
//! ```text
//! cycles = instructions / ipc_base
//!        + (L1 misses hitting L2) · l2_latency · (1 − hide_l2)
//!        + (L2 misses)            · dram_latency · (1 − hide_dram)
//!        + (TLB misses)           · tlb_penalty
//! ```
//!
//! where the `hide_*` factors are the fraction of miss latency the
//! out-of-order window overlaps with useful work. DRAM time as the paper
//! defines it ("cycles during which the processor is stalled due to
//! secondary data cache misses; the latency that out-of-order execution
//! and compilation fail to hide") is exactly the third term over the sum.

use crate::counters::Counters;

/// Parameters of the analytic cycle model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Baseline instructions per cycle in the absence of memory stalls.
    pub ipc_base: f64,
    /// L2 hit latency in CPU cycles (as seen by an L1 miss).
    pub l2_latency: u32,
    /// Main-memory latency in CPU cycles (as seen by an L2 miss).
    pub dram_latency: u32,
    /// Fraction of the L2-hit latency hidden by out-of-order overlap.
    pub hide_l2: f64,
    /// Fraction of the DRAM latency hidden by out-of-order overlap and
    /// software pipelining.
    pub hide_dram: f64,
    /// Cycles per software-refilled TLB miss.
    pub tlb_penalty: u32,
}

impl TimingModel {
    /// Parameters for the 300 MHz R12000.
    pub fn mips_r12k() -> Self {
        TimingModel {
            ipc_base: 1.4,
            l2_latency: 10,
            dram_latency: 200,
            hide_l2: 0.2,
            hide_dram: 0.15,
            tlb_penalty: 60,
        }
    }

    /// Parameters for the 195 MHz R10000 (same pipeline family; DRAM is
    /// relatively closer at the lower clock).
    pub fn mips_r10k() -> Self {
        TimingModel {
            ipc_base: 1.3,
            l2_latency: 9,
            dram_latency: 140,
            hide_l2: 0.2,
            hide_dram: 0.15,
            tlb_penalty: 55,
        }
    }

    /// Visible (unhidden) cycles per L1 miss that hits in L2.
    pub fn visible_l2_cycles(&self) -> f64 {
        f64::from(self.l2_latency) * (1.0 - self.hide_l2)
    }

    /// Visible (unhidden) cycles per L2 miss.
    pub fn visible_dram_cycles(&self) -> f64 {
        f64::from(self.dram_latency) * (1.0 - self.hide_dram)
    }

    /// Full cycle breakdown for a set of counters.
    pub fn breakdown(&self, c: &Counters) -> CycleBreakdown {
        let base = c.instructions() as f64 / self.ipc_base;
        let l1_stall = c.l1_misses_hitting_l2() as f64 * self.visible_l2_cycles();
        let dram_stall = c.l2_misses as f64 * self.visible_dram_cycles();
        let tlb_stall = c.tlb_misses as f64 * f64::from(self.tlb_penalty);
        CycleBreakdown {
            base,
            l1_stall,
            dram_stall,
            tlb_stall,
        }
    }
}

/// Cycle totals by cause.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleBreakdown {
    /// Issue-limited cycles (instructions / IPC).
    pub base: f64,
    /// Visible stall cycles on L1 misses that hit L2.
    pub l1_stall: f64,
    /// Visible stall cycles on L2 misses (DRAM time numerator).
    pub dram_stall: f64,
    /// TLB refill cycles.
    pub tlb_stall: f64,
}

impl CycleBreakdown {
    /// Total execution cycles.
    pub fn total(&self) -> f64 {
        self.base + self.l1_stall + self.dram_stall + self.tlb_stall
    }

    /// Fraction of time stalled on DRAM (the paper's "DRAM time").
    pub fn dram_time_fraction(&self) -> f64 {
        if self.total() == 0.0 {
            0.0
        } else {
            self.dram_stall / self.total()
        }
    }

    /// Fraction of time stalled on L1 misses that hit L2 (the paper's
    /// "L1C miss time").
    pub fn l1_miss_time_fraction(&self) -> f64 {
        if self.total() == 0.0 {
            0.0
        } else {
            self.l1_stall / self.total()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(loads: u64, l1m: u64, l2m: u64) -> Counters {
        Counters {
            loads,
            stores: loads / 4,
            l1_misses: l1m,
            l2_misses: l2m,
            compute_ops: loads * 2,
            ..Counters::default()
        }
    }

    #[test]
    fn zero_misses_means_zero_stall() {
        let t = TimingModel::mips_r12k();
        let b = t.breakdown(&counters(1_000_000, 0, 0));
        assert_eq!(b.l1_stall, 0.0);
        assert_eq!(b.dram_stall, 0.0);
        assert!(b.base > 0.0);
        assert_eq!(b.dram_time_fraction(), 0.0);
    }

    #[test]
    fn stall_fractions_sum_below_one() {
        let t = TimingModel::mips_r12k();
        let b = t.breakdown(&counters(1_000_000, 10_000, 4_000));
        let f = b.dram_time_fraction() + b.l1_miss_time_fraction();
        assert!(f > 0.0 && f < 1.0);
        assert!((b.total() - (b.base + b.l1_stall + b.dram_stall + b.tlb_stall)).abs() < 1e-9);
    }

    #[test]
    fn more_l2_misses_increase_dram_time() {
        let t = TimingModel::mips_r12k();
        let low = t.breakdown(&counters(1_000_000, 10_000, 100));
        let high = t.breakdown(&counters(1_000_000, 10_000, 9_000));
        assert!(high.dram_time_fraction() > low.dram_time_fraction());
    }

    #[test]
    fn hidden_fraction_reduces_visible_latency() {
        let t = TimingModel::mips_r12k();
        assert!(t.visible_l2_cycles() < f64::from(t.l2_latency));
        assert!(t.visible_dram_cycles() < f64::from(t.dram_latency));
    }

    #[test]
    fn empty_counters_have_zero_total() {
        let t = TimingModel::mips_r10k();
        let b = t.breakdown(&Counters::default());
        assert_eq!(b.total(), 0.0);
        assert_eq!(b.dram_time_fraction(), 0.0);
        assert_eq!(b.l1_miss_time_fraction(), 0.0);
    }
}
