//! The naive (un-memoized) reference hierarchy.
//!
//! [`NaiveHierarchy`] models exactly the same machine as
//! [`Hierarchy`](crate::Hierarchy) but takes none of its fast paths: no
//! hierarchy-level MRU filter, no cache-way memo, no TLB-slot memo, and
//! only the default per-row [`MemModel::access_rect`]. Every access runs
//! the full set scan and the full linear TLB scan, re-proving residency
//! the slow way.
//!
//! It exists as the differential baseline for the fast paths: the
//! `fastpath_equiv` suite drives both models with identical reference
//! streams (random, adversarial, and full encodes) and requires every
//! [`Counters`] field, the DRAM traffic, and the per-region tallies to
//! be bit-identical. Keep its semantics in lockstep with `Hierarchy`
//! whenever the charging model changes.

use crate::cache::Cache;
use crate::counters::Counters;
use crate::dram::DramModel;
use crate::hierarchy::RegionMisses;
use crate::machine::MachineSpec;
use crate::model::{AccessKind, MemModel, ParallelModel};
use crate::space::Region;
use crate::tlb::Tlb;

/// Reference memory-hierarchy simulator without any charging fast path.
///
/// # Examples
///
/// ```
/// use m4ps_memsim::{AccessKind, Hierarchy, MachineSpec, MemModel, NaiveHierarchy};
///
/// let mut fast = Hierarchy::new(MachineSpec::o2());
/// let mut naive = NaiveHierarchy::new(MachineSpec::o2());
/// for m in [&mut fast as &mut dyn MemModel, &mut naive] {
///     m.access_range(0x1_0000, 16, AccessKind::Load, 16);
///     m.access_range(0x1_0000, 16, AccessKind::Load, 16);
/// }
/// assert_eq!(fast.counters(), naive.counters());
/// ```
#[derive(Debug, Clone)]
pub struct NaiveHierarchy {
    machine: MachineSpec,
    l1: Cache,
    l2: Cache,
    tlb: Tlb,
    dram: DramModel,
    counters: Counters,
    prefetch_enabled: bool,
    region_spans: Vec<(u64, u64, usize)>,
    region_tags: Vec<String>,
    region_l1: Vec<u64>,
    region_l2: Vec<u64>,
}

impl NaiveHierarchy {
    /// Builds an empty naive hierarchy with prefetch modelling enabled.
    pub fn new(machine: MachineSpec) -> Self {
        NaiveHierarchy {
            l1: Cache::new(machine.l1),
            l2: Cache::new(machine.l2),
            tlb: Tlb::new(machine.tlb),
            dram: DramModel::new(machine.dram),
            counters: Counters::new(),
            prefetch_enabled: true,
            region_spans: Vec::new(),
            region_tags: Vec::new(),
            region_l1: Vec::new(),
            region_l2: Vec::new(),
            machine,
        }
    }

    /// Builds a naive hierarchy with software prefetch disabled.
    pub fn without_prefetch(machine: MachineSpec) -> Self {
        let mut h = Self::new(machine);
        h.prefetch_enabled = false;
        h
    }

    /// Attaches the region map for miss attribution (same semantics as
    /// [`crate::Hierarchy::attach_regions`]).
    pub fn attach_regions(&mut self, regions: &[Region]) {
        self.region_spans.clear();
        self.region_tags.clear();
        for r in regions {
            let idx = match self.region_tags.iter().position(|t| t == &r.tag) {
                Some(i) => i,
                None => {
                    self.region_tags.push(r.tag.clone());
                    self.region_tags.len() - 1
                }
            };
            self.region_spans
                .push((r.base, r.base + r.bytes.max(1), idx));
        }
        self.region_spans.sort_unstable();
        self.region_l1 = vec![0; self.region_tags.len()];
        self.region_l2 = vec![0; self.region_tags.len()];
    }

    /// Miss tallies per region tag, most L1 misses first.
    pub fn region_misses(&self) -> Vec<RegionMisses> {
        let mut out: Vec<RegionMisses> = self
            .region_tags
            .iter()
            .enumerate()
            .map(|(i, tag)| RegionMisses {
                tag: tag.clone(),
                l1_misses: self.region_l1[i],
                l2_misses: self.region_l2[i],
            })
            .collect();
        out.sort_by_key(|r| std::cmp::Reverse(r.l1_misses));
        out
    }

    /// DRAM traffic accounting.
    pub fn dram(&self) -> &DramModel {
        &self.dram
    }

    /// The machine this hierarchy models.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    fn region_of(&self, addr: u64) -> Option<usize> {
        if self.region_spans.is_empty() {
            return None;
        }
        let i = self
            .region_spans
            .partition_point(|&(base, _, _)| base <= addr);
        if i == 0 {
            return None;
        }
        let (_, end, idx) = self.region_spans[i - 1];
        (addr < end).then_some(idx)
    }

    /// Un-memoized line probe through L1 → L2 → DRAM; counter semantics
    /// identical to the fast hierarchy's `probe_line`.
    fn probe_line(&mut self, addr: u64, write: bool, demand: bool) {
        let r1 = self.l1.probe_naive(addr, write);
        if r1.hit {
            return;
        }
        if demand {
            self.counters.l1_misses += 1;
            if let Some(idx) = self.region_of(addr) {
                self.region_l1[idx] += 1;
            }
        }
        if let Some(victim) = r1.writeback_of {
            self.counters.l1_writebacks += 1;
            let wb = self.l2.probe_naive(victim, true);
            if !wb.hit {
                self.counters.l2_misses += 1;
                self.dram.record_read(self.machine.l2.line_bytes);
                if wb.writeback_of.is_some() {
                    self.counters.l2_writebacks += 1;
                    self.dram.record_write(self.machine.l2.line_bytes);
                }
            }
        }
        let r2 = self.l2.probe_naive(addr, false);
        if !r2.hit {
            if demand {
                self.counters.l2_misses += 1;
                if let Some(idx) = self.region_of(addr) {
                    self.region_l2[idx] += 1;
                }
            }
            self.dram.record_read(self.machine.l2.line_bytes);
            if r2.writeback_of.is_some() {
                self.counters.l2_writebacks += 1;
                self.dram.record_write(self.machine.l2.line_bytes);
            }
        }
    }
}

impl MemModel for NaiveHierarchy {
    fn access_range(&mut self, addr: u64, len: u64, kind: AccessKind, arch_ops: u64) {
        match kind {
            AccessKind::Load => self.counters.loads += arch_ops,
            AccessKind::Store => self.counters.stores += arch_ops,
        }
        self.counters.bytes_accessed += len.max(1);
        let last = addr.saturating_add(len.max(1) - 1);
        let page = self.machine.tlb.page_bytes;
        let mut a = addr & !(page - 1);
        let last_page = last & !(page - 1);
        loop {
            if !self.tlb.lookup_naive(a) {
                self.counters.tlb_misses += 1;
            }
            if a == last_page {
                break;
            }
            a += page;
        }
        let line = self.machine.l1.line_bytes;
        let write = matches!(kind, AccessKind::Store);
        let mut a = addr & !(line - 1);
        let last_line = last & !(line - 1);
        loop {
            self.probe_line(a, write, true);
            if a == last_line {
                break;
            }
            a += line;
        }
    }

    // access_rect: deliberately the default per-row implementation — it
    // *is* the reference semantics the optimized override must match.

    fn prefetch(&mut self, addr: u64) {
        if !self.prefetch_enabled {
            return;
        }
        self.counters.prefetches += 1;
        if self.l1.contains(addr) {
            self.counters.prefetch_l1_hits += 1;
            return;
        }
        self.probe_line(addr, false, false);
    }

    fn add_ops(&mut self, ops: u64) {
        self.counters.compute_ops += ops;
    }

    fn counters(&self) -> &Counters {
        &self.counters
    }
}

impl ParallelModel for NaiveHierarchy {
    fn fork(&self) -> Self {
        let mut child = if self.prefetch_enabled {
            NaiveHierarchy::new(self.machine.clone())
        } else {
            NaiveHierarchy::without_prefetch(self.machine.clone())
        };
        child.region_spans = self.region_spans.clone();
        child.region_tags = self.region_tags.clone();
        child.region_l1 = vec![0; self.region_tags.len()];
        child.region_l2 = vec![0; self.region_tags.len()];
        child
    }

    fn absorb(&mut self, child: Self) {
        self.counters.merge(&child.counters);
        self.dram.record_read(child.dram.bytes_read());
        self.dram.record_write(child.dram.bytes_written());
        for (i, tag) in child.region_tags.iter().enumerate() {
            if let Some(j) = self.region_tags.iter().position(|t| t == tag) {
                self.region_l1[j] += child.region_l1[i];
                self.region_l2[j] += child.region_l2[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_fork_starts_cold_and_absorb_merges() {
        let mut parent = NaiveHierarchy::new(MachineSpec::o2());
        parent.access_range(0, 4096, AccessKind::Store, 512);
        let mut child = parent.fork();
        assert_eq!(*child.counters(), Counters::default());
        child.access_range(65536, 4096, AccessKind::Load, 512);
        let before = parent.counters().merged_with(child.counters());
        parent.absorb(child);
        assert_eq!(*parent.counters(), before);
    }

    #[test]
    fn naive_prefetch_counters_match_fast_model() {
        use crate::hierarchy::Hierarchy;
        let mut fast = Hierarchy::new(MachineSpec::o2());
        let mut naive = NaiveHierarchy::new(MachineSpec::o2());
        for m in [&mut fast as &mut dyn MemModel, &mut naive] {
            m.prefetch(0x2000); // useful
            m.access_range(0x2000, 8, AccessKind::Load, 1);
            m.prefetch(0x2004); // wasted (hits L1)
            m.prefetch_pair(0x4000);
        }
        assert_eq!(fast.counters(), naive.counters());
        assert_eq!(fast.dram().bytes_total(), naive.dram().bytes_total());
    }
}
