//! Main-memory and system-bus model.
//!
//! The three SGI platforms share (Table 1 of the paper) a 64-bit,
//! 133 MHz split-transaction system bus with 4-way interleaved SDRAM:
//! roughly 1066 MB/s peak and 680 MB/s sustained. We track the bytes
//! moved and expose the bandwidth ceilings so the study can report bus
//! *utilization* the way the paper does.

/// DRAM / system-bus parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Bus width in bits.
    pub bus_bits: u32,
    /// Bus clock in MHz.
    pub bus_mhz: u32,
    /// Sustained (achievable) bandwidth in MB/s.
    pub sustained_mb_s: f64,
    /// Access latency in CPU cycles (row activate + transfer start),
    /// as seen by a blocked load.
    pub latency_cycles: u32,
    /// Interleave factor of the SDRAM banks.
    pub interleave: u32,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            bus_bits: 64,
            bus_mhz: 133,
            sustained_mb_s: 680.0,
            latency_cycles: 200,
            interleave: 4,
        }
    }
}

impl DramConfig {
    /// Peak bus bandwidth in MB/s (width × clock).
    pub fn peak_mb_s(&self) -> f64 {
        f64::from(self.bus_bits / 8) * f64::from(self.bus_mhz)
    }
}

/// Byte-level traffic accounting between L2 and main memory.
#[derive(Debug, Clone, Default)]
pub struct DramModel {
    config: DramConfig,
    bytes_read: u64,
    bytes_written: u64,
}

impl DramModel {
    /// Creates a traffic model with the given parameters.
    pub fn new(config: DramConfig) -> Self {
        DramModel {
            config,
            bytes_read: 0,
            bytes_written: 0,
        }
    }

    /// The configured parameters.
    pub fn config(&self) -> DramConfig {
        self.config
    }

    /// Records a line fetch of `bytes` from DRAM.
    pub fn record_read(&mut self, bytes: u64) {
        self.bytes_read += bytes;
    }

    /// Records a writeback of `bytes` to DRAM.
    pub fn record_write(&mut self, bytes: u64) {
        self.bytes_written += bytes;
    }

    /// Total bytes fetched from DRAM.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Total bytes written back to DRAM.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Total bus traffic in bytes.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Fraction of the sustained bandwidth consumed when the recorded
    /// traffic is spread over `seconds` of execution.
    pub fn utilization(&self, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            return 0.0;
        }
        let mb = self.bytes_total() as f64 / 1.0e6;
        (mb / seconds) / self.config.sustained_mb_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_bandwidth_from_geometry() {
        let c = DramConfig::default();
        assert!((c.peak_mb_s() - 1064.0).abs() < 1e-9);
    }

    #[test]
    fn traffic_accumulates() {
        let mut d = DramModel::new(DramConfig::default());
        d.record_read(128);
        d.record_read(128);
        d.record_write(128);
        assert_eq!(d.bytes_read(), 256);
        assert_eq!(d.bytes_written(), 128);
        assert_eq!(d.bytes_total(), 384);
    }

    #[test]
    fn utilization_is_fraction_of_sustained() {
        let mut d = DramModel::new(DramConfig::default());
        // 68 MB over 1 s = 68 MB/s = 10% of 680 MB/s sustained.
        d.record_read(68_000_000);
        assert!((d.utilization(1.0) - 0.1).abs() < 1e-9);
        assert_eq!(d.utilization(0.0), 0.0);
    }
}
