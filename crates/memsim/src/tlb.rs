//! Data-TLB model.
//!
//! The R10000/R12000 have a 64-entry fully-associative unified TLB with
//! (under IRIX 6.5) 16 KB base pages. The paper reports TLB misses as
//! negligible for MPEG-4; we simulate the TLB so that claim is *checked*
//! rather than assumed.

/// TLB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries (fully associative).
    pub entries: usize,
    /// Page size in bytes (power of two).
    pub page_bytes: u64,
}

impl Default for TlbConfig {
    fn default() -> Self {
        // R10K/R12K: 64 entries; IRIX 6.5 default page 16 KB.
        TlbConfig {
            entries: 64,
            page_bytes: 16 * 1024,
        }
    }
}

/// Fully-associative LRU TLB.
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    page_shift: u32,
    /// (virtual page number, recency stamp) per entry; invalid = None.
    entries: Vec<Option<(u64, u64)>>,
    tick: u64,
    misses: u64,
    lookups: u64,
}

impl Tlb {
    /// Builds an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if the page size is not a power of two or `entries` is zero.
    pub fn new(config: TlbConfig) -> Self {
        assert!(config.page_bytes.is_power_of_two());
        assert!(config.entries >= 1);
        Tlb {
            config,
            page_shift: config.page_bytes.trailing_zeros(),
            entries: vec![None; config.entries],
            tick: 0,
            misses: 0,
            lookups: 0,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> TlbConfig {
        self.config
    }

    /// Looks up the page containing `addr`; returns `true` on hit and
    /// installs the translation on miss (LRU replacement).
    pub fn lookup(&mut self, addr: u64) -> bool {
        self.tick += 1;
        self.lookups += 1;
        let vpn = addr >> self.page_shift;
        for (page, stamp) in self.entries.iter_mut().flatten() {
            if *page == vpn {
                *stamp = self.tick;
                return true;
            }
        }
        self.misses += 1;
        let victim = self
            .entries
            .iter_mut()
            .min_by_key(|e| e.map_or(0, |(_, stamp)| stamp + 1))
            .expect("entries >= 1");
        *victim = Some((vpn, self.tick));
        false
    }

    /// Total lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Total misses taken.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits_after_first_touch() {
        let mut t = Tlb::new(TlbConfig::default());
        assert!(!t.lookup(0x4000));
        assert!(t.lookup(0x4abc));
        assert!(t.lookup(0x7fff)); // still page 1 of 16 KB
        assert!(!t.lookup(0x8000)); // next page
        assert_eq!(t.misses(), 2);
        assert_eq!(t.lookups(), 4);
    }

    #[test]
    fn lru_replacement_at_capacity() {
        let cfg = TlbConfig {
            entries: 4,
            page_bytes: 4096,
        };
        let mut t = Tlb::new(cfg);
        for p in 0..4u64 {
            t.lookup(p * 4096);
        }
        t.lookup(0); // refresh page 0 → page 1 is LRU
        t.lookup(4 * 4096); // evicts page 1
        assert!(t.lookup(0)); // page 0 still resident
        assert!(!t.lookup(4096)); // page 1 was evicted
    }

    #[test]
    fn working_set_within_entries_never_misses_again() {
        let cfg = TlbConfig {
            entries: 8,
            page_bytes: 4096,
        };
        let mut t = Tlb::new(cfg);
        for _ in 0..10 {
            for p in 0..8u64 {
                t.lookup(p * 4096 + 123);
            }
        }
        assert_eq!(t.misses(), 8);
    }
}
