//! Data-TLB model.
//!
//! The R10000/R12000 have a 64-entry fully-associative unified TLB with
//! (under IRIX 6.5) 16 KB base pages. The paper reports TLB misses as
//! negligible for MPEG-4; we simulate the TLB so that claim is *checked*
//! rather than assumed.

/// TLB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries (fully associative).
    pub entries: usize,
    /// Page size in bytes (power of two).
    pub page_bytes: u64,
}

impl Default for TlbConfig {
    fn default() -> Self {
        // R10K/R12K: 64 entries; IRIX 6.5 default page 16 KB.
        TlbConfig {
            entries: 64,
            page_bytes: 16 * 1024,
        }
    }
}

/// Fully-associative LRU TLB.
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    page_shift: u32,
    /// (virtual page number, recency stamp) per entry; invalid = None.
    entries: Vec<Option<(u64, u64)>>,
    tick: u64,
    misses: u64,
    lookups: u64,
    /// Indices of recently resolved entries, checked before the linear
    /// scan. A slot is only trusted after verifying its VPN — VPNs are
    /// unique in the table, so a match is authoritative and the memo
    /// needs no invalidation. `usize::MAX` marks an empty memo slot.
    mru: [usize; 2],
}

impl Tlb {
    /// Builds an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if the page size is not a power of two or `entries` is zero.
    pub fn new(config: TlbConfig) -> Self {
        assert!(config.page_bytes.is_power_of_two());
        assert!(config.entries >= 1);
        Tlb {
            config,
            page_shift: config.page_bytes.trailing_zeros(),
            entries: vec![None; config.entries],
            tick: 0,
            misses: 0,
            lookups: 0,
            mru: [usize::MAX; 2],
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> TlbConfig {
        self.config
    }

    /// Looks up the page containing `addr`; returns `true` on hit and
    /// installs the translation on miss (LRU replacement).
    pub fn lookup(&mut self, addr: u64) -> bool {
        let vpn = addr >> self.page_shift;
        for (m, &slot) in self.mru.iter().enumerate() {
            let Some(Some((page, _))) = self.entries.get(slot) else {
                continue;
            };
            if *page == vpn {
                // Exact hit transition without the 64-entry scan.
                self.tick += 1;
                self.lookups += 1;
                self.entries[slot] = Some((vpn, self.tick));
                if m != 0 {
                    self.mru.swap(0, m);
                }
                return true;
            }
        }
        self.scan(vpn, true)
    }

    /// The reference lookup path: always the full linear scan, no memo
    /// consulted or created. Transitions are identical to
    /// [`Tlb::lookup`]; the naive model uses this as the differential
    /// baseline.
    pub fn lookup_naive(&mut self, addr: u64) -> bool {
        self.scan(addr >> self.page_shift, false)
    }

    /// Linear scan + LRU install, optionally remembering the resolved
    /// slot for the next lookup.
    fn scan(&mut self, vpn: u64, memoize: bool) -> bool {
        self.tick += 1;
        self.lookups += 1;
        let mut found = None;
        for (i, e) in self.entries.iter_mut().enumerate() {
            if let Some((page, stamp)) = e {
                if *page == vpn {
                    *stamp = self.tick;
                    found = Some(i);
                    break;
                }
            }
        }
        let slot = match found {
            Some(i) => i,
            None => {
                self.misses += 1;
                let (victim_idx, victim) = self
                    .entries
                    .iter_mut()
                    .enumerate()
                    .min_by_key(|(_, e)| e.map_or(0, |(_, stamp)| stamp + 1))
                    .expect("entries >= 1");
                *victim = Some((vpn, self.tick));
                victim_idx
            }
        };
        if memoize {
            self.mru = [slot, self.mru[0]];
        }
        found.is_some()
    }

    /// Accounts a lookup the owning hierarchy's MRU filter resolved
    /// without scanning: the page is already the most recently used
    /// entry, so skipping the recency restamp is the identity
    /// transition. Only the lookup tally advances.
    pub(crate) fn filtered_hit(&mut self) {
        self.lookups += 1;
    }

    /// Total lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Total misses taken.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits_after_first_touch() {
        let mut t = Tlb::new(TlbConfig::default());
        assert!(!t.lookup(0x4000));
        assert!(t.lookup(0x4abc));
        assert!(t.lookup(0x7fff)); // still page 1 of 16 KB
        assert!(!t.lookup(0x8000)); // next page
        assert_eq!(t.misses(), 2);
        assert_eq!(t.lookups(), 4);
    }

    #[test]
    fn lru_replacement_at_capacity() {
        let cfg = TlbConfig {
            entries: 4,
            page_bytes: 4096,
        };
        let mut t = Tlb::new(cfg);
        for p in 0..4u64 {
            t.lookup(p * 4096);
        }
        t.lookup(0); // refresh page 0 → page 1 is LRU
        t.lookup(4 * 4096); // evicts page 1
        assert!(t.lookup(0)); // page 0 still resident
        assert!(!t.lookup(4096)); // page 1 was evicted
    }

    /// The memoized lookup must agree with the naive linear scan on
    /// results, miss/lookup tallies, and all future replacement
    /// behaviour, including the alternating-page pattern the memo is
    /// built for and eviction churn past capacity.
    #[test]
    fn memoized_lookup_matches_naive_lookup() {
        let cfg = TlbConfig {
            entries: 4,
            page_bytes: 4096,
        };
        let mut fast = Tlb::new(cfg);
        let mut naive = Tlb::new(cfg);
        let addrs: Vec<u64> = (0..3000u64)
            .map(|i| match i % 11 {
                0..=2 => 0x0,        // repeat page
                3..=5 => 0x1000,     // alternate page
                6 => 4096 * (i % 7), // churn past capacity
                7 => 0x2000,
                _ => 4096 * (i % 3),
            })
            .collect();
        for &a in &addrs {
            assert_eq!(fast.lookup(a), naive.lookup_naive(a), "addr {a:#x}");
        }
        assert_eq!(fast.misses(), naive.misses());
        assert_eq!(fast.lookups(), naive.lookups());
    }

    #[test]
    fn working_set_within_entries_never_misses_again() {
        let cfg = TlbConfig {
            entries: 8,
            page_bytes: 4096,
        };
        let mut t = Tlb::new(cfg);
        for _ in 0..10 {
            for p in 0..8u64 {
                t.lookup(p * 4096 + 123);
            }
        }
        assert_eq!(t.misses(), 8);
    }
}
