//! Machine presets for the three SGI platforms of the study.

use crate::cache::CacheConfig;
use crate::dram::DramConfig;
use crate::timing::TimingModel;
use crate::tlb::TlbConfig;

/// Processor family. The only behavioural difference the paper exercises
/// is that the R10000 cannot count prefetches that hit in L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuKind {
    /// MIPS R10000 (Onyx VTX).
    R10000,
    /// MIPS R12000 (O2, Onyx2 InfiniteReality).
    R12000,
}

impl CpuKind {
    /// Whether the performance counters can report prefetches hitting L1.
    pub fn counts_prefetch_l1_hits(self) -> bool {
        matches!(self, CpuKind::R12000)
    }

    /// Short display name.
    pub fn short_name(self) -> &'static str {
        match self {
            CpuKind::R10000 => "R10K",
            CpuKind::R12000 => "R12K",
        }
    }
}

/// Full description of one experimental platform.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Marketing name of the system.
    pub name: &'static str,
    /// Processor family.
    pub cpu: CpuKind,
    /// Core clock in MHz.
    pub clock_mhz: u32,
    /// L1 data cache geometry.
    pub l1: CacheConfig,
    /// Unified L2 cache geometry.
    pub l2: CacheConfig,
    /// Data TLB geometry.
    pub tlb: TlbConfig,
    /// DRAM / system-bus parameters.
    pub dram: DramConfig,
    /// Analytic timing parameters.
    pub timing: TimingModel,
}

/// R10K/R12K L1 data cache: 32 KB, 2-way, 32 B lines.
fn mips_l1() -> CacheConfig {
    CacheConfig {
        size_bytes: 32 * 1024,
        line_bytes: 32,
        assoc: 2,
    }
}

/// SGI L2: 2-way, 128 B lines, size per machine.
fn mips_l2(mb: u64) -> CacheConfig {
    CacheConfig {
        size_bytes: mb * 1024 * 1024,
        line_bytes: 128,
        assoc: 2,
    }
}

impl MachineSpec {
    /// SGI O2: MIPS R12000, 1 MB L2.
    pub fn o2() -> Self {
        MachineSpec {
            name: "SGI O2",
            cpu: CpuKind::R12000,
            clock_mhz: 300,
            l1: mips_l1(),
            l2: mips_l2(1),
            tlb: TlbConfig::default(),
            dram: DramConfig::default(),
            timing: TimingModel::mips_r12k(),
        }
    }

    /// SGI Onyx VTX: MIPS R10000, 2 MB L2.
    pub fn onyx_vtx() -> Self {
        MachineSpec {
            name: "SGI Onyx VTX",
            cpu: CpuKind::R10000,
            clock_mhz: 195,
            l1: mips_l1(),
            l2: mips_l2(2),
            tlb: TlbConfig::default(),
            dram: DramConfig::default(),
            timing: TimingModel::mips_r10k(),
        }
    }

    /// SGI Onyx2 InfiniteReality: MIPS R12000, 8 MB L2.
    pub fn onyx2() -> Self {
        MachineSpec {
            name: "SGI Onyx2 InfiniteReality",
            cpu: CpuKind::R12000,
            clock_mhz: 300,
            l1: mips_l1(),
            l2: mips_l2(8),
            tlb: TlbConfig::default(),
            dram: DramConfig::default(),
            timing: TimingModel::mips_r12k(),
        }
    }

    /// All three platforms in the order the paper's tables use
    /// (1 MB, 2 MB, 8 MB L2).
    pub fn study_machines() -> Vec<MachineSpec> {
        vec![Self::o2(), Self::onyx_vtx(), Self::onyx2()]
    }

    /// A custom machine derived from this one with a different L2 size
    /// (for cache-geometry sweeps).
    pub fn with_l2_mb(mut self, mb: u64) -> Self {
        self.l2 = mips_l2(mb);
        self
    }

    /// Column label used in the reproduced tables, e.g. `R12K 1MB`.
    pub fn column_label(&self) -> String {
        format!(
            "{} {}MB",
            self.cpu.short_name(),
            self.l2.size_bytes / (1024 * 1024)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_table_1() {
        let o2 = MachineSpec::o2();
        assert_eq!(o2.cpu, CpuKind::R12000);
        assert_eq!(o2.l2.size_bytes, 1024 * 1024);

        let onyx = MachineSpec::onyx_vtx();
        assert_eq!(onyx.cpu, CpuKind::R10000);
        assert_eq!(onyx.l2.size_bytes, 2 * 1024 * 1024);

        let onyx2 = MachineSpec::onyx2();
        assert_eq!(onyx2.cpu, CpuKind::R12000);
        assert_eq!(onyx2.l2.size_bytes, 8 * 1024 * 1024);

        for m in MachineSpec::study_machines() {
            assert_eq!(m.l1.size_bytes, 32 * 1024);
            assert_eq!(m.l1.line_bytes, 32);
            assert_eq!(m.l2.line_bytes, 128);
            assert_eq!(m.dram.bus_bits, 64);
            assert_eq!(m.dram.bus_mhz, 133);
        }
    }

    #[test]
    fn prefetch_countability_differs_by_cpu() {
        assert!(CpuKind::R12000.counts_prefetch_l1_hits());
        assert!(!CpuKind::R10000.counts_prefetch_l1_hits());
    }

    #[test]
    fn column_labels() {
        assert_eq!(MachineSpec::o2().column_label(), "R12K 1MB");
        assert_eq!(MachineSpec::onyx_vtx().column_label(), "R10K 2MB");
        assert_eq!(MachineSpec::onyx2().column_label(), "R12K 8MB");
    }

    #[test]
    fn l2_override() {
        let m = MachineSpec::o2().with_l2_mb(4);
        assert_eq!(m.l2.size_bytes, 4 * 1024 * 1024);
        assert_eq!(m.l2.sets(), 4 * 1024 * 1024 / (128 * 2));
    }
}
