//! Perfex-style event counters.
//!
//! The IRIX Perfex library exposed 32 virtual counters multiplexed onto
//! two hardware counters; we keep the subset the paper reports plus the
//! raw events its derived metrics need.

/// Raw event counts accumulated by the simulated hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counters {
    /// Graduated load instructions.
    pub loads: u64,
    /// Graduated store instructions.
    pub stores: u64,
    /// Software prefetch instructions issued.
    pub prefetches: u64,
    /// Prefetches whose target line was already in L1 (wasted issue slots;
    /// the R10000 cannot count these — see [`crate::MachineSpec`]).
    pub prefetch_l1_hits: u64,
    /// L1 data-cache misses (demand refills).
    pub l1_misses: u64,
    /// Dirty L1 lines written back to L2.
    pub l1_writebacks: u64,
    /// L2 cache misses (lines fetched from DRAM).
    pub l2_misses: u64,
    /// Dirty L2 lines written back to DRAM.
    pub l2_writebacks: u64,
    /// Data-TLB misses.
    pub tlb_misses: u64,
    /// Non-memory compute instructions charged by the kernels.
    pub compute_ops: u64,
    /// Total bytes moved by architectural accesses (ALU ↔ L1 volume,
    /// used by the SIMD bandwidth projection).
    pub bytes_accessed: u64,
}

impl Counters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Graduated loads plus graduated stores.
    pub fn memory_refs(&self) -> u64 {
        self.loads + self.stores
    }

    /// Total graduated instructions (memory refs + prefetches + compute).
    pub fn instructions(&self) -> u64 {
        self.memory_refs() + self.prefetches + self.compute_ops
    }

    /// L1 misses that were satisfied by L2 (did not go to DRAM).
    pub fn l1_misses_hitting_l2(&self) -> u64 {
        self.l1_misses.saturating_sub(self.l2_misses)
    }

    /// Element-wise difference `self − earlier`, for instrumenting a
    /// window of execution (the paper wraps `VopCode()` /
    /// `DecodeVopCombMotionShapeTexture()` in counter reads).
    ///
    /// # Panics
    ///
    /// Panics if any field of `earlier` exceeds the corresponding field of
    /// `self` (counters are monotonic).
    pub fn delta_since(&self, earlier: &Counters) -> Counters {
        let sub = |a: u64, b: u64| {
            assert!(a >= b, "counters went backwards ({a} < {b})");
            a - b
        };
        Counters {
            loads: sub(self.loads, earlier.loads),
            stores: sub(self.stores, earlier.stores),
            prefetches: sub(self.prefetches, earlier.prefetches),
            prefetch_l1_hits: sub(self.prefetch_l1_hits, earlier.prefetch_l1_hits),
            l1_misses: sub(self.l1_misses, earlier.l1_misses),
            l1_writebacks: sub(self.l1_writebacks, earlier.l1_writebacks),
            l2_misses: sub(self.l2_misses, earlier.l2_misses),
            l2_writebacks: sub(self.l2_writebacks, earlier.l2_writebacks),
            tlb_misses: sub(self.tlb_misses, earlier.tlb_misses),
            compute_ops: sub(self.compute_ops, earlier.compute_ops),
            bytes_accessed: sub(self.bytes_accessed, earlier.bytes_accessed),
        }
    }

    /// Element-wise in-place accumulation of `other` into `self`.
    ///
    /// This is how per-slice counter sets from a parallel encode are
    /// folded back into the parent model's totals: addition is
    /// commutative, so the merged counters are independent of worker
    /// scheduling as long as the set of slices is fixed.
    pub fn merge(&mut self, other: &Counters) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.prefetches += other.prefetches;
        self.prefetch_l1_hits += other.prefetch_l1_hits;
        self.l1_misses += other.l1_misses;
        self.l1_writebacks += other.l1_writebacks;
        self.l2_misses += other.l2_misses;
        self.l2_writebacks += other.l2_writebacks;
        self.tlb_misses += other.tlb_misses;
        self.compute_ops += other.compute_ops;
        self.bytes_accessed += other.bytes_accessed;
    }

    /// Element-wise sum.
    pub fn merged_with(&self, other: &Counters) -> Counters {
        let mut out = *self;
        out.merge(other);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Counters {
        Counters {
            loads: 1000,
            stores: 400,
            prefetches: 2,
            prefetch_l1_hits: 1,
            l1_misses: 10,
            l1_writebacks: 4,
            l2_misses: 3,
            l2_writebacks: 1,
            tlb_misses: 0,
            compute_ops: 2000,
            bytes_accessed: 1400,
        }
    }

    #[test]
    fn derived_sums() {
        let c = sample();
        assert_eq!(c.memory_refs(), 1400);
        assert_eq!(c.instructions(), 3402);
        assert_eq!(c.l1_misses_hitting_l2(), 7);
    }

    #[test]
    fn delta_and_merge_are_inverses() {
        let a = sample();
        let b = a.merged_with(&sample());
        assert_eq!(b.delta_since(&a), a);
    }

    #[test]
    fn merge_accumulates_in_place() {
        let mut acc = Counters::default();
        acc.merge(&sample());
        acc.merge(&sample());
        assert_eq!(acc, sample().merged_with(&sample()));
        assert_eq!(acc.loads, 2000);
        assert_eq!(acc.bytes_accessed, 2800);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn negative_delta_panics() {
        let a = sample();
        Counters::default().delta_since(&a);
    }
}
