//! The memory-model abstraction the codec is generic over.

use crate::counters::Counters;

/// Kind of an architectural data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A data load (graduated load instruction).
    Load,
    /// A data store (graduated store instruction).
    Store,
}

/// A sink for the codec's memory-reference stream.
///
/// Every logical data access the codec performs is reported here. The
/// full simulator ([`crate::Hierarchy`]) runs the reference through the
/// cache hierarchy; [`NullModel`] ignores everything so functional tests
/// pay no simulation cost.
pub trait MemModel {
    /// Reports `arch_ops` architectural accesses of `kind` covering
    /// `len` bytes starting at `addr`. The span is probed through the
    /// cache hierarchy at line granularity.
    fn access_range(&mut self, addr: u64, len: u64, kind: AccessKind, arch_ops: u64);

    /// Reports a single architectural access to `len` bytes at `addr`.
    fn access(&mut self, addr: u64, kind: AccessKind) {
        self.access_range(addr, 1, kind, 1);
    }

    /// Reports a rectangular access pattern: `rows` rows of `row_bytes`
    /// bytes, the first at `addr`, each subsequent one `stride` bytes
    /// further. Each row charges `ops_per_row` architectural accesses.
    ///
    /// The charge stream is defined to be identical to issuing
    /// [`MemModel::access_range`] once per row in ascending order —
    /// implementations may only restructure it in ways that preserve
    /// every counter bit-for-bit. Block kernels (SAD candidates,
    /// motion-compensation windows, DCT block I/O) use this to collapse
    /// per-row charging calls into one.
    fn access_rect(
        &mut self,
        addr: u64,
        stride: u64,
        rows: u64,
        row_bytes: u64,
        kind: AccessKind,
        ops_per_row: u64,
    ) {
        let mut a = addr;
        for r in 0..rows {
            self.access_range(a, row_bytes, kind, ops_per_row);
            if r + 1 < rows {
                a = a.saturating_add(stride);
            }
        }
    }

    /// Issues a software prefetch for the line containing `addr`.
    fn prefetch(&mut self, addr: u64);

    /// Issues the unrolled-loop prefetch idiom the MIPSpro compiler
    /// produces: two prefetches whose targets usually collapse into the
    /// same cache line, so roughly half are redundant. This is the
    /// mechanism behind the paper's observation that over half of the
    /// compiler's prefetches hit L1 and waste issue bandwidth.
    fn prefetch_pair(&mut self, addr: u64) {
        self.prefetch(addr);
        self.prefetch(addr + 8);
    }

    /// Charges `ops` non-memory compute instructions to the timing model.
    fn add_ops(&mut self, ops: u64);

    /// Current event counts.
    fn counters(&self) -> &Counters;
}

/// A memory model that can spawn independent per-worker instances and
/// fold their observations back in — the simulation side of
/// slice-parallel encoding.
///
/// `fork` produces a model with the *same configuration* (machine,
/// prefetch setting, region map) but *empty state* (cold caches, zero
/// counters): each worker models a core with private caches, as in the
/// MPSoC designs the paper's follow-up literature points to. Because a
/// fork starts from a fixed state rather than a snapshot of the parent,
/// a slice's simulated traffic depends only on the slice's own access
/// stream — never on worker scheduling — which is what keeps merged
/// counters identical across thread counts.
///
/// `absorb` folds a finished fork's totals (event counters, DRAM
/// traffic, per-region miss tallies) back into the parent via
/// commutative addition; the fork's transient cache/TLB state is
/// discarded.
pub trait ParallelModel: MemModel + Send + Sized {
    /// Same-configuration, empty-state child model for one worker.
    fn fork(&self) -> Self;

    /// Accumulates a finished fork's observations into `self`.
    fn absorb(&mut self, child: Self);
}

/// A no-op model: counts nothing, simulates nothing.
///
/// Use it to run the codec at full speed when only functional behaviour
/// matters.
///
/// # Examples
///
/// ```
/// use m4ps_memsim::{AccessKind, MemModel, NullModel};
///
/// let mut m = NullModel::new();
/// m.access(0x1000, AccessKind::Load);
/// assert_eq!(m.counters().loads, 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NullModel {
    counters: Counters,
}

impl NullModel {
    /// Creates a new no-op model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MemModel for NullModel {
    fn access_range(&mut self, _addr: u64, _len: u64, _kind: AccessKind, _arch_ops: u64) {}

    fn access_rect(
        &mut self,
        _addr: u64,
        _stride: u64,
        _rows: u64,
        _row_bytes: u64,
        _kind: AccessKind,
        _ops_per_row: u64,
    ) {
    }

    fn prefetch(&mut self, _addr: u64) {}

    fn add_ops(&mut self, _ops: u64) {}

    fn counters(&self) -> &Counters {
        &self.counters
    }
}

impl ParallelModel for NullModel {
    fn fork(&self) -> Self {
        NullModel::new()
    }

    fn absorb(&mut self, _child: Self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_model_counts_nothing() {
        let mut m = NullModel::new();
        m.access_range(0, 1024, AccessKind::Store, 128);
        m.access_rect(0, 64, 16, 16, AccessKind::Load, 16);
        m.prefetch(64);
        m.add_ops(1_000_000);
        assert_eq!(*m.counters(), Counters::default());
    }

    /// The default `access_rect` must be indistinguishable from the
    /// per-row `access_range` loop it is defined as.
    #[test]
    fn default_access_rect_matches_row_loop() {
        use crate::hierarchy::Hierarchy;
        use crate::machine::MachineSpec;

        // NaiveHierarchy inherits the default; drive it both ways.
        let mut by_rows = crate::NaiveHierarchy::new(MachineSpec::o2());
        let mut by_rect = crate::NaiveHierarchy::new(MachineSpec::o2());
        let (addr, stride, rows, row_bytes) = (0x1000u64, 720u64, 16u64, 16u64);
        for r in 0..rows {
            by_rows.access_range(addr + r * stride, row_bytes, AccessKind::Load, row_bytes);
        }
        by_rect.access_rect(addr, stride, rows, row_bytes, AccessKind::Load, row_bytes);
        assert_eq!(by_rows.counters(), by_rect.counters());

        // And the optimized Hierarchy override agrees with the default.
        let mut fast = Hierarchy::new(MachineSpec::o2());
        fast.access_rect(addr, stride, rows, row_bytes, AccessKind::Load, row_bytes);
        assert_eq!(fast.counters(), by_rect.counters());
    }
}
