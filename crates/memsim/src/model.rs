//! The memory-model abstraction the codec is generic over.

use crate::counters::Counters;

/// Kind of an architectural data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A data load (graduated load instruction).
    Load,
    /// A data store (graduated store instruction).
    Store,
}

/// A sink for the codec's memory-reference stream.
///
/// Every logical data access the codec performs is reported here. The
/// full simulator ([`crate::Hierarchy`]) runs the reference through the
/// cache hierarchy; [`NullModel`] ignores everything so functional tests
/// pay no simulation cost.
pub trait MemModel {
    /// Reports `arch_ops` architectural accesses of `kind` covering
    /// `len` bytes starting at `addr`. The span is probed through the
    /// cache hierarchy at line granularity.
    fn access_range(&mut self, addr: u64, len: u64, kind: AccessKind, arch_ops: u64);

    /// Reports a single architectural access to `len` bytes at `addr`.
    fn access(&mut self, addr: u64, kind: AccessKind) {
        self.access_range(addr, 1, kind, 1);
    }

    /// Issues a software prefetch for the line containing `addr`.
    fn prefetch(&mut self, addr: u64);

    /// Issues the unrolled-loop prefetch idiom the MIPSpro compiler
    /// produces: two prefetches whose targets usually collapse into the
    /// same cache line, so roughly half are redundant. This is the
    /// mechanism behind the paper's observation that over half of the
    /// compiler's prefetches hit L1 and waste issue bandwidth.
    fn prefetch_pair(&mut self, addr: u64) {
        self.prefetch(addr);
        self.prefetch(addr + 8);
    }

    /// Charges `ops` non-memory compute instructions to the timing model.
    fn add_ops(&mut self, ops: u64);

    /// Current event counts.
    fn counters(&self) -> &Counters;
}

/// A memory model that can spawn independent per-worker instances and
/// fold their observations back in — the simulation side of
/// slice-parallel encoding.
///
/// `fork` produces a model with the *same configuration* (machine,
/// prefetch setting, region map) but *empty state* (cold caches, zero
/// counters): each worker models a core with private caches, as in the
/// MPSoC designs the paper's follow-up literature points to. Because a
/// fork starts from a fixed state rather than a snapshot of the parent,
/// a slice's simulated traffic depends only on the slice's own access
/// stream — never on worker scheduling — which is what keeps merged
/// counters identical across thread counts.
///
/// `absorb` folds a finished fork's totals (event counters, DRAM
/// traffic, per-region miss tallies) back into the parent via
/// commutative addition; the fork's transient cache/TLB state is
/// discarded.
pub trait ParallelModel: MemModel + Send + Sized {
    /// Same-configuration, empty-state child model for one worker.
    fn fork(&self) -> Self;

    /// Accumulates a finished fork's observations into `self`.
    fn absorb(&mut self, child: Self);
}

/// A no-op model: counts nothing, simulates nothing.
///
/// Use it to run the codec at full speed when only functional behaviour
/// matters.
///
/// # Examples
///
/// ```
/// use m4ps_memsim::{AccessKind, MemModel, NullModel};
///
/// let mut m = NullModel::new();
/// m.access(0x1000, AccessKind::Load);
/// assert_eq!(m.counters().loads, 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NullModel {
    counters: Counters,
}

impl NullModel {
    /// Creates a new no-op model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MemModel for NullModel {
    fn access_range(&mut self, _addr: u64, _len: u64, _kind: AccessKind, _arch_ops: u64) {}

    fn prefetch(&mut self, _addr: u64) {}

    fn add_ops(&mut self, _ops: u64) {}

    fn counters(&self) -> &Counters {
        &self.counters
    }
}

impl ParallelModel for NullModel {
    fn fork(&self) -> Self {
        NullModel::new()
    }

    fn absorb(&mut self, _child: Self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_model_counts_nothing() {
        let mut m = NullModel::new();
        m.access_range(0, 1024, AccessKind::Store, 128);
        m.prefetch(64);
        m.add_ops(1_000_000);
        assert_eq!(*m.counters(), Counters::default());
    }
}
