//! Traced buffers: real data + simulated addresses.
//!
//! A [`SimBuf`] owns a `Vec<T>` and a base address in the simulated
//! address space. Every logical access goes through a [`MemModel`] before
//! touching the real data, so the cache simulator sees the same reference
//! stream the MoMuSys codec would generate, while the computation runs on
//! native memory at native speed.

use crate::model::{AccessKind, MemModel};
use crate::space::AddressSpace;

/// A traced, fixed-length buffer of plain-old-data elements.
///
/// # Examples
///
/// ```
/// use m4ps_memsim::{AddressSpace, NullModel, SimBuf};
///
/// let mut space = AddressSpace::new();
/// let mut mem = NullModel::new();
/// let mut buf = SimBuf::<u8>::zeroed(&mut space, 64);
/// buf.store(&mut mem, 3, 42);
/// assert_eq!(buf.load(&mut mem, 3), 42);
/// ```
#[derive(Debug, Clone)]
pub struct SimBuf<T> {
    base: u64,
    data: Vec<T>,
}

impl<T: Copy + Default> SimBuf<T> {
    /// Allocates a zero-initialized buffer of `len` elements in `space`.
    pub fn zeroed(space: &mut AddressSpace, len: usize) -> Self {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        SimBuf {
            base: space.alloc(bytes),
            data: vec![T::default(); len],
        }
    }

    /// Wraps existing data, allocating a simulated address for it.
    pub fn from_vec(space: &mut AddressSpace, data: Vec<T>) -> Self {
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        SimBuf {
            base: space.alloc(bytes),
            data,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Simulated base address of element 0.
    pub fn base_addr(&self) -> u64 {
        self.base
    }

    /// Simulated address of element `idx`.
    pub fn addr_of(&self, idx: usize) -> u64 {
        self.base + (idx * std::mem::size_of::<T>()) as u64
    }

    /// Traced single-element load.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn load<M: MemModel>(&self, mem: &mut M, idx: usize) -> T {
        mem.access_range(
            self.addr_of(idx),
            std::mem::size_of::<T>() as u64,
            AccessKind::Load,
            1,
        );
        self.data[idx]
    }

    /// Traced single-element store.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn store<M: MemModel>(&mut self, mem: &mut M, idx: usize, value: T) {
        mem.access_range(
            self.addr_of(idx),
            std::mem::size_of::<T>() as u64,
            AccessKind::Store,
            1,
        );
        self.data[idx] = value;
    }

    /// Traced load of `len` consecutive elements starting at `start`;
    /// counts `len` architectural loads and probes each spanned line once.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn load_run<M: MemModel>(&self, mem: &mut M, start: usize, len: usize) -> &[T] {
        assert!(start + len <= self.data.len());
        if len > 0 {
            mem.access_range(
                self.addr_of(start),
                (len * std::mem::size_of::<T>()) as u64,
                AccessKind::Load,
                len as u64,
            );
        }
        &self.data[start..start + len]
    }

    /// Traced store of `src` into consecutive elements starting at
    /// `start`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn store_run<M: MemModel>(&mut self, mem: &mut M, start: usize, src: &[T]) {
        assert!(start + src.len() <= self.data.len());
        if !src.is_empty() {
            mem.access_range(
                self.addr_of(start),
                std::mem::size_of_val(src) as u64,
                AccessKind::Store,
                src.len() as u64,
            );
        }
        self.data[start..start + src.len()].copy_from_slice(src);
    }

    /// Charges a traced *read touch* of a range without returning data
    /// (for kernels that read via [`SimBuf::raw`] after accounting).
    pub fn touch_read<M: MemModel>(&self, mem: &mut M, start: usize, len: usize) {
        assert!(start + len <= self.data.len());
        if len > 0 {
            mem.access_range(
                self.addr_of(start),
                (len * std::mem::size_of::<T>()) as u64,
                AccessKind::Load,
                len as u64,
            );
        }
    }

    /// Charges a traced *write touch* of a range without writing data.
    pub fn touch_write<M: MemModel>(&self, mem: &mut M, start: usize, len: usize) {
        assert!(start + len <= self.data.len());
        if len > 0 {
            mem.access_range(
                self.addr_of(start),
                (len * std::mem::size_of::<T>()) as u64,
                AccessKind::Store,
                len as u64,
            );
        }
    }

    /// Untraced view of the underlying data. Use only for I/O at the
    /// simulation boundary (e.g. comparing decoded frames in tests).
    pub fn raw(&self) -> &[T] {
        &self.data
    }

    /// Untraced mutable view of the underlying data. Use only for
    /// initialization at the simulation boundary.
    pub fn raw_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::Hierarchy;
    use crate::machine::MachineSpec;
    use crate::model::NullModel;

    #[test]
    fn data_roundtrip_through_traced_ops() {
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        let mut b = SimBuf::<i16>::zeroed(&mut space, 16);
        b.store(&mut mem, 5, -123);
        assert_eq!(b.load(&mut mem, 5), -123);
        b.store_run(&mut mem, 8, &[1, 2, 3]);
        assert_eq!(b.load_run(&mut mem, 8, 3), &[1, 2, 3]);
    }

    #[test]
    fn run_access_counts_arch_ops_and_lines() {
        let mut space = AddressSpace::new();
        let mut mem = Hierarchy::new(MachineSpec::o2());
        let b = SimBuf::<u8>::zeroed(&mut space, 4096);
        b.load_run(&mut mem, 0, 64);
        let c = mem.counters();
        assert_eq!(c.loads, 64);
        assert_eq!(c.l1_misses, 2); // 64 B spans two 32 B lines (aligned base)
    }

    #[test]
    fn element_size_scales_addresses() {
        let mut space = AddressSpace::new();
        let b = SimBuf::<i16>::zeroed(&mut space, 8);
        assert_eq!(b.addr_of(4) - b.base_addr(), 8);
    }

    #[test]
    fn distinct_buffers_never_alias() {
        let mut space = AddressSpace::new();
        let a = SimBuf::<u8>::zeroed(&mut space, 1000);
        let b = SimBuf::<u8>::zeroed(&mut space, 1000);
        let a_end = a.addr_of(999);
        assert!(b.base_addr() > a_end);
    }

    #[test]
    fn touch_matches_load_run_counting() {
        let mut space = AddressSpace::new();
        let b = SimBuf::<u8>::zeroed(&mut space, 256);
        let mut m1 = Hierarchy::new(MachineSpec::o2());
        let mut m2 = Hierarchy::new(MachineSpec::o2());
        b.load_run(&mut m1, 10, 100);
        b.touch_read(&mut m2, 10, 100);
        assert_eq!(m1.counters(), m2.counters());
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_run_panics() {
        let mut space = AddressSpace::new();
        let mut mem = NullModel::new();
        let b = SimBuf::<u8>::zeroed(&mut space, 10);
        b.load_run(&mut mem, 5, 6);
    }

    #[test]
    fn zero_length_run_is_free() {
        let mut space = AddressSpace::new();
        let mut mem = Hierarchy::new(MachineSpec::o2());
        let b = SimBuf::<u8>::zeroed(&mut space, 10);
        b.load_run(&mut mem, 10, 0);
        assert_eq!(mem.counters().loads, 0);
    }
}
