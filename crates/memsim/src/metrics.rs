//! Derived metrics matching the paper's table rows.
//!
//! Every definition follows §3.1 of the paper verbatim:
//!
//! - *L1C miss rate* — L1 data misses / (graduated loads + stores).
//! - *L1C miss time* — fraction of execution time stalled on L1 misses
//!   that hit L2.
//! - *L1C line reuse* — (graduated loads + stores − L1 misses) / L1
//!   misses: mean uses of a line between fill and eviction.
//! - *L2C miss rate* — L2 misses / L1 misses.
//! - *L2C line reuse* — (L1 misses − L2 misses) / L2 misses.
//! - *DRAM time* — fraction of execution time the processor is stalled on
//!   secondary-cache misses (the latency OoO execution fails to hide).
//! - *L1–L2 b/w* — (L1 refills + L1 writebacks) × 32 B / execution time.
//! - *L2–DRAM b/w* — (L2 misses + L2 writebacks) × 128 B / execution time.
//! - *prefetch L1C miss* — fraction of software prefetches whose line was
//!   *not* already in L1 (high is good; the complement is wasted issue
//!   bandwidth). `None` on the R10000, which cannot count it.

use crate::counters::Counters;
use crate::machine::MachineSpec;

/// One column of a paper table: all derived metrics for one run on one
/// machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryMetrics {
    /// L1 data-cache miss rate (fraction of graduated loads+stores).
    pub l1_miss_rate: f64,
    /// Fraction of execution time stalled on L1-miss/L2-hit latency.
    pub l1_miss_time: f64,
    /// Mean reuses of an L1 line before eviction.
    pub l1_line_reuse: f64,
    /// L2 miss rate (fraction of L1 misses).
    pub l2_miss_rate: f64,
    /// Mean reuses of an L2 line before eviction.
    pub l2_line_reuse: f64,
    /// Fraction of execution time stalled on DRAM (paper's "DRAM time").
    pub dram_time: f64,
    /// L1–L2 bandwidth in MB/s.
    pub l1_l2_mb_s: f64,
    /// L2–DRAM bandwidth in MB/s.
    pub l2_dram_mb_s: f64,
    /// Fraction of prefetches missing L1 (`None` where the hardware
    /// cannot count it — R10000).
    pub prefetch_l1_miss: Option<f64>,
    /// Execution time in seconds under the analytic timing model.
    pub exec_seconds: f64,
    /// Raw counters the metrics were derived from.
    pub counters: Counters,
}

impl MemoryMetrics {
    /// Derives the full metric set from raw `counters` on `machine`.
    pub fn derive(counters: &Counters, machine: &MachineSpec) -> Self {
        let refs = counters.memory_refs() as f64;
        let l1m = counters.l1_misses as f64;
        let l2m = counters.l2_misses as f64;
        let breakdown = machine.timing.breakdown(counters);
        let seconds = breakdown.total() / (f64::from(machine.clock_mhz) * 1.0e6);

        let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };

        let l1_l2_bytes = (counters.l1_misses + counters.l1_writebacks) * machine.l1.line_bytes;
        let l2_dram_bytes = (counters.l2_misses + counters.l2_writebacks) * machine.l2.line_bytes;

        let prefetch_l1_miss = if machine.cpu.counts_prefetch_l1_hits() {
            Some(if counters.prefetches > 0 {
                (counters.prefetches - counters.prefetch_l1_hits) as f64
                    / counters.prefetches as f64
            } else {
                1.0
            })
        } else {
            None
        };

        MemoryMetrics {
            l1_miss_rate: ratio(l1m, refs),
            l1_miss_time: breakdown.l1_miss_time_fraction(),
            l1_line_reuse: ratio(refs - l1m, l1m),
            l2_miss_rate: ratio(l2m, l1m),
            l2_line_reuse: ratio(l1m - l2m, l2m),
            dram_time: breakdown.dram_time_fraction(),
            l1_l2_mb_s: if seconds > 0.0 {
                l1_l2_bytes as f64 / 1.0e6 / seconds
            } else {
                0.0
            },
            l2_dram_mb_s: if seconds > 0.0 {
                l2_dram_bytes as f64 / 1.0e6 / seconds
            } else {
                0.0
            },
            prefetch_l1_miss,
            exec_seconds: seconds,
            counters: *counters,
        }
    }

    /// Fraction of the sustained system-bus bandwidth consumed by
    /// L2–DRAM traffic.
    pub fn bus_utilization(&self, machine: &MachineSpec) -> f64 {
        self.l2_dram_mb_s / machine.dram.sustained_mb_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineSpec;

    fn counters() -> Counters {
        Counters {
            loads: 900_000,
            stores: 100_000,
            prefetches: 1_000,
            prefetch_l1_hits: 600,
            l1_misses: 2_000,
            l1_writebacks: 500,
            l2_misses: 400,
            l2_writebacks: 100,
            tlb_misses: 10,
            compute_ops: 1_500_000,
            bytes_accessed: 1_000_000,
        }
    }

    #[test]
    fn definitions_match_paper() {
        let m = MachineSpec::o2();
        let mm = MemoryMetrics::derive(&counters(), &m);
        assert!((mm.l1_miss_rate - 2_000.0 / 1_000_000.0).abs() < 1e-12);
        assert!((mm.l1_line_reuse - (1_000_000.0 - 2_000.0) / 2_000.0).abs() < 1e-9);
        assert!((mm.l2_miss_rate - 0.2).abs() < 1e-12);
        assert!((mm.l2_line_reuse - (2_000.0 - 400.0) / 400.0).abs() < 1e-9);
        assert!(mm.exec_seconds > 0.0);
    }

    #[test]
    fn bandwidth_uses_line_sizes() {
        let m = MachineSpec::o2();
        let mm = MemoryMetrics::derive(&counters(), &m);
        let expected_l1l2 = (2_000.0 + 500.0) * 32.0 / 1.0e6 / mm.exec_seconds;
        let expected_l2d = (400.0 + 100.0) * 128.0 / 1.0e6 / mm.exec_seconds;
        assert!((mm.l1_l2_mb_s - expected_l1l2).abs() < 1e-9);
        assert!((mm.l2_dram_mb_s - expected_l2d).abs() < 1e-9);
        assert!(mm.bus_utilization(&m) < 1.0);
    }

    #[test]
    fn prefetch_metric_is_cpu_dependent() {
        let c = counters();
        let r12k = MemoryMetrics::derive(&c, &MachineSpec::o2());
        assert_eq!(r12k.prefetch_l1_miss, Some(0.4));
        let r10k = MemoryMetrics::derive(&c, &MachineSpec::onyx_vtx());
        assert_eq!(r10k.prefetch_l1_miss, None);
    }

    #[test]
    fn zero_counters_give_finite_metrics() {
        let m = MachineSpec::onyx2();
        let mm = MemoryMetrics::derive(&Counters::default(), &m);
        assert_eq!(mm.l1_miss_rate, 0.0);
        assert_eq!(mm.l2_miss_rate, 0.0);
        assert_eq!(mm.l1_l2_mb_s, 0.0);
        assert!(mm.l1_line_reuse.is_finite());
    }

    #[test]
    fn stall_fractions_are_fractions() {
        let m = MachineSpec::o2();
        let mm = MemoryMetrics::derive(&counters(), &m);
        assert!(mm.dram_time >= 0.0 && mm.dram_time <= 1.0);
        assert!(mm.l1_miss_time >= 0.0 && mm.l1_miss_time <= 1.0);
    }
}
