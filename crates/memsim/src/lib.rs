//! Memory-hierarchy simulation standing in for the SGI hardware
//! performance counters used in the paper.
//!
//! The paper measures the MoMuSys MPEG-4 codec with SpeedShop/Perfex
//! counters on MIPS R10000/R12000 machines. We reproduce the measurement
//! substrate in software: a set-associative L1 data cache, a unified L2,
//! a data TLB, a DRAM/bus model, Perfex-style event [`Counters`], an
//! analytic out-of-order [`TimingModel`], and derived [`MemoryMetrics`]
//! matching the paper's metric definitions (miss rates, line reuse,
//! DRAM stall time, per-level bandwidth, prefetch hit waste).
//!
//! The codec issues every logical data access through a [`MemModel`];
//! [`Hierarchy`] is the full simulator, [`NullModel`] a zero-cost stand-in
//! for functional testing.
//!
//! # Examples
//!
//! ```
//! use m4ps_memsim::{AccessKind, Hierarchy, MachineSpec, MemModel};
//!
//! let mut mem = Hierarchy::new(MachineSpec::onyx2());
//! for addr in (0..4096u64).step_by(8) {
//!     mem.access(addr, AccessKind::Load);
//! }
//! // Second sweep hits in L1: 4 KB fits easily.
//! for addr in (0..4096u64).step_by(8) {
//!     mem.access(addr, AccessKind::Load);
//! }
//! let c = mem.counters();
//! assert_eq!(c.loads, 1024);
//! assert!(c.l1_misses < 200);
//! ```

mod buf;
mod cache;
mod counters;
mod dram;
mod hierarchy;
mod machine;
mod metrics;
mod model;
mod naive;
mod space;
mod timing;
mod tlb;

pub use buf::SimBuf;
pub use cache::{Cache, CacheConfig, CacheStats};
pub use counters::Counters;
pub use dram::{DramConfig, DramModel};
pub use hierarchy::{Hierarchy, RegionMisses};
pub use machine::{CpuKind, MachineSpec};
pub use metrics::MemoryMetrics;
pub use model::{AccessKind, MemModel, NullModel, ParallelModel};
pub use naive::NaiveHierarchy;
pub use space::{AddressSpace, Region};
pub use timing::TimingModel;
pub use tlb::{Tlb, TlbConfig};
