//! Set-associative cache with true-LRU replacement and
//! write-back / write-allocate policy, matching the MIPS R10000/R12000
//! data caches.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be `line_bytes × assoc × sets` with
    /// a power-of-two set count.
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent or not power-of-two.
    pub fn sets(&self) -> u64 {
        assert!(self.line_bytes.is_power_of_two(), "line size must be 2^n");
        assert!(self.assoc >= 1);
        let sets = self.size_bytes / (self.line_bytes * self.assoc as u64);
        assert!(
            sets.is_power_of_two() && sets * self.line_bytes * self.assoc as u64 == self.size_bytes,
            "inconsistent cache geometry {self:?}"
        );
        sets
    }
}

/// Outcome of a single line probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeResult {
    /// `true` when the line was already present.
    pub hit: bool,
    /// Address of a dirty line that had to be written back to make room
    /// (line-aligned), when the probe missed and evicted a dirty victim.
    pub writeback_of: Option<u64>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic recency stamp; larger = more recently used.
    last_use: u64,
}

/// One level of set-associative cache.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: u64,
    line_shift: u32,
    set_mask: u64,
    lines: Vec<Line>,
    tick: u64,
    stats: CacheStats,
    /// MRU memo: `(line number, global way index)` of the line touched by
    /// the most recent [`Cache::probe`]. A repeat probe of the same line
    /// performs the exact hit transition without the set scan — sound
    /// because every probe refreshes the memo, so no intervening probe
    /// can have reallocated the memoized way. Cleared by
    /// [`Cache::reset`] and [`Cache::probe_naive`].
    mru: Option<(u64, usize)>,
}

/// Hit/miss accounting local to a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Probes that found the line present.
    pub hits: u64,
    /// Probes that missed and allocated.
    pub misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

impl Cache {
    /// Builds an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if `config` is not a consistent power-of-two geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Cache {
            config,
            sets,
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: sets - 1,
            lines: vec![Line::default(); (sets as usize) * config.assoc],
            tick: 0,
            stats: CacheStats::default(),
            mru: None,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Line-aligns an address.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.config.line_bytes - 1)
    }

    /// Probes (and on miss, allocates) the line containing `addr`.
    /// `write` marks the line dirty on hit or after allocation.
    pub fn probe(&mut self, addr: u64, write: bool) -> ProbeResult {
        let line_no = addr >> self.line_shift;
        if let Some((mru_no, slot)) = self.mru {
            if mru_no == line_no {
                // Exact hit transition with the set scan short-circuited:
                // the memoized way still holds this line (see `mru` docs),
                // and the transition below is byte-for-byte the slow hit
                // path's.
                self.tick += 1;
                let way = &mut self.lines[slot];
                way.last_use = self.tick;
                way.dirty |= write;
                self.stats.hits += 1;
                return ProbeResult {
                    hit: true,
                    writeback_of: None,
                };
            }
        }
        self.probe_scan(line_no, write, true)
    }

    /// The reference probe path: no MRU memoization is consulted or
    /// created, only the plain set scan. State transitions are identical
    /// to [`Cache::probe`]; the naive model uses this so the differential
    /// suite exercises the memoized path against it.
    pub fn probe_naive(&mut self, addr: u64, write: bool) -> ProbeResult {
        self.mru = None;
        self.probe_scan(addr >> self.line_shift, write, false)
    }

    /// Full set scan + LRU replacement, optionally refreshing the memo.
    fn probe_scan(&mut self, line_no: u64, write: bool, memoize: bool) -> ProbeResult {
        self.tick += 1;
        let set = (line_no & self.set_mask) as usize;
        let tag = line_no >> self.sets.trailing_zeros();
        let base = set * self.config.assoc;
        let ways = &mut self.lines[base..base + self.config.assoc];

        // Hit path.
        if let Some(i) = ways.iter().position(|w| w.valid && w.tag == tag) {
            let way = &mut ways[i];
            way.last_use = self.tick;
            way.dirty |= write;
            self.stats.hits += 1;
            if memoize {
                self.mru = Some((line_no, base + i));
            }
            return ProbeResult {
                hit: true,
                writeback_of: None,
            };
        }

        // Miss: pick an invalid way, else the LRU way.
        self.stats.misses += 1;
        let victim_idx = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| if w.valid { w.last_use + 1 } else { 0 })
            .map(|(i, _)| i)
            .expect("assoc >= 1");
        let victim = &mut ways[victim_idx];
        let mut writeback_of = None;
        if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            let victim_line = (victim.tag << self.sets.trailing_zeros()) | set as u64;
            writeback_of = Some(victim_line << self.line_shift);
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: write,
            last_use: self.tick,
        };
        if memoize {
            self.mru = Some((line_no, base + victim_idx));
        }
        ProbeResult {
            hit: false,
            writeback_of,
        }
    }

    /// Accounts a hit that the owning hierarchy's MRU filter resolved
    /// without probing: the line is already the most recently used in its
    /// set, so skipping the recency restamp is the identity transition.
    /// Only the hit statistic needs to advance.
    pub(crate) fn filtered_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// `true` if the line containing `addr` is currently resident
    /// (does not update recency or statistics).
    pub fn contains(&self, addr: u64) -> bool {
        let line_no = addr >> self.line_shift;
        let set = (line_no & self.set_mask) as usize;
        let tag = line_no >> self.sets.trailing_zeros();
        let base = set * self.config.assoc;
        self.lines[base..base + self.config.assoc]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Invalidates everything and zeroes statistics.
    pub fn reset(&mut self) {
        for l in &mut self.lines {
            *l = Line::default();
        }
        self.tick = 0;
        self.stats = CacheStats::default();
        self.mru = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 32 B = 256 B.
        Cache::new(CacheConfig {
            size_bytes: 256,
            line_bytes: 32,
            assoc: 2,
        })
    }

    #[test]
    fn geometry_validation() {
        assert_eq!(
            CacheConfig {
                size_bytes: 32 * 1024,
                line_bytes: 32,
                assoc: 2
            }
            .sets(),
            512
        );
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn non_power_of_two_sets_panics() {
        CacheConfig {
            size_bytes: 96,
            line_bytes: 32,
            assoc: 1,
        }
        .sets();
    }

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.probe(0x40, false).hit);
        assert!(c.probe(0x40, false).hit);
        assert!(c.probe(0x5f, false).hit); // same 32 B line
        assert!(!c.probe(0x60, false).hit); // next line
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines whose line_no % 4 == 0: addresses 0, 128, 256…
        c.probe(0, false); // way A
        c.probe(128, false); // way B
        c.probe(0, false); // touch A → B is LRU
        c.probe(256, false); // evicts B (128)
        assert!(c.contains(0));
        assert!(!c.contains(128));
        assert!(c.contains(256));
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = tiny();
        c.probe(0, true); // dirty
        c.probe(128, false);
        c.probe(256, false); // evicts line 0 (LRU, dirty)
                             // line 0 was LRU after 128 and 256 probes? order: 0(t1),128(t2),256→evict 0.
        assert!(!c.contains(0));
        let mut c2 = tiny();
        c2.probe(0, true);
        c2.probe(128, false);
        let r = c2.probe(256, false);
        assert_eq!(r.writeback_of, Some(0));
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.probe(0, false);
        c.probe(128, false);
        let r = c.probe(256, false);
        assert!(!r.hit);
        assert_eq!(r.writeback_of, None);
    }

    #[test]
    fn write_hit_marks_dirty_for_later_eviction() {
        let mut c = tiny();
        c.probe(0, false); // clean load
        c.probe(0, true); // store hit → dirty
        c.probe(128, false);
        c.probe(256, false); // evict 0
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut c = tiny();
        for addr in (0..1024u64).step_by(32) {
            c.probe(addr, false);
        }
        let s = c.stats();
        assert_eq!(s.misses, 32);
        assert_eq!(s.hits, 0);
        // 256 B cache can hold 8 lines of the 32 touched.
        let resident = (0..1024u64).step_by(32).filter(|&a| c.contains(a)).count();
        assert_eq!(resident, 8);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = tiny();
        c.probe(0, true);
        c.reset();
        assert!(!c.contains(0));
        assert_eq!(c.stats(), CacheStats::default());
    }

    /// Random probe streams must be indistinguishable between the
    /// memoized and naive probe paths — same results, same stats, same
    /// future behaviour (checked by interleaving a verification stream).
    #[test]
    fn memoized_probe_matches_naive_probe() {
        let mut fast = tiny();
        let mut naive = tiny();
        // A stream with heavy same-line repeats (the memoized case) plus
        // conflict-miss churn within set 0.
        let stream: Vec<(u64, bool)> = (0..2000u64)
            .map(|i| {
                let addr = match i % 7 {
                    0..=3 => 0x40,        // repeat line
                    4 => 128 * (i % 5),   // set-0 conflicts
                    5 => 32 * (i % 11),   // sweep
                    _ => 0x40 + (i % 32), // same line, different byte
                };
                (addr, i % 3 == 0)
            })
            .collect();
        for &(addr, write) in &stream {
            assert_eq!(fast.probe(addr, write), naive.probe_naive(addr, write));
        }
        assert_eq!(fast.stats(), naive.stats());
        for a in (0..2048u64).step_by(32) {
            assert_eq!(fast.contains(a), naive.contains(a), "line {a:#x}");
        }
    }

    #[test]
    fn repeat_probe_uses_memo_with_exact_transition() {
        let mut c = tiny();
        c.probe(0x40, false);
        // Second touch of the same line: hit via the memo.
        assert!(c.probe(0x47, true).hit);
        assert_eq!(c.stats().hits, 1);
        // The memoized write must have dirtied the line: fill the 2-way
        // set (lines 0x40, 0xc0) and evict 0x40, expecting a writeback.
        c.probe(0xc0, false);
        let r = c.probe(0x140, false);
        assert_eq!(r.writeback_of, Some(0x40));
    }

    #[test]
    fn working_set_within_capacity_has_no_capacity_misses() {
        // 8 lines fit exactly; loop over them repeatedly → misses only on
        // first touch. Addresses chosen to spread over all 4 sets.
        let mut c = tiny();
        let addrs: Vec<u64> = (0..8u64).map(|i| i * 32).collect();
        for _ in 0..100 {
            for &a in &addrs {
                c.probe(a, false);
            }
        }
        assert_eq!(c.stats().misses, 8);
        assert_eq!(c.stats().hits, 8 * 100 - 8);
    }
}
