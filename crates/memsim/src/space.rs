//! Simulated virtual address space.
//!
//! A bump allocator hands out disjoint regions of a simulated address
//! space. The codec's buffers ([`crate::SimBuf`]) carry these base
//! addresses so the reference stream seen by the hierarchy has realistic
//! layout: planes are contiguous, regions never overlap, and total
//! allocation tracks the "resident memory" the paper quotes (120 MB at
//! 1 VO, 400 MB at 3 VO × 2 VOL). Regions are 64-byte aligned — heap
//! allocators return staggered addresses, and page-aligning everything
//! would pile every buffer onto cache set 0 and fabricate conflict
//! misses no real process would see.

/// A named, allocated region of the simulated address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// First byte of the region.
    pub base: u64,
    /// Requested size in bytes.
    pub bytes: u64,
    /// The tag active when the region was allocated.
    pub tag: String,
}

/// Bump allocator over a simulated virtual address space.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    next: u64,
    allocated: u64,
    align: u64,
    tag: String,
    regions: Vec<Region>,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// Page size of the modelled system (the TLB granularity).
    pub const PAGE: u64 = 16 * 1024;
    /// Region alignment: two cache lines, as a real allocator would give.
    pub const ALIGN: u64 = 64;

    /// Creates an empty space. The first region starts at a non-zero
    /// base (like a real process image).
    pub fn new() -> Self {
        AddressSpace {
            next: 0x1000_0000,
            allocated: 0,
            align: Self::ALIGN,
            tag: "untagged".to_string(),
            regions: Vec::new(),
        }
    }

    /// Sets the tag attached to subsequent allocations — the data
    /// structure attribution used by the misses-by-structure analysis
    /// (something the paper's hardware counters could not do).
    pub fn set_tag(&mut self, tag: &str) {
        self.tag = tag.to_string();
    }

    /// Allocates `bytes` and returns the region's base address.
    ///
    /// Regions are page-aligned and never overlap.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let base = self.next;
        let padded = bytes.max(1).div_ceil(self.align) * self.align;
        self.next += padded;
        self.allocated += bytes;
        self.regions.push(Region {
            base,
            bytes,
            tag: self.tag.clone(),
        });
        base
    }

    /// Every allocation made so far, in address order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Total bytes requested so far (the "resident memory" figure).
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated
    }

    /// Total address range consumed including alignment padding.
    pub fn reserved_bytes(&self) -> u64 {
        self.next - 0x1000_0000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_aligned() {
        let mut s = AddressSpace::new();
        let a = s.alloc(100);
        let b = s.alloc(20_000);
        let c = s.alloc(1);
        assert_eq!(a % AddressSpace::ALIGN, 0);
        assert_eq!(b % AddressSpace::ALIGN, 0);
        assert_eq!(c % AddressSpace::ALIGN, 0);
        assert!(b >= a + 100);
        assert!(c >= b + 20_000);
    }

    #[test]
    fn accounting_tracks_requests() {
        let mut s = AddressSpace::new();
        s.alloc(1000);
        s.alloc(2000);
        assert_eq!(s.allocated_bytes(), 3000);
        assert!(s.reserved_bytes() >= 3000);
        assert_eq!(s.reserved_bytes() % AddressSpace::ALIGN, 0);
    }

    #[test]
    fn zero_sized_alloc_still_advances() {
        let mut s = AddressSpace::new();
        let a = s.alloc(0);
        let b = s.alloc(0);
        assert_ne!(a, b);
    }

    #[test]
    fn regions_carry_tags_in_address_order() {
        let mut s = AddressSpace::new();
        s.set_tag("frames");
        let a = s.alloc(100);
        s.set_tag("scratch");
        let b = s.alloc(50);
        let r = s.regions();
        assert_eq!(r.len(), 2);
        assert_eq!(
            (r[0].base, r[0].bytes, r[0].tag.as_str()),
            (a, 100, "frames")
        );
        assert_eq!(
            (r[1].base, r[1].bytes, r[1].tag.as_str()),
            (b, 50, "scratch")
        );
        assert!(r[0].base < r[1].base);
    }
}
