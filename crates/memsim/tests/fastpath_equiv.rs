//! Differential property suite: the fast-path [`Hierarchy`] (MRU line
//! filter, cache-way memo, TLB-slot memo, optimized `access_rect`)
//! against the un-memoized [`NaiveHierarchy`] reference.
//!
//! Every test drives both models with an identical reference stream and
//! requires *every* [`Counters`] field, the DRAM read/write traffic,
//! and the per-region miss attribution to be bit-identical. The streams
//! are chosen to hammer the fast paths where they could diverge:
//! same-line repeats, store-after-load dirtiness, set-conflict
//! evictions, page alternation, prefetch interleaving, and rectangular
//! charging.

use m4ps_memsim::{
    AccessKind, Counters, Hierarchy, MachineSpec, MemModel, NaiveHierarchy, ParallelModel, Region,
};
use m4ps_testkit::prop::{check, Config};
use m4ps_testkit::prop_assert_eq;
use m4ps_testkit::rng::Rng;

/// One operation of a generated reference stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Range(u64, u64, AccessKind, u64),
    Rect(u64, u64, u64, u64, AccessKind, u64),
    Prefetch(u64),
    PrefetchPair(u64),
    Ops(u64),
}

fn apply<M: MemModel>(m: &mut M, ops: &[Op]) {
    for &op in ops {
        match op {
            Op::Range(a, l, k, n) => m.access_range(a, l, k, n),
            Op::Rect(a, s, r, w, k, n) => m.access_rect(a, s, r, w, k, n),
            Op::Prefetch(a) => m.prefetch(a),
            Op::PrefetchPair(a) => m.prefetch_pair(a),
            Op::Ops(n) => m.add_ops(n),
        }
    }
}

/// A tiny machine so short streams still cause conflict and capacity
/// evictions at both levels and in the TLB.
fn small_machine() -> MachineSpec {
    let mut m = MachineSpec::o2();
    m.l1.size_bytes = 1024; // 16 sets × 2 × 32 B
    m.l2.size_bytes = 8 * 1024; // 32 sets × 2 × 128 B
    m.tlb.entries = 4;
    m
}

/// Generates a stream biased toward the patterns the fast paths
/// memoize: runs of touches inside one line/page, interleaved with
/// conflicting lines, page churn, stores, rects and prefetches.
fn gen_stream(rng: &mut Rng) -> Vec<Op> {
    let mut ops = Vec::new();
    // A handful of hot lines; several alias to the same L1 set.
    let bases: Vec<u64> = (0..8)
        .map(|i| 0x1000 * u64::from(rng.gen_range(0u32..64)) + 0x200 * i)
        .collect();
    let n = rng.gen_range(20u32..120);
    for _ in 0..n {
        let kind = if rng.gen_bool() {
            AccessKind::Load
        } else {
            AccessKind::Store
        };
        let base = *rng.choose(&bases);
        match rng.gen_range(0u32..10) {
            // Repeat touches within one line (the MRU fast path).
            0..=3 => {
                let line = base & !31;
                for _ in 0..rng.gen_range(1u32..6) {
                    let off = u64::from(rng.gen_range(0u32..30));
                    let len = u64::from(rng.gen_range(0u32..3)).min(31 - off);
                    ops.push(Op::Range(line + off, len.max(1), kind, 1));
                }
            }
            // Row runs like SimBuf::load_run.
            4..=5 => {
                let len = u64::from(rng.gen_range(1u32..48));
                ops.push(Op::Range(base, len, kind, len));
            }
            // Rectangular block charges with varied geometry.
            6..=7 => {
                let rows = u64::from(rng.gen_range(1u32..18));
                let w = u64::from(rng.gen_range(1u32..20));
                let stride = u64::from(rng.gen_range(16u32..800));
                ops.push(Op::Rect(base, stride, rows, w, kind, w));
            }
            8 => {
                if rng.gen_bool() {
                    ops.push(Op::Prefetch(base));
                } else {
                    ops.push(Op::PrefetchPair(base));
                }
            }
            _ => ops.push(Op::Ops(u64::from(rng.next_u32() & 0xfff))),
        }
    }
    ops
}

/// Asserts full observable equality between the two models.
#[track_caller]
fn assert_models_equal(fast: &Hierarchy, naive: &NaiveHierarchy) {
    assert_eq!(fast.counters(), naive.counters(), "Counters diverged");
    assert_eq!(
        fast.dram().bytes_read(),
        naive.dram().bytes_read(),
        "DRAM reads diverged"
    );
    assert_eq!(
        fast.dram().bytes_written(),
        naive.dram().bytes_written(),
        "DRAM writes diverged"
    );
    assert_eq!(
        fast.region_misses(),
        naive.region_misses(),
        "region attribution diverged"
    );
}

#[test]
fn random_streams_are_counter_identical() {
    check(
        "fastpath/random_streams",
        &Config::default(),
        gen_stream,
        |ops| {
            for machine in [small_machine(), MachineSpec::o2()] {
                let mut fast = Hierarchy::new(machine.clone());
                let mut naive = NaiveHierarchy::new(machine);
                apply(&mut fast, ops);
                apply(&mut naive, ops);
                prop_assert_eq!(fast.counters(), naive.counters());
                prop_assert_eq!(fast.dram().bytes_total(), naive.dram().bytes_total());
            }
            Ok(())
        },
    );
}

#[test]
fn random_streams_with_regions_and_prefetch_disabled() {
    let regions = [
        Region {
            tag: "frame".into(),
            base: 0,
            bytes: 64 * 1024,
        },
        Region {
            tag: "ref".into(),
            base: 64 * 1024,
            bytes: 64 * 1024,
        },
    ];
    check(
        "fastpath/random_streams_regions",
        &Config::default(),
        gen_stream,
        |ops| {
            let mut fast = Hierarchy::without_prefetch(small_machine());
            let mut naive = NaiveHierarchy::without_prefetch(small_machine());
            fast.attach_regions(&regions);
            naive.attach_regions(&regions);
            apply(&mut fast, ops);
            apply(&mut naive, ops);
            prop_assert_eq!(fast.counters(), naive.counters());
            prop_assert_eq!(fast.region_misses(), naive.region_misses());
            Ok(())
        },
    );
}

/// Adversarial hand-written sequences aimed at each fast-path guard.
#[test]
fn pinned_adversarial_sequences() {
    let scripts: Vec<Vec<Op>> = vec![
        // Store to a clean MRU line must not lose the dirty transition.
        vec![
            Op::Range(0x100, 8, AccessKind::Load, 1),
            Op::Range(0x100, 8, AccessKind::Store, 1),
            Op::Range(0x100, 8, AccessKind::Store, 1),
            // Evict it through its set and observe the writeback.
            Op::Range(0x100 + 1024, 8, AccessKind::Load, 1),
            Op::Range(0x100 + 2048, 8, AccessKind::Load, 1),
            Op::Range(0x100 + 3072, 8, AccessKind::Load, 1),
        ],
        // Prefetch swings the hierarchy MRU line without a TLB walk;
        // the following access must still resolve its own page.
        vec![
            Op::Range(0x100, 8, AccessKind::Load, 1),
            Op::Prefetch(0x20_0000),
            Op::Range(0x20_0000, 8, AccessKind::Load, 1),
            Op::Range(0x20_0008, 8, AccessKind::Load, 1),
        ],
        // Line-straddling spans never take the fast path.
        vec![
            Op::Range(0x11e, 8, AccessKind::Load, 1),
            Op::Range(0x11e, 8, AccessKind::Load, 1),
            Op::Range(0x11f, 1, AccessKind::Store, 1),
        ],
        // Page-straddling rect rows (stride pushes rows across pages).
        vec![Op::Rect(0x3f00, 0x1000, 8, 64, AccessKind::Store, 64)],
        // Zero-length and zero-row degenerate shapes.
        vec![
            Op::Range(0x40, 0, AccessKind::Load, 0),
            Op::Rect(0x40, 32, 0, 16, AccessKind::Load, 16),
            Op::Rect(0x40, 0, 4, 16, AccessKind::Store, 16),
        ],
        // Alternating pages (the two-slot TLB memo pattern) plus a
        // third page to force memo misses.
        (0..40)
            .map(|i| {
                let page = [0u64, 0x4000, 0x8000][i % 3];
                Op::Range(page + (i as u64 % 13) * 8, 8, AccessKind::Load, 1)
            })
            .collect(),
    ];
    for (i, script) in scripts.iter().enumerate() {
        let mut fast = Hierarchy::new(small_machine());
        let mut naive = NaiveHierarchy::new(small_machine());
        apply(&mut fast, script);
        apply(&mut naive, script);
        assert_models_equal(&fast, &naive);
        assert_ne!(
            *fast.counters(),
            Counters::default(),
            "script {i} was empty"
        );
    }
}

/// fork/absorb (the slice-parallel merge path) must agree field by
/// field, including when children run disjoint streams.
#[test]
fn fork_absorb_is_counter_identical() {
    let mut rng = Rng::new(0x5eed_fa57);
    let parent_ops = gen_stream(&mut rng);
    let child_a = gen_stream(&mut rng);
    let child_b = gen_stream(&mut rng);

    let regions = [Region {
        tag: "frame".into(),
        base: 0,
        bytes: 1 << 20,
    }];
    let mut fast = Hierarchy::new(small_machine());
    let mut naive = NaiveHierarchy::new(small_machine());
    fast.attach_regions(&regions);
    naive.attach_regions(&regions);
    apply(&mut fast, &parent_ops);
    apply(&mut naive, &parent_ops);

    let (mut fa, mut fb) = (fast.fork(), fast.fork());
    let (mut na, mut nb) = (naive.fork(), naive.fork());
    apply(&mut fa, &child_a);
    apply(&mut na, &child_a);
    apply(&mut fb, &child_b);
    apply(&mut nb, &child_b);
    fast.absorb(fa);
    naive.absorb(na);
    fast.absorb(fb);
    naive.absorb(nb);
    assert_models_equal(&fast, &naive);
}

/// The optimized `access_rect` must equal issuing its defining per-row
/// `access_range` loop on the *same* model (not just the naive one).
#[test]
fn access_rect_equals_row_loop_on_fast_model() {
    check(
        "fastpath/rect_equals_rows",
        &Config::default(),
        |rng: &mut Rng| {
            let addr = u64::from(rng.next_u32() & 0xf_ffff);
            let stride = u64::from(rng.gen_range(1u32..2048));
            let rows = u64::from(rng.gen_range(1u32..20));
            let w = u64::from(rng.gen_range(1u32..64));
            let kind = if rng.gen_bool() {
                AccessKind::Load
            } else {
                AccessKind::Store
            };
            (addr, stride, rows, w, kind)
        },
        |&(addr, stride, rows, w, kind)| {
            let mut by_rect = Hierarchy::new(small_machine());
            let mut by_rows = Hierarchy::new(small_machine());
            by_rect.access_rect(addr, stride, rows, w, kind, w);
            let mut a = addr;
            for r in 0..rows {
                by_rows.access_range(a, w, kind, w);
                if r + 1 < rows {
                    a = a.saturating_add(stride);
                }
            }
            prop_assert_eq!(by_rect.counters(), by_rows.counters());
            Ok(())
        },
    );
}
