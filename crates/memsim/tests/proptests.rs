//! Property-based tests of the cache hierarchy, TLB and counters.
//!
//! Runs on the in-tree [`m4ps_testkit::prop`] harness; failures print a
//! replayable seed (`M4PS_PROP_REPLAY=0x...`).

use m4ps_memsim::{
    AccessKind, AddressSpace, Cache, CacheConfig, Counters, Hierarchy, MachineSpec, MemModel,
    SimBuf, Tlb, TlbConfig,
};
use m4ps_testkit::prop::{check, check_pinned, Config};
use m4ps_testkit::rng::Rng;
use m4ps_testkit::{prop_assert, prop_assert_eq};

fn tiny_machine() -> MachineSpec {
    let mut m = MachineSpec::o2();
    m.l1.size_bytes = 1024;
    m.l2.size_bytes = 8 * 1024;
    m
}

/// A random access: (address within 64 KB, length 1..64, store?).
fn access(rng: &mut Rng) -> (u64, u64, bool) {
    (
        rng.gen_range(0u64..65536),
        rng.gen_range(1u64..64),
        rng.gen_bool(),
    )
}

#[test]
fn cache_probe_counts_are_conserved() {
    check(
        "cache_probe_counts_are_conserved",
        &Config::default(),
        |rng| rng.vec(1..200, |r| r.gen_range(0u64..8192)),
        |addrs| {
            let mut c = Cache::new(CacheConfig {
                size_bytes: 512,
                line_bytes: 32,
                assoc: 2,
            });
            for &a in addrs {
                c.probe(a, a % 3 == 0);
            }
            let s = c.stats();
            prop_assert_eq!(s.hits + s.misses, addrs.len() as u64);
            prop_assert!(s.writebacks <= s.misses);
            Ok(())
        },
    );
}

#[test]
fn second_identical_pass_over_small_set_never_misses() {
    check(
        "second_identical_pass_over_small_set_never_misses",
        &Config::default(),
        |rng| {
            // 1..8 *distinct* lines out of 16 (was a proptest hash_set
            // strategy): over 8 sets x 2 ways they always fit.
            let n = rng.gen_range(1usize..8);
            let mut lines = std::collections::BTreeSet::new();
            while lines.len() < n {
                lines.insert(rng.gen_range(0u64..16));
            }
            lines.into_iter().collect::<Vec<u64>>()
        },
        |lines| {
            let mut c = Cache::new(CacheConfig {
                size_bytes: 512,
                line_bytes: 32,
                assoc: 2,
            });
            let addrs: Vec<u64> = lines.iter().map(|l| l * 32).collect();
            for &a in &addrs {
                c.probe(a, false);
            }
            let misses_after_first = c.stats().misses;
            for &a in &addrs {
                c.probe(a, false);
            }
            prop_assert_eq!(c.stats().misses, misses_after_first);
            Ok(())
        },
    );
}

#[test]
fn hierarchy_invariants_hold_for_any_access_mix() {
    check(
        "hierarchy_invariants_hold_for_any_access_mix",
        &Config::default(),
        |rng| rng.vec(1..300, access),
        |accesses| {
            let mut h = Hierarchy::new(tiny_machine());
            let mut expected_loads = 0u64;
            let mut expected_stores = 0u64;
            for &(addr, len, is_store) in accesses {
                let kind = if is_store {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                };
                h.access_range(addr, len, kind, len);
                if is_store {
                    expected_stores += len;
                } else {
                    expected_loads += len;
                }
            }
            let c = h.counters();
            prop_assert_eq!(c.loads, expected_loads);
            prop_assert_eq!(c.stores, expected_stores);
            // Misses can never exceed line touches; L2 misses never exceed
            // L1 misses plus L1 writebacks (its only two request sources).
            prop_assert!(c.l2_misses <= c.l1_misses + c.l1_writebacks);
            prop_assert!(c.l1_writebacks <= c.l1_misses);
            prop_assert!(c.l2_writebacks <= c.l2_misses);
            // DRAM traffic is exactly (L2 misses + L2 writebacks) lines.
            prop_assert_eq!(
                h.dram().bytes_total(),
                (c.l2_misses + c.l2_writebacks) * 128
            );
            Ok(())
        },
    );
}

#[test]
fn bigger_cache_never_misses_more() {
    check(
        "bigger_cache_never_misses_more",
        &Config::default(),
        |rng| rng.vec(1..200, access),
        |accesses| {
            // LRU caches have the inclusion property: a larger cache of the
            // same associativity-per-set structure (more sets) may behave
            // non-monotonically in adversarial cases, but doubling both size
            // and keeping assoc with the same line size is monotone for
            // *fully* nested working sets. We assert the practical variant:
            // total misses do not grow by more than the probe count (sanity)
            // and the 8x cache yields <= misses of the 1x cache for the
            // sequential prefix workload.
            let run = |l1_bytes: u64| {
                let mut m = tiny_machine();
                m.l1.size_bytes = l1_bytes;
                let mut h = Hierarchy::new(m);
                for &(addr, len, is_store) in accesses {
                    let kind = if is_store {
                        AccessKind::Store
                    } else {
                        AccessKind::Load
                    };
                    h.access_range(addr, len, kind, 1);
                }
                h.counters().l1_misses
            };
            let small = run(1024);
            let big = run(32 * 1024);
            // 64 KB of addresses fit entirely in a 32 KB+pad? Not always, but
            // the big cache covers half the address space; allow equality
            // with a generous monotonicity bound.
            prop_assert!(big <= small);
            Ok(())
        },
    );
}

#[test]
fn tlb_hit_plus_miss_equals_lookups() {
    check(
        "tlb_hit_plus_miss_equals_lookups",
        &Config::default(),
        |rng| rng.vec(1..200, |r| r.gen_range(0u64..64)),
        |pages| {
            let mut t = Tlb::new(TlbConfig {
                entries: 8,
                page_bytes: 4096,
            });
            for &p in pages {
                t.lookup(p * 4096 + (p % 7) * 13);
            }
            prop_assert_eq!(t.lookups(), pages.len() as u64);
            prop_assert!(t.misses() <= t.lookups());
            // At most one cold miss per distinct page... plus capacity misses;
            // but never fewer misses than distinct pages beyond capacity.
            let distinct: std::collections::HashSet<u64> = pages.iter().copied().collect();
            prop_assert!(t.misses() >= distinct.len().saturating_sub(8) as u64);
            if distinct.len() <= 8 {
                // Working set fits: only cold misses.
                prop_assert_eq!(t.misses(), distinct.len() as u64);
            }
            Ok(())
        },
    );
}

#[test]
fn counter_delta_merge_roundtrip() {
    check(
        "counter_delta_merge_roundtrip",
        &Config::default(),
        |rng| {
            let mut vals = [0u64; 22];
            for v in &mut vals {
                *v = rng.gen_range(0u64..1_000_000);
            }
            vals
        },
        |vals| {
            let mk = |v: &[u64]| Counters {
                loads: v[0],
                stores: v[1],
                prefetches: v[2],
                prefetch_l1_hits: v[3],
                l1_misses: v[4],
                l1_writebacks: v[5],
                l2_misses: v[6],
                l2_writebacks: v[7],
                tlb_misses: v[8],
                compute_ops: v[9],
                bytes_accessed: v[10],
            };
            let ca = mk(&vals[..11]);
            let cb = mk(&vals[11..]);
            let merged = ca.merged_with(&cb);
            prop_assert_eq!(merged.delta_since(&ca), cb);
            prop_assert_eq!(merged.delta_since(&cb), ca);
            prop_assert_eq!(merged.memory_refs(), ca.memory_refs() + cb.memory_refs());
            Ok(())
        },
    );
}

#[test]
fn simbuf_runs_equal_elementwise_access() {
    check(
        "simbuf_runs_equal_elementwise_access",
        &Config::default(),
        |rng| (rng.bytes(32..256), rng.gen_range(0usize..16)),
        |(data, start)| {
            let start = *start;
            let mut space = AddressSpace::new();
            let mut h = Hierarchy::new(tiny_machine());
            let mut buf = SimBuf::<u8>::zeroed(&mut space, 256 + 16);
            buf.store_run(&mut h, start, data);
            let len = data.len();
            prop_assert_eq!(buf.load_run(&mut h, start, len), data.as_slice());
            // Counters: stores charged once per element.
            prop_assert_eq!(h.counters().stores, len as u64);
            prop_assert_eq!(h.counters().loads, len as u64);
            Ok(())
        },
    );
}

#[test]
fn prefetch_never_changes_demand_results() {
    // Pinned: proptest's historical shrink for this property —
    // `addrs = [13465, 153, 2784, 13465]`
    // (was `cc 0e974ba8...` in proptests.proptest-regressions).
    check_pinned(
        "prefetch_never_changes_demand_results",
        &Config::default(),
        vec![vec![13465, 153, 2784, 13465]],
        |rng| rng.vec(1..100, |r| r.gen_range(0u64..16384)),
        |addrs| prefetch_transparency_property(addrs),
    );
}

fn prefetch_transparency_property(addrs: &[u64]) -> Result<(), String> {
    // Prefetching never alters architectural counts; demand misses
    // may move in either direction (useful prefetches remove
    // misses, pollution in a tiny L1 adds some), but each prefetch
    // can displace at most one resident line.
    let mut plain = Hierarchy::without_prefetch(tiny_machine());
    let mut pf = Hierarchy::new(tiny_machine());
    for &a in addrs {
        pf.prefetch(a ^ 0x40);
        plain.access_range(a, 8, AccessKind::Load, 1);
        pf.access_range(a, 8, AccessKind::Load, 1);
    }
    prop_assert_eq!(plain.counters().loads, pf.counters().loads);
    prop_assert_eq!(plain.counters().stores, pf.counters().stores);
    prop_assert!(pf.counters().l1_misses <= plain.counters().l1_misses + pf.counters().prefetches);
    Ok(())
}

/// The case `prefetch_never_changes_demand_results`'s pinned regression
/// came from, kept as an explicit named test: a repeated address whose
/// XOR-offset prefetch displaced the line it aliased with.
#[test]
fn regression_prefetch_aliasing_repeated_address() {
    prefetch_transparency_property(&[13465, 153, 2784, 13465]).unwrap();
}
