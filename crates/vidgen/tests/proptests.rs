//! Property-based tests of the synthetic scene generator.
//!
//! Runs on the in-tree [`m4ps_testkit::prop`] harness; failures print a
//! replayable seed (`M4PS_PROP_REPLAY=0x...`).

use m4ps_testkit::prop::{check, Config};
use m4ps_testkit::rng::Rng;
use m4ps_testkit::{prop_assert, prop_assert_eq};
use m4ps_vidgen::{Resolution, Scene, SceneSpec};

fn spec(rng: &mut Rng) -> SceneSpec {
    SceneSpec {
        resolution: *rng.choose(&[
            Resolution::QCIF,
            Resolution::new(96, 64),
            Resolution::new(128, 96),
        ]),
        objects: rng.gen_range(1usize..=4),
        seed: rng.next_u64(),
    }
}

fn cfg() -> Config {
    Config::with_cases(32)
}

#[test]
fn frames_are_deterministic() {
    check(
        "frames_are_deterministic",
        &cfg(),
        |rng| (spec(rng), rng.gen_range(0usize..50)),
        |&(spec, t)| {
            let a = Scene::new(spec);
            let b = Scene::new(spec);
            prop_assert_eq!(a.frame(t), b.frame(t));
            Ok(())
        },
    );
}

#[test]
fn plane_sizes_are_always_consistent() {
    check(
        "plane_sizes_are_always_consistent",
        &cfg(),
        |rng| (spec(rng), rng.gen_range(0usize..20)),
        |&(spec, t)| {
            let f = Scene::new(spec).frame(t);
            prop_assert_eq!(f.y.len(), spec.resolution.luma_pixels());
            prop_assert_eq!(f.u.len(), spec.resolution.chroma_pixels());
            prop_assert_eq!(f.v.len(), spec.resolution.chroma_pixels());
            Ok(())
        },
    );
}

#[test]
fn masks_are_binary_and_nonempty() {
    check(
        "masks_are_binary_and_nonempty",
        &cfg(),
        |rng| (spec(rng), rng.gen_range(0usize..20)),
        |&(spec, t)| {
            let s = Scene::new(spec);
            for vo in 0..spec.objects {
                let m = s.alpha(t, vo);
                prop_assert!(m.data.iter().all(|&v| v == 0 || v == 255));
                prop_assert!(m.area() > 0, "object {} vanished", vo);
                // The object never exceeds a third of each dimension by
                // construction (radii <= 0.16 of the frame).
                let (x0, y0, x1, y1) = m.bounding_box().unwrap();
                prop_assert!(x1 - x0 <= spec.resolution.width * 2 / 5 + 2);
                prop_assert!(y1 - y0 <= spec.resolution.height * 2 / 5 + 2);
            }
            Ok(())
        },
    );
}

#[test]
fn motion_is_bounded_per_frame() {
    check(
        "motion_is_bounded_per_frame",
        &cfg(),
        |rng| (spec(rng), rng.gen_range(0usize..30)),
        |&(spec, t)| {
            // Object centroids move at most ~6 px/frame (velocities < 4 plus
            // bounce discontinuities are excluded by construction windows).
            let s = Scene::new(spec);
            for vo in 0..spec.objects {
                let a = s.alpha(t, vo).bounding_box().unwrap();
                let b = s.alpha(t + 1, vo).bounding_box().unwrap();
                let cax = (a.0 + a.2) as f64 / 2.0;
                let cay = (a.1 + a.3) as f64 / 2.0;
                let cbx = (b.0 + b.2) as f64 / 2.0;
                let cby = (b.1 + b.3) as f64 / 2.0;
                prop_assert!((cax - cbx).abs() <= 8.5, "vo {} dx {}", vo, cax - cbx);
                prop_assert!((cay - cby).abs() <= 8.5, "vo {} dy {}", vo, cay - cby);
            }
            Ok(())
        },
    );
}

#[test]
fn luma_stays_in_byte_range_with_noise() {
    check(
        "luma_stays_in_byte_range_with_noise",
        &cfg(),
        spec,
        |&spec| {
            // Trivially true for u8 storage, but exercises generation at many
            // seeds; also checks frames are not degenerate (flat).
            let f = Scene::new(spec).frame(0);
            let min = *f.y.iter().min().unwrap();
            let max = *f.y.iter().max().unwrap();
            prop_assert!(max - min > 30, "degenerate frame: {}..{}", min, max);
            Ok(())
        },
    );
}
