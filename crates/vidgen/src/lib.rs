//! Deterministic synthetic video scenes for the MPEG-4 study.
//!
//! The paper manipulates a 30-frame video at 720×576 (PAL) and 1024×768,
//! with one or three visual objects. We cannot ship the original clips,
//! so this crate synthesizes scenes with the properties that matter to
//! the codec's memory behaviour: textured content (so DCT coefficients
//! and VLC work are realistic), genuinely moving objects (so motion
//! estimation finds real displacements), and per-object alpha masks (so
//! arbitrary-shape coding and multi-VO experiments exercise the same
//! paths as segmented natural video).
//!
//! Everything is a pure function of `(seed, frame_index, x, y)`, so
//! generation is reproducible and random-access.
//!
//! # Examples
//!
//! ```
//! use m4ps_vidgen::{Resolution, Scene, SceneSpec};
//!
//! let scene = Scene::new(SceneSpec {
//!     resolution: Resolution::PAL,
//!     objects: 3,
//!     seed: 7,
//! });
//! let f0 = scene.frame(0);
//! let f1 = scene.frame(1);
//! assert_eq!(f0.y.len(), 720 * 576);
//! assert_ne!(f0.y, f1.y); // motion between frames
//! ```

mod frame;
mod scene;
mod texture;

pub use frame::{AlphaMask, Resolution, YuvFrame};
pub use scene::{Scene, SceneSpec};
pub use texture::hash_noise;
