//! Raw frame containers (untraced; the codec copies these into traced
//! buffers at the simulation boundary).

/// Frame dimensions in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Resolution {
    /// Width in pixels (must be even for 4:2:0 chroma).
    pub width: usize,
    /// Height in pixels (must be even for 4:2:0 chroma).
    pub height: usize,
}

impl Resolution {
    /// PAL resolution used in the paper: 720×576.
    pub const PAL: Resolution = Resolution {
        width: 720,
        height: 576,
    };
    /// The paper's larger size: 1024×768.
    pub const XGA: Resolution = Resolution {
        width: 1024,
        height: 768,
    };
    /// The paper's "extremely large frames": 2048×1024.
    pub const HUGE: Resolution = Resolution {
        width: 2048,
        height: 1024,
    };
    /// CIF (352×288), the small end of the paper's Figure 2 sweep
    /// (Ranganathan et al. used 352×240; CIF is the macroblock-aligned
    /// equivalent).
    pub const CIF: Resolution = Resolution {
        width: 352,
        height: 288,
    };
    /// QCIF (176×144), for fast tests.
    pub const QCIF: Resolution = Resolution {
        width: 176,
        height: 144,
    };

    /// Creates a resolution.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or odd (4:2:0 requires even).
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "empty resolution");
        assert!(
            width.is_multiple_of(2) && height.is_multiple_of(2),
            "4:2:0 needs even dims"
        );
        Resolution { width, height }
    }

    /// Luma samples per frame.
    pub fn luma_pixels(&self) -> usize {
        self.width * self.height
    }

    /// Chroma samples per plane (4:2:0 subsampling).
    pub fn chroma_pixels(&self) -> usize {
        (self.width / 2) * (self.height / 2)
    }

    /// Total bytes of one 8-bit 4:2:0 frame.
    pub fn frame_bytes(&self) -> usize {
        self.luma_pixels() + 2 * self.chroma_pixels()
    }
}

/// An 8-bit 4:2:0 frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YuvFrame {
    /// Frame dimensions.
    pub resolution: Resolution,
    /// Luminance plane, row-major `width × height`.
    pub y: Vec<u8>,
    /// Cb plane, row-major `width/2 × height/2`.
    pub u: Vec<u8>,
    /// Cr plane, row-major `width/2 × height/2`.
    pub v: Vec<u8>,
}

impl YuvFrame {
    /// Creates a mid-grey frame.
    pub fn grey(resolution: Resolution) -> Self {
        YuvFrame {
            resolution,
            y: vec![128; resolution.luma_pixels()],
            u: vec![128; resolution.chroma_pixels()],
            v: vec![128; resolution.chroma_pixels()],
        }
    }

    /// Luma PSNR in dB against `other` (infinite for identical planes).
    ///
    /// # Panics
    ///
    /// Panics if resolutions differ.
    pub fn psnr_luma(&self, other: &YuvFrame) -> f64 {
        assert_eq!(self.resolution, other.resolution);
        let mse: f64 = self
            .y
            .iter()
            .zip(other.y.iter())
            .map(|(&a, &b)| {
                let d = f64::from(a) - f64::from(b);
                d * d
            })
            .sum::<f64>()
            / self.y.len() as f64;
        if mse == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (255.0f64 * 255.0 / mse).log10()
        }
    }
}

/// A binary segmentation mask for one visual object (255 = inside).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlphaMask {
    /// Mask dimensions (match the luma plane).
    pub resolution: Resolution,
    /// Row-major mask samples: 0 outside the object, 255 inside.
    pub data: Vec<u8>,
}

impl AlphaMask {
    /// An all-opaque mask (rectangular VOP covering the frame).
    pub fn opaque(resolution: Resolution) -> Self {
        AlphaMask {
            resolution,
            data: vec![255; resolution.luma_pixels()],
        }
    }

    /// `true` if the pixel at `(x, y)` belongs to the object.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn contains(&self, x: usize, y: usize) -> bool {
        assert!(x < self.resolution.width && y < self.resolution.height);
        self.data[y * self.resolution.width + x] != 0
    }

    /// Number of opaque pixels.
    pub fn area(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0).count()
    }

    /// Tight bounding box `(x0, y0, x1, y1)` of the opaque region
    /// (half-open on the right/bottom), or `None` when fully transparent.
    pub fn bounding_box(&self) -> Option<(usize, usize, usize, usize)> {
        let w = self.resolution.width;
        let mut x0 = usize::MAX;
        let mut y0 = usize::MAX;
        let mut x1 = 0usize;
        let mut y1 = 0usize;
        for (i, &v) in self.data.iter().enumerate() {
            if v != 0 {
                let (x, y) = (i % w, i / w);
                x0 = x0.min(x);
                y0 = y0.min(y);
                x1 = x1.max(x + 1);
                y1 = y1.max(y + 1);
            }
        }
        if x0 == usize::MAX {
            None
        } else {
            Some((x0, y0, x1, y1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_presets_match_paper() {
        assert_eq!(Resolution::PAL.luma_pixels(), 414_720);
        assert_eq!(Resolution::XGA.luma_pixels(), 786_432);
        assert_eq!(Resolution::HUGE.luma_pixels(), 2_097_152);
        // 1024×768 / 720×576 = 1.896…, the paper's "factor of 1.9".
        let ratio = Resolution::XGA.luma_pixels() as f64 / Resolution::PAL.luma_pixels() as f64;
        assert!((ratio - 1.9).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_resolution_rejected() {
        Resolution::new(721, 576);
    }

    #[test]
    fn frame_bytes_is_one_point_five_luma() {
        let r = Resolution::new(64, 48);
        assert_eq!(r.frame_bytes(), 64 * 48 * 3 / 2);
    }

    #[test]
    fn psnr_of_identical_frames_is_infinite() {
        let f = YuvFrame::grey(Resolution::QCIF);
        assert_eq!(f.psnr_luma(&f), f64::INFINITY);
    }

    #[test]
    fn psnr_decreases_with_error() {
        let a = YuvFrame::grey(Resolution::QCIF);
        let mut b = a.clone();
        for v in b.y.iter_mut().step_by(2) {
            *v = v.wrapping_add(4);
        }
        let mut c = a.clone();
        for v in c.y.iter_mut().step_by(2) {
            *v = v.wrapping_add(16);
        }
        assert!(a.psnr_luma(&b) > a.psnr_luma(&c));
        assert!(a.psnr_luma(&c) > 20.0);
    }

    #[test]
    fn mask_bounding_box() {
        let mut m = AlphaMask {
            resolution: Resolution::new(16, 16),
            data: vec![0; 256],
        };
        assert_eq!(m.bounding_box(), None);
        m.data[3 * 16 + 4] = 255;
        m.data[10 * 16 + 12] = 255;
        assert_eq!(m.bounding_box(), Some((4, 3, 13, 11)));
        assert_eq!(m.area(), 2);
        assert!(m.contains(4, 3));
        assert!(!m.contains(0, 0));
    }

    #[test]
    fn opaque_mask_covers_frame() {
        let m = AlphaMask::opaque(Resolution::new(16, 16));
        assert_eq!(m.area(), 256);
        assert_eq!(m.bounding_box(), Some((0, 0, 16, 16)));
    }
}
