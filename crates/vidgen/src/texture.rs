//! Deterministic procedural textures.

/// A fast integer hash usable as position-stable noise: returns a value
/// in `0..=255` that is a pure function of its inputs.
///
/// Based on a 64-bit xorshift-multiply mix (splitmix64 finalizer).
pub fn hash_noise(seed: u64, x: i64, y: i64, t: u64) -> u8 {
    let mut h = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((x as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add((y as u64).wrapping_mul(0x94d0_49bb_1331_11eb))
        .wrapping_add(t.wrapping_mul(0x2545_f491_4f6c_dd1d));
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    (h & 0xff) as u8
}

/// Smooth band-limited texture: a sum of two sinusoids plus low-amplitude
/// noise, clamped to `0..=255`. Smoothness matters — pure white noise
/// would make motion estimation useless and DCT residues unrealistic.
pub fn smooth_texture(seed: u64, x: i64, y: i64, phase: f64) -> u8 {
    let fx = x as f64;
    let fy = y as f64;
    let s1 = ((fx * 0.11 + phase).sin() + (fy * 0.07 - phase * 0.5).cos()) * 28.0;
    let s2 = ((fx * 0.031 + fy * 0.043).sin()) * 36.0;
    let n = f64::from(hash_noise(seed, x / 4, y / 4, 0)) / 255.0 * 24.0 - 12.0;
    (128.0 + s1 + s2 + n).clamp(0.0, 255.0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic() {
        assert_eq!(hash_noise(1, 2, 3, 4), hash_noise(1, 2, 3, 4));
    }

    #[test]
    fn noise_varies_with_each_input() {
        let base = hash_noise(1, 2, 3, 4);
        // At least one of several neighbours must differ for each input
        // dimension (a constant hash would break texture generation).
        assert!((0..16).any(|d| hash_noise(1 + d, 2, 3, 4) != base));
        assert!((0..16).any(|d| hash_noise(1, 2 + d as i64, 3, 4) != base));
        assert!((0..16).any(|d| hash_noise(1, 2, 3 + d as i64, 4) != base));
        assert!((0..16).any(|d| hash_noise(1, 2, 3, 4 + d) != base));
    }

    #[test]
    fn noise_distribution_is_roughly_uniform() {
        let mut counts = [0u32; 8];
        for i in 0..8000i64 {
            counts[(hash_noise(42, i, -i, 0) / 32) as usize] += 1;
        }
        for &c in &counts {
            assert!(c > 700 && c < 1300, "bucket count {c}");
        }
    }

    #[test]
    fn texture_is_smooth_locally() {
        // Adjacent pixels differ by a bounded amount most of the time.
        let mut big_jumps = 0;
        for x in 0..500i64 {
            let a = i16::from(smooth_texture(7, x, 10, 0.3));
            let b = i16::from(smooth_texture(7, x + 1, 10, 0.3));
            if (a - b).abs() > 40 {
                big_jumps += 1;
            }
        }
        assert!(big_jumps < 50, "{big_jumps} large jumps in 500 pixels");
    }

    #[test]
    fn texture_in_range() {
        for x in -100..100i64 {
            let _ = smooth_texture(3, x, x * 2, 1.5); // clamp guarantees u8
        }
    }
}
