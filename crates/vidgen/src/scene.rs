//! Multi-object scene composition with deterministic motion.

use crate::frame::{AlphaMask, Resolution, YuvFrame};
use crate::texture::{hash_noise, smooth_texture};
use m4ps_testkit::rng::Rng;

/// Scene parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SceneSpec {
    /// Frame dimensions.
    pub resolution: Resolution,
    /// Number of foreground visual objects (0 = background only).
    pub objects: usize,
    /// Seed for object placement, size, velocity and texture.
    pub seed: u64,
}

/// One moving elliptical object.
#[derive(Debug, Clone, Copy)]
struct MovingObject {
    /// Initial center.
    cx0: f64,
    cy0: f64,
    /// Velocity in pixels per frame.
    vx: f64,
    vy: f64,
    /// Ellipse radii.
    rx: f64,
    ry: f64,
    /// Texture seed / base luma offset.
    tex_seed: u64,
    luma_bias: f64,
}

impl MovingObject {
    /// Center at frame `t`, bouncing off the frame borders.
    fn center(&self, t: usize, res: Resolution) -> (f64, f64) {
        let bounce = |p0: f64, v: f64, r: f64, limit: f64| {
            let span = (limit - 2.0 * r).max(1.0);
            let raw = p0 - r + v * t as f64;
            // Reflect into [0, span] (triangular wave), then shift back.
            let m = raw.rem_euclid(2.0 * span);
            let folded = if m <= span { m } else { 2.0 * span - m };
            folded + r
        };
        (
            bounce(self.cx0, self.vx, self.rx, res.width as f64),
            bounce(self.cy0, self.vy, self.ry, res.height as f64),
        )
    }

    fn contains(&self, x: f64, y: f64, cx: f64, cy: f64) -> bool {
        let dx = (x - cx) / self.rx;
        let dy = (y - cy) / self.ry;
        dx * dx + dy * dy <= 1.0
    }
}

/// A deterministic synthetic scene: textured panning background plus
/// `objects` moving textured ellipses.
#[derive(Debug, Clone)]
pub struct Scene {
    spec: SceneSpec,
    objects: Vec<MovingObject>,
}

impl Scene {
    /// Builds the scene, placing objects pseudo-randomly from the seed.
    pub fn new(spec: SceneSpec) -> Self {
        let mut rng = Rng::new(spec.seed);
        let w = spec.resolution.width as f64;
        let h = spec.resolution.height as f64;
        let objects = (0..spec.objects)
            .map(|i| {
                // Radii scale with the frame so multi-VO working sets grow
                // with resolution, as in the paper.
                let rx = rng.gen_range(0.08..0.16) * w;
                let ry = rng.gen_range(0.08..0.16) * h;
                MovingObject {
                    cx0: rng.gen_range(rx..(w - rx)),
                    cy0: rng.gen_range(ry..(h - ry)),
                    vx: rng.gen_range(1.0..4.0) * if i % 2 == 0 { 1.0 } else { -1.0 },
                    vy: rng.gen_range(0.5..3.0) * if i % 3 == 0 { -1.0 } else { 1.0 },
                    rx,
                    ry,
                    tex_seed: rng.next_u64(),
                    luma_bias: rng.gen_range(-48.0..48.0),
                }
            })
            .collect();
        Scene { spec, objects }
    }

    /// The scene parameters.
    pub fn spec(&self) -> SceneSpec {
        self.spec
    }

    /// Number of foreground objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Luma value of the composed scene at `(x, y)` in frame `t`.
    fn luma_at(&self, t: usize, x: usize, y: usize, centers: &[(f64, f64)]) -> u8 {
        let fx = x as f64;
        let fy = y as f64;
        // Topmost (last) object wins.
        for (i, obj) in self.objects.iter().enumerate().rev() {
            let (cx, cy) = centers[i];
            if obj.contains(fx, fy, cx, cy) {
                // Object texture moves with the object (rigid motion).
                let lx = (fx - cx) as i64;
                let ly = (fy - cy) as i64;
                let v = f64::from(smooth_texture(obj.tex_seed, lx, ly, 0.0));
                return (v + obj.luma_bias).clamp(0.0, 255.0) as u8;
            }
        }
        // Background pans slowly to the right (global motion).
        let pan = (t as f64 * 0.8) as i64;
        smooth_texture(self.spec.seed, x as i64 + pan, y as i64, 0.0)
    }

    /// Per-pixel, per-frame sensor noise (±3 grey levels) — natural video
    /// is never temporally clean, and this is what keeps real decoders
    /// from skip-coding static regions.
    fn sensor_noise(&self, t: usize, x: usize, y: usize) -> i16 {
        i16::from(hash_noise(self.spec.seed ^ 0x5eed, x as i64, y as i64, t as u64) % 7) - 3
    }

    /// Composes the full frame at time `t`.
    pub fn frame(&self, t: usize) -> YuvFrame {
        let res = self.spec.resolution;
        let centers: Vec<_> = self.objects.iter().map(|o| o.center(t, res)).collect();
        let mut y = vec![0u8; res.luma_pixels()];
        for py in 0..res.height {
            for px in 0..res.width {
                let clean = i16::from(self.luma_at(t, px, py, &centers));
                y[py * res.width + px] = (clean + self.sensor_noise(t, px, py)).clamp(0, 255) as u8;
            }
        }
        // Chroma: low-detail planes derived from position (cheap but
        // non-constant, so chroma coding does real work).
        let (cw, ch) = (res.width / 2, res.height / 2);
        let mut u = vec![0u8; res.chroma_pixels()];
        let mut v = vec![0u8; res.chroma_pixels()];
        let chroma_seed = self.spec.seed ^ u64::from_be_bytes(*b"chromaU!");
        for py in 0..ch {
            for px in 0..cw {
                let i = py * cw + px;
                u[i] = 128u8
                    .wrapping_add(hash_noise(chroma_seed, px as i64 / 8, py as i64 / 8, 0) / 8);
                v[i] = 120u8.wrapping_add(((px + py + t) % 16) as u8);
            }
        }
        YuvFrame {
            resolution: res,
            y,
            u,
            v,
        }
    }

    /// Alpha mask of object `vo` at frame `t`.
    ///
    /// # Panics
    ///
    /// Panics if `vo` is out of range.
    pub fn alpha(&self, t: usize, vo: usize) -> AlphaMask {
        assert!(vo < self.objects.len(), "object {vo} out of range");
        let res = self.spec.resolution;
        let obj = &self.objects[vo];
        let (cx, cy) = obj.center(t, res);
        let mut data = vec![0u8; res.luma_pixels()];
        for py in 0..res.height {
            for px in 0..res.width {
                if obj.contains(px as f64, py as f64, cx, cy) {
                    data[py * res.width + px] = 255;
                }
            }
        }
        AlphaMask {
            resolution: res,
            data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scene(objects: usize) -> Scene {
        Scene::new(SceneSpec {
            resolution: Resolution::QCIF,
            objects,
            seed: 42,
        })
    }

    /// Golden layout for the repro seed 0x4d50_4547 ("MPEG"): any
    /// change to the PRNG, the seeding path, or the order of draws in
    /// `Scene::new` shifts every object and silently invalidates the
    /// numbers in EXPERIMENTS.md — this test catches that first.
    #[test]
    fn golden_object_layout_for_repro_seed() {
        let s = Scene::new(SceneSpec {
            resolution: Resolution::PAL,
            objects: 3,
            seed: 0x4d50_4547,
        });
        // (cx0, cy0, vx, vy, rx, ry, tex_seed, luma_bias) per object.
        let expected = [
            (
                117.73439145458785,
                244.09874602509296,
                1.301183189291796,
                -2.410789798137911,
                67.43521604332965,
                89.55530304863075,
                0x36077f361fb6316f_u64,
                -18.227791462003456,
            ),
            (
                85.73054621133923,
                90.05352496536753,
                -2.149529263729029,
                1.5346548932877107,
                60.65258436482773,
                73.32720551519647,
                0x4fef44f47bf27969_u64,
                -6.863959146503404,
            ),
            (
                407.63823133697554,
                368.2181935653616,
                1.9945883911773492,
                1.67132770647839,
                100.71654125573137,
                78.4637945781245,
                0xfa95c7ec4c2da202_u64,
                -23.158410454865525,
            ),
        ];
        assert_eq!(s.objects.len(), expected.len());
        for (o, e) in s.objects.iter().zip(expected) {
            assert_eq!(
                (
                    o.cx0,
                    o.cy0,
                    o.vx,
                    o.vy,
                    o.rx,
                    o.ry,
                    o.tex_seed,
                    o.luma_bias
                ),
                e
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny_scene(2);
        let b = tiny_scene(2);
        assert_eq!(a.frame(5), b.frame(5));
        assert_eq!(a.alpha(5, 1), b.alpha(5, 1));
    }

    #[test]
    fn different_seeds_differ() {
        let a = tiny_scene(2);
        let b = Scene::new(SceneSpec {
            resolution: Resolution::QCIF,
            objects: 2,
            seed: 43,
        });
        assert_ne!(a.frame(0), b.frame(0));
    }

    #[test]
    fn objects_move_between_frames() {
        let s = tiny_scene(1);
        let m0 = s.alpha(0, 0);
        let m5 = s.alpha(5, 0);
        assert_ne!(m0, m5);
        // Areas stay comparable (rigid object).
        let (a0, a5) = (m0.area() as f64, m5.area() as f64);
        assert!((a0 - a5).abs() / a0 < 0.2, "{a0} vs {a5}");
    }

    #[test]
    fn objects_stay_in_bounds_for_many_frames() {
        let s = tiny_scene(3);
        for t in [0usize, 10, 50, 200, 1000] {
            for vo in 0..3 {
                let m = s.alpha(t, vo);
                assert!(m.area() > 0, "object {vo} vanished at t={t}");
                let (x0, y0, x1, y1) = m.bounding_box().unwrap();
                assert!(x1 <= Resolution::QCIF.width && y1 <= Resolution::QCIF.height);
                let _ = (x0, y0);
            }
        }
    }

    #[test]
    fn background_pans_even_without_objects() {
        let s = tiny_scene(0);
        assert_eq!(s.object_count(), 0);
        assert_ne!(s.frame(0).y, s.frame(3).y);
    }

    #[test]
    fn object_pixels_use_object_texture() {
        let s = tiny_scene(1);
        let m = s.alpha(0, 0);
        let with = s.frame(0);
        // Re-render a scene without objects on the same seed: inside the
        // mask, pixels should generally differ (object texture on top).
        let bare = Scene::new(SceneSpec {
            resolution: Resolution::QCIF,
            objects: 0,
            seed: 42,
        })
        .frame(0);
        let mut differing = 0usize;
        let mut total = 0usize;
        for i in 0..with.y.len() {
            if m.data[i] != 0 {
                total += 1;
                if with.y[i] != bare.y[i] {
                    differing += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(differing * 2 > total, "{differing}/{total}");
    }

    #[test]
    fn consecutive_frames_correlate() {
        // Motion is small: consecutive frames should be closer than
        // distant ones, which is what P-frame coding exploits.
        let s = tiny_scene(2);
        let f0 = s.frame(0);
        let near = s.frame(1);
        let far = s.frame(20);
        assert!(f0.psnr_luma(&near) > f0.psnr_luma(&far));
    }
}
