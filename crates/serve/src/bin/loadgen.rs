//! `m4ps-loadgen` — zero-dependency load generator for the
//! multi-session encoding service.
//!
//! Drives [`m4ps_serve::Service`] with a configurable session mix in
//! closed-loop (all sessions submitted up front) or open-loop
//! (fixed-rate arrivals) mode, then prints a human summary and, with
//! `--json`, a machine-readable report: sessions/sec, frames/sec,
//! p50/p90/p99/p99.9/max frame latency and pool queue wait from the
//! service's `obs` histograms, per-session merged memory-model
//! counters (with `--memsim`), throughput per weight class, and the
//! path of any flight-recorder anomaly dump (with `--dump-dir`).
//!
//! ```text
//! m4ps-loadgen --sessions 64 --frames 4 --threads 4 --drivers 8
//! m4ps-loadgen --mode open --rate 200 --sessions 128 --reject-p99-us 5000
//! m4ps-loadgen --mode decode --sessions 32 --frames 8 --threads 4
//! m4ps-loadgen --memsim --weights 1,2 --shed-p99-us 0 --min-window 1 \
//!     --dump-dir target --json report.json
//! ```

use std::process::ExitCode;

use m4ps_codec::{EncoderConfig, Scheduling};
use m4ps_memsim::{AddressSpace, Hierarchy, MachineSpec, NullModel, ParallelModel};
use m4ps_serve::{
    AdmissionConfig, Service, ServiceConfig, ServiceReport, SessionMode, SessionSpec, SessionStatus,
};
use m4ps_testkit::json::Json;

struct Args {
    sessions: usize,
    frames: usize,
    width: usize,
    height: usize,
    objects: usize,
    layers: usize,
    slices: usize,
    threads: usize,
    drivers: usize,
    open_loop: bool,
    /// Sessions replay pre-encoded streams through the slice-parallel
    /// decoder instead of encoding fresh content.
    decode: bool,
    /// Open-loop arrival rate, sessions per second.
    rate: f64,
    /// Per-session bitrate budget in kbit/s (0 = constant QP).
    bitrate_kbps: usize,
    sched: Option<Scheduling>,
    reject_p99_us: Option<u64>,
    shed_p99_us: Option<u64>,
    min_window: u64,
    seed: u64,
    json: Option<String>,
    /// Simulate the O2 memory hierarchy per session (surfaces merged
    /// per-session counters in the report) instead of `NullModel`.
    memsim: bool,
    /// WFQ weights, cycled over sessions by submission index.
    weights: Vec<u32>,
    /// Frame-latency SLO in microseconds; a breach dumps the recorder.
    slo_us: Option<u64>,
    /// Directory for flight-recorder anomaly dumps.
    dump_dir: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            sessions: 64,
            frames: 4,
            width: 64,
            height: 48,
            objects: 0,
            layers: 1,
            slices: 2,
            threads: 0,
            drivers: 0,
            open_loop: false,
            decode: false,
            rate: 100.0,
            bitrate_kbps: 0,
            sched: None,
            reject_p99_us: None,
            shed_p99_us: None,
            min_window: 64,
            seed: 1,
            json: None,
            memsim: false,
            weights: vec![1],
            slo_us: None,
            dump_dir: None,
        }
    }
}

const USAGE: &str = "m4ps-loadgen: multi-session encoding service load generator

USAGE:
    m4ps-loadgen [OPTIONS]

OPTIONS:
    --sessions N        sessions to submit (default 64)
    --frames N          frames per session (default 4)
    --width N           frame width, multiple of 16 (default 64)
    --height N          frame height, multiple of 16 (default 48)
    --objects N         shaped VOs per session, 0 = rectangular (default 0)
    --layers N          layers per object, 1 or 2 (default 1)
    --slices N          slices per VOP (default 2)
    --threads N         shared pool width, 0 = M4PS_THREADS/auto (default 0)
    --drivers N         driver threads, 0 = one per pool thread (default 0)
    --mode MODE         closed | open | decode (default closed); decode
                        pre-encodes each session's content off the clock,
                        then sessions replay the streams through the
                        slice-parallel decoder (closed loop, layers=1)
    --rate R            open-loop arrivals per second (default 100)
    --bitrate-kbps N    per-session rate-control budget, 0 = constant QP
    --sched MODE        slice | wavefront (default: M4PS_SCHED/auto)
    --reject-p99-us N   admission: reject when windowed p99 queue wait
                        exceeds N microseconds
    --shed-p99-us N     admission: shed pending sessions past N microseconds
    --min-window N      admission decision window, samples (default 64)
    --memsim            simulate the O2 hierarchy per session and report
                        merged per-session counters (default: null model)
    --weights W1,W2,..  WFQ weights cycled over sessions (default 1)
    --slo-us N          frame-latency SLO; a breach triggers a
                        flight-recorder dump
    --dump-dir PATH     directory for anomaly dumps (flight_<n>.jsonl +
                        Chrome trace); analyze with m4ps-obs
    --seed N            base content seed (default 1)
    --json PATH         write the JSON report to PATH ('-' for stdout)
    --help              this text
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        if flag == "--memsim" {
            args.memsim = true;
            continue;
        }
        let mut value = || it.next().ok_or_else(|| format!("{flag} requires a value"));
        match flag.as_str() {
            "--sessions" => args.sessions = parse(&value()?)?,
            "--frames" => args.frames = parse(&value()?)?,
            "--width" => args.width = parse(&value()?)?,
            "--height" => args.height = parse(&value()?)?,
            "--objects" => args.objects = parse(&value()?)?,
            "--layers" => args.layers = parse(&value()?)?,
            "--slices" => args.slices = parse(&value()?)?,
            "--threads" => args.threads = parse(&value()?)?,
            "--drivers" => args.drivers = parse(&value()?)?,
            "--rate" => {
                let v = value()?;
                args.rate = v.parse().map_err(|e| format!("--rate '{v}': {e}"))?;
            }
            "--bitrate-kbps" => args.bitrate_kbps = parse(&value()?)?,
            "--mode" => match value()?.as_str() {
                "open" => (args.open_loop, args.decode) = (true, false),
                "closed" => (args.open_loop, args.decode) = (false, false),
                "decode" => (args.open_loop, args.decode) = (false, true),
                other => return Err(format!("--mode: unknown mode '{other}'")),
            },
            "--sched" => {
                args.sched = Some(match value()?.as_str() {
                    "slice" => Scheduling::SliceParallel,
                    "wavefront" => Scheduling::Wavefront,
                    other => return Err(format!("--sched: unknown mode '{other}'")),
                });
            }
            "--reject-p99-us" => args.reject_p99_us = Some(parse(&value()?)? as u64),
            "--shed-p99-us" => args.shed_p99_us = Some(parse(&value()?)? as u64),
            "--min-window" => args.min_window = parse(&value()?)? as u64,
            "--weights" => {
                let v = value()?;
                args.weights = v
                    .split(',')
                    .map(|w| {
                        w.trim()
                            .parse::<u32>()
                            .map_err(|e| format!("--weights '{w}': {e}"))
                    })
                    .collect::<Result<Vec<u32>, String>>()?;
                if args.weights.is_empty() || args.weights.contains(&0) {
                    return Err("--weights: need at least one nonzero weight".to_string());
                }
            }
            "--slo-us" => args.slo_us = Some(parse(&value()?)? as u64),
            "--dump-dir" => args.dump_dir = Some(value()?),
            "--seed" => args.seed = parse(&value()?)? as u64,
            "--json" => args.json = Some(value()?),
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    if args.decode && args.layers != 1 {
        return Err("--mode decode replays single-layer streams (--layers 1)".to_string());
    }
    Ok(args)
}

fn parse(s: &str) -> Result<usize, String> {
    s.parse().map_err(|e| format!("'{s}': {e}"))
}

fn weight_for(args: &Args, i: usize) -> u32 {
    args.weights[i % args.weights.len()]
}

fn spec_for(args: &Args, i: usize) -> SessionSpec {
    let mut encoder = EncoderConfig::fast_test().with_slices(args.slices.max(1));
    if args.bitrate_kbps > 0 {
        encoder.bitrate = Some((args.bitrate_kbps * 1000) as u32);
    }
    let spec = SessionSpec {
        width: args.width,
        height: args.height,
        frames: args.frames,
        objects: args.objects,
        layers: args.layers,
        seed: args.seed.wrapping_add(i as u64),
        weight: weight_for(args, i),
        encoder,
        mode: SessionMode::Encode,
    };
    if args.decode {
        // Pre-encode the replay streams up front, before the service
        // starts its clock — decode mode measures decode throughput.
        spec.into_decode().expect("pre-encoding replay streams")
    } else {
        spec
    }
}

/// Runs the configured load against `service` with the given
/// per-session memory-model factory.
fn run_load<M, F, A>(service: &Service, args: &Args, make_mem: F, attach: A) -> ServiceReport
where
    M: ParallelModel + Send,
    F: Fn(usize, &SessionSpec) -> M + Sync,
    A: Fn(&AddressSpace, &mut M) + Sync,
{
    if args.open_loop {
        let gap = 1.0 / args.rate.max(1e-6);
        let arrivals = (0..args.sessions)
            .map(|i| {
                (
                    std::time::Duration::from_secs_f64(gap * i as f64),
                    spec_for(args, i),
                )
            })
            .collect();
        service.run_open_loop(arrivals, make_mem, attach)
    } else {
        let specs = (0..args.sessions).map(|i| spec_for(args, i)).collect();
        service.run_batch(specs, make_mem, attach)
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn status_name(status: &SessionStatus) -> &'static str {
    match status {
        SessionStatus::Completed { .. } => "completed",
        SessionStatus::Rejected => "rejected",
        SessionStatus::Shed => "shed",
        SessionStatus::Failed(_) => "failed",
    }
}

/// One report entry per submitted session; completed sessions carry
/// their codec stats and merged memory-model counters (all zero under
/// the null model).
fn per_session_json(args: &Args, report: &ServiceReport) -> Json {
    let rows = report
        .outcomes
        .iter()
        .map(|o| {
            let mut fields = vec![
                ("id", Json::Num(o.id as f64)),
                ("weight", Json::Num(f64::from(weight_for(args, o.id)))),
                ("status", Json::str(status_name(&o.status))),
            ];
            if let SessionStatus::Completed {
                stats, counters, ..
            } = &o.status
            {
                fields.push(("frames", Json::Num(stats.frames as f64)));
                fields.push(("bytes", Json::Num(stats.bytes as f64)));
                fields.push((
                    "counters",
                    Json::obj(vec![
                        ("loads", Json::Num(counters.loads as f64)),
                        ("stores", Json::Num(counters.stores as f64)),
                        ("l1_misses", Json::Num(counters.l1_misses as f64)),
                        ("l2_misses", Json::Num(counters.l2_misses as f64)),
                        ("tlb_misses", Json::Num(counters.tlb_misses as f64)),
                        ("bytes_accessed", Json::Num(counters.bytes_accessed as f64)),
                    ]),
                ));
            }
            Json::obj(fields)
        })
        .collect();
    Json::Arr(rows)
}

/// Sessions/sec per WFQ weight class — the fairness headline: under
/// saturation a weight-2 class should complete ~2x the weight-1 rate
/// per session.
fn weight_classes_json(args: &Args, report: &ServiceReport) -> Json {
    let secs = report.wall.as_secs_f64().max(1e-9);
    let mut classes: Vec<u32> = Vec::new();
    for &w in &args.weights {
        if !classes.contains(&w) {
            classes.push(w);
        }
    }
    let rows = classes
        .into_iter()
        .map(|w| {
            let ids = |pred: &dyn Fn(&SessionStatus) -> bool| {
                report
                    .outcomes
                    .iter()
                    .filter(|o| weight_for(args, o.id) == w && pred(&o.status))
                    .count() as f64
            };
            let submitted = ids(&|_| true);
            let completed = ids(&|s| matches!(s, SessionStatus::Completed { .. }));
            Json::obj(vec![
                ("weight", Json::Num(f64::from(w))),
                ("sessions", Json::Num(submitted)),
                ("completed", Json::Num(completed)),
                ("sessions_per_sec", Json::Num(completed / secs)),
            ])
        })
        .collect();
    Json::Arr(rows)
}

fn report_json(args: &Args, report: &ServiceReport) -> Json {
    let lat = &report.frame_latency;
    let wait = &report.queue_wait;
    Json::obj(vec![
        ("sessions", Json::Num(args.sessions as f64)),
        ("frames_per_session", Json::Num(args.frames as f64)),
        (
            "mode",
            Json::str(if args.decode {
                "decode"
            } else if args.open_loop {
                "open"
            } else {
                "closed"
            }),
        ),
        ("memsim", Json::Bool(args.memsim)),
        ("wall_s", Json::Num(report.wall.as_secs_f64())),
        ("completed", Json::Num(report.completed as f64)),
        ("rejected", Json::Num(report.rejected as f64)),
        ("shed", Json::Num(report.shed as f64)),
        ("failed", Json::Num(report.failed as f64)),
        ("frames", Json::Num(report.frames as f64)),
        ("sessions_per_sec", Json::Num(report.sessions_per_sec)),
        ("frames_per_sec", Json::Num(report.frames_per_sec)),
        ("frame_p50_ms", Json::Num(ms(lat.p50()))),
        ("frame_p90_ms", Json::Num(ms(lat.p90()))),
        ("frame_p99_ms", Json::Num(ms(lat.p99()))),
        ("frame_p999_ms", Json::Num(ms(lat.p999()))),
        ("frame_max_ms", Json::Num(ms(lat.max))),
        ("queue_wait_p50_us", Json::Num(wait.p50() as f64 / 1e3)),
        ("queue_wait_p99_us", Json::Num(wait.p99() as f64 / 1e3)),
        ("queue_wait_p999_us", Json::Num(wait.p999() as f64 / 1e3)),
        ("queue_wait_max_us", Json::Num(wait.max as f64 / 1e3)),
        ("queue_wait_samples", Json::Num(wait.count as f64)),
        ("pool_steals", Json::Num(report.steals as f64)),
        ("events_dropped", Json::Num(report.events_dropped as f64)),
        (
            "dump",
            report
                .dump
                .as_ref()
                .map_or(Json::Null, |p| Json::str(p.clone())),
        ),
        ("weight_classes", weight_classes_json(args, report)),
        ("per_session", per_session_json(args, report)),
    ])
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("m4ps-loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    let service = Service::new(ServiceConfig {
        threads: args.threads,
        drivers: args.drivers,
        sched: args.sched,
        admission: AdmissionConfig {
            reject_p99_ns: args.reject_p99_us.map(|us| us * 1000),
            shed_p99_ns: args.shed_p99_us.map(|us| us * 1000),
            min_window: args.min_window,
        },
        slo_ns: args.slo_us.map(|us| us * 1000),
        dump_dir: args.dump_dir.clone(),
        ..ServiceConfig::default()
    });
    let report = if args.memsim {
        run_load(
            &service,
            &args,
            |_, _| Hierarchy::new(MachineSpec::o2()),
            |space, mem| mem.attach_regions(space.regions()),
        )
    } else {
        run_load(&service, &args, |_, _| NullModel::new(), |_, _| {})
    };

    eprintln!(
        "m4ps-loadgen: {} sessions submitted ({}), {} completed, {} rejected, {} shed, {} failed",
        args.sessions,
        if args.decode {
            "decode replay, closed loop".to_string()
        } else if args.open_loop {
            format!("open loop, {:.0}/s", args.rate)
        } else {
            "closed loop".to_string()
        },
        report.completed,
        report.rejected,
        report.shed,
        report.failed
    );
    eprintln!(
        "  wall {:.3}s | {:.1} sessions/s | {:.1} frames/s | pool {} threads, {} steals",
        report.wall.as_secs_f64(),
        report.sessions_per_sec,
        report.frames_per_sec,
        service.pool().threads(),
        report.steals,
    );
    eprintln!(
        "  frame latency p50 {:.3} ms, p90 {:.3} ms, p99 {:.3} ms, p99.9 {:.3} ms, max {:.3} ms",
        ms(report.frame_latency.p50()),
        ms(report.frame_latency.p90()),
        ms(report.frame_latency.p99()),
        ms(report.frame_latency.p999()),
        ms(report.frame_latency.max),
    );
    eprintln!(
        "  queue wait p99 {:.1} us, max {:.1} us ({} samples)",
        report.queue_wait.p99() as f64 / 1e3,
        report.queue_wait.max as f64 / 1e3,
        report.queue_wait.count,
    );
    if let Some(dump) = &report.dump {
        eprintln!("  flight dump: {dump} (inspect with m4ps-obs report {dump})");
    }

    if let Some(path) = &args.json {
        let doc = report_json(&args, &report).pretty();
        if path == "-" {
            println!("{doc}");
        } else if let Err(e) = std::fs::write(path, &doc) {
            eprintln!("m4ps-loadgen: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if report.failed > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
