//! `m4ps-loadgen` — zero-dependency load generator for the
//! multi-session encoding service.
//!
//! Drives [`m4ps_serve::Service`] with a configurable session mix in
//! closed-loop (all sessions submitted up front) or open-loop
//! (fixed-rate arrivals) mode, then prints a human summary and, with
//! `--json`, a machine-readable report: sessions/sec, frames/sec, and
//! p50/p90/p99 frame latency and pool queue wait from the service's
//! `obs` histograms.
//!
//! ```text
//! m4ps-loadgen --sessions 64 --frames 4 --threads 4 --drivers 8
//! m4ps-loadgen --mode open --rate 200 --sessions 128 --reject-p99-us 5000
//! ```

use std::process::ExitCode;

use m4ps_codec::{EncoderConfig, Scheduling};
use m4ps_memsim::NullModel;
use m4ps_serve::{AdmissionConfig, Service, ServiceConfig, ServiceReport, SessionSpec};
use m4ps_testkit::json::Json;

struct Args {
    sessions: usize,
    frames: usize,
    width: usize,
    height: usize,
    objects: usize,
    layers: usize,
    slices: usize,
    threads: usize,
    drivers: usize,
    open_loop: bool,
    /// Open-loop arrival rate, sessions per second.
    rate: f64,
    /// Per-session bitrate budget in kbit/s (0 = constant QP).
    bitrate_kbps: usize,
    sched: Option<Scheduling>,
    reject_p99_us: Option<u64>,
    shed_p99_us: Option<u64>,
    min_window: u64,
    seed: u64,
    json: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            sessions: 64,
            frames: 4,
            width: 64,
            height: 48,
            objects: 0,
            layers: 1,
            slices: 2,
            threads: 0,
            drivers: 0,
            open_loop: false,
            rate: 100.0,
            bitrate_kbps: 0,
            sched: None,
            reject_p99_us: None,
            shed_p99_us: None,
            min_window: 64,
            seed: 1,
            json: None,
        }
    }
}

const USAGE: &str = "m4ps-loadgen: multi-session encoding service load generator

USAGE:
    m4ps-loadgen [OPTIONS]

OPTIONS:
    --sessions N        sessions to submit (default 64)
    --frames N          frames per session (default 4)
    --width N           frame width, multiple of 16 (default 64)
    --height N          frame height, multiple of 16 (default 48)
    --objects N         shaped VOs per session, 0 = rectangular (default 0)
    --layers N          layers per object, 1 or 2 (default 1)
    --slices N          slices per VOP (default 2)
    --threads N         shared pool width, 0 = M4PS_THREADS/auto (default 0)
    --drivers N         driver threads, 0 = one per pool thread (default 0)
    --mode open|closed  arrival mode (default closed)
    --rate R            open-loop arrivals per second (default 100)
    --bitrate-kbps N    per-session rate-control budget, 0 = constant QP
    --sched MODE        slice | wavefront (default: M4PS_SCHED/auto)
    --reject-p99-us N   admission: reject when windowed p99 queue wait
                        exceeds N microseconds
    --shed-p99-us N     admission: shed pending sessions past N microseconds
    --min-window N      admission decision window, samples (default 64)
    --seed N            base content seed (default 1)
    --json PATH         write the JSON report to PATH ('-' for stdout)
    --help              this text
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        let mut value = || it.next().ok_or_else(|| format!("{flag} requires a value"));
        match flag.as_str() {
            "--sessions" => args.sessions = parse(&value()?)?,
            "--frames" => args.frames = parse(&value()?)?,
            "--width" => args.width = parse(&value()?)?,
            "--height" => args.height = parse(&value()?)?,
            "--objects" => args.objects = parse(&value()?)?,
            "--layers" => args.layers = parse(&value()?)?,
            "--slices" => args.slices = parse(&value()?)?,
            "--threads" => args.threads = parse(&value()?)?,
            "--drivers" => args.drivers = parse(&value()?)?,
            "--rate" => {
                let v = value()?;
                args.rate = v.parse().map_err(|e| format!("--rate '{v}': {e}"))?;
            }
            "--bitrate-kbps" => args.bitrate_kbps = parse(&value()?)?,
            "--mode" => {
                args.open_loop = match value()?.as_str() {
                    "open" => true,
                    "closed" => false,
                    other => return Err(format!("--mode: unknown mode '{other}'")),
                };
            }
            "--sched" => {
                args.sched = Some(match value()?.as_str() {
                    "slice" => Scheduling::SliceParallel,
                    "wavefront" => Scheduling::Wavefront,
                    other => return Err(format!("--sched: unknown mode '{other}'")),
                });
            }
            "--reject-p99-us" => args.reject_p99_us = Some(parse(&value()?)? as u64),
            "--shed-p99-us" => args.shed_p99_us = Some(parse(&value()?)? as u64),
            "--min-window" => args.min_window = parse(&value()?)? as u64,
            "--seed" => args.seed = parse(&value()?)? as u64,
            "--json" => args.json = Some(value()?),
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn parse(s: &str) -> Result<usize, String> {
    s.parse().map_err(|e| format!("'{s}': {e}"))
}

fn spec_for(args: &Args, i: usize) -> SessionSpec {
    let mut encoder = EncoderConfig::fast_test().with_slices(args.slices.max(1));
    if args.bitrate_kbps > 0 {
        encoder.bitrate = Some((args.bitrate_kbps * 1000) as u32);
    }
    SessionSpec {
        width: args.width,
        height: args.height,
        frames: args.frames,
        objects: args.objects,
        layers: args.layers,
        seed: args.seed.wrapping_add(i as u64),
        weight: 1,
        encoder,
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn report_json(args: &Args, report: &ServiceReport) -> Json {
    let lat = &report.frame_latency;
    let wait = &report.queue_wait;
    Json::obj(vec![
        ("sessions", Json::Num(args.sessions as f64)),
        ("frames_per_session", Json::Num(args.frames as f64)),
        (
            "mode",
            Json::str(if args.open_loop { "open" } else { "closed" }),
        ),
        ("wall_s", Json::Num(report.wall.as_secs_f64())),
        ("completed", Json::Num(report.completed as f64)),
        ("rejected", Json::Num(report.rejected as f64)),
        ("shed", Json::Num(report.shed as f64)),
        ("failed", Json::Num(report.failed as f64)),
        ("frames", Json::Num(report.frames as f64)),
        ("sessions_per_sec", Json::Num(report.sessions_per_sec)),
        ("frames_per_sec", Json::Num(report.frames_per_sec)),
        ("frame_p50_ms", Json::Num(ms(lat.p50()))),
        ("frame_p90_ms", Json::Num(ms(lat.p90()))),
        ("frame_p99_ms", Json::Num(ms(lat.p99()))),
        ("queue_wait_p50_us", Json::Num(wait.p50() as f64 / 1e3)),
        ("queue_wait_p99_us", Json::Num(wait.p99() as f64 / 1e3)),
        ("queue_wait_samples", Json::Num(wait.count as f64)),
        ("pool_steals", Json::Num(report.steals as f64)),
    ])
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("m4ps-loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    let service = Service::new(ServiceConfig {
        threads: args.threads,
        drivers: args.drivers,
        sched: args.sched,
        admission: AdmissionConfig {
            reject_p99_ns: args.reject_p99_us.map(|us| us * 1000),
            shed_p99_ns: args.shed_p99_us.map(|us| us * 1000),
            min_window: args.min_window,
        },
    });
    let report = if args.open_loop {
        let gap = 1.0 / args.rate.max(1e-6);
        let arrivals = (0..args.sessions)
            .map(|i| {
                (
                    std::time::Duration::from_secs_f64(gap * i as f64),
                    spec_for(&args, i),
                )
            })
            .collect();
        service.run_open_loop(arrivals, |_, _| NullModel::new(), |_, _| {})
    } else {
        let specs = (0..args.sessions).map(|i| spec_for(&args, i)).collect();
        service.run_batch(specs, |_, _| NullModel::new(), |_, _| {})
    };

    eprintln!(
        "m4ps-loadgen: {} sessions submitted ({}), {} completed, {} rejected, {} shed, {} failed",
        args.sessions,
        if args.open_loop {
            format!("open loop, {:.0}/s", args.rate)
        } else {
            "closed loop".to_string()
        },
        report.completed,
        report.rejected,
        report.shed,
        report.failed
    );
    eprintln!(
        "  wall {:.3}s | {:.1} sessions/s | {:.1} frames/s | pool {} threads, {} steals",
        report.wall.as_secs_f64(),
        report.sessions_per_sec,
        report.frames_per_sec,
        service.pool().threads(),
        report.steals,
    );
    eprintln!(
        "  frame latency p50 {:.3} ms, p90 {:.3} ms, p99 {:.3} ms | queue wait p99 {:.1} us ({} samples)",
        ms(report.frame_latency.p50()),
        ms(report.frame_latency.p90()),
        ms(report.frame_latency.p99()),
        report.queue_wait.p99() as f64 / 1e3,
        report.queue_wait.count,
    );

    if let Some(path) = &args.json {
        let doc = report_json(&args, &report).pretty();
        if path == "-" {
            println!("{doc}");
        } else if let Err(e) = std::fs::write(path, &doc) {
            eprintln!("m4ps-loadgen: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if report.failed > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
